package timing

import (
	"repro/internal/decode"
	"repro/internal/isa"
)

// ReadsIntRegs reports which integer source registers the instruction
// consumes, for load-use hazard detection. Register 0 means "none" (x0
// never hazards). Both the emulator's dynamic pipeline model and the
// static WCET block analysis use this, which is what keeps the
// static-bounds-dynamic invariant aligned.
func ReadsIntRegs(in decode.Inst) (r1, r2 isa.Reg) {
	_, fp1, fp2 := isa.UsesFPRegs(in.Op)
	switch in.Op.Class() {
	case isa.ClassALU, isa.ClassShift, isa.ClassMul, isa.ClassDiv,
		isa.ClassBMI, isa.ClassBranch:
		r1, r2 = in.Rs1, in.Rs2
	case isa.ClassLoad, isa.ClassFPLoad:
		r1 = in.Rs1
	case isa.ClassStore:
		r1, r2 = in.Rs1, in.Rs2
	case isa.ClassFPStore:
		r1 = in.Rs1 // data operand is FP
	case isa.ClassJump:
		if in.Op == isa.OpJALR || in.Op == isa.OpCJR || in.Op == isa.OpCJALR {
			r1 = in.Rs1
		}
	case isa.ClassCSR:
		switch in.Op {
		case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC:
			r1 = in.Rs1
		}
	case isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv, isa.ClassFPCmp, isa.ClassFPCvt:
		if !fp1 {
			r1 = in.Rs1
		}
	}
	if fp1 {
		r1 = 0
	}
	if fp2 {
		r2 = 0
	}
	return r1, r2
}

// StaticPlan precomputes per-instruction cycle costs for a straight-line
// block entered hazard-free (the emulator resets load-use state at block
// boundaries). For instruction i, costs[i] is the operand-independent
// dynamic cost: the class base cost plus the intra-block load-use stall,
// replicating exactly the tracking the interpreter performs at run time.
// dynamic[i] is true when the instruction's base cost is operand-dependent
// (early-out mul/div) and must still be costed at execution time; callers
// treat those as unplannable and fall back to full dynamic costing.
// Control-transfer penalties and the I-cache model (inherently dynamic)
// are not included.
func (p *Profile) StaticPlan(insts []decode.Inst) (costs []uint32, dynamic []bool) {
	costs = make([]uint32, len(insts))
	dynamic = make([]bool, len(insts))
	var lastLoad isa.Reg
	for i, in := range insts {
		c := p.base(in.Op.Class())
		if lastLoad != 0 {
			r1, r2 := ReadsIntRegs(in)
			if r1 == lastLoad || r2 == lastLoad {
				c += p.LoadUseStall
			}
		}
		// Mirror the emulator's hazard tracking: only integer loads arm
		// the interlock, and x0 destinations never hazard.
		if in.Op.Class() == isa.ClassLoad {
			lastLoad = in.Rd
		} else {
			lastLoad = 0
		}
		costs[i] = c
		if p.EarlyOutMulDiv {
			switch in.Op.Class() {
			case isa.ClassMul:
				dynamic[i] = p.base(isa.ClassMul) >= 2
			case isa.ClassDiv:
				dynamic[i] = p.base(isa.ClassDiv) >= 3
			}
		}
	}
	return costs, dynamic
}

// BlockCost returns the context-insensitive worst-case cycle cost of a
// straight-line instruction sequence: per-instruction static costs, the
// intra-block load-use stalls, one pessimistic entry stall covering a
// possible hazard against the previous block's trailing load, and — when
// an I-cache is modelled — an all-miss assumption for every cache line
// the block can span. Control transfer penalties are charged to CFG
// edges, not blocks.
func (p *Profile) BlockCost(insts []decode.Inst) uint64 {
	if len(insts) == 0 {
		return 0
	}
	total := uint64(p.LoadUseStall) // entry pessimism
	var bytes uint64
	var lastLoad isa.Reg
	for _, in := range insts {
		if lastLoad != 0 {
			r1, r2 := ReadsIntRegs(in)
			if r1 == lastLoad || r2 == lastLoad {
				total += uint64(p.LoadUseStall)
			}
		}
		total += uint64(p.StaticCost(in))
		bytes += uint64(in.Size)
		lastLoad = 0
		if in.Op.Class() == isa.ClassLoad {
			if rd, ok := in.WritesReg(); ok {
				lastLoad = rd
			}
		}
	}
	if p.HasICache() {
		// Worst-case distinct lines for any alignment of a span of
		// `bytes` bytes; each assumed to miss. An execution of the block
		// can miss at most this often (a contiguous block far smaller
		// than the cache cannot self-evict), so the bound is sound.
		lines := bytes/uint64(p.ICacheLineBytes) + 1
		total += lines * uint64(p.ICacheMissPenalty)
	}
	return total
}
