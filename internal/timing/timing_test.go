package timing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decode"
	"repro/internal/isa"
)

func inst(op isa.Op) decode.Inst { return decode.Inst{Op: op, Size: 4} }

func TestDefaultsToOneCycle(t *testing.T) {
	p := Unit()
	for _, op := range []isa.Op{isa.OpADD, isa.OpMUL, isa.OpLW, isa.OpBEQ} {
		if c := p.StaticCost(inst(op)); c != 1 {
			t.Errorf("unit profile: %v costs %d", op, c)
		}
	}
}

func TestEdgeSmallClassCosts(t *testing.T) {
	p := EdgeSmall()
	if p.StaticCost(inst(isa.OpDIV)) != 33 {
		t.Error("div should be 33 cycles on edge-small")
	}
	if p.StaticCost(inst(isa.OpMUL)) != 8 {
		t.Error("mul should be 8 cycles on edge-small")
	}
	if p.StaticCost(inst(isa.OpADD)) != 1 {
		t.Error("add should be 1 cycle")
	}
	if p.StaticCost(inst(isa.OpCPOP)) != 1 {
		t.Error("bmi ops should be single cycle (the PATMOS claim)")
	}
}

// The WCET soundness cornerstone: static cost bounds dynamic cost for
// every instruction and any operand values.
func TestStaticBoundsDynamic(t *testing.T) {
	profiles := []*Profile{EdgeSmall(), EdgeFast(), Unit()}
	rng := rand.New(rand.NewSource(3))
	for _, p := range profiles {
		for _, op := range isa.Ops() {
			in := inst(op)
			st := p.StaticCost(in)
			for trial := 0; trial < 100; trial++ {
				dy := p.DynamicCost(in, rng.Uint32(), rng.Uint32())
				if dy > st {
					t.Fatalf("%s: %v dynamic %d > static %d", p.Name(), op, dy, st)
				}
				if dy == 0 {
					t.Fatalf("%s: %v dynamic cost 0", p.Name(), op)
				}
			}
		}
	}
}

func TestQuickStaticBoundsDynamic(t *testing.T) {
	p := EdgeSmall()
	f := func(a, b uint32) bool {
		for _, op := range []isa.Op{isa.OpMUL, isa.OpMULH, isa.OpDIV, isa.OpREMU} {
			in := inst(op)
			if p.DynamicCost(in, a, b) > p.StaticCost(in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEarlyOutMonotone(t *testing.T) {
	p := EdgeSmall()
	mul := inst(isa.OpMUL)
	small := p.DynamicCost(mul, 0, 1)
	large := p.DynamicCost(mul, 0, 0xffffffff)
	if small >= large {
		t.Errorf("early-out mul: small operand %d should be cheaper than wide %d", small, large)
	}
	div := inst(isa.OpDIV)
	if p.DynamicCost(div, 1, 1) >= p.DynamicCost(div, 0xffffffff, 1) {
		t.Error("early-out div: small dividend should be cheaper")
	}
}

func TestEdgeFastNoEarlyOut(t *testing.T) {
	p := EdgeFast()
	mul := inst(isa.OpMUL)
	if p.DynamicCost(mul, 0, 1) != p.DynamicCost(mul, 0, 0xffffffff) {
		t.Error("edge-fast multiplier should be fixed latency")
	}
}

func TestTransferPenalty(t *testing.T) {
	p := EdgeSmall()
	if p.TransferPenalty(isa.OpBEQ, true) != p.BranchTakenPenalty {
		t.Error("taken branch penalty wrong")
	}
	if p.TransferPenalty(isa.OpBEQ, false) != 0 {
		t.Error("not-taken branch must be free")
	}
	if p.TransferPenalty(isa.OpJAL, false) != p.JumpPenalty {
		t.Error("jump penalty wrong")
	}
	if p.TransferPenalty(isa.OpADD, true) != 0 {
		t.Error("ALU op must have no transfer penalty")
	}
}

func TestProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"edge-small", "edge-fast", "edge-cache", "unit"} {
		p, ok := ps[name]
		if !ok || p.Name() != name {
			t.Errorf("profile %q missing or misnamed", name)
		}
	}
}

func TestICacheConfiguration(t *testing.T) {
	if EdgeSmall().HasICache() {
		t.Error("edge-small must not model an I-cache")
	}
	c := EdgeCache()
	if !c.HasICache() {
		t.Fatal("edge-cache must model an I-cache")
	}
	// The all-miss block cost must exceed the cache-less one by exactly
	// lines x penalty.
	insts := []decode.Inst{
		{Op: isa.OpADDI, Size: 4}, {Op: isa.OpADDI, Size: 4},
		{Op: isa.OpADDI, Size: 4}, {Op: isa.OpADDI, Size: 4},
		{Op: isa.OpADDI, Size: 4}, // 20 bytes -> worst case 2 lines of 16
	}
	base := EdgeSmall().BlockCost(insts)
	cached := c.BlockCost(insts)
	want := base + 2*uint64(c.ICacheMissPenalty)
	if cached != want {
		t.Errorf("cached block cost %d, want %d", cached, want)
	}
}
