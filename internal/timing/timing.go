// Package timing defines the cycle-cost models shared by the dynamic
// pipeline simulation in the emulator and the static WCET analysis. A
// Profile describes one core configuration: per-class base costs,
// control-flow penalties, the load-use interlock, and whether the
// multiplier/divider have operand-dependent (early-out) latency.
//
// The contract between the two consumers is the WCET soundness invariant:
// for every instruction, StaticCost is an upper bound of DynamicCost over
// all operand values, and the static analyzer additionally charges every
// block entry with the worst-case load-use stall so cross-block hazards
// can never make dynamic execution slower than the static bound.
package timing

import (
	"fmt"
	"math/bits"

	"repro/internal/decode"
	"repro/internal/isa"
)

// Profile is one core timing configuration.
type Profile struct {
	ProfileName string

	// Base cycle cost per instruction class. Classes with zero entries
	// default to 1 cycle.
	Class map[isa.Class]uint32

	// BranchTakenPenalty is the pipeline flush cost added when a
	// conditional branch is taken (static not-taken prediction).
	BranchTakenPenalty uint32

	// JumpPenalty is the refill cost of unconditional jumps (jal, jalr
	// and their compressed forms).
	JumpPenalty uint32

	// LoadUseStall is the interlock cost when an instruction consumes
	// the destination of the immediately preceding load.
	LoadUseStall uint32

	// TrapPenalty is the cost of entering or leaving a trap handler.
	TrapPenalty uint32

	// EarlyOutMulDiv enables operand-dependent latency for mul/div:
	// dynamic cost shrinks with the magnitude of the operands, while
	// the static bound stays at the full-width worst case. This is the
	// canonical source of WCET-vs-observed gap on small cores.
	EarlyOutMulDiv bool

	// Instruction cache model: when ICacheMissPenalty is non-zero the
	// emulator simulates a direct-mapped I-cache (ICacheLines lines of
	// ICacheLineBytes each) and charges the penalty per miss, while the
	// static analysis assumes every block's lines miss — the classic
	// cache pessimism of WCET analysis. Line size must be a power of
	// two and at least 4.
	ICacheLines       uint32
	ICacheLineBytes   uint32
	ICacheMissPenalty uint32
}

// HasICache reports whether the profile models an instruction cache.
func (p *Profile) HasICache() bool {
	return p.ICacheMissPenalty > 0 && p.ICacheLines > 0 && p.ICacheLineBytes >= 4
}

// Name returns the profile name.
func (p *Profile) Name() string { return p.ProfileName }

// base returns the base cost of a class (default 1).
func (p *Profile) base(c isa.Class) uint32 {
	if v, ok := p.Class[c]; ok {
		return v
	}
	return 1
}

// StaticCost returns the worst-case cycle cost of one instruction,
// excluding control-transfer penalties (those are charged to CFG edges)
// and load-use stalls (charged separately by block analysis).
func (p *Profile) StaticCost(in decode.Inst) uint32 {
	return p.base(in.Op.Class())
}

// DynamicCost returns the operand-aware cycle cost of one instruction
// for the dynamic pipeline model, again excluding transfer penalties and
// stalls. rs1v and rs2v are the source operand values.
func (p *Profile) DynamicCost(in decode.Inst, rs1v, rs2v uint32) uint32 {
	c := p.base(in.Op.Class())
	if !p.EarlyOutMulDiv {
		return c
	}
	switch in.Op.Class() {
	case isa.ClassMul:
		if c < 2 {
			return c
		}
		// Early-out multiplier: latency scales with the effective width
		// of the second operand, 1..base cycles.
		w := uint32(32 - bits.LeadingZeros32(rs2v))
		cost := 1 + w*(c-1)/32
		if cost > c {
			cost = c
		}
		return cost
	case isa.ClassDiv:
		if c < 3 {
			return c
		}
		// Radix-2 divider with early termination on small dividends.
		w := uint32(32 - bits.LeadingZeros32(rs1v))
		cost := 2 + w*(c-2)/32
		if cost > c {
			cost = c
		}
		return cost
	}
	return c
}

// TransferPenalty returns the pipeline penalty of a control transfer by
// the given instruction: taken reports whether a conditional branch was
// taken. Non-control-flow instructions cost nothing here.
func (p *Profile) TransferPenalty(op isa.Op, taken bool) uint32 {
	switch op.Class() {
	case isa.ClassBranch:
		if taken {
			return p.BranchTakenPenalty
		}
		return 0
	case isa.ClassJump:
		return p.JumpPenalty
	}
	return 0
}

func (p *Profile) String() string { return fmt.Sprintf("profile(%s)", p.ProfileName) }

// EdgeSmall models a small in-order 3-stage edge core: slow iterative
// multiplier and divider with early-out, modest branch penalty. This is
// the default demonstrator configuration.
func EdgeSmall() *Profile {
	return &Profile{
		ProfileName: "edge-small",
		Class: map[isa.Class]uint32{
			isa.ClassMul:     8,
			isa.ClassDiv:     33,
			isa.ClassLoad:    2,
			isa.ClassStore:   2,
			isa.ClassFPLoad:  2,
			isa.ClassFPStore: 2,
			isa.ClassFPALU:   4,
			isa.ClassFPMul:   5,
			isa.ClassFPDiv:   20,
			isa.ClassFPCmp:   2,
			isa.ClassFPCvt:   3,
			isa.ClassCSR:     3,
			isa.ClassSystem:  3,
			isa.ClassBMI:     1,
		},
		BranchTakenPenalty: 2,
		JumpPenalty:        2,
		LoadUseStall:       1,
		TrapPenalty:        4,
		EarlyOutMulDiv:     true,
	}
}

// EdgeFast models a 5-stage core with a pipelined single-cycle multiplier
// and forwarding: higher branch cost, cheap arithmetic.
func EdgeFast() *Profile {
	return &Profile{
		ProfileName: "edge-fast",
		Class: map[isa.Class]uint32{
			isa.ClassMul:     1,
			isa.ClassDiv:     16,
			isa.ClassLoad:    1,
			isa.ClassStore:   1,
			isa.ClassFPLoad:  1,
			isa.ClassFPStore: 1,
			isa.ClassFPALU:   2,
			isa.ClassFPMul:   2,
			isa.ClassFPDiv:   10,
			isa.ClassFPCmp:   1,
			isa.ClassFPCvt:   2,
			isa.ClassCSR:     2,
			isa.ClassSystem:  2,
			isa.ClassBMI:     1,
		},
		BranchTakenPenalty: 3,
		JumpPenalty:        1,
		LoadUseStall:       1,
		TrapPenalty:        5,
		EarlyOutMulDiv:     false,
	}
}

// Unit is the trivial 1-cycle-per-instruction model used when no
// microarchitectural timing is wanted (pure functional emulation).
func Unit() *Profile {
	return &Profile{ProfileName: "unit"}
}

// EdgeCache is the edge-small core with a modelled instruction cache
// (64 direct-mapped lines of 16 bytes, 3-cycle line refill). The static
// analysis must assume every line misses, so this profile demonstrates
// the classic cache-induced WCET pessimism while the dynamic model
// benefits from locality.
func EdgeCache() *Profile {
	p := EdgeSmall()
	p.ProfileName = "edge-cache"
	p.ICacheLines = 64
	p.ICacheLineBytes = 16
	p.ICacheMissPenalty = 3
	return p
}

// Profiles returns the built-in profiles by name.
func Profiles() map[string]*Profile {
	return map[string]*Profile{
		"edge-small": EdgeSmall(),
		"edge-fast":  EdgeFast(),
		"edge-cache": EdgeCache(),
		"unit":       Unit(),
	}
}
