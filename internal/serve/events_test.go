package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workloads"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    int
	event string
	data  string
}

// readSSE parses a whole SSE stream (the handler closes it at the
// job's terminal event).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if cur.event != "" {
		out = append(out, cur)
	}
	return out
}

// types extracts the event-name sequence.
func types(evs []sseEvent) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.event
	}
	return out
}

// TestEventsLiveStream subscribes while the job is running and checks
// the live lifecycle: queued and running replayed on attach, the
// terminal event streamed when it happens, then the stream ends.
func TestEventsLiveStream(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "ok", nil
	}
	_, st := postJob(t, ts, Request{Type: "run", Source: src(t, "xtea")})
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	evs := readSSE(t, resp.Body) // returns when the handler ends the stream
	got := strings.Join(types(evs), ",")
	if got != "queued,running,done" {
		t.Fatalf("event sequence %q, want queued,running,done", got)
	}
	for i, ev := range evs {
		if ev.id != i+1 {
			t.Errorf("event %d has id %d, want %d", i, ev.id, i+1)
		}
		var body Event
		if err := json.Unmarshal([]byte(ev.data), &body); err != nil {
			t.Errorf("event %d data %q: %v", i, ev.data, err)
		} else if body.Seq != ev.id || body.Type != ev.event {
			t.Errorf("event %d payload %+v disagrees with frame id=%d event=%s",
				i, body, ev.id, ev.event)
		}
	}
}

// TestEventsReplayAfterTerminal: attaching after the job finished
// replays the retained transition history and ends immediately.
func TestEventsReplayAfterTerminal(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	w, _ := workloads.ByName("xtea")
	_, st := postJob(t, ts, Request{Type: "run", Source: w.Source, Budget: w.Budget})
	wait(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := strings.Join(types(readSSE(t, resp.Body)), ","); got != "queued,running,done" {
		t.Fatalf("replayed sequence %q, want queued,running,done", got)
	}
}

// TestEventsLastEventIDResume: a reconnect carrying Last-Event-ID only
// receives events it has not seen.
func TestEventsLastEventIDResume(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	w, _ := workloads.ByName("xtea")
	_, st := postJob(t, ts, Request{Type: "run", Source: w.Source, Budget: w.Budget})
	wait(t, s, st.ID)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, resp.Body)
	if len(evs) != 1 || evs[0].event != "done" || evs[0].id != 3 {
		t.Fatalf("resumed events %+v, want just the terminal (id 3)", evs)
	}
}

// TestEventsErrorCarriesMessage: the terminal event of a failed job
// carries the error string.
func TestEventsErrorCarriesMessage(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		return nil, io.ErrUnexpectedEOF
	}
	_, st := postJob(t, ts, Request{Type: "run", Source: src(t, "xtea")})
	wait(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, resp.Body)
	final := evs[len(evs)-1]
	if final.event != "errored" || !strings.Contains(final.data, "unexpected EOF") {
		t.Fatalf("terminal event %+v, want errored with the message", final)
	}
}

// TestEventsCampaignProgress: a sharded fault job's stream carries a
// progress event whose final snapshot covers every shard.
func TestEventsCampaignProgress(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 2, QueueDepth: 8})
	w, _ := workloads.ByName("xtea")
	spec := FaultSpec{Seed: 4, GPRTransient: 12, CodeBitflip: 6, Workers: 1, Shards: 3}
	_, st := postJob(t, ts, Request{Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &spec})
	wait(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := readSSE(t, resp.Body)
	var prog *Progress
	for _, ev := range evs {
		if ev.event != "progress" {
			continue
		}
		var body struct {
			Data Progress `json:"data"`
		}
		if err := json.Unmarshal([]byte(ev.data), &body); err != nil {
			t.Fatalf("progress payload %q: %v", ev.data, err)
		}
		prog = &body.Data
	}
	if prog == nil {
		t.Fatalf("no progress event in %v", types(evs))
	}
	if prog.Done != prog.Total || prog.Total == 0 {
		t.Errorf("final progress %d/%d, want complete", prog.Done, prog.Total)
	}
	if len(prog.Shards) != 3 {
		t.Fatalf("progress has %d shards, want 3", len(prog.Shards))
	}
	for _, sp := range prog.Shards {
		if sp.State != "done" {
			t.Errorf("shard %d state %q, want done", sp.Shard, sp.State)
		}
	}
	if evs[len(evs)-1].event != "done" {
		t.Errorf("stream ended with %q, want the terminal event last", evs[len(evs)-1].event)
	}
}

func TestEventsUnknownJob404(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1})
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/nope/events"); code != http.StatusNotFound {
		t.Errorf("unknown job events status %d, want 404", code)
	}
}
