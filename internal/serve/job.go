package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/elf"
	"repro/internal/emu"
	"repro/internal/timing"
	"repro/internal/vp"
)

// Request is the JSON body of POST /v1/jobs: one analysis job over one
// guest binary. Exactly one of Source (assembly text, assembled with
// the platform prelude like every CLI tool) or ELF (a base64-encoded
// ELF32 executable, the JSON encoding of []byte) must be given.
type Request struct {
	// Type selects the analysis: "run", "fault", "wcet", "qta", "lint",
	// "subset".
	Type string `json:"type"`

	// Source is RV32 assembly source for the virtual platform.
	Source string `json:"source,omitempty"`
	// ELF is an uploaded ELF32 guest binary (base64 in JSON).
	ELF []byte `json:"elf,omitempty"`

	// Budget is the instruction budget for executing job types (run,
	// fault, qta). 0 picks the server default.
	Budget uint64 `json:"budget,omitempty"`
	// Profile names the timing profile (default "edge-small").
	Profile string `json:"profile,omitempty"`
	// Engine selects the execution engine: "threaded" (default),
	// "switch", or "superblock" (see emu.EngineNames).
	Engine string `json:"engine,omitempty"`
	// Bounds are explicit loop bounds (label=N) for wcet/qta/lint jobs.
	Bounds map[string]int `json:"bounds,omitempty"`
	// InferBounds enables automatic loop-bound inference for wcet/qta
	// jobs; nil means true.
	InferBounds *bool `json:"infer_bounds,omitempty"`
	// TimeoutMS caps the job's wall-clock execution; 0 picks the server
	// default. The deadline is enforced through the job context, so an
	// expired job frees its worker promptly.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// IdempotencyKey deduplicates submissions: a submit whose key
	// matches a previously accepted job (including jobs replayed from
	// the journal after a restart) returns that job's status instead of
	// enqueuing a duplicate execution. The HTTP layer also accepts the
	// key via the Idempotency-Key request header. Keys live as long as
	// the job they name is retained in memory.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// Sensor and Stream preload the sensor device and the DMA stream
	// engine; UARTIn preloads the UART receive queue. Interrupt-driven
	// guests (run, fault, qta jobs) consume these as their stimuli.
	Sensor []int16 `json:"sensor,omitempty"`
	Stream []int16 `json:"stream,omitempty"`
	UARTIn string  `json:"uart_in,omitempty"`

	// Fault parametrizes fault-campaign jobs.
	Fault *FaultSpec `json:"fault,omitempty"`

	// IRQ parametrizes "irt" (interrupt-response-time) jobs.
	IRQ *IRQSpec `json:"irq,omitempty"`
}

// FaultSpec mirrors the s4e-fault plan flags, so a service campaign is
// plan-identical (and therefore classification-identical) to the CLI
// run with the same values.
type FaultSpec struct {
	Seed         int64 `json:"seed"`
	GPRTransient int   `json:"gpr"`
	GPRPermanent int   `json:"gprperm"`
	MemPermanent int   `json:"mem"`
	CodeBitflip  int   `json:"code"`
	// Workers caps the campaign's parallel mutant runners; 0 means the
	// server default (one — the service's own worker pool provides the
	// cross-job parallelism).
	Workers int `json:"workers,omitempty"`
	// NoPool disables translation-pool sharing for this campaign (the
	// ablation switch, mirroring s4e-fault -pool=false).
	NoPool bool `json:"no_pool,omitempty"`
	// Shards splits the campaign's mutant plan into this many contiguous
	// index ranges executed as independent sub-jobs on the server's
	// worker pool, then deterministically merged (bit-identical to the
	// unsharded campaign — see fault.MergeShards). <=1 runs unsharded.
	// Workers applies per shard, so total parallelism is bounded by the
	// server's worker pool, not Shards×Workers.
	Shards int `json:"shards,omitempty"`
	// ISRHandler, when set, names the interrupt-handler entry symbol and
	// switches the campaign to the ISR-targeted plan (fault.NewISRPlan):
	// code bit flips land only in the handler's reachable instructions
	// and memory faults only in the ISR stack window below the initial
	// stack pointer.
	ISRHandler string `json:"isr_handler,omitempty"`
	// StackBytes sizes the ISR stack fault window (default 64).
	StackBytes uint32 `json:"stack_bytes,omitempty"`
	// LatencyBudget, when non-zero, classifies otherwise-benign mutants
	// whose worst observed interrupt-service latency exceeds this many
	// cycles as latency violations (fault.LatencyViol).
	LatencyBudget uint64 `json:"latency_budget,omitempty"`
}

// IRQSpec parametrizes "irt" jobs: the static interrupt-response-time
// bound cross-checked against adversarially timed interrupt injection
// (flow.RunIRT), mirroring s4e-qta -irq.
type IRQSpec struct {
	// Workload names a built-in interrupt demonstrator (pid_timer,
	// dma_stream, uart_cmd). It brings its own source, stimuli, budget
	// and expected exit code, so Source and ELF must be empty.
	Workload string `json:"workload,omitempty"`
	// Handler names the ISR entry symbol of a custom Source (required
	// when Workload is empty; ELF uploads are not supported — the IRT
	// analyzer wants the assembled symbol table and loop bounds).
	Handler string `json:"handler,omitempty"`
	// Expect is the exit code the custom source's golden (interrupt-free
	// trigger at the horizon) run must produce.
	Expect uint32 `json:"expect,omitempty"`
	// Samples is the number of adversarial trigger points (default 32).
	Samples int `json:"samples,omitempty"`
	// Seed jitters the trigger points inside their strata.
	Seed uint64 `json:"seed,omitempty"`
}

// State is the lifecycle phase of a job.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateErrored   State = "errored"
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateErrored || s == StateCancelled
}

// Job is one accepted analysis job. Mutable fields are guarded by the
// server mutex; the resolved program and validated parameters are
// immutable after submission.
type Job struct {
	ID   string
	Type string

	req     Request
	prog    *asm.Program
	profile *timing.Profile
	engine  emu.Engine
	budget  uint64
	timeout time.Duration

	key      string // idempotency key, "" when none
	replayed bool   // restored from the journal (terminal stub)

	state     State
	attempts  int
	err       string
	result    any
	cancel    func() // non-nil while running
	cancelled bool   // user-requested (vs deadline)
	released  bool   // queue-slot accounting already released (cancelled while queued)

	// shardRun marks an internal campaign-shard work item riding the job
	// queue; such items never enter the jobs map or the journal.
	shardRun func()

	// lifecycle event stream (see events.go); guarded by the server
	// mutex like the rest of the mutable state.
	events     []Event
	progressEv *Event
	progress   *Progress
	eventSeq   int
	notify     chan struct{}

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Status is the JSON shape of a job's lifecycle, returned by the submit
// and status endpoints.
type Status struct {
	ID        string     `json:"id"`
	Type      string     `json:"type"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	Attempts  int        `json:"attempts,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// DurationMS is the execution time of a finished job.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// IdempotencyKey echoes the submission's deduplication key.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Progress is the live campaign progress of a running fault job
	// (mutants done/total, per-shard when sharded).
	Progress *Progress `json:"progress,omitempty"`
}

// status snapshots the job under the server mutex.
func (j *Job) status() Status {
	st := Status{
		ID: j.ID, Type: j.Type, State: j.state, Error: j.err,
		Attempts: j.attempts, Submitted: j.submitted,
		IdempotencyKey: j.key, Progress: j.progress.clone(),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
		if !j.started.IsZero() {
			st.DurationMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	return st
}

// newID returns a random 16-hex-digit job identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived ID; uniqueness is best-effort then.
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// jobTypes is the set of accepted job types.
var jobTypes = map[string]bool{
	"run": true, "fault": true, "wcet": true, "qta": true, "lint": true,
	"subset": true, "irt": true,
}

// maxELFImage bounds the flattened address span of an uploaded ELF, so
// a malicious segment layout cannot make the server allocate gigabytes.
const maxELFImage = 32 << 20

// resolveProgram turns the request's Source or ELF into the flat
// program image every analysis layer consumes.
func resolveProgram(req *Request) (*asm.Program, error) {
	switch {
	case req.Source != "" && len(req.ELF) > 0:
		return nil, fmt.Errorf("give either source or elf, not both")
	case req.Source != "":
		return asm.AssembleAt(vp.Prelude+req.Source, vp.RAMBase)
	case len(req.ELF) > 0:
		img, err := elf.Read(req.ELF)
		if err != nil {
			return nil, err
		}
		return programFromELF(img)
	}
	return nil, fmt.Errorf("job needs source or elf")
}

// programFromELF flattens a loaded ELF image into the asm.Program shape
// (origin, contiguous bytes, entry, symbols) the campaign and analysis
// entry points share with assembled sources.
func programFromELF(img *elf.Image) (*asm.Program, error) {
	if len(img.Segments) == 0 {
		return nil, fmt.Errorf("elf has no loadable segments")
	}
	// Segment ends are computed in uint64: seg.Addr+len(seg.Data) wraps
	// uint32 for segments reaching the top of the address space, which
	// would bypass the span check below and panic in the copy.
	lo, hi := uint64(^uint32(0)), uint64(0)
	for _, seg := range img.Segments {
		end := uint64(seg.Addr) + uint64(len(seg.Data))
		if end > 1<<32 {
			return nil, fmt.Errorf("elf segment at 0x%08x overflows the 32-bit address space (%d bytes)",
				seg.Addr, len(seg.Data))
		}
		if uint64(seg.Addr) < lo {
			lo = uint64(seg.Addr)
		}
		if end > hi {
			hi = end
		}
	}
	if hi < lo || hi-lo > maxELFImage {
		return nil, fmt.Errorf("elf image span %d bytes exceeds the %d limit", hi-lo, maxELFImage)
	}
	bytes := make([]byte, hi-lo)
	for _, seg := range img.Segments {
		copy(bytes[uint64(seg.Addr)-lo:], seg.Data)
	}
	return &asm.Program{
		Org:     uint32(lo),
		Entry:   img.Entry,
		Bytes:   bytes,
		Symbols: img.Symbols,
	}, nil
}
