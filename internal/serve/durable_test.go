package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/elf"
	"repro/internal/serve/store"
	"repro/internal/workloads"
)

// TestRetryStopsAtJobDeadline pins the retry-loop fix: when the job
// context expires during the backoff sleep, the worker must not burn a
// further attempt on the dead context — the attempt count stays honest
// and the reported error is the original transient failure, not the
// context error of a doomed re-execution.
func TestRetryStopsAtJobDeadline(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Retries: 5, RetryBackoff: 150 * time.Millisecond})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		return nil, Transient(fmt.Errorf("flaky dependency"))
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea"), TimeoutMS: 40})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateErrored {
		t.Fatalf("state %s, want errored", st.State)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (no re-execution on an expired context)", st.Attempts)
	}
	if !strings.Contains(st.Error, "flaky dependency") {
		t.Errorf("error %q lost the original transient failure", st.Error)
	}
}

// TestProgramFromELFOverflow pins the uint32-wrap fix in programFromELF:
// a segment whose end wraps the 32-bit address space used to pass the
// span check and panic in the copy; it must be rejected cleanly, while
// a segment legitimately ending exactly at 2^32 stays loadable.
func TestProgramFromELFOverflow(t *testing.T) {
	mk := func(segs ...elf.Segment) *elf.Image {
		return &elf.Image{Entry: segs[0].Addr, Segments: segs}
	}
	cases := []struct {
		name    string
		img     *elf.Image
		wantErr string
	}{
		{"wraps top of address space",
			mk(elf.Segment{Addr: 0xFFFFFFF0, Data: make([]byte, 0x20)}), "overflows"},
		{"wraps by one byte",
			mk(elf.Segment{Addr: 0xFFFFFFFF, Data: make([]byte, 2)}), "overflows"},
		{"wraps far past zero",
			mk(elf.Segment{Addr: 0xFFFF0000, Data: make([]byte, 0x20000)}), "overflows"},
		{"span too large",
			mk(elf.Segment{Addr: 0, Data: []byte{1}},
				elf.Segment{Addr: 0xFFFF0000, Data: []byte{1}}), "exceeds"},
		{"no segments", &elf.Image{}, "no loadable segments"},
		{"exact top fit",
			mk(elf.Segment{Addr: 0xFFFFFF00, Data: make([]byte, 0x100)}), ""},
		{"two segments merge",
			mk(elf.Segment{Addr: 0x1000, Data: []byte{1, 2, 3, 4}},
				elf.Segment{Addr: 0x2000, Data: []byte{5, 6}}), ""},
	}
	for _, c := range cases {
		p, err := programFromELF(c.img)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.wantErr)
		}
		if p != nil {
			t.Errorf("%s: got a program alongside the error", c.name)
		}
	}

	// End to end: an uploaded ELF carrying the wrapping segment must come
	// back as a clean submission error, not a panic.
	s := newServer(t, Config{Workers: 1})
	bad := elf.Write(mk(elf.Segment{Addr: 0xFFFFFFF0, Data: make([]byte, 0x20)}))
	if _, err := s.Submit(Request{Type: "run", ELF: bad}); err == nil ||
		!strings.Contains(err.Error(), "overflows") {
		t.Errorf("submit of wrapping ELF: err %v, want overflow rejection", err)
	}
}

// FuzzProgramFromELF drives segment geometry through the flattener: no
// input may panic, and accepted images must respect the span bound.
func FuzzProgramFromELF(f *testing.F) {
	f.Add(uint32(0x1000), uint16(64), uint32(0x2000), uint16(32))
	f.Add(uint32(0xFFFFFFF0), uint16(0x20), uint32(0), uint16(0))
	f.Add(uint32(0xFFFFFFFF), uint16(2), uint32(0xFFFF0000), uint16(1))
	f.Add(uint32(0), uint16(1), uint32(0xFFFFFFFE), uint16(4))
	f.Fuzz(func(t *testing.T, a1 uint32, n1 uint16, a2 uint32, n2 uint16) {
		img := &elf.Image{Segments: []elf.Segment{
			{Addr: a1, Data: make([]byte, n1)},
			{Addr: a2, Data: make([]byte, n2)},
		}}
		p, err := programFromELF(img)
		if err != nil {
			return
		}
		if len(p.Bytes) > maxELFImage {
			t.Fatalf("accepted image of %d bytes (addrs 0x%x+%d, 0x%x+%d)",
				len(p.Bytes), a1, n1, a2, n2)
		}
	})
}

// TestCancelQueuedReleasesCapacity pins the accounting fix: cancelling
// a queued job must free its queue slot immediately (counter, gauge,
// admission), and the husk a worker later drains must not release the
// slot a second time.
func TestCancelQueuedReleasesCapacity(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueDepth: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "ok", nil
	}

	req := Request{Type: "run", Source: src(t, "xtea")}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker owns the first job; the queue is empty
	q1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit err %v, want ErrQueueFull", err)
	}

	st, ok := s.Cancel(q1.ID)
	if !ok || st.State != StateCancelled {
		t.Fatalf("cancel queued: state %s ok=%v", st.State, ok)
	}
	if d := s.mDepth.Value(); d != 1 {
		t.Errorf("queue depth gauge %v after cancel, want 1", d)
	}
	// The freed slot is immediately usable.
	q3, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit after queued cancel: %v (slot not released)", err)
	}

	close(release)
	wait(t, s, first.ID)
	wait(t, s, q2.ID)
	wait(t, s, q3.ID)
	// Draining the cancelled husk must not double-release: depth ends at
	// exactly zero, not negative.
	deadline := time.Now().Add(5 * time.Second)
	for s.mDepth.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := s.mDepth.Value(); d != 0 {
		t.Errorf("final queue depth gauge %v, want 0", d)
	}
}

// TestRetentionEvictsOldestTerminal checks the bounded-retention
// policy: beyond MaxTerminal finished jobs, the oldest are evicted
// (counted), the newest stay queryable.
func TestRetentionEvictsOldestTerminal(t *testing.T) {
	s := newServer(t, Config{Workers: 1, MaxTerminal: 2})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) { return "ok", nil }
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
		if err != nil {
			t.Fatal(err)
		}
		wait(t, s, st.ID)
		ids = append(ids, st.ID)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("retained %d jobs, want 2", got)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest job still retained past the bound")
	}
	if _, ok := s.Job(ids[4]); !ok {
		t.Error("newest job evicted")
	}
	if got := s.mEvicted.Value(); got != 3 {
		t.Errorf("evicted counter %v, want 3", got)
	}
}

// TestRetentionTTL checks time-based eviction: a finished job older
// than TerminalTTL is dropped on the next terminal transition.
func TestRetentionTTL(t *testing.T) {
	s := newServer(t, Config{Workers: 1, TerminalTTL: 30 * time.Millisecond})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) { return "ok", nil }
	a, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, s, a.ID)
	time.Sleep(60 * time.Millisecond)
	b, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, s, b.ID)
	if _, ok := s.Job(a.ID); ok {
		t.Error("job past its TTL still retained")
	}
	if _, ok := s.Job(b.ID); !ok {
		t.Error("fresh job evicted")
	}
}

// TestIdempotencyWindowIsRetention: a key deduplicates against retained
// jobs; once its job is evicted, the key is free again.
func TestIdempotencyWindowIsRetention(t *testing.T) {
	s := newServer(t, Config{Workers: 1, MaxTerminal: 1})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) { return "ok", nil }
	req := Request{Type: "run", Source: src(t, "xtea"), IdempotencyKey: "k"}

	st1, created, err := s.submit(req)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	wait(t, s, st1.ID)

	st2, created, err := s.submit(req)
	if err != nil || created || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: id=%s created=%v err=%v, want replay of %s",
			st2.ID, created, err, st1.ID)
	}
	if st2.IdempotencyKey != "k" {
		t.Errorf("status does not echo the idempotency key: %+v", st2)
	}
	if got := s.mIdemHits.Value(); got != 1 {
		t.Errorf("idempotent hit counter %v, want 1", got)
	}

	// Push the keyed job out of retention; the key must come free.
	ev, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	wait(t, s, ev.ID)
	st3, created, err := s.submit(req)
	if err != nil || !created || st3.ID == st1.ID {
		t.Fatalf("post-eviction submit: id=%s created=%v err=%v, want a fresh job",
			st3.ID, created, err)
	}
}

// TestJournalReplayAfterCrash is the durability anchor: a server with a
// journal is killed (no drain) with one job finished, one running, and
// one queued. A fresh server over the same state directory must restore
// the finished job's status and result, re-queue and complete the two
// live jobs under their original IDs, and answer an idempotent
// resubmission with the original job instead of executing a duplicate.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workloads.ByName("xtea")

	s1 := New(Config{Workers: 1, QueueDepth: 4, Store: st1})
	started := make(chan struct{})
	var once sync.Once
	s1.execOverride = func(ctx context.Context, j *Job) (any, error) {
		if j.req.IdempotencyKey == "alpha" {
			return "ok", nil
		}
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	reqA := Request{Type: "run", Source: w.Source, Budget: w.Budget, IdempotencyKey: "alpha"}
	jobA, err := s1.Submit(reqA)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, s1, jobA.ID)
	jobB, err := s1.Submit(Request{Type: "run", Source: w.Source, Budget: w.Budget})
	if err != nil {
		t.Fatal(err)
	}
	<-started // B is running
	jobC, err := s1.Submit(Request{Type: "run", Source: w.Source, Budget: w.Budget})
	if err != nil {
		t.Fatal(err)
	}

	// Crash: the journal stops cold — no drain, no terminal records for
	// B or C. (The forced shutdown below only reclaims the goroutines;
	// its terminal appends hit a closed store and go nowhere.)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	s1.Shutdown(ctx) //nolint:errcheck // deadline path is the point
	cancel()

	// Restart over the same state directory. The real executor runs the
	// resumed jobs: both are plain xtea runs and complete on their own.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := newServer(t, Config{Workers: 1, QueueDepth: 4, Store: st2})

	// The finished job is back, result included, without re-running.
	stA, ok := s2.Job(jobA.ID)
	if !ok || stA.State != StateDone {
		t.Fatalf("replayed job %s: state %s ok=%v, want done", jobA.ID, stA.State, ok)
	}
	if _, res, _ := s2.Result(jobA.ID); fmt.Sprintf("%s", res) != `"ok"` {
		t.Errorf("replayed result %s, want the journaled \"ok\"", res)
	}
	if got := s2.mReplayed.Value(); got != 1 {
		t.Errorf("replayed counter %v, want 1", got)
	}

	// The interrupted jobs resume under their original IDs and finish.
	for _, id := range []string{jobB.ID, jobC.ID} {
		st := wait(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("resumed job %s state %s (err %q), want done", id, st.State, st.Error)
		}
		_, res, _ := s2.Result(id)
		rr, ok := res.(RunResult)
		if !ok {
			t.Fatalf("resumed job %s result type %T", id, res)
		}
		if rr.Code != w.Expect {
			t.Errorf("resumed job %s guest code 0x%x, want 0x%x", id, rr.Code, w.Expect)
		}
	}
	if got := s2.mResumed.Value(); got != 2 {
		t.Errorf("resumed counter %v, want 2", got)
	}

	// Idempotent resubmission across the restart: same key, same job, no
	// duplicate execution.
	stDup, created, err := s2.submit(reqA)
	if err != nil || created || stDup.ID != jobA.ID {
		t.Fatalf("resubmit after restart: id=%s created=%v err=%v, want replay of %s",
			stDup.ID, created, err, jobA.ID)
	}
	if got := len(s2.Jobs()); got != 3 {
		t.Errorf("job count after idempotent resubmit %d, want 3", got)
	}
}

// TestShardedCampaignMatchesCLI is the sharding acceptance anchor: a
// campaign split into K sub-jobs on the worker pool must classify every
// mutant identically to the one-shot CLI campaign, at K=1 and K=4, and
// report complete progress.
func TestShardedCampaignMatchesCLI(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	spec := FaultSpec{Seed: 9, GPRTransient: 20, GPRPermanent: 6, MemPermanent: 10,
		CodeBitflip: 10, Workers: 2}
	ref := cliReference(t, w.Source, w.Budget, spec)
	want := make([]string, len(ref.Details))
	for i, o := range ref.Details {
		want[i] = o.String()
	}

	s := newServer(t, Config{Workers: 4, QueueDepth: 8})
	for _, shards := range []int{1, 4} {
		sp := spec
		sp.Shards = shards
		st, err := s.Submit(Request{Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &sp})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		st = wait(t, s, st.ID)
		if st.State != StateDone {
			t.Fatalf("shards=%d state %s (err %q)", shards, st.State, st.Error)
		}
		_, res, _ := s.Result(st.ID)
		fr, ok := res.(FaultResult)
		if !ok {
			t.Fatalf("shards=%d result type %T", shards, res)
		}
		if fr.Total != ref.Total {
			t.Fatalf("shards=%d total %d, want %d", shards, fr.Total, ref.Total)
		}
		for k, o := range fr.Details {
			if o != want[k] {
				t.Fatalf("shards=%d mutant %d classified %s, CLI classified %s",
					shards, k, o, want[k])
			}
		}
		if st.Progress == nil || st.Progress.Done != uint64(ref.Total) {
			t.Errorf("shards=%d final progress %+v, want done=%d", shards, st.Progress, ref.Total)
		}
		if shards > 1 {
			if len(st.Progress.Shards) != shards {
				t.Fatalf("progress has %d shards, want %d", len(st.Progress.Shards), shards)
			}
			for _, sp := range st.Progress.Shards {
				if sp.State != "done" || sp.Done != uint64(sp.Hi-sp.Lo) {
					t.Errorf("shard %d final state %q done %d (range [%d,%d))",
						sp.Shard, sp.State, sp.Done, sp.Lo, sp.Hi)
				}
			}
		}
	}
}

// TestShardedCampaignSingleWorker: with one worker the coordinator must
// run every shard inline or via the help loop — never deadlock.
func TestShardedCampaignSingleWorker(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	spec := FaultSpec{Seed: 3, GPRTransient: 12, CodeBitflip: 8, Workers: 1, Shards: 4}
	s := newServer(t, Config{Workers: 1, QueueDepth: 2})
	st, err := s.Submit(Request{Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if st = wait(t, s, st.ID); st.State != StateDone {
		t.Fatalf("state %s (err %q)", st.State, st.Error)
	}
}
