package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 200 on an
//	                            Idempotency-Key replay; 400, 429, 503)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result payload (202 while not terminal)
//	GET    /v1/jobs/{id}/events lifecycle stream (server-sent events)
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness + queue summary
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// The idempotency key rides either the request body or the standard
	// Idempotency-Key header (the body, when set, wins).
	if key := r.Header.Get("Idempotency-Key"); key != "" && req.IdempotencyKey == "" {
		req.IdempotencyKey = key
	}
	st, created, err := s.submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Back off roughly one job's worth of service time.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	if !created {
		// Idempotent replay: the key named an already-accepted job.
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultBody wraps a terminal job's status and payload.
type resultBody struct {
	Status Status `json:"status"`
	Result any    `json:"result,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, res, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !st.State.terminal() {
		// Not done yet: 202 with the live status, so clients can poll
		// the same URL until the payload appears.
		writeJSON(w, http.StatusAccepted, resultBody{Status: st})
		return
	}
	writeJSON(w, http.StatusOK, resultBody{Status: st, Result: res})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}

// healthBody is the /healthz JSON shape.
type healthBody struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Jobs          int     `json:"jobs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := healthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.queued,
		QueueCapacity: s.cfg.QueueDepth,
		Jobs:          len(s.jobs),
	}
	if s.draining {
		body.Status = "draining"
	}
	s.mu.Unlock()
	code := http.StatusOK
	if body.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
