package store_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve/store"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []store.Record{
		{Kind: store.RecordSubmit, JobID: "job-1", Key: "k1", Type: "emu",
			Request: json.RawMessage(`{"type":"emu"}`)},
		{Kind: store.RecordSubmit, JobID: "job-2", Type: "fault"},
		{Kind: store.RecordTerminal, JobID: "job-1", State: "succeeded",
			Attempts: 1, Result: json.RawMessage(`{"insts":42}`)},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Replay()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.Kind != r.Kind || g.JobID != r.JobID || g.Key != r.Key ||
			g.Type != r.Type || g.State != r.State || g.Attempts != r.Attempts {
			t.Errorf("record %d: got %+v, want %+v", i, g, r)
		}
		if string(g.Result) != string(r.Result) {
			t.Errorf("record %d result: got %s, want %s", i, g.Result, r.Result)
		}
		if g.Time.IsZero() {
			t.Errorf("record %d: Append did not stamp Time", i)
		}
	}
	if st2.Torn() != 0 {
		t.Errorf("clean journal reports %d torn lines", st2.Torn())
	}
}

// A journal whose final line was cut mid-write (the crash case) must
// still replay every complete record, count the torn tail, and accept
// new appends.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(store.Record{Kind: store.RecordSubmit, JobID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(store.Record{Kind: store.RecordTerminal, JobID: "a", State: "succeeded"}); err != nil {
		t.Fatal(err)
	}
	path := st.Path()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn write: append half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"submit","job_id":"tor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer st2.Close()
	if got := len(st2.Replay()); got != 2 {
		t.Errorf("replayed %d records, want 2", got)
	}
	if st2.Torn() != 1 {
		t.Errorf("torn count %d, want 1", st2.Torn())
	}
	// The store must stay appendable after recovery.
	if err := st2.Append(store.Record{Kind: store.RecordSubmit, JobID: "b"}); err != nil {
		t.Fatalf("append after torn recovery: %v", err)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "state")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := os.Stat(st.Path()); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}
}
