// Package store is the durability layer of the analysis service: an
// append-only JSONL journal of job submissions and terminal transitions
// kept under a state directory. The journal is the source of truth for
// job history — a restarted server replays it to restore every finished
// job's status and result, to rebuild the idempotency-key index, and to
// re-queue jobs that were queued or running when the process died. The
// in-memory job table may evict old terminal jobs (bounded retention);
// the journal never forgets. Records are self-describing JSON objects,
// one per line, so the journal doubles as an audit log greppable with
// standard tools. A torn final line (the signature of a crash mid-write)
// is detected and ignored on replay rather than poisoning the restart.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record kinds. A job's life in the journal is one RecordSubmit followed
// by at most one RecordTerminal; a job with no terminal record was alive
// (queued or running) when the journal closed, and a replaying server
// re-queues it.
const (
	// RecordSubmit captures an accepted submission: the job ID, the
	// optional idempotency key, and the raw request body needed to
	// re-validate and re-run the job after a restart.
	RecordSubmit = "submit"
	// RecordTerminal captures a terminal transition (done, errored,
	// cancelled) with the error string, attempt count, and the result
	// payload serialized as raw JSON.
	RecordTerminal = "terminal"
)

// Record is one journal line.
type Record struct {
	Time  time.Time `json:"time"`
	Kind  string    `json:"kind"`
	JobID string    `json:"job_id"`

	// Submit fields.
	Key     string          `json:"key,omitempty"`
	Type    string          `json:"type,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	// Terminal fields.
	State    string          `json:"state,omitempty"`
	Error    string          `json:"error,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Store is an open journal. Append is safe for concurrent use; the
// replayed prefix read at Open time is immutable.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string

	replayed []Record
	torn     int // undecodable lines skipped during replay
}

// journalName is the journal file inside the state directory.
const journalName = "jobs.jsonl"

// Open creates the state directory if needed, replays the existing
// journal (if any), and opens it for appending. Lines that do not
// decode — a torn tail from a crash mid-write, typically — are skipped
// and counted, never fatal.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // result payloads can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Kind == "" || r.JobID == "" {
			s.torn++
			continue
		}
		s.replayed = append(s.replayed, r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	return s, nil
}

// Path returns the journal file path.
func (s *Store) Path() string { return s.path }

// Replay returns the records read at Open time, in journal order. The
// slice is shared; callers must not mutate it.
func (s *Store) Replay() []Record { return s.replayed }

// Torn reports how many undecodable journal lines Open skipped.
func (s *Store) Torn() int { return s.torn }

// Append writes one record to the journal and flushes it to the OS.
// The write is a single Write call of one full line, so concurrent
// appenders never interleave bytes and a crash tears at most the final
// line.
func (s *Store) Append(r Record) error {
	if r.Time.IsZero() {
		r.Time = time.Now().UTC()
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the journal. Further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
