package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/qta"
	"repro/internal/subset"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// parseEngine maps the request's engine name to the emu engine, through
// the centralized name list (emu.ParseEngine) so the service accepts
// exactly the spellings the CLIs do.
func parseEngine(name string) (emu.Engine, error) {
	return emu.ParseEngine(name)
}

// binKey identifies one guest binary under one execution specialization:
// jobs agreeing on the key share the compiled translation pool, and
// campaign jobs additionally share per-budget golden runs.
type binKey struct {
	image   [32]byte // sha256 over org, entry, image bytes
	engine  emu.Engine
	profile string
}

// binEntry is the shared state of one binary: the compiled translation
// pool (published by the first job that ran the binary cleanly) and the
// fault goldens keyed by instruction budget.
type binEntry struct {
	mu      sync.Mutex
	pool    *emu.TBPool
	goldens map[uint64]*fault.Golden
}

// bin returns the cache entry for a job's binary/engine/profile.
func (s *Server) bin(j *Job) *binEntry {
	h := sha256.New()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], j.prog.Org)
	binary.LittleEndian.PutUint32(hdr[4:], j.prog.Entry)
	h.Write(hdr[:])
	h.Write(j.prog.Bytes)
	// Device stimuli are part of the guest's identity: golden runs and
	// cached results depend on what the sensor, DMA stream and UART feed
	// the program, so jobs differing only in stimuli must not share.
	binary.Write(h, binary.LittleEndian, int64(len(j.req.Sensor)))
	binary.Write(h, binary.LittleEndian, j.req.Sensor)
	binary.Write(h, binary.LittleEndian, int64(len(j.req.Stream)))
	binary.Write(h, binary.LittleEndian, j.req.Stream)
	h.Write([]byte(j.req.UARTIn))
	key := binKey{engine: j.engine, profile: j.profile.ProfileName}
	h.Sum(key.image[:0])
	e, loaded := s.bins.Load(key)
	if !loaded {
		e, _ = s.bins.LoadOrStore(key, &binEntry{goldens: map[uint64]*fault.Golden{}})
	}
	return e.(*binEntry)
}

// poolShare counts cross-job translation-pool cache traffic.
func (s *Server) poolShare(hit bool) {
	which := "miss"
	if hit {
		which = "hit"
	}
	s.reg.Counter(fmt.Sprintf("s4e_serve_pool_jobs_total{cache=%q}", which),
		"jobs by shared-translation-pool cache outcome").Inc()
}

// newPlatform builds a loaded platform for an executing job.
func (j *Job) newPlatform() (*vp.Platform, error) {
	p, err := vp.New(vp.Config{
		Profile: j.profile,
		Sensor:  j.req.Sensor,
		Stream:  j.req.Stream,
		UARTIn:  []byte(j.req.UARTIn),
	})
	if err != nil {
		return nil, err
	}
	p.Machine.Engine = j.engine
	if err := p.LoadProgram(j.prog); err != nil {
		return nil, err
	}
	return p, nil
}

// codeClean reports whether the run left its translated code bytes
// pristine (no store into translated code, no translation over a
// written page) — the same gate fault campaigns apply before publishing
// a pool.
func codeClean(p *vp.Platform) bool {
	return p.Machine.CodeWrites() == 0 && !p.Machine.CodePagesDirty()
}

// RunResult is the payload of a finished "run" job.
type RunResult struct {
	Reason string `json:"reason"`
	Code   uint32 `json:"code"`
	PC     uint32 `json:"pc"`
	Insts  uint64 `json:"insts"`
	Cycles uint64 `json:"cycles"`
	Output string `json:"output"`
}

// execRun executes the guest once on the virtual platform. Jobs over
// the same binary share the compiled translation pool: the first run
// publishes it, later runs (and campaigns) adopt its blocks instead of
// recompiling.
func (s *Server) execRun(ctx context.Context, j *Job) (any, error) {
	p, err := j.newPlatform()
	if err != nil {
		return nil, Transient(err)
	}
	e := s.bin(j)
	e.mu.Lock()
	pool := e.pool
	e.mu.Unlock()
	s.poolShare(pool != nil)
	p.Machine.AttachTBPool(pool) // nil attach is a no-op detach
	stop, err := p.RunContext(ctx, j.budget)
	res := RunResult{
		Reason: stop.Reason.String(), Code: stop.Code, PC: stop.PC,
		Insts: p.Machine.Hart.Instret, Cycles: p.Machine.Hart.Cycle,
		Output: p.Output(),
	}
	if err != nil {
		return res, err
	}
	if pool == nil && codeClean(p) {
		built := p.Machine.BuildTBPool()
		e.mu.Lock()
		if e.pool == nil {
			e.pool = built
		}
		e.mu.Unlock()
	}
	return res, nil
}

// FaultResult is the payload of a finished "fault" job. Details lists
// every mutant's outcome in plan order, so results are comparable
// bit-for-bit with the CLI campaign over the same plan.
type FaultResult struct {
	Total      int                       `json:"total"`
	ByOutcome  map[string]int            `json:"by_outcome"`
	ByModel    map[string]map[string]int `json:"by_model"`
	Details    []string                  `json:"details"`
	GoldenStop string                    `json:"golden_stop"`
	GoldenInst uint64                    `json:"golden_insts"`
	DurationMS float64                   `json:"duration_ms"`
	PoolShared bool                      `json:"pool_shared"`
	Errors     string                    `json:"errors,omitempty"`
}

// execFault runs a fault-injection campaign. The golden run and the
// shared translation pool are computed once per (binary, engine,
// profile, budget) and reused by every later campaign job over the
// same binary — the cross-job analogue of the per-campaign pool
// warm-start.
func (s *Server) execFault(ctx context.Context, j *Job) (any, error) {
	spec := j.req.Fault
	tg := &fault.Target{
		Program: j.prog, Budget: j.budget, Profile: j.profile, Engine: j.engine,
		Sensor: j.req.Sensor, Stream: j.req.Stream, UARTIn: []byte(j.req.UARTIn),
		LatencyBudget: spec.LatencyBudget,
	}

	e := s.bin(j)
	e.mu.Lock()
	golden := e.goldens[j.budget]
	pool := e.pool
	e.mu.Unlock()
	hit := golden != nil
	if !hit {
		g, p, err := fault.Prepare(tg)
		if err != nil {
			return nil, err
		}
		golden = g
		e.mu.Lock()
		e.goldens[j.budget] = g
		if e.pool == nil && p != nil {
			e.pool = p
		}
		pool = e.pool
		e.mu.Unlock()
	}
	s.poolShare(hit)

	var plan fault.Plan
	if spec.ISRHandler != "" {
		// ISR-targeted campaign: faults concentrated on the handler's
		// code and the interrupt stack frame, plan-identical to
		// s4e-fault -isr with the same values.
		var err error
		plan, err = fault.NewISRPlan(j.prog, spec.ISRHandler, fault.ISRPlanConfig{
			Seed:         spec.Seed,
			GPRTransient: spec.GPRTransient,
			GPRPermanent: spec.GPRPermanent,
			MemPermanent: spec.MemPermanent,
			CodeBitflip:  spec.CodeBitflip,
			GoldenInsts:  golden.Insts,
			StackTop:     tg.StackTop(),
			StackBytes:   spec.StackBytes,
		})
		if err != nil {
			return nil, err
		}
	} else {
		end := vp.RAMBase + uint32(len(j.prog.Bytes))
		plan = fault.NewPlan(fault.PlanConfig{
			Seed:         spec.Seed,
			GPRTransient: spec.GPRTransient,
			GPRPermanent: spec.GPRPermanent,
			MemPermanent: spec.MemPermanent,
			CodeBitflip:  spec.CodeBitflip,
			GoldenInsts:  golden.Insts,
			CodeStart:    vp.RAMBase, CodeEnd: end,
			DataStart: vp.RAMBase, DataEnd: end,
		})
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = 1
	}
	opts := fault.Options{
		Workers:      workers,
		NoSharedPool: spec.NoPool,
		Golden:       golden,
		Pool:         pool,
		Metrics:      s.reg,
	}
	var res *fault.Results
	var err error
	if spec.Shards > 1 && len(plan.Faults) > 0 {
		// Sharded: contiguous mutant ranges run as independent sub-jobs
		// on the worker pool, merged bit-identically to the unsharded
		// campaign (see runShardedCampaign).
		res, err = s.runShardedCampaign(ctx, j, tg, plan, opts, shardCount(spec.Shards, len(plan.Faults)))
	} else {
		opts.OnProgress = func(done, total uint64) { s.noteProgress(j, done, total) }
		res, err = fault.CampaignContext(ctx, tg, plan, opts)
	}
	if res == nil {
		return nil, err
	}
	out := FaultResult{
		Total:      res.Total,
		ByOutcome:  map[string]int{},
		ByModel:    map[string]map[string]int{},
		Details:    make([]string, len(res.Details)),
		GoldenStop: golden.Stop.String(),
		GoldenInst: golden.Insts,
		DurationMS: float64(res.Duration) / float64(time.Millisecond),
		PoolShared: pool != nil && !spec.NoPool,
	}
	for o, n := range res.ByOutcome {
		out.ByOutcome[o.String()] = n
	}
	for m, row := range res.ByModel {
		mr := map[string]int{}
		for o, n := range row {
			mr[o.String()] = n
		}
		out.ByModel[m.String()] = mr
	}
	for i, o := range res.Details {
		out.Details[i] = o.String()
	}
	if err != nil {
		out.Errors = err.Error()
		if ctx.Err() != nil {
			// Cancellation/deadline: partial results plus the ctx error.
			return out, ctx.Err()
		}
		// Errored mutants: the campaign itself completed; the job is
		// done with the error recorded in the payload, mirroring the
		// CLI's keep-partial-results behaviour.
	}
	return out, nil
}

// WCETResult is the payload of a finished "wcet" job: the annotated CFG
// artifact (blocks, edges, bounds, the WCET bound) the QTA flow
// consumes.
type WCETResult struct {
	WCET      uint64          `json:"wcet"`
	Blocks    int             `json:"blocks"`
	Edges     int             `json:"edges"`
	Annotated *wcet.Annotated `json:"annotated"`
}

// analyze builds the CFG and runs the cancellable WCET analysis.
func (j *Job) analyze(ctx context.Context) (*wcet.Annotated, error) {
	g, err := cfg.Build(j.prog.Bytes, j.prog.Org, j.prog.Entry)
	if err != nil {
		return nil, err
	}
	infer := j.req.InferBounds == nil || *j.req.InferBounds
	return wcet.AnalyzeContext(ctx, g, wcet.Config{
		Profile:     j.profile,
		Bounds:      j.req.Bounds,
		Symbols:     j.prog.Symbols,
		InferBounds: infer,
	})
}

// execWCET runs the static WCET analysis.
func (s *Server) execWCET(ctx context.Context, j *Job) (any, error) {
	an, err := j.analyze(ctx)
	if err != nil {
		return nil, err
	}
	return WCETResult{WCET: an.WCET, Blocks: len(an.Blocks), Edges: len(an.Edges), Annotated: an}, nil
}

// QTAResult is the payload of a finished "qta" job: the three-way
// static/observed/dynamic timing comparison.
type QTAResult struct {
	StaticWCET  uint64 `json:"static_wcet"`
	QTATime     uint64 `json:"qta_time"`
	Dynamic     uint64 `json:"dynamic"`
	Insts       uint64 `json:"insts"`
	BlocksSeen  int    `json:"blocks_seen"`
	BlocksTotal int    `json:"blocks_total"`
	Missing     uint64 `json:"missing"`
	Traps       uint64 `json:"traps"`
	Sound       bool   `json:"sound"`
	StopReason  string `json:"stop_reason"`
}

// execQTA runs static analysis plus the timing-annotated co-simulation.
func (s *Server) execQTA(ctx context.Context, j *Job) (any, error) {
	an, err := j.analyze(ctx)
	if err != nil {
		return nil, err
	}
	p, err := j.newPlatform()
	if err != nil {
		return nil, Transient(err)
	}
	q, stop, err := qta.CoSim(ctx, an, p, j.budget)
	if err != nil {
		return nil, err
	}
	r := q.NewResult(j.ID, p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	return QTAResult{
		StaticWCET: r.StaticWCET, QTATime: r.QTATime, Dynamic: r.Dynamic,
		Insts: r.Insts, BlocksSeen: r.BlocksSeen, BlocksTotal: r.BlocksTotal,
		Missing: r.Missing, Traps: r.Traps, Sound: r.Sound(),
		StopReason: stop.Reason.String(),
	}, nil
}

// LintFinding is one linter diagnostic in a "lint" job's payload.
type LintFinding struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Addr     uint32 `json:"addr"`
	Line     int    `json:"line,omitempty"`
	Msg      string `json:"msg"`
}

// LintResult is the payload of a finished "lint" job.
type LintResult struct {
	Findings []LintFinding `json:"findings"`
	Definite int           `json:"definite"`
	Possible int           `json:"possible"`
	Info     int           `json:"info"`
}

// SubsetResult is the payload of a finished "subset" job: the
// whole-binary ISA-subset and resource-usage report.
type SubsetResult struct {
	Report *subset.Report `json:"report"`
}

// execSubset runs the interprocedural ISA-subset analyzer over the
// job's program.
func (s *Server) execSubset(ctx context.Context, j *Job) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	symbols := map[uint32]string{}
	for name, addr := range j.prog.Symbols {
		symbols[addr] = name
	}
	rep, err := subset.Analyze(j.prog.Bytes, j.prog.Org, j.prog.Entry, symbols)
	if err != nil {
		return nil, err
	}
	return SubsetResult{Report: rep}, nil
}

// execIRT runs the interrupt-response-time qualification: the static
// IRT bound cross-checked against adversarially timed interrupts
// (flow.RunIRT), the service twin of s4e-qta -irq. The payload is the
// flow.IRTResult: static bound decomposition, measured campaign, and
// the soundness verdict.
func (s *Server) execIRT(ctx context.Context, j *Job) (any, error) {
	spec := j.req.IRQ
	var w workloads.Workload
	if spec.Workload != "" {
		ww, ok := workloads.ByName(spec.Workload)
		if !ok || ww.Handler == "" {
			return nil, fmt.Errorf("unknown interrupt workload %q", spec.Workload)
		}
		w = ww
	} else {
		w = workloads.Workload{
			Name:       "job",
			Source:     j.req.Source,
			Budget:     j.budget,
			Expect:     spec.Expect,
			Handler:    spec.Handler,
			LoopBounds: j.req.Bounds,
			Sensor:     j.req.Sensor,
			Stream:     j.req.Stream,
			UARTIn:     []byte(j.req.UARTIn),
		}
	}
	return flow.RunIRT(ctx, w, j.profile, flow.IRTConfig{
		Engine:  j.engine,
		Samples: spec.Samples,
		Seed:    spec.Seed,
	})
}

// execLint runs the guest-binary linter under the platform
// configuration.
func (s *Server) execLint(ctx context.Context, j *Job) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	findings, err := flow.LintProgram(j.prog, j.req.Bounds)
	if err != nil {
		return nil, err
	}
	out := LintResult{Findings: []LintFinding{}}
	for _, f := range findings {
		out.Findings = append(out.Findings, LintFinding{
			Check: f.Check, Severity: f.Severity.String(),
			Addr: f.Addr, Line: f.Line, Msg: f.Msg,
		})
		switch f.Severity.String() {
		case "definite":
			out.Definite++
		case "possible":
			out.Possible++
		default:
			out.Info++
		}
	}
	return out, nil
}
