package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/workloads"
)

// httpServer starts an httptest server over a fresh service.
func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJob submits a request body and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, req Request) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// getJSON fetches a URL and returns status code plus raw body.
func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestHTTPLifecycle(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 2})
	w, _ := workloads.ByName("xtea")

	resp, st := postJob(t, ts, Request{Type: "run", Source: w.Source, Budget: w.Budget})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location %q", loc)
	}

	// Poll the result endpoint: 202 while pending, 200 with payload once
	// terminal.
	deadline := time.Now().Add(30 * time.Second)
	var code int
	var body []byte
	for time.Now().Before(deadline) {
		code, body = getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
		if code == http.StatusOK {
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("result status %d: %s", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	var rb struct {
		Status Status          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatalf("result body: %v (%s)", err, body)
	}
	if rb.Status.State != StateDone {
		t.Fatalf("final state %s (err %q)", rb.Status.State, rb.Status.Error)
	}
	var rr RunResult
	if err := json.Unmarshal(rb.Result, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Code != w.Expect {
		t.Errorf("guest code 0x%x, want 0x%x", rr.Code, w.Expect)
	}

	// Status endpoint agrees; listing contains the job.
	code, body = getJSON(t, ts.URL+"/v1/jobs/"+st.ID)
	if code != http.StatusOK || !strings.Contains(string(body), st.ID) {
		t.Errorf("status endpoint %d: %s", code, body)
	}
	code, body = getJSON(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(body), st.ID) {
		t.Errorf("list endpoint %d: %s", code, body)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", resp.StatusCode)
	}

	resp, _ = postJob(t, ts, Request{Type: "warp", Source: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid job status %d, want 400", resp.StatusCode)
	}

	if code, _ := getJSON(t, ts.URL+"/v1/jobs/doesnotexist"); code != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/doesnotexist/result"); code != http.StatusNotFound {
		t.Errorf("unknown result status %d, want 404", code)
	}
}

func TestHTTPQueueOverflow429(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "ok", nil
	}
	defer close(release)

	req := Request{Type: "run", Source: src(t, "xtea")}
	var overflowed *http.Response
	for i := 0; i < 4; i++ {
		resp, _ := postJob(t, ts, req)
		if resp.StatusCode == http.StatusTooManyRequests {
			overflowed = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d", i, resp.StatusCode)
		}
	}
	if overflowed == nil {
		t.Fatal("queue never overflowed")
	}
	if ra := overflowed.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
}

func TestHTTPCancel(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	started := make(chan struct{})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, st := postJob(t, ts, Request{Type: "run", Source: src(t, "xtea")})
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := wait(t, s, st.ID)
	if final.State != StateCancelled {
		t.Errorf("state %s, want cancelled", final.State)
	}
}

// TestHTTPMetricsAndHealth drives one real job through the service and
// checks the acceptance-level observability: a populated latency
// histogram, the queue-depth gauges, and a healthy /healthz.
func TestHTTPMetricsAndHealth(t *testing.T) {
	s, ts := httpServer(t, Config{Workers: 1})
	w, _ := workloads.ByName("xtea")
	_, st := postJob(t, ts, Request{Type: "run", Source: w.Source, Budget: w.Budget})
	wait(t, s, st.ID)

	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`s4e_serve_job_seconds_count{type="run"} 1`,
		`s4e_serve_jobs_submitted_total{type="run"} 1`,
		`s4e_serve_jobs_finished_total{type="run",state="done"} 1`,
		"s4e_serve_queue_depth_peak 1",
		"s4e_serve_queue_capacity 16",
		"s4e_serve_workers 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var h healthBody
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 1 || h.Jobs != 1 {
		t.Errorf("healthz %+v", h)
	}
}

// TestHTTPHealthzDraining checks that a draining server reports 503.
func TestHTTPHealthzDraining(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("draining healthz %d: %s", code, body)
	}
}
