package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Event is one entry on a job's lifecycle stream, delivered over
// GET /v1/jobs/{id}/events as a server-sent event. Seq increases
// monotonically per job; clients can resume a broken stream with the
// standard Last-Event-ID header. Progress events are coalesced — only
// the newest one is retained for late or resumed subscribers — while
// state-transition events (queued, running, done, errored, cancelled)
// are kept for the job's whole retention lifetime, so a subscriber that
// attaches after the job finished still sees the full transition
// history.
type Event struct {
	Seq  int       `json:"seq"`
	Type string    `json:"event"`
	Time time.Time `json:"time"`
	Data any       `json:"data,omitempty"`
}

// Progress is the payload of a "progress" event, and the live Progress
// field of a campaign job's Status: mutants classified so far out of
// the plan total, with a per-shard breakdown when the campaign runs
// sharded.
type Progress struct {
	Done   uint64          `json:"done"`
	Total  uint64          `json:"total"`
	Shards []ShardProgress `json:"shards,omitempty"`
}

// ShardProgress is one shard's slice of a sharded campaign: the
// contiguous mutant-index range [Lo,Hi) it executes and how far along
// it is.
type ShardProgress struct {
	Shard int    `json:"shard"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Done  uint64 `json:"done"`
	State string `json:"state"` // "queued", "running", "done"
}

// clone deep-copies the progress snapshot so status/event consumers
// never alias the live struct mutated under the server mutex.
func (p *Progress) clone() *Progress {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Shards = append([]ShardProgress(nil), p.Shards...)
	return &cp
}

// emitLocked appends one event to the job's stream and wakes every
// /events subscriber. Callers hold the server mutex. Progress events
// overwrite each other (only the latest is replayable); all other types
// accumulate.
func (j *Job) emitLocked(typ string, data any) {
	j.eventSeq++
	ev := Event{Seq: j.eventSeq, Type: typ, Time: time.Now(), Data: data}
	if typ == "progress" {
		j.progressEv = &ev
	} else {
		j.events = append(j.events, ev)
	}
	if j.notify != nil {
		close(j.notify)
		j.notify = nil
	}
}

// eventsSinceLocked returns the job's events with Seq > after in
// sequence order, plus a channel that is closed when a newer event
// arrives. Callers hold the server mutex.
func (j *Job) eventsSinceLocked(after int) ([]Event, <-chan struct{}) {
	var out []Event
	for _, ev := range j.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	if j.progressEv != nil && j.progressEv.Seq > after {
		out = append(out, *j.progressEv)
		sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	}
	if j.notify == nil {
		j.notify = make(chan struct{})
	}
	return out, j.notify
}

// handleEvents streams a job's lifecycle as server-sent events:
// queued/running/progress immediately on subscription (replayed from
// the retained stream), then live events until the job reaches a
// terminal state, at which point the stream ends. Clients reconnect
// with Last-Event-ID to skip events they already saw.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	last := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			last = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.mSubscribers.Add(1)
	defer s.mSubscribers.Add(-1)

	for {
		s.mu.Lock()
		evs, notify := j.eventsSinceLocked(last)
		terminal := j.state.terminal()
		s.mu.Unlock()
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return // client gone
			}
			last = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if terminal {
			// The terminal event is emitted in the same critical section
			// as the state change, so evs already carried everything.
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
