// Package serve is the long-running analysis service of the Scale4Edge
// ecosystem: an HTTP job server that accepts the one-shot CLI workloads
// — emulation runs, fault-injection campaigns, static WCET analysis,
// QTA co-simulation, guest-binary lint — as JSON jobs over uploaded
// guest binaries and executes them on a bounded worker pool. It is the
// piece that turns the toolbox into an operable system: a bounded queue
// that sheds load with 429 instead of growing without limit, per-job
// context deadlines and cancellation threaded into the analysis entry
// points (fault.CampaignContext, wcet.AnalyzeContext, qta.CoSim,
// vp.RunContext), per-job panic recovery that marks the job errored
// without killing its worker, retry-with-backoff for transient
// failures, graceful shutdown that drains in-flight jobs, and
// first-class observability through the internal/obs registry
// (/metrics, /healthz, per-job-type latency histograms, queue-depth
// gauge, shed/retry counters). Jobs over the same guest binary share
// one golden run and one compiled translation pool (emu.TBPool), so a
// burst of campaign jobs compiles the working set once, not once per
// job.
//
// The durability layer (internal/serve/store) journals every accepted
// submission and terminal transition to an append-only JSONL file: a
// restarted server replays the journal, restores finished jobs' status
// and results, rebuilds the idempotency-key index, and re-queues jobs
// that were queued or running at the crash. Fault campaigns can be
// sharded into contiguous mutant-index ranges executed as independent
// sub-jobs on the worker pool and merged bit-identically to the
// unsharded run, and every job's lifecycle (queued, running, campaign
// progress, terminal) streams as server-sent events from
// GET /v1/jobs/{id}/events.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/store"
	"repro/internal/timing"
	"repro/internal/workloads"
)

// Config parametrizes a server. The zero value is usable: two workers,
// a 16-deep queue, 60 s job timeout, two retries.
type Config struct {
	// Workers is the number of parallel job executors (<=0 means 2).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (<=0 means 16). A full queue sheds new submissions with
	// ErrQueueFull (HTTP 429 + Retry-After) instead of buffering
	// without limit.
	QueueDepth int
	// DefaultTimeout caps a job's execution wall-clock when the request
	// does not set one (<=0 means 60 s).
	DefaultTimeout time.Duration
	// DefaultBudget is the instruction budget when the request leaves
	// it zero (default 10M, the s4e-fault default).
	DefaultBudget uint64
	// Retries is how many times a transiently failing job is re-run
	// before it is marked errored (<0 means 0; default 2).
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (default 50 ms).
	RetryBackoff time.Duration
	// MaxBodyBytes bounds the request body (default 16 MiB).
	MaxBodyBytes int64
	// MaxTerminal bounds how many finished jobs stay in memory (<=0
	// means 4096). When exceeded, the oldest terminal jobs are evicted
	// (counted by s4e_serve_evicted_total); the journal, when
	// configured, keeps the full history.
	MaxTerminal int
	// TerminalTTL additionally evicts finished jobs older than this
	// (0 disables TTL eviction). Enforced on terminal transitions.
	TerminalTTL time.Duration
	// Store, when non-nil, is the persistent job journal: accepted
	// submissions and terminal transitions are appended to it, and New
	// replays it — finished jobs come back with status and result,
	// jobs queued or running at the crash are re-queued. The caller
	// owns the store's lifetime (close it after Shutdown).
	Store *store.Store
	// Metrics receives the service instruments; nil builds a private
	// registry (still exported at /metrics).
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 10_000_000
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxTerminal <= 0 {
		c.MaxTerminal = 4096
	}
}

// Sentinel submission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned when the bounded queue sheds a job.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned once shutdown has begun.
	ErrDraining = errors.New("serve: server is draining")
)

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the worker retry loop re-runs the job (with
// backoff) instead of failing it on first error.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries the Transient marker.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Server is the analysis job service. Create with New, expose
// Handler() over HTTP, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string          // submission order, for listing and eviction
	idem     map[string]string // idempotency key -> job ID
	queue    chan *Job
	queued   int // live jobs/shards accepted and not yet picked up by a worker
	draining bool
	wg       sync.WaitGroup

	bins sync.Map // binKey -> *binEntry: per-binary golden/pool cache

	// instruments
	mDepth       *obs.Gauge
	mDepthPeak   *obs.Gauge
	mInflight    *obs.Gauge
	mShed        *obs.Counter
	mRetries     *obs.Counter
	mPanics      *obs.Counter
	mEvicted     *obs.Counter
	mIdemHits    *obs.Counter
	mResumed     *obs.Counter
	mReplayed    *obs.Counter
	mJournalErrs *obs.Counter
	mSubscribers *obs.Gauge

	// execOverride replaces the typed executor in tests (panic and
	// retry-path coverage without constructing pathological guests).
	execOverride func(ctx context.Context, j *Job) (any, error)
}

// New builds a server, starts its worker pool, and — when Config.Store
// is set — replays the journal: finished jobs reappear with status and
// result, jobs that were queued or running when the previous process
// died are re-queued for execution.
func New(cfg Config) *Server {
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		start: time.Now(),
		jobs:  make(map[string]*Job),
		idem:  make(map[string]string),
		// The channel is deliberately larger than the logical queue
		// bound: cancelled-while-queued jobs release their logical slot
		// immediately but stay in the channel until a worker drains
		// them, and campaign shards ride the same channel. Submission
		// capacity is gated on s.queued, not channel occupancy.
		queue: make(chan *Job, 2*cfg.QueueDepth+16),

		mDepth:       reg.Gauge("s4e_serve_queue_depth", "jobs queued and not yet started"),
		mDepthPeak:   reg.Gauge("s4e_serve_queue_depth_peak", "highest queue depth observed"),
		mInflight:    reg.Gauge("s4e_serve_jobs_inflight", "jobs currently executing"),
		mShed:        reg.Counter("s4e_serve_shed_total", "submissions rejected by the full queue"),
		mRetries:     reg.Counter("s4e_serve_retries_total", "transient job failures retried"),
		mPanics:      reg.Counter("s4e_serve_panics_total", "job executions recovered from a panic"),
		mEvicted:     reg.Counter("s4e_serve_evicted_total", "terminal jobs evicted by the retention policy"),
		mIdemHits:    reg.Counter("s4e_serve_idempotent_hits_total", "submissions deduplicated by idempotency key"),
		mResumed:     reg.Counter("s4e_serve_jobs_resumed_total", "journal jobs re-queued at restart"),
		mReplayed:    reg.Counter("s4e_serve_jobs_replayed_total", "terminal journal jobs restored at restart"),
		mJournalErrs: reg.Counter("s4e_serve_journal_errors_total", "journal append failures"),
		mSubscribers: reg.Gauge("s4e_serve_event_subscribers", "open /events streams"),
	}
	reg.Gauge("s4e_serve_workers", "parallel job executors").Set(float64(cfg.Workers))
	reg.Gauge("s4e_serve_queue_capacity", "bounded queue capacity").Set(float64(cfg.QueueDepth))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.Store != nil {
		s.replay()
	}
	return s
}

// Metrics returns the server's registry (for embedding the service in a
// larger process, e.g. the benchmark harness reading latency
// histograms).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// buildJob validates a request into an executable job (not yet
// accepted: the caller enqueues it under the server mutex).
func (s *Server) buildJob(req Request) (*Job, error) {
	if !jobTypes[req.Type] {
		return nil, fmt.Errorf("unknown job type %q (run, fault, wcet, qta, lint, subset, irt)", req.Type)
	}
	if req.Type == "irt" {
		if req.IRQ == nil {
			return nil, fmt.Errorf("irt job needs an irq spec")
		}
		if req.IRQ.Samples < 0 {
			return nil, fmt.Errorf("irt samples must be >= 0, got %d", req.IRQ.Samples)
		}
		if req.IRQ.Workload != "" {
			// A named demonstrator brings its own source; resolve it here
			// so the job shares the assembly/idempotency path with every
			// other submission.
			if req.Source != "" || len(req.ELF) > 0 {
				return nil, fmt.Errorf("irt workload %q brings its own source; drop source/elf", req.IRQ.Workload)
			}
			w, ok := workloads.ByName(req.IRQ.Workload)
			if !ok || w.Handler == "" {
				return nil, fmt.Errorf("unknown interrupt workload %q", req.IRQ.Workload)
			}
			req.Source = w.Source
		} else {
			if len(req.ELF) > 0 {
				return nil, fmt.Errorf("irt jobs analyze assembly source (the bound needs the symbol table), not elf uploads")
			}
			if req.IRQ.Handler == "" {
				return nil, fmt.Errorf("irt job needs a handler symbol or a workload name")
			}
		}
	}
	prog, err := resolveProgram(&req)
	if err != nil {
		return nil, err
	}
	profName := req.Profile
	if profName == "" {
		profName = "edge-small"
	}
	prof, ok := timing.Profiles()[profName]
	if !ok {
		return nil, fmt.Errorf("unknown profile %q", profName)
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	if req.Type == "fault" {
		if req.Fault == nil {
			return nil, fmt.Errorf("fault job needs a fault spec")
		}
		if req.Fault.Shards < 0 {
			return nil, fmt.Errorf("fault shards must be >= 0, got %d", req.Fault.Shards)
		}
		if h := req.Fault.ISRHandler; h != "" {
			if _, ok := prog.Symbols[h]; !ok {
				return nil, fmt.Errorf("isr handler symbol %q not found in program", h)
			}
		}
	}

	j := &Job{
		ID:        newID(),
		Type:      req.Type,
		req:       req,
		prog:      prog,
		profile:   prof,
		engine:    engine,
		budget:    req.Budget,
		timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		key:       req.IdempotencyKey,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if j.budget == 0 {
		j.budget = s.cfg.DefaultBudget
	}
	if j.timeout <= 0 {
		j.timeout = s.cfg.DefaultTimeout
	}
	return j, nil
}

// Submit validates and enqueues a job, returning its initial status.
// ErrQueueFull and ErrDraining report backpressure and shutdown; other
// errors are invalid requests. A submission whose IdempotencyKey
// matches a retained job returns that job's current status instead of
// enqueuing a duplicate.
func (s *Server) Submit(req Request) (Status, error) {
	st, _, err := s.submit(req)
	return st, err
}

// submit is Submit reporting whether a new job was created (false on an
// idempotency-key hit — the HTTP layer answers 200 instead of 202).
func (s *Server) submit(req Request) (Status, bool, error) {
	// Fast idempotency path: skip validation and assembly entirely when
	// the key already names a retained job.
	if req.IdempotencyKey != "" {
		s.mu.Lock()
		if st, ok := s.idemLookupLocked(req.IdempotencyKey); ok {
			s.mu.Unlock()
			s.mIdemHits.Inc()
			return st, false, nil
		}
		s.mu.Unlock()
	}
	j, err := s.buildJob(req)
	if err != nil {
		return Status{}, false, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, false, ErrDraining
	}
	// Re-check under the same critical section as the insert, so two
	// concurrent submissions with one key cannot both enqueue.
	if j.key != "" {
		if st, ok := s.idemLookupLocked(j.key); ok {
			s.mu.Unlock()
			s.mIdemHits.Inc()
			return st, false, nil
		}
	}
	// Capacity is the logical queued count, not channel occupancy:
	// cancelled-while-queued jobs have released their slot even though
	// their husk still sits in the channel until a worker drains it.
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.mShed.Inc()
		return Status{}, false, ErrQueueFull
	}
	select {
	case s.queue <- j:
	default:
		// Physical backstop: the slack is exhausted (a storm of
		// cancelled husks); shed rather than block under the mutex.
		s.mu.Unlock()
		s.mShed.Inc()
		return Status{}, false, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if j.key != "" {
		s.idem[j.key] = j.ID
	}
	s.queued++
	s.noteDepth()
	j.emitLocked("queued", nil)
	st := j.status()
	s.mu.Unlock()

	s.journal(store.Record{
		Kind: store.RecordSubmit, JobID: j.ID, Key: j.key, Type: j.Type,
		Request: marshalRequest(j.req),
	})
	s.reg.Counter(fmt.Sprintf("s4e_serve_jobs_submitted_total{type=%q}", j.Type),
		"jobs accepted into the queue").Inc()
	return st, true, nil
}

// idemLookupLocked resolves an idempotency key to a retained job's
// status; callers hold s.mu.
func (s *Server) idemLookupLocked(key string) (Status, bool) {
	id, ok := s.idem[key]
	if !ok {
		return Status{}, false
	}
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// marshalRequest serializes a request for the journal; submission
// already validated it, so failure is not expected (a nil result just
// makes the job non-resumable).
func marshalRequest(req Request) json.RawMessage {
	b, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	return b
}

// journal appends one record to the configured store, counting (but
// otherwise tolerating) failures: durability must not take down the
// serving path.
func (s *Server) journal(rec store.Record) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.Append(rec); err != nil {
		s.mJournalErrs.Inc()
		return
	}
	s.reg.Counter(fmt.Sprintf("s4e_serve_journal_records_total{kind=%q}", rec.Kind),
		"journal records appended").Inc()
}

// terminalRecord snapshots j's terminal transition for the journal;
// callers hold s.mu.
func terminalRecord(j *Job) store.Record {
	rec := store.Record{
		Kind: store.RecordTerminal, JobID: j.ID,
		State: string(j.state), Error: j.err, Attempts: j.attempts,
	}
	if j.result != nil {
		if b, err := json.Marshal(j.result); err == nil {
			rec.Result = b
		}
	}
	return rec
}

// replay restores the journal at startup: terminal jobs come back as
// status+result stubs, jobs with no terminal record (queued or running
// at the crash) are re-validated and re-queued under their original
// IDs. Runs before New returns; the workers are already live, so
// resumed jobs begin executing immediately.
func (s *Server) replay() {
	type entry struct{ sub, term *store.Record }
	recs := s.cfg.Store.Replay()
	byID := make(map[string]*entry)
	var order []string
	for i := range recs {
		r := &recs[i]
		e := byID[r.JobID]
		if e == nil {
			e = &entry{}
			byID[r.JobID] = e
		}
		switch r.Kind {
		case store.RecordSubmit:
			if e.sub == nil {
				order = append(order, r.JobID)
			}
			e.sub = r
		case store.RecordTerminal:
			e.term = r
		}
	}
	for _, id := range order {
		e := byID[id]
		if e.term != nil {
			s.replayTerminal(id, e.sub, e.term)
		} else {
			s.resume(id, e.sub)
		}
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
}

// replayTerminal restores one finished job from its journal records.
func (s *Server) replayTerminal(id string, sub, term *store.Record) {
	j := &Job{
		ID: id, Type: sub.Type, key: sub.Key, replayed: true,
		state: State(term.State), err: term.Error, attempts: term.Attempts,
		submitted: sub.Time, finished: term.Time,
	}
	if !j.state.terminal() { // corrupt state string: surface, don't re-run
		j.state = StateErrored
		j.err = fmt.Sprintf("journal: unknown terminal state %q", term.State)
	}
	if len(term.Result) > 0 {
		j.result = json.RawMessage(term.Result)
	}
	var data any
	if j.err != "" {
		data = map[string]string{"error": j.err}
	}
	j.events = []Event{
		{Seq: 1, Type: "queued", Time: sub.Time},
		{Seq: 2, Type: string(j.state), Time: term.Time, Data: data},
	}
	j.eventSeq = 2
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	if j.key != "" {
		s.idem[j.key] = id
	}
	s.mu.Unlock()
	s.mReplayed.Inc()
}

// resume re-validates and re-queues one journal job that never reached
// a terminal state. Resumed jobs bypass the logical queue bound — they
// were already accepted once — and block until the channel takes them
// (the workers are live and draining).
func (s *Server) resume(id string, sub *store.Record) {
	var req Request
	var j *Job
	err := json.Unmarshal(sub.Request, &req)
	if err == nil {
		j, err = s.buildJob(req)
	}
	if err != nil {
		s.resumeFailed(id, sub, err)
		return
	}
	j.ID = id
	j.key = sub.Key
	j.submitted = sub.Time
	j.events = []Event{{Seq: 1, Type: "queued", Time: sub.Time}}
	j.eventSeq = 1
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	if j.key != "" {
		s.idem[j.key] = id
	}
	s.queued++
	s.noteDepth()
	s.mu.Unlock()
	s.queue <- j
	s.mResumed.Inc()
}

// resumeFailed records a journal job whose request no longer validates
// (journal torn mid-record, profile or engine removed across versions)
// as errored rather than dropping it silently.
func (s *Server) resumeFailed(id string, sub *store.Record, err error) {
	j := &Job{
		ID: id, Type: sub.Type, key: sub.Key, replayed: true,
		state: StateErrored, err: fmt.Sprintf("resume: %v", err),
		submitted: sub.Time, finished: time.Now(),
	}
	j.events = []Event{
		{Seq: 1, Type: "queued", Time: sub.Time},
		{Seq: 2, Type: string(StateErrored), Time: j.finished, Data: map[string]string{"error": j.err}},
	}
	j.eventSeq = 2
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	if j.key != "" {
		s.idem[j.key] = id
	}
	rec := terminalRecord(j)
	s.mu.Unlock()
	s.journal(rec)
	s.mReplayed.Inc()
}

// noteDepth refreshes the queue-depth gauge and its peak; callers hold
// s.mu.
func (s *Server) noteDepth() {
	d := float64(s.queued)
	s.mDepth.Set(d)
	if d > s.mDepthPeak.Value() {
		s.mDepthPeak.Set(d)
	}
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Result returns a finished job's result payload.
func (s *Server) Result(id string) (Status, any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, nil, false
	}
	return j.status(), j.result, true
}

// Jobs lists every retained job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled before it ever
// runs (releasing its queue slot immediately), a running job has its
// context cancelled and returns partial work promptly (every analysis
// entry point is context-threaded). The second return is false when the
// job is unknown; cancelling a job that already reached a terminal
// state is a no-op reporting that state.
func (s *Server) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Status{}, false
	}
	var rec *store.Record
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.cancelled = true
		// The husk stays in the channel until a worker drains it, but
		// its logical queue slot — capacity, queued counter, depth
		// gauge — is released now, so live jobs are not shed on the
		// back of dead ones.
		j.released = true
		s.queued--
		s.noteDepth()
		s.finishLocked(j)
		r := terminalRecord(j)
		rec = &r
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := j.status()
	s.mu.Unlock()
	if rec != nil {
		s.journal(*rec)
	}
	return st, true
}

// worker executes queued jobs (and campaign shards) until the queue is
// closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.dequeued(j)
		if j.shardRun != nil {
			j.shardRun()
			continue
		}
		s.runJob(j)
	}
}

// dequeued settles queue accounting for one popped item: jobs cancelled
// while queued already released their slot, everything else releases it
// now.
func (s *Server) dequeued(j *Job) {
	s.mu.Lock()
	if j.released {
		j.released = false
	} else {
		s.queued--
		s.noteDepth()
	}
	s.mu.Unlock()
}

// runJob drives one job through execution, retry, and state
// transitions.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	j.emitLocked("running", nil)
	s.mu.Unlock()
	defer cancel()

	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	var result any
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt + 1
		s.mu.Unlock()
		result, err = s.execute(ctx, j)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempt >= s.cfg.Retries {
			break
		}
		s.mRetries.Inc()
		backoff := s.cfg.RetryBackoff << attempt
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		// The job context may have expired during the backoff sleep; a
		// further attempt on the dead context would be wasted work, would
		// inflate the attempt count, and would replace the original
		// transient error with the context error in the reported status.
		if ctx.Err() != nil {
			break
		}
	}

	s.mu.Lock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
	case j.cancelled:
		j.state = StateCancelled
		j.err = err.Error()
		j.result = result // partial results stay readable
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateErrored
		j.err = fmt.Sprintf("job timeout after %v: %v", j.timeout, err)
		j.result = result
	default:
		j.state = StateErrored
		j.err = err.Error()
		j.result = result
	}
	s.finishLocked(j)
	rec := terminalRecord(j)
	sec := j.finished.Sub(j.started).Seconds()
	s.mu.Unlock()

	s.journal(rec)
	s.jobSeconds(j.Type).Observe(sec)
}

// finishLocked stamps a terminal transition: finish time, terminal
// event, metrics, retention. Callers hold s.mu, have already set
// j.state, and journal the returned-state snapshot after unlocking.
func (s *Server) finishLocked(j *Job) {
	j.finished = time.Now()
	var data any
	if j.err != "" {
		data = map[string]string{"error": j.err}
	}
	j.emitLocked(string(j.state), data)
	s.finishMetrics(j)
	s.evictLocked()
}

// finishMetrics counts a terminal transition; callers hold s.mu.
func (s *Server) finishMetrics(j *Job) {
	s.reg.Counter(
		fmt.Sprintf("s4e_serve_jobs_finished_total{type=%q,state=%q}", j.Type, string(j.state)),
		"jobs by terminal state").Inc()
}

// evictLocked applies the retention policy: when more than MaxTerminal
// finished jobs are in memory, the oldest are dropped; with a
// TerminalTTL, finished jobs older than it are dropped regardless of
// count. Queued and running jobs are never evicted. The journal (when
// configured) retains the full history. Callers hold s.mu.
func (s *Server) evictLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].state.terminal() {
			terminal++
		}
	}
	ttl := s.cfg.TerminalTTL
	if terminal <= s.cfg.MaxTerminal && ttl == 0 {
		return
	}
	now := time.Now()
	keep := make([]string, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		evict := false
		if j.state.terminal() {
			if terminal > s.cfg.MaxTerminal {
				evict = true
			} else if ttl > 0 && now.Sub(j.finished) > ttl {
				evict = true
			}
		}
		if !evict {
			keep = append(keep, id)
			continue
		}
		terminal--
		delete(s.jobs, id)
		if j.key != "" && s.idem[j.key] == id {
			delete(s.idem, j.key)
		}
		s.mEvicted.Inc()
	}
	s.order = keep
}

// jobSecondsBounds spans sub-millisecond lint jobs to minute-long
// campaigns.
var jobSecondsBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// jobSeconds returns the latency histogram of one job type.
func (s *Server) jobSeconds(typ string) *obs.Histogram {
	return s.reg.Histogram(
		fmt.Sprintf("s4e_serve_job_seconds{type=%q}", typ),
		"job execution latency by type", jobSecondsBounds)
}

// execute runs one attempt of a job with panic isolation: a panicking
// analysis marks the job errored (carrying the stack) without taking
// down the worker or the process.
func (s *Server) execute(ctx context.Context, j *Job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.execOverride != nil {
		return s.execOverride(ctx, j)
	}
	switch j.Type {
	case "run":
		return s.execRun(ctx, j)
	case "fault":
		return s.execFault(ctx, j)
	case "wcet":
		return s.execWCET(ctx, j)
	case "qta":
		return s.execQTA(ctx, j)
	case "lint":
		return s.execLint(ctx, j)
	case "subset":
		return s.execSubset(ctx, j)
	case "irt":
		return s.execIRT(ctx, j)
	}
	return nil, fmt.Errorf("unknown job type %q", j.Type)
}

// Shutdown drains the server: no new submissions are accepted, queued
// and in-flight jobs run to completion, then the workers exit. If ctx
// expires first, every running job's context is cancelled (they return
// promptly with partial state) and Shutdown reports ctx's error after
// the workers finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		var recs []store.Record
		for _, j := range s.jobs {
			if j.state == StateQueued {
				j.state = StateCancelled
				j.cancelled = true
				j.released = true
				s.queued--
				s.noteDepth()
				s.finishLocked(j)
				recs = append(recs, terminalRecord(j))
			}
			if j.cancel != nil {
				j.cancelled = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		for _, rec := range recs {
			s.journal(rec)
		}
		<-done // jobs are context-threaded, so this is prompt
		return ctx.Err()
	}
}
