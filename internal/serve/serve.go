// Package serve is the long-running analysis service of the Scale4Edge
// ecosystem: an HTTP job server that accepts the one-shot CLI workloads
// — emulation runs, fault-injection campaigns, static WCET analysis,
// QTA co-simulation, guest-binary lint — as JSON jobs over uploaded
// guest binaries and executes them on a bounded worker pool. It is the
// piece that turns the toolbox into an operable system: a bounded queue
// that sheds load with 429 instead of growing without limit, per-job
// context deadlines and cancellation threaded into the analysis entry
// points (fault.CampaignContext, wcet.AnalyzeContext, qta.CoSim,
// vp.RunContext), per-job panic recovery that marks the job errored
// without killing its worker, retry-with-backoff for transient
// failures, graceful shutdown that drains in-flight jobs, and
// first-class observability through the internal/obs registry
// (/metrics, /healthz, per-job-type latency histograms, queue-depth
// gauge, shed/retry counters). Jobs over the same guest binary share
// one golden run and one compiled translation pool (emu.TBPool), so a
// burst of campaign jobs compiles the working set once, not once per
// job.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timing"
)

// Config parametrizes a server. The zero value is usable: two workers,
// a 16-deep queue, 60 s job timeout, two retries.
type Config struct {
	// Workers is the number of parallel job executors (<=0 means 2).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs
	// (<=0 means 16). A full queue sheds new submissions with
	// ErrQueueFull (HTTP 429 + Retry-After) instead of buffering
	// without limit.
	QueueDepth int
	// DefaultTimeout caps a job's execution wall-clock when the request
	// does not set one (<=0 means 60 s).
	DefaultTimeout time.Duration
	// DefaultBudget is the instruction budget when the request leaves
	// it zero (default 10M, the s4e-fault default).
	DefaultBudget uint64
	// Retries is how many times a transiently failing job is re-run
	// before it is marked errored (<0 means 0; default 2).
	Retries int
	// RetryBackoff is the base delay before the first retry; each
	// further retry doubles it (default 50 ms).
	RetryBackoff time.Duration
	// MaxBodyBytes bounds the request body (default 16 MiB).
	MaxBodyBytes int64
	// Metrics receives the service instruments; nil builds a private
	// registry (still exported at /metrics).
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 10_000_000
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
}

// Sentinel submission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is returned when the bounded queue sheds a job.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned once shutdown has begun.
	ErrDraining = errors.New("serve: server is draining")
)

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the worker retry loop re-runs the job (with
// backoff) instead of failing it on first error.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries the Transient marker.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Server is the analysis job service. Create with New, expose
// Handler() over HTTP, stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	start time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	queue    chan *Job
	queued   int // jobs accepted and not yet picked up by a worker
	draining bool
	wg       sync.WaitGroup

	bins sync.Map // binKey -> *binEntry: per-binary golden/pool cache

	// instruments
	mDepth     *obs.Gauge
	mDepthPeak *obs.Gauge
	mInflight  *obs.Gauge
	mShed      *obs.Counter
	mRetries   *obs.Counter
	mPanics    *obs.Counter

	// execOverride replaces the typed executor in tests (panic and
	// retry-path coverage without constructing pathological guests).
	execOverride func(ctx context.Context, j *Job) (any, error)
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		start: time.Now(),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),

		mDepth:     reg.Gauge("s4e_serve_queue_depth", "jobs queued and not yet started"),
		mDepthPeak: reg.Gauge("s4e_serve_queue_depth_peak", "highest queue depth observed"),
		mInflight:  reg.Gauge("s4e_serve_jobs_inflight", "jobs currently executing"),
		mShed:      reg.Counter("s4e_serve_shed_total", "submissions rejected by the full queue"),
		mRetries:   reg.Counter("s4e_serve_retries_total", "transient job failures retried"),
		mPanics:    reg.Counter("s4e_serve_panics_total", "job executions recovered from a panic"),
	}
	reg.Gauge("s4e_serve_workers", "parallel job executors").Set(float64(cfg.Workers))
	reg.Gauge("s4e_serve_queue_capacity", "bounded queue capacity").Set(float64(cfg.QueueDepth))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the server's registry (for embedding the service in a
// larger process, e.g. the benchmark harness reading latency
// histograms).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Submit validates and enqueues a job, returning its initial status.
// ErrQueueFull and ErrDraining report backpressure and shutdown; other
// errors are invalid requests.
func (s *Server) Submit(req Request) (Status, error) {
	if !jobTypes[req.Type] {
		return Status{}, fmt.Errorf("unknown job type %q (run, fault, wcet, qta, lint, subset)", req.Type)
	}
	prog, err := resolveProgram(&req)
	if err != nil {
		return Status{}, err
	}
	profName := req.Profile
	if profName == "" {
		profName = "edge-small"
	}
	prof, ok := timing.Profiles()[profName]
	if !ok {
		return Status{}, fmt.Errorf("unknown profile %q", profName)
	}
	engine, err := parseEngine(req.Engine)
	if err != nil {
		return Status{}, err
	}
	if req.Type == "fault" && req.Fault == nil {
		return Status{}, fmt.Errorf("fault job needs a fault spec")
	}

	j := &Job{
		ID:        newID(),
		Type:      req.Type,
		req:       req,
		prog:      prog,
		profile:   prof,
		engine:    engine,
		budget:    req.Budget,
		timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if j.budget == 0 {
		j.budget = s.cfg.DefaultBudget
	}
	if j.timeout <= 0 {
		j.timeout = s.cfg.DefaultTimeout
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, ErrDraining
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.mShed.Inc()
		return Status{}, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.queued++
	s.noteDepth()
	st := j.status()
	s.mu.Unlock()

	s.reg.Counter(fmt.Sprintf("s4e_serve_jobs_submitted_total{type=%q}", j.Type),
		"jobs accepted into the queue").Inc()
	return st, nil
}

// noteDepth refreshes the queue-depth gauge and its peak; callers hold
// s.mu.
func (s *Server) noteDepth() {
	d := float64(s.queued)
	s.mDepth.Set(d)
	if d > s.mDepthPeak.Value() {
		s.mDepthPeak.Set(d)
	}
}

// Job returns the status of a job by ID.
func (s *Server) Job(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	return j.status(), true
}

// Result returns a finished job's result payload.
func (s *Server) Result(id string) (Status, any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, nil, false
	}
	return j.status(), j.result, true
}

// Jobs lists every job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled before it ever
// runs, a running job has its context cancelled and returns partial
// work promptly (every analysis entry point is context-threaded). The
// second return is false when the job is unknown; cancelling a job that
// already reached a terminal state is a no-op reporting that state.
func (s *Server) Cancel(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, false
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.cancelled = true
		j.finished = time.Now()
		s.finishMetrics(j)
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.status(), true
}

// worker executes queued jobs until the queue is closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.noteDepth()
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob drives one job through execution, retry, and state
// transitions.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel()

	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	var result any
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt + 1
		s.mu.Unlock()
		result, err = s.execute(ctx, j)
		if err == nil || ctx.Err() != nil || !IsTransient(err) || attempt >= s.cfg.Retries {
			break
		}
		s.mRetries.Inc()
		backoff := s.cfg.RetryBackoff << attempt
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
	case j.cancelled:
		j.state = StateCancelled
		j.err = err.Error()
		j.result = result // partial results stay readable
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateErrored
		j.err = fmt.Sprintf("job timeout after %v: %v", j.timeout, err)
		j.result = result
	default:
		j.state = StateErrored
		j.err = err.Error()
	}
	s.finishMetrics(j)
	sec := j.finished.Sub(j.started).Seconds()
	s.mu.Unlock()

	s.jobSeconds(j.Type).Observe(sec)
}

// finishMetrics counts a terminal transition; callers hold s.mu.
func (s *Server) finishMetrics(j *Job) {
	s.reg.Counter(
		fmt.Sprintf("s4e_serve_jobs_finished_total{type=%q,state=%q}", j.Type, string(j.state)),
		"jobs by terminal state").Inc()
}

// jobSecondsBounds spans sub-millisecond lint jobs to minute-long
// campaigns.
var jobSecondsBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// jobSeconds returns the latency histogram of one job type.
func (s *Server) jobSeconds(typ string) *obs.Histogram {
	return s.reg.Histogram(
		fmt.Sprintf("s4e_serve_job_seconds{type=%q}", typ),
		"job execution latency by type", jobSecondsBounds)
}

// execute runs one attempt of a job with panic isolation: a panicking
// analysis marks the job errored (carrying the stack) without taking
// down the worker or the process.
func (s *Server) execute(ctx context.Context, j *Job) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.execOverride != nil {
		return s.execOverride(ctx, j)
	}
	switch j.Type {
	case "run":
		return s.execRun(ctx, j)
	case "fault":
		return s.execFault(ctx, j)
	case "wcet":
		return s.execWCET(ctx, j)
	case "qta":
		return s.execQTA(ctx, j)
	case "lint":
		return s.execLint(ctx, j)
	case "subset":
		return s.execSubset(ctx, j)
	}
	return nil, fmt.Errorf("unknown job type %q", j.Type)
}

// Shutdown drains the server: no new submissions are accepted, queued
// and in-flight jobs run to completion, then the workers exit. If ctx
// expires first, every running job's context is cancelled (they return
// promptly with partial state) and Shutdown reports ctx's error after
// the workers finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateQueued {
				j.state = StateCancelled
				j.cancelled = true
				j.finished = time.Now()
				s.finishMetrics(j)
			}
			if j.cancel != nil {
				j.cancelled = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done // jobs are context-threaded, so this is prompt
		return ctx.Err()
	}
}
