package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/fault"
)

// shardCount clamps a requested shard count to the plan size (a shard
// must own at least one mutant).
func shardCount(k, mutants int) int {
	if k > mutants {
		k = mutants
	}
	if k < 1 {
		k = 1
	}
	return k
}

// shardRanges splits n mutant indices into k contiguous [lo,hi) ranges
// differing in size by at most one — the deterministic tiling both the
// executor and the merge rely on.
func shardRanges(n, k int) [][2]int {
	out := make([][2]int, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// noteProgress publishes a whole-campaign progress snapshot on the
// job's event stream (the unsharded path's OnProgress target).
func (s *Server) noteProgress(j *Job, done, total uint64) {
	s.mu.Lock()
	j.progress = &Progress{Done: done, Total: total}
	j.emitLocked("progress", j.progress)
	s.mu.Unlock()
}

// noteShard updates one shard's slice of the job's progress — state
// and/or mutants-done — recomputes the campaign total, and re-emits the
// progress event.
func (s *Server) noteShard(j *Job, i int, state string, done uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.progress == nil || i >= len(j.progress.Shards) {
		return
	}
	p := j.progress.clone()
	if state != "" {
		p.Shards[i].State = state
	}
	if done > p.Shards[i].Done {
		p.Shards[i].Done = done
	}
	p.Done = 0
	for _, sp := range p.Shards {
		p.Done += sp.Done
	}
	j.progress = p
	j.emitLocked("progress", p)
}

// runShardedCampaign executes a fault campaign as k contiguous
// plan-range sub-jobs riding the server's shared worker queue, then
// merges the per-range results with fault.MergeShards — bit-identical
// to the unsharded campaign, since mutants are classified independently
// against the shared golden. The coordinating worker never parks idle:
// shards that do not fit the queue run inline, and while waiting it
// helps drain the queue (its own shards, other campaigns' shards, or
// whole jobs), so coordinators can never deadlock the pool no matter
// how many campaigns shard at once.
func (s *Server) runShardedCampaign(ctx context.Context, j *Job, tg *fault.Target, plan fault.Plan, o fault.Options, k int) (*fault.Results, error) {
	ranges := shardRanges(len(plan.Faults), k)

	s.mu.Lock()
	prog := &Progress{Total: uint64(len(plan.Faults)), Shards: make([]ShardProgress, k)}
	for i, r := range ranges {
		prog.Shards[i] = ShardProgress{Shard: i, Lo: r[0], Hi: r[1], State: "queued"}
	}
	j.progress = prog
	j.emitLocked("progress", prog.clone())
	s.mu.Unlock()

	parts := make([]*fault.Results, k)
	errs := make([]error, k)
	offsets := make([]int, k)
	done := make(chan int, k)

	mkRun := func(i int) func() {
		lo, hi := ranges[i][0], ranges[i][1]
		offsets[i] = lo
		return func() {
			defer func() { done <- i }()
			defer func() {
				if r := recover(); r != nil {
					s.mPanics.Inc()
					errs[i] = fmt.Errorf("shard %d panicked: %v\n%s", i, r, debug.Stack())
				}
			}()
			s.noteShard(j, i, "running", 0)
			so := o // per-shard copy: each shard reports its own progress
			so.OnProgress = func(d, _ uint64) { s.noteShard(j, i, "", d) }
			parts[i], errs[i] = fault.CampaignContext(ctx, tg, plan.Range(lo, hi), so)
			s.noteShard(j, i, "done", uint64(hi-lo))
		}
	}

	// Enqueue each shard on the shared worker queue; shards that do not
	// fit (channel full, server draining) are kept for inline execution
	// by this worker rather than blocking or shedding.
	var inline []func()
	for i := 0; i < k; i++ {
		run := mkRun(i)
		sj := &Job{ID: fmt.Sprintf("%s.shard%d", j.ID, i), Type: "fault-shard", shardRun: run}
		s.mu.Lock()
		enqueued := false
		if !s.draining {
			select {
			case s.queue <- sj:
				s.queued++
				s.noteDepth()
				enqueued = true
			default:
			}
		}
		s.mu.Unlock()
		if !enqueued {
			inline = append(inline, run)
		}
	}
	s.reg.Counter("s4e_serve_shards_total", "campaign shards executed").Add(uint64(k))
	if len(inline) > 0 {
		s.reg.Counter("s4e_serve_shards_inline_total",
			"shards executed inline by the coordinating worker").Add(uint64(len(inline)))
	}
	for _, run := range inline {
		run()
	}

	// Help loop: drain completions and, while shards are outstanding,
	// keep working the shared queue.
	queue := s.queue
	for remaining := k; remaining > 0; {
		select {
		case <-done:
			remaining--
		case other, ok := <-queue:
			if !ok {
				queue = nil // draining: queue closed and empty
				continue
			}
			s.dequeued(other)
			if other.shardRun != nil {
				other.shardRun()
			} else {
				s.runJob(other)
			}
		}
	}

	merged, err := fault.MergeShards(plan, offsets, parts)
	if err != nil {
		return nil, errors.Join(append(errs, err)...)
	}
	return merged, errors.Join(errs...)
}
