package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// src returns the assembly source of a named workload.
func src(t *testing.T, name string) string {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	return w.Source
}

// newServer builds a server the test owns; it is drained at cleanup.
func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// wait polls a job until it reaches a terminal state.
func wait(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	xtea := src(t, "xtea")
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown type", Request{Type: "paint", Source: xtea}},
		{"no program", Request{Type: "run"}},
		{"both programs", Request{Type: "run", Source: xtea, ELF: []byte{1}}},
		{"bad source", Request{Type: "run", Source: "not asm $$"}},
		{"bad profile", Request{Type: "run", Source: xtea, Profile: "warp9"}},
		{"bad engine", Request{Type: "run", Source: xtea, Engine: "jit"}},
		{"fault without spec", Request{Type: "fault", Source: xtea}},
		{"fault bad isr symbol", Request{Type: "fault", Source: xtea,
			Fault: &FaultSpec{GPRTransient: 1, ISRHandler: "nosuch"}}},
		{"irt without spec", Request{Type: "irt", Source: xtea}},
		{"irt unknown workload", Request{Type: "irt", IRQ: &IRQSpec{Workload: "xtea"}}},
		{"irt workload plus source", Request{Type: "irt", Source: xtea,
			IRQ: &IRQSpec{Workload: "pid_timer"}}},
		{"irt source without handler", Request{Type: "irt", Source: xtea, IRQ: &IRQSpec{}}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.req); err == nil {
			t.Errorf("%s: submit accepted, want error", c.name)
		}
	}
}

func TestRunJob(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	w, _ := workloads.ByName("xtea")
	st, err := s.Submit(Request{Type: "run", Source: w.Source, Budget: w.Budget})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("run job state %s (err %q)", st.State, st.Error)
	}
	_, res, _ := s.Result(st.ID)
	rr, ok := res.(RunResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if rr.Code != w.Expect {
		t.Errorf("guest code 0x%x, want 0x%x", rr.Code, w.Expect)
	}
	if rr.Insts == 0 || rr.Cycles == 0 {
		t.Errorf("counters not populated: %+v", rr)
	}
}

func TestAnalysisJobTypes(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	xtea := src(t, "xtea")
	for _, typ := range []string{"wcet", "qta", "lint", "subset"} {
		st, err := s.Submit(Request{Type: typ, Source: xtea, Budget: 100_000})
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		st = wait(t, s, st.ID)
		if st.State != StateDone {
			t.Fatalf("%s job state %s (err %q)", typ, st.State, st.Error)
		}
	}
}

func TestSubsetJob(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	st, err := s.Submit(Request{Type: "subset", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("subset job state %s (err %q)", st.State, st.Error)
	}
	_, res, _ := s.Result(st.ID)
	sr, ok := res.(SubsetResult)
	if !ok {
		t.Fatalf("result type %T", res)
	}
	if sr.Report == nil || len(sr.Report.Ops) == 0 {
		t.Fatalf("empty subset report: %+v", sr)
	}
	if !sr.Report.Sound {
		t.Errorf("xtea should analyze sound: unresolved=%v", sr.Report.Unresolved)
	}
}

// cliReference runs the exact campaign cmd/s4e-fault would run for
// the workload and spec, directly through the fault package.
func cliReference(t *testing.T, source string, budget uint64, spec FaultSpec) *fault.Results {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	tg := &fault.Target{Program: prog, Budget: budget}
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	end := vp.RAMBase + uint32(len(prog.Bytes))
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         spec.Seed,
		GPRTransient: spec.GPRTransient,
		GPRPermanent: spec.GPRPermanent,
		MemPermanent: spec.MemPermanent,
		CodeBitflip:  spec.CodeBitflip,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase, CodeEnd: end,
		DataStart: vp.RAMBase, DataEnd: end,
	})
	res, err := fault.CampaignOpt(tg, plan, fault.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultServiceMatchesCLI is the service's end-to-end anchor: eight
// concurrent campaign jobs over the same uploaded program must each be
// classification-identical, mutant by mutant, to the one-shot CLI
// campaign with the same plan parameters — shared golden, shared
// translation pool, retries and queueing notwithstanding.
func TestFaultServiceMatchesCLI(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	spec := FaultSpec{Seed: 7, GPRTransient: 30, GPRPermanent: 10, MemPermanent: 15, CodeBitflip: 15, Workers: 2}
	ref := cliReference(t, w.Source, w.Budget, spec)

	const jobs = 8
	s := newServer(t, Config{Workers: 4, QueueDepth: jobs})
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(Request{
				Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &spec,
			})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	want := make([]string, len(ref.Details))
	for i, o := range ref.Details {
		want[i] = o.String()
	}
	for i, id := range ids {
		st := wait(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %d state %s (err %q)", i, st.State, st.Error)
		}
		_, res, _ := s.Result(id)
		fr, ok := res.(FaultResult)
		if !ok {
			t.Fatalf("job %d result type %T", i, res)
		}
		if fr.Total != ref.Total {
			t.Fatalf("job %d total %d, want %d", i, fr.Total, ref.Total)
		}
		for k, o := range fr.Details {
			if o != want[k] {
				t.Fatalf("job %d mutant %d classified %s, CLI classified %s", i, k, o, want[k])
			}
		}
	}
}

// TestPoolCacheSharing checks the cross-job reuse contract: the second
// campaign over the same binary reuses the first one's golden run and
// translation pool (a cache hit), instead of recomputing them.
func TestPoolCacheSharing(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	spec := FaultSpec{Seed: 3, GPRTransient: 10}
	s := newServer(t, Config{Workers: 1})
	hits := s.reg.Counter(`s4e_serve_pool_jobs_total{cache="hit"}`, "")

	for i := 0; i < 2; i++ {
		st, err := s.Submit(Request{Type: "fault", Source: w.Source, Budget: w.Budget, Fault: &spec})
		if err != nil {
			t.Fatal(err)
		}
		if st = wait(t, s, st.ID); st.State != StateDone {
			t.Fatalf("job %d state %s (err %q)", i, st.State, st.Error)
		}
		_, res, _ := s.Result(st.ID)
		if fr := res.(FaultResult); !fr.PoolShared {
			t.Errorf("job %d did not share the translation pool", i)
		}
	}
	if got := hits.Value(); got != 1 {
		t.Errorf("pool cache hits %v, want 1 (second job reuses the first's golden+pool)", got)
	}
}

func TestQueueOverflowSheds(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "ok", nil
	}
	defer close(release)

	xtea := src(t, "xtea")
	req := Request{Type: "run", Source: xtea}
	// One job occupies the worker; two fill the queue. There is a
	// window where the worker has not yet popped the first job, so
	// accept up to 3 before demanding the shed.
	accepted := 0
	var err error
	for i := 0; i < 4; i++ {
		if _, err = s.Submit(req); err != nil {
			break
		}
		accepted++
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("after %d accepts err = %v, want ErrQueueFull", accepted, err)
	}
	if shed := s.mShed.Value(); shed < 1 {
		t.Errorf("shed counter %v, want >=1", shed)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	started := make(chan struct{})
	var once sync.Once
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return "partial", ctx.Err()
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("cancel: job unknown")
	}
	st = wait(t, s, st.ID)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if _, res, _ := s.Result(st.ID); res != "partial" {
		t.Errorf("partial result %v not preserved", res)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newServer(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		<-release
		return "ok", nil
	}
	defer close(release)
	first, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Cancel(queued.ID)
	if !ok || st.State != StateCancelled {
		t.Fatalf("queued cancel state %s ok=%v, want cancelled", st.State, ok)
	}
	_ = first
}

func TestPanicRecovery(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	boom := true
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		if boom {
			boom = false
			panic("analysis exploded")
		}
		return "fine", nil
	}
	xtea := src(t, "xtea")
	st, err := s.Submit(Request{Type: "run", Source: xtea})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateErrored || !strings.Contains(st.Error, "analysis exploded") {
		t.Fatalf("panicking job: state %s err %q", st.State, st.Error)
	}
	if s.mPanics.Value() != 1 {
		t.Errorf("panic counter %v, want 1", s.mPanics.Value())
	}
	// The worker survived the panic and still executes jobs.
	st2, err := s.Submit(Request{Type: "run", Source: xtea})
	if err != nil {
		t.Fatal(err)
	}
	if st2 = wait(t, s, st2.ID); st2.State != StateDone {
		t.Fatalf("post-panic job state %s", st2.State)
	}
}

func TestRetryTransient(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Retries: 2, RetryBackoff: time.Millisecond})
	var calls int
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		calls++
		if calls < 3 {
			return nil, Transient(fmt.Errorf("flaky dependency"))
		}
		return "recovered", nil
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateDone || st.Attempts != 3 {
		t.Fatalf("state %s attempts %d, want done after 3 attempts", st.State, st.Attempts)
	}
	if s.mRetries.Value() != 2 {
		t.Errorf("retry counter %v, want 2", s.mRetries.Value())
	}
}

func TestPermanentErrorDoesNotRetry(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Retries: 3, RetryBackoff: time.Millisecond})
	var calls int
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		calls++
		return nil, fmt.Errorf("deterministic failure")
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateErrored || calls != 1 {
		t.Fatalf("state %s calls %d, want errored after exactly 1 attempt", st.State, calls)
	}
}

func TestJobTimeout(t *testing.T) {
	s := newServer(t, Config{Workers: 1})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea"), TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	st = wait(t, s, st.ID)
	if st.State != StateErrored || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("state %s err %q, want errored timeout", st.State, st.Error)
	}
}

func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	w, _ := workloads.ByName("xtea")
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := s.Submit(Request{Type: "run", Source: w.Source, Budget: w.Budget})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, _ := s.Job(id)
		if st.State != StateDone {
			t.Errorf("job %s state %s after drain, want done", id, st.State)
		}
	}
	if _, err := s.Submit(Request{Type: "run", Source: w.Source}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown err = %v, want ErrDraining", err)
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	s := New(Config{Workers: 1})
	s.execOverride = func(ctx context.Context, j *Job) (any, error) {
		<-ctx.Done() // only a cancelled context releases this job
		return nil, ctx.Err()
	}
	st, err := s.Submit(Request{Type: "run", Source: src(t, "xtea")})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err %v, want deadline exceeded", err)
	}
	if st, _ = s.Job(st.ID); !st.State.terminal() {
		t.Errorf("running job state %s after forced shutdown", st.State)
	}
}

// isrReference runs the exact ISR-targeted campaign cmd/s4e-fault -isr
// would run, directly through the fault package.
func isrReference(t *testing.T, name string, spec FaultSpec, eng emu.Engine) *fault.Results {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok || w.Handler == "" {
		t.Fatalf("interrupt workload %s missing", name)
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	tg := &fault.Target{
		Program: prog, Budget: w.Budget, Engine: eng,
		Profile: timing.EdgeSmall(),
		Sensor:  w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn,
		LatencyBudget: spec.LatencyBudget,
	}
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.NewISRPlan(prog, w.Handler, fault.ISRPlanConfig{
		Seed:         spec.Seed,
		GPRTransient: spec.GPRTransient,
		GPRPermanent: spec.GPRPermanent,
		MemPermanent: spec.MemPermanent,
		CodeBitflip:  spec.CodeBitflip,
		GoldenInsts:  g.Insts,
		StackTop:     tg.StackTop(),
		StackBytes:   spec.StackBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.CampaignOpt(tg, plan, fault.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestISRFaultServiceMatchesCLI pins the service half of the ISR
// campaign determinism contract: the ISR-targeted, latency-classified
// campaign submitted through the service is classification-identical,
// mutant by mutant, to the direct fault-package run — on every
// translated engine — and the outcome vector is engine-invariant.
func TestISRFaultServiceMatchesCLI(t *testing.T) {
	w, _ := workloads.ByName("pid_timer")
	spec := FaultSpec{
		Seed: 42, GPRTransient: 12, GPRPermanent: 4, MemPermanent: 8,
		CodeBitflip: 8, Workers: 2, ISRHandler: w.Handler, LatencyBudget: 3000,
	}
	s := newServer(t, Config{Workers: 2})

	var first []string
	for _, eng := range []string{"switch", "threaded", "superblock"} {
		e, err := emu.ParseEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		ref := isrReference(t, "pid_timer", spec, e)
		st, err := s.Submit(Request{
			Type: "fault", Source: w.Source, Budget: w.Budget, Engine: eng,
			Sensor: w.Sensor, Stream: w.Stream, UARTIn: string(w.UARTIn),
			Fault: &spec,
		})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if st = wait(t, s, st.ID); st.State != StateDone {
			t.Fatalf("%s: job state %s (err %q)", eng, st.State, st.Error)
		}
		_, res, _ := s.Result(st.ID)
		fr, ok := res.(FaultResult)
		if !ok {
			t.Fatalf("%s: result type %T", eng, res)
		}
		if fr.Total != ref.Total || len(fr.Details) != len(ref.Details) {
			t.Fatalf("%s: %d mutants, want %d", eng, fr.Total, ref.Total)
		}
		for i, o := range fr.Details {
			if o != ref.Details[i].String() {
				t.Errorf("%s: mutant %d classified %s, CLI classified %s",
					eng, i, o, ref.Details[i])
			}
		}
		if fr.ByOutcome["latency-viol"] == 0 {
			t.Errorf("%s: no latency violations under a 3000-cycle budget", eng)
		}
		if first == nil {
			first = fr.Details
			continue
		}
		for i, o := range fr.Details {
			if o != first[i] {
				t.Errorf("%s: mutant %d classified %s, first engine classified %s",
					eng, i, o, first[i])
			}
		}
	}
}

// TestIRTJob runs the interrupt-response-time qualification as a
// service job over a named demonstrator and over the same source
// submitted as a custom program: both must come back sound, and the
// measured campaigns must be bit-identical (the custom path feeds the
// same stimuli through the request).
func TestIRTJob(t *testing.T) {
	s := newServer(t, Config{Workers: 2})
	w, _ := workloads.ByName("pid_timer")

	named, err := s.Submit(Request{
		Type: "irt",
		IRQ:  &IRQSpec{Workload: "pid_timer", Samples: 8, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	custom, err := s.Submit(Request{
		Type: "irt", Source: w.Source, Budget: w.Budget,
		Sensor: w.Sensor, Stream: w.Stream, UARTIn: string(w.UARTIn),
		Bounds: w.LoopBounds,
		IRQ: &IRQSpec{
			Handler: w.Handler, Expect: w.Expect, Samples: 8, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	results := make([]*flow.IRTResult, 2)
	for i, st := range []Status{named, custom} {
		st = wait(t, s, st.ID)
		if st.State != StateDone {
			t.Fatalf("irt job %d state %s (err %q)", i, st.State, st.Error)
		}
		_, res, _ := s.Result(st.ID)
		r, ok := res.(*flow.IRTResult)
		if !ok {
			t.Fatalf("irt job %d result type %T", i, res)
		}
		if !r.Sound {
			t.Errorf("irt job %d unsound: bound %d, observed max %d",
				i, r.Static.Bound, r.Measured.MaxLatency)
		}
		if r.Measured.Delivered == 0 {
			t.Errorf("irt job %d delivered no interrupts", i)
		}
		if r.Measured.Mismatches != 0 {
			t.Errorf("irt job %d: %d co-sim mismatches", i, r.Measured.Mismatches)
		}
		results[i] = r
	}
	if results[0].Static.Bound != results[1].Static.Bound {
		t.Errorf("bounds differ: workload %d, custom %d",
			results[0].Static.Bound, results[1].Static.Bound)
	}
	if results[0].Measured.MaxLatency != results[1].Measured.MaxLatency {
		t.Errorf("measurements differ: workload max %d, custom max %d",
			results[0].Measured.MaxLatency, results[1].Measured.MaxLatency)
	}
}
