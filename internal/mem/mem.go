// Package mem implements the physical memory system of the virtual
// platform: a bus that dispatches 1/2/4-byte accesses to mapped RAM and
// MMIO devices with RISC-V fault semantics (access faults for unmapped
// addresses, misaligned faults for unnatural alignment).
package mem

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Access distinguishes the three architectural access kinds; it selects
// the exception cause raised on a fault.
type Access uint8

const (
	Fetch Access = iota
	Load
	Store
)

func (a Access) String() string {
	switch a {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	}
	return "access?"
}

// Fault describes a failed memory access in architectural terms.
type Fault struct {
	Cause uint32 // isa.Exc* code
	Addr  uint32 // faulting address (goes to mtval)
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s at 0x%08x", isa.ExcName(f.Cause), f.Addr)
}

func accessFault(kind Access, addr uint32) *Fault {
	switch kind {
	case Fetch:
		return &Fault{isa.ExcInstAccessFault, addr}
	case Load:
		return &Fault{isa.ExcLoadAccessFault, addr}
	default:
		return &Fault{isa.ExcStoreAccessFault, addr}
	}
}

func misaligned(kind Access, addr uint32) *Fault {
	switch kind {
	case Fetch:
		return &Fault{isa.ExcInstAddrMisaligned, addr}
	case Load:
		return &Fault{isa.ExcLoadAddrMisaligned, addr}
	default:
		return &Fault{isa.ExcStoreAddrMisaligned, addr}
	}
}

// Device is the target of MMIO accesses. Offsets are relative to the
// device's mapped base; size is 1, 2 or 4. Devices may return an error to
// signal an access fault.
type Device interface {
	Load(off uint32, size uint8) (uint32, error)
	Store(off uint32, size uint8, val uint32) error
}

type region struct {
	base, size uint32
	dev        Device
	name       string
	ram        *RAM // non-nil fast path
}

// Bus dispatches physical accesses to mapped regions. Regions must not
// overlap. The zero Bus is empty and ready to use.
type Bus struct {
	regions []region

	// WriteNotify, when set, observes host-side bulk writes into bus
	// memory (WriteBytes — program loaders, snapshot restores, injected
	// corruption) as an absolute address range [lo, hi). The emulator
	// points it at Machine.NoteRAMWriteRange so such writes are folded
	// into the store watermark and dirty-page bitmap instead of being
	// invisible to the rewind and code-validity machinery. Guest stores
	// do not pass through it; the engines track those directly.
	WriteNotify func(lo, hi uint32)

	// stats counts dispatched accesses. Plain fields: the bus serves one
	// hart, and the increments are noise next to the region search. Note
	// the emulator's direct-RAM fast path bypasses the bus, so these are
	// bus dispatches (MMIO, fetches, unaligned/slow-path data), not total
	// guest accesses.
	stats BusStats
}

// BusStats counts the accesses the bus dispatched since construction.
type BusStats struct {
	Fetches uint64 // instruction fetches (16-bit parcels)
	Loads   uint64 // data loads
	Stores  uint64 // data stores
	Faults  uint64 // accesses that raised a memory fault
}

// Stats returns a snapshot of the bus access counters.
func (b *Bus) Stats() BusStats { return b.stats }

// Map adds a device at [base, base+size). It returns an error if the new
// region overlaps an existing one or wraps the address space.
func (b *Bus) Map(base, size uint32, dev Device, name string) error {
	if size == 0 || base+size < base {
		return fmt.Errorf("mem: region %q (0x%x+0x%x) empty or wraps", name, base, size)
	}
	for _, r := range b.regions {
		if base < r.base+r.size && r.base < base+size {
			return fmt.Errorf("mem: region %q overlaps %q", name, r.name)
		}
	}
	ram, _ := dev.(*RAM)
	b.regions = append(b.regions, region{base, size, dev, name, ram})
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].base < b.regions[j].base })
	return nil
}

// find locates the region containing [addr, addr+size).
func (b *Bus) find(addr uint32, size uint8) *region {
	lo, hi := 0, len(b.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := &b.regions[mid]
		switch {
		case addr < r.base:
			hi = mid
		case addr >= r.base+r.size:
			lo = mid + 1
		default:
			if addr+uint32(size) > r.base+r.size {
				return nil // access straddles the region end
			}
			return r
		}
	}
	return nil
}

// LoadKind performs a load or fetch of the given size.
func (b *Bus) LoadKind(kind Access, addr uint32, size uint8) (uint32, *Fault) {
	if kind == Fetch {
		b.stats.Fetches++
	} else {
		b.stats.Loads++
	}
	if addr&uint32(size-1) != 0 {
		b.stats.Faults++
		return 0, misaligned(kind, addr)
	}
	r := b.find(addr, size)
	if r == nil {
		b.stats.Faults++
		return 0, accessFault(kind, addr)
	}
	if r.ram != nil {
		return r.ram.load(addr-r.base, size), nil
	}
	v, err := r.dev.Load(addr-r.base, size)
	if err != nil {
		b.stats.Faults++
		return 0, accessFault(kind, addr)
	}
	return v, nil
}

// Load performs a data load of the given size (1, 2 or 4 bytes).
func (b *Bus) Load(addr uint32, size uint8) (uint32, *Fault) {
	return b.LoadKind(Load, addr, size)
}

// Fetch16 fetches one 16-bit instruction parcel.
func (b *Bus) Fetch16(addr uint32) (uint16, *Fault) {
	v, f := b.LoadKind(Fetch, addr, 2)
	return uint16(v), f
}

// Store performs a data store of the given size (1, 2 or 4 bytes).
func (b *Bus) Store(addr uint32, size uint8, val uint32) *Fault {
	b.stats.Stores++
	if addr&uint32(size-1) != 0 {
		b.stats.Faults++
		return misaligned(Store, addr)
	}
	r := b.find(addr, size)
	if r == nil {
		b.stats.Faults++
		return accessFault(Store, addr)
	}
	if r.ram != nil {
		r.ram.store(addr-r.base, size, val)
		return nil
	}
	if err := r.dev.Store(addr-r.base, size, val); err != nil {
		b.stats.Faults++
		return accessFault(Store, addr)
	}
	return nil
}

// WriteBytes copies raw bytes into bus memory, for program loading. It
// fails if any byte lands outside RAM. The written range (on error, the
// written prefix) is reported through WriteNotify when set.
func (b *Bus) WriteBytes(addr uint32, data []byte) error {
	for i, by := range data {
		a := addr + uint32(i)
		r := b.find(a, 1)
		if r == nil || r.ram == nil {
			// Report the prefix actually written before failing, so the
			// dirty-state tracking stays sound even on a partial write.
			if b.WriteNotify != nil && i > 0 {
				b.WriteNotify(addr, addr+uint32(i))
			}
			return fmt.Errorf("mem: WriteBytes: 0x%08x not RAM", a)
		}
		r.ram.bytes[a-r.base] = by
	}
	if b.WriteNotify != nil && len(data) > 0 {
		b.WriteNotify(addr, addr+uint32(len(data)))
	}
	return nil
}

// ReadBytes copies raw bytes out of bus memory, for result inspection.
func (b *Bus) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint32(i)
		r := b.find(a, 1)
		if r == nil || r.ram == nil {
			return nil, fmt.Errorf("mem: ReadBytes: 0x%08x not RAM", a)
		}
		out[i] = r.ram.bytes[a-r.base]
	}
	return out, nil
}

// DirectRAM returns the base address and backing bytes of the largest
// mapped RAM region, or (0, nil) when none is mapped. The emulator's
// threaded engine uses it as an inline fast path for aligned data
// accesses that stay inside RAM, bypassing the region search.
func (b *Bus) DirectRAM() (base uint32, bytes []byte) {
	for _, r := range b.regions {
		if r.ram != nil && len(r.ram.bytes) > len(bytes) {
			base, bytes = r.base, r.ram.bytes
		}
	}
	return base, bytes
}

// Regions describes the bus layout, for diagnostics.
func (b *Bus) Regions() []string {
	out := make([]string, len(b.regions))
	for i, r := range b.regions {
		out[i] = fmt.Sprintf("%-8s 0x%08x-0x%08x", r.name, r.base, r.base+r.size-1)
	}
	return out
}

// RAM is a plain byte-addressable memory, little-endian like RISC-V.
type RAM struct {
	bytes []byte
}

// NewRAM allocates a zeroed RAM of the given size.
func NewRAM(size uint32) *RAM { return &RAM{bytes: make([]byte, size)} }

// Size returns the RAM capacity in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.bytes)) }

// Bytes exposes the backing store. The fault injector uses this to flip
// bits; the loader uses it to place images.
func (r *RAM) Bytes() []byte { return r.bytes }

func (r *RAM) load(off uint32, size uint8) uint32 {
	b := r.bytes
	switch size {
	case 1:
		return uint32(b[off])
	case 2:
		return uint32(b[off]) | uint32(b[off+1])<<8
	default:
		return uint32(b[off]) | uint32(b[off+1])<<8 |
			uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
}

func (r *RAM) store(off uint32, size uint8, val uint32) {
	b := r.bytes
	switch size {
	case 1:
		b[off] = byte(val)
	case 2:
		b[off] = byte(val)
		b[off+1] = byte(val >> 8)
	default:
		b[off] = byte(val)
		b[off+1] = byte(val >> 8)
		b[off+2] = byte(val >> 16)
		b[off+3] = byte(val >> 24)
	}
}

// Load implements Device (bounds were checked by the bus).
func (r *RAM) Load(off uint32, size uint8) (uint32, error) {
	return r.load(off, size), nil
}

// Store implements Device.
func (r *RAM) Store(off uint32, size uint8, val uint32) error {
	r.store(off, size, val)
	return nil
}
