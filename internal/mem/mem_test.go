package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func mustMap(t *testing.T, b *Bus, base, size uint32, d Device, name string) {
	t.Helper()
	if err := b.Map(base, size, d, name); err != nil {
		t.Fatal(err)
	}
}

func TestRAMLoadStoreAllSizes(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0x8000_0000, 0x1000, NewRAM(0x1000), "ram")

	if f := b.Store(0x8000_0000, 4, 0x11223344); f != nil {
		t.Fatal(f)
	}
	cases := []struct {
		addr uint32
		size uint8
		want uint32
	}{
		{0x8000_0000, 4, 0x11223344},
		{0x8000_0000, 2, 0x3344},
		{0x8000_0002, 2, 0x1122},
		{0x8000_0000, 1, 0x44},
		{0x8000_0003, 1, 0x11},
	}
	for _, c := range cases {
		v, f := b.Load(c.addr, c.size)
		if f != nil {
			t.Fatalf("load 0x%x/%d: %v", c.addr, c.size, f)
		}
		if v != c.want {
			t.Errorf("load 0x%x/%d = 0x%x, want 0x%x", c.addr, c.size, v, c.want)
		}
	}
}

func TestLittleEndianStoreByte(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0, 16, NewRAM(16), "ram")
	b.Store(0, 1, 0xaa)
	b.Store(1, 1, 0xbb)
	b.Store(2, 2, 0xccdd)
	v, _ := b.Load(0, 4)
	if v != 0xccddbbaa {
		t.Errorf("got 0x%08x, want 0xccddbbaa", v)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0x1000, 0x1000, NewRAM(0x1000), "ram")

	if _, f := b.Load(0x0, 4); f == nil || f.Cause != isa.ExcLoadAccessFault {
		t.Errorf("load unmapped: %v", f)
	}
	if f := b.Store(0x3000, 4, 0); f == nil || f.Cause != isa.ExcStoreAccessFault {
		t.Errorf("store unmapped: %v", f)
	}
	if _, f := b.LoadKind(Fetch, 0x0, 2); f == nil || f.Cause != isa.ExcInstAccessFault {
		t.Errorf("fetch unmapped: %v", f)
	}
	// Straddling the end of a region is a fault too.
	if _, f := b.Load(0x1ffe, 4); f == nil {
		t.Error("straddling load should fault")
	}
}

func TestMisalignedFaults(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0, 0x100, NewRAM(0x100), "ram")
	if _, f := b.Load(1, 4); f == nil || f.Cause != isa.ExcLoadAddrMisaligned {
		t.Errorf("misaligned word load: %v", f)
	}
	if _, f := b.Load(1, 2); f == nil || f.Cause != isa.ExcLoadAddrMisaligned {
		t.Errorf("misaligned half load: %v", f)
	}
	if f := b.Store(2, 4, 0); f == nil || f.Cause != isa.ExcStoreAddrMisaligned {
		t.Errorf("misaligned word store: %v", f)
	}
	if _, f := b.Fetch16(1); f == nil || f.Cause != isa.ExcInstAddrMisaligned {
		t.Errorf("misaligned fetch: %v", f)
	}
	// Byte accesses are never misaligned.
	if _, f := b.Load(3, 1); f != nil {
		t.Errorf("byte load: %v", f)
	}
}

func TestOverlapRejected(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0x1000, 0x1000, NewRAM(0x1000), "a")
	if err := b.Map(0x1800, 0x1000, NewRAM(0x1000), "b"); err == nil {
		t.Error("overlapping map should fail")
	}
	if err := b.Map(0x0, 0x1001, NewRAM(0x2000), "c"); err == nil {
		t.Error("overlapping map should fail")
	}
	if err := b.Map(0x2000, 0x100, NewRAM(0x100), "d"); err != nil {
		t.Errorf("adjacent map should succeed: %v", err)
	}
	if err := b.Map(0xffffffff, 2, NewRAM(2), "wrap"); err == nil {
		t.Error("wrapping region should fail")
	}
	if err := b.Map(0x5000, 0, NewRAM(1), "empty"); err == nil {
		t.Error("empty region should fail")
	}
}

func TestMultiRegionDispatch(t *testing.T) {
	var b Bus
	r1, r2 := NewRAM(0x100), NewRAM(0x100)
	mustMap(t, &b, 0x1000, 0x100, r1, "r1")
	mustMap(t, &b, 0x3000, 0x100, r2, "r2")
	b.Store(0x1000, 4, 1)
	b.Store(0x3000, 4, 2)
	if v, _ := b.Load(0x1000, 4); v != 1 {
		t.Error("r1 corrupted")
	}
	if v, _ := b.Load(0x3000, 4); v != 2 {
		t.Error("r2 corrupted")
	}
	if got := b.Regions(); len(got) != 2 {
		t.Errorf("Regions() = %v", got)
	}
}

func TestWriteReadBytes(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0x100, 0x100, NewRAM(0x100), "ram")
	data := []byte{1, 2, 3, 4, 5}
	if err := b.WriteBytes(0x140, data); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBytes(0x140, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
	if err := b.WriteBytes(0x1fe, data); err == nil {
		t.Error("WriteBytes past region end should fail")
	}
	if _, err := b.ReadBytes(0x0, 1); err == nil {
		t.Error("ReadBytes outside RAM should fail")
	}
}

// TestWriteBytesNotify: host-side bulk writes must be observable — the
// full range on success, the written prefix on failure — so the
// emulator's dirty-state tracking sees loader/harness writes.
func TestWriteBytesNotify(t *testing.T) {
	var b Bus
	mustMap(t, &b, 0x100, 0x100, NewRAM(0x100), "ram")
	type rng struct{ lo, hi uint32 }
	var got []rng
	b.WriteNotify = func(lo, hi uint32) { got = append(got, rng{lo, hi}) }

	if err := b.WriteBytes(0x140, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (rng{0x140, 0x145}) {
		t.Fatalf("notify after full write: %+v, want [{0x140 0x145}]", got)
	}

	got = nil
	if err := b.WriteBytes(0x1fe, []byte{1, 2, 3}); err == nil {
		t.Fatal("WriteBytes past region end should fail")
	}
	// Two bytes landed (0x1fe, 0x1ff) before the third fell off the
	// region; exactly that prefix must be reported.
	if len(got) != 1 || got[0] != (rng{0x1fe, 0x200}) {
		t.Fatalf("notify after partial write: %+v, want [{0x1fe 0x200}]", got)
	}

	got = nil
	if err := b.WriteBytes(0x140, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty write must not notify, got %+v", got)
	}
}

// Property: for any word value and aligned offset, store-then-load is an
// identity through the bus.
func TestQuickStoreLoadIdentity(t *testing.T) {
	var b Bus
	ram := NewRAM(0x10000)
	mustMap(t, &b, 0, 0x10000, ram, "ram")
	f := func(off uint16, val uint32) bool {
		addr := uint32(off) &^ 3
		if b.Store(addr, 4, val) != nil {
			return false
		}
		v, fault := b.Load(addr, 4)
		return fault == nil && v == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Cause: isa.ExcLoadAccessFault, Addr: 0x1234}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func BenchmarkBusLoad(b *testing.B) {
	var bus Bus
	bus.Map(0x8000_0000, 1<<20, NewRAM(1<<20), "ram")
	for i := 0; i < b.N; i++ {
		bus.Load(0x8000_0000+uint32(i)&0xfffc, 4)
	}
}
