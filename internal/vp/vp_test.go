package vp_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/elf"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

func TestDefaultsAndMemoryMap(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.RAM.Size() != vp.DefaultRAMSize {
		t.Errorf("RAM size = %d", p.RAM.Size())
	}
	// Every mapped device must answer at its base.
	for _, addr := range []uint32{vp.SysConBase, vp.CLINTBase, vp.UARTBase, vp.SensorBase, vp.RAMBase} {
		if _, f := p.Machine.Bus.Load(addr, 4); f != nil {
			t.Errorf("load at 0x%08x: %v", addr, f)
		}
	}
	// Holes fault.
	if _, f := p.Machine.Bus.Load(0x4000_0000, 4); f == nil {
		t.Error("unmapped hole should fault")
	}
}

// The prelude constants the assembly programs rely on must match the Go
// constants the devices are mapped at.
func TestPreludeConstantsConsistent(t *testing.T) {
	prog, err := asm.AssembleAt(vp.Prelude+`
		.word UART_TX, SYSCON_EXIT, CLINT_MTIME, SENSOR_SAMPLE, CLINT_MSIP
	`, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	words := []uint32{vp.UARTBase, vp.SysConBase, vp.CLINTBase + 0xbff8, vp.SensorBase, vp.CLINTBase}
	for i, want := range words {
		got := uint32(prog.Bytes[4*i]) | uint32(prog.Bytes[4*i+1])<<8 |
			uint32(prog.Bytes[4*i+2])<<16 | uint32(prog.Bytes[4*i+3])<<24
		if got != want {
			t.Errorf("prelude constant %d = 0x%08x, want 0x%08x", i, got, want)
		}
	}
}

func TestLoadSourceRunsAtRAMBase(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.LoadSource("li a0, 9\nebreak\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Org != vp.RAMBase {
		t.Errorf("org = 0x%x", prog.Org)
	}
	if p.Machine.Hart.PC != prog.Entry {
		t.Error("PC not at entry after load")
	}
	if p.Machine.Hart.Reg(isa.SP) != vp.RAMBase+p.RAM.Size() {
		t.Error("SP not initialized to RAM top")
	}
	stop := p.Run(100)
	if stop.Reason != emu.StopEbreak || p.Machine.Hart.Reg(isa.A0) != 9 {
		t.Errorf("%v a0=%d", stop, p.Machine.Hart.Reg(isa.A0))
	}
}

func TestLoadELFRoundTrip(t *testing.T) {
	prog, err := asm.AssembleAt(vp.Prelude+`
_start:
	li a0, 5
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	data := elf.Write(&elf.Image{
		Entry:    prog.Entry,
		Segments: []elf.Segment{{Addr: prog.Org, Data: prog.Bytes}},
		Symbols:  prog.Symbols,
	})
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.LoadELF(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != prog.Entry {
		t.Error("entry mismatch")
	}
	stop := p.Run(1000)
	if stop.Reason != emu.StopExit || stop.Code != 5 {
		t.Errorf("stop = %v", stop)
	}
}

func TestLoadELFRejectsOutOfRAM(t *testing.T) {
	p, _ := vp.New(vp.Config{})
	data := elf.Write(&elf.Image{
		Entry:    0x1000,
		Segments: []elf.Segment{{Addr: 0x1000, Data: []byte{1, 2, 3, 4}}},
		Symbols:  map[string]uint32{},
	})
	if _, err := p.LoadELF(data); err == nil {
		t.Error("segment outside RAM should fail to load")
	}
}

func TestConsoleStreaming(t *testing.T) {
	var buf bytes.Buffer
	p, err := vp.New(vp.Config{ConsoleOut: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + `
		li a0, 'X'
		li a1, UART_TX
		sw a0, 0(a1)
		ebreak
	`); err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	if buf.String() != "X" || p.Output() != "X" {
		t.Errorf("console %q, output %q", buf.String(), p.Output())
	}
}

func TestSensorPreload(t *testing.T) {
	p, err := vp.New(vp.Config{Sensor: []int16{-5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + `
		li a1, SENSOR_SAMPLE
		lw a0, 0(a1)
		ebreak
	`); err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	if int32(p.Machine.Hart.Reg(isa.A0)) != -5 {
		t.Errorf("sensor sample = %d", int32(p.Machine.Hart.Reg(isa.A0)))
	}
}

func TestAssemblyErrorsSurface(t *testing.T) {
	p, _ := vp.New(vp.Config{})
	_, err := p.LoadSource("bogus instruction here\n")
	if err == nil || !strings.Contains(err.Error(), "unknown instruction") {
		t.Errorf("err = %v", err)
	}
}
