package vp_test

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/obs"
	"repro/internal/vp"
)

const loopProg = `
_start:
	li a0, 0
	li a1, 200
loop:	add a0, a0, a1
	addi a1, a1, -1
	bnez a1, loop
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`

func TestEngineStatsAndRecord(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + loopProg); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(1_000_000)
	if stop.Reason != emu.StopExit {
		t.Fatalf("stopped with %v", stop)
	}
	es := p.Machine.Stats()
	if es.TBsCompiled == 0 {
		t.Error("no blocks compiled")
	}
	// The 200-iteration loop re-enters its block either through the
	// chain or the jump cache; both cannot be idle.
	if es.ChainFollows == 0 && es.JumpCacheHits == 0 {
		t.Errorf("hot loop used neither chaining nor jump cache: %+v", es)
	}
	if hr := es.JumpCacheHitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate %v out of range", hr)
	}
	bs := p.Machine.Bus.Stats()
	if bs.Fetches == 0 {
		t.Errorf("no bus fetches recorded: %+v", bs)
	}
	if bs.Stores == 0 {
		t.Errorf("the syscon exit store must dispatch through the bus: %+v", bs)
	}

	r := obs.NewRegistry()
	p.RecordStats(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		vp.MetricTBsCompiled, vp.MetricInsts, vp.MetricCycles,
		vp.MetricBusFetches, vp.MetricBusStores,
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("metrics output missing %s:\n%s", name, out)
		}
	}
	if c := r.Counter(vp.MetricInsts, ""); c.Value() != p.Machine.Hart.Instret {
		t.Errorf("recorded insts %d, hart %d", c.Value(), p.Machine.Hart.Instret)
	}
	// Recording a second platform accumulates.
	p.RecordStats(r)
	if c := r.Counter(vp.MetricInsts, ""); c.Value() != 2*p.Machine.Hart.Instret {
		t.Errorf("counters must accumulate across recordings: %d", c.Value())
	}
	// Nil registry is a no-op.
	p.RecordStats(nil)
}

func TestEngineStatsInvalidation(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + loopProg); err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(1_000_000); stop.Reason != emu.StopExit {
		t.Fatalf("stopped with %v", stop)
	}
	before := p.Machine.Stats()
	p.Machine.InvalidateTBs()
	after := p.Machine.Stats()
	if after.TBsInvalidated <= before.TBsInvalidated {
		t.Errorf("flush did not count invalidations: %+v -> %+v", before, after)
	}
	if after.ChainsSevered <= before.ChainsSevered {
		t.Errorf("flush did not count severed chains: %+v -> %+v", before, after)
	}
}
