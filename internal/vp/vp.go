// Package vp assembles the virtual platform: one RV32 hart, RAM, and the
// standard peripheral set (UART console, CLINT timer, syscon test
// finisher, synthetic sensor) at a fixed memory map. It is the top-level
// API the command-line tools, examples and experiments drive.
package vp

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/dev"
	"repro/internal/elf"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/timing"
)

// The platform memory map. Programs reach peripherals at these addresses.
const (
	SysConBase = 0x0010_0000
	CLINTBase  = 0x0200_0000
	UARTBase   = 0x1000_0000
	SensorBase = 0x1001_0000
	DMABase    = 0x1002_0000
	PLICBase   = 0x1003_0000
	RAMBase    = 0x8000_0000

	// DefaultRAMSize is 4 MiB, plenty for the edge workloads.
	DefaultRAMSize = 4 << 20
)

// Config parametrizes platform construction. The zero value is usable.
type Config struct {
	RAMSize    uint32          // defaults to DefaultRAMSize
	Profile    *timing.Profile // defaults to timing.Unit()
	ISA        isa.ExtSet      // defaults to isa.RV32Full
	ConsoleOut io.Writer       // defaults to discarding (UART still records)
	Sensor     []int16         // samples preloaded into the sensor device
	Stream     []int16         // samples preloaded into the DMA stream engine
	UARTIn     []byte          // bytes preloaded into the UART receive queue
}

// Platform is one assembled virtual platform instance.
type Platform struct {
	Machine *emu.Machine
	RAM     *mem.RAM
	UART    *dev.UART
	Clint   *dev.CLINT
	Sensor  *dev.Sensor
	DMA     *dev.DMAStream
	Plic    *dev.PLIC

	// Restore accounting: how many rewinds this platform performed and
	// how much RAM they actually copied. Plain fields (a platform is
	// single-threaded); fleet aggregation happens via RecordStats.
	restores     uint64
	restoreBytes uint64
	restorePages uint64

	// Per-restore distributions, attached via AttachRestoreObs; nil
	// until then (and obs instruments are nil-safe anyway).
	hRestoreBytes *obs.Histogram
	hRestorePages *obs.Histogram
}

// New builds a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.RAMSize == 0 {
		cfg.RAMSize = DefaultRAMSize
	}
	if cfg.ISA == 0 {
		cfg.ISA = isa.RV32Full
	}

	bus := &mem.Bus{}
	p := &Platform{
		RAM:    mem.NewRAM(cfg.RAMSize),
		UART:   dev.NewUART(cfg.ConsoleOut),
		Clint:  dev.NewCLINT(),
		Sensor: dev.NewSensor(cfg.Sensor),
		DMA:    dev.NewDMAStream(cfg.Stream),
		Plic:   dev.NewPLIC(),
	}
	p.UART.Feed(cfg.UARTIn)
	syscon := &dev.SysCon{}
	type mapping struct {
		base, size uint32
		d          mem.Device
		name       string
	}
	maps := []mapping{
		{SysConBase, 0x1000, syscon, "syscon"},
		{CLINTBase, dev.CLINTSize, p.Clint, "clint"},
		{UARTBase, 0x1000, p.UART, "uart"},
		{SensorBase, 0x1000, p.Sensor, "sensor"},
		{DMABase, dev.DMASize, p.DMA, "dma"},
		{PLICBase, dev.PLICSize, p.Plic, "plic"},
		{RAMBase, cfg.RAMSize, p.RAM, "ram"},
	}
	for _, m := range maps {
		if err := bus.Map(m.base, m.size, m.d, m.name); err != nil {
			return nil, fmt.Errorf("vp: %w", err)
		}
	}

	p.Machine = emu.New(bus)
	p.Machine.Profile = cfg.Profile
	p.Machine.Clint = p.Clint
	p.Machine.ISA = cfg.ISA
	p.Machine.Ext = extSources{p}
	syscon.OnExit = p.Machine.RequestStop

	// The DMA engine reaches guest memory over the bus (WriteBytes feeds
	// the write notification, keeping dirty-page tracking sound) and
	// anchors kicks to guest time; its completion line and the UART's
	// receive line feed the PLIC, which the machine polls as its
	// external-interrupt source.
	p.DMA.Mem = dmaBusMem{p}
	p.DMA.Now = func() uint64 { return p.Machine.Hart.Cycle }
	p.Plic.SetSource(dev.PLICLineDMA, p.DMA.IRQ)
	p.Plic.SetSource(dev.PLICLineUART, p.UART.RxAvail)
	return p, nil
}

// extSources is the machine's external-interrupt view of the platform:
// each interrupt poll advances the DMA engine and the PLIC's test-line
// latch to the current cycle, then mirrors the PLIC's live pending
// state into MEIP. Device state thus changes only at poll points (and
// guest MMIO stores), which all engines replicate exactly.
type extSources struct{ p *Platform }

func (e extSources) Tick(cycle uint64) {
	e.p.DMA.Tick(cycle)
	e.p.Plic.Tick(cycle)
}

func (e extSources) Pending() bool { return e.p.Plic.Pending() }

// dmaBusMem routes DMA guest-memory accesses over the platform bus so
// host-side copies stay visible to the dirty-state tracking, and drops
// any translations covering code the DMA overwrites (a fault campaign
// can corrupt a descriptor to point at code; engine equivalence demands
// the translated engines observe the new bytes exactly as Step does).
type dmaBusMem struct{ p *Platform }

func (m dmaBusMem) ReadWord(addr uint32) (uint32, error) {
	b, err := m.p.Machine.Bus.ReadBytes(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

func (m dmaBusMem) WriteWord(addr uint32, val uint32) error {
	b := [4]byte{byte(val), byte(val >> 8), byte(val >> 16), byte(val >> 24)}
	if err := m.p.Machine.Bus.WriteBytes(addr, b[:]); err != nil {
		return err
	}
	if cLo, cHi := m.p.Machine.CodeRange(); addr < cHi && addr+4 > cLo {
		m.p.Machine.InvalidateRange(addr, addr+4)
	}
	return nil
}

// LoadImage places a flat binary at addr and resets the hart to entry
// with the stack pointer at the top of RAM.
func (p *Platform) LoadImage(addr uint32, image []byte, entry uint32) error {
	if err := p.Machine.Bus.WriteBytes(addr, image); err != nil {
		return fmt.Errorf("vp: load image: %w", err)
	}
	p.Machine.Reset(entry)
	p.Machine.Hart.SetReg(isa.SP, RAMBase+p.RAM.Size())
	return nil
}

// LoadProgram loads an assembled program.
func (p *Platform) LoadProgram(prog *asm.Program) error {
	return p.LoadImage(prog.Org, prog.Bytes, prog.Entry)
}

// LoadELF loads an ELF32 executable.
func (p *Platform) LoadELF(data []byte) (*elf.Image, error) {
	img, err := elf.Read(data)
	if err != nil {
		return nil, err
	}
	for _, seg := range img.Segments {
		if err := p.Machine.Bus.WriteBytes(seg.Addr, seg.Data); err != nil {
			return nil, fmt.Errorf("vp: load ELF segment at 0x%08x: %w", seg.Addr, err)
		}
	}
	p.Machine.Reset(img.Entry)
	p.Machine.Hart.SetReg(isa.SP, RAMBase+p.RAM.Size())
	return img, nil
}

// LoadSource assembles source at the RAM base and loads it.
func (p *Platform) LoadSource(src string) (*asm.Program, error) {
	prog, err := asm.AssembleAt(src, RAMBase)
	if err != nil {
		return nil, err
	}
	if err := p.LoadProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// Run executes until stop or budget exhaustion.
func (p *Platform) Run(budget uint64) emu.StopInfo {
	return p.Machine.Run(budget)
}

// runChunk is the cancellation granularity of RunContext: about 10 ms
// of emulation at edge-platform speeds, small enough that a cancelled
// job releases its worker promptly, large enough that the per-chunk
// bookkeeping is invisible in throughput.
const runChunk = 2_000_000

// RunContext is Run under a context: the budget is executed in bounded
// chunks with a cancellation check between them. Budget stops are
// resumable, so chunking does not change the architectural result — the
// engine differential tests rely on exactly this property. On
// cancellation the partial StopInfo (a budget stop at the current PC)
// is returned together with ctx.Err(); budget 0 means unlimited, which
// with a cancellable context is safe against diverging guests.
func (p *Platform) RunContext(ctx context.Context, budget uint64) (emu.StopInfo, error) {
	var done uint64
	for {
		if err := ctx.Err(); err != nil {
			return emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}, err
		}
		step := uint64(runChunk)
		if budget != 0 {
			if rem := budget - done; rem < step {
				step = rem
			}
		}
		before := p.Machine.Hart.Instret
		stop := p.Run(step)
		done += p.Machine.Hart.Instret - before
		if stop.Reason != emu.StopBudget || (budget != 0 && done >= budget) {
			return stop, nil
		}
	}
}

// Snapshot is a full platform checkpoint: hart, RAM and device state.
// It enables the restore-instead-of-rebuild pattern the fault campaigns
// use to recycle one platform across thousands of mutants.
type Snapshot struct {
	hart   cpu.Hart
	ram    []byte
	uart   dev.UARTState
	clint  dev.CLINTState
	sensor int
	dma    dev.DMAState
	plic   dev.PLICState
}

// Snapshot captures the current platform state.
func (p *Platform) Snapshot() *Snapshot {
	ram := make([]byte, len(p.RAM.Bytes()))
	copy(ram, p.RAM.Bytes())
	return &Snapshot{
		hart:   p.Machine.Hart.Snapshot(),
		ram:    ram,
		uart:   p.UART.Snapshot(),
		clint:  p.Clint.Snapshot(),
		sensor: p.Sensor.Pos(),
		dma:    p.DMA.Snapshot(),
		plic:   p.Plic.Snapshot(),
	}
}

// Restore rewinds the platform to a snapshot. The RAM copy is diffed
// against current memory as it happens: when the restore does not change
// any byte under a translated block, the translation cache is kept warm;
// otherwise only the blocks overlapping the changed range are dropped.
// Inside the byte-precise diff span, unchanged pages are skipped, so a
// sparse divergence from the snapshot copies pages, not the whole span.
// The changed range is also folded into the machine's dirty-state
// tracking, so its consumers (RestoreReuse's differential copy,
// shared-pool validity) stay sound across a full restore. The modelled
// I-cache is always flushed so cycle counts never depend on what ran
// before.
func (p *Platform) Restore(s *Snapshot) {
	p.Machine.Hart.Restore(s.hart)
	ram := p.RAM.Bytes()
	lo, hi := diffRange(ram, s.ram)
	var nbytes, pages uint64
	if lo < hi {
		nbytes, pages = copyDirtyPages(ram, s.ram, lo, hi)
		aLo, aHi := RAMBase+lo, RAMBase+hi
		p.Machine.NoteRAMWriteRange(aLo, aHi)
		if cLo, cHi := p.Machine.CodeRange(); aLo < cHi && aHi > cLo {
			p.Machine.InvalidateRange(aLo, aHi)
		}
	}
	p.noteRestore(nbytes, pages)
	p.Machine.FlushICache()
	p.UART.Restore(s.uart)
	p.Clint.Restore(s.clint)
	p.Sensor.SetPos(s.sensor)
	p.DMA.Restore(s.dma)
	p.Plic.Restore(s.plic)
	p.Machine.ClearStop()
}

// copyDirtyPages copies src into dst over [lo, hi), skipping the
// dirty-page-sized chunks that already match — the per-page refinement
// of the byte-precise diff span: the span bounds what can differ, the
// page compare avoids copying the clean middle. Chunks are aligned to
// page boundaries so repeated restores touch stable ranges. Returns the
// bytes copied and the number of differing pages.
func copyDirtyPages(dst, src []byte, lo, hi uint32) (bytesCopied, pages uint64) {
	for off := lo; off < hi; {
		end := (off &^ (emu.DirtyPageSize - 1)) + emu.DirtyPageSize
		if end > hi {
			end = hi
		}
		if !bytes.Equal(dst[off:end], src[off:end]) {
			copy(dst[off:end], src[off:end])
			bytesCopied += uint64(end - off)
			pages++
		}
		off = end
	}
	return bytesCopied, pages
}

// diffRange returns the exact range [lo, hi) spanning every byte where
// a and b differ; lo >= hi means the slices are equal. The scan is
// chunked (memcmp speed) with byte-precise trimming of the boundary
// chunks, so a dirty data word sitting right next to unchanged code
// does not drag the code into the range.
func diffRange(a, b []byte) (lo, hi uint32) {
	const chunk = 4096
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	first := -1
	for off := 0; off < n; off += chunk {
		end := off + chunk
		if end > n {
			end = n
		}
		if !bytes.Equal(a[off:end], b[off:end]) {
			first = off
			for a[first] == b[first] {
				first++
			}
			break
		}
	}
	if first < 0 {
		return 1, 0
	}
	last := first + 1
	for off := n; off > first; off -= chunk {
		start := off - chunk
		if start < first {
			start = first
		}
		if !bytes.Equal(a[start:off], b[start:off]) {
			last = off
			for a[last-1] == b[last-1] {
				last--
			}
			break
		}
	}
	return uint32(first), uint32(last)
}

// RestoreReuse rewinds the platform to a post-load snapshot of prog
// without copying the snapshot's full RAM image: only the dirty ranges
// the machine tracked since the last rewind — runs of dirty pages,
// trimmed byte-precisely to the store-watermark box at the extremes —
// are copied back from the snapshot, and hart/device state is restored.
// A scattered run (one store at the top of RAM, one at the bottom)
// therefore costs two pages of copying, not the watermark span; without
// the page bitmap (emu.Machine.DisableDirtyPages) the single watermark
// span is copied, the pre-bitmap baseline. s must have been taken
// immediately after loading prog (the fault campaign's base snapshot),
// and every RAM write since must be visible to the dirty-state tracking
// — guest stores are, bus-level host writes arrive via the write
// notification, and raw writes into RAM.Bytes() need
// Machine.NoteRAMWrite. Because the code bytes come back bit-identical,
// the machine's translation cache is kept — callers that dirtied
// translated code during the run must call InvalidateTBs themselves
// (see Machine.CodeWrites). The dirty-state reset below also
// re-certifies an attached shared translation pool (emu.TBPool): pool
// validity is defined as "block bytes untouched since the last pristine
// rewind", and this is that rewind. prog identifies the image the
// snapshot contract is stated against; the copy source is the snapshot
// itself.
func (p *Platform) RestoreReuse(s *Snapshot, prog *asm.Program) {
	_ = prog
	p.Machine.Hart.Restore(s.hart)
	ram := p.RAM.Bytes()
	var nbytes, pages uint64
	p.Machine.ForEachDirtyRange(func(lo, hi uint32) {
		copy(ram[lo-RAMBase:hi-RAMBase], s.ram[lo-RAMBase:hi-RAMBase])
		nbytes += uint64(hi - lo)
		pages += uint64((hi-1)>>emu.DirtyPageShift) - uint64(lo>>emu.DirtyPageShift) + 1
	})
	p.noteRestore(nbytes, pages)
	p.Machine.ResetStoreWatermark()
	p.UART.Restore(s.uart)
	p.Clint.Restore(s.clint)
	p.Sensor.SetPos(s.sensor)
	p.DMA.Restore(s.dma)
	p.Plic.Restore(s.plic)
	p.Machine.FlushICache()
	p.Machine.ClearStop()
}

// Output returns everything the program wrote to the UART.
func (p *Platform) Output() string { return p.UART.Output() }

// Prelude is assembly source defining the platform constants; workloads
// include it to reach the devices symbolically.
const Prelude = `
	.equ UART_BASE,   0x10000000
	.equ UART_TX,     0x10000000
	.equ SYSCON_BASE, 0x00100000
	.equ SYSCON_EXIT, 0x00100000
	.equ CLINT_BASE,  0x02000000
	.equ CLINT_MSIP,      0x02000000
	.equ CLINT_MTIMECMP,  0x02004000
	.equ CLINT_MTIMECMPH, 0x02004004
	.equ CLINT_MTIME,     0x0200bff8
	.equ SENSOR_BASE,   0x10010000
	.equ SENSOR_SAMPLE, 0x10010000
	.equ SENSOR_COUNT,  0x10010004
	.equ DMA_BASE,   0x10020000
	.equ DMA_RING,   0x10020000
	.equ DMA_COUNT,  0x10020004
	.equ DMA_CTRL,   0x10020008
	.equ DMA_STATUS, 0x1002000c
	.equ DMA_CLEAR,  0x10020010
	.equ DMA_HEAD,   0x10020014
	.equ PLIC_BASE,    0x10030000
	.equ PLIC_PENDING, 0x10030000
	.equ PLIC_ENABLE,  0x10030004
	.equ PLIC_CLAIM,   0x10030008
	.equ UART_RX,     0x10000004
	.equ UART_STATUS, 0x10000008
`
