package vp_test

import (
	"testing"

	"repro/internal/vp"
)

func BenchmarkSnapshotRestore(b *testing.B) {
	p, err := vp.New(vp.Config{RAMSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.LoadSource("li a0, 1\nebreak\n"); err != nil {
		b.Fatal(err)
	}
	snap := p.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Restore(snap)
	}
}

func BenchmarkPlatformBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := vp.New(vp.Config{RAMSize: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.LoadSource("li a0, 1\nebreak\n"); err != nil {
			b.Fatal(err)
		}
	}
}
