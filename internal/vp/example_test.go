package vp_test

import (
	"fmt"
	"log"

	"repro/internal/vp"
)

// Example shows the minimal use of the virtual platform: assemble a
// program that prints over the UART and exits through the syscon device.
func Example() {
	p, err := vp.New(vp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + `
_start:
	la   a0, msg
	li   a1, UART_TX
1:	lbu  a2, 0(a0)
	beqz a2, 2f
	sw   a2, 0(a1)
	addi a0, a0, 1
	j    1b
2:	li   t6, SYSCON_EXIT
	sw   zero, 0(t6)
3:	j    3b
msg:	.asciz "hi\n"
`); err != nil {
		log.Fatal(err)
	}
	stop := p.Run(10_000)
	fmt.Printf("%s%v\n", p.Output(), stop.Reason)
	// Output:
	// hi
	// exit
}
