package vp_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

// TestRestoreKeepsWarmTranslations: a full Restore whose RAM diff does
// not touch translated code must keep the translation cache — the warm
// rewind the snapshot/restore campaign pattern relies on.
func TestRestoreKeepsWarmTranslations(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The program dirties data directly after the code (buf) — byte-precise
	// diffing must not drag the adjacent code into the invalidation range.
	src := `
	la a1, buf
	li a2, 77
	sw a2, 0(a1)
	li a0, 5
	ebreak
buf:	.word 0
`
	if _, err := p.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	base := p.Snapshot()
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("first run: %v", stop)
	}
	warm := p.Machine.CachedBlocks()
	if warm == 0 {
		t.Fatal("no translations cached after first run")
	}
	compiled := p.Machine.Stats().TBsCompiled

	p.Restore(base)
	if got := p.Machine.CachedBlocks(); got != warm {
		t.Errorf("restore dropped translations: %d cached, want %d", got, warm)
	}
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("second run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 5 {
		t.Errorf("a0 = %d, want 5", got)
	}
	if got := p.Machine.Stats().TBsCompiled; got != compiled {
		t.Errorf("second run recompiled: %d blocks total, want %d", got, compiled)
	}
}

// TestRestoreInvalidatesStaleCode: when the restore changes bytes under
// translated blocks (the cached code differs from the snapshot image),
// the overlapping translations must be dropped, or the machine would
// execute stale code after the rewind.
func TestRestoreInvalidatesStaleCode(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource("\tli a0, 5\n\tebreak\n"); err != nil {
		t.Fatal(err)
	}
	base := p.Snapshot() // image: li a0, 5

	// Host-patch the immediate to 9 and run, so the cache holds blocks
	// compiled from the patched image.
	ram := p.RAM.Bytes()
	ram[2] = 0x90 // addi a0,x0,5 (0x00500513) -> addi a0,x0,9
	p.Machine.InvalidateTBs()
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("patched run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 9 {
		t.Fatalf("patched run a0 = %d, want 9", got)
	}

	// Restoring the original image changes bytes under the cached block:
	// the block must go, and the rerun must show the original behaviour.
	p.Restore(base)
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("restored run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 5 {
		t.Errorf("restored run a0 = %d, want 5 (stale translation survived restore)", got)
	}
}
