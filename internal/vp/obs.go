package vp

import "repro/internal/obs"

// Engine and bus metric names recorded by RecordStats. Exported so the
// tools and tests reference one spelling.
const (
	MetricTBsCompiled      = "s4e_emu_tbs_compiled_total"
	MetricTBsInvalidated   = "s4e_emu_tbs_invalidated_total"
	MetricJumpCacheHits    = "s4e_emu_jump_cache_hits_total"
	MetricJumpCacheMisses  = "s4e_emu_jump_cache_misses_total"
	MetricJumpCacheHitRate = "s4e_emu_jump_cache_hit_rate"
	MetricChainFollows     = "s4e_emu_chain_follows_total"
	MetricChainsSevered    = "s4e_emu_chains_severed_total"
	MetricPoolHits         = "s4e_emu_pool_hits_total"
	MetricPoolMisses       = "s4e_emu_pool_misses_total"
	MetricOverlayCompiles  = "s4e_emu_overlay_compiles_total"
	MetricTracesFormed     = "s4e_emu_trace_formed_total"
	MetricTraceRuns        = "s4e_emu_trace_retired_total"
	MetricTraceSideExits   = "s4e_emu_trace_side_exits_total"
	MetricTracesDropped    = "s4e_emu_trace_invalidated_total"
	MetricTracePoolHits    = "s4e_emu_trace_pool_hits_total"
	MetricInsts            = "s4e_emu_instructions_retired_total"
	MetricCycles           = "s4e_emu_cycles_total"
	MetricBusFetches       = "s4e_bus_fetches_total"
	MetricBusLoads         = "s4e_bus_loads_total"
	MetricBusStores        = "s4e_bus_stores_total"
	MetricBusFaults        = "s4e_bus_faults_total"
)

// RecordStats folds the platform's engine and memory-bus counters into
// the registry. Counters are additive, so recording several platforms
// (fault-campaign workers) accumulates fleet totals; the jump-cache
// hit-rate gauge is recomputed from the accumulated counters on every
// call, so the last call leaves the overall rate. Call it once per
// platform, after the run. A nil registry is a no-op.
func (p *Platform) RecordStats(r *obs.Registry) {
	if r == nil {
		return
	}
	es := p.Machine.Stats()
	r.Counter(MetricTBsCompiled, "translated blocks compiled").Add(es.TBsCompiled)
	r.Counter(MetricTBsInvalidated, "translated blocks invalidated").Add(es.TBsInvalidated)
	r.Counter(MetricJumpCacheHits, "jump cache hits").Add(es.JumpCacheHits)
	r.Counter(MetricJumpCacheMisses, "jump cache misses").Add(es.JumpCacheMisses)
	r.Counter(MetricChainFollows, "block transitions via chain links").Add(es.ChainFollows)
	r.Counter(MetricChainsSevered, "chain links severed by invalidation").Add(es.ChainsSevered)
	r.Counter(MetricPoolHits, "blocks adopted from the shared translation pool").Add(es.PoolHits)
	r.Counter(MetricPoolMisses, "translations of pcs the shared pool does not cover").Add(es.PoolMisses)
	r.Counter(MetricOverlayCompiles, "private overlay compiles over mutated pool ranges").Add(es.OverlayCompiles)
	r.Counter(MetricTracesFormed, "superblock traces formed").Add(es.TracesFormed)
	r.Counter(MetricTraceRuns, "superblock trace executions retired in full").Add(es.TraceRuns)
	r.Counter(MetricTraceSideExits, "superblock trace side exits").Add(es.TraceSideExits)
	r.Counter(MetricTracesDropped, "superblock traces invalidated or banned").Add(es.TracesInvalidated)
	r.Counter(MetricTracePoolHits, "traces adopted from the shared pool's frozen tier").Add(es.TracePoolHits)
	r.Counter(MetricInsts, "instructions retired").Add(p.Machine.Hart.Instret)
	r.Counter(MetricCycles, "modelled cycles").Add(p.Machine.Hart.Cycle)

	bs := p.Machine.Bus.Stats()
	r.Counter(MetricBusFetches, "bus instruction fetches (16-bit parcels)").Add(bs.Fetches)
	r.Counter(MetricBusLoads, "bus data loads (direct-RAM fast path excluded)").Add(bs.Loads)
	r.Counter(MetricBusStores, "bus data stores (direct-RAM fast path excluded)").Add(bs.Stores)
	r.Counter(MetricBusFaults, "bus accesses that faulted").Add(bs.Faults)

	hits := r.Counter(MetricJumpCacheHits, "").Value()
	misses := r.Counter(MetricJumpCacheMisses, "").Value()
	if total := hits + misses; total > 0 {
		r.Gauge(MetricJumpCacheHitRate, "jump cache hits / lookups").
			Set(float64(hits) / float64(total))
	}
}
