package vp

import "repro/internal/obs"

// Engine and bus metric names recorded by RecordStats. Exported so the
// tools and tests reference one spelling.
const (
	MetricTBsCompiled      = "s4e_emu_tbs_compiled_total"
	MetricTBsInvalidated   = "s4e_emu_tbs_invalidated_total"
	MetricJumpCacheHits    = "s4e_emu_jump_cache_hits_total"
	MetricJumpCacheMisses  = "s4e_emu_jump_cache_misses_total"
	MetricJumpCacheHitRate = "s4e_emu_jump_cache_hit_rate"
	MetricChainFollows     = "s4e_emu_chain_follows_total"
	MetricChainsSevered    = "s4e_emu_chains_severed_total"
	MetricPoolHits         = "s4e_emu_pool_hits_total"
	MetricPoolMisses       = "s4e_emu_pool_misses_total"
	MetricOverlayCompiles  = "s4e_emu_overlay_compiles_total"
	MetricTracesFormed     = "s4e_emu_trace_formed_total"
	MetricTraceRuns        = "s4e_emu_trace_retired_total"
	MetricTraceSideExits   = "s4e_emu_trace_side_exits_total"
	MetricTracesDropped    = "s4e_emu_trace_invalidated_total"
	MetricTracePoolHits    = "s4e_emu_trace_pool_hits_total"
	MetricInsts            = "s4e_emu_instructions_retired_total"
	MetricCycles           = "s4e_emu_cycles_total"
	MetricBusFetches       = "s4e_bus_fetches_total"
	MetricBusLoads         = "s4e_bus_loads_total"
	MetricBusStores        = "s4e_bus_stores_total"
	MetricBusFaults        = "s4e_bus_faults_total"

	// Restore (platform rewind) metrics: totals folded in by
	// RecordStats, per-restore distributions recorded live through
	// AttachRestoreObs.
	MetricRestores          = "s4e_fault_restores_total"
	MetricRestoreBytesTotal = "s4e_fault_restore_bytes_total"
	MetricRestorePagesTotal = "s4e_fault_restore_pages_total"
	MetricRestoreBytes      = "s4e_fault_restore_bytes"
	MetricRestorePages      = "s4e_fault_restore_pages"
)

// Bucket bounds for the per-restore distributions: bytes span one
// scattered word up to the full default RAM; pages span one dirty page
// up to half the default RAM's page count.
var (
	restoreBytesBounds = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
	restorePagesBounds = []float64{1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096}
)

// AttachRestoreObs connects the platform's restore path to the registry:
// every subsequent Restore/RestoreReuse observes its copied bytes and
// differing pages into the MetricRestoreBytes / MetricRestorePages
// histograms. Totals are still accumulated locally and folded in by
// RecordStats, so attaching is optional (fault-campaign workers attach;
// one-shot runs usually do not). A nil registry detaches.
func (p *Platform) AttachRestoreObs(r *obs.Registry) {
	if r == nil {
		p.hRestoreBytes, p.hRestorePages = nil, nil
		return
	}
	p.hRestoreBytes = r.Histogram(MetricRestoreBytes, "RAM bytes copied per platform restore", restoreBytesBounds)
	p.hRestorePages = r.Histogram(MetricRestorePages, "dirty pages copied per platform restore", restorePagesBounds)
}

// noteRestore accounts one platform rewind.
func (p *Platform) noteRestore(nbytes, pages uint64) {
	p.restores++
	p.restoreBytes += nbytes
	p.restorePages += pages
	p.hRestoreBytes.Observe(float64(nbytes))
	p.hRestorePages.Observe(float64(pages))
}

// RestoreStats reports the platform's lifetime restore accounting.
type RestoreStats struct {
	Restores     uint64 // Restore + RestoreReuse calls
	RestoreBytes uint64 // RAM bytes actually copied across them
	RestorePages uint64 // dirty pages those bytes spanned
}

// RestoreStats returns a snapshot of the restore accounting.
func (p *Platform) RestoreStats() RestoreStats {
	return RestoreStats{
		Restores:     p.restores,
		RestoreBytes: p.restoreBytes,
		RestorePages: p.restorePages,
	}
}

// RecordStats folds the platform's engine and memory-bus counters into
// the registry. Counters are additive, so recording several platforms
// (fault-campaign workers) accumulates fleet totals; the jump-cache
// hit-rate gauge is recomputed from the accumulated counters on every
// call, so the last call leaves the overall rate. Call it once per
// platform, after the run. A nil registry is a no-op.
func (p *Platform) RecordStats(r *obs.Registry) {
	if r == nil {
		return
	}
	es := p.Machine.Stats()
	r.Counter(MetricTBsCompiled, "translated blocks compiled").Add(es.TBsCompiled)
	r.Counter(MetricTBsInvalidated, "translated blocks invalidated").Add(es.TBsInvalidated)
	r.Counter(MetricJumpCacheHits, "jump cache hits").Add(es.JumpCacheHits)
	r.Counter(MetricJumpCacheMisses, "jump cache misses").Add(es.JumpCacheMisses)
	r.Counter(MetricChainFollows, "block transitions via chain links").Add(es.ChainFollows)
	r.Counter(MetricChainsSevered, "chain links severed by invalidation").Add(es.ChainsSevered)
	r.Counter(MetricPoolHits, "blocks adopted from the shared translation pool").Add(es.PoolHits)
	r.Counter(MetricPoolMisses, "translations of pcs the shared pool does not cover").Add(es.PoolMisses)
	r.Counter(MetricOverlayCompiles, "private overlay compiles over mutated pool ranges").Add(es.OverlayCompiles)
	r.Counter(MetricTracesFormed, "superblock traces formed").Add(es.TracesFormed)
	r.Counter(MetricTraceRuns, "superblock trace executions retired in full").Add(es.TraceRuns)
	r.Counter(MetricTraceSideExits, "superblock trace side exits").Add(es.TraceSideExits)
	r.Counter(MetricTracesDropped, "superblock traces invalidated or banned").Add(es.TracesInvalidated)
	r.Counter(MetricTracePoolHits, "traces adopted from the shared pool's frozen tier").Add(es.TracePoolHits)
	r.Counter(MetricInsts, "instructions retired").Add(p.Machine.Hart.Instret)
	r.Counter(MetricCycles, "modelled cycles").Add(p.Machine.Hart.Cycle)

	r.Counter(MetricRestores, "platform rewinds (Restore + RestoreReuse)").Add(p.restores)
	r.Counter(MetricRestoreBytesTotal, "RAM bytes copied by platform rewinds").Add(p.restoreBytes)
	r.Counter(MetricRestorePagesTotal, "dirty pages copied by platform rewinds").Add(p.restorePages)

	bs := p.Machine.Bus.Stats()
	r.Counter(MetricBusFetches, "bus instruction fetches (16-bit parcels)").Add(bs.Fetches)
	r.Counter(MetricBusLoads, "bus data loads (direct-RAM fast path excluded)").Add(bs.Loads)
	r.Counter(MetricBusStores, "bus data stores (direct-RAM fast path excluded)").Add(bs.Stores)
	r.Counter(MetricBusFaults, "bus accesses that faulted").Add(bs.Faults)

	hits := r.Counter(MetricJumpCacheHits, "").Value()
	misses := r.Counter(MetricJumpCacheMisses, "").Value()
	if total := hits + misses; total > 0 {
		r.Gauge(MetricJumpCacheHitRate, "jump cache hits / lookups").
			Set(float64(hits) / float64(total))
	}
}
