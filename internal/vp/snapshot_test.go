package vp_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p, err := vp.New(vp.Config{Sensor: []int16{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	src := vp.Prelude + `
		li a1, SENSOR_SAMPLE
		lw s0, 0(a1)        # consume one sample
		li a2, UART_TX
		li a3, 'A'
		sw a3, 0(a2)        # transmit one byte
		la a4, buf
		li a5, 77
		sw a5, 0(a4)        # dirty RAM
		ebreak
buf:	.word 0
	`
	if _, err := p.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	base := p.Snapshot()

	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("first run: %v", stop)
	}
	if p.Output() != "A" || p.Machine.Hart.Reg(isa.S0) != 1 {
		t.Fatalf("first run state: out=%q s0=%d", p.Output(), p.Machine.Hart.Reg(isa.S0))
	}

	p.Restore(base)
	if p.Output() != "" {
		t.Error("UART output not rewound")
	}
	if p.Machine.Hart.Instret != 0 {
		t.Error("hart not rewound")
	}

	// Second run must be identical: same sensor sample (queue rewound),
	// same UART output, same RAM effects.
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("second run: %v", stop)
	}
	if p.Output() != "A" || p.Machine.Hart.Reg(isa.S0) != 1 {
		t.Errorf("second run diverged: out=%q s0=%d", p.Output(), p.Machine.Hart.Reg(isa.S0))
	}
}

func TestSnapshotRewindsRAM(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.LoadSource(`
		la a0, buf
		li a1, 1
		sw a1, 0(a0)
		ebreak
buf:	.word 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("run: %v", stop)
	}
	buf := prog.Symbols["buf"]
	data, err := p.Machine.Bus.ReadBytes(buf, 4)
	if err != nil || data[0] != 1 {
		t.Fatalf("store missing: %v % x", err, data)
	}
	p.Restore(snap)
	data, err = p.Machine.Bus.ReadBytes(buf, 4)
	if err != nil || data[0] != 0 {
		t.Errorf("RAM not rewound: % x", data)
	}
}

func TestSnapshotRewindsStopState(t *testing.T) {
	p, _ := vp.New(vp.Config{})
	p.LoadSource(vp.Prelude + `
		li a0, 3
		li t6, SYSCON_EXIT
		sw a0, 0(t6)
1:	j 1b
	`)
	snap := p.Snapshot()
	if stop := p.Run(1000); stop.Reason != emu.StopExit || stop.Code != 3 {
		t.Fatalf("first run: %v", stop)
	}
	p.Restore(snap)
	if stop := p.Run(1000); stop.Reason != emu.StopExit || stop.Code != 3 {
		t.Errorf("restored run: %v", stop)
	}
}
