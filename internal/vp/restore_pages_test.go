package vp_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/vp"
)

// scatterSrc writes one word near the bottom of RAM and one near the
// top (stack-relative): a watermark box spanning almost all of RAM but
// only two actually-dirty pages.
const scatterSrc = `
	la t0, buf
	li a1, 0x1234
	sw a1, 0(t0)
	sw a1, -16(sp)
	ebreak
buf:
	.word 0
`

func loadScatter(t *testing.T, disablePages bool) (*vp.Platform, *asm.Program) {
	t.Helper()
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Machine.DisableDirtyPages = disablePages
	prog, err := p.LoadSource(vp.Prelude + scatterSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p, prog
}

func runScatter(t *testing.T, p *vp.Platform) {
	t.Helper()
	if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("run: %+v", stop)
	}
}

// TestRestoreReuseScatteredStores: the differential rewind copies pages,
// not the watermark span — and still returns RAM to the exact post-load
// image.
func TestRestoreReuseScatteredStores(t *testing.T) {
	p, prog := loadScatter(t, false)
	base := p.Snapshot()
	pristine := append([]byte(nil), p.RAM.Bytes()...)

	runScatter(t, p)
	wlo, whi := p.Machine.StoreWatermark()
	span := uint64(whi - wlo)
	if span < 3<<20 {
		t.Fatalf("watermark span 0x%x, want ~4 MiB", span)
	}

	p.RestoreReuse(base, prog)
	st := p.RestoreStats()
	if st.Restores != 1 {
		t.Fatalf("restores = %d, want 1", st.Restores)
	}
	if st.RestoreBytes > 2*emu.DirtyPageSize {
		t.Errorf("restore copied %d bytes, want <= %d (two pages); watermark span was %d",
			st.RestoreBytes, 2*emu.DirtyPageSize, span)
	}
	if st.RestoreBytes*8 > span {
		t.Errorf("restore bytes %d not ≪ watermark span %d", st.RestoreBytes, span)
	}
	if !bytes.Equal(p.RAM.Bytes(), pristine) {
		t.Fatal("RAM differs from the post-load image after RestoreReuse")
	}

	// The recycled platform must replay identically.
	runScatter(t, p)
	if lo, hi := p.Machine.StoreWatermark(); lo != wlo || hi != whi {
		t.Errorf("replay watermark [0x%x,0x%x), first run [0x%x,0x%x)", lo, hi, wlo, whi)
	}
}

// TestRestoreReuseHostWriteLeak pins the host-write audit: a direct
// Bus.WriteBytes between mutants (a harness poking guest memory) must
// be folded into the dirty tracking by the bus write notification, so
// the next RestoreReuse erases it instead of leaking it into the next
// run's initial state.
func TestRestoreReuseHostWriteLeak(t *testing.T) {
	for _, tc := range []struct {
		name         string
		disablePages bool
	}{
		{"pages", false},
		{"watermark-fallback", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, prog := loadScatter(t, tc.disablePages)
			base := p.Snapshot()
			pristine := append([]byte(nil), p.RAM.Bytes()...)

			runScatter(t, p)
			p.RestoreReuse(base, prog)

			// Host write into the middle of RAM, far from anything the
			// guest touched — exactly where a watermark-only audit gap
			// would leak.
			mid := uint32(vp.RAMBase + 2<<20)
			if err := p.Machine.Bus.WriteBytes(mid, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
				t.Fatal(err)
			}
			p.RestoreReuse(base, prog)
			if !bytes.Equal(p.RAM.Bytes(), pristine) {
				t.Fatal("host WriteBytes between mutants leaked through RestoreReuse")
			}
		})
	}
}

// TestRestoreReuseWatermarkFallbackIdentical: the DisableDirtyPages arm
// (the E12 baseline) must restore the same state, just with more
// copying.
func TestRestoreReuseWatermarkFallbackIdentical(t *testing.T) {
	pages, progP := loadScatter(t, false)
	wm, progW := loadScatter(t, true)
	baseP, baseW := pages.Snapshot(), wm.Snapshot()

	runScatter(t, pages)
	runScatter(t, wm)
	pages.RestoreReuse(baseP, progP)
	wm.RestoreReuse(baseW, progW)

	if !bytes.Equal(pages.RAM.Bytes(), wm.RAM.Bytes()) {
		t.Fatal("pages and watermark-fallback restores disagree on RAM state")
	}
	sp, sw := pages.RestoreStats(), wm.RestoreStats()
	if sw.RestoreBytes < 5*sp.RestoreBytes {
		t.Errorf("fallback copied %d bytes vs pages %d; expected >= 5x more on scatter",
			sw.RestoreBytes, sp.RestoreBytes)
	}
}
