package vp

import "testing"

func TestDiffRange(t *testing.T) {
	const n = 3*4096 + 17 // spans several chunks plus a ragged tail
	mk := func() []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		return b
	}
	cases := []struct {
		name   string
		dirty  []int // byte offsets flipped in b
		lo, hi uint32
	}{
		{"equal", nil, 0, 0},
		{"first-byte", []int{0}, 0, 1},
		{"last-byte", []int{n - 1}, n - 1, n},
		{"middle", []int{5000}, 5000, 5001},
		{"chunk-boundary", []int{4095, 4096}, 4095, 4097},
		{"spread", []int{100, 9000, n - 2}, 100, n - 1},
		{"same-chunk-precise", []int{130, 140}, 130, 141},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b := mk(), mk()
			for _, off := range c.dirty {
				b[off] ^= 0xff
			}
			lo, hi := diffRange(a, b)
			if len(c.dirty) == 0 {
				if lo < hi {
					t.Fatalf("equal slices reported dirty [%d,%d)", lo, hi)
				}
				return
			}
			if lo != uint32(c.lo) || hi != uint32(c.hi) {
				t.Errorf("diffRange = [%d,%d), want [%d,%d)", lo, hi, c.lo, c.hi)
			}
		})
	}
}
