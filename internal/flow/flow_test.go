package flow_test

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/timing"
	"repro/internal/workloads"
)

func TestAnalyzeProducesAllArtifacts(t *testing.T) {
	w, _ := workloads.ByName("pid")
	a, err := flow.Analyze(w.Source, timing.EdgeSmall(), w.LoopBounds)
	if err != nil {
		t.Fatal(err)
	}
	if a.Program == nil || a.Graph == nil || a.Annotated == nil {
		t.Fatal("missing artifacts")
	}
	if a.Annotated.WCET == 0 || len(a.Annotated.Blocks) == 0 {
		t.Error("empty analysis")
	}
	if a.Annotated.Entry != a.Program.Entry {
		t.Error("entry mismatch between program and annotation")
	}
}

func TestAnalyzeReportsAssemblyErrors(t *testing.T) {
	if _, err := flow.Analyze("garbage op\n", timing.Unit(), nil); err == nil {
		t.Error("bad source should fail")
	}
}

func TestAnalyzeReportsMissingBounds(t *testing.T) {
	src := `
loop:	addi a0, a0, -1
	bnez a0, loop
	ebreak
`
	_, err := flow.Analyze(src, timing.Unit(), nil)
	if err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("err = %v", err)
	}
}

func TestRunQTAChecksChecksum(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	w.Expect++ // sabotage the expectation
	if _, err := flow.RunQTA(w, timing.Unit()); err == nil {
		t.Error("checksum mismatch should be reported")
	}
}

func TestRunWithoutPlugins(t *testing.T) {
	w, _ := workloads.ByName("sort")
	p, stop, err := flow.Run(w, timing.EdgeFast())
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != emu.StopExit || stop.Code != w.Expect {
		t.Errorf("stop = %v", stop)
	}
	if p.Machine.Hart.Cycle == 0 {
		t.Error("no cycles recorded")
	}
}
