package flow_test

import (
	"context"
	"testing"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/timing"
	"repro/internal/workloads"
)

// TestIRTSoundness is the qualification criterion for the interrupt
// demonstrators: the static IRT bound must dominate every latency the
// adversarial co-sim can provoke, and the perturbed runs must still
// produce the reference checksum.
func TestIRTSoundness(t *testing.T) {
	for _, w := range workloads.Interrupt() {
		for _, eng := range []emu.Engine{emu.EngineSwitch, emu.EngineSuperblock} {
			t.Run(w.Name+"/"+eng.String(), func(t *testing.T) {
				res, err := flow.RunIRT(context.Background(), w, timing.EdgeSmall(), flow.IRTConfig{
					Engine:  eng,
					Samples: 24,
					Seed:    1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Measured.Delivered == 0 {
					t.Fatal("no response observed: the campaign measured nothing")
				}
				if res.Measured.Mismatches != 0 {
					t.Errorf("%d perturbed runs broke the checksum", res.Measured.Mismatches)
				}
				for _, o := range res.Measured.Observations {
					if o.Latency > res.Static.Bound {
						t.Errorf("trigger @%d: observed %d > bound %d",
							o.Trigger, o.Latency, res.Static.Bound)
					}
				}
				if !res.Sound {
					t.Errorf("unsound: bound %d < max observed %d (trigger @%d)",
						res.Static.Bound, res.Measured.MaxLatency, res.Measured.MaxTrigger)
				}
				t.Logf("%s/%s: bound %d, observed max %d (ratio %.2f), %d delivered / %d skipped",
					w.Name, eng, res.Static.Bound, res.Measured.MaxLatency, res.Ratio,
					res.Measured.Delivered, res.Measured.Skipped)
			})
		}
	}
}

// TestIRTEngineAgreement pins the co-sim's observations as bit-identical
// across translated engines: delivery points and latencies may not
// depend on the translation strategy.
func TestIRTEngineAgreement(t *testing.T) {
	w, _ := workloads.ByName("dma_stream")
	var ref *flow.IRTResult
	for _, eng := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
		res, err := flow.RunIRT(context.Background(), w, timing.EdgeSmall(), flow.IRTConfig{
			Engine: eng, Samples: 16, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Measured.GoldenCycles != ref.Measured.GoldenCycles {
			t.Errorf("%s: golden cycles %d != %d", eng, res.Measured.GoldenCycles, ref.Measured.GoldenCycles)
		}
		if len(res.Measured.Observations) != len(ref.Measured.Observations) {
			t.Fatalf("%s: %d observations != %d", eng, len(res.Measured.Observations), len(ref.Measured.Observations))
		}
		for i, o := range res.Measured.Observations {
			if o != ref.Measured.Observations[i] {
				t.Errorf("%s: observation %d = %+v, want %+v", eng, i, o, ref.Measured.Observations[i])
			}
		}
	}
}
