package flow_test

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/timing"
	"repro/internal/workloads"
)

// Example runs the complete QTA flow — static WCET analysis plus the
// timing-annotated co-simulation — for the PID demonstrator and checks
// the fundamental ordering.
func Example() {
	w, _ := workloads.ByName("pid")
	res, err := flow.RunQTA(w, timing.EdgeSmall())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ordering holds:", res.StaticWCET >= res.QTATime && res.QTATime >= res.Dynamic)
	fmt.Println("sound:", res.Sound())
	// Output:
	// ordering holds: true
	// sound: true
}
