package flow_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/flow"
	"repro/internal/vp"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The fixture exercises every annotation kind: an inferred loop bound,
// a user-supplied loop bound, and a lint finding inside a block.
const annotateFixture = `
	li   a0, 0
iloop:	addi a0, a0, 1
	slti t0, a0, 4
	bnez t0, iloop
	lw   a1, -4(sp)
uloop:	addi a1, a1, -1
	add  zero, a0, a1
	bnez a1, uloop
	ebreak
`

func TestAnnotatedDOTGolden(t *testing.T) {
	prog, err := asm.AssembleAt(vp.Prelude+annotateFixture, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	got := flow.AnnotatedDOT(prog, g, map[string]int{"uloop": 9})

	golden := filepath.Join("testdata", "annotated.dot")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("annotated DOT drifted from golden file (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Structural checks that do not depend on exact addresses, so the
// intent survives a golden regeneration.
func TestAnnotatedDOTNotes(t *testing.T) {
	prog, err := asm.AssembleAt(vp.Prelude+annotateFixture, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	got := flow.AnnotatedDOT(prog, g, map[string]int{"uloop": 9})
	for _, frag := range []string{
		"loop head (depth 1): bound 4 (inferred)",
		"loop head (depth 1): bound 9 (user)",
		"lint info x0-write",
		"iloop:",
		"uloop:",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("annotated DOT missing %q:\n%s", frag, got)
		}
	}
	// Without the user bound the second loop is reported unbounded.
	got = flow.AnnotatedDOT(prog, g, nil)
	if !strings.Contains(got, "no bound") {
		t.Errorf("unbounded loop not marked:\n%s", got)
	}
	if !strings.Contains(got, "lint possible unbounded-loop") {
		t.Errorf("unbounded-loop finding not attached:\n%s", got)
	}
}
