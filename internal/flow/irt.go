package flow

// The IRT qualification flow: static interrupt-response-time bound
// (wcet.AnalyzeIRT) cross-checked against the adversarial co-sim
// (qta.MeasureIRT) for one interrupt-driven workload. The s4e-qta -irq
// mode, the serve "irt" job and the E13 experiment are wrappers over
// RunIRT.

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// IRTResult pairs the static bound with the measured campaign.
type IRTResult struct {
	Name     string              `json:"name"`
	Static   *wcet.IRTReport     `json:"static"`
	Measured *qta.IRTMeasurement `json:"measured"`
	// Sound reports whether the bound dominated every observation.
	Sound bool `json:"sound"`
	// Ratio is Bound / MaxLatency, the pessimism factor (0 when no
	// response was observed).
	Ratio float64 `json:"ratio"`
}

// IRTConfig parametrizes an IRT qualification run.
type IRTConfig struct {
	Engine  emu.Engine // execution engine for the co-sim
	Samples int        // adversarial trigger points (default 32)
	Seed    uint64     // trigger-jitter seed
}

// RunIRT qualifies one interrupt-driven workload: assemble, derive the
// static IRT bound from the handler and main-flow CFGs, then attack the
// program with adversarially timed interrupts and compare.
func RunIRT(ctx context.Context, w workloads.Workload, prof *timing.Profile, conf IRTConfig) (*IRTResult, error) {
	if w.Handler == "" {
		return nil, fmt.Errorf("flow: %s: not an interrupt workload (no handler symbol)", w.Name)
	}
	if conf.Samples == 0 {
		conf.Samples = 32
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", w.Name, err)
	}
	hentry, ok := prog.Symbols[w.Handler]
	if !ok {
		return nil, fmt.Errorf("flow: %s: handler symbol %q not found", w.Name, w.Handler)
	}
	rep, err := wcet.AnalyzeIRT(prog.Bytes, prog.Org, wcet.IRTConfig{
		Profile:      prof,
		HandlerEntry: hentry,
		Entry:        prog.Entry,
		Bounds:       w.LoopBounds,
		Symbols:      prog.Symbols,
	})
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", w.Name, err)
	}

	build := func() (*vp.Platform, error) {
		p, err := vp.New(vp.Config{
			Profile: prof,
			Sensor:  w.Sensor,
			Stream:  w.Stream,
			UARTIn:  w.UARTIn,
		})
		if err != nil {
			return nil, err
		}
		if err := p.LoadProgram(prog); err != nil {
			return nil, err
		}
		p.Machine.Engine = conf.Engine
		return p, nil
	}
	meas, err := qta.MeasureIRT(ctx, build, w.Budget, w.Expect, conf.Samples, conf.Seed)
	if err != nil {
		return nil, fmt.Errorf("flow: %s: %w", w.Name, err)
	}

	res := &IRTResult{Name: w.Name, Static: rep, Measured: meas}
	res.Sound = rep.Bound >= meas.MaxLatency
	if meas.MaxLatency > 0 {
		res.Ratio = float64(rep.Bound) / float64(meas.MaxLatency)
	}
	return res, nil
}
