// Package flow wires the ecosystem's tool chain end to end: assemble a
// program, reconstruct its CFG, run the static WCET analysis, execute it
// on the virtual platform with the QTA plugin attached, and collect the
// three-way timing comparison. The command-line tools, the examples and
// the experiment harness are thin wrappers over this package.
package flow

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/plugin"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// Analysis is the static half of the flow.
type Analysis struct {
	Program   *asm.Program
	Graph     *cfg.Graph
	Annotated *wcet.Annotated
}

// Analyze assembles source (with the platform prelude) and runs CFG
// reconstruction plus WCET analysis under the given profile and loop
// bounds.
func Analyze(src string, prof *timing.Profile, bounds map[string]int) (*Analysis, error) {
	return AnalyzeOpt(src, prof, bounds, false)
}

// AnalyzeOpt is Analyze with automatic loop-bound inference selectable.
func AnalyzeOpt(src string, prof *timing.Profile, bounds map[string]int, infer bool) (*Analysis, error) {
	return AnalyzeFull(src, prof, bounds, infer, asm.Options{})
}

// AnalyzeFull additionally exposes the assembler options, so the timing
// flow can run over RVC-compressed builds.
func AnalyzeFull(src string, prof *timing.Profile, bounds map[string]int, infer bool, asmOpt asm.Options) (*Analysis, error) {
	prog, err := asm.AssembleAtOpt(vp.Prelude+src, vp.RAMBase, asmOpt)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		return nil, err
	}
	an, err := wcet.Analyze(g, wcet.Config{
		Profile:     prof,
		Bounds:      bounds,
		Symbols:     prog.Symbols,
		InferBounds: infer,
	})
	if err != nil {
		return nil, err
	}
	return &Analysis{Program: prog, Graph: g, Annotated: an}, nil
}

// RunQTACompressed is RunQTA over the RVC-compressed build of the
// workload: the whole timing flow on mixed 16/32-bit code.
func RunQTACompressed(w workloads.Workload, prof *timing.Profile) (qta.Result, error) {
	a, err := AnalyzeFull(w.Source, prof, w.LoopBounds, false, asm.Options{Compress: true})
	if err != nil {
		return qta.Result{}, fmt.Errorf("flow: %s: %w", w.Name, err)
	}
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor})
	if err != nil {
		return qta.Result{}, err
	}
	q := qta.New(a.Annotated)
	if err := p.Machine.Hooks.Register(q); err != nil {
		return qta.Result{}, err
	}
	if err := p.LoadProgram(a.Program); err != nil {
		return qta.Result{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason != emu.StopExit {
		return qta.Result{}, fmt.Errorf("flow: %s stopped with %v", w.Name, stop)
	}
	if stop.Code != w.Expect {
		return qta.Result{}, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	return q.NewResult(w.Name+"(rvc)", p.Machine.Hart.Cycle, p.Machine.Hart.Instret), nil
}

// RunQTA performs the full QTA flow for one workload: static analysis,
// then co-simulation with the timing-annotated CFG on the edge platform.
func RunQTA(w workloads.Workload, prof *timing.Profile) (qta.Result, error) {
	a, err := Analyze(w.Source, prof, w.LoopBounds)
	if err != nil {
		return qta.Result{}, fmt.Errorf("flow: %s: %w", w.Name, err)
	}
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor})
	if err != nil {
		return qta.Result{}, err
	}
	q := qta.New(a.Annotated)
	if err := p.Machine.Hooks.Register(q); err != nil {
		return qta.Result{}, err
	}
	if err := p.LoadProgram(a.Program); err != nil {
		return qta.Result{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason != emu.StopExit {
		return qta.Result{}, fmt.Errorf("flow: %s stopped with %v", w.Name, stop)
	}
	if stop.Code != w.Expect {
		return qta.Result{}, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	res := q.NewResult(w.Name, p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	return res, nil
}

// Run executes a workload without instrumentation and returns the
// platform for inspection.
func Run(w workloads.Workload, prof *timing.Profile) (*vp.Platform, emu.StopInfo, error) {
	return RunWith(w, prof)
}

// RunWith executes a workload with the given plugins attached and
// verifies the checksum.
func RunWith(w workloads.Workload, prof *timing.Profile, plugins ...plugin.Plugin) (*vp.Platform, emu.StopInfo, error) {
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor})
	if err != nil {
		return nil, emu.StopInfo{}, err
	}
	for _, pl := range plugins {
		if err := p.Machine.Hooks.Register(pl); err != nil {
			return nil, emu.StopInfo{}, err
		}
	}
	if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
		return nil, emu.StopInfo{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason == emu.StopExit && stop.Code != w.Expect {
		return p, stop, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	return p, stop, nil
}
