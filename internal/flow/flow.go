// Package flow wires the ecosystem's tool chain end to end: assemble a
// program, reconstruct its CFG, run the static WCET analysis, execute it
// on the virtual platform with the QTA plugin attached, and collect the
// three-way timing comparison. The command-line tools, the examples and
// the experiment harness are thin wrappers over this package.
package flow

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/dev"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/lint"
	"repro/internal/plugin"
	"repro/internal/qta"
	"repro/internal/subset"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// Analysis is the static half of the flow.
type Analysis struct {
	Program   *asm.Program
	Graph     *cfg.Graph
	Annotated *wcet.Annotated
	Lint      []lint.Finding
}

// PlatformRegions is the virtual platform's data-access map, as lint
// regions.
func PlatformRegions() []lint.Region {
	return []lint.Region{
		{Base: vp.SysConBase, Size: 0x1000, Name: "syscon"},
		{Base: vp.CLINTBase, Size: dev.CLINTSize, Name: "clint"},
		{Base: vp.UARTBase, Size: 0x1000, Name: "uart"},
		{Base: vp.SensorBase, Size: 0x1000, Name: "sensor"},
		{Base: vp.RAMBase, Size: vp.DefaultRAMSize, Name: "ram"},
	}
}

// LintConfig builds the platform lint configuration for an assembled
// program: the VP memory map, the program's own image as the code range,
// and the loader contract (sp points at the top of RAM on entry).
func LintConfig(prog *asm.Program, bounds map[string]int) lint.Config {
	return lint.Config{
		Regions:   PlatformRegions(),
		CodeStart: prog.Org,
		CodeEnd:   prog.Org + uint32(len(prog.Bytes)),
		Bounds:    bounds,
		Symbols:   prog.Symbols,
		EntryRegs: map[isa.Reg]dataflow.Interval{
			isa.SP: dataflow.Const(int64(vp.RAMBase) + vp.DefaultRAMSize),
		},
		EntryInit: []isa.Reg{isa.SP},
	}
}

// LintProgram runs the linter over an assembled program under the
// platform configuration. The CFG is closed by the subset analyzer
// first, so indirect jumps through proven-constant targets resolve and
// no longer demote unreachable-code findings to Possible.
func LintProgram(prog *asm.Program, bounds map[string]int) ([]lint.Finding, error) {
	g, _, err := subset.Resolve(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		return nil, err
	}
	return lint.Graph(g, prog.Lines, LintConfig(prog, bounds)), nil
}

// AnnotatedDOT renders a program's CFG in Graphviz format with static-
// analysis notes per block: loop heads with their depth and bound
// (user-supplied or inferred by the interval analysis), and the lint
// findings that land in the block. It needs no timing profile and does
// not fail on unbounded loops, so it works on programs the WCET
// analysis would reject.
func AnnotatedDOT(prog *asm.Program, g *cfg.Graph, bounds map[string]int) string {
	notes := map[uint32][]string{}

	boundByAddr := map[uint32]int{}
	for label, b := range bounds {
		if addr, ok := prog.Symbols[label]; ok {
			boundByAddr[addr] = b
		}
	}
	// Walk the entry function and every statically known callee.
	funcs := []uint32{g.Entry}
	seen := map[uint32]bool{g.Entry: true}
	for i := 0; i < len(funcs); i++ {
		for _, c := range g.Callees(funcs[i]) {
			if !seen[c] {
				seen[c] = true
				funcs = append(funcs, c)
			}
		}
	}
	for _, entry := range funcs {
		loops, err := g.NaturalLoops(entry)
		if err != nil {
			continue
		}
		inferred := dataflow.InferLoopBounds(g, entry, loops)
		for _, l := range loops {
			note := fmt.Sprintf("loop head (depth %d): ", l.Depth)
			switch {
			case boundByAddr[l.Head] > 0:
				note += fmt.Sprintf("bound %d (user)", boundByAddr[l.Head])
			case inferred[l.Head] > 0:
				note += fmt.Sprintf("bound %d (inferred)", inferred[l.Head])
			default:
				note += "no bound"
			}
			notes[l.Head] = append(notes[l.Head], note)
		}
	}
	for _, f := range lint.Graph(g, prog.Lines, LintConfig(prog, bounds)) {
		blk, ok := g.BlockAt(f.Addr)
		if !ok {
			continue // unreachable code has no block to hang the note on
		}
		notes[blk.Start] = append(notes[blk.Start],
			fmt.Sprintf("lint %s %s: %s", f.Severity, f.Check, f.Msg))
	}

	symByAddr := map[uint32]string{}
	for n, addr := range prog.Symbols {
		symByAddr[addr] = n
	}
	return g.DOTAnnotated(symByAddr, notes)
}

// Analyze assembles source (with the platform prelude) and runs CFG
// reconstruction plus WCET analysis under the given profile and loop
// bounds.
func Analyze(src string, prof *timing.Profile, bounds map[string]int) (*Analysis, error) {
	return AnalyzeOpt(src, prof, bounds, false)
}

// AnalyzeOpt is Analyze with automatic loop-bound inference selectable.
func AnalyzeOpt(src string, prof *timing.Profile, bounds map[string]int, infer bool) (*Analysis, error) {
	return AnalyzeFull(src, prof, bounds, infer, asm.Options{})
}

// AnalyzeFull additionally exposes the assembler options, so the timing
// flow can run over RVC-compressed builds.
func AnalyzeFull(src string, prof *timing.Profile, bounds map[string]int, infer bool, asmOpt asm.Options) (*Analysis, error) {
	prog, err := asm.AssembleAtOpt(vp.Prelude+src, vp.RAMBase, asmOpt)
	if err != nil {
		return nil, err
	}
	g, _, err := subset.Resolve(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		return nil, err
	}
	an, err := wcet.Analyze(g, wcet.Config{
		Profile:     prof,
		Bounds:      bounds,
		Symbols:     prog.Symbols,
		InferBounds: infer,
	})
	if err != nil {
		return nil, err
	}
	findings := lint.Graph(g, prog.Lines, LintConfig(prog, bounds))
	return &Analysis{Program: prog, Graph: g, Annotated: an, Lint: findings}, nil
}

// RunQTACompressed is RunQTA over the RVC-compressed build of the
// workload: the whole timing flow on mixed 16/32-bit code.
func RunQTACompressed(w workloads.Workload, prof *timing.Profile) (qta.Result, error) {
	a, err := AnalyzeFull(w.Source, prof, w.LoopBounds, false, asm.Options{Compress: true})
	if err != nil {
		return qta.Result{}, fmt.Errorf("flow: %s: %w", w.Name, err)
	}
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn})
	if err != nil {
		return qta.Result{}, err
	}
	q := qta.New(a.Annotated)
	if err := p.Machine.Hooks.Register(q); err != nil {
		return qta.Result{}, err
	}
	if err := p.LoadProgram(a.Program); err != nil {
		return qta.Result{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason != emu.StopExit {
		return qta.Result{}, fmt.Errorf("flow: %s stopped with %v", w.Name, stop)
	}
	if stop.Code != w.Expect {
		return qta.Result{}, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	return q.NewResult(w.Name+"(rvc)", p.Machine.Hart.Cycle, p.Machine.Hart.Instret), nil
}

// RunQTA performs the full QTA flow for one workload: static analysis,
// then co-simulation with the timing-annotated CFG on the edge platform.
func RunQTA(w workloads.Workload, prof *timing.Profile) (qta.Result, error) {
	a, err := Analyze(w.Source, prof, w.LoopBounds)
	if err != nil {
		return qta.Result{}, fmt.Errorf("flow: %s: %w", w.Name, err)
	}
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn})
	if err != nil {
		return qta.Result{}, err
	}
	q := qta.New(a.Annotated)
	if err := p.Machine.Hooks.Register(q); err != nil {
		return qta.Result{}, err
	}
	if err := p.LoadProgram(a.Program); err != nil {
		return qta.Result{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason != emu.StopExit {
		return qta.Result{}, fmt.Errorf("flow: %s stopped with %v", w.Name, stop)
	}
	if stop.Code != w.Expect {
		return qta.Result{}, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	res := q.NewResult(w.Name, p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	return res, nil
}

// Run executes a workload without instrumentation and returns the
// platform for inspection.
func Run(w workloads.Workload, prof *timing.Profile) (*vp.Platform, emu.StopInfo, error) {
	return RunWith(w, prof)
}

// RunWith executes a workload with the given plugins attached and
// verifies the checksum.
func RunWith(w workloads.Workload, prof *timing.Profile, plugins ...plugin.Plugin) (*vp.Platform, emu.StopInfo, error) {
	p, err := vp.New(vp.Config{Profile: prof, Sensor: w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn})
	if err != nil {
		return nil, emu.StopInfo{}, err
	}
	for _, pl := range plugins {
		if err := p.Machine.Hooks.Register(pl); err != nil {
			return nil, emu.StopInfo{}, err
		}
	}
	if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
		return nil, emu.StopInfo{}, err
	}
	stop := p.Run(w.Budget)
	if stop.Reason == emu.StopExit && stop.Code != w.Expect {
		return p, stop, fmt.Errorf("flow: %s produced 0x%08x, want 0x%08x",
			w.Name, stop.Code, w.Expect)
	}
	return p, stop, nil
}
