// Package isa defines the RISC-V instruction-set metadata shared by the
// whole ecosystem: register files, CSR catalog, instruction opcodes and
// their classification, and extension sets.
//
// The package is deliberately free of behaviour: it is the single source of
// truth consulted by the decoder, encoder, assembler, emulator, coverage
// analyzer and fault injector, mirroring the role the formal instruction
// list plays for QEMU's DecodeTree generator.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Reg is an integer register index (x0..x31).
type Reg uint8

// ABI register aliases for the RV32 integer register file.
const (
	Zero Reg = iota // x0: hardwired zero
	RA              // x1: return address
	SP              // x2: stack pointer
	GP              // x3: global pointer
	TP              // x4: thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 (fp)
	S1              // x9
	A0              // x10
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31
)

// NumRegs is the size of the integer and floating-point register files.
const NumRegs = 32

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "a0").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x?%d", uint8(r))
}

// Valid reports whether r is a legal register index.
func (r Reg) Valid() bool { return r < NumRegs }

// regAliases maps every accepted spelling to its register index.
var regAliases = func() map[string]Reg {
	m := make(map[string]Reg, 3*NumRegs)
	for i := 0; i < NumRegs; i++ {
		m[regNames[i]] = Reg(i)
		m["x"+strconv.Itoa(i)] = Reg(i)
	}
	m["fp"] = S0 // frame pointer alias
	return m
}()

// ParseReg parses an integer register name in either ABI ("a0") or
// numeric ("x10") form.
func ParseReg(s string) (Reg, error) {
	if r, ok := regAliases[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("isa: unknown register %q", s)
}

// FReg is a floating-point register index (f0..f31).
type FReg uint8

var fregNames = [NumRegs]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// String returns the ABI name of the FP register (e.g. "fa0").
func (r FReg) String() string {
	if int(r) < len(fregNames) {
		return fregNames[r]
	}
	return fmt.Sprintf("f?%d", uint8(r))
}

// Valid reports whether r is a legal FP register index.
func (r FReg) Valid() bool { return r < NumRegs }

var fregAliases = func() map[string]FReg {
	m := make(map[string]FReg, 2*NumRegs)
	for i := 0; i < NumRegs; i++ {
		m[fregNames[i]] = FReg(i)
		m["f"+strconv.Itoa(i)] = FReg(i)
	}
	return m
}()

// ParseFReg parses a floating-point register name in either ABI ("fa0")
// or numeric ("f10") form.
func ParseFReg(s string) (FReg, error) {
	if r, ok := fregAliases[strings.ToLower(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("isa: unknown fp register %q", s)
}
