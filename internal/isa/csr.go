package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CSR is a control-and-status-register address (12 bits).
type CSR uint16

// Machine-mode and unprivileged CSR addresses implemented by the platform.
const (
	// Unprivileged floating-point CSRs.
	CSRFflags CSR = 0x001
	CSRFrm    CSR = 0x002
	CSRFcsr   CSR = 0x003

	// Unprivileged counters.
	CSRCycle    CSR = 0xC00
	CSRTime     CSR = 0xC01
	CSRInstret  CSR = 0xC02
	CSRCycleH   CSR = 0xC80
	CSRTimeH    CSR = 0xC81
	CSRInstretH CSR = 0xC82

	// Machine information registers.
	CSRMvendorid CSR = 0xF11
	CSRMarchid   CSR = 0xF12
	CSRMimpid    CSR = 0xF13
	CSRMhartid   CSR = 0xF14

	// Machine trap setup.
	CSRMstatus    CSR = 0x300
	CSRMisa       CSR = 0x301
	CSRMedeleg    CSR = 0x302
	CSRMideleg    CSR = 0x303
	CSRMie        CSR = 0x304
	CSRMtvec      CSR = 0x305
	CSRMcounteren CSR = 0x306

	// Machine trap handling.
	CSRMscratch CSR = 0x340
	CSRMepc     CSR = 0x341
	CSRMcause   CSR = 0x342
	CSRMtval    CSR = 0x343
	CSRMip      CSR = 0x344

	// Machine counters.
	CSRMcycle    CSR = 0xB00
	CSRMinstret  CSR = 0xB02
	CSRMcycleH   CSR = 0xB80
	CSRMinstretH CSR = 0xB82
)

// csrNames is the catalog of implemented CSRs.
var csrNames = map[CSR]string{
	CSRFflags:     "fflags",
	CSRFrm:        "frm",
	CSRFcsr:       "fcsr",
	CSRCycle:      "cycle",
	CSRTime:       "time",
	CSRInstret:    "instret",
	CSRCycleH:     "cycleh",
	CSRTimeH:      "timeh",
	CSRInstretH:   "instreth",
	CSRMvendorid:  "mvendorid",
	CSRMarchid:    "marchid",
	CSRMimpid:     "mimpid",
	CSRMhartid:    "mhartid",
	CSRMstatus:    "mstatus",
	CSRMisa:       "misa",
	CSRMedeleg:    "medeleg",
	CSRMideleg:    "mideleg",
	CSRMie:        "mie",
	CSRMtvec:      "mtvec",
	CSRMcounteren: "mcounteren",
	CSRMscratch:   "mscratch",
	CSRMepc:       "mepc",
	CSRMcause:     "mcause",
	CSRMtval:      "mtval",
	CSRMip:        "mip",
	CSRMcycle:     "mcycle",
	CSRMinstret:   "minstret",
	CSRMcycleH:    "mcycleh",
	CSRMinstretH:  "minstreth",
}

var csrByName = func() map[string]CSR {
	m := make(map[string]CSR, len(csrNames))
	for a, n := range csrNames {
		m[n] = a
	}
	return m
}()

// String returns the architectural name of the CSR, or a hex literal for
// addresses outside the implemented catalog.
func (c CSR) String() string {
	if n, ok := csrNames[c]; ok {
		return n
	}
	return fmt.Sprintf("0x%03x", uint16(c))
}

// Known reports whether the CSR address is in the implemented catalog.
func (c CSR) Known() bool {
	_, ok := csrNames[c]
	return ok
}

// ReadOnly reports whether the CSR address is architecturally read-only
// (top two bits of the address are 11).
func (c CSR) ReadOnly() bool { return c>>10 == 3 }

// ParseCSR parses a CSR name ("mstatus") or numeric address ("0x300").
func ParseCSR(s string) (CSR, error) {
	if a, ok := csrByName[strings.ToLower(s)]; ok {
		return a, nil
	}
	if v, err := strconv.ParseUint(strings.ToLower(s), 0, 32); err == nil && v < 1<<12 {
		return CSR(v), nil
	}
	return 0, fmt.Errorf("isa: unknown CSR %q", s)
}

// CSRs returns the implemented CSR addresses in ascending order. The
// coverage analyzer uses this as the CSR coverage universe.
func CSRs() []CSR {
	out := make([]CSR, 0, len(csrNames))
	for a := range csrNames {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Interrupt cause codes (mcause with the interrupt bit set).
const (
	IntMachineSoftware = 3
	IntMachineTimer    = 7
	IntMachineExternal = 11
)

// Exception cause codes (mcause with the interrupt bit clear).
const (
	ExcInstAddrMisaligned  = 0
	ExcInstAccessFault     = 1
	ExcIllegalInst         = 2
	ExcBreakpoint          = 3
	ExcLoadAddrMisaligned  = 4
	ExcLoadAccessFault     = 5
	ExcStoreAddrMisaligned = 6
	ExcStoreAccessFault    = 7
	ExcEcallU              = 8
	ExcEcallM              = 11
)

// ExcName returns a human-readable name for an exception cause code.
func ExcName(code uint32) string {
	switch code {
	case ExcInstAddrMisaligned:
		return "instruction address misaligned"
	case ExcInstAccessFault:
		return "instruction access fault"
	case ExcIllegalInst:
		return "illegal instruction"
	case ExcBreakpoint:
		return "breakpoint"
	case ExcLoadAddrMisaligned:
		return "load address misaligned"
	case ExcLoadAccessFault:
		return "load access fault"
	case ExcStoreAddrMisaligned:
		return "store address misaligned"
	case ExcStoreAccessFault:
		return "store access fault"
	case ExcEcallU:
		return "environment call from U-mode"
	case ExcEcallM:
		return "environment call from M-mode"
	default:
		return fmt.Sprintf("exception %d", code)
	}
}

// mstatus bit positions used by the M-mode trap machinery.
const (
	MstatusMIE  = 1 << 3  // machine interrupt enable
	MstatusMPIE = 1 << 7  // previous MIE
	MstatusMPP  = 3 << 11 // previous privilege mode
)
