package isa

import (
	"math/bits"
	"testing"
)

func TestRegNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := Reg(i)
		got, err := ParseReg(r.String())
		if err != nil {
			t.Fatalf("ParseReg(%q): %v", r.String(), err)
		}
		if got != r {
			t.Errorf("ParseReg(%q) = %v, want %v", r.String(), got, r)
		}
	}
}

func TestRegNumericAliases(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		got, err := ParseReg("x" + itoa(i))
		if err != nil || got != Reg(i) {
			t.Errorf("ParseReg(x%d) = %v, %v", i, got, err)
		}
	}
	if r, err := ParseReg("fp"); err != nil || r != S0 {
		t.Errorf("fp alias: got %v, %v", r, err)
	}
	if _, err := ParseReg("x32"); err == nil {
		t.Error("ParseReg(x32) should fail")
	}
	if _, err := ParseReg("bogus"); err == nil {
		t.Error("ParseReg(bogus) should fail")
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestFRegRoundTrip(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := FReg(i)
		got, err := ParseFReg(r.String())
		if err != nil || got != r {
			t.Errorf("ParseFReg(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseFReg("f32"); err == nil {
		t.Error("ParseFReg(f32) should fail")
	}
}

func TestCSRCatalog(t *testing.T) {
	for _, c := range CSRs() {
		if !c.Known() {
			t.Errorf("CSR %v from catalog not Known", c)
		}
		got, err := ParseCSR(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCSR(%q) = %v, %v", c.String(), got, err)
		}
	}
}

func TestCSRParseNumeric(t *testing.T) {
	if c, err := ParseCSR("0x300"); err != nil || c != CSRMstatus {
		t.Errorf("ParseCSR(0x300) = %v, %v", c, err)
	}
	if c, err := ParseCSR("768"); err != nil || c != CSRMstatus {
		t.Errorf("ParseCSR(768) = %v, %v", c, err)
	}
	if _, err := ParseCSR("0x1000"); err == nil {
		t.Error("ParseCSR(0x1000) should fail (12-bit space)")
	}
}

func TestCSRReadOnly(t *testing.T) {
	roCases := []CSR{CSRMvendorid, CSRMhartid, CSRCycle, CSRInstret}
	for _, c := range roCases {
		if !c.ReadOnly() {
			t.Errorf("%v should be read-only", c)
		}
	}
	rwCases := []CSR{CSRMstatus, CSRMepc, CSRMcycle, CSRFcsr}
	for _, c := range rwCases {
		if c.ReadOnly() {
			t.Errorf("%v should be read-write", c)
		}
	}
}

func TestOpMetadataComplete(t *testing.T) {
	for _, o := range Ops() {
		if o.String() == "" || o.String() == "invalid" {
			t.Errorf("op %d has no mnemonic", o)
		}
		if o.Class() == ClassNone {
			t.Errorf("%v has no class", o)
		}
		if ByName(o.String()) != o {
			t.Errorf("ByName(%q) = %v, want %v", o.String(), ByName(o.String()), o)
		}
	}
}

func TestOpInvalid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be Valid")
	}
	if ByName("nonexistent") != OpInvalid {
		t.Error("ByName of unknown mnemonic must return OpInvalid")
	}
}

func TestExtSets(t *testing.T) {
	if !RV32IM.Has(ExtM) || RV32I.Has(ExtM) {
		t.Error("RV32IM/RV32I M-extension membership wrong")
	}
	if !RV32Full.Has(ExtXbmi) || !RV32Full.Has(ExtC) || !RV32Full.Has(ExtF) {
		t.Error("RV32Full should include F, Xbmi and C")
	}
	if !OpMUL.In(RV32IM) || OpMUL.In(RV32I) {
		t.Error("mul availability wrong")
	}
	if !OpCPOP.In(RV32IMB) || OpCPOP.In(RV32IM) {
		t.Error("cpop availability wrong")
	}
}

func TestOpsInFiltersByExtension(t *testing.T) {
	for _, o := range OpsIn(RV32I) {
		switch o.Extension() {
		case ExtI, ExtZicsr, ExtZifencei, ExtPriv:
		default:
			t.Errorf("OpsIn(RV32I) returned %v from ext %v", o, o.Extension())
		}
	}
	if len(OpsIn(RV32Full)) != len(Ops()) {
		t.Errorf("OpsIn(RV32Full) = %d ops, want all %d", len(OpsIn(RV32Full)), len(Ops()))
	}
}

func TestControlFlowClassification(t *testing.T) {
	cf := []Op{OpJAL, OpJALR, OpBEQ, OpBGEU, OpECALL, OpEBREAK, OpMRET,
		OpCJ, OpCJR, OpCJAL, OpCJALR, OpCBEQZ, OpCBNEZ, OpCEBREAK}
	for _, o := range cf {
		if !o.IsControlFlow() {
			t.Errorf("%v should be control flow", o)
		}
	}
	nonCF := []Op{OpADD, OpLW, OpSW, OpCSRRW, OpMUL, OpFADDS, OpCPOP, OpCADDI, OpWFI}
	for _, o := range nonCF {
		if o.IsControlFlow() {
			t.Errorf("%v should not be control flow", o)
		}
	}
}

// Patterns must be consistent: match bits inside mask, opcode space
// disjoint (no two patterns can claim the same word).
func TestPatternsWellFormed(t *testing.T) {
	ps := Patterns()
	for _, p := range ps {
		if p.Match&^p.Mask != 0 {
			t.Errorf("%v: match 0x%08x has bits outside mask 0x%08x", p.Op, p.Match, p.Mask)
		}
		if p.Mask&3 != 3 || p.Match&3 != 3 {
			t.Errorf("%v: 32-bit encodings must have low bits 11", p.Op)
		}
	}
	for i, a := range ps {
		for _, b := range ps[i+1:] {
			common := a.Mask & b.Mask
			if a.Match&common == b.Match&common {
				// A word matching both would be ambiguous unless one mask
				// strictly refines the other; refinement is resolved by
				// popcount ordering in the decoder, but then the broader
				// pattern must differ somewhere the narrower one fixes.
				if a.Mask == b.Mask {
					t.Errorf("patterns %v and %v overlap ambiguously", a.Op, b.Op)
				}
			}
		}
	}
}

func TestPatternForAllNonCompressedOps(t *testing.T) {
	for _, o := range Ops() {
		_, ok := PatternFor(o)
		if o.Extension() == ExtC {
			if ok {
				t.Errorf("compressed op %v should have no 32-bit pattern", o)
			}
			continue
		}
		if !ok {
			t.Errorf("op %v missing from pattern table", o)
		}
	}
}

func TestMaskSpecificityAssumption(t *testing.T) {
	// The decoder resolves overlapping patterns by trying higher-popcount
	// masks first. Verify that whenever two patterns can match the same
	// word, their masks differ in popcount (so ordering disambiguates).
	ps := Patterns()
	for i, a := range ps {
		for _, b := range ps[i+1:] {
			common := a.Mask & b.Mask
			if a.Match&common != b.Match&common {
				continue // can never both match
			}
			if bits.OnesCount32(a.Mask) == bits.OnesCount32(b.Mask) {
				t.Errorf("patterns %v and %v overlap with equal mask popcount", a.Op, b.Op)
			}
		}
	}
}

func TestUsesFPRegs(t *testing.T) {
	cases := []struct {
		op           Op
		rd, rs1, rs2 bool
	}{
		{OpFLW, true, false, false},
		{OpFSW, false, false, true},
		{OpFADDS, true, true, true},
		{OpFCVTWS, false, true, false},
		{OpFCVTSW, true, false, false},
		{OpFEQS, false, true, true},
		{OpADD, false, false, false},
		{OpLW, false, false, false},
	}
	for _, c := range cases {
		rd, rs1, rs2 := UsesFPRegs(c.op)
		if rd != c.rd || rs1 != c.rs1 || rs2 != c.rs2 {
			t.Errorf("UsesFPRegs(%v) = %v,%v,%v want %v,%v,%v",
				c.op, rd, rs1, rs2, c.rd, c.rs1, c.rs2)
		}
	}
}

func TestExtSetString(t *testing.T) {
	if got := RV32IM.String(); got != "RV32IM_Zicsr_Zifencei" {
		t.Errorf("RV32IM.String() = %q", got)
	}
	if got := ExtSet(0).With(ExtI).String(); got != "RV32I" {
		t.Errorf("RV32I-only String() = %q", got)
	}
}

func TestExcNames(t *testing.T) {
	for code := uint32(0); code < 12; code++ {
		if ExcName(code) == "" {
			t.Errorf("ExcName(%d) empty", code)
		}
	}
	if ExcName(99) != "exception 99" {
		t.Errorf("ExcName(99) = %q", ExcName(99))
	}
}
