package isa

import "testing"

func TestOpSetBasics(t *testing.T) {
	var s OpSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero OpSet not empty")
	}
	if !s.Allows(OpMUL) {
		t.Error("empty set must allow everything (unrestricted)")
	}
	s.Add(OpADDI)
	s.Add(OpMUL)
	if s.Empty() || s.Len() != 2 {
		t.Errorf("len = %d, want 2", s.Len())
	}
	if !s.Has(OpADDI) || !s.Has(OpMUL) || s.Has(OpDIV) {
		t.Error("membership wrong after Add")
	}
	if s.Allows(OpDIV) {
		t.Error("non-empty set must reject ops outside it")
	}
	u := s.Union(OpSetOf(OpDIV))
	if !u.Has(OpDIV) || !u.Has(OpADDI) || u.Len() != 3 {
		t.Errorf("union wrong: %v", u.Ops())
	}
	if ext := s.Extensions(); !ext.Has(ExtI) || !ext.Has(ExtM) || ext.Has(ExtF) {
		t.Errorf("extensions = %v", ext)
	}
}

func TestOpSetComparable(t *testing.T) {
	a := OpSetOf(OpADD, OpSUB)
	b := OpSetOf(OpSUB, OpADD)
	if a != b {
		t.Error("OpSet must be comparable by value (engine cache keys rely on it)")
	}
}

func TestExtGroupSplitsXbmi(t *testing.T) {
	if g := OpBSET.ExtGroup(); g != "Xbmi/Zbs" {
		t.Errorf("bset group = %q, want Xbmi/Zbs", g)
	}
	if g := OpANDN.ExtGroup(); g != "Xbmi/Zbb" {
		t.Errorf("andn group = %q, want Xbmi/Zbb", g)
	}
	if g := OpMUL.ExtGroup(); g != "M" {
		t.Errorf("mul group = %q, want M", g)
	}
	// Every op must land in exactly one named group.
	for op := Op(1); op.Valid(); op++ {
		if op.ExtGroup() == "" {
			t.Errorf("op %v has no extension group", op)
		}
	}
}
