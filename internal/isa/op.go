package isa

import "fmt"

// Op identifies one architectural instruction (one mnemonic).
type Op uint16

// OpInvalid is the zero Op and never names a real instruction.
const OpInvalid Op = 0

// RV32I base integer instruction set.
const (
	OpLUI Op = iota + 1
	OpAUIPC
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU
	OpSB
	OpSH
	OpSW
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpFENCE
	OpFENCEI
	OpECALL
	OpEBREAK

	// Privileged (M-mode).
	OpMRET
	OpWFI

	// Zicsr.
	OpCSRRW
	OpCSRRS
	OpCSRRC
	OpCSRRWI
	OpCSRRSI
	OpCSRRCI

	// M extension.
	OpMUL
	OpMULH
	OpMULHSU
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU

	// F extension (single precision).
	OpFLW
	OpFSW
	OpFMADDS
	OpFMSUBS
	OpFNMSUBS
	OpFNMADDS
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS
	OpFSQRTS
	OpFSGNJS
	OpFSGNJNS
	OpFSGNJXS
	OpFMINS
	OpFMAXS
	OpFCVTWS
	OpFCVTWUS
	OpFMVXW
	OpFEQS
	OpFLTS
	OpFLES
	OpFCLASSS
	OpFCVTSW
	OpFCVTSWU
	OpFMVWX

	// Xbmi: bit-manipulation extension (Zbb/Zbs-compatible encodings),
	// the ecosystem's ISA-extension exploration component.
	OpANDN
	OpORN
	OpXNOR
	OpCLZ
	OpCTZ
	OpCPOP
	OpSEXTB
	OpSEXTH
	OpZEXTH
	OpMIN
	OpMAX
	OpMINU
	OpMAXU
	OpROL
	OpROR
	OpRORI
	OpREV8
	OpORCB
	OpBSET
	OpBCLR
	OpBINV
	OpBEXT
	OpBSETI
	OpBCLRI
	OpBINVI
	OpBEXTI

	// C extension (compressed, 16-bit).
	OpCADDI4SPN
	OpCLW
	OpCSW
	OpCNOP
	OpCADDI
	OpCJAL
	OpCLI
	OpCADDI16SP
	OpCLUI
	OpCSRLI
	OpCSRAI
	OpCANDI
	OpCSUB
	OpCXOR
	OpCOR
	OpCAND
	OpCJ
	OpCBEQZ
	OpCBNEZ
	OpCSLLI
	OpCLWSP
	OpCJR
	OpCMV
	OpCEBREAK
	OpCJALR
	OpCADD
	OpCSWSP

	opMax // sentinel; keep last
)

// NumOps is the number of defined Ops plus one (index 0 is OpInvalid).
const NumOps = int(opMax)

// Class groups instructions by their execution behaviour. The coverage
// metric counts "instruction types" at Op granularity and summarizes by
// Class; the timing model assigns base cycle costs by Class.
type Class uint8

const (
	ClassNone    Class = iota
	ClassALU           // register/immediate integer ALU
	ClassShift         // shifts
	ClassMul           // multiplications
	ClassDiv           // divisions and remainders
	ClassLoad          // memory loads
	ClassStore         // memory stores
	ClassBranch        // conditional branches
	ClassJump          // unconditional jumps and calls
	ClassSystem        // ecall/ebreak/mret/wfi/fence
	ClassCSR           // CSR accesses
	ClassFPALU         // FP arithmetic
	ClassFPMul         // FP multiply (incl. fused)
	ClassFPDiv         // FP divide / sqrt
	ClassFPCmp         // FP compares, classify, sign ops, min/max
	ClassFPCvt         // FP<->int conversions and moves
	ClassFPLoad        // FP loads
	ClassFPStore       // FP stores
	ClassBMI           // bit-manipulation (Xbmi)
)

var classNames = map[Class]string{
	ClassNone: "none", ClassALU: "alu", ClassShift: "shift",
	ClassMul: "mul", ClassDiv: "div", ClassLoad: "load",
	ClassStore: "store", ClassBranch: "branch", ClassJump: "jump",
	ClassSystem: "system", ClassCSR: "csr", ClassFPALU: "fp-alu",
	ClassFPMul: "fp-mul", ClassFPDiv: "fp-div", ClassFPCmp: "fp-cmp",
	ClassFPCvt: "fp-cvt", ClassFPLoad: "fp-load", ClassFPStore: "fp-store",
	ClassBMI: "bmi",
}

func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Ext identifies the ISA extension an instruction belongs to.
type Ext uint8

const (
	ExtI Ext = iota
	ExtM
	ExtF
	ExtZicsr
	ExtZifencei
	ExtPriv
	ExtXbmi
	ExtC
	numExts
)

var extNames = [numExts]string{"I", "M", "F", "Zicsr", "Zifencei", "priv", "Xbmi", "C"}

func (e Ext) String() string {
	if int(e) < len(extNames) {
		return extNames[e]
	}
	return fmt.Sprintf("ext(%d)", uint8(e))
}

// ExtSet is a bit set of extensions; it describes an ISA-module
// configuration such as RV32IM or RV32IMF+Xbmi.
type ExtSet uint16

// With returns s with e added.
func (s ExtSet) With(e Ext) ExtSet { return s | 1<<e }

// Has reports whether e is in the set.
func (s ExtSet) Has(e Ext) bool { return s&(1<<e) != 0 }

// Common ISA configurations.
var (
	RV32I    = ExtSet(0).With(ExtI).With(ExtZicsr).With(ExtZifencei).With(ExtPriv)
	RV32IM   = RV32I.With(ExtM)
	RV32IMF  = RV32IM.With(ExtF)
	RV32IMB  = RV32IM.With(ExtXbmi)
	RV32IMC  = RV32IM.With(ExtC)
	RV32IMFC = RV32IMF.With(ExtC)
	RV32Full = RV32IMF.With(ExtXbmi).With(ExtC)
)

func (s ExtSet) String() string {
	out := "RV32"
	for e := Ext(0); e < numExts; e++ {
		if s.Has(e) {
			switch e {
			case ExtPriv:
				// implied
			case ExtZicsr, ExtZifencei, ExtXbmi:
				out += "_" + extNames[e]
			default:
				out += extNames[e]
			}
		}
	}
	return out
}

// opInfo is the static description of one Op.
type opInfo struct {
	name  string
	class Class
	ext   Ext
}

var opInfos = [NumOps]opInfo{
	OpInvalid: {"invalid", ClassNone, ExtI},

	OpLUI:    {"lui", ClassALU, ExtI},
	OpAUIPC:  {"auipc", ClassALU, ExtI},
	OpJAL:    {"jal", ClassJump, ExtI},
	OpJALR:   {"jalr", ClassJump, ExtI},
	OpBEQ:    {"beq", ClassBranch, ExtI},
	OpBNE:    {"bne", ClassBranch, ExtI},
	OpBLT:    {"blt", ClassBranch, ExtI},
	OpBGE:    {"bge", ClassBranch, ExtI},
	OpBLTU:   {"bltu", ClassBranch, ExtI},
	OpBGEU:   {"bgeu", ClassBranch, ExtI},
	OpLB:     {"lb", ClassLoad, ExtI},
	OpLH:     {"lh", ClassLoad, ExtI},
	OpLW:     {"lw", ClassLoad, ExtI},
	OpLBU:    {"lbu", ClassLoad, ExtI},
	OpLHU:    {"lhu", ClassLoad, ExtI},
	OpSB:     {"sb", ClassStore, ExtI},
	OpSH:     {"sh", ClassStore, ExtI},
	OpSW:     {"sw", ClassStore, ExtI},
	OpADDI:   {"addi", ClassALU, ExtI},
	OpSLTI:   {"slti", ClassALU, ExtI},
	OpSLTIU:  {"sltiu", ClassALU, ExtI},
	OpXORI:   {"xori", ClassALU, ExtI},
	OpORI:    {"ori", ClassALU, ExtI},
	OpANDI:   {"andi", ClassALU, ExtI},
	OpSLLI:   {"slli", ClassShift, ExtI},
	OpSRLI:   {"srli", ClassShift, ExtI},
	OpSRAI:   {"srai", ClassShift, ExtI},
	OpADD:    {"add", ClassALU, ExtI},
	OpSUB:    {"sub", ClassALU, ExtI},
	OpSLL:    {"sll", ClassShift, ExtI},
	OpSLT:    {"slt", ClassALU, ExtI},
	OpSLTU:   {"sltu", ClassALU, ExtI},
	OpXOR:    {"xor", ClassALU, ExtI},
	OpSRL:    {"srl", ClassShift, ExtI},
	OpSRA:    {"sra", ClassShift, ExtI},
	OpOR:     {"or", ClassALU, ExtI},
	OpAND:    {"and", ClassALU, ExtI},
	OpFENCE:  {"fence", ClassSystem, ExtI},
	OpFENCEI: {"fence.i", ClassSystem, ExtZifencei},
	OpECALL:  {"ecall", ClassSystem, ExtI},
	OpEBREAK: {"ebreak", ClassSystem, ExtI},

	OpMRET: {"mret", ClassSystem, ExtPriv},
	OpWFI:  {"wfi", ClassSystem, ExtPriv},

	OpCSRRW:  {"csrrw", ClassCSR, ExtZicsr},
	OpCSRRS:  {"csrrs", ClassCSR, ExtZicsr},
	OpCSRRC:  {"csrrc", ClassCSR, ExtZicsr},
	OpCSRRWI: {"csrrwi", ClassCSR, ExtZicsr},
	OpCSRRSI: {"csrrsi", ClassCSR, ExtZicsr},
	OpCSRRCI: {"csrrci", ClassCSR, ExtZicsr},

	OpMUL:    {"mul", ClassMul, ExtM},
	OpMULH:   {"mulh", ClassMul, ExtM},
	OpMULHSU: {"mulhsu", ClassMul, ExtM},
	OpMULHU:  {"mulhu", ClassMul, ExtM},
	OpDIV:    {"div", ClassDiv, ExtM},
	OpDIVU:   {"divu", ClassDiv, ExtM},
	OpREM:    {"rem", ClassDiv, ExtM},
	OpREMU:   {"remu", ClassDiv, ExtM},

	OpFLW:     {"flw", ClassFPLoad, ExtF},
	OpFSW:     {"fsw", ClassFPStore, ExtF},
	OpFMADDS:  {"fmadd.s", ClassFPMul, ExtF},
	OpFMSUBS:  {"fmsub.s", ClassFPMul, ExtF},
	OpFNMSUBS: {"fnmsub.s", ClassFPMul, ExtF},
	OpFNMADDS: {"fnmadd.s", ClassFPMul, ExtF},
	OpFADDS:   {"fadd.s", ClassFPALU, ExtF},
	OpFSUBS:   {"fsub.s", ClassFPALU, ExtF},
	OpFMULS:   {"fmul.s", ClassFPMul, ExtF},
	OpFDIVS:   {"fdiv.s", ClassFPDiv, ExtF},
	OpFSQRTS:  {"fsqrt.s", ClassFPDiv, ExtF},
	OpFSGNJS:  {"fsgnj.s", ClassFPCmp, ExtF},
	OpFSGNJNS: {"fsgnjn.s", ClassFPCmp, ExtF},
	OpFSGNJXS: {"fsgnjx.s", ClassFPCmp, ExtF},
	OpFMINS:   {"fmin.s", ClassFPCmp, ExtF},
	OpFMAXS:   {"fmax.s", ClassFPCmp, ExtF},
	OpFCVTWS:  {"fcvt.w.s", ClassFPCvt, ExtF},
	OpFCVTWUS: {"fcvt.wu.s", ClassFPCvt, ExtF},
	OpFMVXW:   {"fmv.x.w", ClassFPCvt, ExtF},
	OpFEQS:    {"feq.s", ClassFPCmp, ExtF},
	OpFLTS:    {"flt.s", ClassFPCmp, ExtF},
	OpFLES:    {"fle.s", ClassFPCmp, ExtF},
	OpFCLASSS: {"fclass.s", ClassFPCmp, ExtF},
	OpFCVTSW:  {"fcvt.s.w", ClassFPCvt, ExtF},
	OpFCVTSWU: {"fcvt.s.wu", ClassFPCvt, ExtF},
	OpFMVWX:   {"fmv.w.x", ClassFPCvt, ExtF},

	OpANDN:  {"andn", ClassBMI, ExtXbmi},
	OpORN:   {"orn", ClassBMI, ExtXbmi},
	OpXNOR:  {"xnor", ClassBMI, ExtXbmi},
	OpCLZ:   {"clz", ClassBMI, ExtXbmi},
	OpCTZ:   {"ctz", ClassBMI, ExtXbmi},
	OpCPOP:  {"cpop", ClassBMI, ExtXbmi},
	OpSEXTB: {"sext.b", ClassBMI, ExtXbmi},
	OpSEXTH: {"sext.h", ClassBMI, ExtXbmi},
	OpZEXTH: {"zext.h", ClassBMI, ExtXbmi},
	OpMIN:   {"min", ClassBMI, ExtXbmi},
	OpMAX:   {"max", ClassBMI, ExtXbmi},
	OpMINU:  {"minu", ClassBMI, ExtXbmi},
	OpMAXU:  {"maxu", ClassBMI, ExtXbmi},
	OpROL:   {"rol", ClassBMI, ExtXbmi},
	OpROR:   {"ror", ClassBMI, ExtXbmi},
	OpRORI:  {"rori", ClassBMI, ExtXbmi},
	OpREV8:  {"rev8", ClassBMI, ExtXbmi},
	OpORCB:  {"orc.b", ClassBMI, ExtXbmi},
	OpBSET:  {"bset", ClassBMI, ExtXbmi},
	OpBCLR:  {"bclr", ClassBMI, ExtXbmi},
	OpBINV:  {"binv", ClassBMI, ExtXbmi},
	OpBEXT:  {"bext", ClassBMI, ExtXbmi},
	OpBSETI: {"bseti", ClassBMI, ExtXbmi},
	OpBCLRI: {"bclri", ClassBMI, ExtXbmi},
	OpBINVI: {"binvi", ClassBMI, ExtXbmi},
	OpBEXTI: {"bexti", ClassBMI, ExtXbmi},

	OpCADDI4SPN: {"c.addi4spn", ClassALU, ExtC},
	OpCLW:       {"c.lw", ClassLoad, ExtC},
	OpCSW:       {"c.sw", ClassStore, ExtC},
	OpCNOP:      {"c.nop", ClassALU, ExtC},
	OpCADDI:     {"c.addi", ClassALU, ExtC},
	OpCJAL:      {"c.jal", ClassJump, ExtC},
	OpCLI:       {"c.li", ClassALU, ExtC},
	OpCADDI16SP: {"c.addi16sp", ClassALU, ExtC},
	OpCLUI:      {"c.lui", ClassALU, ExtC},
	OpCSRLI:     {"c.srli", ClassShift, ExtC},
	OpCSRAI:     {"c.srai", ClassShift, ExtC},
	OpCANDI:     {"c.andi", ClassALU, ExtC},
	OpCSUB:      {"c.sub", ClassALU, ExtC},
	OpCXOR:      {"c.xor", ClassALU, ExtC},
	OpCOR:       {"c.or", ClassALU, ExtC},
	OpCAND:      {"c.and", ClassALU, ExtC},
	OpCJ:        {"c.j", ClassJump, ExtC},
	OpCBEQZ:     {"c.beqz", ClassBranch, ExtC},
	OpCBNEZ:     {"c.bnez", ClassBranch, ExtC},
	OpCSLLI:     {"c.slli", ClassShift, ExtC},
	OpCLWSP:     {"c.lwsp", ClassLoad, ExtC},
	OpCJR:       {"c.jr", ClassJump, ExtC},
	OpCMV:       {"c.mv", ClassALU, ExtC},
	OpCEBREAK:   {"c.ebreak", ClassSystem, ExtC},
	OpCJALR:     {"c.jalr", ClassJump, ExtC},
	OpCADD:      {"c.add", ClassALU, ExtC},
	OpCSWSP:     {"c.swsp", ClassStore, ExtC},
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < NumOps {
		return opInfos[o].name
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// Class returns the execution class of the instruction.
func (o Op) Class() Class {
	if int(o) < NumOps {
		return opInfos[o].class
	}
	return ClassNone
}

// Extension returns the ISA extension the instruction belongs to.
func (o Op) Extension() Ext {
	if int(o) < NumOps {
		return opInfos[o].ext
	}
	return ExtI
}

// Valid reports whether o names a real instruction.
func (o Op) Valid() bool { return o > OpInvalid && int(o) < NumOps }

// In reports whether the instruction is available in the given ISA
// configuration.
func (o Op) In(s ExtSet) bool { return o.Valid() && s.Has(o.Extension()) }

// IsBranch reports whether the instruction conditionally alters control
// flow.
func (o Op) IsBranch() bool { return o.Class() == ClassBranch }

// IsJump reports whether the instruction unconditionally alters control
// flow.
func (o Op) IsJump() bool { return o.Class() == ClassJump }

// IsControlFlow reports whether the instruction may alter control flow
// (branches, jumps, and traps-returns). Basic-block construction treats
// these as block terminators.
func (o Op) IsControlFlow() bool {
	switch o.Class() {
	case ClassBranch, ClassJump:
		return true
	}
	switch o {
	case OpECALL, OpEBREAK, OpMRET, OpCEBREAK:
		return true
	}
	return false
}

// Ops returns all valid Ops in declaration order. It is the instruction-
// type coverage universe.
func Ops() []Op {
	out := make([]Op, 0, NumOps-1)
	for o := Op(1); int(o) < NumOps; o++ {
		out = append(out, o)
	}
	return out
}

// OpsIn returns the Ops available in the given ISA configuration.
func OpsIn(s ExtSet) []Op {
	var out []Op
	for _, o := range Ops() {
		if o.In(s) {
			out = append(out, o)
		}
	}
	return out
}

// opSetWords is the number of 64-bit words an OpSet needs.
const opSetWords = (NumOps + 63) / 64

// OpSet is a bit set over the instruction universe. It is a comparable
// value type (equality via ==), which lets cached compiled code be
// tagged with the exact subset it was specialized against. The zero
// value is the empty set; as an execution allowlist the empty set means
// "unrestricted" (see Allows), so plain machines need no setup.
type OpSet struct {
	w [opSetWords]uint64
}

// Add inserts o into the set.
func (s *OpSet) Add(o Op) {
	if o.Valid() {
		s.w[o>>6] |= 1 << (o & 63)
	}
}

// Has reports whether o is in the set.
func (s OpSet) Has(o Op) bool {
	return int(o) < NumOps && s.w[o>>6]&(1<<(o&63)) != 0
}

// Empty reports whether the set contains no ops.
func (s OpSet) Empty() bool { return s == OpSet{} }

// Allows reports whether o may execute under s as an allowlist: the
// empty set places no restriction, a non-empty set admits only its
// members. This is the subset-enforcement predicate shared by the
// interpreter and the specializing compilers.
func (s OpSet) Allows(o Op) bool { return s.Empty() || s.Has(o) }

// Len returns the number of ops in the set.
func (s OpSet) Len() int {
	n := 0
	for _, w := range s.w {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Ops returns the members in declaration order.
func (s OpSet) Ops() []Op {
	out := make([]Op, 0, s.Len())
	for o := Op(1); int(o) < NumOps; o++ {
		if s.Has(o) {
			out = append(out, o)
		}
	}
	return out
}

// Union returns s ∪ t.
func (s OpSet) Union(t OpSet) OpSet {
	var out OpSet
	for i := range out.w {
		out.w[i] = s.w[i] | t.w[i]
	}
	return out
}

// Extensions returns the ExtSet spanned by the set's members.
func (s OpSet) Extensions() ExtSet {
	var e ExtSet
	for o := Op(1); int(o) < NumOps; o++ {
		if s.Has(o) {
			e = e.With(o.Extension())
		}
	}
	return e
}

// OpSetOf builds the set containing the given ops.
func OpSetOf(ops ...Op) OpSet {
	var s OpSet
	for _, o := range ops {
		s.Add(o)
	}
	return s
}

// ExtGroup returns the reporting group of the instruction: the extension
// name, with the Xbmi exploration extension split into its Zbb-flavoured
// (logic/count/rotate/byte ops) and Zbs-flavoured (single-bit ops)
// halves. The subset analyzer and the coverage tool share these names so
// pruning and coverage reports agree on what a group means.
func (o Op) ExtGroup() string {
	if o.Extension() == ExtXbmi {
		if o >= OpBSET && o <= OpBEXTI {
			return "Xbmi/Zbs"
		}
		return "Xbmi/Zbb"
	}
	return o.Extension().String()
}

// ExtGroups returns the reporting groups of the given ISA configuration
// in declaration order of their first member op.
func ExtGroups(s ExtSet) []string {
	var out []string
	seen := map[string]bool{}
	for _, o := range OpsIn(s) {
		g := o.ExtGroup()
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// ByName returns the Op with the given mnemonic, or OpInvalid.
func ByName(name string) Op {
	return opsByName[name]
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for o := Op(1); int(o) < NumOps; o++ {
		m[opInfos[o].name] = o
	}
	return m
}()
