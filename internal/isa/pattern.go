package isa

// Format identifies how an instruction's operands are packed into its
// 32-bit encoding. The decoder uses it to extract operands, the encoder to
// insert them, and the assembler to derive the operand syntax.
type Format uint8

const (
	FmtNone   Format = iota // no variable operands (ecall, mret, fence, ...)
	FmtR                    // rd, rs1, rs2
	FmtR4                   // rd, rs1, rs2, rs3 (fused FP)
	FmtI                    // rd, rs1, imm12 (also loads: rd, imm(rs1))
	FmtIShift               // rd, rs1, shamt[4:0]
	FmtS                    // rs2, imm(rs1) stores
	FmtB                    // rs1, rs2, branch offset
	FmtU                    // rd, imm[31:12]
	FmtJ                    // rd, jump offset
	FmtCSR                  // rd, csr, rs1
	FmtCSRI                 // rd, csr, uimm[4:0]
	FmtRUnary               // rd, rs1 (rs2/funct7 fixed: clz, fsqrt, fcvt, ...)
)

var formatNames = map[Format]string{
	FmtNone: "none", FmtR: "R", FmtR4: "R4", FmtI: "I", FmtIShift: "Ishift",
	FmtS: "S", FmtB: "B", FmtU: "U", FmtJ: "J", FmtCSR: "csr",
	FmtCSRI: "csri", FmtRUnary: "Runary",
}

func (f Format) String() string { return formatNames[f] }

// Pattern is the fixed-bit description of one 32-bit instruction encoding:
// word & Mask == Match identifies the instruction, and Fmt says where its
// operands live. This table is the Go analog of QEMU's DecodeTree input.
type Pattern struct {
	Op    Op
	Mask  uint32
	Match uint32
	Fmt   Format
}

// Encoding field helpers.
const (
	maskOpcode    = 0x0000007f
	maskOpF3      = 0x0000707f // opcode + funct3
	maskOpF3F7    = 0xfe00707f // opcode + funct3 + funct7
	maskOpF7      = 0xfe00007f // opcode + funct7 (FP: rm free)
	maskOpF7Rs2   = 0xfff0007f // opcode + funct7 + rs2 (FP cvt: rm free)
	maskOpF3F7Rs2 = 0xfff0707f // opcode + funct3 + funct7 + rs2
	maskFull      = 0xffffffff
	maskOpFmt2    = 0x0600007f // opcode + FP fmt field (fused multiply-add)
)

func f3(v uint32) uint32   { return v << 12 }
func f7(v uint32) uint32   { return v << 25 }
func rs2f(v uint32) uint32 { return v << 20 }

// patterns is the full 32-bit encoding table. 16-bit (C extension)
// encodings are handled by the dedicated compressed decoder/encoder.
var patterns = []Pattern{
	// RV32I
	{OpLUI, maskOpcode, 0x37, FmtU},
	{OpAUIPC, maskOpcode, 0x17, FmtU},
	{OpJAL, maskOpcode, 0x6f, FmtJ},
	{OpJALR, maskOpF3, 0x67 | f3(0), FmtI},
	{OpBEQ, maskOpF3, 0x63 | f3(0), FmtB},
	{OpBNE, maskOpF3, 0x63 | f3(1), FmtB},
	{OpBLT, maskOpF3, 0x63 | f3(4), FmtB},
	{OpBGE, maskOpF3, 0x63 | f3(5), FmtB},
	{OpBLTU, maskOpF3, 0x63 | f3(6), FmtB},
	{OpBGEU, maskOpF3, 0x63 | f3(7), FmtB},
	{OpLB, maskOpF3, 0x03 | f3(0), FmtI},
	{OpLH, maskOpF3, 0x03 | f3(1), FmtI},
	{OpLW, maskOpF3, 0x03 | f3(2), FmtI},
	{OpLBU, maskOpF3, 0x03 | f3(4), FmtI},
	{OpLHU, maskOpF3, 0x03 | f3(5), FmtI},
	{OpSB, maskOpF3, 0x23 | f3(0), FmtS},
	{OpSH, maskOpF3, 0x23 | f3(1), FmtS},
	{OpSW, maskOpF3, 0x23 | f3(2), FmtS},
	{OpADDI, maskOpF3, 0x13 | f3(0), FmtI},
	{OpSLTI, maskOpF3, 0x13 | f3(2), FmtI},
	{OpSLTIU, maskOpF3, 0x13 | f3(3), FmtI},
	{OpXORI, maskOpF3, 0x13 | f3(4), FmtI},
	{OpORI, maskOpF3, 0x13 | f3(6), FmtI},
	{OpANDI, maskOpF3, 0x13 | f3(7), FmtI},
	{OpSLLI, maskOpF3F7, 0x13 | f3(1) | f7(0x00), FmtIShift},
	{OpSRLI, maskOpF3F7, 0x13 | f3(5) | f7(0x00), FmtIShift},
	{OpSRAI, maskOpF3F7, 0x13 | f3(5) | f7(0x20), FmtIShift},
	{OpADD, maskOpF3F7, 0x33 | f3(0) | f7(0x00), FmtR},
	{OpSUB, maskOpF3F7, 0x33 | f3(0) | f7(0x20), FmtR},
	{OpSLL, maskOpF3F7, 0x33 | f3(1) | f7(0x00), FmtR},
	{OpSLT, maskOpF3F7, 0x33 | f3(2) | f7(0x00), FmtR},
	{OpSLTU, maskOpF3F7, 0x33 | f3(3) | f7(0x00), FmtR},
	{OpXOR, maskOpF3F7, 0x33 | f3(4) | f7(0x00), FmtR},
	{OpSRL, maskOpF3F7, 0x33 | f3(5) | f7(0x00), FmtR},
	{OpSRA, maskOpF3F7, 0x33 | f3(5) | f7(0x20), FmtR},
	{OpOR, maskOpF3F7, 0x33 | f3(6) | f7(0x00), FmtR},
	{OpAND, maskOpF3F7, 0x33 | f3(7) | f7(0x00), FmtR},
	{OpFENCE, maskOpF3, 0x0f | f3(0), FmtNone},
	{OpFENCEI, maskOpF3, 0x0f | f3(1), FmtNone},
	{OpECALL, maskFull, 0x00000073, FmtNone},
	{OpEBREAK, maskFull, 0x00100073, FmtNone},
	{OpMRET, maskFull, 0x30200073, FmtNone},
	{OpWFI, maskFull, 0x10500073, FmtNone},

	// Zicsr
	{OpCSRRW, maskOpF3, 0x73 | f3(1), FmtCSR},
	{OpCSRRS, maskOpF3, 0x73 | f3(2), FmtCSR},
	{OpCSRRC, maskOpF3, 0x73 | f3(3), FmtCSR},
	{OpCSRRWI, maskOpF3, 0x73 | f3(5), FmtCSRI},
	{OpCSRRSI, maskOpF3, 0x73 | f3(6), FmtCSRI},
	{OpCSRRCI, maskOpF3, 0x73 | f3(7), FmtCSRI},

	// M
	{OpMUL, maskOpF3F7, 0x33 | f3(0) | f7(0x01), FmtR},
	{OpMULH, maskOpF3F7, 0x33 | f3(1) | f7(0x01), FmtR},
	{OpMULHSU, maskOpF3F7, 0x33 | f3(2) | f7(0x01), FmtR},
	{OpMULHU, maskOpF3F7, 0x33 | f3(3) | f7(0x01), FmtR},
	{OpDIV, maskOpF3F7, 0x33 | f3(4) | f7(0x01), FmtR},
	{OpDIVU, maskOpF3F7, 0x33 | f3(5) | f7(0x01), FmtR},
	{OpREM, maskOpF3F7, 0x33 | f3(6) | f7(0x01), FmtR},
	{OpREMU, maskOpF3F7, 0x33 | f3(7) | f7(0x01), FmtR},

	// F (single precision)
	{OpFLW, maskOpF3, 0x07 | f3(2), FmtI},
	{OpFSW, maskOpF3, 0x27 | f3(2), FmtS},
	{OpFMADDS, maskOpFmt2, 0x43, FmtR4},
	{OpFMSUBS, maskOpFmt2, 0x47, FmtR4},
	{OpFNMSUBS, maskOpFmt2, 0x4b, FmtR4},
	{OpFNMADDS, maskOpFmt2, 0x4f, FmtR4},
	{OpFADDS, maskOpF7, 0x53 | f7(0x00), FmtR},
	{OpFSUBS, maskOpF7, 0x53 | f7(0x04), FmtR},
	{OpFMULS, maskOpF7, 0x53 | f7(0x08), FmtR},
	{OpFDIVS, maskOpF7, 0x53 | f7(0x0c), FmtR},
	{OpFSQRTS, maskOpF7Rs2, 0x53 | f7(0x2c) | rs2f(0), FmtRUnary},
	{OpFSGNJS, maskOpF3F7, 0x53 | f3(0) | f7(0x10), FmtR},
	{OpFSGNJNS, maskOpF3F7, 0x53 | f3(1) | f7(0x10), FmtR},
	{OpFSGNJXS, maskOpF3F7, 0x53 | f3(2) | f7(0x10), FmtR},
	{OpFMINS, maskOpF3F7, 0x53 | f3(0) | f7(0x14), FmtR},
	{OpFMAXS, maskOpF3F7, 0x53 | f3(1) | f7(0x14), FmtR},
	{OpFCVTWS, maskOpF7Rs2, 0x53 | f7(0x60) | rs2f(0), FmtRUnary},
	{OpFCVTWUS, maskOpF7Rs2, 0x53 | f7(0x60) | rs2f(1), FmtRUnary},
	{OpFMVXW, maskOpF3F7Rs2, 0x53 | f3(0) | f7(0x70) | rs2f(0), FmtRUnary},
	{OpFCLASSS, maskOpF3F7Rs2, 0x53 | f3(1) | f7(0x70) | rs2f(0), FmtRUnary},
	{OpFEQS, maskOpF3F7, 0x53 | f3(2) | f7(0x50), FmtR},
	{OpFLTS, maskOpF3F7, 0x53 | f3(1) | f7(0x50), FmtR},
	{OpFLES, maskOpF3F7, 0x53 | f3(0) | f7(0x50), FmtR},
	{OpFCVTSW, maskOpF7Rs2, 0x53 | f7(0x68) | rs2f(0), FmtRUnary},
	{OpFCVTSWU, maskOpF7Rs2, 0x53 | f7(0x68) | rs2f(1), FmtRUnary},
	{OpFMVWX, maskOpF3F7Rs2, 0x53 | f3(0) | f7(0x78) | rs2f(0), FmtRUnary},

	// Xbmi (Zbb/Zbs-compatible encodings)
	{OpANDN, maskOpF3F7, 0x33 | f3(7) | f7(0x20), FmtR},
	{OpORN, maskOpF3F7, 0x33 | f3(6) | f7(0x20), FmtR},
	{OpXNOR, maskOpF3F7, 0x33 | f3(4) | f7(0x20), FmtR},
	{OpCLZ, maskOpF3F7Rs2, 0x13 | f3(1) | f7(0x30) | rs2f(0), FmtRUnary},
	{OpCTZ, maskOpF3F7Rs2, 0x13 | f3(1) | f7(0x30) | rs2f(1), FmtRUnary},
	{OpCPOP, maskOpF3F7Rs2, 0x13 | f3(1) | f7(0x30) | rs2f(2), FmtRUnary},
	{OpSEXTB, maskOpF3F7Rs2, 0x13 | f3(1) | f7(0x30) | rs2f(4), FmtRUnary},
	{OpSEXTH, maskOpF3F7Rs2, 0x13 | f3(1) | f7(0x30) | rs2f(5), FmtRUnary},
	{OpZEXTH, maskOpF3F7Rs2, 0x33 | f3(4) | f7(0x04) | rs2f(0), FmtRUnary},
	{OpMIN, maskOpF3F7, 0x33 | f3(4) | f7(0x05), FmtR},
	{OpMINU, maskOpF3F7, 0x33 | f3(5) | f7(0x05), FmtR},
	{OpMAX, maskOpF3F7, 0x33 | f3(6) | f7(0x05), FmtR},
	{OpMAXU, maskOpF3F7, 0x33 | f3(7) | f7(0x05), FmtR},
	{OpROL, maskOpF3F7, 0x33 | f3(1) | f7(0x30), FmtR},
	{OpROR, maskOpF3F7, 0x33 | f3(5) | f7(0x30), FmtR},
	{OpRORI, maskOpF3F7, 0x13 | f3(5) | f7(0x30), FmtIShift},
	{OpREV8, maskOpF3F7Rs2, 0x13 | f3(5) | f7(0x34) | rs2f(0x18), FmtRUnary},
	{OpORCB, maskOpF3F7Rs2, 0x13 | f3(5) | f7(0x14) | rs2f(0x07), FmtRUnary},
	{OpBSET, maskOpF3F7, 0x33 | f3(1) | f7(0x14), FmtR},
	{OpBCLR, maskOpF3F7, 0x33 | f3(1) | f7(0x24), FmtR},
	{OpBINV, maskOpF3F7, 0x33 | f3(1) | f7(0x34), FmtR},
	{OpBEXT, maskOpF3F7, 0x33 | f3(5) | f7(0x24), FmtR},
	{OpBSETI, maskOpF3F7, 0x13 | f3(1) | f7(0x14), FmtIShift},
	{OpBCLRI, maskOpF3F7, 0x13 | f3(1) | f7(0x24), FmtIShift},
	{OpBINVI, maskOpF3F7, 0x13 | f3(1) | f7(0x34), FmtIShift},
	{OpBEXTI, maskOpF3F7, 0x13 | f3(5) | f7(0x24), FmtIShift},
}

// Patterns returns the 32-bit encoding table. The slice is shared; callers
// must not modify it.
func Patterns() []Pattern { return patterns }

var patternByOp = func() map[Op]Pattern {
	m := make(map[Op]Pattern, len(patterns))
	for _, p := range patterns {
		if _, dup := m[p.Op]; dup {
			panic("isa: duplicate pattern for " + p.Op.String())
		}
		m[p.Op] = p
	}
	return m
}()

// PatternFor returns the encoding pattern for op. ok is false for ops
// without a 32-bit encoding (the compressed instructions).
func PatternFor(op Op) (Pattern, bool) {
	p, ok := patternByOp[op]
	return p, ok
}

// UsesFPRegs reports which of the instruction's register operands index
// the floating-point register file, in the order rd, rs1, rs2(, rs3).
// Coverage and disassembly use this to attribute register accesses.
func UsesFPRegs(op Op) (rd, rs1, rs2 bool) {
	switch op {
	case OpFLW:
		return true, false, false
	case OpFSW:
		return false, false, true
	case OpFMADDS, OpFMSUBS, OpFNMSUBS, OpFNMADDS,
		OpFADDS, OpFSUBS, OpFMULS, OpFDIVS,
		OpFSGNJS, OpFSGNJNS, OpFSGNJXS, OpFMINS, OpFMAXS:
		return true, true, true
	case OpFSQRTS:
		return true, true, false
	case OpFCVTWS, OpFCVTWUS, OpFMVXW, OpFCLASSS:
		return false, true, false
	case OpFEQS, OpFLTS, OpFLES:
		return false, true, true
	case OpFCVTSW, OpFCVTSWU, OpFMVWX:
		return true, false, false
	}
	return false, false, false
}
