package plugin

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/decode"
	"repro/internal/isa"
)

// probe implements every hook and records call counts.
type probe struct {
	name                                   string
	translates, blocks, insns, mems, traps int
}

func (p *probe) Name() string                   { return p.name }
func (p *probe) OnTranslate(BlockInfo)          { p.translates++ }
func (p *probe) OnBlockExec(BlockInfo)          { p.blocks++ }
func (p *probe) OnInsnExec(uint32, decode.Inst) { p.insns++ }
func (p *probe) OnMemAccess(MemEvent)           { p.mems++ }
func (p *probe) OnTrap(cause, tval, pc uint32)  { p.traps++ }

// memOnly implements only the memory hook.
type memOnly struct{ mems int }

func (m *memOnly) Name() string         { return "mem-only" }
func (m *memOnly) OnMemAccess(MemEvent) { m.mems++ }

// hookless implements no hook interfaces at all.
type hookless struct{}

func (hookless) Name() string { return "hookless" }

func TestRegisterAndDispatch(t *testing.T) {
	var h Hooks
	p := &probe{name: "p"}
	if err := h.Register(p); err != nil {
		t.Fatal(err)
	}
	b := BlockInfo{PC: 0x100}
	h.Translate(b)
	h.BlockExec(b)
	h.InsnExec(0x100, decode.Inst{Op: isa.OpADD})
	h.MemAccess(MemEvent{})
	h.Trap(2, 0, 0x100)
	if p.translates != 1 || p.blocks != 1 || p.insns != 1 || p.mems != 1 || p.traps != 1 {
		t.Errorf("dispatch counts: %+v", p)
	}
}

func TestPartialInterfaceRegistration(t *testing.T) {
	var h Hooks
	m := &memOnly{}
	if err := h.Register(m); err != nil {
		t.Fatal(err)
	}
	if h.HasInsnHooks() {
		t.Error("mem-only plugin must not enable insn hooks")
	}
	if !h.HasMemHooks() {
		t.Error("mem hook not registered")
	}
	h.MemAccess(MemEvent{Store: true})
	if m.mems != 1 {
		t.Error("mem hook not dispatched")
	}
}

func TestRegisterRejectsDuplicatesAndHookless(t *testing.T) {
	var h Hooks
	if err := h.Register(&probe{name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := h.Register(&probe{name: "x"}); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if err := h.Register(hookless{}); err == nil {
		t.Error("plugin without hooks should be rejected")
	}
	if len(h.Plugins()) != 1 {
		t.Errorf("Plugins() = %d entries", len(h.Plugins()))
	}
}

func TestMultiplePluginsAllDispatched(t *testing.T) {
	var h Hooks
	a, b := &probe{name: "a"}, &probe{name: "b"}
	h.Register(a)
	h.Register(b)
	h.InsnExec(0, decode.Inst{})
	if a.insns != 1 || b.insns != 1 {
		t.Error("both plugins should see the event")
	}
}

func TestBlockInfoSize(t *testing.T) {
	b := BlockInfo{
		PC: 0x100,
		Insts: []decode.Inst{
			{Op: isa.OpADDI, Size: 4},
			{Op: isa.OpCADDI, Size: 2},
			{Op: isa.OpJAL, Size: 4},
		},
		Addrs: []uint32{0x100, 0x104, 0x106},
	}
	if b.Size() != 10 {
		t.Errorf("Size() = %d, want 10", b.Size())
	}
	if (BlockInfo{}).Size() != 0 {
		t.Error("empty block size should be 0")
	}
}

func TestTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := &Tracer{W: &buf, Limit: 2}
	tr.OnInsnExec(0x100, decode.Inst{Op: isa.OpADD, Size: 4})
	tr.OnInsnExec(0x104, decode.Inst{Op: isa.OpSUB, Size: 4})
	tr.OnInsnExec(0x108, decode.Inst{Op: isa.OpXOR, Size: 4}) // beyond limit
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d, want 2 (limit)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "00000100: add") {
		t.Errorf("trace line = %q", lines[0])
	}
}

func TestCountPlugin(t *testing.T) {
	c := &Count{}
	var h Hooks
	if err := h.Register(c); err != nil {
		t.Fatal(err)
	}
	h.BlockExec(BlockInfo{})
	h.InsnExec(0, decode.Inst{})
	h.InsnExec(4, decode.Inst{})
	h.MemAccess(MemEvent{Store: false})
	h.MemAccess(MemEvent{Store: true})
	if c.Blocks != 1 || c.Insns != 2 || c.Loads != 1 || c.Stores != 1 {
		t.Errorf("counts: %+v", c)
	}
}
