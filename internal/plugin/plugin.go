// Package plugin defines the instrumentation interface of the emulator —
// the in-process Go replacement for QEMU's TCG plugin API (the cgo
// shared-object mechanism the original QTA tool used). Plugins observe
// block translation, block and instruction execution, memory accesses and
// traps without perturbing architectural state; the QTA timing analyzer,
// the coverage collector and the execution tracer are all plugins.
package plugin

import (
	"fmt"
	"io"

	"repro/internal/decode"
)

// BlockInfo describes one translated block: the decoded instructions and
// their addresses. Plugins must treat the slices as read-only; they are
// shared with the emulator's translation cache.
type BlockInfo struct {
	PC    uint32
	Insts []decode.Inst
	Addrs []uint32
}

// Size returns the block's size in bytes.
func (b BlockInfo) Size() uint32 {
	if len(b.Insts) == 0 {
		return 0
	}
	last := len(b.Insts) - 1
	return b.Addrs[last] + uint32(b.Insts[last].Size) - b.PC
}

// MemEvent describes one data memory access.
type MemEvent struct {
	PC    uint32 // address of the accessing instruction
	Addr  uint32 // effective address
	Value uint32 // value loaded or stored
	Size  uint8  // 1, 2 or 4
	Store bool
}

// Plugin is the base interface; concrete hook interfaces embed it.
// A plugin implements any subset of the hook interfaces below.
type Plugin interface {
	Name() string
}

// Translator is notified when the emulator translates a new block
// (analogous to qemu_plugin_register_vcpu_tb_trans_cb).
type Translator interface {
	Plugin
	OnTranslate(b BlockInfo)
}

// BlockExecer is notified at the start of every block execution.
type BlockExecer interface {
	Plugin
	OnBlockExec(b BlockInfo)
}

// InsnExecer is notified before every instruction executes.
type InsnExecer interface {
	Plugin
	OnInsnExec(pc uint32, in decode.Inst)
}

// MemWatcher is notified on every data memory access.
type MemWatcher interface {
	Plugin
	OnMemAccess(ev MemEvent)
}

// TrapWatcher is notified when the hart takes a trap (exception or
// interrupt, distinguished by the top bit of cause).
type TrapWatcher interface {
	Plugin
	OnTrap(cause, tval, pc uint32)
}

// Hooks is the plugin registry with pre-sorted dispatch lists so the
// emulator pays only for the hook kinds actually registered.
type Hooks struct {
	plugins   []Plugin
	translate []Translator
	blockExec []BlockExecer
	insnExec  []InsnExecer
	memAccess []MemWatcher
	trapWatch []TrapWatcher
}

// Register adds a plugin, wiring every hook interface it implements.
// Registering two plugins with the same name is an error.
func (h *Hooks) Register(p Plugin) error {
	for _, q := range h.plugins {
		if q.Name() == p.Name() {
			return fmt.Errorf("plugin: %q already registered", p.Name())
		}
	}
	tr, isTr := p.(Translator)
	be, isBE := p.(BlockExecer)
	ie, isIE := p.(InsnExecer)
	mw, isMW := p.(MemWatcher)
	tw, isTW := p.(TrapWatcher)
	if !isTr && !isBE && !isIE && !isMW && !isTW {
		return fmt.Errorf("plugin: %q implements no hook interface", p.Name())
	}
	h.plugins = append(h.plugins, p)
	if isTr {
		h.translate = append(h.translate, tr)
	}
	if isBE {
		h.blockExec = append(h.blockExec, be)
	}
	if isIE {
		h.insnExec = append(h.insnExec, ie)
	}
	if isMW {
		h.memAccess = append(h.memAccess, mw)
	}
	if isTW {
		h.trapWatch = append(h.trapWatch, tw)
	}
	return nil
}

// Plugins returns the registered plugins in registration order.
func (h *Hooks) Plugins() []Plugin { return h.plugins }

// HasInsnHooks reports whether any per-instruction hooks are registered;
// the emulator uses it to skip dispatch entirely on the hot path.
func (h *Hooks) HasInsnHooks() bool { return len(h.insnExec) > 0 }

// HasMemHooks reports whether any memory hooks are registered.
func (h *Hooks) HasMemHooks() bool { return len(h.memAccess) > 0 }

// HasBlockHooks reports whether any block-execution hooks are registered;
// both engines use it to skip the BlockInfo dispatch on the hot path.
func (h *Hooks) HasBlockHooks() bool { return len(h.blockExec) > 0 }

// HasTranslateHooks reports whether any translation hooks are registered.
func (h *Hooks) HasTranslateHooks() bool { return len(h.translate) > 0 }

// Translate dispatches a block-translated event.
func (h *Hooks) Translate(b BlockInfo) {
	for _, p := range h.translate {
		p.OnTranslate(b)
	}
}

// BlockExec dispatches a block-execution event.
func (h *Hooks) BlockExec(b BlockInfo) {
	for _, p := range h.blockExec {
		p.OnBlockExec(b)
	}
}

// InsnExec dispatches an instruction-execution event.
func (h *Hooks) InsnExec(pc uint32, in decode.Inst) {
	for _, p := range h.insnExec {
		p.OnInsnExec(pc, in)
	}
}

// MemAccess dispatches a memory-access event.
func (h *Hooks) MemAccess(ev MemEvent) {
	for _, p := range h.memAccess {
		p.OnMemAccess(ev)
	}
}

// Trap dispatches a trap event.
func (h *Hooks) Trap(cause, tval, pc uint32) {
	for _, p := range h.trapWatch {
		p.OnTrap(cause, tval, pc)
	}
}

// Tracer is a built-in diagnostic plugin that writes a one-line
// disassembly trace of every executed instruction, the Go analog of
// QEMU's execlog plugin.
type Tracer struct {
	W     io.Writer
	Limit uint64 // stop tracing after this many instructions; 0 = unlimited
	n     uint64
}

// Name implements Plugin.
func (t *Tracer) Name() string { return "tracer" }

// OnInsnExec implements InsnExecer.
func (t *Tracer) OnInsnExec(pc uint32, in decode.Inst) {
	if t.Limit != 0 && t.n >= t.Limit {
		return
	}
	t.n++
	fmt.Fprintf(t.W, "%08x: %s\n", pc, in)
}

// Count is a built-in plugin counting executed blocks and instructions,
// the analog of QEMU's insn/bb count plugins.
type Count struct {
	Blocks, Insns, Loads, Stores uint64
}

// Name implements Plugin.
func (c *Count) Name() string { return "count" }

// OnBlockExec implements BlockExecer.
func (c *Count) OnBlockExec(BlockInfo) { c.Blocks++ }

// OnInsnExec implements InsnExecer.
func (c *Count) OnInsnExec(uint32, decode.Inst) { c.Insns++ }

// OnMemAccess implements MemWatcher.
func (c *Count) OnMemAccess(ev MemEvent) {
	if ev.Store {
		c.Stores++
	} else {
		c.Loads++
	}
}
