package fault_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vp"
)

// TestCampaignCancellation proves a campaign can be aborted mid-run: the
// context is cancelled once the first mutant has been classified, and
// the campaign must return promptly with partial results — classified
// slots keep their outcome, unreached slots stay Errored, and the
// joined error reports the cancellation.
func TestCampaignCancellation(t *testing.T) {
	tg, _ := target(t, "pid")

	// Stuck-at mutants single-step the whole budget, so a 400-mutant
	// plan takes far longer than the cancellation point; a campaign that
	// ignores the context would blow the test timeout instead of
	// returning partial results.
	plan := fault.NewPlan(fault.PlanConfig{Seed: 3, GPRPermanent: 400})

	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := reg.Counter("s4e_fault_done_total", "")
	go func() {
		for done.Value() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	start := time.Now()
	res, err := fault.CampaignContext(ctx, tg, plan, fault.Options{Workers: 2, Metrics: reg})
	elapsed := time.Since(start)
	if res == nil {
		t.Fatalf("cancelled campaign returned no results (err %v)", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("campaign error %v, want context.Canceled in the join", err)
	}
	classified := res.Total - res.ByOutcome[fault.Errored]
	if classified == 0 {
		t.Error("no mutant classified before cancellation")
	}
	if res.ByOutcome[fault.Errored] == 0 {
		t.Error("campaign ran to completion despite cancellation")
	}
	if len(res.Details) != len(plan.Faults) {
		t.Errorf("Details covers %d of %d slots", len(res.Details), len(plan.Faults))
	}
	// Promptness: the return must not be proportional to the full plan.
	// Each worker finishes at most the mutant it is on, so even on a
	// slow host a few seconds is generous against the minutes a full
	// 400-mutant stuck-at plan would take.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled campaign took %v", elapsed)
	}
}

// TestCampaignDeadline exercises the same path through a context
// deadline instead of an explicit cancel.
func TestCampaignDeadline(t *testing.T) {
	tg, _ := target(t, "pid")
	plan := fault.NewPlan(fault.PlanConfig{Seed: 4, GPRPermanent: 400})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := fault.CampaignContext(ctx, tg, plan, fault.Options{Workers: 2})
	if res == nil {
		t.Fatalf("deadline campaign returned no results (err %v)", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("campaign error %v, want context.DeadlineExceeded in the join", err)
	}
}

// TestPrepareReuse runs the golden once via Prepare and feeds it (plus
// the shared pool) into two campaigns; both must classify bit-identically
// to a self-contained campaign over the same plan — the reuse path a
// long-running service takes across jobs for the same binary.
func TestPrepareReuse(t *testing.T) {
	tg, _ := target(t, "xtea")
	g, pool, err := fault.Prepare(tg)
	if err != nil {
		t.Fatal(err)
	}
	if pool == nil || pool.Size() == 0 {
		t.Fatal("Prepare built no shared pool for a clean golden run")
	}
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	plan := fault.NewPlan(fault.PlanConfig{
		Seed: 5, GPRTransient: 40, MemPermanent: 10, CodeBitflip: 10,
		GoldenInsts: g.Insts,
		CodeStart:   vp.RAMBase, CodeEnd: end,
		DataStart: vp.RAMBase, DataEnd: end,
	})
	ref, err := fault.Campaign(tg, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := fault.CampaignOpt(tg, plan, fault.Options{
			Workers: 2, Golden: g, Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Details {
			if res.Details[i] != ref.Details[i] {
				t.Fatalf("run %d mutant %d: %v with reused golden/pool, want %v",
					run, i, res.Details[i], ref.Details[i])
			}
		}
	}
}
