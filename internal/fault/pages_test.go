package fault_test

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vp"
)

// TestCampaignDirtyPagesDifferential proves the page-granular restore is
// architecturally invisible: for every engine, pool on and off, a
// campaign with dirty-page tracking and one with the single-watermark
// baseline (Target.NoDirtyPages) classify every mutant identically, bit
// for bit. The mixed plan includes stuck-at faults, which run on the
// Step engine inside the campaign, so all four engines cross the
// differential.
func TestCampaignDirtyPagesDifferential(t *testing.T) {
	tg, _ := target(t, "crc32")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         12,
		GPRTransient: 30,
		GPRPermanent: 10,
		MemPermanent: 20,
		CodeBitflip:  30,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase,
		CodeEnd:      end,
		DataStart:    vp.RAMBase,
		DataEnd:      end,
	})

	for _, eng := range []struct {
		name   string
		engine emu.Engine
	}{
		{"threaded", emu.EngineThreaded},
		{"switch", emu.EngineSwitch},
		{"superblock", emu.EngineSuperblock},
	} {
		for _, noPool := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/pool-%t", eng.name, !noPool), func(t *testing.T) {
				run := func(noPages bool) (*fault.Results, *obs.Registry) {
					etg := *tg
					etg.Engine = eng.engine
					etg.NoDirtyPages = noPages
					reg := obs.NewRegistry()
					res, err := fault.CampaignOpt(&etg, plan, fault.Options{
						Workers:      2,
						NoSharedPool: noPool,
						Metrics:      reg,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, reg
				}
				paged, preg := run(false)
				baseline, breg := run(true)

				if len(paged.Details) != len(baseline.Details) {
					t.Fatalf("result sizes differ: %d vs %d", len(paged.Details), len(baseline.Details))
				}
				for i := range paged.Details {
					if paged.Details[i] != baseline.Details[i] {
						t.Errorf("mutant %d (%v): pages=%v watermark=%v",
							i, plan.Faults[i], paged.Details[i], baseline.Details[i])
					}
				}

				// Both arms restored once per mutant and accounted it.
				// (Byte totals are NOT compared here: a worker's last
				// mutant is never rewound, so which mutant escapes
				// accounting depends on work distribution; the
				// per-restore pages<=watermark ordering is asserted
				// deterministically in internal/vp's scatter tests.)
				pr := preg.Counter(vp.MetricRestores, "").Value()
				br := breg.Counter(vp.MetricRestores, "").Value()
				if pr == 0 || pr != br {
					t.Fatalf("restores: pages=%d watermark=%d", pr, br)
				}
				if preg.Counter(vp.MetricRestoreBytesTotal, "").Value() == 0 {
					t.Error("paged campaign accounted no restore bytes")
				}
			})
		}
	}
}
