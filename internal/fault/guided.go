package fault

import (
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/decode"
	"repro/internal/emu"
	"repro/internal/isa"
)

// extent records the address range of executed instructions.
type extent struct {
	lo, hi uint32
}

func (e *extent) Name() string { return "fault-extent" }

func (e *extent) OnInsnExec(pc uint32, in decode.Inst) {
	if pc < e.lo {
		e.lo = pc
	}
	if end := pc + uint32(in.Size); end > e.hi {
		e.hi = end
	}
}

// GuidedPlanConfig derives a coverage-guided fault plan from an
// instrumented golden run, the MBMV'20 flow: register faults target only
// registers the binary actually accesses, and code faults target only
// instructions that actually execute — dedicated mutant sets instead of
// blind sampling.
func GuidedPlanConfig(t *Target, seed int64, perModel int) (PlanConfig, *Golden, error) {
	p, err := t.newPlatform()
	if err != nil {
		return PlanConfig{}, nil, err
	}
	cov := cover.New(isa.RV32Full)
	ext := &extent{lo: ^uint32(0)}
	if err := p.Machine.Hooks.Register(cov); err != nil {
		return PlanConfig{}, nil, err
	}
	if err := p.Machine.Hooks.Register(ext); err != nil {
		return PlanConfig{}, nil, err
	}
	stop := p.Run(t.Budget)
	if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
		return PlanConfig{}, nil, fmt.Errorf("fault: guided golden run ended with %v", stop)
	}
	golden := &Golden{Stop: stop, Output: p.Output(), Insts: p.Machine.Hart.Instret}

	var used []isa.Reg
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if cov.GPR[r] > 0 {
			used = append(used, r)
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })

	imageEnd := t.Program.Org + uint32(len(t.Program.Bytes))
	cfg := PlanConfig{
		Seed:         seed,
		GPRTransient: perModel,
		GPRPermanent: perModel / 2,
		MemPermanent: perModel / 2,
		CodeBitflip:  perModel,
		GoldenInsts:  golden.Insts,
		CodeStart:    ext.lo,
		CodeEnd:      ext.hi,
		DataStart:    ext.hi,
		DataEnd:      imageEnd,
		UsedRegs:     used,
	}
	if cfg.DataStart >= cfg.DataEnd {
		// No trailing data section: fall back to the whole image.
		cfg.DataStart, cfg.DataEnd = t.Program.Org, imageEnd
		cfg.MemPermanent = 0
	}
	return cfg, golden, nil
}
