package fault_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vp"
)

// stressProg is a small down-counting loop: long enough that an early
// transient has somewhere to land, short enough that hung mutants burn
// only the small budget below.
const stressProg = `
_start:
	li a1, 400
loop:	addi a1, a1, -1
	bnez a1, loop
	li a0, 42
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`

func stressTarget(t *testing.T) *fault.Target {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+stressProg, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	return &fault.Target{Program: prog, Budget: 5000}
}

// stressPlan mixes deterministic outcomes: erroring mutants (memory
// faults aimed outside RAM), hanging mutants (bit 30 flipped into the
// loop counter turns a 400-count loop into a 2^30 one), and masked
// mutants (flips into the hardwired x0).
func stressPlan(nErr, nHang, nMask int) (fault.Plan, int) {
	var p fault.Plan
	for i := 0; i < nErr; i++ {
		// Addr 0 is far below RAMBase; the offset wraps outside RAM.
		p.Faults = append(p.Faults, fault.Fault{Model: fault.MemPermanent, Addr: uint32(4 * i), Bit: 0})
	}
	for i := 0; i < nHang; i++ {
		p.Faults = append(p.Faults, fault.Fault{
			Model: fault.GPRTransient, Reg: isa.A1, Bit: 30, Trigger: uint64(40 + i),
		})
	}
	for i := 0; i < nMask; i++ {
		p.Faults = append(p.Faults, fault.Fault{
			Model: fault.GPRTransient, Reg: 0, Bit: uint8(i % 32), Trigger: uint64(10 + i),
		})
	}
	return p, nErr + nHang + nMask
}

// TestCampaignPartialResults is the regression test for the campaign
// discarding every completed classification when any mutant errors: the
// erroring mutants must come back as Errored alongside the joined
// error, with every other mutant still classified.
func TestCampaignPartialResults(t *testing.T) {
	tg := stressTarget(t)
	plan, total := stressPlan(3, 2, 4)

	var baseline []fault.Outcome
	for workers := 1; workers <= 8; workers++ {
		res, err := fault.Campaign(tg, plan, workers)
		if res == nil {
			t.Fatalf("workers=%d: partial results discarded (res == nil)", workers)
		}
		if err == nil || !strings.Contains(err.Error(), "outside RAM") {
			t.Fatalf("workers=%d: want joined outside-RAM error, got %v", workers, err)
		}
		if res.Total != total || len(res.Details) != total {
			t.Fatalf("workers=%d: total %d details %d, want %d", workers, res.Total, len(res.Details), total)
		}
		sum := 0
		for _, n := range res.ByOutcome {
			sum += n
		}
		if sum != total {
			t.Errorf("workers=%d: outcome sum %d != total %d (%v)", workers, sum, total, res.ByOutcome)
		}
		if got := res.ByOutcome[fault.Errored]; got != 3 {
			t.Errorf("workers=%d: errored %d, want 3", workers, got)
		}
		if got := res.ByOutcome[fault.Hung]; got != 2 {
			t.Errorf("workers=%d: hung %d, want 2 (%v)", workers, got, res.ByOutcome)
		}
		if got := res.ByOutcome[fault.Masked]; got != 4 {
			t.Errorf("workers=%d: masked %d, want 4 (%v)", workers, got, res.ByOutcome)
		}
		if res.Errored() != res.ByOutcome[fault.Errored] {
			t.Errorf("workers=%d: Errored() disagrees with ByOutcome", workers)
		}
		if baseline == nil {
			baseline = res.Details
		} else {
			for i := range baseline {
				if res.Details[i] != baseline[i] {
					t.Fatalf("workers=%d: mutant %d classified %v, 1 worker said %v",
						workers, i, res.Details[i], baseline[i])
				}
			}
		}
		// The multi-error case must join every failure, not just the first.
		if n := strings.Count(err.Error(), "outside RAM"); n != 3 {
			t.Errorf("workers=%d: joined error mentions %d failures, want 3:\n%v", workers, n, err)
		}
	}
}

// TestCampaignObservability drives the full Options surface: live
// progress lines, campaign metrics, trace events, and worker engine
// stats folded into the registry.
func TestCampaignObservability(t *testing.T) {
	tg := stressTarget(t)
	plan, total := stressPlan(1, 1, 6)

	reg := obs.NewRegistry()
	tr := obs.NewTrace(64, nil)
	var progress bytes.Buffer
	res, err := fault.CampaignOpt(tg, plan, fault.Options{
		Workers:       4,
		Metrics:       reg,
		Trace:         tr,
		Progress:      &progress,
		ProgressEvery: time.Millisecond,
	})
	if res == nil {
		t.Fatalf("no results: %v", err)
	}
	if err == nil {
		t.Fatal("want the erroring mutant surfaced")
	}
	if res.Duration <= 0 {
		t.Error("campaign duration not recorded")
	}

	if got := reg.Counter("s4e_fault_done_total", "").Value(); got != uint64(total) {
		t.Errorf("done counter %d, want %d", got, total)
	}
	if got := reg.Counter(`s4e_fault_mutants_total{outcome="errored"}`, "").Value(); got != 1 {
		t.Errorf("errored counter %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`s4e_fault_mutants_total{outcome="masked"}`,
		"s4e_fault_workers 4",
		"s4e_fault_mutants_per_sec",
		vp.MetricTBsCompiled, // worker engine stats recorded
		vp.MetricJumpCacheHitRate,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q:\n%s", want, out)
		}
	}

	// The final progress line reflects the completed campaign.
	lines := strings.Split(strings.TrimSpace(progress.String()), "\n")
	last := lines[len(lines)-1]
	for _, want := range []string{"8/8 mutants", "(100.0%)", "errored=1", "hung=1", "masked=6"} {
		if !strings.Contains(last, want) {
			t.Errorf("final progress line missing %q: %q", want, last)
		}
	}

	events := tr.Events()
	var names []string
	for _, e := range events {
		names = append(names, e.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "campaign-start") || !strings.Contains(joined, "campaign-end") {
		t.Errorf("trace missing campaign framing: %v", names)
	}
	if n := strings.Count(joined, "mutant"); n != total {
		t.Errorf("trace has %d mutant events, want %d", n, total)
	}
}

// TestCampaignGoldenFailure pins the one case where no partial results
// exist: if the fault-free golden run itself cannot execute, there is
// nothing to classify against and the campaign returns nil with the
// error.
func TestCampaignGoldenFailure(t *testing.T) {
	tg := stressTarget(t)
	bad := *tg
	bad.RAMSize = 16 // cannot hold the image
	plan, _ := stressPlan(0, 0, 3)
	res, err := fault.Campaign(&bad, plan, 2)
	if err == nil {
		t.Fatal("want a golden-run failure")
	}
	if res != nil {
		t.Fatalf("no golden reference, so no classifications: got %+v", res)
	}
}
