package fault_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// isrTarget assembles an interrupt demonstrator into a campaign target.
func isrTarget(t *testing.T, name string, latency uint64) (*fault.Target, workloads.Workload) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok || w.Handler == "" {
		t.Fatalf("interrupt workload %s missing", name)
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	return &fault.Target{
		Program:       prog,
		Budget:        w.Budget,
		Profile:       timing.EdgeSmall(),
		Sensor:        w.Sensor,
		Stream:        w.Stream,
		UARTIn:        w.UARTIn,
		LatencyBudget: latency,
	}, w
}

// TestISRRegion pins the handler-region extraction: the region starts
// at the handler symbol and covers its mret.
func TestISRRegion(t *testing.T) {
	w, _ := workloads.ByName("pid_timer")
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	start, end, err := fault.ISRRegion(prog, w.Handler)
	if err != nil {
		t.Fatal(err)
	}
	if start != prog.Symbols["handler"] {
		t.Errorf("region starts at 0x%08x, want handler 0x%08x", start, prog.Symbols["handler"])
	}
	if end <= start || end > prog.Org+uint32(len(prog.Bytes)) {
		t.Errorf("region end 0x%08x outside program", end)
	}
	if _, _, err := fault.ISRRegion(prog, "nosuch"); err == nil {
		t.Error("missing handler symbol must fail")
	}
}

// isrPlan builds a deterministic ISR-targeted plan for a target.
func isrPlan(t *testing.T, tgt *fault.Target, w workloads.Workload, g *fault.Golden) fault.Plan {
	t.Helper()
	plan, err := fault.NewISRPlan(tgt.Program, w.Handler, fault.ISRPlanConfig{
		Seed:         42,
		GPRTransient: 12,
		GPRPermanent: 4,
		MemPermanent: 8,
		CodeBitflip:  8,
		GoldenInsts:  g.Insts,
		StackTop:     tgt.StackTop(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Faults) != 32 {
		t.Fatalf("plan has %d faults, want 32", len(plan.Faults))
	}
	return plan
}

// TestISRCampaignEngineIdentity runs the same ISR-targeted campaign,
// latency classification enabled, on every translated engine with the
// pool on and off: the per-mutant outcome vector must be bit-identical.
func TestISRCampaignEngineIdentity(t *testing.T) {
	for _, name := range []string{"pid_timer", "dma_stream"} {
		t.Run(name, func(t *testing.T) {
			var ref []fault.Outcome
			for _, eng := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
				for _, noPool := range []bool{false, true} {
					tgt, w := isrTarget(t, name, 3000)
					tgt.Engine = eng
					g, err := fault.RunGolden(tgt)
					if err != nil {
						t.Fatal(err)
					}
					plan := isrPlan(t, tgt, w, g)
					res, err := fault.CampaignOpt(tgt, plan, fault.Options{
						Workers:      2,
						NoSharedPool: noPool,
					})
					if err != nil {
						t.Fatalf("%v pool=%v: %v", eng, !noPool, err)
					}
					if ref == nil {
						ref = res.Details
						continue
					}
					for i := range res.Details {
						if res.Details[i] != ref[i] {
							t.Errorf("%v pool=%v: mutant %d = %v, want %v (%v)",
								eng, !noPool, i, res.Details[i], ref[i], plan.Faults[i])
						}
					}
				}
			}
		})
	}
}

// TestLatencyViolation pins the reclassification path: with an
// impossible 1-cycle latency budget, every mutant that would classify
// Masked or SDC must surface as LatencyViol instead — the interrupt
// demonstrators always observe a positive service latency.
func TestLatencyViolation(t *testing.T) {
	tgt, w := isrTarget(t, "pid_timer", 1)
	g, err := fault.RunGolden(tgt)
	if err != nil {
		t.Fatal(err)
	}
	plan := isrPlan(t, tgt, w, g)
	res, err := fault.Campaign(tgt, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ByOutcome[fault.Masked] != 0 || res.ByOutcome[fault.SDC] != 0 {
		t.Errorf("masked=%d sdc=%d, want all benign runs reclassified",
			res.ByOutcome[fault.Masked], res.ByOutcome[fault.SDC])
	}
	if res.ByOutcome[fault.LatencyViol] == 0 {
		t.Error("no latency violations under a 1-cycle budget")
	}

	// The same campaign without a budget keeps the value classification.
	tgt2, w2 := isrTarget(t, "pid_timer", 0)
	g2, err := fault.RunGolden(tgt2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := fault.Campaign(tgt2, isrPlan(t, tgt2, w2, g2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ByOutcome[fault.LatencyViol] != 0 {
		t.Errorf("latency violations without a budget: %d", res2.ByOutcome[fault.LatencyViol])
	}
}
