package fault

// ISR-targeted fault planning: campaigns over reactive firmware want
// their injections concentrated where a fault is most dangerous — the
// interrupt service routine's code and the stack frame it spills the
// interrupted context into — rather than diluted over the whole image.

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/vp"
)

// StackTop returns the initial stack pointer of the target's platform
// (the top of its RAM), the anchor for ISR stack-frame fault windows.
func (t *Target) StackTop() uint32 {
	return vp.RAMBase + t.ramSize()
}

// ISRRegion computes the code range [start, end) covered by the
// interrupt handler rooted at the given symbol: every block reachable
// from the handler entry, which for the demonstrators is the ISR body
// through its mret.
func ISRRegion(prog *asm.Program, handler string) (uint32, uint32, error) {
	entry, ok := prog.Symbols[handler]
	if !ok {
		return 0, 0, fmt.Errorf("fault: handler symbol %q not found", handler)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, entry)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: handler cfg: %w", err)
	}
	start, end := entry, entry
	for _, addr := range g.Order {
		b := g.Blocks[addr]
		if b == nil {
			continue
		}
		if addr < start {
			start = addr
		}
		if b.End() > end {
			end = b.End()
		}
	}
	if end <= start {
		return 0, 0, fmt.Errorf("fault: empty handler region at 0x%08x", entry)
	}
	return start, end, nil
}

// ISRPlanConfig controls ISR-targeted fault-list generation. Counts and
// seed mirror PlanConfig; the injection regions are derived from the
// handler instead of being given.
type ISRPlanConfig struct {
	Seed                                                  int64
	GPRTransient, GPRPermanent, MemPermanent, CodeBitflip int
	// GoldenInsts bounds transient triggers, as in PlanConfig.
	GoldenInsts uint64
	// StackTop anchors the stack-frame window; use Target.StackTop().
	StackTop uint32
	// StackBytes is the window below StackTop covering the ISR's spill
	// frame and the interrupted context (default 64).
	StackBytes uint32
}

// NewISRPlan generates a deterministic fault list concentrated on the
// handler's code range and the ISR stack frame. Code bit flips land
// only in handler instructions; memory faults land only in the stack
// window the handler spills into.
func NewISRPlan(prog *asm.Program, handler string, conf ISRPlanConfig) (Plan, error) {
	start, end, err := ISRRegion(prog, handler)
	if err != nil {
		return Plan{}, err
	}
	stackBytes := conf.StackBytes
	if stackBytes == 0 {
		stackBytes = 64
	}
	if conf.StackTop == 0 {
		return Plan{}, fmt.Errorf("fault: ISR plan needs StackTop (use Target.StackTop)")
	}
	return NewPlan(PlanConfig{
		Seed:         conf.Seed,
		GPRTransient: conf.GPRTransient,
		GPRPermanent: conf.GPRPermanent,
		MemPermanent: conf.MemPermanent,
		CodeBitflip:  conf.CodeBitflip,
		GoldenInsts:  conf.GoldenInsts,
		CodeStart:    start,
		CodeEnd:      end,
		DataStart:    conf.StackTop - stackBytes,
		DataEnd:      conf.StackTop,
	}), nil
}
