package fault_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// target assembles a workload into a fault-campaign target.
func target(t *testing.T, name string) (*fault.Target, workloads.Workload) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	return &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor}, w
}

func TestGoldenRun(t *testing.T) {
	tg, w := target(t, "xtea")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stop.Code != w.Expect {
		t.Errorf("golden checksum 0x%x, want 0x%x", g.Stop.Code, w.Expect)
	}
}

// A campaign with zero faults must classify nothing, and injecting the
// null fault set must never disturb the golden run.
func TestNoFaultIsMasked(t *testing.T) {
	tg, _ := target(t, "xtea")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in x0: architecturally absorbed, must be masked.
	out, err := fault.Inject(tg, g, fault.Fault{Model: fault.GPRTransient, Reg: 0, Bit: 5, Trigger: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out != fault.Masked {
		t.Errorf("x0 flip classified %v, want masked", out)
	}
}

func TestTransientAfterCompletionIsMasked(t *testing.T) {
	tg, _ := target(t, "pid")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	// Trigger far beyond program completion: flip never lands.
	out, err := fault.Inject(tg, g, fault.Fault{
		Model: fault.GPRTransient, Reg: isa.A0, Bit: 3, Trigger: tg.Budget + 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != fault.Masked {
		t.Errorf("late trigger classified %v", out)
	}
}

// Flipping the accumulator register right before the exit store must be
// silent data corruption.
func TestAccumulatorFlipIsSDC(t *testing.T) {
	tg, _ := target(t, "popcount_base")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	// a0 holds the checksum near the end; flip shortly before exit.
	out, err := fault.Inject(tg, g, fault.Fault{
		Model: fault.GPRTransient, Reg: isa.A0, Bit: 0, Trigger: g.Insts - 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != fault.SDC {
		t.Errorf("checksum flip classified %v, want sdc", out)
	}
}

func TestCodeBitflipOutcomes(t *testing.T) {
	tg, _ := target(t, "xtea")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bit 0 of the first instruction word: turns a 32-bit encoding
	// into a compressed/invalid one — must not be masked silently as a
	// crash of the harness; any classification is fine, no error.
	if _, err := fault.Inject(tg, g, fault.Fault{Model: fault.CodeBitflip, Addr: vp.RAMBase, Bit: 0}); err != nil {
		t.Fatal(err)
	}
	// Flip a high immediate bit of an ALU instruction: plausible SDC.
	outcomes := map[fault.Outcome]int{}
	for bit := uint8(0); bit < 32; bit++ {
		out, err := fault.Inject(tg, g, fault.Fault{Model: fault.CodeBitflip, Addr: vp.RAMBase + 8, Bit: bit})
		if err != nil {
			t.Fatal(err)
		}
		outcomes[out]++
	}
	if len(outcomes) < 2 {
		t.Errorf("32 single-bit code flips produced a single outcome class: %v", outcomes)
	}
}

func TestMemPermanentFault(t *testing.T) {
	tg, w := target(t, "crc32")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	buf, ok := tg.Program.Symbol("buf")
	if !ok {
		t.Fatal("buf symbol missing")
	}
	// The CRC input buffer is filled by the program itself, so a
	// pre-run memory fault there is overwritten: masked.
	out, err := fault.Inject(tg, g, fault.Fault{Model: fault.MemPermanent, Addr: buf, Bit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if out != fault.Masked {
		t.Errorf("overwritten data fault classified %v", out)
	}
	_ = w
}

func TestCampaignAggregation(t *testing.T) {
	tg, _ := target(t, "pid")
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         1,
		GPRTransient: 40,
		CodeBitflip:  20,
		GoldenInsts:  500,
		CodeStart:    vp.RAMBase,
		CodeEnd:      vp.RAMBase + 128,
	})
	if len(plan.Faults) != 60 {
		t.Fatalf("plan has %d faults", len(plan.Faults))
	}
	res, err := fault.Campaign(tg, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 60 {
		t.Errorf("total = %d", res.Total)
	}
	sum := 0
	for _, n := range res.ByOutcome {
		sum += n
	}
	if sum != 60 {
		t.Errorf("outcome sum = %d", sum)
	}
	if res.ByOutcome[fault.Masked] == 0 {
		t.Error("expected some masked faults")
	}
	if s := res.String(); s == "" {
		t.Error("empty report")
	}
}

// Campaigns must be deterministic regardless of worker count.
func TestCampaignParallelDeterminism(t *testing.T) {
	tg, _ := target(t, "parity_base")
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         7,
		GPRTransient: 30,
		GoldenInsts:  2000,
	})
	r1, err := fault.Campaign(tg, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := fault.Campaign(tg, plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Details {
		if r1.Details[i] != r8.Details[i] {
			t.Fatalf("fault %d: %v (1 worker) vs %v (8 workers)", i, r1.Details[i], r8.Details[i])
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := fault.PlanConfig{Seed: 3, GPRTransient: 10, MemPermanent: 5,
		GoldenInsts: 100, DataStart: 0x8000_0100, DataEnd: 0x8000_0200}
	a, b := fault.NewPlan(cfg), fault.NewPlan(cfg)
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("plan lengths differ")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs", i)
		}
	}
	if a.Faults[0].String() == "" {
		t.Error("fault string empty")
	}
}

func TestGPRPermanentStuckAt(t *testing.T) {
	tg, _ := target(t, "xtea")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	// A stuck bit in x0 is architecturally impossible to observe.
	out, err := fault.Inject(tg, g, fault.Fault{Model: fault.GPRPermanent, Reg: 0, Bit: 3, Stuck1: true})
	if err != nil {
		t.Fatal(err)
	}
	if out != fault.Masked {
		t.Errorf("x0 stuck bit classified %v", out)
	}
	// Sticking a low bit of the XTEA state register s0 to 1 must corrupt
	// the cipher output (full diffusion).
	out, err = fault.Inject(tg, g, fault.Fault{Model: fault.GPRPermanent, Reg: isa.S0, Bit: 0, Stuck1: true})
	if err != nil {
		t.Fatal(err)
	}
	if out == fault.Masked {
		t.Error("stuck XTEA state bit was masked")
	}
}

func TestGPRPermanentInPlan(t *testing.T) {
	plan := fault.NewPlan(fault.PlanConfig{Seed: 11, GPRPermanent: 12, GoldenInsts: 10})
	if len(plan.Faults) != 12 {
		t.Fatalf("plan: %d faults", len(plan.Faults))
	}
	for _, f := range plan.Faults {
		if f.Model != fault.GPRPermanent {
			t.Errorf("unexpected model %v", f.Model)
		}
	}
}

func TestGPRPermanentCampaign(t *testing.T) {
	tg, _ := target(t, "pid")
	plan := fault.NewPlan(fault.PlanConfig{Seed: 3, GPRPermanent: 20})
	res, err := fault.Campaign(tg, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 20 {
		t.Errorf("total %d", res.Total)
	}
}

func TestGuidedPlanTargetsUsedState(t *testing.T) {
	tg, _ := target(t, "xtea")
	cfg, g, err := fault.GuidedPlanConfig(tg, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.Insts == 0 {
		t.Fatal("golden run empty")
	}
	if len(cfg.UsedRegs) == 0 || len(cfg.UsedRegs) > 31 {
		t.Errorf("used regs: %v", cfg.UsedRegs)
	}
	// xtea never touches, e.g., s11 or t3; those must be absent.
	for _, r := range cfg.UsedRegs {
		if r == 0 {
			t.Error("x0 in used set")
		}
	}
	if cfg.CodeStart < vp.RAMBase || cfg.CodeEnd <= cfg.CodeStart {
		t.Errorf("code extent: 0x%x..0x%x", cfg.CodeStart, cfg.CodeEnd)
	}
	// The code extent must not include the key/data section it never
	// executes.
	key, _ := tg.Program.Symbol("key")
	if cfg.CodeEnd > key {
		t.Errorf("code extent 0x%x spills past data at 0x%x", cfg.CodeEnd, key)
	}
	plan := fault.NewPlan(cfg)
	if len(plan.Faults) == 0 {
		t.Fatal("empty plan")
	}
	usable := map[isa.Reg]bool{}
	for _, r := range cfg.UsedRegs {
		usable[r] = true
	}
	for _, f := range plan.Faults {
		switch f.Model {
		case fault.GPRTransient, fault.GPRPermanent:
			if !usable[f.Reg] {
				t.Errorf("fault targets unused register %v", f.Reg)
			}
		case fault.CodeBitflip:
			if f.Addr < cfg.CodeStart || f.Addr >= cfg.CodeEnd {
				t.Errorf("code fault outside executed range: 0x%x", f.Addr)
			}
		}
	}
	res, err := fault.Campaign(tg, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != len(plan.Faults) {
		t.Errorf("campaign total %d", res.Total)
	}
}
