package fault

// Interrupt-service latency observation for fault campaigns: a
// trap-watcher-only plugin (no per-instruction hooks, so mutants keep
// their translated-engine speed) that timestamps how long each
// interrupt was pending before its trap was taken. Campaigns over the
// interrupt demonstrators use it to surface faults that leave values
// intact but wreck the response time — LatencyViol.

import (
	"repro/internal/isa"
	"repro/internal/vp"
)

// latencyWatcher measures per-trap pending time on one platform. The
// assert instant is recovered from the interrupting device itself:
// mtimecmp for the timer, the DMA completion cycle or the PLIC test
// trigger for external lines. Sources without a defined assert instant
// (the UART's level line, pre-fed before reset) are skipped rather
// than guessed.
type latencyWatcher struct {
	p     *vp.Platform
	worst uint64
}

func (l *latencyWatcher) Name() string { return "fault-latency" }

// Worst returns the longest observed pending-to-trap latency.
func (l *latencyWatcher) Worst() uint64 { return l.worst }

func (l *latencyWatcher) reset() { l.worst = 0 }

// OnTrap implements plugin.TrapWatcher.
func (l *latencyWatcher) OnTrap(cause, tval, pc uint32) {
	cycle := l.p.Machine.Hart.Cycle
	var lat uint64
	switch cause {
	case 1<<31 | isa.IntMachineTimer:
		cmp := l.p.Clint.Snapshot().Mtimecmp
		if cycle >= cmp {
			lat = cycle - cmp
		}
	case 1<<31 | isa.IntMachineExternal:
		// Attribute to the earliest still-pending line with a defined
		// assert cycle.
		const noAssert = ^uint64(0)
		at := uint64(noAssert)
		if l.p.DMA.IRQ() {
			at = l.p.DMA.AssertCycle()
		}
		if trig, ok := l.p.Plic.TriggerCycle(); ok && trig < at {
			at = trig
		}
		if at != noAssert && cycle >= at {
			lat = cycle - at
		}
	}
	if lat > l.worst {
		l.worst = lat
	}
}

// latencyOutcome folds an observed worst latency into a value-based
// classification: benign-looking runs that blew the budget become
// LatencyViol; runs that already failed keep their harder verdict.
func latencyOutcome(out Outcome, worst, budget uint64) Outcome {
	if budget == 0 || worst <= budget {
		return out
	}
	if out == Masked || out == SDC {
		return LatencyViol
	}
	return out
}
