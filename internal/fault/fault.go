// Package fault implements the QEMU-based fault effect analysis of the
// ecosystem: automatic generation of bit-flip faults (transient register
// flips, permanent memory and instruction-word corruption), mutant
// execution on the virtual platform, and classification of each outcome
// against a golden run — the qualification flow safety standards like
// ISO 26262 require for embedded software.
package fault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/timing"
	"repro/internal/vp"
)

// Model is the fault model of one injection.
type Model uint8

const (
	// GPRTransient flips one bit of one register once, after a trigger
	// number of retired instructions (an SEU in the register file).
	GPRTransient Model = iota
	// GPRPermanent forces one bit of one register to a stuck value for
	// the whole run (a defective register-file cell). Simulated by
	// re-applying the stuck value before every instruction.
	GPRPermanent
	// MemPermanent flips one bit in RAM before execution (a stuck cell
	// in the data section).
	MemPermanent
	// CodeBitflip flips one bit of one instruction word before
	// execution (a corrupted fetch path / flash cell).
	CodeBitflip
)

func (m Model) String() string {
	switch m {
	case GPRTransient:
		return "gpr-transient"
	case GPRPermanent:
		return "gpr-permanent"
	case MemPermanent:
		return "mem-permanent"
	case CodeBitflip:
		return "code-bitflip"
	}
	return "model?"
}

// Fault is one concrete injection.
type Fault struct {
	Model   Model
	Reg     isa.Reg // GPRTransient / GPRPermanent
	Bit     uint8   // bit index (register/word) or bit-in-byte (memory)
	Stuck1  bool    // GPRPermanent: stuck-at-1 instead of stuck-at-0
	Addr    uint32  // MemPermanent / CodeBitflip target address
	Trigger uint64  // GPRTransient: retired instructions before the flip
}

func (f Fault) String() string {
	switch f.Model {
	case GPRTransient:
		return fmt.Sprintf("%v %s bit %d @ inst %d", f.Model, f.Reg, f.Bit, f.Trigger)
	case GPRPermanent:
		v := 0
		if f.Stuck1 {
			v = 1
		}
		return fmt.Sprintf("%v %s bit %d stuck-at-%d", f.Model, f.Reg, f.Bit, v)
	default:
		return fmt.Sprintf("%v 0x%08x bit %d", f.Model, f.Addr, f.Bit)
	}
}

// Outcome classifies one mutant run.
type Outcome uint8

const (
	// Masked: the run finished normally with the golden result.
	Masked Outcome = iota
	// SDC: silent data corruption — finished normally, wrong result.
	SDC
	// Trapped: the fault surfaced as a trap (illegal instruction,
	// access fault, ...) or unexpected ebreak.
	Trapped
	// Hung: the instruction budget expired (livelock/runaway).
	Hung
	// Errored: the harness could not run the mutant (injection address
	// outside RAM, platform construction failure). Not a guest
	// classification — an errored slot says nothing about the fault's
	// architectural effect.
	Errored
	// LatencyViol: the run finished with a result that would classify
	// Masked or SDC, but an interrupt-service latency exceeded the
	// target's budget — the failure mode a purely value-based
	// classification misses on reactive firmware. Appended after Errored
	// so existing serialized outcomes keep their values.
	LatencyViol
)

// numOutcomes sizes per-outcome arrays; keep in step with the constants.
const numOutcomes = 6

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Trapped:
		return "trapped"
	case Hung:
		return "hung"
	case Errored:
		return "errored"
	case LatencyViol:
		return "latency-viol"
	}
	return "outcome?"
}

// Golden is the reference behaviour of the fault-free program.
type Golden struct {
	Stop   emu.StopInfo
	Output string
	Insts  uint64 // retired instructions of the fault-free run
}

// Target describes the program under campaign.
type Target struct {
	Program *asm.Program
	Budget  uint64
	Profile *timing.Profile
	Sensor  []int16
	Stream  []int16 // DMA sensor stream (interrupt demonstrators)
	UARTIn  []byte  // pre-fed UART receive bytes

	// LatencyBudget, when non-zero, bounds the cycles any interrupt may
	// stay pending before its trap is taken. A mutant whose run would
	// classify Masked or SDC but exceeded the budget is reclassified
	// LatencyViol — the silent failure mode of reactive firmware, where
	// a fault perturbs timing without corrupting values. The budget is
	// checked against the fault-free behaviour by the caller (a golden
	// run violating it makes every mutant a violation).
	LatencyBudget uint64

	// Engine selects the execution engine for the golden run and every
	// mutant (the zero value is the threaded-code engine, mirroring
	// emu.Machine.Engine), so campaigns can be run and compared on both
	// engines.
	Engine emu.Engine

	// RAMSize bounds the platform memory; 0 picks a minimal size
	// covering the image plus stack headroom, which keeps per-worker
	// platforms and snapshots cheap.
	RAMSize uint32

	// NoDirtyPages disables page-granular dirty tracking on every
	// campaign platform (emu.Machine.DisableDirtyPages), restoring the
	// single-watermark rewind and validity behaviour — the baseline arm
	// of the restore-cost ablation (bench E12) and the pages-on/off
	// differential tests.
	NoDirtyPages bool
}

func (t *Target) ramSize() uint32 {
	if t.RAMSize != 0 {
		return t.RAMSize
	}
	need := uint32(len(t.Program.Bytes)) + 64<<10
	const minRAM = 1 << 20
	if need < minRAM {
		return minRAM
	}
	return need
}

// newPlatform builds a fresh loaded platform for one run.
func (t *Target) newPlatform() (*vp.Platform, error) {
	p, err := vp.New(vp.Config{
		Profile: t.Profile,
		Sensor:  t.Sensor,
		Stream:  t.Stream,
		UARTIn:  t.UARTIn,
		RAMSize: t.ramSize(),
	})
	if err != nil {
		return nil, err
	}
	p.Machine.Engine = t.Engine
	// Before the load: the dirty-page bitmap is sized when the machine
	// first touches RAM, which the program load does.
	p.Machine.DisableDirtyPages = t.NoDirtyPages
	if err := p.LoadProgram(t.Program); err != nil {
		return nil, err
	}
	return p, nil
}

// injector owns one reusable platform plus its post-load snapshot; each
// campaign worker holds one, rewinding between mutants instead of
// rebuilding the platform (the throughput mechanism of the campaign
// runner). The rewind is RestoreReuse — zero RAM and re-copy the program
// image rather than a full snapshot-RAM copy — and it keeps the
// machine's translation cache across mutants whenever the previous run
// left the code bytes untouched, so the block working set is translated
// once per worker, not once per mutant. With a shared translation pool
// attached (the campaign default), even that per-worker warmup — and
// every re-warm after a code-mutating fault flushed the private cache —
// is mostly eliminated: blocks are adopted from the golden run's
// compiled pool, and only mutated ranges take private overlay compiles.
type injector struct {
	t    *Target
	p    *vp.Platform
	base *vp.Snapshot

	// lat observes interrupt-service latency when the target sets a
	// LatencyBudget; nil otherwise (no hook overhead).
	lat *latencyWatcher

	// dirtyCode marks that the previous mutant corrupted bytes that may
	// back cached translations (a fault flip, or a store into translated
	// code), forcing a cache flush on the next rewind.
	dirtyCode bool
}

// newInjector builds a worker injector; pool, when non-nil, is the
// golden run's shared translation pool to warm-start from (attached
// after the program load, so the machine's image matches the pool's).
func newInjector(t *Target, pool *emu.TBPool) (*injector, error) {
	p, err := t.newPlatform()
	if err != nil {
		return nil, err
	}
	p.Machine.AttachTBPool(pool)
	inj := &injector{t: t, p: p, base: p.Snapshot()}
	if t.LatencyBudget > 0 {
		inj.lat = &latencyWatcher{p: p}
		if err := p.Machine.Hooks.Register(inj.lat); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// reset rewinds the injector's platform for the next mutant.
func (inj *injector) reset() {
	inj.p.RestoreReuse(inj.base, inj.t.Program)
	if inj.lat != nil {
		inj.lat.reset()
	}
	if inj.dirtyCode {
		inj.p.Machine.InvalidateTBs()
		inj.dirtyCode = false
	}
}

// finish folds the observed interrupt latency into a mutant's
// value-based classification.
func (inj *injector) finish(out Outcome) Outcome {
	if inj.lat == nil {
		return out
	}
	return latencyOutcome(out, inj.lat.Worst(), inj.t.LatencyBudget)
}

// RunGolden executes the fault-free program and records its behaviour.
func RunGolden(t *Target) (*Golden, error) {
	g, _, err := runGolden(t)
	return g, err
}

// runGolden is RunGolden keeping the platform alive, so the campaign can
// freeze the golden run's compiled translation state into a shared pool.
func runGolden(t *Target) (*Golden, *vp.Platform, error) {
	p, err := t.newPlatform()
	if err != nil {
		return nil, nil, err
	}
	stop := p.Run(t.Budget)
	if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
		return nil, nil, fmt.Errorf("fault: golden run ended with %v", stop)
	}
	return &Golden{Stop: stop, Output: p.Output(), Insts: p.Machine.Hart.Instret}, p, nil
}

// Inject runs one mutant and classifies it against the golden behaviour.
func Inject(t *Target, g *Golden, f Fault) (Outcome, error) {
	inj, err := newInjector(t, nil)
	if err != nil {
		return 0, err
	}
	return inj.run(g, f)
}

// run executes one mutant on the injector's recycled platform.
func (inj *injector) run(g *Golden, f Fault) (Outcome, error) {
	t := inj.t
	p := inj.p
	inj.reset()
	cw := p.Machine.CodeWrites()
	defer func() {
		// Translations made after a write into translated code (the flip
		// below, or a wild store), or overlapping any pages the run wrote
		// to RAM (a wild jump into freshly written data), do not match
		// the pristine image the next reset restores; flush them then.
		// The page-granular check means scattered data stores bracketing
		// the code region no longer force a flush every mutant.
		if p.Machine.CodeWrites() != cw || p.Machine.CodePagesDirty() {
			inj.dirtyCode = true
		}
	}()
	switch f.Model {
	case MemPermanent, CodeBitflip:
		ram := p.RAM.Bytes()
		off := f.Addr - vp.RAMBase
		if int(off) >= len(ram) {
			return 0, fmt.Errorf("fault: address 0x%08x outside RAM", f.Addr)
		}
		byteAddr := f.Addr + uint32(f.Bit/8)
		ram[off+uint32(f.Bit/8)] ^= 1 << (f.Bit % 8)
		// The flip bypasses the store path, so fold it into the
		// watermark by hand for the next watermark-based restore.
		p.Machine.NoteRAMWrite(byteAddr, 1)
		// Drop only the translations overlapping the flipped byte; this
		// also bumps CodeWrites, so the next reset flushes any blocks
		// translated from the corrupted image.
		p.Machine.InvalidateRange(byteAddr, byteAddr+1)
	}

	if f.Model == GPRPermanent {
		out, err := injectStuck(t, g, f, p)
		if err != nil {
			return out, err
		}
		return inj.finish(out), nil
	}

	var stop emu.StopInfo
	if f.Model == GPRTransient {
		stop = p.Run(f.Trigger)
		if stop.Reason == emu.StopBudget {
			p.Machine.Hart.X[f.Reg] ^= 1 << f.Bit
			if f.Reg == 0 {
				p.Machine.Hart.X[0] = 0 // x0 is hardwired; flip is absorbed
			}
			remaining := uint64(1)
			if t.Budget > f.Trigger {
				remaining = t.Budget - f.Trigger
			}
			stop = p.Run(remaining)
		}
		// Otherwise the program finished before the trigger: the flip
		// never landed and the run is the golden one.
	} else {
		stop = p.Run(t.Budget)
	}

	switch stop.Reason {
	case emu.StopBudget:
		return Hung, nil
	case emu.StopTrap:
		return Trapped, nil
	case emu.StopExit, emu.StopEbreak:
		if stop.Reason == g.Stop.Reason && stop.Code == g.Stop.Code && p.Output() == g.Output {
			return inj.finish(Masked), nil
		}
		if stop.Reason != g.Stop.Reason {
			return Trapped, nil
		}
		return inj.finish(SDC), nil
	}
	return Trapped, nil
}

// injectStuck simulates a stuck register-file bit by re-applying the
// stuck value before every instruction (single-step execution, so the
// classification is exact at the cost of translation-cache speed).
func injectStuck(t *Target, g *Golden, f Fault, p *vp.Platform) (Outcome, error) {
	h := &p.Machine.Hart
	apply := func() {
		if f.Reg == 0 {
			return
		}
		if f.Stuck1 {
			h.X[f.Reg] |= 1 << f.Bit
		} else {
			h.X[f.Reg] &^= 1 << f.Bit
		}
	}
	var stop *emu.StopInfo
	for steps := uint64(0); steps < t.Budget; steps++ {
		apply()
		if stop = p.Machine.Step(); stop != nil {
			break
		}
	}
	if stop == nil {
		return Hung, nil
	}
	switch stop.Reason {
	case emu.StopTrap:
		return Trapped, nil
	case emu.StopExit, emu.StopEbreak:
		if stop.Reason == g.Stop.Reason && stop.Code == g.Stop.Code && p.Output() == g.Output {
			return Masked, nil
		}
		if stop.Reason != g.Stop.Reason {
			return Trapped, nil
		}
		return SDC, nil
	}
	return Trapped, nil
}

// goldenCodeClean reports whether the golden run left its translated
// code bytes bit-identical to the post-load image: no store ever hit
// translated code, and no translation overlaps a page the run wrote.
// Only then do the golden platform's compiled blocks match the pristine
// image every campaign worker boots from.
func goldenCodeClean(p *vp.Platform) bool {
	return p.Machine.CodeWrites() == 0 && !p.Machine.CodePagesDirty()
}

// Plan is a generated fault list.
type Plan struct {
	Faults []Fault
}

// PlanConfig controls fault-list generation.
type PlanConfig struct {
	Seed int64
	// Counts per model.
	GPRTransient, GPRPermanent, MemPermanent, CodeBitflip int
	// GoldenInsts bounds transient triggers (retired instructions of
	// the golden run).
	GoldenInsts uint64
	// CodeRange restricts code bit flips to [Start, End) — typically the
	// program's executed text, a coverage-guided choice.
	CodeStart, CodeEnd uint32
	// DataRange restricts memory faults.
	DataStart, DataEnd uint32
	// UsedRegs restricts register faults to registers the program
	// actually touches (from the coverage analysis); empty means all.
	UsedRegs []isa.Reg
}

// NewPlan generates a deterministic fault list.
func NewPlan(cfg PlanConfig) Plan {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var faults []Fault
	regs := cfg.UsedRegs
	if len(regs) == 0 {
		for r := isa.Reg(1); r < 32; r++ {
			regs = append(regs, r)
		}
	}
	for i := 0; i < cfg.GPRTransient; i++ {
		trig := uint64(1)
		if cfg.GoldenInsts > 1 {
			trig = 1 + uint64(rng.Int63n(int64(cfg.GoldenInsts)))
		}
		faults = append(faults, Fault{
			Model:   GPRTransient,
			Reg:     regs[rng.Intn(len(regs))],
			Bit:     uint8(rng.Intn(32)),
			Trigger: trig,
		})
	}
	for i := 0; i < cfg.GPRPermanent; i++ {
		faults = append(faults, Fault{
			Model:  GPRPermanent,
			Reg:    regs[rng.Intn(len(regs))],
			Bit:    uint8(rng.Intn(32)),
			Stuck1: rng.Intn(2) == 1,
		})
	}
	for i := 0; i < cfg.MemPermanent; i++ {
		span := int64(cfg.DataEnd - cfg.DataStart)
		if span <= 0 {
			break
		}
		faults = append(faults, Fault{
			Model: MemPermanent,
			Addr:  cfg.DataStart + uint32(rng.Int63n(span))&^3,
			Bit:   uint8(rng.Intn(32)),
		})
	}
	for i := 0; i < cfg.CodeBitflip; i++ {
		span := int64(cfg.CodeEnd-cfg.CodeStart) / 4
		if span <= 0 {
			break
		}
		faults = append(faults, Fault{
			Model: CodeBitflip,
			Addr:  cfg.CodeStart + uint32(rng.Int63n(span))*4,
			Bit:   uint8(rng.Intn(32)),
		})
	}
	return Plan{Faults: faults}
}

// Range returns the sub-plan covering Faults[lo:hi) — one contiguous
// shard of a campaign. Mutants are classified independently of each
// other (each run boots from the same golden snapshot), so executing a
// plan as K range shards and merging with MergeShards is bit-identical
// to one unsharded campaign over the full plan. Out-of-range bounds are
// clamped.
func (p Plan) Range(lo, hi int) Plan {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.Faults) {
		hi = len(p.Faults)
	}
	if lo >= hi {
		return Plan{}
	}
	return Plan{Faults: p.Faults[lo:hi]}
}

// MergeShards reassembles per-range campaign results into one Results
// covering the full plan: parts[i] must be the result of running
// plan.Range(offsets[i], offsets[i]+parts[i].Total), and the ranges
// must tile the plan exactly (contiguous, in order, no gaps). Details
// are copied back into plan positions and the classification tables are
// recomputed from them, so the merged result is bit-identical to the
// unsharded campaign's. Duration is the maximum shard duration (shards
// run in parallel; the sum would overstate wall clock).
func MergeShards(plan Plan, offsets []int, parts []*Results) (*Results, error) {
	if len(offsets) != len(parts) {
		return nil, fmt.Errorf("fault: %d offsets for %d shard results", len(offsets), len(parts))
	}
	res := &Results{
		Total:     len(plan.Faults),
		ByOutcome: make(map[Outcome]int),
		ByModel:   make(map[Model]map[Outcome]int),
		Details:   make([]Outcome, len(plan.Faults)),
	}
	next := 0
	for i, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("fault: shard %d result missing", i)
		}
		if offsets[i] != next {
			return nil, fmt.Errorf("fault: shard %d starts at %d, want %d", i, offsets[i], next)
		}
		if offsets[i]+part.Total > len(plan.Faults) {
			return nil, fmt.Errorf("fault: shard %d range [%d,%d) exceeds plan size %d",
				i, offsets[i], offsets[i]+part.Total, len(plan.Faults))
		}
		copy(res.Details[offsets[i]:], part.Details)
		next = offsets[i] + part.Total
		if part.Duration > res.Duration {
			res.Duration = part.Duration
		}
	}
	if next != len(plan.Faults) {
		return nil, fmt.Errorf("fault: shards cover %d of %d mutants", next, len(plan.Faults))
	}
	for i, out := range res.Details {
		res.ByOutcome[out]++
		m := plan.Faults[i].Model
		if res.ByModel[m] == nil {
			res.ByModel[m] = make(map[Outcome]int)
		}
		res.ByModel[m][out]++
	}
	return res, nil
}

// Results aggregates a campaign.
type Results struct {
	Total     int
	ByOutcome map[Outcome]int
	ByModel   map[Model]map[Outcome]int
	// Details pairs each fault with its outcome, in plan order.
	Details []Outcome
	// Duration is the wall-clock time of the mutant runs (golden run
	// excluded).
	Duration time.Duration
}

// Errored reports how many mutants the harness failed to run.
func (r *Results) Errored() int { return r.ByOutcome[Errored] }

// Options configures a campaign run beyond the plan itself. The zero
// value means one worker and no observability.
type Options struct {
	// Workers is the number of parallel mutant runners (<=0 means 1).
	Workers int
	// NoSharedPool disables the shared translation pool: every worker
	// cold-compiles its own private translation cache, the pre-pool
	// behaviour kept for ablation and differential testing. By default
	// (false) the golden run's compiled blocks are frozen into an
	// emu.TBPool that all workers attach, so the code image is compiled
	// once per campaign instead of once per worker (and re-warms after
	// code-mutant flushes come from the pool, not the compiler).
	NoSharedPool bool
	// Metrics, when non-nil, receives campaign counters
	// (s4e_fault_mutants_total{outcome=...}, s4e_fault_done_total,
	// throughput gauges) plus the accumulated engine/bus stats of every
	// worker platform.
	Metrics *obs.Registry
	// Trace, when non-nil, receives campaign-start/mutant/campaign-end
	// events. Per-mutant events serialize on the trace mutex, so only
	// enable it when per-mutant attribution is worth the contention.
	Trace *obs.Trace
	// Progress, when non-nil, receives a live one-line status every
	// ProgressEvery (default 1s) plus a final line at completion.
	Progress      io.Writer
	ProgressEvery time.Duration
	// OnProgress, when non-nil, is called with (mutants done, total) on
	// the same cadence as Progress — every ProgressEvery while the
	// campaign runs, plus once at completion with done==total (unless
	// cancelled). It is invoked from the campaign's progress goroutine;
	// implementations must be safe for that and should return quickly.
	// This is the hook a serving layer uses to stream live campaign
	// progress without parsing the human-readable Progress lines.
	OnProgress func(done, total uint64)
	// Golden, when non-nil, is a previously computed golden reference
	// for this exact target (same program, budget, profile, sensor and
	// engine); the campaign skips its own golden run and uses it
	// directly. Pool, when additionally non-nil, is the matching shared
	// translation pool (from Prepare) the workers warm-start from. A
	// long-running service uses the pair to run the golden once per
	// binary and share both across many campaign jobs.
	Golden *Golden
	Pool   *emu.TBPool
}

// Prepare runs the golden reference once and freezes its compiled
// translation state into a shareable pool, so many campaigns over the
// same target can reuse both via Options.Golden/Options.Pool. The pool
// is nil when the golden run dirtied its own code (the same
// goldenCodeClean gate CampaignOpt applies); the Golden is still valid
// then, campaigns just fall back to private translation caches.
func Prepare(t *Target) (*Golden, *emu.TBPool, error) {
	g, gp, err := runGolden(t)
	if err != nil {
		return nil, nil, err
	}
	var pool *emu.TBPool
	if goldenCodeClean(gp) {
		pool = gp.Machine.BuildTBPool()
	}
	return g, pool, nil
}

// Campaign runs every fault in the plan against the target, using the
// given number of parallel workers (<=0 means 1), and classifies each
// mutant. Each worker owns a private platform, so the campaign scales
// with cores — the property the fault paper demonstrates on QEMU.
func Campaign(t *Target, plan Plan, workers int) (*Results, error) {
	return CampaignOpt(t, plan, Options{Workers: workers})
}

// CampaignOpt is Campaign with observability options. Mutants the
// harness cannot run are classified Errored and the run continues; the
// returned Results always covers the full plan, with the joined errors
// (errors.Join) alongside. Callers that care only about guest behaviour
// can therefore keep partial results even when err != nil.
func CampaignOpt(t *Target, plan Plan, o Options) (*Results, error) {
	return CampaignContext(context.Background(), t, plan, o)
}

// CampaignContext is CampaignOpt under a context. Cancellation (or a
// deadline) stops the workers at the next mutant boundary — each mutant
// is bounded by the target budget, so the campaign returns promptly
// with partial results: every classified slot keeps its outcome, slots
// never reached stay Errored, and the joined error includes ctx.Err().
func CampaignContext(ctx context.Context, t *Target, plan Plan, o Options) (*Results, error) {
	golden := o.Golden
	pool := o.Pool
	if golden == nil {
		g, gp, err := runGolden(t)
		if err != nil {
			return nil, err
		}
		golden = g
		// Freeze the golden run's compiled translation state into the
		// shared pool every worker warm-starts from. The golden platform
		// itself is discarded; only the immutable compiled blocks live
		// on. A golden run that dirtied its own code (self-modification,
		// wild jump into written data — detected exactly like the
		// injector's per-mutant check) compiled blocks that don't match
		// the pristine image workers validate against, so such a
		// campaign falls back to private caches.
		if !o.NoSharedPool && goldenCodeClean(gp) {
			pool = gp.Machine.BuildTBPool()
		}
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1
	}
	if o.NoSharedPool {
		pool = nil
	}
	if pool != nil {
		o.Metrics.Gauge("s4e_fault_pool_blocks", "shared translation-pool blocks").
			Set(float64(pool.Size()))
	}
	res := &Results{
		Total:     len(plan.Faults),
		ByOutcome: make(map[Outcome]int),
		ByModel:   make(map[Model]map[Outcome]int),
		Details:   make([]Outcome, len(plan.Faults)),
	}
	// Pre-fill with Errored: Masked is the zero value, so a slot no
	// worker ever reaches (all injector constructions failing, say) must
	// not silently read as a benign outcome.
	for i := range res.Details {
		res.Details[i] = Errored
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards errs; Details slots are each owned by one worker
		errs []error

		done   atomic.Uint64
		counts [numOutcomes]atomic.Uint64
	)
	mDone := o.Metrics.Counter("s4e_fault_done_total", "mutants attempted")
	var mOutcome [numOutcomes]*obs.Counter
	for oc := Outcome(0); oc < numOutcomes; oc++ {
		mOutcome[oc] = o.Metrics.Counter(
			fmt.Sprintf("s4e_fault_mutants_total{outcome=%q}", oc.String()),
			"campaign mutants by classified outcome")
	}
	o.Metrics.Gauge("s4e_fault_workers", "parallel campaign workers").Set(float64(workers))

	start := time.Now()
	o.Trace.Emit("campaign-start", "mutants", len(plan.Faults), "workers", workers)

	stopProgress := make(chan struct{})
	var progressWG sync.WaitGroup
	if o.Progress != nil || o.OnProgress != nil {
		every := o.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-tick.C:
					if o.Progress != nil {
						writeProgress(o.Progress, done.Load(), uint64(res.Total), &counts, time.Since(start))
					}
					if o.OnProgress != nil {
						o.OnProgress(done.Load(), uint64(res.Total))
					}
				}
			}
		}()
	}

	// Buffered and pre-filled so a worker failing early can never block
	// the producer.
	idx := make(chan int, len(plan.Faults))
	for i := range plan.Faults {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inj, err := newInjector(t, pool)
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			// Per-mutant restore cost lands in the registry's
			// s4e_fault_restore_* histograms as it happens; the totals
			// are folded in with the rest of the worker's counters by
			// RecordStats below. Nil registry detaches (no-op).
			inj.p.AttachRestoreObs(o.Metrics)
			for i := range idx {
				if ctx.Err() != nil {
					return // cancelled: remaining slots stay Errored
				}
				out, err := inj.run(golden, plan.Faults[i])
				if err != nil {
					out = Errored
					mu.Lock()
					errs = append(errs, fmt.Errorf("mutant %d (%v): %w", i, plan.Faults[i], err))
					mu.Unlock()
				}
				res.Details[i] = out
				counts[out].Add(1)
				done.Add(1)
				mDone.Inc()
				mOutcome[out].Inc()
				o.Trace.Emit("mutant", "i", i, "fault", plan.Faults[i].String(), "outcome", out.String())
			}
			inj.p.RecordStats(o.Metrics)
		}()
	}
	wg.Wait()
	close(stopProgress)
	progressWG.Wait()
	res.Duration = time.Since(start)

	if secs := res.Duration.Seconds(); secs > 0 {
		o.Metrics.Gauge("s4e_fault_mutants_per_sec", "campaign throughput").
			Set(float64(done.Load()) / secs)
		o.Metrics.Gauge("s4e_fault_campaign_seconds", "campaign wall-clock duration").Set(secs)
	}
	if o.Progress != nil {
		writeProgress(o.Progress, done.Load(), uint64(res.Total), &counts, res.Duration)
	}
	if o.OnProgress != nil {
		o.OnProgress(done.Load(), uint64(res.Total))
	}
	o.Trace.Emit("campaign-end", "done", done.Load(), "errored", counts[Errored].Load(),
		"seconds", res.Duration.Seconds())

	if err := ctx.Err(); err != nil {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	for i, out := range res.Details {
		res.ByOutcome[out]++
		m := plan.Faults[i].Model
		if res.ByModel[m] == nil {
			res.ByModel[m] = make(map[Outcome]int)
		}
		res.ByModel[m][out]++
	}
	return res, errors.Join(errs...)
}

// writeProgress emits one live status line (counts read atomically, so
// the line is approximate while workers run).
func writeProgress(w io.Writer, done, total uint64, counts *[numOutcomes]atomic.Uint64, elapsed time.Duration) {
	pct := 100.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(done) / s
	}
	fmt.Fprintf(w, "fault: %d/%d mutants (%.1f%%) %.0f/sec masked=%d sdc=%d trapped=%d hung=%d errored=%d latency=%d\n",
		done, total, pct, rate,
		counts[Masked].Load(), counts[SDC].Load(), counts[Trapped].Load(),
		counts[Hung].Load(), counts[Errored].Load(), counts[LatencyViol].Load())
}

// String renders the campaign classification table.
func (r *Results) String() string {
	var sb strings.Builder
	outcomes := []Outcome{Masked, SDC, Trapped, Hung, Errored, LatencyViol}
	fmt.Fprintf(&sb, "%-16s %8s %8s %8s %8s %8s %8s %8s\n", "model", "total", "masked", "sdc", "trapped", "hung", "errored", "latency")
	models := make([]Model, 0, len(r.ByModel))
	for m := range r.ByModel {
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return models[i] < models[j] })
	for _, m := range models {
		row := r.ByModel[m]
		total := 0
		for _, n := range row {
			total += n
		}
		fmt.Fprintf(&sb, "%-16s %8d", m, total)
		for _, o := range outcomes {
			fmt.Fprintf(&sb, " %8d", row[o])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-16s %8d", "all", r.Total)
	for _, o := range outcomes {
		fmt.Fprintf(&sb, " %8d", r.ByOutcome[o])
	}
	sb.WriteString("\n")
	return sb.String()
}
