package fault_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/vp"
)

// planFor builds a mixed-model plan over the target, mirroring what the
// serving layer generates for a campaign job.
func planFor(t *testing.T, tg *fault.Target, seed int64) fault.Plan {
	t.Helper()
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	return fault.NewPlan(fault.PlanConfig{
		Seed:         seed,
		GPRTransient: 20, GPRPermanent: 8, MemPermanent: 10, CodeBitflip: 10,
		GoldenInsts: g.Insts,
		CodeStart:   vp.RAMBase, CodeEnd: end,
		DataStart: vp.RAMBase, DataEnd: end,
	})
}

func TestPlanRangeClamps(t *testing.T) {
	p := fault.Plan{Faults: make([]fault.Fault, 10)}
	cases := []struct{ lo, hi, want int }{
		{0, 10, 10}, {3, 7, 4}, {-5, 3, 3}, {8, 99, 2}, {7, 7, 0}, {9, 2, 0},
	}
	for _, c := range cases {
		if got := len(p.Range(c.lo, c.hi).Faults); got != c.want {
			t.Errorf("Range(%d,%d) has %d faults, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

// TestMergeShardsBitIdentical is the sharding determinism anchor:
// running a plan as K contiguous range shards (K in {1, 2, 4}) and
// merging must reproduce the unsharded campaign mutant for mutant —
// same Details, same ByOutcome and ByModel tables.
func TestMergeShardsBitIdentical(t *testing.T) {
	tg, _ := target(t, "xtea")
	plan := planFor(t, tg, 11)

	// The unsharded reference, on a shared golden+pool like the service.
	golden, pool, err := fault.Prepare(tg)
	if err != nil {
		t.Fatal(err)
	}
	opt := fault.Options{Workers: 2, Golden: golden, Pool: pool}
	ref, err := fault.CampaignOpt(tg, plan, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 4} {
		n := len(plan.Faults)
		base, rem := n/k, n%k
		var offsets []int
		var parts []*fault.Results
		lo := 0
		for i := 0; i < k; i++ {
			size := base
			if i < rem {
				size++
			}
			part, err := fault.CampaignOpt(tg, plan.Range(lo, lo+size), opt)
			if err != nil {
				t.Fatalf("k=%d shard %d: %v", k, i, err)
			}
			offsets = append(offsets, lo)
			parts = append(parts, part)
			lo += size
		}
		merged, err := fault.MergeShards(plan, offsets, parts)
		if err != nil {
			t.Fatalf("k=%d merge: %v", k, err)
		}
		if merged.Total != ref.Total {
			t.Fatalf("k=%d total %d, want %d", k, merged.Total, ref.Total)
		}
		for i := range ref.Details {
			if merged.Details[i] != ref.Details[i] {
				t.Fatalf("k=%d mutant %d classified %v, unsharded %v",
					k, i, merged.Details[i], ref.Details[i])
			}
		}
		for o, n := range ref.ByOutcome {
			if merged.ByOutcome[o] != n {
				t.Errorf("k=%d outcome %v count %d, want %d", k, o, merged.ByOutcome[o], n)
			}
		}
		for m, row := range ref.ByModel {
			for o, n := range row {
				if merged.ByModel[m][o] != n {
					t.Errorf("k=%d model %v outcome %v count %d, want %d",
						k, m, o, merged.ByModel[m][o], n)
				}
			}
		}
	}
}

// MergeShards must reject tilings that do not cover the plan exactly.
func TestMergeShardsRejectsBadTiling(t *testing.T) {
	plan := fault.Plan{Faults: make([]fault.Fault, 8)}
	mk := func(n int) *fault.Results {
		return &fault.Results{Total: n, Details: make([]fault.Outcome, n)}
	}
	cases := []struct {
		name    string
		offsets []int
		parts   []*fault.Results
	}{
		{"gap", []int{0, 5}, []*fault.Results{mk(4), mk(3)}},
		{"overlap", []int{0, 3}, []*fault.Results{mk(4), mk(5)}},
		{"short", []int{0, 4}, []*fault.Results{mk(4), mk(3)}},
		{"overrun", []int{0, 4}, []*fault.Results{mk(4), mk(5)}},
		{"nil part", []int{0, 4}, []*fault.Results{mk(4), nil}},
		{"arity", []int{0}, []*fault.Results{mk(4), mk(4)}},
	}
	for _, c := range cases {
		if _, err := fault.MergeShards(plan, c.offsets, c.parts); err == nil {
			t.Errorf("%s: merge accepted, want error", c.name)
		}
	}
}

// The OnProgress hook must fire with a final done==total call even for
// campaigns far shorter than the progress tick.
func TestOnProgressFinalCall(t *testing.T) {
	tg, _ := target(t, "xtea")
	plan := planFor(t, tg, 5).Range(0, 6)
	var last [2]uint64
	calls := 0
	_, err := fault.CampaignOpt(tg, plan, fault.Options{
		OnProgress: func(done, total uint64) { last = [2]uint64{done, total}; calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || last != [2]uint64{6, 6} {
		t.Errorf("OnProgress calls=%d last=%v, want final (6,6)", calls, last)
	}
}
