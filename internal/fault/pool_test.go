package fault_test

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/vp"
)

// poolPlan builds a mixed-model plan over the target image; the code
// bit-flips matter most here, since they exercise the overlay-compile
// and cache-flush/re-adoption paths of the shared pool.
func poolPlan(tg *fault.Target, g *fault.Golden) fault.Plan {
	end := vp.RAMBase + uint32(len(tg.Program.Bytes))
	return fault.NewPlan(fault.PlanConfig{
		Seed:         11,
		GPRTransient: 40,
		MemPermanent: 20,
		CodeBitflip:  40,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase,
		CodeEnd:      end,
		DataStart:    vp.RAMBase,
		DataEnd:      end,
	})
}

func runPoolCampaign(t *testing.T, tg *fault.Target, plan fault.Plan,
	workers int, noPool bool) (*fault.Results, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	res, err := fault.CampaignOpt(tg, plan, fault.Options{
		Workers:      workers,
		NoSharedPool: noPool,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, reg
}

// TestCampaignPoolDifferential proves the shared translation pool is
// architecturally invisible: for both engines and several worker counts,
// a shared-pool campaign and a private-cache campaign classify every
// mutant identically, bit for bit.
func TestCampaignPoolDifferential(t *testing.T) {
	tg, _ := target(t, "crc32")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []struct {
		name   string
		engine emu.Engine
	}{
		{"threaded", emu.EngineThreaded},
		{"switch", emu.EngineSwitch},
		{"superblock", emu.EngineSuperblock},
	} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers-%d", eng.name, workers), func(t *testing.T) {
				etg := *tg
				etg.Engine = eng.engine
				plan := poolPlan(&etg, g)

				pooled, preg := runPoolCampaign(t, &etg, plan, workers, false)
				private, _ := runPoolCampaign(t, &etg, plan, workers, true)

				if pb := preg.Gauge("s4e_fault_pool_blocks", "").Value(); pb == 0 {
					t.Error("pooled campaign published no pool blocks")
				}
				if hits := preg.Counter(vp.MetricPoolHits, "").Value(); hits == 0 {
					t.Error("pooled campaign adopted no blocks")
				}

				if len(pooled.Details) != len(private.Details) {
					t.Fatalf("result sizes differ: %d vs %d", len(pooled.Details), len(private.Details))
				}
				for i := range pooled.Details {
					if pooled.Details[i] != private.Details[i] {
						t.Errorf("mutant %d (%v): pool=%v private=%v",
							i, plan.Faults[i], pooled.Details[i], private.Details[i])
					}
				}
				for _, oc := range []fault.Outcome{fault.Masked, fault.SDC, fault.Trapped, fault.Hung, fault.Errored} {
					if pooled.ByOutcome[oc] != private.ByOutcome[oc] {
						t.Errorf("%v count: pool=%d private=%d",
							oc, pooled.ByOutcome[oc], private.ByOutcome[oc])
					}
				}
			})
		}
	}
}

// TestCampaignSuperblockDifferential proves the superblock trace engine
// is architecturally invisible to fault campaigns: against a threaded
// reference, a superblock campaign classifies every mutant identically —
// with and without the shared pool (whose frozen-trace tier warm-starts
// workers), at one and four workers. Code-mutating faults force trace
// invalidation and overlay paths, the sharpest part of the contract.
func TestCampaignSuperblockDifferential(t *testing.T) {
	tg, _ := target(t, "crc32")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}

	ttg := *tg
	ttg.Engine = emu.EngineThreaded
	plan := poolPlan(&ttg, g)
	ref, _ := runPoolCampaign(t, &ttg, plan, 1, false)

	for _, noPool := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("pool-%t/workers-%d", !noPool, workers)
			t.Run(name, func(t *testing.T) {
				stg := *tg
				stg.Engine = emu.EngineSuperblock
				got, _ := runPoolCampaign(t, &stg, plan, workers, noPool)
				if len(got.Details) != len(ref.Details) {
					t.Fatalf("result sizes differ: %d vs %d", len(got.Details), len(ref.Details))
				}
				for i := range got.Details {
					if got.Details[i] != ref.Details[i] {
						t.Errorf("mutant %d (%v): superblock=%v threaded=%v",
							i, plan.Faults[i], got.Details[i], ref.Details[i])
					}
				}
			})
		}
	}
}

// TestCampaignPoolCompileSavings is the headline acceptance check: at 4
// workers the shared pool must cut the compiled-block count of the
// campaign at least in half compared to private per-worker caches.
func TestCampaignPoolCompileSavings(t *testing.T) {
	tg, _ := target(t, "crc32")
	g, err := fault.RunGolden(tg)
	if err != nil {
		t.Fatal(err)
	}
	plan := poolPlan(tg, g)

	_, preg := runPoolCampaign(t, tg, plan, 4, false)
	_, xreg := runPoolCampaign(t, tg, plan, 4, true)

	pooledTBs := preg.Counter(vp.MetricTBsCompiled, "").Value()
	privateTBs := xreg.Counter(vp.MetricTBsCompiled, "").Value()
	if privateTBs == 0 {
		t.Fatal("private-cache campaign compiled nothing")
	}
	if pooledTBs*2 > privateTBs {
		t.Errorf("pool saved too little: %v compiled with pool vs %v without (want >= 2x fewer)",
			pooledTBs, privateTBs)
	}
	t.Logf("tbs_compiled: pool=%v private=%v (%.1fx fewer), pool_hits=%v overlay_compiles=%v",
		pooledTBs, privateTBs, float64(privateTBs)/float64(max(pooledTBs, 1)),
		preg.Counter(vp.MetricPoolHits, "").Value(),
		preg.Counter(vp.MetricOverlayCompiles, "").Value())
}
