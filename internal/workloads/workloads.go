// Package workloads provides the edge application kernels the ecosystem's
// demonstrators, experiments and benchmarks run: crypto (XTEA, CRC32),
// DSP (FIR, matrix multiply, floating-point dot product), control (PID
// over the sensor device), sorting, and the bit-manipulation kernel pairs
// (base-ISA vs Xbmi) behind the BMI speedup experiment.
//
// Every workload carries a Go reference implementation of the same
// algorithm over the same deterministically generated data; the expected
// checksum cross-validates the emulator against native execution.
package workloads

import "fmt"

// Workload is one runnable kernel.
type Workload struct {
	Name   string
	Desc   string
	Source string // assembly body; the platform prelude is prepended by runners
	Budget uint64 // instruction budget that safely covers the run
	Expect uint32 // checksum the program writes to the syscon exit register

	// LoopBounds gives the maximum iteration count of each loop,
	// keyed by the label of the loop head. The static WCET analyzer
	// consumes these as flow facts (the role user annotations play
	// for aiT).
	LoopBounds map[string]int

	// UsesBMI marks kernels that require the Xbmi extension.
	UsesBMI bool

	// Sensor holds samples to preload into the sensor device.
	Sensor []int16

	// Stream holds samples to preload into the DMA stream engine
	// (interrupt demonstrators only).
	Stream []int16

	// UARTIn holds bytes to preload into the UART receive queue
	// (interrupt demonstrators only).
	UARTIn []byte

	// Handler names the label of the interrupt service routine for the
	// interrupt demonstrators; empty for batch kernels. The IRT
	// analyzer uses it as the entry of the handler-WCET computation.
	Handler string
}

// lcg is the shared data generator: both the assembly kernels and the Go
// references fill their buffers with it.
func lcg(seed uint32, n int) []uint32 {
	out := make([]uint32, n)
	x := seed
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = x
	}
	return out
}

// lcgFill is the assembly counterpart of lcg: fills n words at label buf.
// Clobbers t0-t4.
func lcgFill(n int, seed uint32) string {
	return fmt.Sprintf(`
	la t0, buf
	li t1, %d
	li t2, %d
	li t3, 1664525
	li t4, 1013904223
fill:
	mul t2, t2, t3
	add t2, t2, t4
	sw t2, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, fill
`, n, seed)
}

// exit is the standard epilogue: report a0 through the syscon device.
const exit = `
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`

// All returns every workload. The slice is freshly built; callers may
// reorder it.
func All() []Workload {
	return []Workload{
		xtea(), crc32w(), fir(), matmul(), sortW(), fpDot(), pid(),
		conv3x3(), histogram(),
		popcountBase(), popcountBMI(),
		parityBase(), parityBMI(),
		byteswapBase(), byteswapBMI(),
		clampBase(), clampBMI(),
	}
}

// ByName finds a workload, searching the batch kernels and the
// interrupt demonstrators.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range Interrupt() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Pairs returns the base-vs-BMI kernel pairs for the BMI experiment.
func Pairs() [][2]Workload {
	return [][2]Workload{
		{popcountBase(), popcountBMI()},
		{parityBase(), parityBMI()},
		{byteswapBase(), byteswapBMI()},
		{clampBase(), clampBMI()},
	}
}

// ---------------------------------------------------------------- xtea

func refXTEA() uint32 {
	key := [4]uint32{0x0f1e2d3c, 0x4b5a6978, 0x8796a5b4, 0xc3d2e1f0}
	v0, v1 := uint32(0x01234567), uint32(0x89abcdef)
	var sum uint32
	const delta = 0x9e3779b9
	for i := 0; i < 32; i++ {
		v0 += ((v1<<4 ^ v1>>5) + v1) ^ (sum + key[sum&3])
		sum += delta
		v1 += ((v0<<4 ^ v0>>5) + v0) ^ (sum + key[sum>>11&3])
	}
	return v0 ^ v1
}

func xtea() Workload {
	return Workload{
		Name:       "xtea",
		Desc:       "XTEA block encryption, 32 rounds (crypto kernel)",
		Budget:     100_000,
		Expect:     refXTEA(),
		LoopBounds: map[string]int{"round": 32},
		Source: `
_start:
	la   s4, key
	li   s0, 0x01234567      # v0
	li   s1, 0x89abcdef      # v1
	li   s2, 0               # sum
	li   s3, 0x9e3779b9      # delta
	li   s5, 32              # rounds
round:
	# v0 += ((v1<<4 ^ v1>>5) + v1) ^ (sum + key[sum&3])
	slli t0, s1, 4
	srli t1, s1, 5
	xor  t0, t0, t1
	add  t0, t0, s1
	andi t1, s2, 3
	slli t1, t1, 2
	add  t1, t1, s4
	lw   t1, 0(t1)
	add  t1, t1, s2
	xor  t0, t0, t1
	add  s0, s0, t0
	# sum += delta
	add  s2, s2, s3
	# v1 += ((v0<<4 ^ v0>>5) + v0) ^ (sum + key[(sum>>11)&3])
	slli t0, s0, 4
	srli t1, s0, 5
	xor  t0, t0, t1
	add  t0, t0, s0
	srli t1, s2, 11
	andi t1, t1, 3
	slli t1, t1, 2
	add  t1, t1, s4
	lw   t1, 0(t1)
	add  t1, t1, s2
	xor  t0, t0, t1
	add  s1, s1, t0
	addi s5, s5, -1
	bnez s5, round
	xor  a0, s0, s1
` + exit + `
	.align 2
key:
	.word 0x0f1e2d3c, 0x4b5a6978, 0x8796a5b4, 0xc3d2e1f0
`,
	}
}

// --------------------------------------------------------------- crc32

func refCRC32() uint32 {
	data := lcg(0xc0c0, 16)
	crc := uint32(0xffffffff)
	for _, w := range data {
		for b := 0; b < 4; b++ {
			crc ^= w >> (8 * b) & 0xff
			for k := 0; k < 8; k++ {
				if crc&1 != 0 {
					crc = crc>>1 ^ 0xedb88320
				} else {
					crc >>= 1
				}
			}
		}
	}
	return ^crc
}

func crc32w() Workload {
	return Workload{
		Name:       "crc32",
		Desc:       "bitwise CRC-32 over 64 bytes (integrity kernel)",
		Budget:     200_000,
		Expect:     refCRC32(),
		LoopBounds: map[string]int{"fill": 16, "wloop": 16, "bloop": 4, "kloop": 8},
		Source: `
_start:
` + lcgFill(16, 0xc0c0) + `
	la   s0, buf
	li   s1, 16              # words
	li   a0, -1              # crc
	li   s3, 0xedb88320
wloop:
	lw   s2, 0(s0)
	li   s4, 4               # bytes per word
bloop:
	andi t0, s2, 0xff
	xor  a0, a0, t0
	li   s5, 8
kloop:
	andi t1, a0, 1
	srli a0, a0, 1
	beqz t1, knext
	xor  a0, a0, s3
knext:
	addi s5, s5, -1
	bnez s5, kloop
	srli s2, s2, 8
	addi s4, s4, -1
	bnez s4, bloop
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
	not  a0, a0
` + exit + `
	.align 2
buf:	.space 64
`,
	}
}

// ----------------------------------------------------------------- fir

func refFIR() uint32 {
	coef := [8]int32{3, -1, 4, 1, -5, 9, 2, -6}
	data := lcg(0xf1f1, 64)
	x := make([]int32, 64)
	for i, v := range data {
		x[i] = int32(v<<16) >> 16 // int16 range
	}
	var acc uint32
	for i := 7; i < 64; i++ {
		var y int32
		for k := 0; k < 8; k++ {
			y += coef[k] * x[i-k]
		}
		acc += uint32(y)
	}
	return acc
}

func fir() Workload {
	return Workload{
		Name:       "fir",
		Desc:       "8-tap integer FIR filter over 64 samples (DSP kernel)",
		Budget:     300_000,
		Expect:     refFIR(),
		LoopBounds: map[string]int{"fill": 64, "sext": 64, "oloop": 57, "tap": 8},
		Source: `
_start:
` + lcgFill(64, 0xf1f1) + `
	# sign-extend samples to int16 in place
	la   t0, buf
	li   t1, 64
sext:
	lw   t2, 0(t0)
	slli t2, t2, 16
	srai t2, t2, 16
	sw   t2, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, sext
	# y[i] = sum coef[k]*x[i-k], acc += y
	li   a0, 0
	li   s0, 7               # i
	li   s1, 64
oloop:
	li   s2, 0               # k
	li   s3, 0               # y
tap:
	la   t0, coef
	slli t1, s2, 2
	add  t0, t0, t1
	lw   t2, 0(t0)           # coef[k]
	sub  t3, s0, s2          # i-k
	la   t4, buf
	slli t5, t3, 2
	add  t4, t4, t5
	lw   t5, 0(t4)           # x[i-k]
	mul  t2, t2, t5
	add  s3, s3, t2
	addi s2, s2, 1
	slti t6, s2, 8
	bnez t6, tap
	add  a0, a0, s3
	addi s0, s0, 1
	blt  s0, s1, oloop
` + exit + `
	.align 2
coef:	.word 3, -1, 4, 1, -5, 9, 2, -6
buf:	.space 256
`,
	}
}

// -------------------------------------------------------------- matmul

func refMatmul() uint32 {
	const n = 8
	data := lcg(0xaaaa, 2*n*n)
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	for i := 0; i < n*n; i++ {
		a[i] = int32(data[i]<<24) >> 24
		b[i] = int32(data[n*n+i]<<24) >> 24
	}
	var acc uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var c int32
			for k := 0; k < n; k++ {
				c += a[i*n+k] * b[k*n+j]
			}
			acc ^= uint32(c) + uint32(i*n+j)
		}
	}
	return acc
}

func matmul() Workload {
	return Workload{
		Name:       "matmul",
		Desc:       "8x8 int8 matrix multiply (ML-ish edge kernel)",
		Budget:     500_000,
		Expect:     refMatmul(),
		LoopBounds: map[string]int{"fill": 128, "sext": 128, "iloop": 8, "jloop": 8, "kloop": 8},
		Source: `
_start:
` + lcgFill(128, 0xaaaa) + `
	# sign-extend all 128 words to int8
	la   t0, buf
	li   t1, 128
sext:
	lw   t2, 0(t0)
	slli t2, t2, 24
	srai t2, t2, 24
	sw   t2, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, sext
	la   s0, buf             # A
	addi s1, s0, 256         # B
	li   a0, 0               # acc
	li   s2, 0               # i
iloop:
	li   s3, 0               # j
jloop:
	li   s4, 0               # k
	li   s5, 0               # c
kloop:
	slli t0, s2, 3
	add  t0, t0, s4          # i*8+k
	slli t0, t0, 2
	add  t0, t0, s0
	lw   t1, 0(t0)           # a[i][k]
	slli t2, s4, 3
	add  t2, t2, s3          # k*8+j
	slli t2, t2, 2
	add  t2, t2, s1
	lw   t3, 0(t2)           # b[k][j]
	mul  t1, t1, t3
	add  s5, s5, t1
	addi s4, s4, 1
	slti t4, s4, 8
	bnez t4, kloop
	slli t5, s2, 3
	add  t5, t5, s3
	add  t5, t5, s5
	xor  a0, a0, t5
	addi s3, s3, 1
	slti t4, s3, 8
	bnez t4, jloop
	addi s2, s2, 1
	slti t4, s2, 8
	bnez t4, iloop
` + exit + `
	.align 2
buf:	.space 1024
`,
	}
}

// ---------------------------------------------------------------- sort

func refSort() uint32 {
	data := lcg(0x5051, 32)
	v := make([]uint32, 32)
	copy(v, data)
	for i := 0; i < len(v); i++ {
		for j := 0; j+1 < len(v)-i; j++ {
			if v[j] > v[j+1] {
				v[j], v[j+1] = v[j+1], v[j]
			}
		}
	}
	var acc uint32
	for i, x := range v {
		acc += x * uint32(i+1)
	}
	return acc
}

func sortW() Workload {
	return Workload{
		Name:       "sort",
		Desc:       "bubble sort of 32 words plus weighted checksum",
		Budget:     500_000,
		Expect:     refSort(),
		LoopBounds: map[string]int{"fill": 32, "outer": 32, "inner": 31, "chk": 32},
		Source: `
_start:
` + lcgFill(32, 0x5051) + `
	li   s0, 0               # i
outer:
	li   s1, 0               # j
	li   s2, 31
	sub  s2, s2, s0          # limit = 31-i
	beqz s2, onext
	la   t0, buf
inner:
	lw   t1, 0(t0)
	lw   t2, 4(t0)
	bgeu t2, t1, noswap
	sw   t2, 0(t0)
	sw   t1, 4(t0)
noswap:
	addi t0, t0, 4
	addi s1, s1, 1
	blt  s1, s2, inner
onext:
	addi s0, s0, 1
	slti t3, s0, 32
	bnez t3, outer
	# weighted checksum
	la   t0, buf
	li   s0, 0
	li   a0, 0
chk:
	lw   t1, 0(t0)
	addi s0, s0, 1
	mul  t1, t1, s0
	add  a0, a0, t1
	addi t0, t0, 4
	slti t3, s0, 32
	bnez t3, chk
` + exit + `
	.align 2
buf:	.space 128
`,
	}
}

// --------------------------------------------------------------- fpdot

func refFPDot() uint32 {
	data := lcg(0xdddd, 32)
	var sum float32
	for i := 0; i < 16; i++ {
		a := float32(int32(data[i]<<20) >> 20)
		b := float32(int32(data[16+i]<<20) >> 20)
		sum += a * b
	}
	return uint32(int32(sum))
}

func fpDot() Workload {
	return Workload{
		Name:       "fpdot",
		Desc:       "single-precision dot product of 16-element vectors",
		Budget:     200_000,
		Expect:     refFPDot(),
		LoopBounds: map[string]int{"fill": 32, "cvt": 32, "dot": 16},
		Source: `
_start:
` + lcgFill(32, 0xdddd) + `
	# convert the 32 words to small signed floats in place
	la   t0, buf
	li   t1, 32
cvt:
	lw   t2, 0(t0)
	slli t2, t2, 20
	srai t2, t2, 20
	fcvt.s.w ft0, t2
	fsw  ft0, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, cvt
	# dot product
	la   s0, buf
	addi s1, s0, 64
	li   s2, 16
	fmv.w.x fa0, zero
dot:
	flw  ft0, 0(s0)
	flw  ft1, 0(s1)
	fmadd.s fa0, ft0, ft1, fa0
	addi s0, s0, 4
	addi s1, s1, 4
	addi s2, s2, -1
	bnez s2, dot
	fcvt.w.s a0, fa0
` + exit + `
	.align 2
buf:	.space 128
`,
	}
}

// ----------------------------------------------------------------- pid

// pidSamples is the sensor trace for the PID demonstrator.
func pidSamples() []int16 {
	out := make([]int16, 40)
	x := uint32(0x1234)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = int16(x>>20) % 200
	}
	return out
}

func refPID() uint32 {
	const setpoint, kp, ki, kd = 100, 3, 1, 2
	var integ, prev, acc int32
	for _, s := range pidSamples() {
		err := int32(setpoint) - int32(s)
		integ += err
		deriv := err - prev
		out := kp*err + ki*integ/8 + kd*deriv
		prev = err
		acc += out
	}
	return uint32(acc)
}

func pid() Workload {
	return Workload{
		Name:       "pid",
		Desc:       "PID control loop over 40 sensor samples (control kernel)",
		Budget:     100_000,
		Expect:     refPID(),
		Sensor:     pidSamples(),
		LoopBounds: map[string]int{"step": 40},
		Source: `
	.equ SETPOINT, 100
_start:
	li   s0, 0               # integral
	li   s1, 0               # prev error
	li   a0, 0               # acc
	li   s3, SENSOR_COUNT
	lw   s2, 0(s3)           # samples available
	beqz s2, done
	li   s3, SENSOR_SAMPLE
step:
	lw   t0, 0(s3)           # sample
	li   t1, SETPOINT
	sub  t1, t1, t0          # err
	add  s0, s0, t1          # integral += err
	sub  t2, t1, s1          # deriv
	mv   s1, t1
	li   t3, 3
	mul  t4, t1, t3          # kp*err
	li   t3, 8
	div  t5, s0, t3          # ki*integral/8 (ki=1)
	add  t4, t4, t5
	slli t5, t2, 1           # kd*deriv (kd=2)
	add  t4, t4, t5
	add  a0, a0, t4
	addi s2, s2, -1
	bnez s2, step
done:
` + exit,
	}
}

// ------------------------------------------------- BMI pairs: popcount

func refPopcount() uint32 {
	var acc uint32
	for _, w := range lcg(0xb1b1, 64) {
		for w != 0 {
			w &= w - 1
			acc++
		}
	}
	return acc
}

func popcountBase() Workload {
	return Workload{
		Name:       "popcount_base",
		Desc:       "population count over 64 words, Kernighan loop (base ISA)",
		Budget:     500_000,
		Expect:     refPopcount(),
		LoopBounds: map[string]int{"fill": 64, "wloop": 64, "bit": 32},
		Source: `
_start:
` + lcgFill(64, 0xb1b1) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
wloop:
	lw   t0, 0(s0)
bit:
	beqz t0, next
	addi t1, t0, -1
	and  t0, t0, t1
	addi a0, a0, 1
	j    bit
next:
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

func popcountBMI() Workload {
	return Workload{
		Name:       "popcount_bmi",
		Desc:       "population count over 64 words with cpop (Xbmi)",
		Budget:     500_000,
		Expect:     refPopcount(),
		UsesBMI:    true,
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0xb1b1) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
wloop:
	lw   t0, 0(s0)
	cpop t0, t0
	add  a0, a0, t0
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

// --------------------------------------------------- BMI pairs: parity

func refParity() uint32 {
	var acc uint32
	for i, w := range lcg(0x9a9a, 64) {
		p := w
		p ^= p >> 16
		p ^= p >> 8
		p ^= p >> 4
		p ^= p >> 2
		p ^= p >> 1
		if p&1 != 0 {
			acc += uint32(i) + 1
		}
	}
	return acc
}

func parityBase() Workload {
	return Workload{
		Name:       "parity_base",
		Desc:       "per-word parity via xor folding (base ISA)",
		Budget:     500_000,
		Expect:     refParity(),
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x9a9a) + `
	la   s0, buf
	li   s1, 64
	li   s2, 0               # index
	li   a0, 0
wloop:
	lw   t0, 0(s0)
	srli t1, t0, 16
	xor  t0, t0, t1
	srli t1, t0, 8
	xor  t0, t0, t1
	srli t1, t0, 4
	xor  t0, t0, t1
	srli t1, t0, 2
	xor  t0, t0, t1
	srli t1, t0, 1
	xor  t0, t0, t1
	andi t0, t0, 1
	addi s2, s2, 1
	beqz t0, skip
	add  a0, a0, s2
skip:
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

func parityBMI() Workload {
	return Workload{
		Name:       "parity_bmi",
		Desc:       "per-word parity via cpop (Xbmi)",
		Budget:     500_000,
		Expect:     refParity(),
		UsesBMI:    true,
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x9a9a) + `
	la   s0, buf
	li   s1, 64
	li   s2, 0
	li   a0, 0
wloop:
	lw   t0, 0(s0)
	cpop t0, t0
	andi t0, t0, 1
	addi s2, s2, 1
	beqz t0, skip
	add  a0, a0, s2
skip:
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

// ------------------------------------------------- BMI pairs: byteswap

func refByteswap() uint32 {
	var acc uint32
	for _, w := range lcg(0x7c7c, 64) {
		acc += w>>24 | w>>8&0xff00 | w<<8&0xff0000 | w<<24
	}
	return acc
}

func byteswapBase() Workload {
	return Workload{
		Name:       "byteswap_base",
		Desc:       "endianness swap via shifts and masks (base ISA)",
		Budget:     500_000,
		Expect:     refByteswap(),
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x7c7c) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
	li   s2, 0xff00
	li   s3, 0xff0000
wloop:
	lw   t0, 0(s0)
	srli t1, t0, 24
	srli t2, t0, 8
	and  t2, t2, s2
	or   t1, t1, t2
	slli t2, t0, 8
	and  t2, t2, s3
	or   t1, t1, t2
	slli t2, t0, 24
	or   t1, t1, t2
	add  a0, a0, t1
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

func byteswapBMI() Workload {
	return Workload{
		Name:       "byteswap_bmi",
		Desc:       "endianness swap via rev8 (Xbmi)",
		Budget:     500_000,
		Expect:     refByteswap(),
		UsesBMI:    true,
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x7c7c) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
wloop:
	lw   t0, 0(s0)
	rev8 t0, t0
	add  a0, a0, t0
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

// ---------------------------------------------------- BMI pairs: clamp

func refClamp() uint32 {
	const lo, hi = -100, 100
	var acc uint32
	for _, w := range lcg(0x3e3e, 64) {
		v := int32(w<<16) >> 16
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		acc += uint32(v)
	}
	return acc
}

func clampBase() Workload {
	return Workload{
		Name:       "clamp_base",
		Desc:       "saturate samples to [-100,100] with branches (base ISA)",
		Budget:     500_000,
		Expect:     refClamp(),
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x3e3e) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
	li   s2, -100
	li   s3, 100
wloop:
	lw   t0, 0(s0)
	slli t0, t0, 16
	srai t0, t0, 16
	bge  t0, s2, 1f
	mv   t0, s2
1:	ble  t0, s3, 2f
	mv   t0, s3
2:	add  a0, a0, t0
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}

func clampBMI() Workload {
	return Workload{
		Name:       "clamp_bmi",
		Desc:       "saturate samples to [-100,100] with min/max (Xbmi)",
		Budget:     500_000,
		Expect:     refClamp(),
		UsesBMI:    true,
		LoopBounds: map[string]int{"fill": 64, "wloop": 64},
		Source: `
_start:
` + lcgFill(64, 0x3e3e) + `
	la   s0, buf
	li   s1, 64
	li   a0, 0
	li   s2, -100
	li   s3, 100
wloop:
	lw   t0, 0(s0)
	slli t0, t0, 16
	srai t0, t0, 16
	max  t0, t0, s2
	min  t0, t0, s3
	add  a0, a0, t0
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, wloop
` + exit + `
	.align 2
buf:	.space 256
`,
	}
}
