package workloads

// The vision-flavoured demonstrators: a 3x3 convolution over a small
// image tile (the classic edge-inference pre-processing stage) and a
// 16-bin histogram (data-dependent addressing, the access pattern memory
// fault campaigns like to hit).

func refConv3x3() uint32 {
	const w, h = 16, 12
	kernel := [9]int32{1, 2, 1, 2, 4, 2, 1, 2, 1} // Gaussian-ish
	data := lcg(0xcafe, w*h)
	img := make([]int32, w*h)
	for i, v := range data {
		img[i] = int32(v & 0xff)
	}
	var acc uint32
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var s int32
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					s += kernel[k] * img[(y+dy)*w+(x+dx)]
					k++
				}
			}
			acc += uint32(s >> 4)
		}
	}
	return acc
}

func conv3x3() Workload {
	return Workload{
		Name:   "conv3x3",
		Desc:   "3x3 Gaussian convolution over a 16x12 tile (vision kernel)",
		Budget: 1_000_000,
		Expect: refConv3x3(),
		LoopBounds: map[string]int{
			"fill": 192, "mask": 192, "yloop": 10, "xloop": 14, "kyloop": 3, "kxloop": 3,
		},
		Source: `
_start:
` + lcgFill(192, 0xcafe) + `
	# mask pixels to 8 bit
	la   t0, buf
	li   t1, 192
mask:
	lw   t2, 0(t0)
	andi t2, t2, 0xff
	sw   t2, 0(t0)
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, mask
	li   a0, 0               # acc
	li   s0, 1               # y
yloop:
	li   s1, 1               # x
xloop:
	li   s2, 0               # s
	li   s3, -1              # dy
	la   s4, kern            # kernel cursor
kyloop:
	li   s5, -1              # dx
kxloop:
	add  t0, s0, s3          # y+dy
	slli t0, t0, 4           # *16
	add  t1, s1, s5          # x+dx
	add  t0, t0, t1
	slli t0, t0, 2
	la   t2, buf
	add  t2, t2, t0
	lw   t3, 0(t2)           # pixel
	lw   t4, 0(s4)           # kernel coefficient
	mul  t3, t3, t4
	add  s2, s2, t3
	addi s4, s4, 4
	addi s5, s5, 1
	li   t5, 2
	blt  s5, t5, kxloop
	addi s3, s3, 1
	blt  s3, t5, kyloop
	srai s2, s2, 4
	add  a0, a0, s2
	addi s1, s1, 1
	li   t5, 15
	blt  s1, t5, xloop
	addi s0, s0, 1
	li   t5, 11
	blt  s0, t5, yloop
` + exit + `
	.align 2
kern:	.word 1, 2, 1, 2, 4, 2, 1, 2, 1
buf:	.space 768
`,
	}
}

func refHistogram() uint32 {
	data := lcg(0x4b1d, 128)
	var bins [16]uint32
	for _, v := range data {
		bins[v&15]++
	}
	var acc uint32
	for i, n := range bins {
		acc ^= n << (uint(i) & 7)
		acc += n * uint32(i+3)
	}
	return acc
}

func histogram() Workload {
	return Workload{
		Name:       "histogram",
		Desc:       "16-bin histogram of 128 samples (data-dependent stores)",
		Budget:     500_000,
		Expect:     refHistogram(),
		LoopBounds: map[string]int{"fill": 128, "count": 128, "fold": 16},
		Source: `
_start:
` + lcgFill(128, 0x4b1d) + `
	# clear bins
	la   t0, bins
	sw   zero, 0(t0)
	sw   zero, 4(t0)
	sw   zero, 8(t0)
	sw   zero, 12(t0)
	sw   zero, 16(t0)
	sw   zero, 20(t0)
	sw   zero, 24(t0)
	sw   zero, 28(t0)
	sw   zero, 32(t0)
	sw   zero, 36(t0)
	sw   zero, 40(t0)
	sw   zero, 44(t0)
	sw   zero, 48(t0)
	sw   zero, 52(t0)
	sw   zero, 56(t0)
	sw   zero, 60(t0)
	la   s0, buf
	li   s1, 128
count:
	lw   t1, 0(s0)
	andi t1, t1, 15
	slli t1, t1, 2
	la   t2, bins
	add  t2, t2, t1
	lw   t3, 0(t2)
	addi t3, t3, 1
	sw   t3, 0(t2)
	addi s0, s0, 4
	addi s1, s1, -1
	bnez s1, count
	# fold bins into the checksum
	la   s0, bins
	li   s1, 0               # i
	li   a0, 0
fold:
	lw   t0, 0(s0)
	andi t1, s1, 7
	sll  t2, t0, t1
	xor  a0, a0, t2
	addi t3, s1, 3
	mul  t4, t0, t3
	add  a0, a0, t4
	addi s0, s0, 4
	addi s1, s1, 1
	slti t5, s1, 16
	bnez t5, fold
` + exit + `
	.align 2
bins:	.space 64
buf:	.space 512
`,
	}
}
