package workloads_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// runDemo executes one interrupt demonstrator on one engine and
// returns the platform after it stopped.
func runDemo(t *testing.T, w workloads.Workload, prof *timing.Profile, engine emu.Engine) (*vp.Platform, emu.StopInfo) {
	t.Helper()
	p, err := vp.New(vp.Config{
		Profile: prof,
		Sensor:  w.Sensor,
		Stream:  w.Stream,
		UARTIn:  w.UARTIn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	p.Machine.Engine = engine
	return p, p.Run(w.Budget)
}

// TestInterruptDemonstrators checks every demonstrator reaches its
// reference checksum on every engine: the ISR-accumulated state is
// independent of where interrupt delivery lands, so even Step (which
// polls per instruction rather than per block) must agree exactly.
func TestInterruptDemonstrators(t *testing.T) {
	for _, w := range workloads.Interrupt() {
		for _, eng := range []emu.Engine{
			emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock,
		} {
			t.Run(w.Name+"/"+eng.String(), func(t *testing.T) {
				_, stop := runDemo(t, w, timing.EdgeSmall(), eng)
				if stop.Reason != emu.StopExit {
					t.Fatalf("stop = %+v, want exit", stop)
				}
				if stop.Code != w.Expect {
					t.Errorf("checksum = %#x, want %#x", stop.Code, w.Expect)
				}
			})
		}
		t.Run(w.Name+"/step", func(t *testing.T) {
			p, err := vp.New(vp.Config{
				Profile: timing.EdgeSmall(),
				Sensor:  w.Sensor, Stream: w.Stream, UARTIn: w.UARTIn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < w.Budget; i++ {
				if stop := p.Machine.Step(); stop != nil {
					if stop.Reason != emu.StopExit || stop.Code != w.Expect {
						t.Fatalf("stop = %+v, want exit with %#x", stop, w.Expect)
					}
					return
				}
			}
			t.Fatal("budget exhausted without exit")
		})
	}
}

// TestInterruptByName checks ByName reaches the demonstrators.
func TestInterruptByName(t *testing.T) {
	for _, name := range []string{"pid_timer", "dma_stream", "uart_cmd"} {
		w, ok := workloads.ByName(name)
		if !ok || w.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, w.Name, ok)
		}
		if w.Handler == "" {
			t.Errorf("%s: no handler symbol", name)
		}
	}
	if _, ok := workloads.ByName("pid"); !ok {
		t.Error("batch workloads must stay reachable")
	}
}
