package workloads

// The interrupt-driven edge demonstrators: reactive firmware in the
// style the source paper's qualification story targets, where the
// quantity under analysis is not batch throughput but the worst-case
// latency from stimulus to response. Each demonstrator installs a
// machine-mode trap handler, enables its interrupt sources, and idles
// in a wfi loop while all real work happens in the ISR; the checksum is
// accumulated exclusively by the ISR from the device data stream, so it
// is independent of exactly where interrupt delivery lands in the main
// loop — the property that keeps the engine differential tests and the
// fault-campaign classification exact across execution engines.
//
// Every handler also enables the PLIC's host-armed test-trigger line
// and claim-drains unknown lines, which is what lets the IRT co-sim
// (internal/qta) assert an interrupt at any adversarial cycle and
// measure the response on an unmodified demonstrator.

// Interrupt returns the interrupt-driven demonstrators. They are kept
// out of All(): the batch experiment axes (WCET co-sim, coverage,
// throughput) assume straight-line kernels, while these spend their
// lives in wfi loops with an unbounded main loop. ByName finds both.
func Interrupt() []Workload {
	return []Workload{pidTimer(), dmaStream(), uartCmd()}
}

// isrSave/isrRestore spill the temporaries the handlers clobber. The
// stack frame they create is a prime fault-campaign target (a bit flip
// in a saved register resurfaces in the interrupted context).
const isrSave = `
	addi sp, sp, -32
	sw t0, 0(sp)
	sw t1, 4(sp)
	sw t2, 8(sp)
	sw t3, 12(sp)
	sw t4, 16(sp)
	sw t5, 20(sp)
`

const isrRestore = `
	lw t0, 0(sp)
	lw t1, 4(sp)
	lw t2, 8(sp)
	lw t3, 12(sp)
	lw t4, 16(sp)
	lw t5, 20(sp)
	addi sp, sp, 32
	mret
`

// ------------------------------------------------------------ pid_timer

// pidTimer is the periodic-control demonstrator: a CLINT timer
// interrupt fires every pidPeriod cycles; the ISR reads one sensor
// sample, runs the PID step (same constants as the batch pid kernel)
// and re-arms the compare register. The main loop demonstrates the
// blocking pattern the IRT analysis bounds: a short interrupts-disabled
// critical section that reads the ISR's accumulator/tick pair
// coherently.
const pidPeriod = 600

func pidTimer() Workload {
	return Workload{
		Name:       "pid_timer",
		Desc:       "periodic PID control in a timer ISR, wfi main loop with critical section",
		Budget:     400_000,
		Expect:     refPID(),
		Sensor:     pidSamples(),
		Handler:    "handler",
		LoopBounds: map[string]int{"claim": 4},
		Source: `
	.equ SETPOINT, 100
	.equ PERIOD, 600
	.equ TICKS, 40
_start:
	la t0, handler
	csrw mtvec, t0
	li t0, PLIC_ENABLE        # test-trigger line for the latency harness
	li t1, 8
	sw t1, 0(t0)
	li t1, CLINT_MTIME
	lw t2, 0(t1)
	addi t2, t2, PERIOD
	li t1, CLINT_MTIMECMP
	sw t2, 0(t1)
	sw zero, 4(t1)
	li s0, 0                  # integral
	li s1, 0                  # prev error
	li s2, 0                  # acc
	li s3, 0                  # ticks
	li s4, TICKS
	li t3, 0x880              # MTIE | MEIE
	csrw mie, t3
	csrsi mstatus, 8          # MIE
main:
	wfi
	csrci mstatus, 8          # critical section: coherent acc/ticks pair
	mv a0, s2
	mv a1, s3
	csrsi mstatus, 8
	blt a1, s4, main
	csrw mie, zero
` + exit + `
handler:
` + isrSave + `
	csrr t0, mcause
	li t1, 0x80000007
	beq t0, t1, timer
claim:                        # external: drain the PLIC (test line etc.)
	li t1, PLIC_CLAIM
	lw t2, 0(t1)
	bnez t2, claim
	j hdone
timer:
	li t1, SENSOR_SAMPLE
	lw t2, 0(t1)              # sample
	li t3, SETPOINT
	sub t3, t3, t2            # err
	add s0, s0, t3            # integral += err
	sub t4, t3, s1            # deriv = err - prev
	mv s1, t3
	li t5, 3
	mul t2, t3, t5            # kp*err
	li t5, 8
	div t5, s0, t5            # ki*integral/8 (ki=1)
	add t2, t2, t5
	slli t5, t4, 1            # kd*deriv (kd=2)
	add t2, t2, t5
	add s2, s2, t2            # acc += out
	addi s3, s3, 1            # ticks++
	li t1, CLINT_MTIMECMP
	bge s3, s4, park
	lw t2, 0(t1)
	addi t2, t2, PERIOD       # re-arm, drift-free
	sw t2, 0(t1)
	j hdone
park:                         # final tick: push the compare out of reach
	li t2, -1
	sw t2, 0(t1)
	sw t2, 4(t1)
hdone:
` + isrRestore,
	}
}

// ------------------------------------------------------------ dma_stream

func dmaSamples() []int16 {
	out := make([]int16, 64)
	x := uint32(0xd00d)
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = int16(x>>17) % 500
	}
	return out
}

func refDMAStream() uint32 {
	var acc int32
	for _, s := range dmaSamples() {
		if s > 0 { // threshold filter
			acc += int32(s)
		}
	}
	return uint32(acc)
}

// dmaStream is the sensor-pipeline demonstrator: a 4-descriptor ring
// feeds 16-sample bursts into a shared buffer; the completion ISR
// (bottom half) clears the device, filter-accumulates the burst and
// kicks the next descriptor, so the pipeline is entirely
// interrupt-clocked.
func dmaStream() Workload {
	return Workload{
		Name:       "dma_stream",
		Desc:       "DMA descriptor-ring sensor pipeline, read-filter-accumulate in the ISR",
		Budget:     200_000,
		Expect:     refDMAStream(),
		Stream:     dmaSamples(),
		Handler:    "handler",
		LoopBounds: map[string]int{"bld": 4, "claim": 6, "flt": 16},
		Source: `
	.equ BURST, 16
	.equ DESCS, 4
_start:
	la t0, ring               # build the descriptor ring
	la t1, buf
	li t2, DESCS
bld:
	sw t1, 0(t0)              # dst = shared burst buffer
	li t3, BURST
	sw t3, 4(t0)
	sw zero, 8(t0)
	addi t0, t0, 12
	addi t2, t2, -1
	bnez t2, bld
	la t0, ring
	li t1, DMA_RING
	sw t0, 0(t1)
	li t0, DESCS
	li t1, DMA_COUNT
	sw t0, 0(t1)
	la t0, handler
	csrw mtvec, t0
	li t0, PLIC_ENABLE
	li t1, 0xa                # DMA line + test-trigger line
	sw t1, 0(t0)
	li s2, 0                  # acc
	li s3, 0                  # completed bursts
	li s4, DESCS
	li t0, 0x800              # MEIE
	csrw mie, t0
	csrsi mstatus, 8
	li t0, DMA_CTRL           # kick the first transfer
	li t1, 1
	sw t1, 0(t0)
main:
	wfi
	csrci mstatus, 8
	mv a0, s2
	mv a1, s3
	csrsi mstatus, 8
	blt a1, s4, main
	csrw mie, zero
` + exit + `
handler:
` + isrSave + `
claim:
	li t1, PLIC_CLAIM
	lw t2, 0(t1)
	beqz t2, hdone
	li t3, 1
	bne t2, t3, claim         # not the DMA line: the claim acked it
	li t1, DMA_CLEAR          # bottom half: clear, filter, accumulate
	li t2, 1
	sw t2, 0(t1)
	la t1, buf
	li t2, BURST
flt:
	lw t3, 0(t1)
	blez t3, fskip            # threshold filter
	add s2, s2, t3
fskip:
	addi t1, t1, 4
	addi t2, t2, -1
	bnez t2, flt
	addi s3, s3, 1
	bge s3, s4, claim         # ring drained: no further kicks
	li t1, DMA_CTRL
	li t2, 1
	sw t2, 0(t1)
	j claim
hdone:
` + isrRestore + `
ring:
	.space 48                 # 4 descriptors x 3 words
buf:
	.space 64                 # 16-word burst buffer
`,
	}
}

// ------------------------------------------------------------ uart_cmd

// uartCmdInput is the command script: an accumulator calculator where
// digits build a value, '+' folds it into the sum, and 'x' reports the
// sum through the syscon exit register — from inside the ISR.
const uartCmdInput = "1009+4021+77+x"

func refUARTCmd() uint32 {
	var acc, val uint32
	for _, b := range []byte(uartCmdInput) {
		switch {
		case b >= '0' && b <= '9':
			val = val*10 + uint32(b-'0')
		case b == '+':
			acc += val
			val = 0
		case b == 'x':
			return acc
		}
	}
	return acc
}

// uartCmd is the command-loop demonstrator: the UART receive line
// interrupts on available bytes and the ISR runs the command
// interpreter, draining one byte per claim. The 'x' command latches the
// result and raises a done flag; the main loop observes the flag after
// the handler's mret and reports the sum — so every ISR invocation
// completes through mret and the IRT co-sim can time it.
func uartCmd() Workload {
	return Workload{
		Name:       "uart_cmd",
		Desc:       "UART command interpreter run entirely from the receive ISR",
		Budget:     200_000,
		Expect:     refUARTCmd(),
		UARTIn:     []byte(uartCmdInput),
		Handler:    "handler",
		LoopBounds: map[string]int{"claim": 20},
		Source: `
_start:
	la t0, handler
	csrw mtvec, t0
	li t0, PLIC_ENABLE
	li t1, 0xc                # UART line + test-trigger line
	sw t1, 0(t0)
	li s2, 0                  # acc
	li s3, 0                  # val
	li t0, 0x800              # MEIE
	csrw mie, t0
	csrsi mstatus, 8
main:                         # all work happens in the ISR
	wfi
	la t0, done
	lw t1, 0(t0)
	beqz t1, main
	csrw mie, zero
	la t0, result
	lw a0, 0(t0)
` + exit + `
handler:
` + isrSave + `
claim:
	li t1, PLIC_CLAIM
	lw t2, 0(t1)
	beqz t2, hdone
	li t3, 2
	bne t2, t3, claim         # not the UART line: the claim acked it
	li t1, UART_RX
	lw t2, 0(t1)              # pop one byte
	li t3, '0'
	blt t2, t3, notdig
	li t3, '9'+1
	bge t2, t3, notdig
	addi t2, t2, -'0'         # digit: val = val*10 + d
	li t3, 10
	mul s3, s3, t3
	add s3, s3, t2
	j claim
notdig:
	li t3, '+'
	bne t2, t3, notplus
	add s2, s2, s3            # '+': fold val into acc
	li s3, 0
	j claim
notplus:
	li t3, 'x'
	bne t2, t3, claim         # unknown bytes ignored
	la t1, result             # 'x': latch acc, flag the main loop
	sw s2, 0(t1)
	la t1, done
	li t2, 1
	sw t2, 0(t1)
	j hdone
hdone:
` + isrRestore + `
done:
	.space 4
result:
	.space 4
`,
	}
}
