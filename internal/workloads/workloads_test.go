package workloads_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// TestAllWorkloadsMatchGoReference is the ecosystem's strongest
// end-to-end check: every kernel runs on the emulated platform and must
// produce the checksum computed by an independent Go implementation of
// the same algorithm over the same data.
func TestAllWorkloadsMatchGoReference(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			p, err := vp.New(vp.Config{Sensor: w.Sensor})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
				t.Fatalf("assemble: %v", err)
			}
			stop := p.Run(w.Budget)
			if stop.Reason != emu.StopExit {
				t.Fatalf("stopped with %v, want syscon exit", stop)
			}
			if stop.Code != w.Expect {
				t.Errorf("checksum 0x%08x, want 0x%08x", stop.Code, w.Expect)
			}
		})
	}
}

// The BMI variants must compute identical results to their base pairs
// (that is what makes the speedup comparison meaningful) and run in
// fewer cycles on the edge-small profile.
func TestBMIPairsAgreeAndWin(t *testing.T) {
	for _, pair := range workloads.Pairs() {
		base, bmi := pair[0], pair[1]
		t.Run(base.Name, func(t *testing.T) {
			if base.Expect != bmi.Expect {
				t.Fatalf("pair checksum mismatch: %08x vs %08x", base.Expect, bmi.Expect)
			}
			cycles := func(w workloads.Workload) uint64 {
				cfg := vp.Config{Profile: timing.EdgeSmall()}
				p, err := vp.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
					t.Fatal(err)
				}
				stop := p.Run(w.Budget)
				if stop.Reason != emu.StopExit || stop.Code != w.Expect {
					t.Fatalf("%s: %v (want exit %08x)", w.Name, stop, w.Expect)
				}
				return p.Machine.Hart.Cycle
			}
			cb, cx := cycles(base), cycles(bmi)
			if cx >= cb {
				t.Errorf("BMI variant not faster: base %d <= bmi %d cycles", cb, cx)
			}
		})
	}
}

// Base-ISA kernels must run on a machine without the Xbmi extension;
// BMI kernels must trap there.
func TestBMIExtensionGating(t *testing.T) {
	pair := workloads.Pairs()[0]
	runOn := func(w workloads.Workload, set isa.ExtSet) emu.StopInfo {
		p, err := vp.New(vp.Config{ISA: set})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
			t.Fatal(err)
		}
		return p.Run(w.Budget)
	}
	if stop := runOn(pair[0], isa.RV32IM); stop.Reason != emu.StopExit {
		t.Errorf("base kernel on RV32IM: %v", stop)
	}
	if stop := runOn(pair[1], isa.RV32IM); stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("bmi kernel on RV32IM should trap: %v", stop)
	}
	if stop := runOn(pair[1], isa.RV32IMB); stop.Reason != emu.StopExit {
		t.Errorf("bmi kernel on RV32IMB: %v", stop)
	}
}

func TestByNameAndMetadata(t *testing.T) {
	all := workloads.All()
	if len(all) < 12 {
		t.Fatalf("only %d workloads", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Desc == "" || w.Budget == 0 {
			t.Errorf("%s: missing metadata", w.Name)
		}
		got, ok := workloads.ByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("ByName(%q) failed", w.Name)
		}
	}
	if _, ok := workloads.ByName("no-such"); ok {
		t.Error("ByName should miss")
	}
}
