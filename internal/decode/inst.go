// Package decode turns RISC-V machine-code words into structured
// instructions. It implements a table-driven matcher over the pattern
// table in internal/isa (mirroring QEMU's DecodeTree-generated decoders)
// plus a hand-written decoder for the 16-bit compressed formats.
package decode

import (
	"fmt"

	"repro/internal/isa"
)

// Inst is one decoded instruction. Register fields index the integer or
// floating-point register file depending on the Op (see isa.UsesFPRegs).
// Compressed instructions are decoded into their expanded operand values
// (e.g. c.addi carries the full immediate) with Size == 2.
type Inst struct {
	Op   isa.Op
	Rd   isa.Reg
	Rs1  isa.Reg
	Rs2  isa.Reg
	Rs3  isa.Reg // fused FP only
	Imm  int32   // sign-extended immediate, or shamt/uimm zero-extended
	CSR  isa.CSR // CSR address for Zicsr instructions
	Raw  uint32  // original encoding (low 16 bits for compressed)
	Size uint8   // encoding size in bytes: 2 or 4
}

// Valid reports whether the instruction decoded successfully.
func (i Inst) Valid() bool { return i.Op.Valid() }

// Target returns the absolute control-flow target of a direct branch or
// jump located at pc, and ok=false for indirect or non-control-flow
// instructions.
func (i Inst) Target(pc uint32) (uint32, bool) {
	switch i.Op {
	case isa.OpJAL, isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE,
		isa.OpBLTU, isa.OpBGEU,
		isa.OpCJ, isa.OpCJAL, isa.OpCBEQZ, isa.OpCBNEZ:
		return pc + uint32(i.Imm), true
	}
	return 0, false
}

// WritesReg returns the integer register written by the instruction, and
// ok=false if it writes none (stores, branches, FP-target ops, x0).
func (i Inst) WritesReg() (isa.Reg, bool) {
	fd, _, _ := isa.UsesFPRegs(i.Op)
	if fd {
		return 0, false
	}
	switch i.Op.Class() {
	case isa.ClassStore, isa.ClassBranch, isa.ClassFPStore, isa.ClassSystem:
		return 0, false
	}
	switch i.Op {
	case isa.OpCJ, isa.OpCJR, isa.OpCBEQZ, isa.OpCBNEZ:
		return 0, false
	}
	if i.Rd == isa.Zero {
		return 0, false
	}
	return i.Rd, true
}

// ReadsRegs appends the integer registers the instruction reads to dst
// and returns the extended slice. x0 is never appended (reading it has
// no data dependence), and FP-register operands are excluded: only
// integer register file reads are reported, which is what the dataflow
// and lint layers consume.
func (i Inst) ReadsRegs(dst []isa.Reg) []isa.Reg {
	add := func(r isa.Reg) {
		if r != isa.Zero {
			dst = append(dst, r)
		}
	}
	if !i.Valid() {
		return dst
	}
	if i.Size == 2 {
		switch i.Op {
		case isa.OpCADDI4SPN, isa.OpCLW, isa.OpCLWSP, isa.OpCADDI,
			isa.OpCADDI16SP, isa.OpCSRLI, isa.OpCSRAI, isa.OpCANDI,
			isa.OpCSLLI, isa.OpCJR, isa.OpCJALR, isa.OpCBEQZ, isa.OpCBNEZ:
			add(i.Rs1)
		case isa.OpCSW, isa.OpCSWSP, isa.OpCSUB, isa.OpCXOR, isa.OpCOR,
			isa.OpCAND, isa.OpCADD:
			add(i.Rs1)
			add(i.Rs2)
		case isa.OpCMV:
			add(i.Rs2)
		}
		return dst
	}
	p, ok := isa.PatternFor(i.Op)
	if !ok {
		return dst
	}
	_, f1, f2 := isa.UsesFPRegs(i.Op)
	switch p.Fmt {
	case isa.FmtR, isa.FmtS, isa.FmtB:
		if !f1 {
			add(i.Rs1)
		}
		if !f2 {
			add(i.Rs2)
		}
	case isa.FmtI, isa.FmtIShift, isa.FmtRUnary:
		if !f1 {
			add(i.Rs1)
		}
	case isa.FmtR4:
		// fused FP: all operands are FP registers
	case isa.FmtCSR:
		// csrrw/csrrs/csrrc read rs1; the immediate forms are FmtCSRI
		add(i.Rs1)
	}
	return dst
}

// String disassembles the instruction using standard assembler syntax.
func (i Inst) String() string {
	if !i.Valid() {
		return fmt.Sprintf(".word 0x%08x", i.Raw)
	}
	if i.Size == 2 {
		return i.compressedString()
	}
	p, ok := isa.PatternFor(i.Op)
	if !ok {
		return i.Op.String()
	}
	fd, f1, f2 := isa.UsesFPRegs(i.Op)
	rd := regName(i.Rd, fd)
	rs1 := regName(i.Rs1, f1)
	rs2 := regName(i.Rs2, f2)
	switch p.Fmt {
	case isa.FmtNone:
		return i.Op.String()
	case isa.FmtR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, rd, rs1, rs2)
	case isa.FmtR4:
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op, rd, rs1, rs2, isa.FReg(i.Rs3))
	case isa.FmtI:
		switch i.Op.Class() {
		case isa.ClassLoad, isa.ClassFPLoad:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, rd, i.Imm, rs1)
		}
		if i.Op == isa.OpJALR {
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, rd, i.Imm, rs1)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rd, rs1, i.Imm)
	case isa.FmtIShift:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rd, rs1, i.Imm)
	case isa.FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, rs2, i.Imm, rs1)
	case isa.FmtB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rs1, rs2, i.Imm)
	case isa.FmtU:
		return fmt.Sprintf("%s %s, 0x%x", i.Op, rd, uint32(i.Imm)>>12)
	case isa.FmtJ:
		return fmt.Sprintf("%s %s, %d", i.Op, rd, i.Imm)
	case isa.FmtCSR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, rd, i.CSR, rs1)
	case isa.FmtCSRI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, rd, i.CSR, i.Imm)
	case isa.FmtRUnary:
		return fmt.Sprintf("%s %s, %s", i.Op, rd, rs1)
	}
	return i.Op.String()
}

func regName(r isa.Reg, fp bool) string {
	if fp {
		return isa.FReg(r).String()
	}
	return r.String()
}

func (i Inst) compressedString() string {
	switch i.Op {
	case isa.OpCNOP, isa.OpCEBREAK:
		return i.Op.String()
	case isa.OpCJ, isa.OpCJAL:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case isa.OpCJR, isa.OpCJALR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case isa.OpCBEQZ, isa.OpCBNEZ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case isa.OpCLW, isa.OpCLWSP:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case isa.OpCSW, isa.OpCSWSP:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case isa.OpCMV, isa.OpCADD:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs2)
	case isa.OpCSUB, isa.OpCXOR, isa.OpCOR, isa.OpCAND:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs2)
	case isa.OpCLUI:
		return fmt.Sprintf("%s %s, 0x%x", i.Op, i.Rd, uint32(i.Imm)>>12)
	case isa.OpCADDI16SP:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case isa.OpCADDI4SPN:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	default:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	}
}
