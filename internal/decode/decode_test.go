package decode

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// Known-good encodings cross-checked against the RISC-V spec and GNU
// assembler output.
func TestDecode32KnownEncodings(t *testing.T) {
	cases := []struct {
		word uint32
		asm  string
	}{
		{0x00000013, "addi zero, zero, 0"}, // canonical nop
		{0x00500093, "addi ra, zero, 5"},   // li ra, 5
		{0xfff00113, "addi sp, zero, -1"},  // li sp, -1
		{0x00208233, "add tp, ra, sp"},     // add x4, x1, x2
		{0x402081b3, "sub gp, ra, sp"},     // sub x3, x1, x2
		{0x0040a283, "lw t0, 4(ra)"},       // lw x5, 4(x1)
		{0xfe50ae23, "sw t0, -4(ra)"},      // sw x5, -4(x1)
		{0x000012b7, "lui t0, 0x1"},        // lui x5, 1
		{0x00001297, "auipc t0, 0x1"},      // auipc x5, 1
		{0x008000ef, "jal ra, 8"},          // jal x1, +8
		{0x00008067, "jalr zero, 0(ra)"},   // ret
		{0x00208463, "beq ra, sp, 8"},      // beq +8
		{0xfe209ee3, "bne ra, sp, -4"},     // bne -4
		{0x00000073, "ecall"},
		{0x00100073, "ebreak"},
		{0x30200073, "mret"},
		{0x10500073, "wfi"},
		{0x02208233, "mul tp, ra, sp"},        // mul
		{0x0220c233, "div tp, ra, sp"},        // div
		{0x300112f3, "csrrw t0, mstatus, sp"}, // csrrw
		{0x3002a2f3, "csrrs t0, mstatus, t0"}, // csrrs
		{0x30015273, "csrrwi tp, mstatus, 2"}, // csrrwi
		{0x00409093, "slli ra, ra, 4"},
		{0x4040d093, "srai ra, ra, 4"},
		{0x0020f433, "and s0, ra, sp"},
		{0x60009093, "clz ra, ra"},     // Zbb clz
		{0x60209093, "cpop ra, ra"},    // Zbb cpop
		{0x0080a507, "flw fa0, 8(ra)"}, // F extension load
	}
	for _, c := range cases {
		in := Decode32(c.word)
		if !in.Valid() {
			t.Errorf("0x%08x failed to decode (want %q)", c.word, c.asm)
			continue
		}
		if got := in.String(); got != c.asm {
			t.Errorf("0x%08x: decoded %q, want %q", c.word, got, c.asm)
		}
	}
}

func TestDecode32Invalid(t *testing.T) {
	bad := []uint32{
		0x00000000, // all zeros: defined illegal
		0xffffffff,
		0x0000707f,              // unused funct3 slot in LOAD
		0x00005013 | 0x7<<25<<0, // srli with garbage funct7 bits -> still
	}
	// The last case actually needs construction: srli pattern requires
	// funct7 0000000; set funct7=0000011 which matches nothing.
	bad[3] = 0x13 | 5<<12 | 3<<25
	for _, w := range bad {
		if in := Decode32(w); in.Valid() {
			t.Errorf("0x%08x unexpectedly decoded to %v", w, in)
		}
	}
}

func TestBranchImmediateRange(t *testing.T) {
	// beq x0, x0 with all offset bits set: offset -2.
	in := Decode32(0xfe000fe3)
	if in.Op != isa.OpBEQ || in.Imm != -2 {
		t.Errorf("got %v imm=%d, want beq imm=-2", in.Op, in.Imm)
	}
	// jal x0, -4
	in = Decode32(0xffdff06f)
	if in.Op != isa.OpJAL || in.Imm != -4 {
		t.Errorf("got %v imm=%d, want jal imm=-4", in.Op, in.Imm)
	}
}

func TestTarget(t *testing.T) {
	in := Decode32(0x008000ef) // jal ra, +8
	tgt, ok := in.Target(0x1000)
	if !ok || tgt != 0x1008 {
		t.Errorf("Target = 0x%x, %v; want 0x1008, true", tgt, ok)
	}
	in = Decode32(0x00008067) // jalr (indirect)
	if _, ok := in.Target(0x1000); ok {
		t.Error("jalr must not report a static target")
	}
	in = Decode32(0x00208233) // add
	if _, ok := in.Target(0x1000); ok {
		t.Error("add must not report a target")
	}
}

func TestWritesReg(t *testing.T) {
	cases := []struct {
		word uint32
		want isa.Reg
		ok   bool
	}{
		{0x00500093, isa.RA, true}, // addi ra
		{0x00000013, 0, false},     // addi zero (nop)
		{0xfe50ae23, 0, false},     // sw
		{0x00208463, 0, false},     // beq
		{0x008000ef, isa.RA, true}, // jal ra
		{0x0080a507, 0, false},     // flw fa0 (FP destination)
	}
	for _, c := range cases {
		in := Decode32(c.word)
		r, ok := in.WritesReg()
		if ok != c.ok || (ok && r != c.want) {
			t.Errorf("0x%08x WritesReg = %v,%v want %v,%v", c.word, r, ok, c.want, c.ok)
		}
	}
}

func TestIsCompressed(t *testing.T) {
	if !IsCompressed(0x0001) || IsCompressed(0x0003) {
		t.Error("IsCompressed misclassifies")
	}
}

// Decoding any 32-bit word must be total (no panics) and idempotent in the
// sense that a valid decode always reports Size 4 and keeps Raw.
func TestDecode32Fuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		w := rng.Uint32() | 3 // force 32-bit space
		in := Decode32(w)
		if in.Raw != w {
			t.Fatalf("Raw not preserved for 0x%08x", w)
		}
		if in.Size != 4 {
			t.Fatalf("Size = %d for 0x%08x", in.Size, w)
		}
		if in.Valid() {
			_ = in.String() // must not panic
		}
	}
}

// Decode16 must be total over the whole 16-bit space.
func TestDecode16Total(t *testing.T) {
	valid := 0
	for w := 0; w < 1<<16; w++ {
		half := uint16(w)
		in := Decode16(half)
		if half&3 == 3 {
			if in.Valid() {
				t.Fatalf("0x%04x is not compressed but decoded to %v", half, in.Op)
			}
			continue
		}
		if in.Size != 2 {
			t.Fatalf("Size = %d for 0x%04x", in.Size, half)
		}
		if in.Valid() {
			valid++
			_ = in.String()
			if in.Op.Extension() != isa.ExtC {
				t.Fatalf("0x%04x decoded to non-C op %v", half, in.Op)
			}
		}
	}
	if valid < 20000 {
		t.Errorf("only %d valid compressed encodings; decoder too strict?", valid)
	}
}

func TestDecode16KnownEncodings(t *testing.T) {
	cases := []struct {
		half uint16
		op   isa.Op
	}{
		{0x0001, isa.OpCNOP},
		{0x9002, isa.OpCEBREAK},
		{0x8082, isa.OpCJR},   // ret = c.jr ra
		{0x4501, isa.OpCLI},   // c.li a0, 0
		{0x0505, isa.OpCADDI}, // c.addi a0, 1
		{0x852e, isa.OpCMV},   // c.mv a0, a1
		{0x952e, isa.OpCADD},  // c.add a0, a1
		{0xa001, isa.OpCJ},    // c.j .
		{0xc105, isa.OpCBEQZ}, // c.beqz a0
		{0x4108, isa.OpCLW},   // c.lw a0, 0(a0)
	}
	for _, c := range cases {
		in := Decode16(c.half)
		if in.Op != c.op {
			t.Errorf("0x%04x decoded to %v, want %v", c.half, in.Op, c.op)
		}
	}
}

func TestDecode16Operands(t *testing.T) {
	// c.addi a0, 1 = 0x0505
	in := Decode16(0x0505)
	if in.Rd != isa.A0 || in.Rs1 != isa.A0 || in.Imm != 1 {
		t.Errorf("c.addi: %+v", in)
	}
	// c.li a0, -1 = 0x557d
	in = Decode16(0x557d)
	if in.Op != isa.OpCLI || in.Rd != isa.A0 || in.Imm != -1 {
		t.Errorf("c.li a0,-1: %+v", in)
	}
	// c.lwsp a0, 4(sp) = 0x4512
	in = Decode16(0x4512)
	if in.Op != isa.OpCLWSP || in.Rd != isa.A0 || in.Imm != 4 || in.Rs1 != isa.SP {
		t.Errorf("c.lwsp: %+v", in)
	}
	// c.swsp a0, 4(sp) = 0xc22a
	in = Decode16(0xc22a)
	if in.Op != isa.OpCSWSP || in.Rs2 != isa.A0 || in.Imm != 4 {
		t.Errorf("c.swsp: %+v", in)
	}
}

func TestDecodeDispatch(t *testing.T) {
	if in := Decode(0x0001); in.Op != isa.OpCNOP {
		t.Errorf("Decode(0x0001) = %v, want c.nop", in.Op)
	}
	if in := Decode(0x00000013); in.Op != isa.OpADDI {
		t.Errorf("Decode(nop) = %v, want addi", in.Op)
	}
}

func BenchmarkDecode32(b *testing.B) {
	words := make([]uint32, 256)
	rng := rand.New(rand.NewSource(2))
	for i := range words {
		words[i] = rng.Uint32() | 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode32(words[i&255])
	}
}
