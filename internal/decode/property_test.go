package decode

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// For every pattern, filling the don't-care bits with random values must
// decode back to that op — unless a strictly more specific pattern also
// matches the word, in which case the decoder must prefer it. This
// checks the decodetree-style dispatch exhaustively against the table.
func TestDecodeHonorsPatternSpecificity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	patterns := isa.Patterns()
	for _, p := range patterns {
		for trial := 0; trial < 500; trial++ {
			word := p.Match | rng.Uint32()&^p.Mask
			in := Decode32(word)
			if in.Op == p.Op {
				continue
			}
			// A different op decoded: it must come from a more specific
			// pattern that also matches the word.
			var winner *isa.Pattern
			for i := range patterns {
				q := &patterns[i]
				if q.Op == in.Op && word&q.Mask == q.Match {
					winner = q
					break
				}
			}
			if winner == nil {
				t.Fatalf("%v: word 0x%08x decoded to unrelated %v", p.Op, word, in.Op)
			}
			if bits.OnesCount32(winner.Mask) <= bits.OnesCount32(p.Mask) {
				t.Fatalf("%v: word 0x%08x lost to less specific %v", p.Op, word, in.Op)
			}
		}
	}
}

// Operand extraction must be total over the don't-care space: register
// fields always land in range and immediates respect their format's
// bounds.
func TestDecodeOperandRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range isa.Patterns() {
		for trial := 0; trial < 200; trial++ {
			word := p.Match | rng.Uint32()&^p.Mask
			in := Decode32(word)
			if !in.Valid() {
				t.Fatalf("%v: constructed word 0x%08x does not decode", p.Op, word)
			}
			if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() || !in.Rs3.Valid() {
				t.Fatalf("%v: register out of range in %+v", p.Op, in)
			}
			q, _ := isa.PatternFor(in.Op)
			switch q.Fmt {
			case isa.FmtI:
				if in.Imm < -2048 || in.Imm > 2047 {
					t.Fatalf("%v: I-imm %d out of range", in.Op, in.Imm)
				}
			case isa.FmtIShift, isa.FmtCSRI:
				if in.Imm < 0 || in.Imm > 31 {
					t.Fatalf("%v: shamt/uimm %d out of range", in.Op, in.Imm)
				}
			case isa.FmtB:
				if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
					t.Fatalf("%v: B-imm %d invalid", in.Op, in.Imm)
				}
			case isa.FmtJ:
				if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
					t.Fatalf("%v: J-imm %d invalid", in.Op, in.Imm)
				}
			case isa.FmtU:
				if uint32(in.Imm)&0xfff != 0 {
					t.Fatalf("%v: U-imm 0x%x has low bits", in.Op, uint32(in.Imm))
				}
			}
		}
	}
}
