package decode

import "repro/internal/isa"

// Decode16 decodes a 16-bit compressed (C extension, RV32) instruction.
// Operands are expanded to their architectural values: register fields
// hold full x-register indices and Imm holds the scaled, sign- or
// zero-extended immediate, so the emulator can execute compressed
// instructions with the same semantics code as their 32-bit expansions.
func Decode16(half uint16) Inst {
	in := Inst{Raw: uint32(half), Size: 2}
	if half&3 == 3 {
		return in // not a compressed encoding
	}
	w := uint32(half)
	op := w & 3
	funct3 := w >> 13 & 7
	rc := func(pos uint) isa.Reg { return isa.Reg(w>>pos&7) + 8 } // x8..x15
	rfull := isa.Reg(w >> 7 & 31)
	r2full := isa.Reg(w >> 2 & 31)

	switch op {
	case 0:
		switch funct3 {
		case 0: // c.addi4spn
			imm := w>>11&3<<4 | w>>7&15<<6 | w>>6&1<<2 | w>>5&1<<3
			if imm == 0 {
				return in // reserved (includes the all-zero illegal inst)
			}
			in.Op = isa.OpCADDI4SPN
			in.Rd, in.Rs1, in.Imm = rc(2), isa.SP, int32(imm)
		case 2: // c.lw
			in.Op = isa.OpCLW
			in.Rd, in.Rs1, in.Imm = rc(2), rc(7), int32(immCLS(w))
		case 6: // c.sw
			in.Op = isa.OpCSW
			in.Rs2, in.Rs1, in.Imm = rc(2), rc(7), int32(immCLS(w))
		}
	case 1:
		switch funct3 {
		case 0: // c.addi / c.nop
			imm := immCI(w)
			if rfull == 0 && imm == 0 {
				in.Op = isa.OpCNOP
				return in
			}
			in.Op = isa.OpCADDI
			in.Rd, in.Rs1, in.Imm = rfull, rfull, imm
		case 1: // c.jal (RV32)
			in.Op = isa.OpCJAL
			in.Rd, in.Imm = isa.RA, immCJ(w)
		case 2: // c.li
			in.Op = isa.OpCLI
			in.Rd, in.Imm = rfull, immCI(w)
		case 3:
			if rfull == isa.SP { // c.addi16sp
				imm := w>>12&1<<9 | w>>6&1<<4 | w>>5&1<<6 | w>>3&3<<7 | w>>2&1<<5
				simm := int32(imm) << 22 >> 22
				if simm == 0 {
					return in // reserved
				}
				in.Op = isa.OpCADDI16SP
				in.Rd, in.Rs1, in.Imm = isa.SP, isa.SP, simm
			} else { // c.lui
				imm := w>>12&1<<17 | w>>2&31<<12
				simm := int32(imm) << 14 >> 14
				if simm == 0 || rfull == 0 {
					return in // reserved
				}
				in.Op = isa.OpCLUI
				in.Rd, in.Imm = rfull, simm
			}
		case 4:
			rd := rc(7)
			switch w >> 10 & 3 {
			case 0, 1: // c.srli / c.srai
				if w>>12&1 != 0 {
					return in // shamt[5] reserved on RV32
				}
				in.Rd, in.Rs1, in.Imm = rd, rd, int32(w>>2&31)
				if w>>10&3 == 0 {
					in.Op = isa.OpCSRLI
				} else {
					in.Op = isa.OpCSRAI
				}
			case 2: // c.andi
				in.Op = isa.OpCANDI
				in.Rd, in.Rs1, in.Imm = rd, rd, immCI(w)
			case 3:
				if w>>12&1 != 0 {
					return in // reserved (RV64 c.subw/c.addw)
				}
				in.Rd, in.Rs1, in.Rs2 = rd, rd, rc(2)
				switch w >> 5 & 3 {
				case 0:
					in.Op = isa.OpCSUB
				case 1:
					in.Op = isa.OpCXOR
				case 2:
					in.Op = isa.OpCOR
				case 3:
					in.Op = isa.OpCAND
				}
			}
		case 5: // c.j
			in.Op = isa.OpCJ
			in.Rd, in.Imm = isa.Zero, immCJ(w)
		case 6: // c.beqz
			in.Op = isa.OpCBEQZ
			in.Rs1, in.Rs2, in.Imm = rc(7), isa.Zero, immCB(w)
		case 7: // c.bnez
			in.Op = isa.OpCBNEZ
			in.Rs1, in.Rs2, in.Imm = rc(7), isa.Zero, immCB(w)
		}
	case 2:
		switch funct3 {
		case 0: // c.slli
			if w>>12&1 != 0 || rfull == 0 {
				return in
			}
			in.Op = isa.OpCSLLI
			in.Rd, in.Rs1, in.Imm = rfull, rfull, int32(w>>2&31)
		case 2: // c.lwsp
			if rfull == 0 {
				return in // reserved
			}
			in.Op = isa.OpCLWSP
			in.Rd, in.Rs1 = rfull, isa.SP
			in.Imm = int32(w>>12&1<<5 | w>>4&7<<2 | w>>2&3<<6)
		case 4:
			bit12 := w>>12&1 != 0
			switch {
			case !bit12 && r2full == 0: // c.jr
				if rfull == 0 {
					return in // reserved
				}
				in.Op = isa.OpCJR
				in.Rs1 = rfull
			case !bit12: // c.mv
				in.Op = isa.OpCMV
				in.Rd, in.Rs2 = rfull, r2full
			case rfull == 0 && r2full == 0: // c.ebreak
				in.Op = isa.OpCEBREAK
			case r2full == 0: // c.jalr
				in.Op = isa.OpCJALR
				in.Rd, in.Rs1 = isa.RA, rfull
			default: // c.add
				in.Op = isa.OpCADD
				in.Rd, in.Rs1, in.Rs2 = rfull, rfull, r2full
			}
		case 6: // c.swsp
			in.Op = isa.OpCSWSP
			in.Rs2, in.Rs1 = r2full, isa.SP
			in.Imm = int32(w>>9&15<<2 | w>>7&3<<6)
		}
	}
	return in
}

// immCI extracts the sign-extended 6-bit CI-format immediate.
func immCI(w uint32) int32 {
	imm := w>>12&1<<5 | w>>2&31
	return int32(imm) << 26 >> 26
}

// immCLS extracts the zero-extended word-scaled CL/CS-format offset.
func immCLS(w uint32) uint32 {
	return w>>10&7<<3 | w>>6&1<<2 | w>>5&1<<6
}

// immCJ extracts the sign-extended CJ-format jump offset.
func immCJ(w uint32) int32 {
	imm := w>>12&1<<11 | w>>11&1<<4 | w>>9&3<<8 | w>>8&1<<10 |
		w>>7&1<<6 | w>>6&1<<7 | w>>3&7<<1 | w>>2&1<<5
	return int32(imm) << 20 >> 20
}

// immCB extracts the sign-extended CB-format branch offset.
func immCB(w uint32) int32 {
	imm := w>>12&1<<8 | w>>10&3<<3 | w>>5&3<<6 | w>>3&3<<1 | w>>2&1<<5
	return int32(imm) << 23 >> 23
}
