package decode

import (
	"math/bits"
	"sort"

	"repro/internal/isa"
)

// maskGroup is the set of patterns sharing one mask, indexed by their
// match value. Grouping by mask lets the decoder probe each mask once.
type maskGroup struct {
	mask  uint32
	byVal map[uint32]isa.Pattern
}

// groups holds the mask groups ordered by descending popcount so the most
// specific encodings (e.g. clz, whose mask pins the rs2 field) win over
// broader ones (e.g. rori).
var groups = func() []maskGroup {
	byMask := make(map[uint32]map[uint32]isa.Pattern)
	for _, p := range isa.Patterns() {
		m := byMask[p.Mask]
		if m == nil {
			m = make(map[uint32]isa.Pattern)
			byMask[p.Mask] = m
		}
		if prev, dup := m[p.Match]; dup {
			panic("decode: conflicting patterns " + prev.Op.String() + " / " + p.Op.String())
		}
		m[p.Match] = p
	}
	out := make([]maskGroup, 0, len(byMask))
	for mask, byVal := range byMask {
		out = append(out, maskGroup{mask, byVal})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := bits.OnesCount32(out[i].mask), bits.OnesCount32(out[j].mask)
		if pi != pj {
			return pi > pj
		}
		return out[i].mask > out[j].mask
	})
	return out
}()

// IsCompressed reports whether the 16-bit parcel starts a compressed
// instruction (low two bits != 11).
func IsCompressed(low uint16) bool { return low&3 != 3 }

// Decode decodes the instruction starting at the given parcel. word must
// contain at least the low 16 bits of the encoding; for a 32-bit
// instruction it must contain all 32. The returned Inst has Op ==
// isa.OpInvalid if the encoding is not recognized (Size still reports the
// architectural length of the attempted encoding).
func Decode(word uint32) Inst {
	if IsCompressed(uint16(word)) {
		return Decode16(uint16(word))
	}
	return Decode32(word)
}

// Decode32 decodes a 32-bit instruction word.
func Decode32(word uint32) Inst {
	for _, g := range groups {
		if p, ok := g.byVal[word&g.mask]; ok {
			return extract(p, word)
		}
	}
	return Inst{Raw: word, Size: 4}
}

func extract(p isa.Pattern, word uint32) Inst {
	in := Inst{Op: p.Op, Raw: word, Size: 4}
	rd := isa.Reg(word >> 7 & 31)
	rs1 := isa.Reg(word >> 15 & 31)
	rs2 := isa.Reg(word >> 20 & 31)
	switch p.Fmt {
	case isa.FmtNone:
	case isa.FmtR:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
	case isa.FmtR4:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		in.Rs3 = isa.Reg(word >> 27 & 31)
	case isa.FmtI:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = int32(word) >> 20
	case isa.FmtIShift:
		in.Rd, in.Rs1 = rd, rs1
		in.Imm = int32(word >> 20 & 31)
	case isa.FmtS:
		in.Rs1, in.Rs2 = rs1, rs2
		in.Imm = int32(word)>>25<<5 | int32(word>>7&31)
	case isa.FmtB:
		in.Rs1, in.Rs2 = rs1, rs2
		in.Imm = immB(word)
	case isa.FmtU:
		in.Rd = rd
		in.Imm = int32(word & 0xfffff000)
	case isa.FmtJ:
		in.Rd = rd
		in.Imm = immJ(word)
	case isa.FmtCSR:
		in.Rd, in.Rs1 = rd, rs1
		in.CSR = isa.CSR(word >> 20)
	case isa.FmtCSRI:
		in.Rd = rd
		in.Imm = int32(word >> 15 & 31) // uimm in the rs1 field
		in.CSR = isa.CSR(word >> 20)
	case isa.FmtRUnary:
		in.Rd, in.Rs1 = rd, rs1
	}
	return in
}

// immB extracts the B-type branch offset (sign-extended, even).
func immB(w uint32) int32 {
	imm := uint32(0)
	imm |= w >> 31 & 1 << 12
	imm |= w >> 7 & 1 << 11
	imm |= w >> 25 & 0x3f << 5
	imm |= w >> 8 & 0xf << 1
	return int32(imm) << 19 >> 19
}

// immJ extracts the J-type jump offset (sign-extended, even).
func immJ(w uint32) int32 {
	imm := uint32(0)
	imm |= w >> 31 & 1 << 20
	imm |= w >> 12 & 0xff << 12
	imm |= w >> 20 & 1 << 11
	imm |= w >> 21 & 0x3ff << 1
	return int32(imm) << 11 >> 11
}
