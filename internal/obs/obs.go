// Package obs is the dependency-light observability layer of the
// ecosystem: atomic counters, gauges and histograms collected in a
// registry with Prometheus-text and JSON export, plus a structured
// trace-event sink (trace.go). It exists so the runtime — the threaded
// emulation engine, fault campaigns, QTA loops — is measurable in
// production instead of a black box.
//
// Overhead policy: every method is safe on a nil receiver and returns
// immediately, so instrumented code holds plain metric pointers that are
// nil when observability is disabled — the hot-path cost of a disabled
// metric is one predictable nil check. Enabled counters and gauges are
// single atomic operations; histograms are one atomic per bucket
// observation. Nothing in this package allocates on the update path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value reads 0;
// all methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets with fixed
// upper bounds, Prometheus-style. All methods are nil-safe no-ops.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts the way Prometheus' histogram_quantile does: find the bucket
// the target rank falls into and interpolate linearly inside it. The
// estimate of a rank beyond the last finite bound is clamped to that
// bound (there is no upper edge to interpolate toward). Returns NaN on
// an empty histogram or a q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range h.bounds {
		n := float64(h.counts[i].Load())
		if cum+n >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if n == 0 {
				return b
			}
			return lower + (b-lower)*((rank-cum)/n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one registered instrument; exactly one of c/g/h is non-nil.
type metric struct {
	name string // may carry Prometheus labels: foo_total{outcome="sdc"}
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

func (m *metric) kind() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds named metrics in registration order. The zero value is
// NOT usable; call NewRegistry. A nil *Registry is valid everywhere and
// hands out nil instruments, so a disabled observability configuration
// is one nil at setup time and nil checks on the hot path.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on
// first use. The name may embed Prometheus labels
// (`foo_total{outcome="sdc"}`); the help string is kept from the first
// registration. A nil registry returns a nil (no-op) counter, as does a
// name already registered as a different kind.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.c // nil when the name is another kind: caller gets a no-op
	}
	m := &metric{name: name, help: help, c: &Counter{}}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry and kind mismatches behave as in Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.g
	}
	m := &metric{name: name, help: help, g: &Gauge{}}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.g
}

// Histogram returns the histogram registered under name with the given
// ascending bucket bounds, creating it on first use. Nil registry and
// kind mismatches behave as in Counter.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m.h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	m := &metric{name: name, help: help, h: h}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m.h
}

// baseName strips an embedded label set: `foo{a="b"}` -> `foo`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel merges an extra label into a possibly-labeled name:
// withLabel(`foo{a="b"}`, `le="1"`) -> `foo{a="b",le="1"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, in registration order. HELP/TYPE headers are emitted once per
// base metric name, so labeled series of one family group correctly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	headered := map[string]bool{}
	for _, m := range r.order {
		base := baseName(m.name)
		if !headered[base] {
			headered[base] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.kind()); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.g.Value()))
		default:
			err = m.h.writePrometheus(w, m.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writePrometheus(w io.Writer, name string) error {
	// A labeled histogram keeps its labels on every derived series:
	// `foo{t="x"}` exposes foo_bucket{t="x",le="1"}, foo_sum{t="x"},
	// foo_count{t="x"} — otherwise labeled families would collide.
	base, labels := baseName(name), ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = name[i:]
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := fmt.Sprintf(`le="%s"`, formatFloat(b))
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(base+"_bucket"+labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(base+"_bucket"+labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count())
	return err
}

// jsonMetric is the JSON export shape of one metric.
type jsonMetric struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Value   *float64     `json:"value,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Count   *uint64      `json:"count,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"`    // upper bound; "+Inf" for the overflow bucket
	Count uint64 `json:"count"` // cumulative, like the text format
}

// WriteJSON renders the registry as a JSON document
// {"metrics":[...]} in registration order.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := struct {
		Metrics []jsonMetric `json:"metrics"`
	}{Metrics: []jsonMetric{}}
	f := func(v float64) *float64 { return &v }
	for _, m := range r.order {
		jm := jsonMetric{Name: m.name, Type: m.kind(), Help: m.help}
		switch {
		case m.c != nil:
			jm.Value = f(float64(m.c.Value()))
		case m.g != nil:
			jm.Value = f(m.g.Value())
		default:
			h := m.h
			sum, count := h.Sum(), h.Count()
			jm.Sum, jm.Count = &sum, &count
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				jm.Buckets = append(jm.Buckets, jsonBucket{LE: formatFloat(b), Count: cum})
			}
			cum += h.counts[len(h.bounds)].Load()
			jm.Buckets = append(jm.Buckets, jsonBucket{LE: "+Inf", Count: cum})
		}
		out.Metrics = append(out.Metrics, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteFile exports the registry to path: JSON when the path ends in
// .json, Prometheus text otherwise. "-" writes Prometheus text to
// stdout. A nil registry writes nothing and returns nil.
func (r *Registry) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	if path == "-" {
		return r.WritePrometheus(os.Stdout)
	}
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(fd)
	} else {
		err = r.WritePrometheus(fd)
	}
	if cerr := fd.Close(); err == nil {
		err = cerr
	}
	return err
}
