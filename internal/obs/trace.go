package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured trace record. Nanos is monotonic time since
// the trace was created, so event streams from different runs are
// directly comparable and carry no wall-clock noise.
type Event struct {
	Seq    uint64         `json:"seq"`
	Nanos  int64          `json:"ns"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Trace is a ring-buffered structured event sink with an optional
// streaming JSONL writer. Emit is safe for concurrent use and is a
// nil-safe no-op, so instrumented code keeps a possibly-nil *Trace and
// pays one nil check when tracing is off.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	ring  []Event
	next  int
	full  bool
	seq   uint64
	enc   *json.Encoder
	w     io.Writer
}

// DefaultRing is the ring capacity used when NewTrace is given n <= 0.
const DefaultRing = 4096

// NewTrace creates a trace sink holding the last n events (DefaultRing
// when n <= 0). When w is non-nil every event is additionally streamed
// to it as one JSON line.
func NewTrace(n int, w io.Writer) *Trace {
	if n <= 0 {
		n = DefaultRing
	}
	t := &Trace{start: time.Now(), ring: make([]Event, n), w: w}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// NewFileTrace opens path (creating/truncating it) and returns a trace
// streaming JSONL to it plus a close function that flushes the file.
func NewFileTrace(path string, n int) (*Trace, func() error, error) {
	fd, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(fd)
	t := NewTrace(n, bw)
	closer := func() error {
		err := bw.Flush()
		if cerr := fd.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return t, closer, nil
}

// Emit records one event. kv is alternating key, value pairs; a
// dangling key is recorded under "arg". Nil-safe no-op.
func (t *Trace) Emit(name string, kv ...any) {
	if t == nil {
		return
	}
	var fields map[string]any
	if len(kv) > 0 {
		fields = make(map[string]any, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			if i+1 < len(kv) {
				if k, ok := kv[i].(string); ok {
					fields[k] = kv[i+1]
					continue
				}
			}
			fields["arg"] = kv[i]
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := Event{Seq: t.seq, Nanos: time.Since(t.start).Nanoseconds(), Name: name, Fields: fields}
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	if t.enc != nil {
		// Encoding errors are deliberately swallowed: tracing must never
		// fail the traced run. The ring copy is still intact.
		_ = t.enc.Encode(ev)
	}
}

// Events returns the buffered events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
