package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s4e_test_total", "test counter")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	// Same name returns the same instrument.
	if r.Counter("s4e_test_total", "").Value() != 8000 {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("s4e_test_gauge", "")
	g.Set(2.5)
	g.Add(-1.0)
	if v := g.Value(); v != 1.5 {
		t.Errorf("gauge = %v", v)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 4001.5 {
		t.Errorf("gauge after concurrent adds = %v", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s4e_test_seconds", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Errorf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`s4e_test_seconds_bucket{le="1"} 1`,
		`s4e_test_seconds_bucket{le="10"} 3`,
		`s4e_test_seconds_bucket{le="100"} 4`,
		`s4e_test_seconds_bucket{le="+Inf"} 5`,
		`s4e_test_seconds_sum 560.5`,
		`s4e_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	if err := r.WriteFile("/nonexistent/never-created"); err != nil {
		t.Error("nil registry WriteFile must be a no-op")
	}
	var tr *Trace
	tr.Emit("ev", "k", 1)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil trace must be inert")
	}
}

func TestKindMismatchIsNoOp(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	if g := r.Gauge("dual", ""); g != nil {
		t.Error("gauge under a counter name must be nil")
	}
	if h := r.Histogram("dual", "", nil); h != nil {
		t.Error("histogram under a counter name must be nil")
	}
}

func TestPrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(`s4e_fault_mutants_total{outcome="masked"}`, "mutants by outcome").Add(3)
	r.Counter(`s4e_fault_mutants_total{outcome="sdc"}`, "mutants by outcome").Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE s4e_fault_mutants_total counter") != 1 {
		t.Errorf("labeled family must share one TYPE header:\n%s", out)
	}
	if !strings.Contains(out, `s4e_fault_mutants_total{outcome="masked"} 3`) ||
		!strings.Contains(out, `s4e_fault_mutants_total{outcome="sdc"} 1`) {
		t.Errorf("labeled series missing:\n%s", out)
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help c").Add(7)
	r.Gauge("g", "").Set(0.25)
	r.Histogram("h", "", []float64{1}).Observe(2)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string   `json:"name"`
			Type    string   `json:"type"`
			Value   *float64 `json:"value"`
			Count   *uint64  `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("got %d metrics", len(doc.Metrics))
	}
	if doc.Metrics[0].Type != "counter" || *doc.Metrics[0].Value != 7 {
		t.Errorf("counter export wrong: %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Type != "gauge" || *doc.Metrics[1].Value != 0.25 {
		t.Errorf("gauge export wrong: %+v", doc.Metrics[1])
	}
	hm := doc.Metrics[2]
	if hm.Type != "histogram" || *hm.Count != 1 || len(hm.Buckets) != 2 {
		t.Errorf("histogram export wrong: %+v", hm)
	}
	if hm.Buckets[1].LE != "+Inf" || hm.Buckets[1].Count != 1 {
		t.Errorf("+Inf bucket wrong: %+v", hm.Buckets[1])
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4, nil)
	for i := 0; i < 6; i++ {
		tr.Emit("ev", "i", i)
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Len() != 4 {
		t.Fatalf("ring holds %d events", len(evs))
	}
	// Oldest two fell off; remaining are 2..5 in order.
	for i, ev := range evs {
		if ev.Fields["i"] != 2+i {
			t.Errorf("event %d: fields %v", i, ev.Fields)
		}
		if ev.Seq != uint64(3+i) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
	}
}

func TestTraceJSONL(t *testing.T) {
	var sb strings.Builder
	tr := NewTrace(8, &sb)
	tr.Emit("start", "prog", "task.s")
	tr.Emit("stop", "code", 3)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "start" || ev.Fields["prog"] != "task.s" || ev.Seq != 1 {
		t.Errorf("decoded event: %+v", ev)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(128, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit("ev", "worker", w)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 128 {
		t.Errorf("ring len %d", tr.Len())
	}
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "", []float64{1, 2, 4, 8})

	if v := h.Quantile(0.5); v == v { // NaN check without math import
		t.Errorf("empty histogram quantile %v, want NaN", v)
	}

	// 100 samples uniform in (0,1]: every quantile lands in the first
	// bucket and interpolates within [0,1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if v := h.Quantile(0.5); v < 0.4 || v > 0.6 {
		t.Errorf("p50 %v, want ~0.5", v)
	}
	if v := h.Quantile(0.99); v < 0.9 || v > 1.0 {
		t.Errorf("p99 %v, want ~0.99", v)
	}
	if v := h.Quantile(1); v != 1 {
		t.Errorf("p100 %v, want 1 (upper bound of the hit bucket)", v)
	}

	// Push half the mass into the 2-4 bucket: the median moves there.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if v := h.Quantile(0.75); v < 2 || v > 4 {
		t.Errorf("p75 %v, want within (2,4]", v)
	}

	// Samples beyond the last finite bound clamp to it.
	h2 := r.Histogram("q2_seconds", "", []float64{1})
	h2.Observe(50)
	if v := h2.Quantile(0.99); v != 1 {
		t.Errorf("overflow quantile %v, want clamp to 1", v)
	}

	if v := h.Quantile(-0.1); v == v {
		t.Errorf("out-of-range q: %v, want NaN", v)
	}
}
