package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/decode"
	"repro/internal/isa"
)

// IntervalState holds one value interval per integer register. x0 is
// pinned to the exact zero interval by every operation.
type IntervalState [32]Interval

// Get returns the interval of r.
func (s IntervalState) Get(r isa.Reg) Interval {
	if r == isa.Zero {
		return Const(0)
	}
	return s[r]
}

func (s *IntervalState) set(r isa.Reg, iv Interval) {
	if r != isa.Zero {
		s[r] = iv
	}
}

// IntervalDomain is the per-register value-range domain. The zero value
// analyzes a function whose entry register state is unknown; use
// NewIntervalDomain to supply a known entry state (e.g. after a reset
// where registers are cleared).
type IntervalDomain struct {
	entry IntervalState
}

// NewIntervalDomain returns a domain whose Entry state is entry.
func NewIntervalDomain(entry IntervalState) *IntervalDomain {
	return &IntervalDomain{entry: entry}
}

// UnknownEntry is the all-Top register state (x0 aside).
func UnknownEntry() IntervalState {
	var s IntervalState
	for r := 1; r < 32; r++ {
		s[r] = Top()
	}
	s[0] = Const(0)
	return s
}

func (d *IntervalDomain) Entry() IntervalState {
	if (d.entry == IntervalState{}) {
		return UnknownEntry()
	}
	return d.entry
}

func (d *IntervalDomain) Top() IntervalState { return UnknownEntry() }

func (d *IntervalDomain) Join(a, b IntervalState) IntervalState {
	var out IntervalState
	for r := 1; r < 32; r++ {
		out[r] = a[r].Join(b[r])
	}
	out[0] = Const(0)
	return out
}

func (d *IntervalDomain) Widen(prev, next IntervalState) IntervalState {
	var out IntervalState
	for r := 1; r < 32; r++ {
		out[r] = prev[r].Widen(next[r])
	}
	out[0] = Const(0)
	return out
}

func (d *IntervalDomain) Equal(a, b IntervalState) bool { return a == b }

func (d *IntervalDomain) TransferBlock(b *cfg.Block, in IntervalState) IntervalState {
	s := in
	for i, inst := range b.Insts {
		ApplyInst(&s, b.Addrs[i], inst)
	}
	if b.Term == cfg.TermCall {
		// Call havoc: the callee may clobber any register.
		s = UnknownEntry()
	}
	return s
}

// ApplyInst updates the register intervals for one executed instruction
// at pc. It is shared between the block transfer and the linter's
// instruction-by-instruction walk.
func ApplyInst(s *IntervalState, pc uint32, in decode.Inst) {
	rd, writes := in.WritesReg()
	if !writes {
		return
	}
	v1 := s.Get(in.Rs1)
	v2 := s.Get(in.Rs2)
	var out Interval
	switch in.Op {
	case isa.OpLUI, isa.OpCLUI:
		out = Const(int64(in.Imm))
	case isa.OpAUIPC:
		out = Const(int64(pc) + int64(in.Imm))
	case isa.OpADDI, isa.OpCADDI, isa.OpCLI, isa.OpCADDI16SP, isa.OpCADDI4SPN:
		// The decoder populates Rs1 for the SP-implicit compressed forms,
		// and c.li carries Rs1 = x0.
		out = v1.AddConst(int64(in.Imm))
	case isa.OpADD, isa.OpCADD:
		out = v1.Add(v2)
	case isa.OpSUB, isa.OpCSUB:
		out = v1.Sub(v2)
	case isa.OpCMV:
		out = v2
	case isa.OpSLLI, isa.OpCSLLI:
		out = v1.ShiftLeft(uint(in.Imm) & 31)
	case isa.OpSRLI, isa.OpCSRLI:
		out = shiftRightU(v1, uint(in.Imm)&31)
	case isa.OpSRAI, isa.OpCSRAI:
		out = shiftRightS(v1, uint(in.Imm)&31)
	case isa.OpSLL:
		if k, ok := v2.Singleton(); ok {
			out = v1.ShiftLeft(uint(k) & 31)
		} else {
			out = Top()
		}
	case isa.OpSRL:
		if k, ok := v2.Singleton(); ok {
			out = shiftRightU(v1, uint(k)&31)
		} else {
			out = Top()
		}
	case isa.OpSRA:
		if k, ok := v2.Singleton(); ok {
			out = shiftRightS(v1, uint(k)&31)
		} else {
			out = Top()
		}
	case isa.OpANDI, isa.OpCANDI:
		out = andConst(v1, int64(in.Imm))
	case isa.OpAND:
		if c, ok := v2.Singleton(); ok {
			out = andConst(v1, int64(int32(c)))
		} else if c, ok := v1.Singleton(); ok {
			out = andConst(v2, int64(int32(c)))
		} else {
			out = Top()
		}
	case isa.OpORI, isa.OpXORI:
		if c, ok := v1.Singleton(); ok {
			if in.Op == isa.OpORI {
				out = Const(int64(int32(c) | in.Imm))
			} else {
				out = Const(int64(int32(c) ^ in.Imm))
			}
		} else {
			out = Top()
		}
	case isa.OpOR, isa.OpXOR, isa.OpCOR, isa.OpCXOR:
		c1, ok1 := v1.Singleton()
		c2, ok2 := v2.Singleton()
		if ok1 && ok2 {
			if in.Op == isa.OpOR || in.Op == isa.OpCOR {
				out = Const(int64(c1 | c2))
			} else {
				out = Const(int64(c1 ^ c2))
			}
		} else {
			out = Top()
		}
	case isa.OpSLTI:
		out = compareResult(cmpLessS(v1, Const(int64(in.Imm))))
	case isa.OpSLTIU:
		out = compareResult(cmpLessU(v1, Const(int64(uint32(in.Imm)))))
	case isa.OpSLT:
		out = compareResult(cmpLessS(v1, v2))
	case isa.OpSLTU:
		out = compareResult(cmpLessU(v1, v2))
	case isa.OpMUL:
		out = mulInterval(v1, v2)
	case isa.OpREMU:
		if c, ok := v2.Singleton(); ok && c > 0 {
			out = Interval{0, int64(c) - 1}
		} else {
			out = Top()
		}
	case isa.OpJAL, isa.OpJALR, isa.OpCJAL, isa.OpCJALR:
		out = Const(int64(pc) + int64(in.Size))
	default:
		out = Top()
	}
	s.set(rd, out)
}

// shiftRightU is the logical right shift of an interval.
func shiftRightU(iv Interval, k uint) Interval {
	lo, hi, ok := iv.U32()
	if !ok {
		return Interval{0, int64(^uint32(0) >> k)}
	}
	return Interval{int64(lo >> k), int64(hi >> k)}
}

// shiftRightS is the arithmetic right shift of an interval.
func shiftRightS(iv Interval, k uint) Interval {
	lo, hi, ok := iv.S32()
	if !ok {
		return Top()
	}
	return Interval{lo >> k, hi >> k}
}

// andConst bounds v & m. For a non-negative mask the result is in
// [0, m]; singletons are exact.
func andConst(iv Interval, m int64) Interval {
	if c, ok := iv.Singleton(); ok {
		return Const(int64(int32(c) & int64ToI32(m)))
	}
	if m >= 0 {
		return Interval{0, m}
	}
	return Top()
}

func int64ToI32(v int64) int32 { return int32(uint32(uint64(v))) }

// cmpLessS decides a < b over signed 32-bit views: +1 always true,
// 0 always false, -1 unknown.
func cmpLessS(a, b Interval) int {
	alo, ahi, aok := a.S32()
	blo, bhi, bok := b.S32()
	if !aok || !bok {
		return -1
	}
	if ahi < blo {
		return 1
	}
	if alo >= bhi {
		return 0
	}
	return -1
}

// cmpLessU decides a < b over unsigned 32-bit views.
func cmpLessU(a, b Interval) int {
	alo, ahi, aok := a.U32()
	blo, bhi, bok := b.U32()
	if !aok || !bok {
		return -1
	}
	if uint64(ahi) < uint64(blo) {
		return 1
	}
	if uint64(alo) >= uint64(bhi) {
		return 0
	}
	return -1
}

func compareResult(v int) Interval {
	switch v {
	case 1:
		return Const(1)
	case 0:
		return Const(0)
	}
	return Interval{0, 1}
}

func mulInterval(a, b Interval) Interval {
	alo, ahi, aok := a.S32()
	blo, bhi, bok := b.S32()
	if !aok || !bok || alo < 0 || blo < 0 {
		return Top()
	}
	return Interval{alo * blo, ahi * bhi}.norm()
}

// TransferEdge refines the out-state along a conditional-branch edge by
// clamping the compared registers with the branch condition (or its
// negation on the fallthrough edge). ok=false marks an edge whose
// condition is statically unsatisfiable.
func (d *IntervalDomain) TransferEdge(b *cfg.Block, sc cfg.Succ, out IntervalState) (IntervalState, bool) {
	if b.Term != cfg.TermBranch || len(b.Insts) == 0 {
		return out, true
	}
	br := b.Insts[len(b.Insts)-1]
	cond, ok := BranchCond(br)
	if !ok {
		return out, true
	}
	if sc.Kind != cfg.EdgeTaken {
		cond = cond.Negate()
	}
	return refineCond(out, cond)
}

// CondOp is a normalized comparison operator.
type CondOp uint8

const (
	CondEQ CondOp = iota
	CondNE
	CondLTS // signed <
	CondGES // signed >=
	CondLTU // unsigned <
	CondGEU // unsigned >=
)

// Cond is a normalized branch condition A op B over two registers.
type Cond struct {
	Op   CondOp
	A, B isa.Reg
}

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c.Op {
	case CondEQ:
		c.Op = CondNE
	case CondNE:
		c.Op = CondEQ
	case CondLTS:
		c.Op = CondGES
	case CondGES:
		c.Op = CondLTS
	case CondLTU:
		c.Op = CondGEU
	case CondGEU:
		c.Op = CondLTU
	}
	return c
}

// BranchCond extracts the taken-edge condition of a conditional branch.
func BranchCond(in decode.Inst) (Cond, bool) {
	switch in.Op {
	case isa.OpBEQ:
		return Cond{CondEQ, in.Rs1, in.Rs2}, true
	case isa.OpBNE:
		return Cond{CondNE, in.Rs1, in.Rs2}, true
	case isa.OpBLT:
		return Cond{CondLTS, in.Rs1, in.Rs2}, true
	case isa.OpBGE:
		return Cond{CondGES, in.Rs1, in.Rs2}, true
	case isa.OpBLTU:
		return Cond{CondLTU, in.Rs1, in.Rs2}, true
	case isa.OpBGEU:
		return Cond{CondGEU, in.Rs1, in.Rs2}, true
	case isa.OpCBEQZ:
		return Cond{CondEQ, in.Rs1, isa.Zero}, true
	case isa.OpCBNEZ:
		return Cond{CondNE, in.Rs1, isa.Zero}, true
	}
	return Cond{}, false
}

// refineCond clamps the state with cond; ok=false if unsatisfiable.
func refineCond(s IntervalState, c Cond) (IntervalState, bool) {
	a, b := s.Get(c.A), s.Get(c.B)
	setA := func(iv Interval, ok bool) bool {
		if !ok {
			return false
		}
		s.set(c.A, iv)
		return true
	}
	setB := func(iv Interval, ok bool) bool {
		if !ok {
			return false
		}
		s.set(c.B, iv)
		return true
	}
	switch c.Op {
	case CondEQ:
		// Both sides take the (conservative) intersection via clamps.
		if blo, bhi, ok := b.S32(); ok {
			na, nok := a.ClampLowerS(blo)
			if !nok {
				return s, false
			}
			na, nok = na.ClampUpperS(bhi)
			if !setA(na, nok) {
				return s, false
			}
		}
		if alo, ahi, ok := a.S32(); ok {
			nb, nok := b.ClampLowerS(alo)
			if !nok {
				return s, false
			}
			nb, nok = nb.ClampUpperS(ahi)
			if !setB(nb, nok) {
				return s, false
			}
		}
	case CondNE:
		if ca, aok := a.Singleton(); aok {
			if cb, bok := b.Singleton(); bok && ca == cb {
				return s, false
			}
		}
		// Trim a boundary point when one side is a singleton.
		if cb, ok := b.Singleton(); ok {
			s.set(c.A, trimPoint(a, cb))
		}
		if ca, ok := a.Singleton(); ok {
			s.set(c.B, trimPoint(b, ca))
		}
	case CondLTS:
		if _, bhi, ok := b.S32(); ok {
			if !setA(a.ClampUpperS(bhi - 1)) {
				return s, false
			}
		}
		if alo, _, ok := a.S32(); ok {
			if !setB(b.ClampLowerS(alo + 1)) {
				return s, false
			}
		}
	case CondGES:
		if blo, _, ok := b.S32(); ok {
			if !setA(a.ClampLowerS(blo)) {
				return s, false
			}
		}
		if _, ahi, ok := a.S32(); ok {
			if !setB(b.ClampUpperS(ahi)) {
				return s, false
			}
		}
	case CondLTU:
		if _, bhi, ok := b.U32(); ok {
			if bhi == 0 {
				return s, false // nothing is unsigned-< 0
			}
			if !setA(a.ClampUpperU(bhi - 1)) {
				return s, false
			}
		}
		if alo, _, ok := a.U32(); ok {
			if !setB(b.ClampLowerU(alo + 1)) {
				return s, false
			}
		}
	case CondGEU:
		if blo, _, ok := b.U32(); ok {
			if !setA(a.ClampLowerU(blo)) {
				return s, false
			}
		}
		if _, ahi, ok := a.U32(); ok {
			if !setB(b.ClampUpperU(ahi)) {
				return s, false
			}
		}
	}
	return s, true
}

// trimPoint removes v from an interval when it sits on a 32-bit
// boundary of it (the only case an interval can express).
func trimPoint(iv Interval, v uint32) Interval {
	if lo, hi, ok := iv.U32(); ok {
		if lo == hi && lo == v {
			return iv // caller handles the infeasible case
		}
		if lo == v {
			return iv.addLo(1)
		}
		if hi == v {
			return iv.addHi(-1)
		}
		return iv
	}
	if lo, hi, ok := iv.S32(); ok {
		sv := int64(int32(v))
		if lo == hi && lo == sv {
			return iv
		}
		if lo == sv {
			return iv.addLo(1)
		}
		if hi == sv {
			return iv.addHi(-1)
		}
	}
	return iv
}

func (iv Interval) addLo(d int64) Interval {
	if iv.IsTop() {
		return iv
	}
	return Interval{iv.Lo + d, iv.Hi}.norm()
}

func (iv Interval) addHi(d int64) Interval {
	if iv.IsTop() {
		return iv
	}
	return Interval{iv.Lo, iv.Hi + d}.norm()
}
