package dataflow_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/isa"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func inferBounds(t *testing.T, src string) map[uint32]int {
	t.Helper()
	g := buildGraph(t, src)
	loops, err := g.NaturalLoops(g.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return dataflow.InferLoopBounds(g, g.Entry, loops)
}

// singleBound asserts exactly one loop got a bound and returns it.
func singleBound(t *testing.T, src string) int {
	t.Helper()
	bounds := inferBounds(t, src)
	if len(bounds) != 1 {
		t.Fatalf("bounds = %v, want exactly one", bounds)
	}
	for _, b := range bounds {
		return b
	}
	return 0
}

func TestIntervalBasics(t *testing.T) {
	if !dataflow.Top().IsTop() {
		t.Error("Top not top")
	}
	c := dataflow.Const(-5)
	if lo, hi, ok := c.U32(); !ok || lo != 0xffff_fffb || hi != lo {
		t.Errorf("Const(-5).U32() = %x..%x %v", lo, hi, ok)
	}
	sum := dataflow.Const(10).Add(dataflow.Interval{Lo: 0, Hi: 5})
	if sum.Lo != 10 || sum.Hi != 15 {
		t.Errorf("sum = %v", sum)
	}
	w := dataflow.Interval{Lo: 0, Hi: 1}.Widen(dataflow.Interval{Lo: 0, Hi: 2})
	if !w.IsTop() {
		t.Errorf("widen should blow the moving bound to top, got %v", w)
	}
	stable := dataflow.Interval{Lo: 0, Hi: 2}.Widen(dataflow.Interval{Lo: 0, Hi: 2})
	if stable != (dataflow.Interval{Lo: 0, Hi: 2}) {
		t.Errorf("widen of stable interval changed it: %v", stable)
	}
}

func TestIntervalSignedView(t *testing.T) {
	iv := dataflow.Const(0x8000_0000)
	if lo, hi, ok := iv.S32(); !ok || lo != -(1<<31) || hi != lo {
		t.Errorf("S32 of 0x80000000 = %d..%d %v", lo, hi, ok)
	}
	if lo, hi, ok := iv.U32(); !ok || lo != 0x8000_0000 || hi != lo {
		t.Errorf("U32 of 0x80000000 = %x..%x %v", lo, hi, ok)
	}
}

// The solver must track li/lui/addi address formation exactly through
// straight-line code and joins.
func TestIntervalSolveStraightLine(t *testing.T) {
	g := buildGraph(t, `
		li   a0, 0x80000000
		addi a0, a0, 16
		li   a1, 3
		slli a1, a1, 4
		ebreak
	`)
	res := dataflow.Solve(g, g.Entry, dataflow.NewIntervalDomain(dataflow.UnknownEntry()))
	out, ok := res.Out[g.Entry]
	if !ok {
		t.Fatal("entry block has no out state")
	}
	if v, ok := out.Get(isa.A0).Singleton(); !ok || v != 0x8000_0010 {
		t.Errorf("a0 = %v, want 0x80000010", out.Get(isa.A0))
	}
	if v, ok := out.Get(isa.A1).Singleton(); !ok || v != 48 {
		t.Errorf("a1 = %v, want 48", out.Get(isa.A1))
	}
}

// Branch refinement: on the fallthrough of blt a0, x0 the value is known
// non-negative.
func TestIntervalBranchRefinement(t *testing.T) {
	g := buildGraph(t, `
		blt  a0, zero, neg
		addi a1, a0, 0
		ebreak
neg:	ebreak
	`)
	res := dataflow.Solve(g, g.Entry, dataflow.NewIntervalDomain(dataflow.UnknownEntry()))
	eb := g.Blocks[g.Entry]
	for _, s := range eb.Succs {
		in, ok := res.EdgeState(g.Entry, s.Addr)
		if !ok {
			t.Fatalf("edge to %x infeasible", s.Addr)
		}
		lo, hi, sok := in.Get(isa.A0).S32()
		if s.Kind == cfg.EdgeFall {
			if !sok || lo < 0 {
				t.Errorf("fallthrough a0 = %v, want >= 0", in.Get(isa.A0))
			}
		} else if !sok || hi >= 0 {
			t.Errorf("taken a0 = %v, want < 0", in.Get(isa.A0))
		}
	}
}

func TestInitDomainJoin(t *testing.T) {
	d := dataflow.NewInitDomain(dataflow.InitState{})
	a := dataflow.InitState{May: 0b0110 | 1, Must: 0b0110 | 1}
	b := dataflow.InitState{May: 0b1010 | 1, Must: 0b1010 | 1}
	j := d.Join(a, b)
	if j.May != (0b1110 | 1) {
		t.Errorf("May = %b", j.May)
	}
	if j.Must != (0b0010 | 1) {
		t.Errorf("Must = %b", j.Must)
	}
}

// Up-counting loop with a slti/bnez latch: the legacy down-count
// inferencer cannot bound this, the interval inferencer must.
func TestLoopBoundUpCount(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 0
loop:	addi a0, a0, 1
		slti t0, a0, 8
		bnez t0, loop
		ebreak
	`); b != 8 {
		t.Errorf("bound = %d, want 8", b)
	}
}

// Up-count with the test BEFORE the increment in the latch block: the
// tested value lags one step, giving one extra head execution.
func TestLoopBoundTestBeforeIncrement(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 0
loop:	slti t0, a0, 8
		addi a0, a0, 1
		bnez t0, loop
		ebreak
	`); b != 9 {
		t.Errorf("bound = %d, want 9", b)
	}
}

func TestLoopBoundUpCountStride(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 0
loop:	addi a0, a0, 3
		slti t0, a0, 10
		bnez t0, loop
		ebreak
	`); b != 4 {
		// values at test: 3, 6, 9, 12 -> 4 head executions
		t.Errorf("bound = %d, want 4", b)
	}
}

func TestLoopBoundBltLatch(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 5
		li   a1, 20
loop:	addi a0, a0, 1
		blt  a0, a1, loop
		ebreak
	`); b != 15 {
		t.Errorf("bound = %d, want 15", b)
	}
}

func TestLoopBoundRejectsUnknownLimitRegister(t *testing.T) {
	// a1 is never initialized, so its interval is Top: no bound.
	bounds := inferBounds(t, `
		li   a0, 0
loop:	bge  a0, a1, done
		addi a0, a0, 1
		j    loop
done:	ebreak
	`)
	if len(bounds) != 0 {
		t.Errorf("unknown limit must not be bounded: %v", bounds)
	}
}

func TestLoopBoundBltuDownToZeroRejected(t *testing.T) {
	// bgeu against 0 never exits; must not be bounded.
	bounds := inferBounds(t, `
		li   a0, 10
loop:	addi a0, a0, -1
		bgeu a0, zero, loop
		ebreak
	`)
	if len(bounds) != 0 {
		t.Errorf("unsound bound for bgeu-vs-zero loop: %v", bounds)
	}
}

func TestLoopBoundClassicDownCount(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 10
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`); b != 10 {
		t.Errorf("bound = %d, want 10", b)
	}
}

func TestLoopBoundHeadExitWhileStyle(t *testing.T) {
	if b := singleBound(t, `
		li   a0, 0
		li   a1, 10
loop:	bge  a0, a1, done
		addi a0, a0, 1
		j    loop
done:	ebreak
	`); b != 11 {
		t.Errorf("bound = %d, want 11 (10 passing tests + final failing head execution)", b)
	}
}

func TestLoopBoundRejectsDynamicLimit(t *testing.T) {
	bounds := inferBounds(t, `
loop:	addi a0, a0, 1
		blt  a0, a1, loop
		ebreak
	`)
	if len(bounds) != 0 {
		t.Errorf("dynamic init and limit must not be bounded: %v", bounds)
	}
}

func TestLoopBoundRejectsCallInLoop(t *testing.T) {
	bounds := inferBounds(t, `
		li   a0, 0
loop:	addi a0, a0, 1
		jal  ra, helper
		slti t0, a0, 8
		bnez t0, loop
		ebreak
helper:	ret
	`)
	if len(bounds) != 0 {
		t.Errorf("call in loop can clobber the counter, got %v", bounds)
	}
}

func TestLoopBoundNestedInnerConstant(t *testing.T) {
	// Inner loop has constant bounds; outer counter is incremented
	// outside the inner loop. Both must be bounded.
	bounds := inferBounds(t, `
		li   a0, 0
outer:	li   a1, 0
inner:	addi a1, a1, 1
		slti t0, a1, 4
		bnez t0, inner
		addi a0, a0, 1
		slti t0, a0, 3
		bnez t0, outer
		ebreak
	`)
	if len(bounds) != 2 {
		t.Fatalf("bounds = %v, want 2 loops", bounds)
	}
	got := map[int]bool{}
	for _, b := range bounds {
		got[b] = true
	}
	if !got[4] || !got[3] {
		t.Errorf("bounds = %v, want {4, 3}", bounds)
	}
}
