// Package dataflow is a generic forward dataflow / abstract
// interpretation engine over the reconstructed CFG, in the style of the
// value analysis at the core of static WCET tools: a worklist solver
// iterating in reverse postorder with widening at loop heads. Concrete
// domains supplied here are per-register value intervals and
// initialized-register tracking; internal/lint and internal/wcet build
// their checks and loop-bound inference on top.
package dataflow

import "repro/internal/cfg"

// Domain is one abstract domain: S is the abstract state attached to
// program points. All operations must be monotone for the solver to
// terminate (Widen must additionally stabilize any ascending chain).
type Domain[S any] interface {
	// Entry is the state on entry to the analyzed function.
	Entry() S
	// Top is the no-information state, used as a sound fallback if the
	// solver fails to converge within its iteration budget.
	Top() S
	// Join merges two states at a control-flow merge.
	Join(a, b S) S
	// Widen extrapolates next against the previous state at a loop head.
	Widen(prev, next S) S
	// Equal reports whether two states carry the same information.
	Equal(a, b S) bool
	// TransferBlock pushes a state through every instruction of a block
	// (including call havoc for TermCall blocks).
	TransferBlock(b *cfg.Block, in S) S
	// TransferEdge refines the block's out-state along one successor
	// edge (e.g. a branch condition); ok=false marks the edge statically
	// infeasible.
	TransferEdge(b *cfg.Block, s cfg.Succ, out S) (S, bool)
}

// Result holds the fixpoint states of one function-level solve.
type Result[S any] struct {
	// In and Out are the states before and after each reachable block.
	In, Out map[uint32]S
	// Order is the reverse postorder over the function's blocks.
	Order []uint32
	// Preds lists the intraprocedural predecessors of each block.
	Preds map[uint32][]uint32

	g *cfg.Graph
	d Domain[S]
}

// EdgeState returns the out-state of block `from` refined along its edge
// to `to`. ok=false means the edge is statically infeasible or from is
// unreachable. When a block has several edges to the same target their
// refined states are joined.
func (r *Result[S]) EdgeState(from, to uint32) (S, bool) {
	var zero S
	out, ok := r.Out[from]
	if !ok {
		return zero, false
	}
	b := r.g.Blocks[from]
	var acc S
	have := false
	for _, s := range b.Succs {
		if s.Addr != to {
			continue
		}
		es, feasible := r.d.TransferEdge(b, s, out)
		if !feasible {
			continue
		}
		if !have {
			acc, have = es, true
		} else {
			acc = r.d.Join(acc, es)
		}
	}
	return acc, have
}

// Solve runs the forward analysis over the function at entry (following
// intraprocedural edges only; call blocks are handled by the domain's
// TransferBlock). Blocks whose every incoming edge is infeasible keep no
// state and are absent from Result.In/Out.
func Solve[S any](g *cfg.Graph, entry uint32, d Domain[S]) *Result[S] {
	order, preds := funcRPO(g, entry)
	idx := make(map[uint32]int, len(order))
	for i, u := range order {
		idx[u] = i
	}
	// Widening points: targets of retreating edges in RPO.
	widenAt := map[uint32]bool{}
	for _, u := range order {
		for _, s := range g.Blocks[u].Succs {
			if j, ok := idx[s.Addr]; ok && j <= idx[u] {
				widenAt[s.Addr] = true
			}
		}
	}

	r := &Result[S]{
		In:    make(map[uint32]S, len(order)),
		Out:   make(map[uint32]S, len(order)),
		Order: order,
		Preds: preds,
		g:     g,
		d:     d,
	}
	visits := map[uint32]int{}

	maxRounds := 8*len(order) + 32
	for round := 0; ; round++ {
		if round >= maxRounds {
			// Did not converge (should not happen with a proper Widen);
			// fall back to the sound no-information answer everywhere.
			for _, u := range order {
				r.In[u] = d.Top()
				r.Out[u] = d.TransferBlock(g.Blocks[u], d.Top())
			}
			return r
		}
		changed := false
		for _, u := range order {
			var in S
			have := false
			if u == entry {
				in, have = d.Entry(), true
			}
			for _, p := range preds[u] {
				es, ok := r.EdgeState(p, u)
				if !ok {
					continue
				}
				if !have {
					in, have = es, true
				} else {
					in = d.Join(in, es)
				}
			}
			if !have {
				continue // no feasible path in yet
			}
			old, hadIn := r.In[u]
			if hadIn {
				if widenAt[u] && visits[u] >= 2 {
					in = d.Widen(old, in)
				} else if widenAt[u] {
					in = d.Join(old, in)
				}
				if d.Equal(old, in) {
					continue
				}
			}
			visits[u]++
			r.In[u] = in
			r.Out[u] = d.TransferBlock(g.Blocks[u], in)
			changed = true
		}
		if !changed {
			return r
		}
	}
}

// funcRPO computes reverse postorder and predecessor lists over the
// intraprocedural region at entry (mirrors cfg's internal traversal).
func funcRPO(g *cfg.Graph, entry uint32) (order []uint32, preds map[uint32][]uint32) {
	preds = make(map[uint32][]uint32)
	seen := map[uint32]bool{}
	var post []uint32
	var dfs func(u uint32)
	dfs = func(u uint32) {
		if seen[u] {
			return
		}
		seen[u] = true
		b, ok := g.Blocks[u]
		if !ok {
			return
		}
		for _, s := range b.Succs {
			if _, ok := g.Blocks[s.Addr]; ok {
				preds[s.Addr] = append(preds[s.Addr], u)
				dfs(s.Addr)
			}
		}
		post = append(post, u)
	}
	dfs(entry)
	order = make([]uint32, len(post))
	for i, u := range post {
		order[len(post)-1-i] = u
	}
	return order, preds
}
