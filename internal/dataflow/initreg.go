package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// InitState tracks which integer registers have been written since
// function entry, as bitmasks indexed by register number. May is the
// union over paths (a register outside May is definitely uninitialized),
// Must the intersection (a register outside Must might be).
type InitState struct {
	May, Must uint32
}

// AllInit is the state with every register initialized.
func AllInit() InitState { return InitState{May: ^uint32(0), Must: ^uint32(0)} }

// MayInit reports whether r may have been written.
func (s InitState) MayInit(r isa.Reg) bool { return s.May&(1<<uint(r)) != 0 }

// MustInit reports whether r has been written on every path.
func (s InitState) MustInit(r isa.Reg) bool { return s.Must&(1<<uint(r)) != 0 }

// InitDomain is the initialized-register domain. entry gives the
// registers already defined on function entry (x0 is always included).
type InitDomain struct {
	entry InitState
}

// NewInitDomain returns a domain with the given entry state.
func NewInitDomain(entry InitState) *InitDomain {
	entry.May |= 1
	entry.Must |= 1
	return &InitDomain{entry: entry}
}

func (d *InitDomain) Entry() InitState { return d.entry }

func (d *InitDomain) Top() InitState { return AllInit() }

func (d *InitDomain) Join(a, b InitState) InitState {
	return InitState{May: a.May | b.May, Must: a.Must & b.Must}
}

func (d *InitDomain) Widen(prev, next InitState) InitState {
	return d.Join(prev, next) // finite lattice: join terminates
}

func (d *InitDomain) Equal(a, b InitState) bool { return a == b }

func (d *InitDomain) TransferBlock(b *cfg.Block, in InitState) InitState {
	s := in
	for _, inst := range b.Insts {
		if rd, ok := inst.WritesReg(); ok {
			s.May |= 1 << uint(rd)
			s.Must |= 1 << uint(rd)
		}
	}
	if b.Term == cfg.TermCall {
		// The callee may write any register; what it guarantees to write
		// is unknown, so Must does not grow (beyond ra, written by the
		// call instruction itself, handled above).
		s.May = ^uint32(0)
	}
	return s
}

func (d *InitDomain) TransferEdge(b *cfg.Block, s cfg.Succ, out InitState) (InitState, bool) {
	return out, true
}
