package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// InferLoopBounds derives iteration bounds (maximum loop-head execution
// counts, the convention of wcet's contraction) for the loops of the
// function at entry, using the interval analysis to recognize counted
// loops: a register stepped by one addi per iteration and compared
// against a loop-invariant limit by the exit test. Loops it cannot prove
// bounded are simply absent from the result; every returned bound is
// sound for the abstraction (callers still apply user flow facts first).
func InferLoopBounds(g *cfg.Graph, entry uint32, loops []*cfg.Loop) map[uint32]int {
	ivs := Solve(g, entry, NewIntervalDomain(UnknownEntry()))
	idom := g.Dominators(entry)
	out := map[uint32]int{}
	for _, l := range loops {
		if b, ok := loopBound(g, l, loops, idom, ivs); ok {
			out[l.Head] = b
		}
	}
	return out
}

// operand is one side of a normalized loop test: a register or an
// immediate constant.
type operand struct {
	reg   isa.Reg
	imm   int64
	isImm bool
}

// interval returns the operand's value interval in state s.
func (o operand) interval(s IntervalState) Interval {
	if o.isImm {
		return Const(o.imm)
	}
	return s.Get(o.reg)
}

// testInfo is the taken-edge condition of an exiting branch, looked
// through a same-block slt/slti definition; idx is the instruction index
// of the test point (where the compared value is read).
type testInfo struct {
	op       CondOp
	lhs, rhs operand
	idx      int
}

func (t testInfo) negate() testInfo {
	t.op = Cond{Op: t.op}.Negate().Op
	return t
}

// rel is a continue-condition with the counter on the left.
type rel uint8

const (
	rLTS rel = iota
	rLES
	rGTS
	rGES
	rLTU
	rLEU
	rGTU
	rGEU
	rNE
)

// counterWrite is the unique in-loop increment of a counter register.
type counterWrite struct {
	block uint32
	idx   int
	d     int64
}

func loopBound(g *cfg.Graph, l *cfg.Loop, loops []*cfg.Loop, idom map[uint32]uint32, ivs *Result[IntervalState]) (int, bool) {
	// A call inside the loop can clobber any register, including the
	// counter or limit.
	for bs := range l.Blocks {
		b := g.Blocks[bs]
		if b == nil {
			return 0, false
		}
		if b.Term == cfg.TermCall {
			return 0, false
		}
	}
	counters := findCounters(g, l, loops, idom)
	if len(counters) == 0 {
		return 0, false
	}

	best := 0
	for ts := range l.Blocks {
		tb := g.Blocks[ts]
		if tb.Term != cfg.TermBranch || len(tb.Insts) == 0 {
			continue
		}
		if inInnerLoop(loops, l, ts) {
			continue
		}
		// The test must be passed on every iteration.
		if !dominatesAll(idom, ts, l.Back) {
			continue
		}
		// Exactly one edge continues in the loop, one exits.
		var cont *cfg.Succ
		nOut := 0
		for i := range tb.Succs {
			if l.Blocks[tb.Succs[i].Addr] {
				cont = &tb.Succs[i]
			} else {
				nOut++
			}
		}
		if cont == nil || nOut != 1 {
			continue
		}
		info, ok := extractTest(tb)
		if !ok {
			continue
		}
		if cont.Kind != cfg.EdgeTaken {
			info = info.negate()
		}
		for swap := 0; swap < 2; swap++ {
			ctrOp, limOp := info.lhs, info.rhs
			if swap == 1 {
				ctrOp, limOp = info.rhs, info.lhs
			}
			if ctrOp.isImm || ctrOp.reg == isa.Zero {
				continue
			}
			cw, isCtr := counters[ctrOp.reg]
			if !isCtr {
				continue
			}
			// The limit must be loop-invariant: immediates and x0 are;
			// a register must have no in-loop write (calls are excluded
			// above, and WritesReg never reports x0).
			if !limOp.isImm && limOp.reg != isa.Zero && writtenInLoop(g, l, limOp.reg) {
				continue
			}
			r, ok := relFor(info.op, swap == 0)
			if !ok {
				continue
			}
			h, ok := tripCount(g, l, ivs, r, cw, limOp, ts, info.idx, idom)
			if !ok {
				continue
			}
			if best == 0 || h < best {
				best = h
			}
		}
	}
	return best, best > 0
}

// findCounters returns the registers with exactly one in-loop write that
// is a self-increment executed once per iteration (its block outside any
// inner loop and dominating every back edge).
func findCounters(g *cfg.Graph, l *cfg.Loop, loops []*cfg.Loop, idom map[uint32]uint32) map[isa.Reg]counterWrite {
	type w struct {
		block uint32
		idx   int
	}
	writes := map[isa.Reg][]w{}
	for bs := range l.Blocks {
		b := g.Blocks[bs]
		for i := range b.Insts {
			if rd, ok := b.Insts[i].WritesReg(); ok {
				writes[rd] = append(writes[rd], w{bs, i})
			}
		}
	}
	out := map[isa.Reg]counterWrite{}
	for r, ws := range writes {
		if len(ws) != 1 {
			continue
		}
		in := g.Blocks[ws[0].block].Insts[ws[0].idx]
		if (in.Op != isa.OpADDI && in.Op != isa.OpCADDI) || in.Rs1 != r || in.Imm == 0 {
			continue
		}
		if inInnerLoop(loops, l, ws[0].block) {
			continue
		}
		if !dominatesAll(idom, ws[0].block, l.Back) {
			continue
		}
		out[r] = counterWrite{ws[0].block, ws[0].idx, int64(in.Imm)}
	}
	return out
}

// inInnerLoop reports whether block bs belongs to a loop strictly nested
// inside l.
func inInnerLoop(loops []*cfg.Loop, l *cfg.Loop, bs uint32) bool {
	for _, m := range loops {
		if m.Head != l.Head && l.Blocks[m.Head] && m.Blocks[bs] {
			return true
		}
	}
	return false
}

func dominatesAll(idom map[uint32]uint32, a uint32, bs []uint32) bool {
	for _, b := range bs {
		if !cfg.Dominates(idom, a, b) {
			return false
		}
	}
	return true
}

func writtenInLoop(g *cfg.Graph, l *cfg.Loop, r isa.Reg) bool {
	for bs := range l.Blocks {
		for _, in := range g.Blocks[bs].Insts {
			if rd, ok := in.WritesReg(); ok && rd == r {
				return true
			}
		}
	}
	return false
}

// extractTest normalizes block b's terminating branch into its
// taken-edge condition, substituting a same-block slti/sltiu/slt/sltu
// definition of the tested register (the `slt; bnez` idiom).
func extractTest(b *cfg.Block) (testInfo, bool) {
	last := len(b.Insts) - 1
	c, ok := BranchCond(b.Insts[last])
	if !ok {
		return testInfo{}, false
	}
	info := testInfo{
		op:  c.Op,
		lhs: operand{reg: c.A},
		rhs: operand{reg: c.B},
		idx: last,
	}
	if (c.Op != CondEQ && c.Op != CondNE) || c.B != isa.Zero || c.A == isa.Zero {
		return info, true
	}
	// bnez/beqz on a flag: find its definition in this block.
	for i := last - 1; i >= 0; i-- {
		rd, writes := b.Insts[i].WritesReg()
		if !writes || rd != c.A {
			continue
		}
		def := b.Insts[i]
		var lt testInfo
		switch def.Op {
		case isa.OpSLTI:
			lt = testInfo{op: CondLTS, lhs: operand{reg: def.Rs1}, rhs: operand{imm: int64(def.Imm), isImm: true}, idx: i}
		case isa.OpSLTIU:
			lt = testInfo{op: CondLTU, lhs: operand{reg: def.Rs1}, rhs: operand{imm: int64(uint32(def.Imm)), isImm: true}, idx: i}
		case isa.OpSLT:
			lt = testInfo{op: CondLTS, lhs: operand{reg: def.Rs1}, rhs: operand{reg: def.Rs2}, idx: i}
		case isa.OpSLTU:
			lt = testInfo{op: CondLTU, lhs: operand{reg: def.Rs1}, rhs: operand{reg: def.Rs2}, idx: i}
		default:
			return info, true // flag defined some other way
		}
		if c.Op == CondEQ { // beqz flag: the slt condition is false
			lt = lt.negate()
		}
		return lt, true
	}
	return info, true
}

// relFor maps a condition to its counter-on-the-left form.
func relFor(op CondOp, ctrIsLHS bool) (rel, bool) {
	if ctrIsLHS {
		switch op {
		case CondLTS:
			return rLTS, true
		case CondGES:
			return rGES, true
		case CondLTU:
			return rLTU, true
		case CondGEU:
			return rGEU, true
		case CondNE:
			return rNE, true
		}
		return 0, false
	}
	switch op {
	case CondLTS: // lim < ctr
		return rGTS, true
	case CondGES: // lim >= ctr
		return rLES, true
	case CondLTU:
		return rGTU, true
	case CondGEU:
		return rLEU, true
	case CondNE:
		return rNE, true
	}
	return 0, false
}

// tripCount evaluates the head-execution bound of a loop that continues
// while `ctr rel lim`, with ctr stepped by cw.d once per iteration.
func tripCount(g *cfg.Graph, l *cfg.Loop, ivs *Result[IntervalState], r rel, cw counterWrite, lim operand, testBlock uint32, testIdx int, idom map[uint32]uint32) (int, bool) {
	// Initial counter interval: join of the preheader edge states.
	var initIv Interval
	haveInit := false
	for _, p := range dedup(ivs.Preds[l.Head]) {
		if l.Blocks[p] {
			continue
		}
		es, ok := ivs.EdgeState(p, l.Head)
		if !ok {
			continue
		}
		cur := es.Get(ctrReg(cw, g))
		if !haveInit {
			initIv, haveInit = cur, true
		} else {
			initIv = initIv.Join(cur)
		}
	}
	if !haveInit || initIv.IsTop() {
		return 0, false
	}
	headIn, ok := ivs.In[l.Head]
	if !ok {
		return 0, false
	}
	limIv := lim.interval(headIn)

	// e=1 when the increment executes before the test point within an
	// iteration: same block and earlier, or in a strictly dominating
	// block (which, being inside the loop, runs after the head).
	e := int64(0)
	if cw.block == testBlock {
		if cw.idx < testIdx {
			e = 1
		}
	} else if cfg.Dominates(idom, cw.block, testBlock) {
		e = 1
	}

	d := cw.d
	const (
		sMax = int64(1) << 31 // one past the signed max
		uMax = int64(1) << 32 // one past the unsigned max
	)
	var h int64
	switch r {
	case rLTS, rLES:
		if d <= 0 {
			return 0, false
		}
		ilo, ihi, iok := initIv.S32()
		_, lhi, lok := limIv.S32()
		if !iok || !lok {
			return 0, false
		}
		if r == rLES {
			lhi++
		}
		// No tested value may overflow: the exit value stays below
		// lhi+d, and with e=1 the first test already sees I+d.
		if lhi+d > sMax || (e == 1 && ihi+d > sMax-1) {
			return 0, false
		}
		h = ceilDiv(lhi-ilo, d) + 1 - e
	case rGTS, rGES:
		if d >= 0 {
			return 0, false
		}
		ilo, ihi, iok := initIv.S32()
		llo, _, lok := limIv.S32()
		if !iok || !lok {
			return 0, false
		}
		if r == rGES {
			llo--
		}
		if llo+d < -sMax || (e == 1 && ilo+d < -sMax) {
			return 0, false
		}
		h = ceilDiv(ihi-llo, -d) + 1 - e
	case rLTU, rLEU:
		if d <= 0 {
			return 0, false
		}
		il, ih, iok := initIv.U32()
		_, lh, lok := limIv.U32()
		if !iok || !lok {
			return 0, false
		}
		lhi := int64(lh)
		if r == rLEU {
			lhi++
		}
		if lhi+d > uMax || (e == 1 && int64(ih)+d > uMax-1) {
			return 0, false
		}
		h = ceilDiv(lhi-int64(il), d) + 1 - e
	case rGTU, rGEU:
		if d >= 0 {
			return 0, false
		}
		il, ih, iok := initIv.U32()
		ll, _, lok := limIv.U32()
		if !iok || !lok {
			return 0, false
		}
		llo := int64(ll)
		if r == rGEU {
			llo--
		}
		if llo+d < 0 || (e == 1 && int64(il)+d < 0) {
			return 0, false
		}
		h = ceilDiv(int64(ih)-llo, -d) + 1 - e
	case rNE:
		iv, iok := initIv.Singleton()
		var lv uint32
		if lim.isImm {
			lv = uint32(uint64(lim.imm))
		} else {
			s, ok := limIv.Singleton()
			if !ok {
				return 0, false
			}
			lv = s
		}
		if !iok {
			return 0, false
		}
		// v_k = I + k*d (mod 2^32) first hits L at k = diff/|d| when
		// the step divides the (direction-appropriate) distance.
		var diff int64
		if d > 0 {
			diff = int64(lv - iv) // uint32 subtraction wraps like the hardware
		} else {
			diff = int64(iv - lv)
		}
		ad := d
		if ad < 0 {
			ad = -ad
		}
		if diff%ad != 0 {
			return 0, false
		}
		if diff == 0 && e == 1 {
			// I == L but the first test already sees I+d: the loop only
			// exits when the counter wraps all the way around.
			return 0, false
		}
		h = diff/ad + 1 - e
	default:
		return 0, false
	}
	if h < 1 {
		h = 1
	}
	if h >= sMax {
		return 0, false
	}
	return int(h), true
}

// ctrReg recovers the counter register from its write instruction.
func ctrReg(cw counterWrite, g *cfg.Graph) isa.Reg {
	return g.Blocks[cw.block].Insts[cw.idx].Rs1
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func dedup(xs []uint32) []uint32 {
	seen := map[uint32]bool{}
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
