package dataflow

import "fmt"

// wrap is 2^32: the modulus of the RV32 register domain.
const wrap = int64(1) << 32

// magLimit bounds interval endpoints so arithmetic on int64 can never
// overflow; anything that would escape it collapses to Top.
const magLimit = int64(1) << 48

// Interval approximates a 32-bit register value as a range of
// mathematical integers: the register holds v mod 2^32 for some
// v in [Lo, Hi]. Working in unbounded integers keeps addition and
// subtraction exact across the signed/unsigned boundary (an address like
// 0x80000000 and the signed constant -2^31 are the same residue), and a
// width of 2^32 or more means every residue is possible: Top.
type Interval struct {
	Lo, Hi int64
}

// Top is the unconstrained interval (every 32-bit value).
func Top() Interval { return Interval{0, wrap - 1} }

// Const returns the exact interval for one value.
func Const(v int64) Interval { return Interval{v, v}.norm() }

// IsTop reports whether every 32-bit value is possible.
func (iv Interval) IsTop() bool { return iv.Hi-iv.Lo >= wrap-1 }

// Width returns Hi-Lo (0 for a singleton).
func (iv Interval) Width() int64 { return iv.Hi - iv.Lo }

// Singleton returns the single 32-bit value of an exact interval.
func (iv Interval) Singleton() (uint32, bool) {
	if iv.Lo != iv.Hi {
		return 0, false
	}
	return uint32(uint64(iv.Lo)), true
}

// norm collapses oversized or magnitude-escaped intervals to Top.
func (iv Interval) norm() Interval {
	if iv.Lo > iv.Hi || iv.Hi-iv.Lo >= wrap-1 ||
		iv.Lo < -magLimit || iv.Hi > magLimit {
		return Top()
	}
	return iv
}

// Join returns the smallest interval containing both operands.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsTop() || o.IsTop() {
		return Top()
	}
	return Interval{min(iv.Lo, o.Lo), max(iv.Hi, o.Hi)}.norm()
}

// Widen extrapolates the moving bounds of next relative to prev straight
// to the modulus, so loop-carried intervals stabilize in one step.
func (iv Interval) Widen(next Interval) Interval {
	out := iv.Join(next)
	if out.Lo < iv.Lo {
		out.Lo = min(out.Lo, iv.Lo-wrap)
	}
	if out.Hi > iv.Hi {
		out.Hi = max(out.Hi, iv.Hi+wrap)
	}
	return out.norm()
}

// Add returns the sum interval.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsTop() || o.IsTop() {
		return Top()
	}
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi}.norm()
}

// AddConst returns the interval shifted by a constant.
func (iv Interval) AddConst(c int64) Interval {
	if iv.IsTop() {
		return Top()
	}
	return Interval{iv.Lo + c, iv.Hi + c}.norm()
}

// Sub returns the difference interval.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsTop() || o.IsTop() {
		return Top()
	}
	return Interval{iv.Lo - o.Hi, iv.Hi - o.Lo}.norm()
}

// ShiftLeft multiplies by 2^k.
func (iv Interval) ShiftLeft(k uint) Interval {
	if iv.IsTop() || k > 31 {
		return Top()
	}
	return Interval{iv.Lo << k, iv.Hi << k}.norm()
}

// U32 returns the interval as a single unsigned 32-bit range. ok is
// false for Top and for intervals that wrap around 2^32 (those cover two
// disjoint unsigned ranges).
func (iv Interval) U32() (lo, hi uint32, ok bool) {
	if iv.IsTop() {
		return 0, 0, false
	}
	l := ((iv.Lo % wrap) + wrap) % wrap
	h := l + iv.Width()
	if h >= wrap {
		return 0, 0, false
	}
	return uint32(l), uint32(h), true
}

// U32Ranges returns the concrete unsigned value set as one or two
// ascending ranges (two when the interval wraps around 2^32), and
// ok=false for Top.
func (iv Interval) U32Ranges() (r [][2]uint32, ok bool) {
	if iv.IsTop() {
		return nil, false
	}
	l := ((iv.Lo % wrap) + wrap) % wrap
	h := l + iv.Width()
	if h < wrap {
		return [][2]uint32{{uint32(l), uint32(h)}}, true
	}
	return [][2]uint32{{uint32(l), uint32(wrap - 1)}, {0, uint32(h - wrap)}}, true
}

// S32 returns the interval as a single signed 32-bit range. ok is false
// for Top and for intervals that wrap around the signed boundary.
func (iv Interval) S32() (lo, hi int64, ok bool) {
	if iv.IsTop() {
		return 0, 0, false
	}
	const half = wrap / 2
	l := ((iv.Lo+half)%wrap+wrap)%wrap - half
	h := l + iv.Width()
	if h >= half {
		return 0, 0, false
	}
	return l, h, true
}

// ClampLowerS tightens the signed lower bound to at least v; ok is false
// when the constraint cannot be applied exactly (wrapped interval) or
// empties the interval (the edge is then infeasible).
func (iv Interval) ClampLowerS(v int64) (Interval, bool) {
	lo, hi, ok := iv.S32()
	if !ok {
		// Unconstrained: the refined set is [v, maxInt32].
		if iv.IsTop() {
			return Interval{v, wrap/2 - 1}.norm(), true
		}
		return iv, true // wrapped but bounded: keep as-is (sound)
	}
	if hi < v {
		return Interval{}, false
	}
	return Interval{max(lo, v), hi}, true
}

// ClampUpperS tightens the signed upper bound to at most v.
func (iv Interval) ClampUpperS(v int64) (Interval, bool) {
	lo, hi, ok := iv.S32()
	if !ok {
		if iv.IsTop() {
			return Interval{-wrap / 2, v}.norm(), true
		}
		return iv, true
	}
	if lo > v {
		return Interval{}, false
	}
	return Interval{lo, min(hi, v)}, true
}

// ClampLowerU tightens the unsigned lower bound to at least v.
func (iv Interval) ClampLowerU(v uint32) (Interval, bool) {
	lo, hi, ok := iv.U32()
	if !ok {
		if iv.IsTop() {
			return Interval{int64(v), wrap - 1}.norm(), true
		}
		return iv, true
	}
	if uint64(hi) < uint64(v) {
		return Interval{}, false
	}
	return Interval{max(int64(lo), int64(v)), int64(hi)}, true
}

// ClampUpperU tightens the unsigned upper bound to at most v.
func (iv Interval) ClampUpperU(v uint32) (Interval, bool) {
	lo, hi, ok := iv.U32()
	if !ok {
		if iv.IsTop() {
			return Interval{0, int64(v)}.norm(), true
		}
		return iv, true
	}
	if uint64(lo) > uint64(v) {
		return Interval{}, false
	}
	return Interval{int64(lo), min(int64(hi), int64(v))}, true
}

func (iv Interval) String() string {
	if iv.IsTop() {
		return "[T]"
	}
	if iv.Lo == iv.Hi {
		return fmt.Sprintf("[%d]", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}
