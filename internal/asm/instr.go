package asm

import (
	"encoding/binary"
	"strings"

	"repro/internal/decode"
	"repro/internal/encode"
	"repro/internal/isa"
)

// instrSize decides a statement's size in pass 1. Pseudo-instructions
// with data-dependent expansions make their choice here and stick to it.
func (a *assembler) instrSize(s *stmt) uint32 {
	if strings.HasPrefix(s.mnem, "c.") || s.compressed {
		return 2
	}
	switch s.mnem {
	case "li":
		if len(s.args) == 2 {
			if v, err := evalExpr(s.args[1], a.pass1Resolver(s.addr)); err == nil &&
				v >= -2048 && v <= 2047 {
				return 4
			}
		}
		s.liWide = true
		return 8
	case "la":
		return 8
	case "call", "tail":
		return 8 // auipc+jalr pair, full 32-bit range
	}
	return 4
}

// encodeInstr encodes one instruction statement (possibly a pseudo
// expanding to several words). It returns nil after reporting an error.
func (a *assembler) encodeInstr(s *stmt) []byte {
	if s.compressed {
		return a.encodeCompressed(s)
	}
	insts, halves, ok := a.expand(s)
	if !ok {
		return nil
	}
	var out []byte
	for _, h := range halves {
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], h)
		out = append(out, b[:]...)
	}
	for _, in := range insts {
		w, err := encode.Encode(in)
		if err != nil {
			a.errorf(s.line, "%v", err)
			return nil
		}
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w)
		out = append(out, b[:]...)
	}
	return out
}

// encodeCompressed emits the 16-bit form the relaxation decided on.
func (a *assembler) encodeCompressed(s *stmt) []byte {
	s.compressed = false
	insts, halves, ok := a.expand(s)
	s.compressed = true
	if !ok {
		return nil
	}
	if len(halves) != 0 || len(insts) != 1 {
		a.errorf(s.line, "internal: compression decision on multi-instruction statement")
		return nil
	}
	cin, can := compressInst(insts[0])
	if !can {
		a.errorf(s.line, "internal: relaxation instability — %q no longer compressible", s.mnem)
		return nil
	}
	h, err := encode.Encode16(cin)
	if err != nil {
		a.errorf(s.line, "%v", err)
		return nil
	}
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], h)
	return b[:]
}

// operand parsing helpers ---------------------------------------------

func (a *assembler) reg(s *stmt, arg string) (isa.Reg, bool) {
	r, err := isa.ParseReg(arg)
	if err != nil {
		a.errorf(s.line, "%v", err)
		return 0, false
	}
	return r, true
}

func (a *assembler) freg(s *stmt, arg string) (isa.Reg, bool) {
	r, err := isa.ParseFReg(arg)
	if err != nil {
		a.errorf(s.line, "%v", err)
		return 0, false
	}
	return isa.Reg(r), true
}

func (a *assembler) csr(s *stmt, arg string) (isa.CSR, bool) {
	c, err := isa.ParseCSR(arg)
	if err != nil {
		a.errorf(s.line, "%v", err)
		return 0, false
	}
	return c, true
}

func (a *assembler) imm(s *stmt, arg string) (int32, bool) {
	v, err := evalExpr(arg, a.resolver(s.addr))
	if err != nil {
		a.errorf(s.line, "%v", err)
		return 0, false
	}
	if v < -(1<<31) || v > 1<<32-1 {
		a.errorf(s.line, "value %d does not fit in 32 bits", v)
		return 0, false
	}
	return int32(uint32(v)), true
}

// mem parses "offset(reg)"; a bare "offset" means offset(x0)-style only
// when allowZeroBase is set.
func (a *assembler) mem(s *stmt, arg string) (int32, isa.Reg, bool) {
	open := strings.LastIndexByte(arg, '(')
	if open < 0 || !strings.HasSuffix(arg, ")") {
		a.errorf(s.line, "expected offset(reg), got %q", arg)
		return 0, 0, false
	}
	r, ok := a.reg(s, strings.TrimSpace(arg[open+1:len(arg)-1]))
	if !ok {
		return 0, 0, false
	}
	offStr := strings.TrimSpace(arg[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, ok := a.imm(s, offStr)
	return off, r, ok
}

// target evaluates a branch/jump target and returns the pc-relative
// offset.
func (a *assembler) target(s *stmt, arg string) (int32, bool) {
	v, ok := a.imm(s, arg)
	if !ok {
		return 0, false
	}
	return int32(uint32(v) - s.addr), true
}

func (a *assembler) nargs(s *stmt, n int) bool {
	if len(s.args) != n {
		a.errorf(s.line, "%s expects %d operands, got %d", s.mnem, n, len(s.args))
		return false
	}
	return true
}

// expand turns a statement into 32-bit instructions and/or 16-bit
// compressed halves. Exactly one of the two slices is non-empty except
// for errors (nil, nil, false).
func (a *assembler) expand(s *stmt) ([]decode.Inst, []uint16, bool) {
	if strings.HasPrefix(s.mnem, "c.") {
		h, ok := a.expandCompressed(s)
		if !ok {
			return nil, nil, false
		}
		return nil, []uint16{h}, true
	}
	if insts, ok, handled := a.expandPseudo(s); handled {
		if !ok {
			return nil, nil, false
		}
		return insts, nil, true
	}

	op := isa.ByName(s.mnem)
	if !op.Valid() {
		a.errorf(s.line, "unknown instruction %q", s.mnem)
		return nil, nil, false
	}
	p, ok := isa.PatternFor(op)
	if !ok {
		a.errorf(s.line, "%s cannot be assembled directly", s.mnem)
		return nil, nil, false
	}
	in := decode.Inst{Op: op}
	fd, f1, f2 := isa.UsesFPRegs(op)
	pickReg := func(arg string, fp bool) (isa.Reg, bool) {
		if fp {
			return a.freg(s, arg)
		}
		return a.reg(s, arg)
	}

	switch p.Fmt {
	case isa.FmtNone:
		if len(s.args) != 0 && op != isa.OpFENCE {
			a.errorf(s.line, "%s takes no operands", s.mnem)
			return nil, nil, false
		}
	case isa.FmtR:
		if !a.nargs(s, 3) {
			return nil, nil, false
		}
		var ok1, ok2, ok3 bool
		in.Rd, ok1 = pickReg(s.args[0], fd)
		in.Rs1, ok2 = pickReg(s.args[1], f1)
		in.Rs2, ok3 = pickReg(s.args[2], f2)
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, false
		}
	case isa.FmtR4:
		if !a.nargs(s, 4) {
			return nil, nil, false
		}
		var ok1, ok2, ok3, ok4 bool
		in.Rd, ok1 = a.freg(s, s.args[0])
		in.Rs1, ok2 = a.freg(s, s.args[1])
		in.Rs2, ok3 = a.freg(s, s.args[2])
		var r3 isa.Reg
		r3, ok4 = a.freg(s, s.args[3])
		in.Rs3 = r3
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, nil, false
		}
	case isa.FmtI:
		switch op.Class() {
		case isa.ClassLoad, isa.ClassFPLoad:
			if !a.nargs(s, 2) {
				return nil, nil, false
			}
			rd, ok1 := pickReg(s.args[0], fd)
			off, rs1, ok2 := a.mem(s, s.args[1])
			if !ok1 || !ok2 {
				return nil, nil, false
			}
			in.Rd, in.Rs1, in.Imm = rd, rs1, off
		default: // jalr and ALU immediates
			if op == isa.OpJALR && len(s.args) == 2 && strings.HasSuffix(s.args[1], ")") {
				rd, ok1 := a.reg(s, s.args[0])
				off, rs1, ok2 := a.mem(s, s.args[1])
				if !ok1 || !ok2 {
					return nil, nil, false
				}
				in.Rd, in.Rs1, in.Imm = rd, rs1, off
				break
			}
			if !a.nargs(s, 3) {
				return nil, nil, false
			}
			rd, ok1 := a.reg(s, s.args[0])
			rs1, ok2 := a.reg(s, s.args[1])
			imm, ok3 := a.imm(s, s.args[2])
			if !ok1 || !ok2 || !ok3 {
				return nil, nil, false
			}
			in.Rd, in.Rs1, in.Imm = rd, rs1, imm
		}
	case isa.FmtIShift:
		if !a.nargs(s, 3) {
			return nil, nil, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		rs1, ok2 := a.reg(s, s.args[1])
		imm, ok3 := a.imm(s, s.args[2])
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, false
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, imm
	case isa.FmtS:
		if !a.nargs(s, 2) {
			return nil, nil, false
		}
		rs2, ok1 := pickReg(s.args[0], f2)
		off, rs1, ok2 := a.mem(s, s.args[1])
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		in.Rs2, in.Rs1, in.Imm = rs2, rs1, off
	case isa.FmtB:
		if !a.nargs(s, 3) {
			return nil, nil, false
		}
		rs1, ok1 := a.reg(s, s.args[0])
		rs2, ok2 := a.reg(s, s.args[1])
		off, ok3 := a.target(s, s.args[2])
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, false
		}
		in.Rs1, in.Rs2, in.Imm = rs1, rs2, off
	case isa.FmtU:
		if !a.nargs(s, 2) {
			return nil, nil, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		imm, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		if imm < -(1<<19) || imm > 0xfffff {
			a.errorf(s.line, "%s immediate %d out of 20-bit range", s.mnem, imm)
			return nil, nil, false
		}
		in.Rd, in.Imm = rd, int32(uint32(imm)<<12)
	case isa.FmtJ:
		if !a.nargs(s, 2) {
			return nil, nil, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		off, ok2 := a.target(s, s.args[1])
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		in.Rd, in.Imm = rd, off
	case isa.FmtCSR:
		if !a.nargs(s, 3) {
			return nil, nil, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		csr, ok2 := a.csr(s, s.args[1])
		rs1, ok3 := a.reg(s, s.args[2])
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, false
		}
		in.Rd, in.CSR, in.Rs1 = rd, csr, rs1
	case isa.FmtCSRI:
		if !a.nargs(s, 3) {
			return nil, nil, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		csr, ok2 := a.csr(s, s.args[1])
		imm, ok3 := a.imm(s, s.args[2])
		if !ok1 || !ok2 || !ok3 {
			return nil, nil, false
		}
		in.Rd, in.CSR, in.Imm = rd, csr, imm
	case isa.FmtRUnary:
		if !a.nargs(s, 2) {
			return nil, nil, false
		}
		rd, ok1 := pickReg(s.args[0], fd)
		rs1, ok2 := pickReg(s.args[1], f1)
		if !ok1 || !ok2 {
			return nil, nil, false
		}
		in.Rd, in.Rs1 = rd, rs1
	}
	return []decode.Inst{in}, nil, true
}
