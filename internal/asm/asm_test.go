package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/decode"
	"repro/internal/isa"
)

// asmWords assembles source and returns the image as 32-bit words.
func asmWords(t *testing.T, src string) []uint32 {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble failed: %v", err)
	}
	if len(p.Bytes)%4 != 0 {
		t.Fatalf("image size %d not word aligned", len(p.Bytes))
	}
	words := make([]uint32, len(p.Bytes)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(p.Bytes[4*i:])
	}
	return words
}

// disasm decodes the i-th word and returns its disassembly.
func disasm(w uint32) string { return decode.Decode32(w).String() }

func TestBasicInstructions(t *testing.T) {
	words := asmWords(t, `
		addi a0, zero, 5
		add  a1, a0, a0
		sub  a2, a1, a0
		lw   a3, 8(sp)
		sw   a3, -4(sp)
		lui  a4, 0x12345
		and  a5, a4, a3
	`)
	want := []string{
		"addi a0, zero, 5",
		"add a1, a0, a0",
		"sub a2, a1, a0",
		"lw a3, 8(sp)",
		"sw a3, -4(sp)",
		"lui a4, 0x12345",
		"and a5, a4, a3",
	}
	for i, w := range want {
		if got := disasm(words[i]); got != w {
			t.Errorf("word %d: %q, want %q", i, got, w)
		}
	}
}

func TestBranchesAndLabels(t *testing.T) {
	words := asmWords(t, `
start:
		addi a0, zero, 10
loop:
		addi a0, a0, -1
		bnez a0, loop
		beq  a0, zero, done
		j    start
done:
		ebreak
	`)
	// bnez at offset 8 targets loop at offset 4: imm = -4.
	in := decode.Decode32(words[2])
	if in.Op != isa.OpBNE || in.Imm != -4 {
		t.Errorf("bnez: %v imm=%d", in.Op, in.Imm)
	}
	// beq at offset 12 targets done at offset 20: imm = +8.
	in = decode.Decode32(words[3])
	if in.Op != isa.OpBEQ || in.Imm != 8 {
		t.Errorf("beq: %v imm=%d", in.Op, in.Imm)
	}
	// j at offset 16 targets start at 0: imm = -16.
	in = decode.Decode32(words[4])
	if in.Op != isa.OpJAL || in.Rd != isa.Zero || in.Imm != -16 {
		t.Errorf("j: %+v", in)
	}
}

func TestNumericLocalLabels(t *testing.T) {
	words := asmWords(t, `
1:		addi a0, a0, 1
		bnez a0, 1b
2:		addi a1, a1, 1
		j 1f
		nop
1:		bnez a1, 2b
	`)
	if in := decode.Decode32(words[1]); in.Imm != -4 {
		t.Errorf("1b branch imm = %d, want -4", in.Imm)
	}
	if in := decode.Decode32(words[3]); in.Imm != 8 {
		t.Errorf("1f jump imm = %d, want 8", in.Imm)
	}
	if in := decode.Decode32(words[5]); in.Imm != -12 {
		t.Errorf("2b branch imm = %d, want -12", in.Imm)
	}
}

func TestLiExpansion(t *testing.T) {
	words := asmWords(t, `
		li a0, 42
		li a1, -2048
		li a2, 0x12345678
		li a3, -1
		li a4, 0x800
	`)
	if got := disasm(words[0]); got != "addi a0, zero, 42" {
		t.Errorf("small li: %q", got)
	}
	if got := disasm(words[1]); got != "addi a1, zero, -2048" {
		t.Errorf("edge li: %q", got)
	}
	// 0x12345678 -> lui 0x12345 + addi 0x678.
	in := decode.Decode32(words[2])
	if in.Op != isa.OpLUI || uint32(in.Imm) != 0x12345000 {
		t.Errorf("wide li hi: %+v", in)
	}
	in = decode.Decode32(words[3])
	if in.Op != isa.OpADDI || in.Imm != 0x678 {
		t.Errorf("wide li lo: %+v", in)
	}
	// -1 fits addi.
	if got := disasm(words[4]); got != "addi a3, zero, -1" {
		t.Errorf("li -1: %q", got)
	}
	// 0x800 = 2048 needs the wide form with carry: lui 0x1, addi -2048.
	in = decode.Decode32(words[5])
	if in.Op != isa.OpLUI || uint32(in.Imm) != 0x1000 {
		t.Errorf("li 0x800 hi: %+v", in)
	}
	in = decode.Decode32(words[6])
	if in.Op != isa.OpADDI || in.Imm != -2048 {
		t.Errorf("li 0x800 lo: %+v", in)
	}
}

func TestLaAndHiLo(t *testing.T) {
	p, err := Assemble(`
		la a0, data
		lui a1, %hi(data)
		addi a1, a1, %lo(data)
		.align 4
data:	.word 0xdeadbeef
	`)
	if err != nil {
		t.Fatal(err)
	}
	dataAddr, ok := p.Symbol("data")
	if !ok {
		t.Fatal("data symbol missing")
	}
	if dataAddr%16 != 0 {
		t.Errorf("data not 16-aligned: 0x%x", dataAddr)
	}
	words := make([]uint32, 4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(p.Bytes[4*i:])
	}
	// la and the explicit %hi/%lo pair must produce identical fields.
	laHi, laLo := decode.Decode32(words[0]), decode.Decode32(words[1])
	exHi, exLo := decode.Decode32(words[2]), decode.Decode32(words[3])
	if uint32(laHi.Imm) != uint32(exHi.Imm) || laLo.Imm != exLo.Imm {
		t.Errorf("la expansion %x/%d != %%hi/%%lo %x/%d",
			uint32(laHi.Imm), laLo.Imm, uint32(exHi.Imm), exLo.Imm)
	}
	if uint32(laHi.Imm)+uint32(laLo.Imm) != dataAddr {
		t.Errorf("la hi+lo = 0x%x, want 0x%x", uint32(laHi.Imm)+uint32(laLo.Imm), dataAddr)
	}
}

func TestPseudoInstructions(t *testing.T) {
	words := asmWords(t, `
		nop
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz a0, a1
		snez a2, a3
		ret
		jr   t0
	`)
	want := []string{
		"addi zero, zero, 0",
		"addi a0, a1, 0",
		"xori a2, a3, -1",
		"sub a4, zero, a5",
		"sltiu a0, a1, 1",
		"sltu a2, zero, a3",
		"jalr zero, 0(ra)",
		"jalr zero, 0(t0)",
	}
	for i, w := range want {
		if got := disasm(words[i]); got != w {
			t.Errorf("word %d: %q, want %q", i, got, w)
		}
	}
}

func TestCSRPseudo(t *testing.T) {
	words := asmWords(t, `
		csrr  a0, mstatus
		csrw  mtvec, a1
		csrs  mie, a2
		csrwi mscratch, 5
		rdcycle a3
	`)
	want := []string{
		"csrrs a0, mstatus, zero",
		"csrrw zero, mtvec, a1",
		"csrrs zero, mie, a2",
		"csrrwi zero, mscratch, 5",
		"csrrs a3, cycle, zero",
	}
	for i, w := range want {
		if got := disasm(words[i]); got != w {
			t.Errorf("word %d: %q, want %q", i, got, w)
		}
	}
}

func TestCallRetAcrossRange(t *testing.T) {
	p, err := Assemble(`
_start:
		call func
		ebreak
func:
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	// call = auipc ra + jalr ra.
	w0 := binary.LittleEndian.Uint32(p.Bytes)
	w1 := binary.LittleEndian.Uint32(p.Bytes[4:])
	in0, in1 := decode.Decode32(w0), decode.Decode32(w1)
	if in0.Op != isa.OpAUIPC || in0.Rd != isa.RA {
		t.Errorf("call[0]: %v", in0)
	}
	if in1.Op != isa.OpJALR || in1.Rd != isa.RA || in1.Rs1 != isa.RA {
		t.Errorf("call[1]: %v", in1)
	}
	funcAddr := p.Symbols["func"]
	if p.Org+uint32(in0.Imm)+uint32(in1.Imm) != funcAddr {
		t.Errorf("call target = 0x%x, want 0x%x", p.Org+uint32(in0.Imm)+uint32(in1.Imm), funcAddr)
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
		.byte 1, 2, 0xff
		.half 0x1234
		.align 2
		.word 0xcafebabe, 7
		.space 3
		.byte 9
		.asciz "ok"
	`)
	if err != nil {
		t.Fatal(err)
	}
	b := p.Bytes
	if b[0] != 1 || b[1] != 2 || b[2] != 0xff {
		t.Errorf(".byte: % x", b[:3])
	}
	if binary.LittleEndian.Uint16(b[3:]) != 0x1234 {
		t.Errorf(".half: % x", b[3:5])
	}
	// .align 2 pads to offset 8.
	if binary.LittleEndian.Uint32(b[8:]) != 0xcafebabe {
		t.Errorf(".word at 8: % x", b[8:12])
	}
	if binary.LittleEndian.Uint32(b[12:]) != 7 {
		t.Errorf(".word 7: % x", b[12:16])
	}
	if b[16] != 0 || b[17] != 0 || b[18] != 0 || b[19] != 9 {
		t.Errorf(".space/.byte: % x", b[16:20])
	}
	if string(b[20:22]) != "ok" || b[22] != 0 {
		t.Errorf(".asciz: % x", b[20:23])
	}
}

func TestEquAndExpressions(t *testing.T) {
	p, err := Assemble(`
		.equ BASE, 0x1000
		.equ SIZE, 4*8
		li a0, BASE + SIZE
		li a1, (1 << 10) | 0xf
		li a2, ~0 & 0xff
		li a3, 'A'
	`)
	if err != nil {
		t.Fatal(err)
	}
	checkLi := func(off int, want int32) {
		t.Helper()
		in := decode.Decode32(binary.LittleEndian.Uint32(p.Bytes[off:]))
		if in.Imm != want {
			t.Errorf("li at %d: %d, want %d", off, in.Imm, want)
		}
	}
	// BASE+SIZE = 0x1020: wide expansion (lui+addi) since > 2047.
	in := decode.Decode32(binary.LittleEndian.Uint32(p.Bytes[0:]))
	if in.Op != isa.OpLUI || uint32(in.Imm) != 0x1000 {
		t.Errorf("BASE+SIZE hi: %+v", in)
	}
	checkLi(4, 0x20)  // addi part of the wide expansion
	checkLi(8, 0x40f) // fits the short form
	checkLi(12, 0xff)
	checkLi(16, 65)
}

func TestOrgAndEntry(t *testing.T) {
	p, err := AssembleAt(`
		.org 0x80000100
_start:
		nop
	`, 0x8000_0000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x8000_0100 {
		t.Errorf("entry = 0x%x", p.Entry)
	}
	if len(p.Bytes) != 0x104 {
		t.Errorf("image size = 0x%x", len(p.Bytes))
	}
	// The .org gap is zero filled.
	for i := 0; i < 0x100; i++ {
		if p.Bytes[i] != 0 {
			t.Fatalf("gap byte %d not zero", i)
		}
	}
}

func TestCompressedMnemonics(t *testing.T) {
	p, err := Assemble(`
		c.addi a0, 1
		c.li   a1, -3
		c.mv   a2, a0
		c.add  a2, a1
		c.lw   a3, 4(a0)
		c.sw   a3, 8(a0)
		c.nop
		c.ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.OpCADDI, isa.OpCLI, isa.OpCMV, isa.OpCADD,
		isa.OpCLW, isa.OpCSW, isa.OpCNOP, isa.OpCEBREAK,
	}
	for i, op := range wantOps {
		h := binary.LittleEndian.Uint16(p.Bytes[2*i:])
		in := decode.Decode16(h)
		if in.Op != op {
			t.Errorf("half %d: %v, want %v", i, in.Op, op)
		}
	}
}

func TestCompressedBranchTargets(t *testing.T) {
	p, err := Assemble(`
loop:	c.addi a0, -1
		c.bnez a0, loop
		c.j    loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	b := decode.Decode16(binary.LittleEndian.Uint16(p.Bytes[2:]))
	if b.Op != isa.OpCBNEZ || b.Imm != -2 {
		t.Errorf("c.bnez: %+v", b)
	}
	j := decode.Decode16(binary.LittleEndian.Uint16(p.Bytes[4:]))
	if j.Op != isa.OpCJ || j.Imm != -4 {
		t.Errorf("c.j: %+v", j)
	}
}

func TestFloatInstructions(t *testing.T) {
	words := asmWords(t, `
		flw    fa0, 0(a0)
		fadd.s fa1, fa0, fa0
		fmadd.s fa2, fa0, fa1, fa1
		fcvt.w.s a1, fa2
		fmv.s  fa3, fa1
		fsw    fa2, 4(a0)
	`)
	want := []string{
		"flw fa0, 0(a0)",
		"fadd.s fa1, fa0, fa0",
		"fmadd.s fa2, fa0, fa1, fa1",
		"fcvt.w.s a1, fa2",
		"fsgnj.s fa3, fa1, fa1",
		"fsw fa2, 4(a0)",
	}
	for i, w := range want {
		if got := disasm(words[i]); got != w {
			t.Errorf("word %d: %q, want %q", i, got, w)
		}
	}
}

func TestBMIInstructions(t *testing.T) {
	words := asmWords(t, `
		cpop a0, a1
		clz  a2, a3
		andn a4, a5, a6
		rori a0, a1, 7
		rev8 a2, a3
		min  a4, a5, a6
	`)
	want := []string{
		"cpop a0, a1",
		"clz a2, a3",
		"andn a4, a5, a6",
		"rori a0, a1, 7",
		"rev8 a2, a3",
		"min a4, a5, a6",
	}
	for i, w := range want {
		if got := disasm(words[i]); got != w {
			t.Errorf("word %d: %q, want %q", i, got, w)
		}
	}
}

func TestErrorReporting(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus a0, a1", "unknown instruction"},
		{"addi a0, a1", "expects 3 operands"},
		{"addi a0, a1, 5000", "out of range"},
		{"lw a0, 4(q9)", "unknown register"},
		{"j missing", "undefined symbol"},
		{"x:\nx:\nnop", "redefined"},
		{".org 0x10\n.org 0x8", "behind"},
		{".word 1 +", "unexpected end"},
		{"li a0", "expects 2 operands"},
		{"csrr a0, nosuchcsr", "unknown CSR"},
		{"c.addi4spn a0, 3", "invalid"},
	}
	for _, c := range cases {
		_, err := AssembleAt(c.src, 0)
		if err == nil {
			t.Errorf("%q should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q error = %q, want fragment %q", c.src, err.Error(), c.frag)
		}
	}
}

func TestMultipleErrorsCollected(t *testing.T) {
	_, err := Assemble("bogus1\nnop\nbogus2\n")
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) != 2 {
		t.Errorf("got %d errors, want 2: %v", len(el), el)
	}
	if el[0].Line != 1 || el[1].Line != 3 {
		t.Errorf("error lines: %v", el)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	words := asmWords(t, `
		# full line comment
		nop            # trailing
		nop            // c++ style
		nop            ; asm style

		.asciz "a#b"   # hash inside string is literal
		.align 2
	`)
	if len(words) != 4 { // 3 nops + padded string word
		t.Fatalf("words = %d", len(words))
	}
	p, _ := Assemble(`.asciz "x#y"`)
	if string(p.Bytes[:3]) != "x#y" {
		t.Errorf("string with hash: % x", p.Bytes)
	}
}

func TestLinesMap(t *testing.T) {
	p, err := Assemble("nop\nnop\nlabel:\naddi a0, a0, 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Lines[p.Org] != 1 || p.Lines[p.Org+4] != 2 || p.Lines[p.Org+8] != 4 {
		t.Errorf("line map: %v", p.Lines)
	}
}

func TestBranchOutOfRange(t *testing.T) {
	src := "beq a0, a1, far\n.space 8192\nfar: nop\n"
	if _, err := Assemble(src); err == nil {
		t.Error("branch beyond ±4KiB should fail")
	}
}
