package asm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/torture"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// runBoth assembles a workload with and without RVC relaxation and runs
// both images to the same checksum.
func runBoth(t *testing.T, w workloads.Workload) (plain, compressed *asm.Program) {
	t.Helper()
	var err error
	plain, err = asm.AssembleAtOpt(vp.Prelude+w.Source, vp.RAMBase, asm.Options{})
	if err != nil {
		t.Fatalf("%s plain: %v", w.Name, err)
	}
	compressed, err = asm.AssembleAtOpt(vp.Prelude+w.Source, vp.RAMBase, asm.Options{Compress: true})
	if err != nil {
		t.Fatalf("%s compressed: %v", w.Name, err)
	}
	for _, prog := range []*asm.Program{plain, compressed} {
		p, err := vp.New(vp.Config{Sensor: w.Sensor})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		stop := p.Run(w.Budget)
		if stop.Reason != emu.StopExit || stop.Code != w.Expect {
			t.Fatalf("%s (image %d bytes): %v, want exit 0x%08x",
				w.Name, len(prog.Bytes), stop, w.Expect)
		}
	}
	return plain, compressed
}

// RVC relaxation must preserve semantics on every workload and shrink
// the text section. The ratio is below toolchain-grade RV32C numbers
// (~25-30%) because the hand-written kernels use many non-prime
// registers (s2..s11, t0..t6) that have no compressed forms — exactly
// the register-allocation effect the C extension papers discuss.
func TestCompressionPreservesSemantics(t *testing.T) {
	var totalPlain, totalCompressed int
	for _, w := range workloads.All() {
		plain, comp := runBoth(t, w)
		if comp.TextBytes >= plain.TextBytes {
			t.Errorf("%s: no text reduction (%d vs %d)", w.Name, comp.TextBytes, plain.TextBytes)
		}
		totalPlain += plain.TextBytes
		totalCompressed += comp.TextBytes
	}
	reduction := 100 * (1 - float64(totalCompressed)/float64(totalPlain))
	t.Logf("total text: %d -> %d bytes (%.1f%% smaller)", totalPlain, totalCompressed, reduction)
	if reduction < 8 {
		t.Errorf("overall text reduction %.1f%% too small", reduction)
	}
}

func TestCompressionPicksExpectedForms(t *testing.T) {
	prog, err := asm.AssembleAtOpt(`
_start:
	addi a0, a0, 1           # -> c.addi (2)
	addi a1, zero, -3        # -> c.li (2)
	add  a2, a2, a3          # -> c.add (2)
	and  a2, a2, a3          # -> c.and (2)
	lw   a4, 4(a0)           # -> c.lw (2)
	sw   a4, 8(a0)           # -> c.sw (2)
	addi a5, a0, 1           # rd != rs1: stays 4
	ebreak                   # -> c.ebreak (2)
`, 0x1000, asm.Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	// 7 compressed (14 bytes) + 1 full (4 bytes) = 18 bytes.
	if len(prog.Bytes) != 18 {
		t.Errorf("image = %d bytes, want 18", len(prog.Bytes))
	}
}

func TestCompressedBranchRetargeting(t *testing.T) {
	// The loop label sits after instructions that all compress; the
	// backward branch offset must track the shrunken layout.
	prog, err := asm.AssembleAtOpt(`
_start:
	addi a0, zero, 10
loop:
	addi a0, a0, -1
	bne  a0, zero, loop
	ebreak
`, 0x1000, asm.Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Relocate onto the platform by reassembling at RAM base.
	prog, err = asm.AssembleAtOpt(`
_start:
	addi a0, zero, 10
loop:
	addi a0, a0, -1
	bne  a0, zero, loop
	ebreak
`, vp.RAMBase, asm.Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(1000)
	if stop.Reason != emu.StopEbreak {
		t.Fatalf("stop: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 0 {
		t.Errorf("loop result %d, want 0", got)
	}
	// Everything compressed: 4 instructions x 2 bytes.
	if len(prog.Bytes) != 8 {
		t.Errorf("image = %d bytes, want 8", len(prog.Bytes))
	}
}

// Torture programs assembled with compression must still terminate
// normally and deterministically. The exit checksum legitimately differs
// from the uncompressed build because the generated programs fold
// address-dependent values (auipc results, the data base register) into
// it, and compression moves addresses.
func TestCompressionOnTorturePrograms(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		src := tortureSource(t, seed)
		run := func(opt asm.Options) (uint32, int) {
			prog, err := asm.AssembleAtOpt(vp.Prelude+src, vp.RAMBase, opt)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			p, _ := vp.New(vp.Config{})
			if err := p.LoadProgram(prog); err != nil {
				t.Fatal(err)
			}
			stop := p.Run(200_000)
			if stop.Reason != emu.StopExit {
				t.Fatalf("seed %d: %v", seed, stop)
			}
			return stop.Code, prog.TextBytes
		}
		_, plainText := run(asm.Options{})
		c1, compText := run(asm.Options{Compress: true})
		c2, _ := run(asm.Options{Compress: true})
		if c1 != c2 {
			t.Errorf("seed %d: compressed build not deterministic", seed)
		}
		if compText >= plainText {
			t.Errorf("seed %d: no text reduction (%d vs %d)", seed, compText, plainText)
		}
	}
}

func tortureSource(t *testing.T, seed int64) string {
	t.Helper()
	p := torture.Generate(torture.Config{Seed: seed, Insts: 200, ISA: isa.RV32IM})
	return p.Source
}
