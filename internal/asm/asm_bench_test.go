package asm

import (
	"strings"
	"testing"
)

// A representative mid-size source: loops, labels, data, pseudo-ops.
func benchSource() string {
	var sb strings.Builder
	sb.WriteString("_start:\n\tla gp, data\n")
	for i := 0; i < 100; i++ {
		sb.WriteString("\tli a0, 123456\n")
		sb.WriteString("\tadd a1, a0, a2\n")
		sb.WriteString("\tlw a3, 4(gp)\n")
		sb.WriteString("\tsw a3, 8(gp)\n")
		sb.WriteString("1:\taddi a4, a4, -1\n")
		sb.WriteString("\tbnez a4, 1b\n")
	}
	sb.WriteString("\tebreak\ndata:\t.space 64\n")
	return sb.String()
}

func BenchmarkAssemble(b *testing.B) {
	src := benchSource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
