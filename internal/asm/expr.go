package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprEval evaluates assembler expressions: integers in any Go base
// syntax, character literals, symbols/labels, the %hi/%lo relocation
// operators, and the usual C operator set with precedence.
type exprEval struct {
	src  string
	pos  int
	syms func(name string) (int64, bool)
}

// evalExpr evaluates an expression string. syms resolves symbol values
// (labels, .equ constants, '.' for the current location counter).
func evalExpr(src string, syms func(string) (int64, bool)) (int64, error) {
	e := &exprEval{src: src, syms: syms}
	v, err := e.parseOr()
	if err != nil {
		return 0, err
	}
	e.skipSpace()
	if e.pos != len(e.src) {
		return 0, fmt.Errorf("trailing garbage %q in expression", e.src[e.pos:])
	}
	return v, nil
}

func (e *exprEval) skipSpace() {
	for e.pos < len(e.src) && (e.src[e.pos] == ' ' || e.src[e.pos] == '\t') {
		e.pos++
	}
}

func (e *exprEval) peek() byte {
	e.skipSpace()
	if e.pos < len(e.src) {
		return e.src[e.pos]
	}
	return 0
}

func (e *exprEval) accept(s string) bool {
	e.skipSpace()
	if strings.HasPrefix(e.src[e.pos:], s) {
		e.pos += len(s)
		return true
	}
	return false
}

// Precedence climbing: | ^ & <<>> +- */%  unary.
func (e *exprEval) parseOr() (int64, error) {
	v, err := e.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		if e.pos < len(e.src) && e.src[e.pos] == '|' {
			e.pos++
			r, err := e.parseXor()
			if err != nil {
				return 0, err
			}
			v |= r
			continue
		}
		return v, nil
	}
}

func (e *exprEval) parseXor() (int64, error) {
	v, err := e.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		if e.pos < len(e.src) && e.src[e.pos] == '^' {
			e.pos++
			r, err := e.parseAnd()
			if err != nil {
				return 0, err
			}
			v ^= r
			continue
		}
		return v, nil
	}
}

func (e *exprEval) parseAnd() (int64, error) {
	v, err := e.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		if e.pos < len(e.src) && e.src[e.pos] == '&' {
			e.pos++
			r, err := e.parseShift()
			if err != nil {
				return 0, err
			}
			v &= r
			continue
		}
		return v, nil
	}
}

func (e *exprEval) parseShift() (int64, error) {
	v, err := e.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case e.accept("<<"):
			r, err := e.parseAdd()
			if err != nil {
				return 0, err
			}
			v <<= uint(r & 63)
		case e.accept(">>"):
			r, err := e.parseAdd()
			if err != nil {
				return 0, err
			}
			v >>= uint(r & 63)
		default:
			return v, nil
		}
	}
}

func (e *exprEval) parseAdd() (int64, error) {
	v, err := e.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		if e.pos >= len(e.src) {
			return v, nil
		}
		switch e.src[e.pos] {
		case '+':
			e.pos++
			r, err := e.parseMul()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			e.pos++
			r, err := e.parseMul()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (e *exprEval) parseMul() (int64, error) {
	v, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		e.skipSpace()
		if e.pos >= len(e.src) {
			return v, nil
		}
		switch e.src[e.pos] {
		case '*':
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in expression")
			}
			v /= r
		case '%':
			// Distinguish modulo from %hi/%lo, which only appear in
			// unary position and were consumed there.
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in expression")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (e *exprEval) parseUnary() (int64, error) {
	e.skipSpace()
	if e.pos >= len(e.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch e.src[e.pos] {
	case '-':
		e.pos++
		v, err := e.parseUnary()
		return -v, err
	case '+':
		e.pos++
		return e.parseUnary()
	case '~':
		e.pos++
		v, err := e.parseUnary()
		return ^v, err
	case '%':
		// %hi(expr) / %lo(expr): the standard RISC-V absolute
		// relocation split with carry correction.
		rest := e.src[e.pos:]
		switch {
		case strings.HasPrefix(rest, "%hi("):
			e.pos += 3
			v, err := e.parseParen()
			if err != nil {
				return 0, err
			}
			return int64(int32((uint32(v) + 0x800) >> 12)), nil
		case strings.HasPrefix(rest, "%lo("):
			e.pos += 3
			v, err := e.parseParen()
			if err != nil {
				return 0, err
			}
			return int64(int32(uint32(v)<<20) >> 20), nil
		}
		return 0, fmt.Errorf("unknown %% operator in %q", e.src[e.pos:])
	case '(':
		return e.parseParen()
	case '\'':
		return e.parseChar()
	}
	return e.parseAtom()
}

func (e *exprEval) parseParen() (int64, error) {
	if !e.accept("(") {
		return 0, fmt.Errorf("expected '(' in expression")
	}
	v, err := e.parseOr()
	if err != nil {
		return 0, err
	}
	if !e.accept(")") {
		return 0, fmt.Errorf("missing ')' in expression")
	}
	return v, nil
}

func (e *exprEval) parseChar() (int64, error) {
	s := e.src[e.pos:]
	val, _, tail, err := strconv.UnquoteChar(s[1:], '\'')
	if err != nil {
		return 0, fmt.Errorf("bad character literal: %v", err)
	}
	if !strings.HasPrefix(tail, "'") {
		return 0, fmt.Errorf("unterminated character literal")
	}
	e.pos += len(s) - len(tail) + 1
	return int64(val), nil
}

func isSymChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func (e *exprEval) parseAtom() (int64, error) {
	start := e.pos
	for e.pos < len(e.src) && isSymChar(e.src[e.pos]) {
		e.pos++
	}
	tok := e.src[start:e.pos]
	if tok == "" {
		return 0, fmt.Errorf("unexpected character %q in expression", string(e.src[start]))
	}
	if c := tok[0]; c >= '0' && c <= '9' {
		// Numeric literal, or a numeric local-label reference like 1f/2b.
		if n := len(tok); n >= 2 && (tok[n-1] == 'f' || tok[n-1] == 'b') {
			if _, err := strconv.ParseUint(tok[:n-1], 10, 32); err == nil {
				if e.syms != nil {
					if v, ok := e.syms(tok); ok {
						return v, nil
					}
				}
				return 0, fmt.Errorf("undefined local label %q", tok)
			}
		}
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			// Allow negative-range 32-bit values written in decimal.
			s, serr := strconv.ParseInt(tok, 0, 64)
			if serr != nil {
				return 0, fmt.Errorf("bad number %q", tok)
			}
			return s, nil
		}
		return int64(v), nil
	}
	if e.syms != nil {
		if v, ok := e.syms(tok); ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("undefined symbol %q", tok)
}
