package asm

import (
	"errors"
	"sort"
	"strconv"
)

// isNumericLabel reports whether a label name is a numeric local label.
func isNumericLabel(name string) (int, bool) {
	n, err := strconv.Atoi(name)
	if err != nil || name == "" {
		return 0, false
	}
	return n, true
}

// pass1 assigns addresses and sizes, defining all labels; with
// compression enabled it iterates layout rounds until the RVC relaxation
// reaches a fixpoint.
func (a *assembler) pass1() {
	a.layout()
	if a.opt.Compress {
		for round := 0; round < 16 && len(a.errs) == 0; round++ {
			if !a.relax() {
				break
			}
			a.layout()
		}
	}
	if len(a.errs) == 0 {
		last := a.org
		if n := len(a.stmts); n > 0 {
			last = a.stmts[n-1].addr + a.stmts[n-1].size
		}
		a.image = make([]byte, last-a.org)
	}
}

// layout runs one sizing round: resets the symbol tables and assigns
// every statement its address and size under the current compression
// decisions. It is idempotent at the relaxation fixpoint.
func (a *assembler) layout() {
	a.syms = make(map[string]int64)
	a.numeric = make(map[int][]uint32)

	labelsAt := make(map[int][]pendingLabel)
	for _, l := range a.labelQueue {
		labelsAt[l.idx] = append(labelsAt[l.idx], l)
	}
	define := func(l pendingLabel, addr uint32) {
		if n, ok := isNumericLabel(l.name); ok {
			a.numeric[n] = append(a.numeric[n], addr)
			return
		}
		if _, dup := a.syms[l.name]; dup {
			a.errorf(l.line, "label %q redefined", l.name)
			return
		}
		a.syms[l.name] = int64(addr)
	}

	lc := a.org
	for i, s := range a.stmts {
		for _, l := range labelsAt[i] {
			define(l, lc)
		}
		s.addr = lc
		var size uint32
		if s.kind == kindDirective {
			size = a.directiveSize(s, lc)
		} else {
			size = a.instrSize(s)
		}
		s.size = size
		if lc+size < lc {
			a.errorf(s.line, "location counter overflow")
			return
		}
		lc += size
	}
	for _, l := range labelsAt[len(a.stmts)] {
		define(l, lc)
	}
	for n := range a.numeric {
		sort.Slice(a.numeric[n], func(i, j int) bool { return a.numeric[n][i] < a.numeric[n][j] })
	}
}

// relax probes every instruction statement for RVC compressibility under
// the current layout and reports whether any decision changed. Already
// compressed statements are re-verified (relaxation can move branch
// targets) and reverted when they no longer fit the margin.
func (a *assembler) relax() bool {
	changed := false
	for _, s := range a.stmts {
		if s.kind != kindInstr || len(s.mnem) > 2 && s.mnem[:2] == "c." {
			continue
		}
		ok := a.probeCompress(s)
		if ok != s.compressed {
			s.compressed = ok
			changed = true
		}
	}
	return changed
}

// probeCompress reports whether the statement expands to exactly one
// 32-bit instruction with a compressed equivalent, without emitting
// diagnostics.
func (a *assembler) probeCompress(s *stmt) bool {
	savedErrs := len(a.errs)
	savedCompressed := s.compressed
	s.compressed = false // expand as the 32-bit form for probing
	insts, halves, ok := a.expand(s)
	s.compressed = savedCompressed
	a.errs = a.errs[:savedErrs] // discard probe diagnostics
	if !ok || len(halves) != 0 || len(insts) != 1 {
		return false
	}
	_, can := compressInst(insts[0])
	return can
}

// pass1Resolver resolves symbols with the partial table available during
// sizing; forward references fail (callers fall back to worst-case size).
func (a *assembler) pass1Resolver(lc uint32) func(string) (int64, bool) {
	return func(name string) (int64, bool) {
		if name == "." {
			return int64(lc), true
		}
		v, ok := a.syms[name]
		return v, ok
	}
}

// resolver returns the full pass-2 symbol resolver for a statement at
// the given address, handling '.', regular symbols and numeric local
// label references (1b/1f).
func (a *assembler) resolver(addr uint32) func(string) (int64, bool) {
	return func(name string) (int64, bool) {
		if name == "." {
			return int64(addr), true
		}
		if n := len(name); n >= 2 && (name[n-1] == 'b' || name[n-1] == 'f') {
			if num, ok := isNumericLabel(name[:n-1]); ok {
				defs := a.numeric[num]
				if name[n-1] == 'b' {
					// Most recent definition at or before addr.
					for i := len(defs) - 1; i >= 0; i-- {
						if defs[i] <= addr {
							return int64(defs[i]), true
						}
					}
					return 0, false
				}
				// First definition strictly after addr.
				for _, d := range defs {
					if d > addr {
						return int64(d), true
					}
				}
				return 0, false
			}
		}
		v, ok := a.syms[name]
		return v, ok
	}
}

// directiveSize computes a directive's size, handling definition-type
// directives (.equ) immediately.
func (a *assembler) directiveSize(s *stmt, lc uint32) uint32 {
	switch s.mnem {
	case ".org":
		if len(s.args) != 1 {
			a.errorf(s.line, ".org needs one argument")
			return 0
		}
		v, err := evalExpr(s.args[0], a.pass1Resolver(lc))
		if err != nil {
			a.errorf(s.line, ".org: %v", err)
			return 0
		}
		if uint32(v) < lc {
			a.errorf(s.line, ".org 0x%x is behind the location counter 0x%x", uint32(v), lc)
			return 0
		}
		return uint32(v) - lc
	case ".align", ".p2align":
		if len(s.args) < 1 {
			a.errorf(s.line, "%s needs an argument", s.mnem)
			return 0
		}
		v, err := evalExpr(s.args[0], a.pass1Resolver(lc))
		if err != nil || v < 0 || v > 16 {
			a.errorf(s.line, "bad alignment %q", s.args[0])
			return 0
		}
		align := uint32(1) << uint(v)
		return (align - lc%align) % align
	case ".word", ".long":
		return 4 * uint32(len(s.args))
	case ".half", ".short":
		return 2 * uint32(len(s.args))
	case ".byte":
		return uint32(len(s.args))
	case ".space", ".zero", ".skip":
		if len(s.args) < 1 {
			a.errorf(s.line, "%s needs a size", s.mnem)
			return 0
		}
		v, err := evalExpr(s.args[0], a.pass1Resolver(lc))
		if err != nil || v < 0 {
			a.errorf(s.line, "bad size %q", s.args[0])
			return 0
		}
		return uint32(v)
	case ".ascii", ".asciz", ".string":
		str, err := a.unquote(s)
		if err != nil {
			return 0
		}
		if s.mnem == ".ascii" {
			return uint32(len(str))
		}
		return uint32(len(str)) + 1
	case ".equ", ".set":
		if len(s.args) != 2 {
			a.errorf(s.line, "%s needs name, value", s.mnem)
			return 0
		}
		v, err := evalExpr(s.args[1], a.pass1Resolver(lc))
		if err != nil {
			a.errorf(s.line, "%s: %v", s.mnem, err)
			return 0
		}
		a.syms[s.args[0]] = v
		return 0
	case ".globl", ".global", ".section", ".text", ".data", ".bss",
		".option", ".type", ".size", ".file", ".attribute":
		return 0 // accepted for source compatibility; layout stays linear
	}
	a.errorf(s.line, "unknown directive %s", s.mnem)
	return 0
}

func (a *assembler) unquote(s *stmt) (string, error) {
	if len(s.args) != 1 || len(s.args[0]) < 2 || s.args[0][0] != '"' {
		a.errorf(s.line, "%s needs one quoted string", s.mnem)
		return "", errBad
	}
	str, err := strconv.Unquote(s.args[0])
	if err != nil {
		a.errorf(s.line, "bad string %s: %v", s.args[0], err)
		return "", errBad
	}
	return str, nil
}

// pass2 encodes every statement into the image.
func (a *assembler) pass2() {
	for _, s := range a.stmts {
		if s.kind == kindDirective {
			a.emitDirective(s)
		} else {
			code := a.encodeInstr(s)
			if len(code) != int(s.size) {
				if len(code) != 0 { // 0 = error already reported
					a.errorf(s.line, "internal: size changed between passes (%d -> %d)",
						s.size, len(code))
				}
				continue
			}
			copy(a.image[s.addr-a.org:], code)
			a.lines[s.addr] = s.line
		}
	}
}

func (a *assembler) emitDirective(s *stmt) {
	off := s.addr - a.org
	put := func(i uint32, size uint32, v int64) {
		for b := uint32(0); b < size; b++ {
			a.image[off+i+b] = byte(uint64(v) >> (8 * b))
		}
	}
	switch s.mnem {
	case ".word", ".long", ".half", ".short", ".byte":
		var size uint32 = 4
		switch s.mnem {
		case ".half", ".short":
			size = 2
		case ".byte":
			size = 1
		}
		for i, arg := range s.args {
			v, err := evalExpr(arg, a.resolver(s.addr))
			if err != nil {
				a.errorf(s.line, "%s: %v", s.mnem, err)
				return
			}
			put(uint32(i)*size, size, v)
		}
	case ".ascii", ".asciz", ".string":
		str, err := a.unquote(s)
		if err != nil {
			return
		}
		copy(a.image[off:], str)
		// .asciz/.string append the NUL, already zero in the image.
	}
	// .org/.align/.space pads are zero-filled by allocation.
}

// errBad is a sentinel for diagnostics already reported via errorf.
var errBad = errors.New("asm: bad statement")
