package asm

import (
	"repro/internal/decode"
	"repro/internal/encode"
	"repro/internal/isa"
)

// expandPseudo handles the standard pseudo-instruction set. handled is
// false when the mnemonic is not a pseudo (the caller then tries the
// real instruction table).
func (a *assembler) expandPseudo(s *stmt) (insts []decode.Inst, ok, handled bool) {
	mk := func(in ...decode.Inst) ([]decode.Inst, bool, bool) { return in, true, true }
	fail := func() ([]decode.Inst, bool, bool) { return nil, false, true }

	switch s.mnem {
	case "nop":
		if !a.nargs(s, 0) {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpADDI})

	case "li":
		if !a.nargs(s, 2) {
			return fail()
		}
		rd, ok1 := a.reg(s, s.args[0])
		v, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		if !s.liWide {
			if v < -2048 || v > 2047 {
				a.errorf(s.line, "internal: li value %d grew after pass 1", v)
				return fail()
			}
			return mk(decode.Inst{Op: isa.OpADDI, Rd: rd, Imm: v})
		}
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int32(uint32(v)-hi) << 20 >> 20
		return mk(
			decode.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(hi)},
			decode.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo},
		)

	case "la":
		if !a.nargs(s, 2) {
			return fail()
		}
		rd, ok1 := a.reg(s, s.args[0])
		v, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int32(uint32(v)-hi) << 20 >> 20
		return mk(
			decode.Inst{Op: isa.OpLUI, Rd: rd, Imm: int32(hi)},
			decode.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo},
		)

	case "mv":
		if !a.nargs(s, 2) {
			return fail()
		}
		rd, ok1 := a.reg(s, s.args[0])
		rs, ok2 := a.reg(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpADDI, Rd: rd, Rs1: rs})

	case "not":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpSUB, Rd: rd, Rs2: rs})
	case "seqz":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpSLTU, Rd: rd, Rs2: rs})
	case "sltz":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpSLT, Rd: rd, Rs1: rs})
	case "sgtz":
		rd, rs, ok := a.twoRegs(s)
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpSLT, Rd: rd, Rs2: rs})

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if !a.nargs(s, 2) {
			return fail()
		}
		rs, ok1 := a.reg(s, s.args[0])
		off, ok2 := a.target(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		var in decode.Inst
		switch s.mnem {
		case "beqz":
			in = decode.Inst{Op: isa.OpBEQ, Rs1: rs}
		case "bnez":
			in = decode.Inst{Op: isa.OpBNE, Rs1: rs}
		case "blez":
			in = decode.Inst{Op: isa.OpBGE, Rs2: rs} // 0 >= rs
		case "bgez":
			in = decode.Inst{Op: isa.OpBGE, Rs1: rs}
		case "bltz":
			in = decode.Inst{Op: isa.OpBLT, Rs1: rs}
		case "bgtz":
			in = decode.Inst{Op: isa.OpBLT, Rs2: rs} // 0 < rs
		}
		in.Imm = off
		return mk(in)

	case "bgt", "ble", "bgtu", "bleu":
		if !a.nargs(s, 3) {
			return fail()
		}
		rs1, ok1 := a.reg(s, s.args[0])
		rs2, ok2 := a.reg(s, s.args[1])
		off, ok3 := a.target(s, s.args[2])
		if !ok1 || !ok2 || !ok3 {
			return fail()
		}
		op := map[string]isa.Op{
			"bgt": isa.OpBLT, "ble": isa.OpBGE,
			"bgtu": isa.OpBLTU, "bleu": isa.OpBGEU,
		}[s.mnem]
		return mk(decode.Inst{Op: op, Rs1: rs2, Rs2: rs1, Imm: off})

	case "j":
		if !a.nargs(s, 1) {
			return fail()
		}
		off, ok := a.target(s, s.args[0])
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpJAL, Imm: off})

	case "jal":
		if len(s.args) == 1 { // jal target  (rd = ra)
			off, ok := a.target(s, s.args[0])
			if !ok {
				return fail()
			}
			return mk(decode.Inst{Op: isa.OpJAL, Rd: isa.RA, Imm: off})
		}
		return nil, false, false // two-operand form: real instruction

	case "jr":
		if !a.nargs(s, 1) {
			return fail()
		}
		rs, ok := a.reg(s, s.args[0])
		if !ok {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpJALR, Rs1: rs})

	case "jalr":
		if len(s.args) == 1 { // jalr rs  (rd = ra)
			rs, ok := a.reg(s, s.args[0])
			if !ok {
				return fail()
			}
			return mk(decode.Inst{Op: isa.OpJALR, Rd: isa.RA, Rs1: rs})
		}
		return nil, false, false

	case "call", "tail":
		if !a.nargs(s, 1) {
			return fail()
		}
		v, ok := a.imm(s, s.args[0])
		if !ok {
			return fail()
		}
		link := isa.RA
		if s.mnem == "tail" {
			link = isa.Zero
		}
		rel := uint32(v) - s.addr
		hi := (rel + 0x800) & 0xfffff000
		lo := int32(rel-hi) << 20 >> 20
		// auipc t1-free form: use the link register as scratch like GNU as
		// does (ra for call, t1 for tail).
		scratch := link
		if s.mnem == "tail" {
			scratch = isa.T1
		}
		return mk(
			decode.Inst{Op: isa.OpAUIPC, Rd: scratch, Imm: int32(hi)},
			decode.Inst{Op: isa.OpJALR, Rd: link, Rs1: scratch, Imm: lo},
		)

	case "ret":
		if !a.nargs(s, 0) {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpJALR, Rs1: isa.RA})

	case "csrr":
		if !a.nargs(s, 2) {
			return fail()
		}
		rd, ok1 := a.reg(s, s.args[0])
		c, ok2 := a.csr(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		return mk(decode.Inst{Op: isa.OpCSRRS, Rd: rd, CSR: c})
	case "csrw", "csrs", "csrc":
		if !a.nargs(s, 2) {
			return fail()
		}
		c, ok1 := a.csr(s, s.args[0])
		rs, ok2 := a.reg(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		op := map[string]isa.Op{"csrw": isa.OpCSRRW, "csrs": isa.OpCSRRS, "csrc": isa.OpCSRRC}[s.mnem]
		return mk(decode.Inst{Op: op, CSR: c, Rs1: rs})
	case "csrwi", "csrsi", "csrci":
		if !a.nargs(s, 2) {
			return fail()
		}
		c, ok1 := a.csr(s, s.args[0])
		imm, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		op := map[string]isa.Op{"csrwi": isa.OpCSRRWI, "csrsi": isa.OpCSRRSI, "csrci": isa.OpCSRRCI}[s.mnem]
		return mk(decode.Inst{Op: op, CSR: c, Imm: imm})

	case "rdcycle", "rdtime", "rdinstret", "rdcycleh", "rdtimeh", "rdinstreth":
		if !a.nargs(s, 1) {
			return fail()
		}
		rd, ok := a.reg(s, s.args[0])
		if !ok {
			return fail()
		}
		c := map[string]isa.CSR{
			"rdcycle": isa.CSRCycle, "rdtime": isa.CSRTime, "rdinstret": isa.CSRInstret,
			"rdcycleh": isa.CSRCycleH, "rdtimeh": isa.CSRTimeH, "rdinstreth": isa.CSRInstretH,
		}[s.mnem]
		return mk(decode.Inst{Op: isa.OpCSRRS, Rd: rd, CSR: c})

	case "fmv.s", "fabs.s", "fneg.s":
		if !a.nargs(s, 2) {
			return fail()
		}
		rd, ok1 := a.freg(s, s.args[0])
		rs, ok2 := a.freg(s, s.args[1])
		if !ok1 || !ok2 {
			return fail()
		}
		op := map[string]isa.Op{
			"fmv.s": isa.OpFSGNJS, "fabs.s": isa.OpFSGNJXS, "fneg.s": isa.OpFSGNJNS,
		}[s.mnem]
		return mk(decode.Inst{Op: op, Rd: rd, Rs1: rs, Rs2: rs})
	}
	return nil, false, false
}

// twoRegs parses the common "rd, rs" pseudo operand pair.
func (a *assembler) twoRegs(s *stmt) (rd, rs isa.Reg, ok bool) {
	if !a.nargs(s, 2) {
		return 0, 0, false
	}
	rd, ok1 := a.reg(s, s.args[0])
	rs, ok2 := a.reg(s, s.args[1])
	return rd, rs, ok1 && ok2
}

// expandCompressed assembles an explicit c.* mnemonic via Encode16.
func (a *assembler) expandCompressed(s *stmt) (uint16, bool) {
	op := isa.ByName(s.mnem)
	if !op.Valid() || op.Extension() != isa.ExtC {
		a.errorf(s.line, "unknown compressed instruction %q", s.mnem)
		return 0, false
	}
	in := decode.Inst{Op: op}
	switch op {
	case isa.OpCNOP, isa.OpCEBREAK:
		if !a.nargs(s, 0) {
			return 0, false
		}
	case isa.OpCADDI, isa.OpCLI, isa.OpCSLLI, isa.OpCSRLI, isa.OpCSRAI, isa.OpCANDI:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		imm, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rd, in.Rs1, in.Imm = rd, rd, imm
	case isa.OpCLUI:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		imm, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rd, in.Imm = rd, imm<<12
	case isa.OpCADDI16SP:
		if !a.nargs(s, 1) {
			return 0, false
		}
		imm, ok := a.imm(s, s.args[0])
		if !ok {
			return 0, false
		}
		in.Rd, in.Rs1, in.Imm = isa.SP, isa.SP, imm
	case isa.OpCADDI4SPN:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		imm, ok2 := a.imm(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rd, in.Rs1, in.Imm = rd, isa.SP, imm
	case isa.OpCMV, isa.OpCADD, isa.OpCSUB, isa.OpCXOR, isa.OpCOR, isa.OpCAND:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rd, ok1 := a.reg(s, s.args[0])
		rs, ok2 := a.reg(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rd, in.Rs1, in.Rs2 = rd, rd, rs
		if op == isa.OpCMV {
			in.Rs1 = 0
		}
	case isa.OpCJ, isa.OpCJAL:
		if !a.nargs(s, 1) {
			return 0, false
		}
		off, ok := a.target(s, s.args[0])
		if !ok {
			return 0, false
		}
		in.Imm = off
		if op == isa.OpCJAL {
			in.Rd = isa.RA
		}
	case isa.OpCJR, isa.OpCJALR:
		if !a.nargs(s, 1) {
			return 0, false
		}
		rs, ok := a.reg(s, s.args[0])
		if !ok {
			return 0, false
		}
		in.Rs1 = rs
		if op == isa.OpCJALR {
			in.Rd = isa.RA
		}
	case isa.OpCBEQZ, isa.OpCBNEZ:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rs, ok1 := a.reg(s, s.args[0])
		off, ok2 := a.target(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rs1, in.Imm = rs, off
	case isa.OpCLW, isa.OpCSW:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rx, ok1 := a.reg(s, s.args[0])
		off, rs1, ok2 := a.mem(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		in.Rs1, in.Imm = rs1, off
		if op == isa.OpCLW {
			in.Rd = rx
		} else {
			in.Rs2 = rx
		}
	case isa.OpCLWSP, isa.OpCSWSP:
		if !a.nargs(s, 2) {
			return 0, false
		}
		rx, ok1 := a.reg(s, s.args[0])
		off, rs1, ok2 := a.mem(s, s.args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		if rs1 != isa.SP {
			a.errorf(s.line, "%s base register must be sp", s.mnem)
			return 0, false
		}
		in.Rs1, in.Imm = isa.SP, off
		if op == isa.OpCLWSP {
			in.Rd = rx
		} else {
			in.Rs2 = rx
		}
	default:
		a.errorf(s.line, "compressed instruction %q not supported", s.mnem)
		return 0, false
	}
	h, err := encode.Encode16(in)
	if err != nil {
		a.errorf(s.line, "%v", err)
		return 0, false
	}
	return h, true
}
