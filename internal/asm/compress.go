package asm

import (
	"repro/internal/decode"
	"repro/internal/isa"
)

// compressInst maps a 32-bit instruction to its 16-bit equivalent when
// the C extension has one for these exact operands. Control-flow
// offsets are checked against a reduced range (half the architectural
// limit) because relaxation shifts addresses between rounds; the final
// encode still validates the true range.
func compressInst(in decode.Inst) (decode.Inst, bool) {
	creg := func(r isa.Reg) bool { return r >= 8 && r <= 15 }
	out := decode.Inst{}

	switch in.Op {
	case isa.OpADDI:
		switch {
		case in.Rd == 0 && in.Rs1 == 0 && in.Imm == 0:
			return decode.Inst{Op: isa.OpCNOP}, true
		case in.Rd == isa.SP && in.Rs1 == isa.SP && in.Imm != 0 &&
			in.Imm%16 == 0 && in.Imm >= -512 && in.Imm <= 496:
			return decode.Inst{Op: isa.OpCADDI16SP, Rd: isa.SP, Rs1: isa.SP, Imm: in.Imm}, true
		case in.Rd != 0 && in.Rs1 == in.Rd && in.Imm != 0 && in.Imm >= -32 && in.Imm <= 31:
			return decode.Inst{Op: isa.OpCADDI, Rd: in.Rd, Rs1: in.Rd, Imm: in.Imm}, true
		case in.Rd != 0 && in.Rs1 == 0 && in.Imm >= -32 && in.Imm <= 31:
			return decode.Inst{Op: isa.OpCLI, Rd: in.Rd, Imm: in.Imm}, true
		case in.Rd != 0 && in.Rs1 != 0 && in.Imm == 0:
			return decode.Inst{Op: isa.OpCMV, Rd: in.Rd, Rs2: in.Rs1}, true
		case creg(in.Rd) && in.Rs1 == isa.SP && in.Imm > 0 && in.Imm <= 1020 && in.Imm%4 == 0:
			return decode.Inst{Op: isa.OpCADDI4SPN, Rd: in.Rd, Rs1: isa.SP, Imm: in.Imm}, true
		}
	case isa.OpADD:
		switch {
		case in.Rd != 0 && in.Rs1 == in.Rd && in.Rs2 != 0:
			return decode.Inst{Op: isa.OpCADD, Rd: in.Rd, Rs1: in.Rd, Rs2: in.Rs2}, true
		case in.Rd != 0 && in.Rs2 == in.Rd && in.Rs1 != 0:
			return decode.Inst{Op: isa.OpCADD, Rd: in.Rd, Rs1: in.Rd, Rs2: in.Rs1}, true
		case in.Rd != 0 && in.Rs1 == 0 && in.Rs2 != 0:
			return decode.Inst{Op: isa.OpCMV, Rd: in.Rd, Rs2: in.Rs2}, true
		case in.Rd != 0 && in.Rs2 == 0 && in.Rs1 != 0:
			return decode.Inst{Op: isa.OpCMV, Rd: in.Rd, Rs2: in.Rs1}, true
		}
	case isa.OpLUI:
		hi := in.Imm >> 12
		if in.Rd != 0 && in.Rd != isa.SP && hi != 0 && hi >= -32 && hi <= 31 {
			return decode.Inst{Op: isa.OpCLUI, Rd: in.Rd, Imm: in.Imm}, true
		}
	case isa.OpLW:
		switch {
		case in.Rd != 0 && in.Rs1 == isa.SP && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0:
			return decode.Inst{Op: isa.OpCLWSP, Rd: in.Rd, Rs1: isa.SP, Imm: in.Imm}, true
		case creg(in.Rd) && creg(in.Rs1) && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0:
			return decode.Inst{Op: isa.OpCLW, Rd: in.Rd, Rs1: in.Rs1, Imm: in.Imm}, true
		}
	case isa.OpSW:
		switch {
		case in.Rs1 == isa.SP && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0:
			return decode.Inst{Op: isa.OpCSWSP, Rs2: in.Rs2, Rs1: isa.SP, Imm: in.Imm}, true
		case creg(in.Rs2) && creg(in.Rs1) && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0:
			return decode.Inst{Op: isa.OpCSW, Rs2: in.Rs2, Rs1: in.Rs1, Imm: in.Imm}, true
		}
	case isa.OpSLLI:
		if in.Rd != 0 && in.Rs1 == in.Rd && in.Imm >= 1 && in.Imm <= 31 {
			return decode.Inst{Op: isa.OpCSLLI, Rd: in.Rd, Rs1: in.Rd, Imm: in.Imm}, true
		}
	case isa.OpSRLI:
		if creg(in.Rd) && in.Rs1 == in.Rd && in.Imm >= 1 && in.Imm <= 31 {
			return decode.Inst{Op: isa.OpCSRLI, Rd: in.Rd, Rs1: in.Rd, Imm: in.Imm}, true
		}
	case isa.OpSRAI:
		if creg(in.Rd) && in.Rs1 == in.Rd && in.Imm >= 1 && in.Imm <= 31 {
			return decode.Inst{Op: isa.OpCSRAI, Rd: in.Rd, Rs1: in.Rd, Imm: in.Imm}, true
		}
	case isa.OpANDI:
		if creg(in.Rd) && in.Rs1 == in.Rd && in.Imm >= -32 && in.Imm <= 31 {
			return decode.Inst{Op: isa.OpCANDI, Rd: in.Rd, Rs1: in.Rd, Imm: in.Imm}, true
		}
	case isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSUB:
		cop := map[isa.Op]isa.Op{
			isa.OpAND: isa.OpCAND, isa.OpOR: isa.OpCOR,
			isa.OpXOR: isa.OpCXOR, isa.OpSUB: isa.OpCSUB,
		}[in.Op]
		switch {
		case creg(in.Rd) && in.Rs1 == in.Rd && creg(in.Rs2):
			return decode.Inst{Op: cop, Rd: in.Rd, Rs1: in.Rd, Rs2: in.Rs2}, true
		case in.Op != isa.OpSUB && creg(in.Rd) && in.Rs2 == in.Rd && creg(in.Rs1):
			// commutative forms can swap operands
			return decode.Inst{Op: cop, Rd: in.Rd, Rs1: in.Rd, Rs2: in.Rs1}, true
		}
	case isa.OpJAL:
		// Half-range margin against relaxation shift.
		if in.Imm >= -1024 && in.Imm <= 1023 && in.Imm%2 == 0 {
			if in.Rd == 0 {
				return decode.Inst{Op: isa.OpCJ, Rd: 0, Imm: in.Imm}, true
			}
			if in.Rd == isa.RA {
				return decode.Inst{Op: isa.OpCJAL, Rd: isa.RA, Imm: in.Imm}, true
			}
		}
	case isa.OpJALR:
		if in.Imm == 0 && in.Rs1 != 0 {
			if in.Rd == 0 {
				return decode.Inst{Op: isa.OpCJR, Rs1: in.Rs1}, true
			}
			if in.Rd == isa.RA {
				return decode.Inst{Op: isa.OpCJALR, Rd: isa.RA, Rs1: in.Rs1}, true
			}
		}
	case isa.OpBEQ, isa.OpBNE:
		cop := isa.OpCBEQZ
		if in.Op == isa.OpBNE {
			cop = isa.OpCBNEZ
		}
		// Half-range margin (architectural ±256).
		if in.Imm >= -128 && in.Imm <= 127 && in.Imm%2 == 0 {
			if in.Rs2 == 0 && creg(in.Rs1) {
				return decode.Inst{Op: cop, Rs1: in.Rs1, Rs2: 0, Imm: in.Imm}, true
			}
			if in.Rs1 == 0 && creg(in.Rs2) {
				return decode.Inst{Op: cop, Rs1: in.Rs2, Rs2: 0, Imm: in.Imm}, true
			}
		}
	case isa.OpEBREAK:
		return decode.Inst{Op: isa.OpCEBREAK}, true
	}
	return out, false
}
