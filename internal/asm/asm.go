// Package asm implements a two-pass RISC-V assembler for the RV32 ISA
// implemented by the emulator (I, M, F, Zicsr, Zifencei, Xbmi, and
// explicit C-extension mnemonics), with the standard pseudo-instruction
// set, numeric local labels, expressions with %hi/%lo, and the data
// directives bare-metal programs need. It plays the cross-toolchain's
// role in the ecosystem: every workload, test suite and torture program
// in the repository is built with it.
package asm

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultOrg is the default load/link address, matching the RAM base of
// the virtual platform.
const DefaultOrg uint32 = 0x8000_0000

// Program is the output of assembly: a flat binary image at Org plus its
// symbol table.
type Program struct {
	Org       uint32            // load address of Bytes[0]
	Entry     uint32            // _start if defined, else Org
	Bytes     []byte            // the image
	TextBytes int               // bytes occupied by instructions (code density metric)
	Symbols   map[string]uint32 // labels and .equ constants
	Lines     map[uint32]int    // instruction address -> source line
}

// Symbol returns the address of a defined symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// Error is one assembly diagnostic.
type Error struct {
	Line int
	Msg  string
}

func (e Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// ErrorList aggregates diagnostics from one assembly run.
type ErrorList []Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("asm: %d errors:\n%s", len(l), strings.Join(msgs, "\n"))
}

// stmtKind distinguishes parsed statements.
type stmtKind uint8

const (
	kindInstr stmtKind = iota
	kindDirective
)

type stmt struct {
	line   int
	kind   stmtKind
	mnem   string   // lower-cased mnemonic or directive (with '.')
	args   []string // comma-split operands
	addr   uint32
	size   uint32
	liWide bool // li chose the 2-instruction expansion in pass 1

	// compressed marks instructions the RVC relaxation decided to emit
	// as 16-bit encodings.
	compressed bool
}

// Options selects assembler behaviour beyond the defaults.
type Options struct {
	// Compress enables RVC relaxation: eligible 32-bit instructions are
	// iteratively re-encoded as compressed 16-bit forms, shrinking the
	// image the way a linker-relaxing RISC-V toolchain does.
	Compress bool
}

type assembler struct {
	org        uint32
	opt        Options
	syms       map[string]int64
	numeric    map[int][]uint32 // numeric label -> sorted definition addresses
	stmts      []*stmt
	labelQueue []pendingLabel
	errs       ErrorList
	image      []byte
	lines      map[uint32]int
}

// pendingLabel is a label definition recorded during parsing; pass 1
// assigns it the address of the statement at index idx (or the end of
// the image if it labels nothing).
type pendingLabel struct {
	name string
	line int
	idx  int
}

// Assemble assembles source at the default origin.
func Assemble(src string) (*Program, error) { return AssembleAt(src, DefaultOrg) }

// AssembleAt assembles source with the location counter starting at org.
func AssembleAt(src string, org uint32) (*Program, error) {
	return AssembleAtOpt(src, org, Options{})
}

// AssembleAtOpt assembles with explicit options.
func AssembleAtOpt(src string, org uint32, opt Options) (*Program, error) {
	a := &assembler{
		org:     org,
		opt:     opt,
		syms:    make(map[string]int64),
		numeric: make(map[int][]uint32),
		lines:   make(map[uint32]int),
	}
	a.parse(src)
	if len(a.errs) == 0 {
		a.pass1()
	}
	if len(a.errs) == 0 {
		a.pass2()
	}
	if len(a.errs) > 0 {
		sort.Slice(a.errs, func(i, j int) bool { return a.errs[i].Line < a.errs[j].Line })
		return nil, a.errs
	}
	p := &Program{
		Org:     a.org,
		Entry:   a.org,
		Bytes:   a.image,
		Symbols: make(map[string]uint32, len(a.syms)),
		Lines:   a.lines,
	}
	for _, s := range a.stmts {
		if s.kind == kindInstr {
			p.TextBytes += int(s.size)
		}
	}
	for name, v := range a.syms {
		p.Symbols[name] = uint32(v)
	}
	if e, ok := p.Symbols["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// stripComment removes #, //, and ; comments, respecting string quotes.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '#' || c == ';':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}

// splitArgs splits on top-level commas (outside parens and strings).
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

func (a *assembler) parse(src string) {
	a.labelQueue = nil
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		for line != "" {
			// Peel leading labels.
			colon := -1
			for i := 0; i < len(line); i++ {
				if line[i] == ':' {
					colon = i
					break
				}
				if !isSymChar(line[i]) {
					break
				}
			}
			if colon >= 0 {
				name := line[:colon]
				a.labelQueue = append(a.labelQueue, pendingLabel{name, lineNo + 1, len(a.stmts)})
				line = strings.TrimSpace(line[colon+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		sp := strings.IndexAny(line, " \t")
		mnem := line
		rest := ""
		if sp >= 0 {
			mnem = line[:sp]
			rest = strings.TrimSpace(line[sp+1:])
		}
		s := &stmt{
			line: lineNo + 1,
			mnem: strings.ToLower(mnem),
			args: splitArgs(rest),
		}
		if strings.HasPrefix(s.mnem, ".") {
			s.kind = kindDirective
		}
		a.stmts = append(a.stmts, s)
	}
}
