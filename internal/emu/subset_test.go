package emu_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/timing"
	"repro/internal/vp"
)

// The subset allowlist (Machine.SetSubset) must behave exactly like a
// hardware core that does not implement the instruction: executing an
// out-of-subset opcode raises an illegal-instruction exception (mcause
// 2, mtval = raw encoding, mepc/stop PC = the offending instruction).
// With no trap vector installed that stops the run with StopTrap — the
// documented convention shared by all engines, so a subset violation is
// distinguishable from a guest exit (StopExit carries the guest's
// exit code; StopTrap carries the cause).

const subsetTrapProg = `
	li   a0, 5
	li   a1, 7
bad:	mul  a2, a0, a1
	ebreak
`

// rv32iOnly builds the allowlist of every RV32I-config opcode — the
// program's mul is deliberately outside it.
func rv32iOnly() isa.OpSet {
	var s isa.OpSet
	for _, op := range isa.OpsIn(isa.RV32I) {
		s.Add(op)
	}
	return s
}

func runSubsetTrap(t *testing.T, engine emu.Engine, stepped bool) (emu.StopInfo, uint64, uint32) {
	t.Helper()
	p, err := vp.New(vp.Config{Profile: timing.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + subsetTrapProg)
	if err != nil {
		t.Fatal(err)
	}
	p.Machine.Engine = engine
	p.Machine.SetSubset(rv32iOnly())
	var stop emu.StopInfo
	if stepped {
		var s *emu.StopInfo
		for n := 0; n < 1000; n++ {
			if s = p.Machine.Step(); s != nil {
				break
			}
		}
		if s == nil {
			t.Fatal("stepped run did not stop")
		}
		stop = *s
	} else {
		stop = p.Run(1000)
	}
	return stop, p.Machine.Hart.Instret, prog.Symbols["bad"]
}

// TestSubsetTrapDeterministic proves the negative half of subset
// enforcement on every engine: the out-of-subset instruction traps, the
// trap is precise, and all four execution paths report the identical
// stop state.
func TestSubsetTrapDeterministic(t *testing.T) {
	type result struct {
		stop    emu.StopInfo
		instret uint64
	}
	var want *result
	for _, e := range []struct {
		name    string
		engine  emu.Engine
		stepped bool
	}{
		{"switch", emu.EngineSwitch, false},
		{"threaded", emu.EngineThreaded, false},
		{"superblock", emu.EngineSuperblock, false},
		{"step", emu.EngineThreaded, true},
	} {
		stop, instret, badPC := runSubsetTrap(t, e.engine, e.stepped)
		if stop.Reason != emu.StopTrap {
			t.Fatalf("%s: stop = %v, want unhandled trap", e.name, stop)
		}
		if stop.Cause != isa.ExcIllegalInst {
			t.Errorf("%s: cause = %d, want %d (illegal instruction)", e.name, stop.Cause, isa.ExcIllegalInst)
		}
		if stop.PC != badPC {
			t.Errorf("%s: trap PC = %#x, want %#x (the mul)", e.name, stop.PC, badPC)
		}
		got := result{stop, instret}
		if want == nil {
			want = &got
		} else if got != *want {
			t.Errorf("%s: stop state %+v differs from %+v", e.name, got, *want)
		}
		// Determinism: a second identical run must reproduce the state.
		stop2, instret2, _ := runSubsetTrap(t, e.engine, e.stepped)
		if stop2 != stop || instret2 != instret {
			t.Errorf("%s: rerun diverged: %+v/%d vs %+v/%d", e.name, stop2, instret2, stop, instret)
		}
	}
}

// TestSubsetTrapVectored: with a trap handler installed, the subset
// violation is delivered through mtvec like any architectural
// illegal-instruction exception — software can emulate or skip the
// instruction.
func TestSubsetTrapVectored(t *testing.T) {
	src := `
	la   t0, handler
	csrw mtvec, t0
	li   a0, 5
	mul  a1, a0, a0
	ebreak
handler:
	csrr t1, mepc
	addi t1, t1, 4
	csrw mepc, t1
	li   a1, 99
	mret
`
	for _, engine := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
		p, err := vp.New(vp.Config{Profile: timing.Unit()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(vp.Prelude + src); err != nil {
			t.Fatal(err)
		}
		p.Machine.Engine = engine
		p.Machine.SetSubset(rv32iOnly())
		stop := p.Run(1000)
		if stop.Reason != emu.StopExit && stop.Reason != emu.StopEbreak {
			t.Fatalf("engine %v: stop = %v, want clean stop via handler", engine, stop)
		}
		if got := p.Machine.Hart.X[isa.A1]; got != 99 {
			t.Errorf("engine %v: a1 = %d, want 99 (handler ran and skipped mul)", engine, got)
		}
		if p.Machine.Hart.Mcause != isa.ExcIllegalInst {
			t.Errorf("engine %v: mcause = %d, want %d", engine, p.Machine.Hart.Mcause, isa.ExcIllegalInst)
		}
	}
}
