package emu

import (
	"math/bits"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/plugin"
	"repro/internal/timing"
)

// This file implements the superblock trace engine: the threaded engine
// plus runtime trace fusion, the next speed tier on QEMU/TCG's own
// block-chaining → trace-fusion evolution. Hot blocks are profiled with
// per-block dispatch counters; once a block crosses traceHotThreshold
// the engine records the dynamically executed block path (NET-style:
// follow execution until the path closes a loop back onto its head or
// reaches the length cap) and fuses it into a single flattened executor
// slice spanning all constituent blocks.
//
// Unlike the threaded engine, whose unit of execution is a specialized
// closure per instruction, a trace compiles to a slice of sbOp micro-ops
// executed by one inline switch. The closure-per-instruction model pays
// an indirect call, a prologue and a return for every ALU op; the
// micro-op switch turns the common instructions into straight-line code
// inside one loop, which is where the trace engine's speedup over the
// threaded engine comes from. Anything without a micro-op encoding (CSR,
// FP, system ops, dynamically costed instructions) falls back to the
// threaded engine's compiled closure via the sbFn kind, with exact
// architectural state materialized first.
//
// The mechanisms that keep a fused trace bit-exact:
//
//   - Deferred accounting. Pure register ops carry no accounting at
//     all: they only write their destination register. The pending
//     (instret, cycle) deltas are compile-time constants, flushed by an
//     sbAcct op immediately before anything that can trap, divert or
//     observe the counters. Branches and jumps fold the flush into
//     their own retire, so a block whose tail is its terminator pays no
//     separate flush op. The invariant: whenever pending accounting is
//     nonzero, a later op in the trace flushes it (and sets the PC)
//     before any observer can read architectural state.
//
//   - Constant folding. A lui/auipc feeding an immediately following
//     addi into the same register (the canonical 32-bit constant and
//     `la` idioms) is folded into one sbConst writing the precomputed
//     value. Nothing observes the register between the pair, so the
//     combined write is exact.
//
//   - Guard ops. At each former block boundary the guard flushes
//     pending accounting, polls interrupts exactly where the threaded
//     engine would, and side-exits to the threaded path when the PC
//     does not match the recorded next block (branch mispredict, or an
//     interrupt redirecting control flow). A fully taken trace performs
//     the same per-boundary polls as the threaded engine — interrupt
//     delivery timing is bit-identical — but skips the block lookup,
//     chain validation, hook checks and per-block loop setup.
//
//   - Deferred loads/stores (unit profile only). Under the unit cycle
//     model nothing reads the load-use hazard state, so in-RAM aligned
//     loads and stores execute as micro-ops with no accounting at all,
//     joining the deferred run. The slow path (device access,
//     misalignment, store into code) flushes the pending snapshot
//     carried by the op, performs the access through the bus with exact
//     state, and either compensates the flush back out (successful
//     device access — the op rejoins the deferral) or side-exits with
//     exact state (trap, code invalidation, stop). Under a timing
//     profile loads and stores keep the threaded engine's closures.
//
// A store into any constituent block's range is detected through the
// existing store-to-code machinery: while a trace runs, Machine.curTB
// holds the trace's span block, so memStore's range invalidation
// reports a hit and the store side-exits; the invalidation itself drops
// exactly the traces overlapping the written range. Side exits are
// always architecturally exact — the remaining instructions simply
// re-execute through the threaded path.
//
// Traces only run when no plugin hooks are registered and the remaining
// budget covers the full trace, so per-instruction hook dispatch and
// budget stops never happen inside a trace; both gates fall back to
// plain threaded execution, which is trivially equivalent. Traces whose
// side exits dwarf their completed runs (a mispredicted recording, e.g.
// a data-dependent branch) are dropped and their entry block banned
// from re-profiling, so pathological paths degrade to plain threaded
// speed instead of paying guard overhead forever.

const (
	// traceHotThreshold is the number of superblock-engine dispatches of
	// one block before trace recording starts there. Edge workloads have
	// short trip counts (xtea runs its round loop 32 times), so the
	// threshold is low: recording costs one loop iteration and fusing is
	// cheap, while a late trace misses most of the loop's executions.
	traceHotThreshold = 8
	// maxTraceBlocks caps the number of blocks fused into one trace.
	maxTraceBlocks = 8
	// traceBanExits and traceBanRatio define the drop heuristic: once a
	// trace has side-exited more than traceBanExits times and more than
	// traceBanRatio times as often as it completed, its entry block is
	// banned from tracing.
	traceBanExits = 32
	traceBanRatio = 3
)

// sbOp micro-op kinds. sbFn is the escape hatch: op.fn holds a threaded
// compiled closure (or a bare register-writing closure for the binOps
// long tail) and everything else is encoded inline.
const (
	sbFn uint8 = iota
	sbConst
	sbAddi
	sbSlti
	sbSltiu
	sbAndi
	sbOri
	sbXori
	sbSlli
	sbSrli
	sbSrai
	sbRoti
	sbBexti
	sbAdd
	sbSub
	sbMv
	sbAnd
	sbOr
	sbXor
	sbSll
	sbSrl
	sbSra
	sbSlt
	sbSltu
	sbMul
	sbLw
	sbLh
	sbLhu
	sbLb
	sbLbu
	sbSw
	sbSh
	sbSb
	sbBeq
	sbBne
	sbBlt
	sbBge
	sbBltu
	sbBgeu
	sbJal
	sbJalr
	sbAcct
	sbGuard
)

// sbOp is one trace micro-op. Field meaning depends on kind:
//
//	ALU kinds    rd/rs1/rs2 registers, imm the (pre-sign-extended or
//	             precomputed) immediate. No accounting: the op is part
//	             of a deferred run.
//	mem kinds    rd/rs1/rs2 and imm as decoded (stores keep the value
//	             register in rs2 and the instruction size in rd); pc is
//	             the instruction's address; n/aux snapshot the pending
//	             (instret, cycle) deferral before the op, for the slow
//	             path's flush-and-compensate.
//	branch/jump  imm the taken target (jalr: the immediate), pc the
//	             fallthrough/link address, n/aux the pending deferral
//	             including the op's own cost, pen the extra taken-branch
//	             penalty. The op folds the accounting flush into its own
//	             retire.
//	sbAcct       flush: instret += n, cycle += aux, PC = imm.
//	sbGuard      flush n/aux, set PC = pc when rs1 != 0 (bare
//	             fallthrough tail), poll interrupts, side-exit unless
//	             PC == imm (the recorded next block).
//	sbFn         fn is a threaded-engine closure; all other fields zero.
type sbOp struct {
	fn   opFn
	imm  uint32
	aux  uint32
	pc   uint32
	n    uint16
	pen  uint16
	kind uint8
	rd   uint8
	rs1  uint8
	rs2  uint8
}

// traceCode is one immutable compiled superblock trace: the flattened
// micro-op slice spanning every constituent block. Like tbCode it is
// machine-independent and strictly read-only after construction, so a
// TBPool can publish it to any number of machines.
type traceCode struct {
	entry  uint32
	prof   *timing.Profile
	ext    isa.ExtSet
	sub    isa.OpSet
	blocks []*tbCode
	ops    []sbOp
	// nInsts is the architectural instruction count of a fully taken
	// trace execution; the budget gate admits a trace only when at least
	// this many instructions remain.
	nInsts uint64
	// lo/hi bound the constituent blocks' address ranges (conservative
	// for non-contiguous traces); trace invalidation keys off them.
	lo, hi uint32
	// span is a synthetic block covering [lo, hi), installed as curTB
	// while the trace executes so a store into any constituent forces a
	// side exit through the store-to-code path.
	span *tb
}

// runSuperblock is the superblock engine loop: the threaded loop with
// trace dispatch, hot-block profiling and trace recording layered on.
// Trace dispatch rides the resolved block (tb.trace), so the hot path
// pays no map lookup — the trace map is only consulted when a block
// first crosses the hotness threshold.
func (m *Machine) runSuperblock(budget uint64) StopInfo {
	h := &m.Hart
	m.ensureRAM()
	m.sbPolled = false
	left := budget
	var cur, prev *tb
	for m.stop == nil {
		if m.sbPolled {
			// A guard already polled at this boundary; polling again at
			// the advanced cycle count would be architecturally visible.
			m.sbPolled = false
		} else {
			m.pollInterrupts()
			if m.stop != nil {
				break
			}
		}
		pc := h.PC
		if cur == nil || cur.info.PC != pc {
			cur = m.lookupTB(pc)
			if cur == nil {
				prev = nil
				continue // fetch fault became a trap or a stop
			}
			if prev != nil && !m.DisableTBCache {
				prev.succ[1], prev.succ[0] = prev.succ[0], cur
			}
		}
		if m.recActive {
			if pc == m.rec[0].info.PC || len(m.rec) >= maxTraceBlocks {
				m.buildTrace()
			} else {
				m.rec = append(m.rec, cur)
			}
		} else if tr := cur.trace; tr != nil {
			if (budget == 0 || left >= tr.nInsts) &&
				!m.Hooks.HasBlockHooks() && !m.Hooks.HasInsnHooks() && !m.Hooks.HasMemHooks() {
				n0 := h.Instret
				r0, e0 := m.stats.TraceRuns, m.stats.TraceSideExits
				m.execTrace(tr, budget, left)
				if budget != 0 {
					left -= h.Instret - n0
				}
				cur.trRuns += m.stats.TraceRuns - r0
				cur.trExits += m.stats.TraceSideExits - e0
				if cur.trExits > traceBanExits && cur.trExits > traceBanRatio*cur.trRuns {
					// The recording mispredicted this path (e.g. a
					// data-dependent branch): guards side-exit far more
					// often than the trace completes, so it costs more
					// than plain threaded execution. Drop it and ban the
					// entry block from re-profiling.
					cur.trace = nil
					cur.noTrace = true
					delete(m.traces, pc)
					m.stats.TracesInvalidated++
				}
				cur, prev = nil, nil
				continue
			}
		} else if !m.DisableTBCache && !cur.noTrace {
			cur.hot++
			if cur.hot >= traceHotThreshold {
				cur.hot = 0
				if tr := m.traceFor(pc); tr != nil {
					cur.trace = tr
				} else {
					m.recActive = true
					m.rec = append(m.rec[:0], cur)
				}
			}
		}
		if cur.ops == nil {
			cur.tbCode.compile()
		}
		if m.Hooks.HasBlockHooks() {
			m.Hooks.BlockExec(cur.info)
		}
		m.lastLoad = 0 // hazard state does not cross block boundaries
		m.curTB = cur
		if budget == 0 && !m.Hooks.HasInsnHooks() {
			for _, fn := range cur.ops {
				if fn(m) {
					break
				}
			}
		} else {
			diverted := false
			for i, fn := range cur.ops {
				if budget != 0 && left == 0 {
					m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
					break
				}
				if m.Hooks.HasInsnHooks() {
					m.Hooks.InsnExec(cur.info.Addrs[i], cur.info.Insts[i])
				}
				diverted = fn(m)
				if budget != 0 {
					left--
				}
				if diverted || m.stop != nil {
					break
				}
			}
			if m.stop == nil && !diverted && budget != 0 && left == 0 {
				m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
			}
		}
		m.curTB = nil
		if m.stop != nil {
			break
		}
		prev = cur
		npc := h.PC
		switch {
		case m.chainOK(cur.succ[0], npc):
			cur = cur.succ[0]
			m.stats.ChainFollows++
		case m.chainOK(cur.succ[1], npc):
			cur = cur.succ[1]
			m.stats.ChainFollows++
		default:
			cur = nil
		}
	}
	s := *m.stop
	if s.Reason == StopBudget {
		// A budget stop is resumable: clear it so Run can be called again.
		m.stop = nil
	}
	return s
}

// traceFor returns the dispatchable trace entered at pc, if any,
// consulting the private trace map first and then the attached pool's
// frozen tier. A pooled trace is adopted only while the bytes under its
// whole range are untouched per the dirty-state check (watermark box
// refined by the page bitmap, DirtyOverlaps) — the same validity
// contract as pooled blocks; a dirty range leaves the entry to private
// re-formation over the current bytes (the overlay behaviour). Callers
// gate on DisableTBCache.
func (m *Machine) traceFor(pc uint32) *traceCode {
	if tr := m.traces[pc]; tr != nil {
		if tr.prof == m.Profile && tr.ext == m.ISA && tr.sub == m.subset {
			return tr
		}
		delete(m.traces, pc) // stale specialization
		return nil
	}
	p := m.activePool()
	if p == nil || len(p.traces) == 0 {
		return nil
	}
	tr := p.traces[pc]
	if tr == nil {
		return nil
	}
	if m.DirtyOverlaps(tr.lo, tr.hi) {
		return nil
	}
	if m.traces == nil {
		m.traces = make(map[uint32]*traceCode)
	}
	m.traces[pc] = tr
	m.stats.TracePoolHits++
	return tr
}

// execTrace runs one trace until a side exit, a stop, or (for a
// self-looping trace) the budget gate closes. The caller has already
// verified the budget covers a full execution and no hooks are
// registered. Returns true when the trace side-exited (left before its
// final op).
func (m *Machine) execTrace(tr *traceCode, budget, left uint64) bool {
	h := &m.Hart
	m.lastLoad = 0
	m.curTB = tr.span
	n0 := h.Instret
	ops := tr.ops
	last := len(ops) - 1
	for {
		// The trace's last op is its terminator: diverting there is the
		// normal end of a fully taken trace, not a side exit — only an
		// earlier divert leaves the trace.
		diverted := false
	body:
		for i := 0; i <= last; i++ {
			op := &ops[i]
			switch op.kind {
			case sbConst:
				h.X[op.rd&31] = op.imm
			case sbAddi:
				h.X[op.rd&31] = h.X[op.rs1&31] + op.imm
			case sbSlti:
				h.X[op.rd&31] = b2u(int32(h.X[op.rs1&31]) < int32(op.imm))
			case sbSltiu:
				h.X[op.rd&31] = b2u(h.X[op.rs1&31] < op.imm)
			case sbAndi:
				h.X[op.rd&31] = h.X[op.rs1&31] & op.imm
			case sbOri:
				h.X[op.rd&31] = h.X[op.rs1&31] | op.imm
			case sbXori:
				h.X[op.rd&31] = h.X[op.rs1&31] ^ op.imm
			case sbSlli:
				h.X[op.rd&31] = h.X[op.rs1&31] << op.imm
			case sbSrli:
				h.X[op.rd&31] = h.X[op.rs1&31] >> op.imm
			case sbSrai:
				h.X[op.rd&31] = uint32(int32(h.X[op.rs1&31]) >> op.imm)
			case sbRoti:
				h.X[op.rd&31] = bits.RotateLeft32(h.X[op.rs1&31], int(int32(op.imm)))
			case sbBexti:
				h.X[op.rd&31] = h.X[op.rs1&31] >> op.imm & 1
			case sbAdd:
				h.X[op.rd&31] = h.X[op.rs1&31] + h.X[op.rs2&31]
			case sbSub:
				h.X[op.rd&31] = h.X[op.rs1&31] - h.X[op.rs2&31]
			case sbMv:
				h.X[op.rd&31] = h.X[op.rs1&31]
			case sbAnd:
				h.X[op.rd&31] = h.X[op.rs1&31] & h.X[op.rs2&31]
			case sbOr:
				h.X[op.rd&31] = h.X[op.rs1&31] | h.X[op.rs2&31]
			case sbXor:
				h.X[op.rd&31] = h.X[op.rs1&31] ^ h.X[op.rs2&31]
			case sbSll:
				h.X[op.rd&31] = h.X[op.rs1&31] << (h.X[op.rs2&31] & 31)
			case sbSrl:
				h.X[op.rd&31] = h.X[op.rs1&31] >> (h.X[op.rs2&31] & 31)
			case sbSra:
				h.X[op.rd&31] = uint32(int32(h.X[op.rs1&31]) >> (h.X[op.rs2&31] & 31))
			case sbSlt:
				h.X[op.rd&31] = b2u(int32(h.X[op.rs1&31]) < int32(h.X[op.rs2&31]))
			case sbSltu:
				h.X[op.rd&31] = b2u(h.X[op.rs1&31] < h.X[op.rs2&31])
			case sbMul:
				h.X[op.rd&31] = h.X[op.rs1&31] * h.X[op.rs2&31]

			case sbLw:
				addr := h.X[op.rs1&31] + op.imm
				off := uint64(addr - m.ramBase)
				if addr&3 == 0 && off+4 <= uint64(len(m.ram)) {
					r := m.ram[off : off+4 : off+4]
					if op.rd != 0 {
						h.X[op.rd&31] = uint32(r[0]) | uint32(r[1])<<8 |
							uint32(r[2])<<16 | uint32(r[3])<<24
					}
				} else {
					v, ok := m.sbSlowLoad(op, addr, 4)
					if !ok {
						diverted = i < last
						break body
					}
					if op.rd != 0 {
						h.X[op.rd&31] = v
					}
				}
			case sbLh, sbLhu:
				addr := h.X[op.rs1&31] + op.imm
				off := uint64(addr - m.ramBase)
				var v uint32
				if addr&1 == 0 && off+2 <= uint64(len(m.ram)) {
					v = uint32(m.ram[off]) | uint32(m.ram[off+1])<<8
				} else {
					var ok bool
					if v, ok = m.sbSlowLoad(op, addr, 2); !ok {
						diverted = i < last
						break body
					}
				}
				if op.kind == sbLh {
					v = uint32(int32(v) << 16 >> 16)
				}
				if op.rd != 0 {
					h.X[op.rd&31] = v
				}
			case sbLb, sbLbu:
				addr := h.X[op.rs1&31] + op.imm
				off := uint64(addr - m.ramBase)
				var v uint32
				if off < uint64(len(m.ram)) {
					v = uint32(m.ram[off])
				} else {
					var ok bool
					if v, ok = m.sbSlowLoad(op, addr, 1); !ok {
						diverted = i < last
						break body
					}
				}
				if op.kind == sbLb {
					v = uint32(int32(v) << 24 >> 24)
				}
				if op.rd != 0 {
					h.X[op.rd&31] = v
				}

			case sbSw:
				addr := h.X[op.rs1&31] + op.imm
				v := h.X[op.rs2&31]
				off := uint64(addr - m.ramBase)
				if addr&3 == 0 && off+4 <= uint64(len(m.ram)) &&
					!(addr < m.codeHi && addr+4 > m.codeLo) {
					r := m.ram[off : off+4 : off+4]
					r[0] = byte(v)
					r[1] = byte(v >> 8)
					r[2] = byte(v >> 16)
					r[3] = byte(v >> 24)
					m.noteRAMStore(addr, 4)
				} else if m.sbSlowStore(op, addr, v, 4) {
					diverted = i < last
					break body
				}
			case sbSh:
				addr := h.X[op.rs1&31] + op.imm
				v := h.X[op.rs2&31]
				off := uint64(addr - m.ramBase)
				if addr&1 == 0 && off+2 <= uint64(len(m.ram)) &&
					!(addr < m.codeHi && addr+2 > m.codeLo) {
					m.ram[off] = byte(v)
					m.ram[off+1] = byte(v >> 8)
					m.noteRAMStore(addr, 2)
				} else if m.sbSlowStore(op, addr, v, 2) {
					diverted = i < last
					break body
				}
			case sbSb:
				addr := h.X[op.rs1&31] + op.imm
				v := h.X[op.rs2&31]
				off := uint64(addr - m.ramBase)
				if off < uint64(len(m.ram)) &&
					!(addr < m.codeHi && addr+1 > m.codeLo) {
					m.ram[off] = byte(v)
					m.noteRAMStore(addr, 1)
				} else if m.sbSlowStore(op, addr, v, 1) {
					diverted = i < last
					break body
				}

			case sbBeq:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if h.X[op.rs1&31] == h.X[op.rs2&31] {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}
			case sbBne:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if h.X[op.rs1&31] != h.X[op.rs2&31] {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}
			case sbBlt:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if int32(h.X[op.rs1&31]) < int32(h.X[op.rs2&31]) {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}
			case sbBge:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if int32(h.X[op.rs1&31]) >= int32(h.X[op.rs2&31]) {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}
			case sbBltu:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if h.X[op.rs1&31] < h.X[op.rs2&31] {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}
			case sbBgeu:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				if h.X[op.rs1&31] >= h.X[op.rs2&31] {
					h.Cycle += uint64(op.aux) + uint64(op.pen)
					h.PC = op.imm
				} else {
					h.Cycle += uint64(op.aux)
					h.PC = op.pc
				}

			case sbJal:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				h.Cycle += uint64(op.aux)
				if op.rd != 0 {
					h.X[op.rd&31] = op.pc
				}
				h.PC = op.imm
			case sbJalr:
				m.lastLoad = 0
				h.Instret += uint64(op.n) + 1
				h.Cycle += uint64(op.aux)
				// Read rs1 before the link write: rd may alias rs1.
				target := (h.X[op.rs1&31] + op.imm) &^ 1
				if op.rd != 0 {
					h.X[op.rd&31] = op.pc
				}
				h.PC = target

			case sbAcct:
				h.Instret += uint64(op.n)
				h.Cycle += uint64(op.aux)
				h.PC = op.imm
				m.lastLoad = 0
			case sbGuard:
				h.Instret += uint64(op.n)
				h.Cycle += uint64(op.aux)
				if op.rs1 != 0 {
					// Bare fallthrough tail: the architectural PC is the
					// block's end — not the expected next block, which can
					// legitimately differ when the recording captured an
					// interrupt redirect at this boundary.
					h.PC = op.pc
				}
				m.lastLoad = 0
				m.pollInterrupts()
				if m.stop != nil {
					diverted = i < last
					break body
				}
				if h.PC != op.imm {
					m.sbPolled = true // boundary poll done; engine must not re-poll
					diverted = i < last
					break body
				}

			default: // sbFn: threaded closure (fallback, CSR/FP/system, binOps tail)
				if op.fn(m) {
					diverted = i < last
					break body
				}
			}
		}
		if diverted {
			m.stats.TraceSideExits++
			m.curTB = nil
			return true
		}
		m.stats.TraceRuns++
		if m.stop != nil || h.PC != tr.entry {
			break
		}
		// Self-looping trace: re-enter without going through the engine
		// loop. The boundary poll and the budget gate are replayed here
		// exactly as the outer loop would perform them.
		if budget != 0 && left-(h.Instret-n0) < tr.nInsts {
			break
		}
		m.pollInterrupts()
		if m.stop != nil {
			break
		}
		if h.PC != tr.entry {
			m.sbPolled = true // boundary poll done; do not poll again
			break
		}
		m.lastLoad = 0
	}
	m.curTB = nil
	return false
}

// sbSlowLoad handles a trace load that missed the direct-RAM fast path
// (device access, misalignment, or a fault). The pending accounting
// snapshot carried by the op is flushed first so the bus — and any trap
// — observes exact counters and PC; on success (a device load) the
// flush is subtracted back out, because the op rejoins the deferred run
// and the next flush point re-materializes everything including it. The
// PC intentionally stays at op.pc afterwards: pending accounting is now
// nonzero, and the deferral invariant guarantees a later flush sets the
// PC before any observer reads it.
func (m *Machine) sbSlowLoad(op *sbOp, addr uint32, size uint8) (uint32, bool) {
	h := &m.Hart
	h.Instret += uint64(op.n)
	h.Cycle += uint64(op.aux)
	h.PC = op.pc
	v, ok := m.memLoad(op.pc, addr, size)
	if !ok {
		return 0, false // trapped or stopped, with exact state
	}
	h.Instret -= uint64(op.n)
	h.Cycle -= uint64(op.aux)
	return v, true
}

// sbSlowStore handles a trace store that missed the direct-RAM fast
// path, with the same flush-and-compensate scheme as sbSlowLoad. When
// the store invalidated code or stopped the machine it cannot rejoin
// the deferral — the trace must side-exit — so it self-accounts exactly
// (deferred stores exist only under the unit profile: one cycle, one
// instruction, PC advanced by the instruction size held in op.rd) and
// reports the divert.
func (m *Machine) sbSlowStore(op *sbOp, addr, val uint32, size uint8) bool {
	h := &m.Hart
	h.Instret += uint64(op.n)
	h.Cycle += uint64(op.aux)
	h.PC = op.pc
	ok, inval := m.memStore(op.pc, addr, size, val)
	if !ok {
		return true // trapped, with exact state
	}
	if inval || m.stop != nil {
		h.Instret++
		h.Cycle++
		h.PC = op.pc + uint32(op.rd)
		m.lastLoad = 0
		return true
	}
	h.Instret -= uint64(op.n)
	h.Cycle -= uint64(op.aux)
	return false
}

// buildTrace fuses the recorded block path into a trace and installs it
// on the entry block. Recording state is consumed either way; the
// fusion is abandoned when a recorded block is no longer the live
// translation at its pc (invalidated or respecialized since it was
// recorded).
func (m *Machine) buildTrace() {
	rec := m.rec
	m.recActive = false
	m.rec = m.rec[:0]
	if len(rec) == 0 {
		return
	}
	entry := rec[0].info.PC
	for _, t := range rec {
		if m.tbs[t.info.PC] != t || t.prof != m.Profile || t.ext != m.ISA ||
			t.sub != m.subset {
			return
		}
	}
	if tr := m.traces[entry]; tr != nil {
		if tr.prof == m.Profile && tr.ext == m.ISA && tr.sub == m.subset {
			rec[0].trace = tr // already formed (e.g. pool adoption); relink
		}
		return
	}
	tr := newTraceCode(rec, m.Profile, m.ISA, m.subset)
	if m.traces == nil {
		m.traces = make(map[uint32]*traceCode)
	}
	m.traces[entry] = tr
	rec[0].trace = tr
	m.stats.TracesFormed++
	m.stats.TraceBlocksFused += uint64(len(rec))
}

// newTraceCode compiles a recorded block path into one flattened
// micro-op slice. Each block's instructions are recompiled in
// deferred-accounting form; a guard op separates consecutive blocks and
// the last block's pending accounting is flushed by a trailing sbAcct.
func newTraceCode(rec []*tb, prof *timing.Profile, ext isa.ExtSet, sub isa.OpSet) *traceCode {
	tr := &traceCode{
		entry: rec[0].info.PC,
		prof:  prof,
		ext:   ext,
		sub:   sub,
		lo:    ^uint32(0),
	}
	for i, t := range rec {
		c := t.tbCode
		tr.blocks = append(tr.blocks, c)
		if c.info.PC < tr.lo {
			tr.lo = c.info.PC
		}
		if c.end > tr.hi {
			tr.hi = c.end
		}
		tr.nInsts += uint64(len(c.info.Insts))
		if i < len(rec)-1 {
			appendTraceBlock(tr, c, rec[i+1].info.PC, true)
		} else {
			appendTraceBlock(tr, c, 0, false)
		}
	}
	tr.span = &tb{tbCode: &tbCode{
		info: plugin.BlockInfo{PC: tr.lo},
		end:  tr.hi,
		prof: prof,
		ext:  ext,
		sub:  sub,
	}}
	return tr
}

// appendTraceBlock recompiles one constituent block into tr.ops in
// deferred-accounting micro-op form, ending with a guard expecting the
// recorded next block (or a trailing flush of a bare tail of the last
// block).
func appendTraceBlock(tr *traceCode, c *tbCode, expect uint32, guard bool) {
	insts := c.info.Insts
	addrs := c.info.Addrs
	var costs []uint32
	var dyn []bool
	icache := false
	if tr.prof != nil {
		costs, dyn = tr.prof.StaticPlan(insts)
		icache = tr.prof.HasICache()
	}
	// Loads and stores defer their accounting only under the unit cycle
	// model: nothing reads the load-use hazard state there (execOne
	// consults lastLoad only when a profile is set), so a load can skip
	// its bookkeeping entirely. Under a profile they keep the threaded
	// engine's closures, whose static costs and hazard updates are
	// already exact.
	deferLS := tr.prof == nil
	var pend uint64    // deferred retired-instruction count
	var pendCyc uint64 // deferred cycle count
	constIdx := -1     // index in tr.ops of a fold-eligible sbConst, -1 if none
	var constRd isa.Reg
	for i, in := range insts {
		cost := uint32(1)
		if costs != nil {
			cost = costs[i]
		}
		if !icache && (dyn == nil || !dyn[i]) && tr.sub.Allows(in.Op) {
			if op, emit, ok := bareOp(in, addrs[i], tr.ext); ok {
				pend++
				pendCyc += uint64(cost)
				if !emit {
					continue // architectural no-op: accounting only
				}
				if constIdx >= 0 && (in.Op == isa.OpADDI || in.Op == isa.OpCADDI) &&
					in.Rd == constRd && in.Rs1 == constRd {
					// lui/auipc rd + addi rd, rd, lo: fold into the constant
					// write. Nothing observes rd between the pair, so the
					// combined store is exact.
					tr.ops[constIdx].imm += uint32(in.Imm)
					continue
				}
				tr.ops = append(tr.ops, op)
				if op.kind == sbConst && in.Rd != 0 {
					constIdx = len(tr.ops) - 1
					constRd = in.Rd
				} else {
					constIdx = -1
				}
				continue
			}
			if op, ok := ctlOp(in, addrs[i], cost, tr.prof, tr.ext, pend, pendCyc); ok {
				// Branches and jumps fold the pending flush into their own
				// retire; no separate sbAcct needed.
				constIdx = -1
				tr.ops = append(tr.ops, op)
				pend, pendCyc = 0, 0
				continue
			}
			if deferLS {
				if op, ok := memOp(in, addrs[i], tr.ext, pend, pendCyc); ok {
					// The op snapshots the deferral before itself (for the
					// slow path's flush), then joins it.
					constIdx = -1
					tr.ops = append(tr.ops, op)
					pend++
					pendCyc += uint64(cost)
					continue
				}
			}
		}
		// Impure or dynamically costed: flush pending accounting so the
		// op observes exact counters, PC and hazard state, then reuse the
		// threaded engine's compiled form verbatim.
		constIdx = -1
		if pend > 0 {
			tr.ops = append(tr.ops, acctOp(pend, pendCyc, addrs[i]))
			pend, pendCyc = 0, 0
		}
		if icache || (dyn != nil && dyn[i]) {
			tr.ops = append(tr.ops, sbOp{kind: sbFn, fn: fallbackOp(in)})
		} else {
			tr.ops = append(tr.ops, sbOp{kind: sbFn, fn: compileOp(in, addrs[i], cost, tr.prof, tr.ext, tr.sub)})
		}
	}
	if guard {
		g := sbOp{kind: sbGuard, imm: expect, pc: c.end, n: uint16(pend), aux: uint32(pendCyc)}
		if pend > 0 {
			g.rs1 = 1 // bare tail: guard must materialize the fallthrough PC
		}
		tr.ops = append(tr.ops, g)
	} else if pend > 0 {
		tr.ops = append(tr.ops, acctOp(pend, pendCyc, c.end))
	}
}

// acctOp builds the deferred-accounting flush micro-op.
func acctOp(n, cyc uint64, pc uint32) sbOp {
	return sbOp{kind: sbAcct, n: uint16(n), aux: uint32(cyc), imm: pc}
}

// bareOp builds the deferred-accounting micro-op for one pure
// specialized instruction: writes only the destination register, never
// traps, never diverts, and leaves all accounting to a later flush.
// emit=false with ok=true means an architectural no-op (x0-targeted
// ops, fences, wfi): accounting only, nothing emitted. ok=false means
// the instruction has no bare form and must keep the threaded engine's
// exact closure.
func bareOp(in decode.Inst, pc uint32, ext isa.ExtSet) (op sbOp, emit, ok bool) {
	if !in.Valid() || !in.Op.In(ext) {
		return sbOp{}, false, false
	}
	immU := uint32(in.Imm)
	mk := func(kind uint8, imm uint32) (sbOp, bool, bool) {
		if in.Rd == 0 {
			return sbOp{}, false, true
		}
		return sbOp{kind: kind, imm: imm,
			rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2)}, true, true
	}
	switch in.Op {
	case isa.OpFENCE, isa.OpWFI:
		return sbOp{}, false, true
	case isa.OpLUI, isa.OpCLUI:
		return mk(sbConst, immU)
	case isa.OpAUIPC:
		return mk(sbConst, pc+immU)
	case isa.OpADDI, isa.OpCADDI, isa.OpCADDI16SP, isa.OpCADDI4SPN, isa.OpCLI, isa.OpCNOP:
		if in.Rs1 == 0 { // li: constant materialization
			return mk(sbConst, immU)
		}
		return mk(sbAddi, immU)
	case isa.OpSLTI:
		return mk(sbSlti, immU)
	case isa.OpSLTIU:
		return mk(sbSltiu, immU)
	case isa.OpXORI:
		return mk(sbXori, immU)
	case isa.OpORI:
		return mk(sbOri, immU)
	case isa.OpANDI, isa.OpCANDI:
		return mk(sbAndi, immU)
	case isa.OpSLLI, isa.OpCSLLI:
		return mk(sbSlli, immU)
	case isa.OpSRLI, isa.OpCSRLI:
		return mk(sbSrli, immU)
	case isa.OpSRAI, isa.OpCSRAI:
		return mk(sbSrai, immU)
	case isa.OpRORI:
		return mk(sbRoti, uint32(-in.Imm)) // left-rotation amount
	case isa.OpBSETI:
		return mk(sbOri, 1<<immU)
	case isa.OpBCLRI:
		return mk(sbAndi, ^(uint32(1) << immU))
	case isa.OpBINVI:
		return mk(sbXori, 1<<immU)
	case isa.OpBEXTI:
		return mk(sbBexti, immU)
	case isa.OpADD, isa.OpCADD:
		return mk(sbAdd, 0)
	case isa.OpCMV:
		// CMV reads rs2; normalize onto rs1 so the executor has one shape.
		if in.Rd == 0 {
			return sbOp{}, false, true
		}
		return sbOp{kind: sbMv, rd: uint8(in.Rd), rs1: uint8(in.Rs2)}, true, true
	case isa.OpSUB, isa.OpCSUB:
		return mk(sbSub, 0)
	case isa.OpSLL:
		return mk(sbSll, 0)
	case isa.OpSRL:
		return mk(sbSrl, 0)
	case isa.OpSRA:
		return mk(sbSra, 0)
	case isa.OpSLT:
		return mk(sbSlt, 0)
	case isa.OpSLTU:
		return mk(sbSltu, 0)
	case isa.OpXOR, isa.OpCXOR:
		return mk(sbXor, 0)
	case isa.OpOR, isa.OpCOR:
		return mk(sbOr, 0)
	case isa.OpAND, isa.OpCAND:
		return mk(sbAnd, 0)
	case isa.OpMUL:
		return mk(sbMul, 0)
	}

	if fn := binOps[in.Op]; fn != nil {
		if in.Rd == 0 {
			return sbOp{}, false, true
		}
		rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
		f := func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = fn(h.Reg(rs1), h.Reg(rs2))
			return false
		}
		return sbOp{kind: sbFn, fn: f}, true, true
	}

	return sbOp{}, false, false
}

// ctlOp builds the micro-op for a branch or jump, folding the pending
// accounting flush into the op's own retire. ok=false leaves the
// instruction to the exact-closure path (invalid, misaligned target).
func ctlOp(in decode.Inst, pc, cost uint32, prof *timing.Profile, ext isa.ExtSet,
	pend, pendCyc uint64) (sbOp, bool) {
	if !in.Valid() || !in.Op.In(ext) {
		return sbOp{}, false
	}
	op := sbOp{
		pc:  pc + uint32(in.Size),
		n:   uint16(pend),
		aux: uint32(pendCyc),
		rd:  uint8(in.Rd),
		rs1: uint8(in.Rs1),
		rs2: uint8(in.Rs2),
	}
	switch in.Op {
	case isa.OpJAL, isa.OpCJAL, isa.OpCJ:
		target := pc + uint32(in.Imm)
		if target&1 != 0 {
			return sbOp{}, false // misaligned target: trap via execOne
		}
		op.kind = sbJal
		op.imm = target
		op.aux += cost + jumpPen(prof)
		return op, true
	case isa.OpJALR, isa.OpCJR, isa.OpCJALR:
		op.kind = sbJalr
		op.imm = uint32(in.Imm)
		op.aux += cost + jumpPen(prof)
		return op, true
	case isa.OpBEQ, isa.OpCBEQZ, isa.OpBNE, isa.OpCBNEZ,
		isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		target := pc + uint32(in.Imm)
		if target&1 != 0 {
			return sbOp{}, false // misaligned taken-target: trap via execOne
		}
		op.imm = target
		op.aux += cost
		op.pen = uint16(branchPen(prof))
		switch in.Op {
		case isa.OpBEQ, isa.OpCBEQZ:
			op.kind = sbBeq
		case isa.OpBNE, isa.OpCBNEZ:
			op.kind = sbBne
		case isa.OpBLT:
			op.kind = sbBlt
		case isa.OpBGE:
			op.kind = sbBge
		case isa.OpBLTU:
			op.kind = sbBltu
		default: // OpBGEU
			op.kind = sbBgeu
		}
		return op, true
	}
	return sbOp{}, false
}

// memOp builds the deferred load/store micro-op (unit profile only: the
// caller gates on deferLS). The op carries a snapshot of the pending
// deferral before itself so the slow path can flush exactly; stores
// keep the value register in rs2 and reuse rd for the instruction size
// (the slow path's PC step).
func memOp(in decode.Inst, pc uint32, ext isa.ExtSet, pend, pendCyc uint64) (sbOp, bool) {
	if !in.Valid() || !in.Op.In(ext) {
		return sbOp{}, false
	}
	op := sbOp{
		imm: uint32(in.Imm),
		pc:  pc,
		n:   uint16(pend),
		aux: uint32(pendCyc),
		rd:  uint8(in.Rd),
		rs1: uint8(in.Rs1),
		rs2: uint8(in.Rs2),
	}
	switch in.Op {
	case isa.OpLW, isa.OpCLW, isa.OpCLWSP:
		op.kind = sbLw
	case isa.OpLH:
		op.kind = sbLh
	case isa.OpLHU:
		op.kind = sbLhu
	case isa.OpLB:
		op.kind = sbLb
	case isa.OpLBU:
		op.kind = sbLbu
	case isa.OpSW, isa.OpCSW, isa.OpCSWSP:
		op.kind = sbSw
		op.rd = uint8(in.Size)
	case isa.OpSH:
		op.kind = sbSh
		op.rd = uint8(in.Size)
	case isa.OpSB:
		op.kind = sbSb
		op.rd = uint8(in.Size)
	default:
		return sbOp{}, false
	}
	return op, true
}
