package emu

import (
	"math/bits"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/plugin"
	"repro/internal/timing"
)

// memLoad performs a data load with plugin dispatch; ok=false means a
// trap was taken.
func (m *Machine) memLoad(pc, addr uint32, size uint8) (uint32, bool) {
	v, f := m.Bus.Load(addr, size)
	if f != nil {
		m.trap(f.Cause, f.Addr, pc)
		return 0, false
	}
	if m.Hooks.HasMemHooks() {
		m.Hooks.MemAccess(plugin.MemEvent{PC: pc, Addr: addr, Value: v, Size: size})
	}
	return v, true
}

// memStore performs a data store with plugin dispatch and code-cache
// invalidation; ok=false means a trap was taken. invalidated reports
// whether the store invalidated the currently executing block, so the
// execution loops abandon its remaining (now stale) instructions.
// Invalidation is range-based: only blocks overlapping the written
// bytes are dropped, and the modelled I-cache is kept (only fence.i
// flushes it), so stores near code no longer flush the whole cache.
func (m *Machine) memStore(pc, addr uint32, size uint8, val uint32) (ok, invalidated bool) {
	if f := m.Bus.Store(addr, size, val); f != nil {
		m.trap(f.Cause, f.Addr, pc)
		return false, false
	}
	if m.Hooks.HasMemHooks() {
		m.Hooks.MemAccess(plugin.MemEvent{PC: pc, Addr: addr, Value: val, Size: size, Store: true})
	}
	if uint64(addr-m.ramBase) < uint64(len(m.ram)) {
		m.noteRAMStore(addr, size)
	}
	if addr < m.codeHi && addr+uint32(size) > m.codeLo {
		return true, m.invalidateRange(addr, addr+uint32(size))
	}
	return true, false
}

// execOne executes one instruction, updating PC, counters and cycles.
// It returns true when control flow diverted from straight-line execution
// (branch taken, jump, trap, serialization) so the block loop can exit.
func (m *Machine) execOne(in decode.Inst) (diverted bool) {
	h := &m.Hart
	pc := h.PC
	if !in.Valid() || !in.Op.In(m.ISA) || !m.subsetAllows(in.Op) {
		m.trap(isa.ExcIllegalInst, in.Raw, pc)
		return true
	}

	rs1v := h.Reg(in.Rs1)
	rs2v := h.Reg(in.Rs2)

	cost := uint32(1)
	if m.Profile != nil {
		cost = m.Profile.DynamicCost(in, rs1v, rs2v)
		if m.lastLoad != 0 {
			r1, r2 := timing.ReadsIntRegs(in)
			if r1 == m.lastLoad || r2 == m.lastLoad {
				cost += m.Profile.LoadUseStall
			}
		}
		if m.Profile.HasICache() {
			cost += m.icacheFetch(pc, in.Size)
		}
	}
	m.lastLoad = 0

	next := pc + uint32(in.Size)
	target := next
	taken := false // conditional branch taken

	switch in.Op {
	case isa.OpLUI, isa.OpCLUI:
		h.SetReg(in.Rd, uint32(in.Imm))
	case isa.OpAUIPC:
		h.SetReg(in.Rd, pc+uint32(in.Imm))
	case isa.OpJAL, isa.OpCJAL, isa.OpCJ:
		target = pc + uint32(in.Imm)
		h.SetReg(in.Rd, next)
		diverted = true
	case isa.OpJALR, isa.OpCJR, isa.OpCJALR:
		target = (rs1v + uint32(in.Imm)) &^ 1
		h.SetReg(in.Rd, next)
		diverted = true
	case isa.OpBEQ, isa.OpCBEQZ:
		taken = rs1v == rs2v
	case isa.OpBNE, isa.OpCBNEZ:
		taken = rs1v != rs2v
	case isa.OpBLT:
		taken = int32(rs1v) < int32(rs2v)
	case isa.OpBGE:
		taken = int32(rs1v) >= int32(rs2v)
	case isa.OpBLTU:
		taken = rs1v < rs2v
	case isa.OpBGEU:
		taken = rs1v >= rs2v

	case isa.OpLB:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 1)
		if !ok {
			return true
		}
		h.SetReg(in.Rd, uint32(int32(v)<<24>>24))
		m.lastLoad = in.Rd
	case isa.OpLH:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 2)
		if !ok {
			return true
		}
		h.SetReg(in.Rd, uint32(int32(v)<<16>>16))
		m.lastLoad = in.Rd
	case isa.OpLW, isa.OpCLW, isa.OpCLWSP:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 4)
		if !ok {
			return true
		}
		h.SetReg(in.Rd, v)
		m.lastLoad = in.Rd
	case isa.OpLBU:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 1)
		if !ok {
			return true
		}
		h.SetReg(in.Rd, v)
		m.lastLoad = in.Rd
	case isa.OpLHU:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 2)
		if !ok {
			return true
		}
		h.SetReg(in.Rd, v)
		m.lastLoad = in.Rd

	case isa.OpSB:
		ok, inval := m.memStore(pc, rs1v+uint32(in.Imm), 1, rs2v)
		if !ok {
			return true
		}
		diverted = diverted || inval
	case isa.OpSH:
		ok, inval := m.memStore(pc, rs1v+uint32(in.Imm), 2, rs2v)
		if !ok {
			return true
		}
		diverted = diverted || inval
	case isa.OpSW, isa.OpCSW, isa.OpCSWSP:
		ok, inval := m.memStore(pc, rs1v+uint32(in.Imm), 4, rs2v)
		if !ok {
			return true
		}
		diverted = diverted || inval

	case isa.OpADDI, isa.OpCADDI, isa.OpCADDI16SP, isa.OpCADDI4SPN, isa.OpCLI, isa.OpCNOP:
		h.SetReg(in.Rd, rs1v+uint32(in.Imm))
	case isa.OpSLTI:
		h.SetReg(in.Rd, b2u(int32(rs1v) < in.Imm))
	case isa.OpSLTIU:
		h.SetReg(in.Rd, b2u(rs1v < uint32(in.Imm)))
	case isa.OpXORI:
		h.SetReg(in.Rd, rs1v^uint32(in.Imm))
	case isa.OpORI:
		h.SetReg(in.Rd, rs1v|uint32(in.Imm))
	case isa.OpANDI, isa.OpCANDI:
		h.SetReg(in.Rd, rs1v&uint32(in.Imm))
	case isa.OpSLLI, isa.OpCSLLI:
		h.SetReg(in.Rd, rs1v<<uint32(in.Imm))
	case isa.OpSRLI, isa.OpCSRLI:
		h.SetReg(in.Rd, rs1v>>uint32(in.Imm))
	case isa.OpSRAI, isa.OpCSRAI:
		h.SetReg(in.Rd, uint32(int32(rs1v)>>uint32(in.Imm)))

	case isa.OpADD, isa.OpCADD:
		h.SetReg(in.Rd, rs1v+rs2v)
	case isa.OpCMV:
		h.SetReg(in.Rd, rs2v)
	case isa.OpSUB, isa.OpCSUB:
		h.SetReg(in.Rd, rs1v-rs2v)
	case isa.OpSLL:
		h.SetReg(in.Rd, rs1v<<(rs2v&31))
	case isa.OpSLT:
		h.SetReg(in.Rd, b2u(int32(rs1v) < int32(rs2v)))
	case isa.OpSLTU:
		h.SetReg(in.Rd, b2u(rs1v < rs2v))
	case isa.OpXOR, isa.OpCXOR:
		h.SetReg(in.Rd, rs1v^rs2v)
	case isa.OpSRL:
		h.SetReg(in.Rd, rs1v>>(rs2v&31))
	case isa.OpSRA:
		h.SetReg(in.Rd, uint32(int32(rs1v)>>(rs2v&31)))
	case isa.OpOR, isa.OpCOR:
		h.SetReg(in.Rd, rs1v|rs2v)
	case isa.OpAND, isa.OpCAND:
		h.SetReg(in.Rd, rs1v&rs2v)

	case isa.OpFENCE, isa.OpWFI:
		// Memory is sequentially consistent here; wfi is a legal no-op hint.
	case isa.OpFENCEI:
		m.InvalidateTBs()
		diverted = true
	case isa.OpECALL:
		m.trap(isa.ExcEcallM, 0, pc)
		return true
	case isa.OpEBREAK, isa.OpCEBREAK:
		if m.HaltOnEbreak {
			m.stop = &StopInfo{Reason: StopEbreak, PC: pc}
			return true
		}
		m.trap(isa.ExcBreakpoint, pc, pc)
		return true
	case isa.OpMRET:
		h.MRet()
		target = h.PC
		diverted = true

	case isa.OpCSRRW, isa.OpCSRRS, isa.OpCSRRC, isa.OpCSRRWI, isa.OpCSRRSI, isa.OpCSRRCI:
		if !m.execCSR(in, pc, rs1v) {
			return true
		}

	case isa.OpMUL:
		h.SetReg(in.Rd, rs1v*rs2v)
	case isa.OpMULH:
		h.SetReg(in.Rd, uint32(uint64(int64(int32(rs1v))*int64(int32(rs2v)))>>32))
	case isa.OpMULHSU:
		h.SetReg(in.Rd, uint32(uint64(int64(int32(rs1v))*int64(rs2v))>>32))
	case isa.OpMULHU:
		h.SetReg(in.Rd, uint32(uint64(rs1v)*uint64(rs2v)>>32))
	case isa.OpDIV:
		switch {
		case rs2v == 0:
			h.SetReg(in.Rd, 0xffffffff)
		case rs1v == 0x80000000 && rs2v == 0xffffffff:
			h.SetReg(in.Rd, 0x80000000) // overflow
		default:
			h.SetReg(in.Rd, uint32(int32(rs1v)/int32(rs2v)))
		}
	case isa.OpDIVU:
		if rs2v == 0 {
			h.SetReg(in.Rd, 0xffffffff)
		} else {
			h.SetReg(in.Rd, rs1v/rs2v)
		}
	case isa.OpREM:
		switch {
		case rs2v == 0:
			h.SetReg(in.Rd, rs1v)
		case rs1v == 0x80000000 && rs2v == 0xffffffff:
			h.SetReg(in.Rd, 0)
		default:
			h.SetReg(in.Rd, uint32(int32(rs1v)%int32(rs2v)))
		}
	case isa.OpREMU:
		if rs2v == 0 {
			h.SetReg(in.Rd, rs1v)
		} else {
			h.SetReg(in.Rd, rs1v%rs2v)
		}

	// Xbmi.
	case isa.OpANDN:
		h.SetReg(in.Rd, rs1v&^rs2v)
	case isa.OpORN:
		h.SetReg(in.Rd, rs1v|^rs2v)
	case isa.OpXNOR:
		h.SetReg(in.Rd, ^(rs1v ^ rs2v))
	case isa.OpCLZ:
		h.SetReg(in.Rd, uint32(bits.LeadingZeros32(rs1v)))
	case isa.OpCTZ:
		h.SetReg(in.Rd, uint32(bits.TrailingZeros32(rs1v)))
	case isa.OpCPOP:
		h.SetReg(in.Rd, uint32(bits.OnesCount32(rs1v)))
	case isa.OpSEXTB:
		h.SetReg(in.Rd, uint32(int32(rs1v)<<24>>24))
	case isa.OpSEXTH:
		h.SetReg(in.Rd, uint32(int32(rs1v)<<16>>16))
	case isa.OpZEXTH:
		h.SetReg(in.Rd, rs1v&0xffff)
	case isa.OpMIN:
		h.SetReg(in.Rd, minS(rs1v, rs2v))
	case isa.OpMAX:
		h.SetReg(in.Rd, maxS(rs1v, rs2v))
	case isa.OpMINU:
		h.SetReg(in.Rd, min(rs1v, rs2v))
	case isa.OpMAXU:
		h.SetReg(in.Rd, max(rs1v, rs2v))
	case isa.OpROL:
		h.SetReg(in.Rd, bits.RotateLeft32(rs1v, int(rs2v&31)))
	case isa.OpROR:
		h.SetReg(in.Rd, bits.RotateLeft32(rs1v, -int(rs2v&31)))
	case isa.OpRORI:
		h.SetReg(in.Rd, bits.RotateLeft32(rs1v, -int(in.Imm)))
	case isa.OpREV8:
		h.SetReg(in.Rd, bits.ReverseBytes32(rs1v))
	case isa.OpORCB:
		h.SetReg(in.Rd, orcb(rs1v))
	case isa.OpBSET:
		h.SetReg(in.Rd, rs1v|1<<(rs2v&31))
	case isa.OpBCLR:
		h.SetReg(in.Rd, rs1v&^(1<<(rs2v&31)))
	case isa.OpBINV:
		h.SetReg(in.Rd, rs1v^1<<(rs2v&31))
	case isa.OpBEXT:
		h.SetReg(in.Rd, rs1v>>(rs2v&31)&1)
	case isa.OpBSETI:
		h.SetReg(in.Rd, rs1v|1<<uint32(in.Imm))
	case isa.OpBCLRI:
		h.SetReg(in.Rd, rs1v&^(1<<uint32(in.Imm)))
	case isa.OpBINVI:
		h.SetReg(in.Rd, rs1v^1<<uint32(in.Imm))
	case isa.OpBEXTI:
		h.SetReg(in.Rd, rs1v>>uint32(in.Imm)&1)

	default:
		if in.Op.Extension() == isa.ExtF {
			if !m.execFP(in, pc, rs1v) {
				return true
			}
		} else {
			m.trap(isa.ExcIllegalInst, in.Raw, pc)
			return true
		}
	}

	if taken {
		target = pc + uint32(in.Imm)
		diverted = true
	}
	if diverted && in.Op.IsControlFlow() && target&1 != 0 {
		m.trap(isa.ExcInstAddrMisaligned, target, pc)
		return true
	}
	if m.Profile != nil {
		cost += m.Profile.TransferPenalty(in.Op, taken)
	}
	h.Instret++
	h.Cycle += uint64(cost)
	h.PC = target
	return diverted
}

// execCSR executes the Zicsr instructions; returns false if it trapped.
func (m *Machine) execCSR(in decode.Inst, pc, rs1v uint32) bool {
	h := &m.Hart
	src := rs1v
	if in.Op == isa.OpCSRRWI || in.Op == isa.OpCSRRSI || in.Op == isa.OpCSRRCI {
		src = uint32(in.Imm)
	}
	// csrrw with rd=x0 must not read (avoids read side effects); csrrs/c
	// with rs1=x0 must not write.
	writeOnly := (in.Op == isa.OpCSRRW || in.Op == isa.OpCSRRWI) && in.Rd == 0
	readOnly := in.Rs1 == 0 && (in.Op == isa.OpCSRRS || in.Op == isa.OpCSRRC)
	if in.Op == isa.OpCSRRSI || in.Op == isa.OpCSRRCI {
		readOnly = in.Imm == 0
	}

	var old uint32
	if !writeOnly {
		v, err := h.ReadCSR(in.CSR)
		if err != nil {
			m.trap(isa.ExcIllegalInst, in.Raw, pc)
			return false
		}
		old = v
	}
	if !readOnly {
		var newv uint32
		switch in.Op {
		case isa.OpCSRRW, isa.OpCSRRWI:
			newv = src
		case isa.OpCSRRS, isa.OpCSRRSI:
			newv = old | src
		case isa.OpCSRRC, isa.OpCSRRCI:
			newv = old &^ src
		}
		if err := h.WriteCSR(in.CSR, newv); err != nil {
			m.trap(isa.ExcIllegalInst, in.Raw, pc)
			return false
		}
	}
	h.SetReg(in.Rd, old)
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func minS(a, b uint32) uint32 {
	if int32(a) < int32(b) {
		return a
	}
	return b
}

func maxS(a, b uint32) uint32 {
	if int32(a) > int32(b) {
		return a
	}
	return b
}

// orcb sets each byte to 0xff if it has any bit set.
func orcb(v uint32) uint32 {
	var out uint32
	for i := 0; i < 4; i++ {
		if v>>(8*i)&0xff != 0 {
			out |= 0xff << (8 * i)
		}
	}
	return out
}
