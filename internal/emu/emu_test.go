package emu_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/plugin"
	"repro/internal/timing"
	"repro/internal/vp"
)

// run assembles and executes src on a fresh platform, returning it.
func run(t *testing.T, src string) (*vp.Platform, emu.StopInfo) {
	t.Helper()
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + src); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(1_000_000)
	return p, stop
}

// runExpectEbreak runs src and fails the test unless it stops at ebreak.
func runExpectEbreak(t *testing.T, src string) *vp.Platform {
	t.Helper()
	p, stop := run(t, src)
	if stop.Reason != emu.StopEbreak {
		t.Fatalf("stopped with %v, want ebreak; uart=%q", stop, p.Output())
	}
	return p
}

func reg(p *vp.Platform, r isa.Reg) uint32 { return p.Machine.Hart.Reg(r) }

func TestArithmeticBasics(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 20
		li a1, 22
		add a2, a0, a1
		sub a3, a0, a1
		li a4, -7
		mul a5, a0, a4
		div a6, a4, a0
		rem a7, a4, a0
		ebreak
	`)
	if reg(p, isa.A2) != 42 {
		t.Errorf("add: %d", reg(p, isa.A2))
	}
	if int32(reg(p, isa.A3)) != -2 {
		t.Errorf("sub: %d", int32(reg(p, isa.A3)))
	}
	if int32(reg(p, isa.A5)) != -140 {
		t.Errorf("mul: %d", int32(reg(p, isa.A5)))
	}
	if int32(reg(p, isa.A6)) != 0 {
		t.Errorf("div: %d", int32(reg(p, isa.A6)))
	}
	if int32(reg(p, isa.A7)) != -7 {
		t.Errorf("rem: %d", int32(reg(p, isa.A7)))
	}
}

func TestDivisionSpecialCases(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 5
		li a1, 0
		div a2, a0, a1      # /0 -> -1
		divu a3, a0, a1     # /0 -> 0xffffffff
		rem a4, a0, a1      # %0 -> a0
		li a5, 0x80000000
		li a6, -1
		div a7, a5, a6      # overflow -> 0x80000000
		rem t0, a5, a6      # overflow -> 0
		ebreak
	`)
	if reg(p, isa.A2) != 0xffffffff || reg(p, isa.A3) != 0xffffffff {
		t.Error("divide by zero results wrong")
	}
	if reg(p, isa.A4) != 5 {
		t.Error("rem by zero should return dividend")
	}
	if reg(p, isa.A7) != 0x80000000 || reg(p, isa.T0) != 0 {
		t.Error("signed overflow division wrong")
	}
}

func TestMulhVariants(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 0x80000000
		li a1, 2
		mulh a2, a0, a1     # -2^31 * 2 -> hi = -1
		mulhu a3, a0, a1    # 2^31 * 2 -> hi = 1
		mulhsu a4, a0, a1   # signed * unsigned
		ebreak
	`)
	if reg(p, isa.A2) != 0xffffffff {
		t.Errorf("mulh: 0x%x", reg(p, isa.A2))
	}
	if reg(p, isa.A3) != 1 {
		t.Errorf("mulhu: 0x%x", reg(p, isa.A3))
	}
	if reg(p, isa.A4) != 0xffffffff {
		t.Errorf("mulhsu: 0x%x", reg(p, isa.A4))
	}
}

func TestShiftsAndCompares(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, -8
		srai a1, a0, 2      # -2
		srli a2, a0, 28     # 0xf
		li a3, 3
		sll a4, a3, a3      # 24
		slt a5, a0, a3      # 1 (signed)
		sltu a6, a0, a3     # 0 (unsigned: big)
		slti a7, a0, 0      # 1
		sltiu t0, a3, 10    # 1
		ebreak
	`)
	if int32(reg(p, isa.A1)) != -2 || reg(p, isa.A2) != 0xf || reg(p, isa.A4) != 24 {
		t.Error("shift results wrong")
	}
	if reg(p, isa.A5) != 1 || reg(p, isa.A6) != 0 || reg(p, isa.A7) != 1 || reg(p, isa.T0) != 1 {
		t.Error("compare results wrong")
	}
}

func TestMemoryAccessSizes(t *testing.T) {
	p := runExpectEbreak(t, `
		la a0, buf
		li a1, 0x81828384
		sw a1, 0(a0)
		lb a2, 0(a0)        # sign-extended 0x84
		lbu a3, 0(a0)
		lh a4, 0(a0)        # sign-extended 0x8384
		lhu a5, 2(a0)       # 0x8182
		sb a1, 4(a0)
		lbu a6, 4(a0)
		sh a1, 6(a0)
		lhu a7, 6(a0)
		ebreak
buf:	.space 16
	`)
	if reg(p, isa.A2) != 0xffffff84 || reg(p, isa.A3) != 0x84 {
		t.Errorf("byte loads: 0x%x 0x%x", reg(p, isa.A2), reg(p, isa.A3))
	}
	if reg(p, isa.A4) != 0xffff8384 || reg(p, isa.A5) != 0x8182 {
		t.Errorf("half loads: 0x%x 0x%x", reg(p, isa.A4), reg(p, isa.A5))
	}
	if reg(p, isa.A6) != 0x84 || reg(p, isa.A7) != 0x8384 {
		t.Errorf("narrow stores: 0x%x 0x%x", reg(p, isa.A6), reg(p, isa.A7))
	}
}

func TestLoopAndBranches(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 0
		li a1, 10
1:		addi a0, a0, 3
		addi a1, a1, -1
		bnez a1, 1b
		ebreak
	`)
	if reg(p, isa.A0) != 30 {
		t.Errorf("loop sum = %d", reg(p, isa.A0))
	}
}

func TestFunctionCall(t *testing.T) {
	p := runExpectEbreak(t, `
_start:
		li a0, 5
		call square
		mv s0, a0
		li a0, 7
		call square
		add s0, s0, a0
		ebreak
square:
		mul a0, a0, a0
		ret
	`)
	if reg(p, isa.S0) != 74 {
		t.Errorf("5^2+7^2 = %d", reg(p, isa.S0))
	}
}

func TestUARTHello(t *testing.T) {
	p := runExpectEbreak(t, `
		la a0, msg
		li a1, UART_TX
1:		lbu a2, 0(a0)
		beqz a2, 2f
		sw a2, 0(a1)
		addi a0, a0, 1
		j 1b
2:		ebreak
msg:	.asciz "hello, edge\n"
	`)
	if p.Output() != "hello, edge\n" {
		t.Errorf("uart: %q", p.Output())
	}
}

func TestSysConExit(t *testing.T) {
	_, stop := run(t, `
		li a0, 7
		li a1, SYSCON_EXIT
		sw a0, 0(a1)
		ebreak              # never reached
	`)
	if stop.Reason != emu.StopExit || stop.Code != 7 {
		t.Errorf("stop = %v", stop)
	}
}

func TestIllegalInstructionTrapsToStop(t *testing.T) {
	_, stop := run(t, `
		.word 0xffffffff
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("stop = %v", stop)
	}
}

func TestTrapHandlerEcall(t *testing.T) {
	p := runExpectEbreak(t, `
		la t0, handler
		csrw mtvec, t0
		li s0, 0
		ecall               # handler sets s0 and skips
		addi s0, s0, 100
		ebreak
handler:
		csrr t1, mcause
		li s0, 1
		csrr t2, mepc
		addi t2, t2, 4
		csrw mepc, t2
		mret
	`)
	if reg(p, isa.S0) != 101 {
		t.Errorf("s0 = %d", reg(p, isa.S0))
	}
	if reg(p, isa.T1) != isa.ExcEcallM {
		t.Errorf("mcause in handler = %d", reg(p, isa.T1))
	}
}

func TestMisalignedLoadTrap(t *testing.T) {
	_, stop := run(t, `
		li a0, 0x80000001
		lw a1, 0(a0)
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcLoadAddrMisaligned {
		t.Errorf("stop = %v", stop)
	}
	if stop.Tval != 0x80000001 {
		t.Errorf("tval = 0x%x", stop.Tval)
	}
}

func TestTimerInterrupt(t *testing.T) {
	p := runExpectEbreak(t, `
		la t0, handler
		csrw mtvec, t0
		# mtimecmp = mtime + 100
		li t1, CLINT_MTIME
		lw t2, 0(t1)
		addi t2, t2, 100
		li t1, CLINT_MTIMECMP
		sw t2, 0(t1)
		sw zero, 4(t1)      # mtimecmph = 0
		# enable timer interrupt
		li t3, 128          # MTIE
		csrw mie, t3
		csrsi mstatus, 8    # MIE
		li s0, 0
1:		beqz s0, 1b         # spin until the handler fires
		ebreak
handler:
		li s0, 1
		# disable further timer interrupts
		csrw mie, zero
		mret
	`)
	if reg(p, isa.S0) != 1 {
		t.Error("timer interrupt never delivered")
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	p := runExpectEbreak(t, `
		la t0, handler
		csrw mtvec, t0
		li t1, 8            # MSIE
		csrw mie, t1
		li s0, 0
		li t2, CLINT_MSIP
		li t3, 1
		sw t3, 0(t2)        # raise msip; interrupts still masked
		csrsi mstatus, 8    # MIE on -> delivery
		nop
		nop
		bnez s0, 1f
		ebreak              # failure path: not delivered
1:		ebreak
handler:
		li s0, 1
		li t2, CLINT_MSIP
		sw zero, 0(t2)      # ack
		mret
	`)
	if reg(p, isa.S0) != 1 {
		t.Error("software interrupt not delivered")
	}
	if p.Machine.Hart.Mcause != uint32(isa.IntMachineSoftware)|1<<31 {
		t.Errorf("mcause = 0x%x", p.Machine.Hart.Mcause)
	}
}

func TestCycleAndInstretCounters(t *testing.T) {
	p := runExpectEbreak(t, `
		rdcycle s0
		rdinstret s1
		nop
		nop
		nop
		rdcycle s2
		rdinstret s3
		ebreak
	`)
	dcyc := reg(p, isa.S2) - reg(p, isa.S0)
	dins := reg(p, isa.S3) - reg(p, isa.S1)
	// Each rdinstret observes the count of instructions retired before
	// itself, so the delta covers rdinstret s1, three nops and rdcycle.
	if dins != 5 {
		t.Errorf("instret delta = %d, want 5", dins)
	}
	if dcyc < dins {
		t.Errorf("cycle delta %d < instret delta %d", dcyc, dins)
	}
}

func TestBMIExecution(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 0xf0f01234
		cpop a1, a0
		clz a2, a0
		ctz a3, a0
		rev8 a4, a0
		li t0, 0x0000ff00
		orc.b a5, t0
		li t1, 0xdead
		li t2, 0xbeef
		andn a6, t1, t2
		min a7, t1, t2
		maxu s0, t1, t2
		li s1, 5
		bset s2, zero, s1
		rori s3, a0, 4
		ebreak
	`)
	if reg(p, isa.A1) != 13 {
		t.Errorf("cpop: %d", reg(p, isa.A1))
	}
	if reg(p, isa.A2) != 0 || reg(p, isa.A3) != 2 {
		t.Errorf("clz/ctz: %d %d", reg(p, isa.A2), reg(p, isa.A3))
	}
	if reg(p, isa.A4) != 0x3412f0f0 {
		t.Errorf("rev8: 0x%x", reg(p, isa.A4))
	}
	if reg(p, isa.A5) != 0x0000ff00 {
		t.Errorf("orc.b: 0x%x", reg(p, isa.A5))
	}
	if reg(p, isa.A6) != 0xdead&^0xbeef {
		t.Errorf("andn: 0x%x", reg(p, isa.A6))
	}
	if reg(p, isa.A7) != 0xbeef || reg(p, isa.S0) != 0xdead {
		t.Errorf("min/maxu: 0x%x 0x%x", reg(p, isa.A7), reg(p, isa.S0))
	}
	if reg(p, isa.S2) != 32 {
		t.Errorf("bset: %d", reg(p, isa.S2))
	}
	if reg(p, isa.S3) != 0x4f0f0123 {
		t.Errorf("rori: 0x%x", reg(p, isa.S3))
	}
}

func TestISARestriction(t *testing.T) {
	p, err := vp.New(vp.Config{ISA: isa.RV32IM})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource("cpop a0, a0\nebreak\n"); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(100)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("cpop on RV32IM should trap illegal, got %v", stop)
	}
}

func TestCompressedExecution(t *testing.T) {
	p := runExpectEbreak(t, `
		c.li a0, 10
		c.addi a0, 5
		c.mv a1, a0
		c.add a1, a0
		li a2, 0
1:		c.addi a2, 1
		c.addi a0, -1
		c.bnez a0, 1b
		c.ebreak
	`)
	if reg(p, isa.A1) != 30 {
		t.Errorf("c.add: %d", reg(p, isa.A1))
	}
	if reg(p, isa.A2) != 15 {
		t.Errorf("compressed loop count: %d", reg(p, isa.A2))
	}
}

func TestFloatingPoint(t *testing.T) {
	p := runExpectEbreak(t, `
		la a0, vals
		flw fa0, 0(a0)      # 1.5
		flw fa1, 4(a0)      # 2.5
		fadd.s fa2, fa0, fa1
		fmul.s fa3, fa0, fa1
		fcvt.w.s a1, fa2    # 4
		fcvt.w.s a2, fa3    # 3 (3.75 truncated)
		flt.s a3, fa0, fa1  # 1
		li a4, 100
		fcvt.s.w fa4, a4
		fcvt.w.s a5, fa4    # 100
		fdiv.s fa5, fa1, fa0
		fsqrt.s fa6, fa1
		fmadd.s fa7, fa0, fa1, fa2  # 1.5*2.5+4 = 7.75
		fcvt.w.s a6, fa7    # 7
		ebreak
vals:	.word 0x3fc00000, 0x40200000
	`)
	if reg(p, isa.A1) != 4 || reg(p, isa.A2) != 3 {
		t.Errorf("fp add/mul: %d %d", reg(p, isa.A1), reg(p, isa.A2))
	}
	if reg(p, isa.A3) != 1 || reg(p, isa.A5) != 100 {
		t.Errorf("fp cmp/cvt: %d %d", reg(p, isa.A3), reg(p, isa.A5))
	}
	if reg(p, isa.A6) != 7 {
		t.Errorf("fmadd: %d", reg(p, isa.A6))
	}
}

func TestFclassAndNaN(t *testing.T) {
	p := runExpectEbreak(t, `
		li a0, 0x7fc00000   # quiet NaN
		fmv.w.x fa0, a0
		fclass.s a1, fa0
		li a2, 0xff800000   # -inf
		fmv.w.x fa1, a2
		fclass.s a3, fa1
		fadd.s fa2, fa0, fa1  # NaN + -inf = canonical NaN
		fmv.x.w a4, fa2
		feq.s a5, fa0, fa0    # NaN != NaN per IEEE -> 0
		ebreak
	`)
	if reg(p, isa.A1) != 1<<9 {
		t.Errorf("fclass(qNaN) = 0x%x", reg(p, isa.A1))
	}
	if reg(p, isa.A3) != 1<<0 {
		t.Errorf("fclass(-inf) = 0x%x", reg(p, isa.A3))
	}
	if reg(p, isa.A4) != 0x7fc00000 {
		t.Errorf("NaN not canonicalized: 0x%x", reg(p, isa.A4))
	}
	if reg(p, isa.A5) != 0 {
		t.Error("feq(NaN,NaN) must be 0")
	}
}

func TestSelfModifyingCodeInvalidatesTB(t *testing.T) {
	// The program overwrites the instruction at 'patch' (addi s0, s0, 1)
	// with addi s0, s0, 64, then loops over it again.
	p := runExpectEbreak(t, `
		li s0, 0
		li s1, 2            # two passes
loop:
patch:	addi s0, s0, 1
		addi s1, s1, -1
		beqz s1, done
		# patch the instruction: addi s0, s0, 64
		la t0, patch
		la t1, newinsn
		lw t2, 0(t1)
		sw t2, 0(t0)
		j loop
done:	ebreak
newinsn:
		addi s0, s0, 64
	`)
	if reg(p, isa.S0) != 65 {
		t.Errorf("self-modifying result = %d, want 65 (1 then 64)", reg(p, isa.S0))
	}
}

func TestBudgetStopAndResume(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource("1: j 1b\n"); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(100)
	if stop.Reason != emu.StopBudget {
		t.Fatalf("stop = %v", stop)
	}
	before := p.Machine.Hart.Instret
	stop = p.Run(50) // resumable
	if stop.Reason != emu.StopBudget {
		t.Fatalf("resume stop = %v", stop)
	}
	if p.Machine.Hart.Instret <= before {
		t.Error("no progress after resume")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
		li a0, 0
		li a1, 1000
1:		add a0, a0, a1
		addi a1, a1, -3
		bgtz a1, 1b
		ebreak
	`
	type result struct {
		a0      uint32
		cycles  uint64
		instret uint64
	}
	runOnce := func(withPlugin bool) result {
		p, err := vp.New(vp.Config{Profile: timing.EdgeSmall()})
		if err != nil {
			t.Fatal(err)
		}
		if withPlugin {
			if err := p.Machine.Hooks.Register(&plugin.Count{}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		if stop := p.Run(10_000_000); stop.Reason != emu.StopEbreak {
			t.Fatalf("stop = %v", stop)
		}
		return result{p.Machine.Hart.Reg(isa.A0), p.Machine.Hart.Cycle, p.Machine.Hart.Instret}
	}
	r1, r2, r3 := runOnce(false), runOnce(false), runOnce(true)
	if r1 != r2 {
		t.Errorf("two plain runs differ: %+v %+v", r1, r2)
	}
	if r1 != r3 {
		t.Errorf("plugin perturbs architectural state: %+v %+v", r1, r3)
	}
}

func TestPluginObservations(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := &plugin.Count{}
	if err := p.Machine.Hooks.Register(c); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(`
		la a0, buf
		lw a1, 0(a0)
		sw a1, 4(a0)
		sw a1, 8(a0)
		ebreak
buf:	.word 42
	`); err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("stop = %v", stop)
	}
	if c.Loads != 1 || c.Stores != 2 {
		t.Errorf("mem events: %d loads %d stores", c.Loads, c.Stores)
	}
	// la expands to 2 insns; total = 2+1+2+1(ebreak is observed too) = wait:
	// ebreak is dispatched to hooks before stopping, so 6 insns.
	if c.Insns != 6 {
		t.Errorf("insn events: %d, want 6", c.Insns)
	}
	if c.Blocks == 0 {
		t.Error("no block events")
	}
}

func TestTimingProfileAffectsCycles(t *testing.T) {
	// The multiplier operand is full width so edge-small's early-out
	// multiplier runs at its worst case and stays slower than edge-fast.
	src := `
		li a0, 1000
		li a1, 0x70000000
		li a3, 3
1:		mul a2, a3, a1
		addi a0, a0, -1
		bnez a0, 1b
		ebreak
	`
	cycles := func(prof *timing.Profile) uint64 {
		p, err := vp.New(vp.Config{Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		if stop := p.Run(10_000_000); stop.Reason != emu.StopEbreak {
			t.Fatalf("stop = %v", stop)
		}
		return p.Machine.Hart.Cycle
	}
	small, fast, unit := cycles(timing.EdgeSmall()), cycles(timing.EdgeFast()), cycles(timing.Unit())
	if !(small > fast && fast > unit) {
		t.Errorf("cycle ordering: small=%d fast=%d unit=%d", small, fast, unit)
	}
}

func TestWFIIsANop(t *testing.T) {
	p := runExpectEbreak(t, `
		li s0, 1
		wfi
		li s0, 2
		ebreak
	`)
	if reg(p, isa.S0) != 2 {
		t.Error("wfi did not continue")
	}
}

func TestStepMatchesRun(t *testing.T) {
	src := vp.Prelude + `
		li a0, 3
		li a1, 4
		mul a2, a0, a1
		addi a2, a2, 30
		ebreak
	`
	p1, _ := vp.New(vp.Config{})
	p1.LoadSource(src)
	stop := p1.Run(100)
	p2, _ := vp.New(vp.Config{})
	p2.LoadSource(src)
	var stop2 *emu.StopInfo
	for i := 0; i < 100 && stop2 == nil; i++ {
		stop2 = p2.Machine.Step()
	}
	if stop2 == nil {
		t.Fatal("step run never stopped")
	}
	if stop.Reason != stop2.Reason || p1.Machine.Hart.Reg(isa.A2) != p2.Machine.Hart.Reg(isa.A2) {
		t.Errorf("step vs run divergence: %v/%v, a2 %d/%d",
			stop, *stop2, p1.Machine.Hart.Reg(isa.A2), p2.Machine.Hart.Reg(isa.A2))
	}
	if p1.Machine.Hart.Instret != p2.Machine.Hart.Instret {
		t.Errorf("instret: run=%d step=%d", p1.Machine.Hart.Instret, p2.Machine.Hart.Instret)
	}
}

func TestFenceIInvalidates(t *testing.T) {
	p := runExpectEbreak(t, `
		li s0, 0
		la t0, target
		la t1, newinsn
		lw t2, 0(t1)
		j go
go:
		sw t2, 0(t0)
		fence.i
target:	addi s0, s0, 1
		ebreak
newinsn:
		addi s0, s0, 42
	`)
	if reg(p, isa.S0) != 42 {
		t.Errorf("fence.i result = %d, want 42", reg(p, isa.S0))
	}
}

func TestCachedBlocksGrow(t *testing.T) {
	p, _ := vp.New(vp.Config{})
	p.LoadSource(`
		li a0, 3
1:		addi a0, a0, -1
		bnez a0, 1b
		ebreak
	`)
	p.Run(1000)
	if p.Machine.CachedBlocks() == 0 {
		t.Error("translation cache unused")
	}
}
