package emu

import (
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/timing"
)

// This file implements the shared translation pool: cross-machine reuse
// of compiled translated blocks. A fault campaign runs thousands of
// byte-identical mutants of one code image across N worker machines;
// without sharing, every worker compiles its own private copy of the
// same working set — pure duplicated warmup that grows linearly with the
// worker count. A TBPool freezes the compiled state of one machine
// (typically the golden run's) into an immutable, generation-tagged map
// of tbCode blocks that any number of machines can attach and adopt
// blocks from concurrently, read-only.
//
// Validity contract. A pooled block was compiled from the pool image:
// the RAM bytes the donor machine translated. An attached machine may
// adopt a block only while the bytes under it still equal that image.
// The machine's dirty-state tracking — the byte-precise store watermark
// box refined by the page-granular dirty bitmap — covers every RAM
// write since the last rewind to the pristine image: guest stores on
// all engine paths, plus host-side writes folded in via NoteRAMWrite /
// NoteRAMWriteRange and the bus write notification. Adoption asks
// DirtyOverlaps(block range): disjoint from the watermark box, or
// inside the box but touching no dirty page, certifies the bytes are
// untouched — so scattered data stores around a code region no longer
// force overlay compiles of blocks between them. Blocks whose range
// does overlap dirty pages take a private overlay compile instead
// (counted in EngineStats.OverlayCompiles); the pool itself is never
// invalidated by a code-mutating fault. A dirty-state reset
// (ResetStoreWatermark) must therefore coincide with RAM returning to
// the pristine image, which is exactly the contract
// vp.Platform.RestoreReuse already maintains.
//
// Adopted blocks are wrapped in a private tb (per-machine chain links)
// and inserted into the machine's private cache, so store-to-code
// invalidation, jump caching and block chaining treat them exactly like
// privately compiled blocks. Invalidate bumps the pool generation:
// machines stop adopting new blocks immediately (the generation check in
// the lookup path), while already-adopted blocks remain valid until the
// owning machine's own invalidation — they were certified against the
// image at adoption time and per-machine invalidation rules keep them
// sound from there.

// TBPool is a read-only pool of compiled translation blocks shared
// across machines. Build one with Machine.BuildTBPool after a warmup run
// and attach it to any machine executing the same code image with
// Machine.AttachTBPool. All methods are safe for concurrent use; the
// block map is immutable after construction.
type TBPool struct {
	gen    atomic.Uint64
	prof   *timing.Profile
	ext    isa.ExtSet
	sub    isa.OpSet
	blocks map[uint32]*tbCode
	lo, hi uint32 // address range covered by pooled blocks

	// traces is the frozen-superblock tier: compiled traces the donor
	// machine formed (superblock engine only), published read-only so
	// attached machines warm-start with fused hot paths instead of
	// re-profiling. Adoption requires the trace's whole range untouched
	// per the adopter's dirty state; mutated ranges fall back to
	// private re-formation, the trace analog of an overlay compile.
	traces map[uint32]*traceCode
}

// BuildTBPool freezes the machine's current translation cache into a
// shareable pool: every cached block matching the machine's current
// profile/ISA specialization — and whose bytes are untouched per the
// machine's dirty state, so the compilation still reflects the
// pristine image — is compiled (if it has not been yet) and published.
// The machine keeps its private cache; the returned pool holds only the
// immutable compiled parts. Returns an empty pool when the cache is
// empty or DisableTBCache is set (nothing trustworthy to share).
func (m *Machine) BuildTBPool() *TBPool {
	p := &TBPool{
		prof:   m.Profile,
		ext:    m.ISA,
		sub:    m.subset,
		blocks: make(map[uint32]*tbCode, len(m.tbs)),
		lo:     ^uint32(0),
	}
	if m.DisableTBCache {
		return p
	}
	for pc, t := range m.tbs {
		if t.prof != m.Profile || t.ext != m.ISA || t.sub != m.subset {
			continue // stale specialization; do not publish
		}
		if m.DirtyOverlaps(pc, t.end) {
			// The donor wrote bytes under this block since its last
			// pristine rewind: the compilation may not match the image
			// other machines will run. Keep it private.
			continue
		}
		if t.ops == nil {
			// Freeze eagerly: pooled blocks must never be mutated after
			// publication, so lazy compilation cannot cross the pool
			// boundary (it would race between attached machines).
			t.tbCode.compile()
		}
		p.blocks[pc] = t.tbCode
		if pc < p.lo {
			p.lo = pc
		}
		if t.end > p.hi {
			p.hi = t.end
		}
	}
	for pc, tr := range m.traces {
		if tr.prof != m.Profile || tr.ext != m.ISA || tr.sub != m.subset {
			continue
		}
		if m.DirtyOverlaps(tr.lo, tr.hi) {
			// Same pristine-image rule as blocks, over the trace's whole
			// constituent range.
			continue
		}
		if p.traces == nil {
			p.traces = make(map[uint32]*traceCode)
		}
		p.traces[pc] = tr
	}
	return p
}

// Size returns the number of pooled blocks.
func (p *TBPool) Size() int { return len(p.blocks) }

// Traces returns the number of traces in the frozen-superblock tier.
func (p *TBPool) Traces() int { return len(p.traces) }

// CodeRange returns the address range covered by pooled blocks; lo > hi
// means the pool is empty.
func (p *TBPool) CodeRange() (lo, hi uint32) { return p.lo, p.hi }

// Generation returns the pool's current generation tag.
func (p *TBPool) Generation() uint64 { return p.gen.Load() }

// Invalidate retires the pool's contents by bumping its generation:
// the generation check fails for every machine — attached now or later —
// so no further blocks are adopted. Blocks a machine already adopted
// stay with that machine until its own invalidation (they were validated
// against the image at adoption time).
func (p *TBPool) Invalidate() { p.gen.Add(1) }

// AttachTBPool attaches a shared translation pool to the machine.
// Lookups consult the pool after the private cache; blocks are adopted
// only while the machine's profile/ISA match the pool's specialization,
// the pool has not been invalidated, and the block's bytes are untouched
// per the dirty-state check (DirtyOverlaps). Attaching nil detaches.
func (m *Machine) AttachTBPool(p *TBPool) {
	m.pool = p
	// Pools are born at generation 0 and an invalidation is forever, so
	// the recorded generation is the birth one — a machine attaching
	// after Invalidate must not adopt retired blocks either.
	m.poolGen = 0
}

// DetachTBPool detaches the shared pool; already-adopted blocks remain
// in the private cache.
func (m *Machine) DetachTBPool() { m.pool = nil }

// TBPoolAttached reports whether a shared pool is attached.
func (m *Machine) TBPoolAttached() bool { return m.pool != nil }

// activePool returns the attached pool if it is currently usable for
// this machine: generation agrees and the machine's specialization
// matches the pool's. DisableTBCache bypasses the pool entirely, keeping
// the retranslate-everything ablation baseline pure.
func (m *Machine) activePool() *TBPool {
	p := m.pool
	if p == nil || m.DisableTBCache || p.prof != m.Profile || p.ext != m.ISA ||
		p.sub != m.subset || p.gen.Load() != m.poolGen {
		return nil
	}
	return p
}

// poolFetch tries to adopt the block at pc from the attached pool. On
// success the block is installed into the private cache (wrapped with
// fresh per-machine link state) and returned; nil means the pool cannot
// serve this pc and the caller should translate privately.
func (m *Machine) poolFetch(pc uint32) *tb {
	p := m.activePool()
	if p == nil {
		return nil
	}
	c := p.blocks[pc]
	if c == nil {
		return nil // accounted as PoolMisses by the translate path
	}
	if m.DirtyOverlaps(pc, c.end) {
		// Bytes under the block were written since the last pristine
		// rewind (code-mutating fault, store into code): the pooled
		// compilation no longer matches memory. Fall through to a
		// private overlay compile of the current bytes.
		return nil
	}
	m.stats.PoolHits++
	t := &tb{tbCode: c}
	m.install(t)
	return t
}
