package emu

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/decode"
	"repro/internal/isa"
)

// canonicalNaN is the RISC-V canonical single-precision quiet NaN.
const canonicalNaN = 0x7fc00000

// fflags bits.
const (
	flagNX = 1 << 0 // inexact
	flagUF = 1 << 1 // underflow
	flagOF = 1 << 2 // overflow
	flagDZ = 1 << 3 // divide by zero
	flagNV = 1 << 4 // invalid
)

func f32(bits uint32) float32 { return math.Float32frombits(bits) }
func f32b(v float32) uint32   { return math.Float32bits(v) }
func isNaN32(v float32) bool  { return v != v }
func isSNaN(bits uint32) bool {
	// Signalling NaN: NaN with the top mantissa bit clear.
	return bits&0x7f800000 == 0x7f800000 && bits&0x007fffff != 0 && bits&0x00400000 == 0
}

// box canonicalizes NaN results, matching RISC-V's canonical-NaN
// requirement and keeping the emulator deterministic across hosts.
func box(v float32) uint32 {
	if isNaN32(v) {
		return canonicalNaN
	}
	return f32b(v)
}

// execFP executes the F-extension instructions; returns false if it
// trapped. rs1v is the integer value of rs1 (used by loads/stores and
// int->float moves).
//
// Rounding uses the host's round-to-nearest-even; the fflags NV and DZ
// flags are exact, NX/OF/UF are approximated (documented in DESIGN.md).
func (m *Machine) execFP(in decode.Inst, pc, rs1v uint32) bool {
	h := &m.Hart
	a := f32(h.F[in.Rs1])
	b := f32(h.F[in.Rs2])

	setNVIfSNaN := func(vals ...uint32) {
		for _, v := range vals {
			if isSNaN(v) {
				h.Fflags |= flagNV
				return
			}
		}
	}

	switch in.Op {
	case isa.OpFLW:
		v, ok := m.memLoad(pc, rs1v+uint32(in.Imm), 4)
		if !ok {
			return false
		}
		h.F[in.Rd] = v
	case isa.OpFSW:
		ok, _ := m.memStore(pc, rs1v+uint32(in.Imm), 4, h.F[in.Rs2])
		if !ok {
			return false
		}
	case isa.OpFADDS:
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2])
		h.F[in.Rd] = box(a + b)
	case isa.OpFSUBS:
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2])
		h.F[in.Rd] = box(a - b)
	case isa.OpFMULS:
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2])
		h.F[in.Rd] = box(a * b)
	case isa.OpFDIVS:
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2])
		if b == 0 && !isNaN32(a) && a != 0 {
			h.Fflags |= flagDZ
		}
		h.F[in.Rd] = box(a / b)
	case isa.OpFSQRTS:
		if a < 0 {
			h.Fflags |= flagNV
		}
		h.F[in.Rd] = box(float32(math.Sqrt(float64(a))))
	case isa.OpFMADDS, isa.OpFMSUBS, isa.OpFNMSUBS, isa.OpFNMADDS:
		c := f32(h.F[in.Rs3])
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2], h.F[in.Rs3])
		var r float64
		switch in.Op {
		case isa.OpFMADDS:
			r = math.FMA(float64(a), float64(b), float64(c))
		case isa.OpFMSUBS:
			r = math.FMA(float64(a), float64(b), -float64(c))
		case isa.OpFNMSUBS:
			r = math.FMA(-float64(a), float64(b), float64(c))
		case isa.OpFNMADDS:
			r = math.FMA(-float64(a), float64(b), -float64(c))
		}
		h.F[in.Rd] = box(float32(r))
	case isa.OpFSGNJS:
		h.F[in.Rd] = h.F[in.Rs1]&0x7fffffff | h.F[in.Rs2]&0x80000000
	case isa.OpFSGNJNS:
		h.F[in.Rd] = h.F[in.Rs1]&0x7fffffff | ^h.F[in.Rs2]&0x80000000
	case isa.OpFSGNJXS:
		h.F[in.Rd] = h.F[in.Rs1] ^ h.F[in.Rs2]&0x80000000
	case isa.OpFMINS, isa.OpFMAXS:
		setNVIfSNaN(h.F[in.Rs1], h.F[in.Rs2])
		switch {
		case isNaN32(a) && isNaN32(b):
			h.F[in.Rd] = canonicalNaN
		case isNaN32(a):
			h.F[in.Rd] = h.F[in.Rs2]
		case isNaN32(b):
			h.F[in.Rd] = h.F[in.Rs1]
		default:
			lt := a < b || (a == b && h.F[in.Rs1]>>31 == 1) // -0 < +0
			if (in.Op == isa.OpFMINS) == lt {
				h.F[in.Rd] = h.F[in.Rs1]
			} else {
				h.F[in.Rd] = h.F[in.Rs2]
			}
		}
	case isa.OpFCVTWS:
		h.SetReg(in.Rd, cvtF2I(h, a, true))
	case isa.OpFCVTWUS:
		h.SetReg(in.Rd, cvtF2I(h, a, false))
	case isa.OpFMVXW:
		h.SetReg(in.Rd, h.F[in.Rs1])
	case isa.OpFEQS:
		if isSNaN(h.F[in.Rs1]) || isSNaN(h.F[in.Rs2]) {
			h.Fflags |= flagNV
		}
		h.SetReg(in.Rd, b2u(a == b))
	case isa.OpFLTS:
		if isNaN32(a) || isNaN32(b) {
			h.Fflags |= flagNV
		}
		h.SetReg(in.Rd, b2u(a < b))
	case isa.OpFLES:
		if isNaN32(a) || isNaN32(b) {
			h.Fflags |= flagNV
		}
		h.SetReg(in.Rd, b2u(a <= b))
	case isa.OpFCLASSS:
		h.SetReg(in.Rd, fclass(h.F[in.Rs1]))
	case isa.OpFCVTSW:
		h.F[in.Rd] = f32b(float32(int32(rs1v)))
	case isa.OpFCVTSWU:
		h.F[in.Rd] = f32b(float32(rs1v))
	case isa.OpFMVWX:
		h.F[in.Rd] = rs1v
	default:
		m.trap(isa.ExcIllegalInst, in.Raw, pc)
		return false
	}
	return true
}

// cvtF2I converts float32 to int32/uint32 with RISC-V saturation and NV
// semantics, rounding toward zero (the fcvt.w.s/fcvt.wu.s rtz form the
// toolchain emits for C casts).
func cvtF2I(h *cpu.Hart, v float32, signed bool) uint32 {
	if isNaN32(v) {
		h.Fflags |= flagNV
		if signed {
			return 0x7fffffff
		}
		return 0xffffffff
	}
	t := math.Trunc(float64(v))
	if signed {
		switch {
		case t < -2147483648:
			h.Fflags |= flagNV
			return 0x80000000
		case t > 2147483647:
			h.Fflags |= flagNV
			return 0x7fffffff
		}
		if t != float64(v) {
			h.Fflags |= flagNX
		}
		return uint32(int32(t))
	}
	switch {
	case t < 0:
		h.Fflags |= flagNV
		return 0
	case t > 4294967295:
		h.Fflags |= flagNV
		return 0xffffffff
	}
	if t != float64(v) {
		h.Fflags |= flagNX
	}
	return uint32(t)
}

// fclass implements the fclass.s classification mask.
func fclass(bits uint32) uint32 {
	sign := bits>>31 != 0
	exp := bits >> 23 & 0xff
	man := bits & 0x7fffff
	switch {
	case exp == 0xff && man != 0:
		if bits&0x00400000 != 0 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signalling NaN
	case exp == 0xff && sign:
		return 1 << 0 // -inf
	case exp == 0xff:
		return 1 << 7 // +inf
	case exp == 0 && man == 0 && sign:
		return 1 << 3 // -0
	case exp == 0 && man == 0:
		return 1 << 4 // +0
	case exp == 0 && sign:
		return 1 << 2 // negative subnormal
	case exp == 0:
		return 1 << 5 // positive subnormal
	case sign:
		return 1 << 1 // negative normal
	default:
		return 1 << 6 // positive normal
	}
}
