package emu_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// Tests for the superblock trace engine beyond the bit-exactness
// differential: trace formation actually happens on real workloads (the
// engine must not silently degrade into pure threaded execution),
// stores into an active trace sever it precisely, and the pool's
// frozen-superblock tier warm-starts attached machines.

func runSuperblockWorkload(t *testing.T, name string) *vp.Platform {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not found", name)
	}
	p, err := vp.New(vp.Config{Sensor: w.Sensor})
	if err != nil {
		t.Fatalf("vp.New: %v", err)
	}
	if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	p.Machine.Engine = emu.EngineSuperblock
	if stop := p.Run(w.Budget); stop.Reason != emu.StopExit || stop.Code != w.Expect {
		t.Fatalf("%s stop = %v, want exit(%d)", name, stop, w.Expect)
	}
	return p
}

// TestSuperblockTraceFormation is the guard against silent degradation:
// on the hot-loop bench workloads the engine must form traces and run
// them mostly to completion (side-exit rate under 50% on xtea).
func TestSuperblockTraceFormation(t *testing.T) {
	p := runSuperblockWorkload(t, "xtea")
	es := p.Machine.Stats()
	if es.TracesFormed == 0 {
		t.Fatal("no traces formed on xtea")
	}
	if es.TraceRuns == 0 {
		t.Fatal("traces formed but never retired")
	}
	if rate := es.TraceSideExitRate(); rate >= 0.5 {
		t.Errorf("side-exit rate = %.2f (runs=%d exits=%d), want < 0.5",
			rate, es.TraceRuns, es.TraceSideExits)
	}
	if es.AvgTraceBlocks() < 1 {
		t.Errorf("avg trace blocks = %.2f, want >= 1", es.AvgTraceBlocks())
	}
}

// selfmodTraceProg runs a three-block loop hot enough to be fused, then
// patches an instruction in the loop's middle block and keeps looping.
// s3 accumulates across both phases, so a stale (unsevered) trace that
// kept executing the old instruction would change the final register
// state.
const selfmodTraceProg = `
	la t0, patch
	la t1, alt
	lw t2, 0(t1)
	li s1, 0
	li s2, 300
	li s3, 0
	li t3, 150
loop:
	addi s1, s1, 1
	beq s1, t3, dopatch
back:
	xor s3, s3, s1
patch:
	addi s3, s3, 1
	blt s1, s2, loop
	mv a0, s3
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
dopatch:
	sw t2, 0(t0)
	fence.i
	j back
alt:
	addi s3, s3, 7
`

// TestSuperblockSelfmodSeversTrace proves a store into the middle of an
// active superblock severs the trace and the patched path re-executes
// bit-identically to the threaded engine — with and without a shared
// pool attached.
func TestSuperblockSelfmodSeversTrace(t *testing.T) {
	run := func(t *testing.T, engine emu.Engine, pool *emu.TBPool) (*vp.Platform, emu.StopInfo) {
		t.Helper()
		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatalf("vp.New: %v", err)
		}
		if _, err := p.LoadSource(vp.Prelude + selfmodTraceProg); err != nil {
			t.Fatalf("load: %v", err)
		}
		p.Machine.Engine = engine
		if pool != nil {
			p.Machine.AttachTBPool(pool)
		}
		return p, p.Run(20_000)
	}

	ref, refStop := run(t, emu.EngineThreaded, nil)

	// A donor superblock run provides a pool with a frozen-trace tier;
	// traces over the patched range must not be published (the donor's
	// store watermark covers them) or must be rejected at adoption.
	donor, _ := run(t, emu.EngineSuperblock, nil)
	pool := donor.Machine.BuildTBPool()

	for _, tc := range []struct {
		name string
		pool *emu.TBPool
	}{
		{"pool-off", nil},
		{"pool-on", pool},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, stop := run(t, emu.EngineSuperblock, tc.pool)
			if stop != refStop {
				t.Errorf("stop = %v, want %v", stop, refStop)
			}
			h, rh := &p.Machine.Hart, &ref.Machine.Hart
			if h.X != rh.X || h.Instret != rh.Instret || h.Cycle != rh.Cycle {
				t.Errorf("state diverged: instret %d/%d cycle %d/%d x %v vs %v",
					h.Instret, rh.Instret, h.Cycle, rh.Cycle, h.X, rh.X)
			}
			es := p.Machine.Stats()
			if es.TracesFormed == 0 {
				t.Error("loop never fused into a trace")
			}
			if es.TracesInvalidated == 0 {
				t.Error("patch store severed no trace")
			}
		})
	}
}

// TestTBPoolFreezesTraces proves the frozen-superblock tier: traces a
// golden superblock run formed are published by BuildTBPool and adopted
// by an attached machine instead of being re-profiled.
func TestTBPoolFreezesTraces(t *testing.T) {
	w, ok := workloads.ByName("xtea")
	if !ok {
		t.Fatal("workload xtea not found")
	}
	newP := func() *vp.Platform {
		p, err := vp.New(vp.Config{Sensor: w.Sensor})
		if err != nil {
			t.Fatalf("vp.New: %v", err)
		}
		if _, err := p.LoadSource(vp.Prelude + w.Source); err != nil {
			t.Fatalf("load: %v", err)
		}
		p.Machine.Engine = emu.EngineSuperblock
		return p
	}

	donor := newP()
	if stop := donor.Run(w.Budget); stop.Reason != emu.StopExit {
		t.Fatalf("donor stop = %v", stop)
	}
	pool := donor.Machine.BuildTBPool()
	if pool.Traces() == 0 {
		t.Fatal("pool has no frozen traces")
	}

	adopter := newP()
	adopter.Machine.AttachTBPool(pool)
	if stop := adopter.Run(w.Budget); stop.Reason != emu.StopExit {
		t.Fatalf("adopter stop = %v", stop)
	}
	es := adopter.Machine.Stats()
	if es.TracePoolHits == 0 {
		t.Error("no traces adopted from the pool")
	}
	if donor.Machine.Hart.Cycle != adopter.Machine.Hart.Cycle ||
		donor.Machine.Hart.Instret != adopter.Machine.Hart.Instret {
		t.Errorf("adopter diverged: instret %d/%d cycle %d/%d",
			adopter.Machine.Hart.Instret, donor.Machine.Hart.Instret,
			adopter.Machine.Hart.Cycle, donor.Machine.Hart.Cycle)
	}
}
