package emu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/vp"
)

// scatterSrc dirties one word near the bottom of RAM (a data buffer
// just past the code) and one near the top (stack-relative) — the
// pathological case for a bounding-box watermark: the box spans nearly
// all of RAM while only two pages actually changed.
const scatterSrc = `
	la t0, buf
	li a1, 0x1234
	sw a1, 0(t0)
	sw a1, -16(sp)
	ebreak
buf:
	.word 0
`

func scatterPlatform(t *testing.T, disablePages bool) *vp.Platform {
	t.Helper()
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Machine.DisableDirtyPages = disablePages
	if _, err := p.LoadSource(vp.Prelude + scatterSrc); err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("run: %+v", stop)
	}
	return p
}

func dirtySummary(m *emu.Machine) (ranges int, total uint64) {
	m.ForEachDirtyRange(func(lo, hi uint32) {
		ranges++
		total += uint64(hi - lo)
	})
	return ranges, total
}

// TestDirtyRangesScattered: with the page bitmap on, two scattered
// stores report two small dirty ranges — not the multi-megabyte
// watermark box — and the untouched middle of RAM tests clean.
func TestDirtyRangesScattered(t *testing.T) {
	p := scatterPlatform(t, false)
	m := p.Machine

	wlo, whi := m.StoreWatermark()
	if whi-wlo < 3<<20 {
		t.Fatalf("watermark box spans 0x%x bytes, want ~4 MiB (scatter failed)", whi-wlo)
	}
	ranges, total := dirtySummary(m)
	if ranges != 2 {
		t.Errorf("dirty ranges = %d, want 2", ranges)
	}
	if total > 2*emu.DirtyPageSize {
		t.Errorf("dirty bytes = %d, want <= %d (two pages)", total, 2*emu.DirtyPageSize)
	}

	mid := uint32(vp.RAMBase + 2<<20)
	if m.DirtyOverlaps(mid, mid+4096) {
		t.Error("middle of RAM reported dirty; only the extremes were written")
	}
	if !m.DirtyOverlaps(whi-4, whi) {
		t.Error("top-of-RAM store not reported dirty")
	}
	if !m.DirtyOverlaps(wlo, wlo+4) {
		t.Error("bottom-of-RAM store not reported dirty")
	}

	m.ResetStoreWatermark()
	if ranges, _ := dirtySummary(m); ranges != 0 {
		t.Errorf("dirty ranges after reset = %d, want 0", ranges)
	}
	if m.DirtyOverlaps(vp.RAMBase, vp.RAMBase+vp.DefaultRAMSize) {
		t.Error("RAM reported dirty after reset")
	}
}

// TestDirtyRangesWatermarkFallback: with DisableDirtyPages the machine
// degenerates to the pre-bitmap behaviour — one dirty range equal to
// the watermark box, and box overlap is the (conservative) answer.
func TestDirtyRangesWatermarkFallback(t *testing.T) {
	p := scatterPlatform(t, true)
	m := p.Machine

	wlo, whi := m.StoreWatermark()
	ranges, total := dirtySummary(m)
	if ranges != 1 {
		t.Fatalf("dirty ranges = %d, want 1 (the watermark box)", ranges)
	}
	if total != uint64(whi-wlo) {
		t.Errorf("dirty bytes = %d, want the box span %d", total, whi-wlo)
	}
	mid := uint32(vp.RAMBase + 2<<20)
	if !m.DirtyOverlaps(mid, mid+4096) {
		t.Error("fallback must report the whole box dirty")
	}
}

// TestPoolAdoptionBetweenScatteredStores: scattered dirty state
// bracketing a clean code region must not block pool adoption — the
// page-granular check refines the watermark box, so a consumer whose
// box covers the code (but whose code pages are clean) still adopts
// every block. With the bitmap disabled, the old box rule applies and
// the consumer compiles privately: the exact behaviour change the
// dirty-page tracking buys.
func TestPoolAdoptionBetweenScatteredStores(t *testing.T) {
	// Load above RAM base so there is dirtiable space below the code.
	const org = vp.RAMBase + 0x2000
	prog, err := asm.AssembleAt(vp.Prelude+poolProg, org)
	if err != nil {
		t.Fatal(err)
	}
	load := func(disablePages bool) *vp.Platform {
		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		p.Machine.DisableDirtyPages = disablePages
		if err := p.LoadProgram(prog); err != nil {
			t.Fatal(err)
		}
		return p
	}

	donor := load(false)
	if stop := donor.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("donor run: %+v", stop)
	}
	pool := donor.Machine.BuildTBPool()
	if pool.Size() == 0 {
		t.Fatal("donor produced an empty pool")
	}

	scatter := func(p *vp.Platform) {
		top := uint32(vp.RAMBase + vp.DefaultRAMSize)
		p.Machine.NoteRAMWrite(vp.RAMBase+4, 4)
		p.Machine.NoteRAMWrite(top-8, 4)
	}

	t.Run("pages", func(t *testing.T) {
		p := load(false)
		p.Machine.AttachTBPool(pool)
		scatter(p)
		if p.Machine.CodePagesDirty() {
			t.Error("code pages dirty before any code write")
		}
		if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
			t.Fatalf("run: %+v", stop)
		}
		st := p.Machine.Stats()
		if st.TBsCompiled != 0 {
			t.Errorf("compiled %d blocks, want 0 (scattered dirt must not block adoption)", st.TBsCompiled)
		}
		if st.PoolHits == 0 {
			t.Error("no pool hits recorded")
		}
		// A write into the code itself is still caught, byte or not.
		p.Machine.NoteRAMWrite(org, 1)
		if !p.Machine.CodePagesDirty() {
			t.Error("write into translated code not reported by CodePagesDirty")
		}
	})

	t.Run("watermark-fallback", func(t *testing.T) {
		p := load(true)
		p.Machine.AttachTBPool(pool)
		scatter(p)
		if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
			t.Fatalf("run: %+v", stop)
		}
		if st := p.Machine.Stats(); st.TBsCompiled == 0 {
			t.Error("fallback adopted through a covering watermark box; expected private compiles")
		}
	})
}
