package emu_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/vp"
)

// trapCycles records the cycle of every trap taken (a TrapWatcher-only
// plugin, so translated engines keep their fast paths).
type trapCycles struct {
	m      *emu.Machine
	cycles []uint64
	causes []uint32
}

func (tc *trapCycles) Name() string { return "trap-cycles" }
func (tc *trapCycles) OnTrap(cause, tval, pc uint32) {
	tc.cycles = append(tc.cycles, tc.m.Hart.Cycle)
	tc.causes = append(tc.causes, cause)
}

// TestDoubleTrapStops pins the double-trap guard: when the installed
// handler's first instruction itself faults, the machine must stop with
// StopTrap instead of vectoring forever without retiring (the hang a
// fault campaign provokes by flipping a bit in the handler entry).
func TestDoubleTrapStops(t *testing.T) {
	src := vp.Prelude + `
_start:
	la t0, handler
	csrw mtvec, t0
	ecall
handler:
	.word 0xffffffff          # handler entry is an illegal instruction
`
	for _, eng := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		p.Machine.Engine = eng
		stop := p.Run(10_000)
		if stop.Reason != emu.StopTrap {
			t.Errorf("%v: stop = %+v, want StopTrap from the double-trap guard", eng, stop)
		}
	}
	// Step path takes the same trap() route.
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if stop := p.Machine.Step(); stop != nil {
			if stop.Reason != emu.StopTrap {
				t.Errorf("step: stop = %+v, want StopTrap", stop)
			}
			return
		}
	}
	t.Error("step: double trap never stopped the machine")
}

// TestSuperblockGuardObservesIRQ pins the superblock contract for
// external interrupts: fused traces keep polling at former block
// boundaries, so an interrupt asserted while a hot loop runs inside a
// superblock trace is delivered at the same cycle as on the unfused
// engines.
func TestSuperblockGuardObservesIRQ(t *testing.T) {
	src := vp.Prelude + `
_start:
	la t0, handler
	csrw mtvec, t0
	li t0, PLIC_ENABLE
	li t1, 8                  # test-trigger line only
	sw t1, 0(t0)
	li t0, 0x800              # MEIE
	csrw mie, t0
	csrsi mstatus, 8
	li s0, 20000
	li s1, 0
loop:                         # hot enough to fuse into a trace
	addi s1, s1, 1
	addi s0, s0, -1
	bnez s0, loop
	mv a0, s2
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
handler:
claim:
	li t1, PLIC_CLAIM
	lw t2, 0(t1)
	beqz t2, out
	addi s2, s2, 1            # count serviced claims
	j claim
out:
	mret
`
	const trigger = 30_000 // mid-loop, well after trace formation
	var ref *trapCycles
	for _, eng := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		p.Machine.Engine = eng
		tc := &trapCycles{m: p.Machine}
		if err := p.Machine.Hooks.Register(tc); err != nil {
			t.Fatal(err)
		}
		p.Plic.TriggerAt(trigger)
		stop := p.Run(200_000)
		if stop.Reason != emu.StopExit || stop.Code != 1 {
			t.Fatalf("%v: stop = %+v, want exit with 1 serviced claim", eng, stop)
		}
		if len(tc.cycles) != 1 {
			t.Fatalf("%v: %d traps, want 1", eng, len(tc.cycles))
		}
		if tc.cycles[0] < trigger {
			t.Errorf("%v: delivered at cycle %d, before the %d assert", eng, tc.cycles[0], trigger)
		}
		if ref == nil {
			ref = tc
			continue
		}
		if tc.cycles[0] != ref.cycles[0] || tc.causes[0] != ref.causes[0] {
			t.Errorf("%v: trap at cycle %d cause %#x, want cycle %d cause %#x",
				eng, tc.cycles[0], tc.causes[0], ref.cycles[0], ref.causes[0])
		}
	}
}
