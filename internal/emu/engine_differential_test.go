package emu_test

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/timing"
	"repro/internal/torture"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// This file is the safety net for the compiled engines: every workload
// and a batch of seeded torture programs run under Step(), the switch
// engine, the threaded engine and the superblock trace engine, and the
// full architectural state — stop info, Instret, Cycle, both register
// files, trap CSRs and a RAM digest — must be bit-identical across all
// four paths.
//
// Step() is compared under the unit profile only: single-stepping
// legitimately differs in Cycle under profiles with a load-use interlock
// (the engines reset hazard state at block boundaries, Step never sees
// one) — that is a documented property, not a bug.

// archState is the full observable machine state at end of run.
type archState struct {
	stop    emu.StopInfo
	instret uint64
	cycle   uint64
	pc      uint32
	x       [32]uint32
	f       [32]uint32
	mstatus uint32
	mepc    uint32
	mcause  uint32
	mtval   uint32
	fflags  uint32
	ram     uint64 // FNV-1a digest of all RAM bytes
	out     string // UART output
}

func captureState(p *vp.Platform, stop emu.StopInfo) archState {
	h := &p.Machine.Hart
	st := archState{
		stop:    stop,
		instret: h.Instret,
		cycle:   h.Cycle,
		pc:      h.PC,
		x:       h.X,
		f:       h.F,
		mstatus: h.Mstatus,
		mepc:    h.Mepc,
		mcause:  h.Mcause,
		mtval:   h.Mtval,
		fflags:  h.Fflags,
		out:     p.Output(),
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	d := uint64(fnvOffset)
	for _, b := range p.RAM.Bytes() {
		d = (d ^ uint64(b)) * fnvPrime
	}
	st.ram = d
	return st
}

// diffCase is one program to run under every execution path.
type diffCase struct {
	name   string
	src    string // assembly body, prelude prepended
	budget uint64
	sensor []int16
	stream []int16 // DMA sensor stream
	uartIn []byte  // pre-fed UART receive bytes
	// noStep skips the Step() comparison: single-stepping polls
	// interrupts before every instruction while the block engines poll
	// at block boundaries, so asynchronous-interrupt delivery points
	// (mepc) legitimately differ — a documented granularity property,
	// like the load-use note above.
	noStep bool
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	var cases []diffCase
	for _, w := range workloads.All() {
		cases = append(cases, diffCase{
			name:   "workload/" + w.Name,
			src:    w.Source,
			budget: w.Budget,
			sensor: w.Sensor,
		})
	}
	// Interrupt demonstrators: DMA completion, PLIC claim/clear and UART
	// drain all happen relative to exact cycle counts at poll points, so
	// any engine divergence in device-visible time surfaces as a state
	// mismatch here. Step delivery points legitimately differ (noStep);
	// the functional Step comparison lives in the workloads tests.
	for _, w := range workloads.Interrupt() {
		cases = append(cases, diffCase{
			name:   "irq/" + w.Name,
			src:    w.Source,
			budget: w.Budget,
			sensor: w.Sensor,
			stream: w.Stream,
			uartIn: w.UARTIn,
			noStep: true,
		})
	}
	for seed := int64(1); seed <= 8; seed++ {
		prog := torture.Generate(torture.Config{Seed: seed, Insts: 160})
		cases = append(cases, diffCase{
			name:   fmt.Sprintf("torture/seed%d", seed),
			src:    prog.Source,
			budget: prog.Budget,
		})
	}
	// Interrupt-heavy: a hot ALU loop (long enough for the superblock
	// engine to fuse traces) peppered with timer interrupts whose
	// delivery points depend on exact cycle counts at every block
	// boundary — the sharpest probe of boundary-poll equivalence.
	cases = append(cases, diffCase{
		name: "intr-hot",
		src: `
		la t0, handler
		csrw mtvec, t0
		li t1, CLINT_MTIME
		lw t2, 0(t1)
		addi t2, t2, 64
		li t1, CLINT_MTIMECMP
		sw t2, 0(t1)
		sw zero, 4(t1)
		li t3, 128          # MTIE
		csrw mie, t3
		csrsi mstatus, 8    # MIE
		li s0, 0            # interrupts taken
		li s1, 0            # loop counter
		li s2, 4000
		li s3, 0            # accumulator
loop:
		addi s1, s1, 1
		xor s3, s3, s1
		slli t4, s1, 3
		add s3, s3, t4
		srli t5, s3, 5
		xor s3, s3, t5
		blt s1, s2, loop
		csrw mie, zero
		ebreak
handler:
		addi s0, s0, 1
		li t1, CLINT_MTIMECMP
		lw t6, 0(t1)
		addi t6, t6, 97     # re-arm at an odd stride
		sw t6, 0(t1)
		mret
		`,
		budget: 80_000,
		noStep: true,
	})
	// Self-modifying: a loop hot enough to be fused into a trace patches
	// one of its own instructions halfway through, so the store must
	// sever the trace and later iterations re-execute (and re-fuse) the
	// patched code identically on every engine.
	cases = append(cases, diffCase{
		name: "selfmod-hot",
		src: `
		la t0, patch
		la t1, alt
		lw t2, 0(t1)        # replacement instruction bytes
		li s0, 0
		li s1, 0
		li s2, 200
		li s3, 0
		li t3, 100
loop:
		addi s1, s1, 1
		xor s3, s3, s1
		add s3, s3, s0
patch:
		addi s0, s0, 1
		bne s1, t3, skip
		sw t2, 0(t0)        # overwrite the patch instruction mid-loop
		fence.i
skip:
		blt s1, s2, loop
		ebreak
alt:
		addi s0, s0, 2
		`,
		budget: 10_000,
	})
	return cases
}

func newDiffPlatform(t *testing.T, c diffCase, prof *timing.Profile) *vp.Platform {
	t.Helper()
	p, err := vp.New(vp.Config{Profile: prof, Sensor: c.sensor, Stream: c.stream, UARTIn: c.uartIn})
	if err != nil {
		t.Fatalf("vp.New: %v", err)
	}
	if _, err := p.LoadSource(vp.Prelude + c.src); err != nil {
		t.Fatalf("load %s: %v", c.name, err)
	}
	return p
}

func runEngine(t *testing.T, c diffCase, prof *timing.Profile, engine emu.Engine) archState {
	t.Helper()
	p := newDiffPlatform(t, c, prof)
	p.Machine.Engine = engine
	return captureState(p, p.Run(c.budget))
}

// runStep drives the same program one instruction at a time, then
// synthesizes the budget-stop Run would have reported so the states are
// comparable even when the budget expires.
func runStep(t *testing.T, c diffCase, prof *timing.Profile) archState {
	t.Helper()
	p := newDiffPlatform(t, c, prof)
	var stop *emu.StopInfo
	for n := uint64(0); n < c.budget; n++ {
		if stop = p.Machine.Step(); stop != nil {
			break
		}
	}
	if stop == nil {
		stop = &emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}
	}
	return captureState(p, *stop)
}

func diffStates(t *testing.T, what string, want, got archState) {
	t.Helper()
	if want == got {
		return
	}
	if want.stop != got.stop {
		t.Errorf("%s: stop = %v, want %v", what, got.stop, want.stop)
	}
	if want.instret != got.instret {
		t.Errorf("%s: instret = %d, want %d", what, got.instret, want.instret)
	}
	if want.cycle != got.cycle {
		t.Errorf("%s: cycle = %d, want %d", what, got.cycle, want.cycle)
	}
	if want.pc != got.pc {
		t.Errorf("%s: pc = %#x, want %#x", what, got.pc, want.pc)
	}
	for i := range want.x {
		if want.x[i] != got.x[i] {
			t.Errorf("%s: x%d = %#x, want %#x", what, i, got.x[i], want.x[i])
		}
	}
	for i := range want.f {
		if want.f[i] != got.f[i] {
			t.Errorf("%s: f%d = %#x, want %#x", what, i, got.f[i], want.f[i])
		}
	}
	if want.ram != got.ram {
		t.Errorf("%s: RAM digest = %#x, want %#x", what, got.ram, want.ram)
	}
	if want.out != got.out {
		t.Errorf("%s: output = %q, want %q", what, got.out, want.out)
	}
	if want.mstatus != got.mstatus || want.mepc != got.mepc ||
		want.mcause != got.mcause || want.mtval != got.mtval || want.fflags != got.fflags {
		t.Errorf("%s: CSRs = %x/%x/%x/%x/%x, want %x/%x/%x/%x/%x", what,
			got.mstatus, got.mepc, got.mcause, got.mtval, got.fflags,
			want.mstatus, want.mepc, want.mcause, want.mtval, want.fflags)
	}
}

// TestEngineDifferential proves bit-identical architectural state across
// the three execution paths for every workload and torture seed.
func TestEngineDifferential(t *testing.T) {
	profiles := []struct {
		name string
		p    *timing.Profile
	}{
		{"unit", nil},
		{"edge-small", timing.EdgeSmall()},
		{"edge-cache", timing.EdgeCache()},
	}
	for _, c := range diffCases(t) {
		for _, prof := range profiles {
			t.Run(c.name+"/"+prof.name, func(t *testing.T) {
				ref := runEngine(t, c, prof.p, emu.EngineSwitch)
				threaded := runEngine(t, c, prof.p, emu.EngineThreaded)
				diffStates(t, "threaded vs switch", ref, threaded)
				superblock := runEngine(t, c, prof.p, emu.EngineSuperblock)
				diffStates(t, "superblock vs switch", ref, superblock)
				if prof.p == nil && !c.noStep {
					step := runStep(t, c, prof.p)
					diffStates(t, "step vs switch", ref, step)
				}
			})
		}
	}
}

// TestEngineDifferentialTightBudget exercises the budget-stop and resume
// paths of both engines: run each program in small budget slices and
// require the same final state as one uninterrupted run.
func TestEngineDifferentialTightBudget(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := runEngine(t, c, nil, emu.EngineSwitch)
			for _, engine := range []emu.Engine{emu.EngineSwitch, emu.EngineThreaded, emu.EngineSuperblock} {
				p := newDiffPlatform(t, c, nil)
				p.Machine.Engine = engine
				var stop emu.StopInfo
				var used uint64
				const slice = 173 // deliberately not block-aligned
				for used < c.budget {
					n := min(slice, c.budget-used)
					stop = p.Run(n)
					used += n
					if stop.Reason != emu.StopBudget {
						break
					}
				}
				got := captureState(p, stop)
				diffStates(t, fmt.Sprintf("%v sliced", engine), ref, got)
			}
		})
	}
}

// TestInterruptDeliveryPooled proves a shared translation pool does not
// perturb interrupt delivery: each demonstrator runs bit-identically
// with the translated engines warm-starting from a pool built by a
// fault-campaign-style golden run.
func TestInterruptDeliveryPooled(t *testing.T) {
	for _, w := range workloads.Interrupt() {
		c := diffCase{
			name:   w.Name,
			src:    w.Source,
			budget: w.Budget,
			sensor: w.Sensor,
			stream: w.Stream,
			uartIn: w.UARTIn,
		}
		t.Run(w.Name, func(t *testing.T) {
			for _, engine := range []emu.Engine{emu.EngineThreaded, emu.EngineSuperblock} {
				plain := runEngine(t, c, nil, engine)

				gp := newDiffPlatform(t, c, nil)
				gp.Machine.Engine = engine
				if stop := gp.Run(c.budget); stop.Reason != emu.StopExit {
					t.Fatalf("%v: golden stop = %+v", engine, stop)
				}
				pool := gp.Machine.BuildTBPool()

				p := newDiffPlatform(t, c, nil)
				p.Machine.Engine = engine
				p.Machine.AttachTBPool(pool)
				pooled := captureState(p, p.Run(c.budget))
				diffStates(t, fmt.Sprintf("%v pooled", engine), plain, pooled)
			}
		})
	}
}
