// Package emu implements the RV32 instruction-set emulator at the heart
// of the virtual platform — the Go replacement for QEMU in the ecosystem.
// Like QEMU it executes code a translated block at a time: straight-line
// instruction sequences are decoded once, cached, and replayed, with
// instrumentation hooks (internal/plugin) dispatched at translation,
// block, instruction and memory granularity.
package emu

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decode"
	"repro/internal/dev"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/plugin"
	"repro/internal/timing"
)

// maxTBInsts bounds translated-block length, like QEMU's TB size limit.
const maxTBInsts = 64

// jmpCacheSize is the direct-mapped TB jump cache size (power of two),
// the analog of QEMU's tb_jmp_cache sitting in front of the block map.
const jmpCacheSize = 1024

// DirtyPageShift/DirtyPageSize set the granularity of the dirty-page
// bitmap: 512-byte pages. Small enough that one scattered word costs one
// page of restore copying, large enough that the bitmap for the default
// 4 MiB platform RAM is 8192 bits (1 KiB) and a page test is one load.
const (
	DirtyPageShift = 9
	DirtyPageSize  = 1 << DirtyPageShift
)

// Engine selects how Run executes translated blocks.
type Engine uint8

const (
	// EngineThreaded (the default) compiles each translated block into a
	// chain of specialized executor closures with pre-bound operands and
	// precomputed static cycle costs, and follows block-chaining links
	// between hot blocks.
	EngineThreaded Engine = iota
	// EngineSwitch re-dispatches the decoded instructions through the
	// interpreter switch on every execution — the pre-threading baseline,
	// kept for the ablation and as a differential-testing oracle.
	EngineSwitch
	// EngineSuperblock is the threaded engine plus runtime trace fusion:
	// hot multi-block paths are flattened into single superblock
	// executors with deferred accounting and guard ops at the former
	// block boundaries (side-exiting to the threaded path on mispredict
	// or interrupt). Architecturally identical to the other engines.
	EngineSuperblock
)

func (e Engine) String() string {
	switch e {
	case EngineSwitch:
		return "switch"
	case EngineSuperblock:
		return "superblock"
	}
	return "threaded"
}

// EngineNames lists the accepted engine spellings, in the order tools
// document them. This is the single source of truth for engine-name
// validation: the CLIs and the job service all parse through
// ParseEngine, so adding an engine here is the whole change.
func EngineNames() []string { return []string{"threaded", "switch", "superblock"} }

// ParseEngine maps an engine name to its Engine value. The empty string
// selects the default (threaded) engine; an unknown name is an error
// naming the accepted spellings.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "threaded":
		return EngineThreaded, nil
	case "switch":
		return EngineSwitch, nil
	case "superblock":
		return EngineSuperblock, nil
	}
	return EngineThreaded, fmt.Errorf("unknown engine %q (threaded, switch, superblock)", name)
}

// StopReason says why Run returned.
type StopReason uint8

const (
	StopNone   StopReason = iota
	StopExit              // software requested exit via the syscon device
	StopEbreak            // ebreak with HaltOnEbreak
	StopTrap              // trap raised with no handler installed (mtvec=0)
	StopBudget            // instruction budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "running"
	case StopExit:
		return "exit"
	case StopEbreak:
		return "ebreak"
	case StopTrap:
		return "unhandled trap"
	case StopBudget:
		return "budget exhausted"
	}
	return "stop?"
}

// StopInfo describes how a run ended.
type StopInfo struct {
	Reason StopReason
	Code   uint32 // exit code for StopExit
	Cause  uint32 // trap cause for StopTrap
	Tval   uint32 // trap value for StopTrap
	PC     uint32 // PC at stop
}

func (s StopInfo) String() string {
	switch s.Reason {
	case StopExit:
		return fmt.Sprintf("exit(%d) at pc=0x%08x", s.Code, s.PC)
	case StopTrap:
		return fmt.Sprintf("unhandled trap %q tval=0x%08x at pc=0x%08x",
			isa.ExcName(s.Cause), s.Tval, s.PC)
	default:
		return fmt.Sprintf("%s at pc=0x%08x", s.Reason, s.PC)
	}
}

// tbCode is the immutable, machine-independent part of a translated
// block: the decoded metadata plus the threaded-code executor slice.
// Executors take the Machine as an argument, so compiled code carries no
// per-machine state and one tbCode can back any number of machines —
// this is the unit of sharing in a TBPool. After a tbCode has been
// published to a pool it is strictly read-only; private blocks may still
// compile their ops lazily because they are owned by one machine.
type tbCode struct {
	info plugin.BlockInfo
	end  uint32 // exclusive upper address

	// prof, ext and sub record the timing profile, ISA configuration and
	// subset allowlist the block (and its compiled executors) were
	// specialized against; a cached block is stale when any differs from
	// the machine's.
	prof *timing.Profile
	ext  isa.ExtSet
	sub  isa.OpSet

	// ops is the threaded-code form: one specialized executor per
	// instruction, compiled lazily on first threaded execution (eagerly
	// when the block is frozen into a TBPool).
	ops []opFn
}

// tb is one translated block as seen by one machine: the shared compiled
// part plus the per-machine mutable link state.
type tb struct {
	*tbCode

	// succ caches up to two successor blocks (fallthrough/taken of the
	// terminator), so hot loops chain block-to-block without touching
	// the lookup path. Severed on any invalidation. Links are strictly
	// per-machine: two workers sharing a pooled tbCode never see each
	// other's chains.
	succ [2]*tb

	// hot counts superblock-engine dispatches of this block; reaching
	// traceHotThreshold starts trace recording at this block. Strictly
	// per-machine, like the chain links.
	hot uint32

	// trace is the superblock trace entered at this block, if one has
	// been formed or adopted — the dispatch fast path, so hot blocks pay
	// no trace-map lookup. Cleared when the trace is invalidated.
	trace *traceCode

	// noTrace bans this block from trace profiling: its trace side-exited
	// far more often than it completed, so tracing it costs more than
	// plain threaded execution.
	noTrace bool

	// trRuns/trExits count completed and side-exited executions of this
	// block's trace, feeding the ban heuristic.
	trRuns, trExits uint64
}

// Machine is one emulated hart plus its bus, timing model and plugins.
type Machine struct {
	Hart cpu.Hart
	Bus  *mem.Bus

	// Profile selects the cycle model; nil means 1 cycle per instruction.
	Profile *timing.Profile

	// Clint, when non-nil, drives timer/software interrupts from the
	// cycle counter.
	Clint *dev.CLINT

	// Ext, when non-nil, drives the machine-external interrupt (MEIP)
	// from a platform interrupt controller: it is ticked with the cycle
	// counter at every interrupt poll point and its pending state is
	// mirrored into mip. All four engines share the poll points, so
	// external-interrupt delivery is engine-independent by construction.
	Ext ExtIRQ

	// Hooks is the plugin registry.
	Hooks plugin.Hooks

	// ISA restricts the accepted instruction set; executing an
	// instruction outside it raises an illegal-instruction trap, which
	// is how the platform scales across ISA-module configurations.
	ISA isa.ExtSet

	// HaltOnEbreak makes ebreak stop the machine instead of trapping.
	HaltOnEbreak bool

	// subset, when non-empty, is the instruction allowlist proven by the
	// static subset analysis (internal/subset): executing any op outside
	// it raises an illegal-instruction trap, exactly as if the op were
	// absent from the ISA — the emulation of a subset-pruned core.
	// subsetOn caches non-emptiness for the per-instruction check.
	subset   isa.OpSet
	subsetOn bool

	// DisableTBCache forces re-translation of every block (the
	// interpreter-style baseline for the translation-cache ablation).
	DisableTBCache bool

	// DisableDirtyPages turns off the dirty-page bitmap, leaving only
	// the byte-precise store watermark — the pre-bitmap baseline kept
	// for the restore-cost ablation (bench E12) and differential tests.
	// Must be set before the first load or run: the bitmap is sized when
	// the direct-RAM fast path is resolved and never allocated when the
	// flag is up.
	DisableDirtyPages bool

	// Engine selects the execution strategy; the zero value is the
	// threaded-code engine.
	Engine Engine

	stop     *StopInfo
	tbs      map[uint32]*tb
	codeLo   uint32
	codeHi   uint32
	lastLoad isa.Reg // destination of the immediately preceding load, 0 if none

	// Double-trap guard: a synchronous exception taken with no
	// instruction retired since the previous one means the installed
	// handler's own entry faults — on real hardware an unrecoverable
	// trap loop, here a deterministic StopTrap (fault campaigns over
	// handler code hit this when a bit flip corrupts the first handler
	// instruction). Instret at a precise exception is engine-exact, so
	// the guard fires identically on every engine.
	excSeen    bool
	excInstret uint64

	// pool is the attached shared translation pool (nil if none) and
	// poolGen the pool generation observed at attach time; a lookup only
	// trusts the pool while the generations still agree.
	pool    *TBPool
	poolGen uint64

	// jmp is the direct-mapped jump cache in front of the tbs map.
	jmp [jmpCacheSize]*tb

	// curTB is the block currently executing, so stores can tell whether
	// they invalidated the code under the program counter. While a
	// superblock trace executes it holds the trace's span block (covering
	// every constituent), so a store into any part of the trace forces a
	// side exit.
	curTB *tb

	// traces maps entry pc to the superblock traces this machine may
	// dispatch (privately formed or adopted from the pool's frozen tier).
	// Lazily allocated; only the superblock engine populates it.
	traces map[uint32]*traceCode

	// rec/recActive are the trace recorder: while recActive, each
	// dispatched block is appended to rec until the path closes a loop or
	// hits the length cap, at which point rec is fused into a trace.
	rec       []*tb
	recActive bool

	// sbPolled marks that a superblock guard already polled interrupts at
	// the current block boundary, so the engine loop must not poll again
	// before dispatching the next block (a double poll at an advanced
	// cycle count would be architecturally visible).
	sbPolled bool

	// codeWrites counts stores that hit translated code; the fault
	// campaign uses it to detect runs that dirtied the code region.
	codeWrites uint64

	// ram/ramBase cache the bus's largest RAM region for the threaded
	// engine's inline load/store fast path; resolved lazily.
	ram     []byte
	ramBase uint32
	ramInit bool

	// storeLo/storeHi is the RAM store watermark: the byte-precise
	// bounding box of all data stores into RAM since the last
	// ResetStoreWatermark. It is kept as a cheap summary of the dirty
	// bitmap below — a fast disjointness reject for validity checks and
	// the bound for bitmap clearing — and as the sound fallback when the
	// bitmap is unavailable (DisableDirtyPages, no direct RAM).
	storeLo uint32
	storeHi uint32

	// dirty is the page-granular dirty bitmap over the direct-RAM
	// region: bit p covers bytes [p<<DirtyPageShift, (p+1)<<DirtyPageShift)
	// relative to ramBase and is set by every store path (all four
	// engines funnel through noteRAMStore) and every host-side write
	// folded in via NoteRAMWrite/NoteRAMWriteRange. Invariant: set bits
	// always lie inside the watermark box, so ResetStoreWatermark clears
	// only the words the box covers. nil when DisableDirtyPages is set
	// or no direct RAM is mapped — consumers fall back to the watermark.
	dirty []uint64

	// stats holds the engine's lifetime performance counters. They are
	// plain (non-atomic) fields because a Machine is single-threaded;
	// the increments sit off the per-instruction path (translation,
	// invalidation, block lookup), so they stay on unconditionally.
	stats EngineStats

	// icache holds the direct-mapped I-cache tags (line address + 1;
	// zero = invalid) when the profile models one.
	icache []uint32
}

// New creates a machine on the given bus with the full ISA enabled, the
// unit timing model, and ebreak halting.
func New(bus *mem.Bus) *Machine {
	m := &Machine{
		Bus:          bus,
		ISA:          isa.RV32Full,
		HaltOnEbreak: true,
		tbs:          make(map[uint32]*tb),
		storeLo:      ^uint32(0),
	}
	m.Hart.Reset(0)
	// Host-side bulk writes (loaders, snapshot restores, injected
	// corruption) land on the bus without passing through the engine
	// store paths; the notification folds them into the watermark and
	// dirty-page bitmap so rewinds and validity checks see them.
	bus.WriteNotify = m.NoteRAMWriteRange
	return m
}

// SetSubset installs an instruction allowlist: with a non-empty set the
// machine traps (illegal instruction) on any op outside it, on every
// engine. The empty set removes the restriction. Cached translations
// are tagged with the subset they were specialized against, so changing
// it never reuses stale dispatch tables — like a profile or ISA change.
func (m *Machine) SetSubset(s isa.OpSet) {
	m.subset = s
	m.subsetOn = !s.Empty()
}

// Subset returns the installed instruction allowlist (empty when
// unrestricted).
func (m *Machine) Subset() isa.OpSet { return m.subset }

// subsetAllows is the per-instruction enforcement predicate.
func (m *Machine) subsetAllows(o isa.Op) bool {
	return !m.subsetOn || m.subset.Has(o)
}

// ensureRAM resolves the direct-RAM fast-path pointers once per machine
// and sizes the dirty-page bitmap to the region.
func (m *Machine) ensureRAM() {
	if !m.ramInit {
		m.ramBase, m.ram = m.Bus.DirectRAM()
		m.ramInit = true
		if !m.DisableDirtyPages && m.ram != nil {
			pages := (len(m.ram) + DirtyPageSize - 1) / DirtyPageSize
			m.dirty = make([]uint64, (pages+63)/64)
		}
	}
}

// noteRAMStore folds a RAM data store into the store watermark and the
// dirty-page bitmap. Callers guarantee [addr, addr+size) lies inside the
// direct-RAM region, so the page indices need no clamping; an aligned
// store touches at most two pages.
func (m *Machine) noteRAMStore(addr uint32, size uint8) {
	if addr < m.storeLo {
		m.storeLo = addr
	}
	end := addr + uint32(size)
	if end > m.storeHi {
		m.storeHi = end
	}
	if m.dirty != nil {
		p := (addr - m.ramBase) >> DirtyPageShift
		m.dirty[p>>6] |= 1 << (p & 63)
		if lp := (end - 1 - m.ramBase) >> DirtyPageShift; lp != p {
			m.dirty[lp>>6] |= 1 << (lp & 63)
		}
	}
}

// markDirtyPages sets the dirty bits for every page overlapping [lo, hi),
// clamped to the direct-RAM region (host-side writes may carry arbitrary
// addresses). The watermark is maintained by the callers.
func (m *Machine) markDirtyPages(lo, hi uint32) {
	m.ensureRAM()
	if m.dirty == nil {
		return
	}
	base := m.ramBase
	if top := base + uint32(len(m.ram)); hi > top {
		hi = top
	}
	if lo < base {
		lo = base
	}
	if lo >= hi {
		return
	}
	first := (lo - base) >> DirtyPageShift
	last := (hi - 1 - base) >> DirtyPageShift
	for p := first; p <= last; p++ {
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}

// StoreWatermark returns the address range of RAM data stores since the
// last ResetStoreWatermark; lo > hi means no stores happened.
func (m *Machine) StoreWatermark() (lo, hi uint32) { return m.storeLo, m.storeHi }

// NoteRAMWrite folds an externally performed RAM write (e.g. an injected
// bit flip) into the store watermark and the dirty-page bitmap, so
// dirty-state-based rewinds know to restore those bytes.
func (m *Machine) NoteRAMWrite(addr uint32, size uint8) {
	m.NoteRAMWriteRange(addr, addr+uint32(size))
}

// NoteRAMWriteRange folds an externally performed write of [lo, hi) into
// the store watermark and the dirty-page bitmap (host-side bulk writes
// such as a snapshot restore or the program loader, where the 255-byte
// limit of NoteRAMWrite's size would not reach).
func (m *Machine) NoteRAMWriteRange(lo, hi uint32) {
	if lo >= hi {
		return
	}
	if lo < m.storeLo {
		m.storeLo = lo
	}
	if hi > m.storeHi {
		m.storeHi = hi
	}
	m.markDirtyPages(lo, hi)
}

// ResetStoreWatermark clears the store watermark and the dirty-page
// bitmap. Since set bits always lie inside the watermark box, only the
// bitmap words the box covers are cleared — a rewind after a scattered
// run does not pay a full-bitmap clear, only a full-box one.
func (m *Machine) ResetStoreWatermark() {
	if m.dirty != nil && m.storeLo < m.storeHi {
		base := m.ramBase
		lo, hi := m.storeLo, m.storeHi
		if lo < base {
			lo = base
		}
		if top := base + uint32(len(m.ram)); hi > top {
			hi = top
		}
		if lo < hi {
			first := (lo - base) >> DirtyPageShift >> 6
			last := (hi - 1 - base) >> DirtyPageShift >> 6
			clear(m.dirty[first : last+1])
		}
	}
	m.storeLo, m.storeHi = ^uint32(0), 0
}

// DirtyOverlaps reports whether any byte of [lo, hi) may have been
// written since the last ResetStoreWatermark. The watermark box gives a
// cheap byte-precise reject; inside the box the page bitmap refines the
// answer, so a block between two scattered stores tests clean even
// though the box spans it. Without a bitmap (DisableDirtyPages, range
// outside direct RAM) the box overlap is the conservative answer.
func (m *Machine) DirtyOverlaps(lo, hi uint32) bool {
	if lo >= hi || m.storeLo >= m.storeHi || hi <= m.storeLo || lo >= m.storeHi {
		return false
	}
	if m.dirty == nil {
		return true
	}
	base := m.ramBase
	if top := base + uint32(len(m.ram)); hi > top {
		hi = top
	}
	if lo < base {
		lo = base
	}
	if lo >= hi {
		return true // outside direct RAM: the bitmap cannot attest
	}
	first := (lo - base) >> DirtyPageShift
	last := (hi - 1 - base) >> DirtyPageShift
	for p := first; p <= last; p++ {
		if m.dirty[p>>6]&(1<<(p&63)) != 0 {
			return true
		}
	}
	return false
}

// CodePagesDirty reports whether any translated block overlaps dirty
// state — the page-granular replacement for intersecting the watermark
// with the code bounding box. Scattered data stores around a code region
// no longer read as "code may be stale"; only a block whose own pages
// were written does.
func (m *Machine) CodePagesDirty() bool {
	if m.storeLo >= m.storeHi {
		return false
	}
	if m.dirty == nil {
		return m.storeLo < m.codeHi && m.codeLo < m.storeHi
	}
	for _, t := range m.tbs {
		if m.DirtyOverlaps(t.info.PC, t.end) {
			return true
		}
	}
	return false
}

// ForEachDirtyRange calls fn for each maximal run of dirty pages as an
// absolute address range, clamped to the direct-RAM region and trimmed
// to the byte-precise watermark box at the extremes (so a lone store
// costs its bytes, not its whole page). Ranges arrive in ascending
// order. Without a bitmap the single clamped watermark box is reported.
// This is the read side of the differential-restore path; it does not
// clear the state (ResetStoreWatermark does).
func (m *Machine) ForEachDirtyRange(fn func(lo, hi uint32)) {
	if m.storeLo >= m.storeHi {
		return
	}
	m.ensureRAM()
	base := m.ramBase
	wlo, whi := m.storeLo, m.storeHi
	if wlo < base {
		wlo = base
	}
	if top := base + uint32(len(m.ram)); whi > top {
		whi = top
	}
	if wlo >= whi {
		return
	}
	if m.dirty == nil {
		fn(wlo, whi)
		return
	}
	first := (wlo - base) >> DirtyPageShift
	last := (whi - 1 - base) >> DirtyPageShift
	run := int64(-1)
	for p := first; p <= last+1; p++ {
		set := p <= last && m.dirty[p>>6]&(1<<(p&63)) != 0
		if set && run < 0 {
			run = int64(p)
		}
		if !set && run >= 0 {
			lo64 := uint64(base) + uint64(run)<<DirtyPageShift
			hi64 := uint64(base) + uint64(p)<<DirtyPageShift
			if lo64 < uint64(wlo) {
				lo64 = uint64(wlo)
			}
			if hi64 > uint64(whi) {
				hi64 = uint64(whi)
			}
			if lo64 < hi64 {
				fn(uint32(lo64), uint32(hi64))
			}
			run = -1
		}
	}
}

// CodeRange returns the address range currently covered by translated
// blocks; lo > hi means the cache is empty.
func (m *Machine) CodeRange() (lo, hi uint32) { return m.codeLo, m.codeHi }

// FlushICache empties the modelled instruction cache without touching
// the translation cache (state rewinds use it so cycle counts never
// depend on what ran before).
func (m *Machine) FlushICache() { m.icache = nil }

// Reset clears architectural state and the translation cache, and boots
// at pc. A reset accompanies loading a new image, which defines the new
// pristine baseline: the store watermark and dirty-page bitmap are
// cleared (the loader's bus writes arrive through the write notification
// and must not read as mutated state afterwards), and any attached
// translation pool is detached — its blocks were compiled from the
// previous image and nothing tracks how the new one differs.
func (m *Machine) Reset(pc uint32) {
	m.Hart.Reset(pc)
	m.stop = nil
	m.excSeen = false
	m.InvalidateTBs()
	m.ResetStoreWatermark()
	m.lastLoad = 0
	m.icache = nil
	m.pool = nil
}

// icacheFetch simulates the instruction-cache lookup for one fetch and
// returns the accumulated miss penalty.
func (m *Machine) icacheFetch(pc uint32, size uint8) uint32 {
	p := m.Profile
	lb := p.ICacheLineBytes
	if m.icache == nil {
		m.icache = make([]uint32, p.ICacheLines)
	}
	var pen uint32
	first := pc &^ (lb - 1)
	last := (pc + uint32(size) - 1) &^ (lb - 1)
	for line := first; ; line += lb {
		set := line / lb % p.ICacheLines
		if m.icache[set] != line+1 {
			m.icache[set] = line + 1
			pen += p.ICacheMissPenalty
		}
		if line == last {
			break
		}
	}
	return pen
}

// RequestStop asks the machine to stop with an exit code; the syscon
// device calls this.
func (m *Machine) RequestStop(code uint32) {
	m.stop = &StopInfo{Reason: StopExit, Code: code, PC: m.Hart.PC}
}

// Stopped returns the pending stop info, if any.
func (m *Machine) Stopped() *StopInfo { return m.stop }

// ClearStop discards a pending stop so the machine can run again after a
// snapshot restore.
func (m *Machine) ClearStop() { m.stop = nil; m.excSeen = false }

// InvalidateTBs drops the translation cache and the modelled I-cache
// (fence.i and the fault injector's instruction mutations call this).
func (m *Machine) InvalidateTBs() {
	// Sever chains first: a dropped block must never be reachable through
	// a surviving (or still-executing) block's successor links.
	for _, t := range m.tbs {
		m.severChain(t)
	}
	m.stats.TBsInvalidated += uint64(len(m.tbs))
	m.tbs = make(map[uint32]*tb)
	m.codeLo, m.codeHi = ^uint32(0), 0
	m.icache = nil
	m.jmp = [jmpCacheSize]*tb{}
	m.dropAllTraces()
}

// dropAllTraces discards every superblock trace and aborts any trace
// recording in progress (full-flush invalidation path).
func (m *Machine) dropAllTraces() {
	if len(m.traces) > 0 {
		m.stats.TracesInvalidated += uint64(len(m.traces))
		m.traces = nil
	}
	m.abortRecording()
}

// dropTracesOverlapping discards the traces whose constituent range
// overlaps [lo, hi) — range-precise trace invalidation, riding the same
// store watermark machinery as block invalidation — and aborts any
// recording (a recorded block may have just been dropped).
func (m *Machine) dropTracesOverlapping(lo, hi uint32) {
	for pc, tr := range m.traces {
		if lo < tr.hi && tr.lo < hi {
			// A surviving entry block may still carry the dispatch
			// pointer; sever it or the dead trace would keep running.
			if t := m.tbs[pc]; t != nil && t.trace == tr {
				t.trace = nil
			}
			delete(m.traces, pc)
			m.stats.TracesInvalidated++
		}
	}
	m.abortRecording()
}

// abortRecording discards the in-progress trace recording, if any.
func (m *Machine) abortRecording() {
	if m.recActive {
		m.recActive = false
		m.rec = m.rec[:0]
	}
}

// InvalidateRange drops only the translated blocks overlapping [lo, hi)
// — the store-to-code path, where a full flush would retranslate the
// whole working set. All chains are severed (a surviving block may link
// to a dropped one) and the jump cache is cleared, but the modelled
// I-cache is preserved: a data store does not flush a hardware
// instruction cache, only fence.i does.
func (m *Machine) InvalidateRange(lo, hi uint32) {
	m.invalidateRange(lo, hi)
}

// invalidateRange implements InvalidateRange and additionally reports
// whether the currently executing block was dropped, so the execution
// loops know their compiled code is stale.
func (m *Machine) invalidateRange(lo, hi uint32) (hitCurrent bool) {
	m.codeWrites++
	newLo, newHi := ^uint32(0), uint32(0)
	for pc, t := range m.tbs {
		if lo < t.end && t.info.PC < hi {
			m.severChain(t)
			m.stats.TBsInvalidated++
			delete(m.tbs, pc)
			continue
		}
		m.severChain(t)
		if t.info.PC < newLo {
			newLo = t.info.PC
		}
		if t.end > newHi {
			newHi = t.end
		}
	}
	m.codeLo, m.codeHi = newLo, newHi
	m.jmp = [jmpCacheSize]*tb{}
	if len(m.traces) > 0 || m.recActive {
		m.dropTracesOverlapping(lo, hi)
	}
	return m.curTB != nil && lo < m.curTB.end && m.curTB.info.PC < hi
}

// CodeWrites returns the number of stores that hit translated code since
// machine construction. The fault campaign compares it across a mutant
// run to decide whether the translation cache survives a state restore.
func (m *Machine) CodeWrites() uint64 { return m.codeWrites }

// EngineStats are the engine's lifetime performance counters, the
// regression surface for the translation-cache and chaining machinery:
// perf PRs compare these (jump-cache hit rate in particular), not just
// wall time.
type EngineStats struct {
	// TBsCompiled counts blocks translated, including retranslations
	// after invalidation or a profile/ISA change.
	TBsCompiled uint64
	// TBsInvalidated counts cached blocks dropped by fence.i, code
	// stores, resets and full flushes.
	TBsInvalidated uint64
	// JumpCacheHits/Misses count direct-mapped jump-cache lookups; a
	// miss falls through to the block map (and possibly a translation).
	JumpCacheHits   uint64
	JumpCacheMisses uint64
	// ChainFollows counts block transitions resolved through successor
	// links, bypassing jump cache and map entirely.
	ChainFollows uint64
	// ChainsSevered counts successor links cut by invalidations.
	ChainsSevered uint64
	// PoolHits counts blocks adopted from the attached shared translation
	// pool instead of being compiled privately.
	PoolHits uint64
	// PoolMisses counts translations of a pc the attached pool does not
	// cover at all (code the golden run never reached).
	PoolMisses uint64
	// OverlayCompiles counts private translations of a pc the pool does
	// cover but could not serve — the bytes under the block were written
	// since the last pristine rewind (a code-mutating fault, a store into
	// code) or the pool generation went stale.
	OverlayCompiles uint64
	// TracesFormed counts superblock traces fused from hot block paths
	// by this machine (pool adoptions are counted separately).
	TracesFormed uint64
	// TraceBlocksFused counts constituent blocks across formed traces;
	// TraceBlocksFused/TracesFormed is the average trace length.
	TraceBlocksFused uint64
	// TraceRuns counts fully retired trace executions (every guard taken
	// end to end).
	TraceRuns uint64
	// TraceSideExits counts trace executions that left early through a
	// guard (branch mispredict, interrupt) or a mid-trace divert (trap,
	// store into the trace's own code).
	TraceSideExits uint64
	// TracesInvalidated counts traces dropped by stores into their
	// range, fence.i, resets and full flushes.
	TracesInvalidated uint64
	// TracePoolHits counts traces adopted from the attached pool's
	// frozen-superblock tier instead of being re-formed privately.
	TracePoolHits uint64
}

// TraceSideExitRate returns side exits / trace entries, or 0 with no
// trace executions — the superblock engine's quality metric (low means
// traces follow the hot path they were recorded from).
func (s EngineStats) TraceSideExitRate() float64 {
	total := s.TraceRuns + s.TraceSideExits
	if total == 0 {
		return 0
	}
	return float64(s.TraceSideExits) / float64(total)
}

// AvgTraceBlocks returns the average number of constituent blocks per
// formed trace, or 0 when none were formed.
func (s EngineStats) AvgTraceBlocks() float64 {
	if s.TracesFormed == 0 {
		return 0
	}
	return float64(s.TraceBlocksFused) / float64(s.TracesFormed)
}

// JumpCacheHitRate returns hits/(hits+misses), or 0 with no lookups.
func (s EngineStats) JumpCacheHitRate() float64 {
	total := s.JumpCacheHits + s.JumpCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.JumpCacheHits) / float64(total)
}

// Add accumulates other into s (campaign-style aggregation across
// worker machines).
func (s *EngineStats) Add(other EngineStats) {
	s.TBsCompiled += other.TBsCompiled
	s.TBsInvalidated += other.TBsInvalidated
	s.JumpCacheHits += other.JumpCacheHits
	s.JumpCacheMisses += other.JumpCacheMisses
	s.ChainFollows += other.ChainFollows
	s.ChainsSevered += other.ChainsSevered
	s.PoolHits += other.PoolHits
	s.PoolMisses += other.PoolMisses
	s.OverlayCompiles += other.OverlayCompiles
	s.TracesFormed += other.TracesFormed
	s.TraceBlocksFused += other.TraceBlocksFused
	s.TraceRuns += other.TraceRuns
	s.TraceSideExits += other.TraceSideExits
	s.TracesInvalidated += other.TracesInvalidated
	s.TracePoolHits += other.TracePoolHits
}

// Stats returns a snapshot of the engine counters.
func (m *Machine) Stats() EngineStats { return m.stats }

// severChain cuts a block's successor links, keeping the severed-link
// counter honest across every invalidation path.
func (m *Machine) severChain(t *tb) {
	if t.succ[0] != nil {
		t.succ[0] = nil
		m.stats.ChainsSevered++
	}
	if t.succ[1] != nil {
		t.succ[1] = nil
		m.stats.ChainsSevered++
	}
}

// translate builds (or fetches) the translated block starting at pc,
// consulting the private cache first, then the attached shared pool,
// then decoding from memory.
func (m *Machine) translate(pc uint32) (*tb, *mem.Fault) {
	if t, ok := m.tbs[pc]; ok && !m.DisableTBCache && t.prof == m.Profile &&
		t.ext == m.ISA && t.sub == m.subset {
		return t, nil
	}
	if t := m.poolFetch(pc); t != nil {
		return t, nil
	}
	var insts []decode.Inst
	var addrs []uint32
	addr := pc
	for len(insts) < maxTBInsts {
		lo, f := m.Bus.Fetch16(addr)
		if f != nil {
			if len(insts) == 0 {
				return nil, f
			}
			break // block ends at the edge of fetchable memory
		}
		var in decode.Inst
		if decode.IsCompressed(lo) {
			in = decode.Decode16(lo)
		} else {
			hi, f := m.Bus.Fetch16(addr + 2)
			if f != nil {
				if len(insts) == 0 {
					return nil, f
				}
				break
			}
			in = decode.Decode32(uint32(lo) | uint32(hi)<<16)
		}
		insts = append(insts, in)
		addrs = append(addrs, addr)
		if !in.Valid() || in.Op.IsControlFlow() || !in.Op.In(m.ISA) ||
			!m.subsetAllows(in.Op) {
			break // terminator: executing it traps or transfers control
		}
		if in.Op == isa.OpWFI || in.Op == isa.OpFENCEI {
			break // serializing instructions end the block
		}
		addr += uint32(in.Size)
	}
	c := &tbCode{
		info: plugin.BlockInfo{PC: pc, Insts: insts, Addrs: addrs},
		prof: m.Profile,
		ext:  m.ISA,
		sub:  m.subset,
	}
	c.end = pc + c.info.Size()
	t := &tb{tbCode: c}
	m.stats.TBsCompiled++
	if p := m.activePool(); p != nil {
		// The pool covers this pc but could not serve it (mutated bytes
		// under the block, stale generation): this translation is a
		// private overlay compile on top of the shared pool.
		if _, ok := p.blocks[pc]; ok {
			m.stats.OverlayCompiles++
		} else {
			m.stats.PoolMisses++
		}
	}
	m.install(t)
	return t, nil
}

// install publishes a block (freshly translated or adopted from the
// pool) into the private cache and the code-range bookkeeping.
func (m *Machine) install(t *tb) {
	pc := t.info.PC
	if old := m.tbs[pc]; old != nil {
		// A stale block (profile/ISA change, DisableTBCache retranslate)
		// is replaced; make sure nothing chains to it any more.
		m.severChain(old)
		m.stats.TBsInvalidated++
	}
	m.tbs[pc] = t
	if pc < m.codeLo {
		m.codeLo = pc
	}
	if t.end > m.codeHi {
		m.codeHi = t.end
	}
	m.Hooks.Translate(t.info)
}

// lookupTB returns the block at pc, consulting the jump cache before the
// block map and translating on miss. A fetch fault is turned into a trap
// and nil is returned.
func (m *Machine) lookupTB(pc uint32) *tb {
	if !m.DisableTBCache {
		slot := pc >> 1 & (jmpCacheSize - 1)
		if t := m.jmp[slot]; t != nil && t.info.PC == pc && t.prof == m.Profile &&
			t.ext == m.ISA && t.sub == m.subset {
			m.stats.JumpCacheHits++
			return t
		}
		m.stats.JumpCacheMisses++
		t, f := m.translate(pc)
		if f != nil {
			m.trap(f.Cause, f.Addr, pc)
			return nil
		}
		m.jmp[slot] = t
		return t
	}
	t, f := m.translate(pc)
	if f != nil {
		m.trap(f.Cause, f.Addr, pc)
		return nil
	}
	return t
}

// ExtIRQ is an external interrupt source (the PLIC): Tick advances it
// to the hart's cycle and Pending reports the MEIP level.
type ExtIRQ interface {
	Tick(cycle uint64)
	Pending() bool
}

// pollInterrupts syncs interrupt sources into mip and takes a pending
// interrupt if one is deliverable.
func (m *Machine) pollInterrupts() {
	h := &m.Hart
	if m.Ext != nil {
		m.Ext.Tick(h.Cycle)
		if m.Ext.Pending() {
			h.Mip |= 1 << isa.IntMachineExternal
		} else {
			h.Mip &^= 1 << isa.IntMachineExternal
		}
	}
	if m.Clint != nil {
		m.Clint.SetTime(h.Cycle)
		if m.Clint.TimerPending() {
			h.Mip |= 1 << isa.IntMachineTimer
		} else {
			h.Mip &^= 1 << isa.IntMachineTimer
		}
		if m.Clint.SoftwarePending() {
			h.Mip |= 1 << isa.IntMachineSoftware
		} else {
			h.Mip &^= 1 << isa.IntMachineSoftware
		}
	}
	if cause, ok := h.PendingInterrupt(); ok {
		m.trap(cause|1<<31, 0, h.PC)
	}
}

// trap takes a trap or stops the machine if no handler is installed.
func (m *Machine) trap(cause, tval, pc uint32) {
	h := &m.Hart
	m.Hooks.Trap(cause, tval, pc)
	if cause>>31 == 0 {
		if h.Mtvec == 0 {
			// Exceptions without a handler stop the simulation: the usual
			// configuration for bare test programs.
			m.stop = &StopInfo{Reason: StopTrap, Cause: cause, Tval: tval, PC: pc}
			return
		}
		if m.excSeen && h.Instret == m.excInstret {
			// Double trap: the handler entry itself faulted, so vectoring
			// again can only loop without retiring — stop instead.
			m.stop = &StopInfo{Reason: StopTrap, Cause: cause, Tval: tval, PC: pc}
			return
		}
		m.excSeen, m.excInstret = true, h.Instret
	}
	h.Trap(cause, tval, pc)
	if m.Profile != nil {
		h.Cycle += uint64(m.Profile.TrapPenalty)
	}
	m.lastLoad = 0
}

// Run executes until the machine stops or the instruction budget is
// exhausted. budget 0 means unlimited (dangerous with diverging code).
// The engines are architecturally equivalent: same Instret, Cycle,
// registers, memory and traps for any program.
func (m *Machine) Run(budget uint64) StopInfo {
	switch m.Engine {
	case EngineSwitch:
		return m.runSwitch(budget)
	case EngineSuperblock:
		return m.runSuperblock(budget)
	}
	return m.runThreaded(budget)
}

// runSwitch is the interpreter-switch engine: every block execution
// re-dispatches each decoded instruction through execOne's switch.
func (m *Machine) runSwitch(budget uint64) StopInfo {
	h := &m.Hart
	m.ensureRAM()
	left := budget
	for m.stop == nil {
		m.pollInterrupts()
		if m.stop != nil {
			break
		}
		t, f := m.translate(h.PC)
		if f != nil {
			m.trap(f.Cause, f.Addr, h.PC)
			continue
		}
		if m.Hooks.HasBlockHooks() {
			m.Hooks.BlockExec(t.info)
		}
		m.lastLoad = 0 // hazard state does not cross block boundaries
		m.curTB = t
		diverted := false
		for i, in := range t.info.Insts {
			if budget != 0 && left == 0 {
				m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
				break
			}
			if m.Hooks.HasInsnHooks() {
				m.Hooks.InsnExec(t.info.Addrs[i], in)
			}
			diverted = m.execOne(in)
			if budget != 0 {
				left--
			}
			if diverted || m.stop != nil {
				break
			}
		}
		m.curTB = nil
		if m.stop == nil && !diverted && budget != 0 && left == 0 {
			m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
		}
	}
	s := *m.stop
	if s.Reason == StopBudget {
		// A budget stop is resumable: clear it so Run can be called again.
		m.stop = nil
	}
	return s
}

// Step executes exactly one instruction (no block caching); the fault
// injector and debugger use it for precise control.
func (m *Machine) Step() *StopInfo {
	if m.stop != nil {
		return m.stop
	}
	m.ensureRAM()
	m.pollInterrupts()
	if m.stop != nil {
		return m.stop
	}
	h := &m.Hart
	pc := h.PC
	lo, f := m.Bus.Fetch16(pc)
	if f != nil {
		m.trap(f.Cause, f.Addr, pc)
		return m.stop
	}
	var in decode.Inst
	if decode.IsCompressed(lo) {
		in = decode.Decode16(lo)
	} else {
		hi, f := m.Bus.Fetch16(pc + 2)
		if f != nil {
			m.trap(f.Cause, f.Addr, pc)
			return m.stop
		}
		in = decode.Decode32(uint32(lo) | uint32(hi)<<16)
	}
	if m.Hooks.HasInsnHooks() {
		m.Hooks.InsnExec(pc, in)
	}
	m.execOne(in)
	return m.stop
}

// UART-style convenience: expose the translation cache size for the
// ablation benchmarks.
func (m *Machine) CachedBlocks() int { return len(m.tbs) }
