package emu_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

// bigRef evaluates the RV32 integer binary operations through math/big —
// a deliberately different computation path from the emulator's switch —
// as an independent differential oracle.
func bigRef(op isa.Op, a, b uint32) uint32 {
	sa := big.NewInt(int64(int32(a)))
	sb := big.NewInt(int64(int32(b)))
	ua := new(big.Int).SetUint64(uint64(a))
	ub := new(big.Int).SetUint64(uint64(b))
	low32 := func(x *big.Int) uint32 {
		m := new(big.Int).And(x, big.NewInt(0xffffffff))
		return uint32(m.Uint64())
	}
	switch op {
	case isa.OpADD:
		return low32(new(big.Int).Add(ua, ub))
	case isa.OpSUB:
		return low32(new(big.Int).Sub(ua, ub))
	case isa.OpAND:
		return low32(new(big.Int).And(ua, ub))
	case isa.OpOR:
		return low32(new(big.Int).Or(ua, ub))
	case isa.OpXOR:
		return low32(new(big.Int).Xor(ua, ub))
	case isa.OpSLL:
		return low32(new(big.Int).Lsh(ua, uint(b&31)))
	case isa.OpSRL:
		return low32(new(big.Int).Rsh(ua, uint(b&31)))
	case isa.OpSRA:
		return low32(new(big.Int).Rsh(sa, uint(b&31)))
	case isa.OpSLT:
		if sa.Cmp(sb) < 0 {
			return 1
		}
		return 0
	case isa.OpSLTU:
		if ua.Cmp(ub) < 0 {
			return 1
		}
		return 0
	case isa.OpMUL:
		return low32(new(big.Int).Mul(ua, ub))
	case isa.OpMULH:
		return low32(new(big.Int).Rsh(new(big.Int).Mul(sa, sb), 32))
	case isa.OpMULHU:
		return low32(new(big.Int).Rsh(new(big.Int).Mul(ua, ub), 32))
	case isa.OpMULHSU:
		return low32(new(big.Int).Rsh(new(big.Int).Mul(sa, ub), 32))
	case isa.OpDIV:
		if b == 0 {
			return 0xffffffff
		}
		q := new(big.Int).Quo(sa, sb) // truncating division
		return low32(q)
	case isa.OpDIVU:
		if b == 0 {
			return 0xffffffff
		}
		return low32(new(big.Int).Div(ua, ub))
	case isa.OpREM:
		if b == 0 {
			return a
		}
		return low32(new(big.Int).Rem(sa, sb))
	case isa.OpREMU:
		if b == 0 {
			return a
		}
		return low32(new(big.Int).Mod(ua, ub))
	}
	panic("unhandled op " + op.String())
}

// TestALUDifferentialAgainstBig cross-checks every integer binary op
// against the math/big oracle on random and corner-case operand pairs by
// actually executing the instruction on the platform.
func TestALUDifferentialAgainstBig(t *testing.T) {
	ops := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
		isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU,
		isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
	}
	corners := []uint32{0, 1, 2, 31, 32, 0x7fffffff, 0x80000000, 0xffffffff, 0xfffffffe}
	rng := rand.New(rand.NewSource(31))

	var pairs [][2]uint32
	for _, a := range corners {
		for _, b := range corners {
			pairs = append(pairs, [2]uint32{a, b})
		}
	}
	for i := 0; i < 60; i++ {
		pairs = append(pairs, [2]uint32{rng.Uint32(), rng.Uint32()})
	}

	for _, op := range ops {
		// One program per op evaluating every pair and storing results.
		src := vp.Prelude + "_start:\n\tla s2, out\n"
		for _, pr := range pairs {
			src += fmt.Sprintf("\tli a1, %d\n\tli a2, %d\n\t%s a3, a1, a2\n\tsw a3, 0(s2)\n\taddi s2, s2, 4\n",
				int32(pr[0]), int32(pr[1]), op)
		}
		src += "\tebreak\n\t.align 4\nout:\t.space " + fmt.Sprint(4*len(pairs)) + "\n"

		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := p.LoadSource(src)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
			t.Fatalf("%v: %v", op, stop)
		}
		out := prog.Symbols["out"]
		for i, pr := range pairs {
			data, err := p.Machine.Bus.ReadBytes(out+uint32(4*i), 4)
			if err != nil {
				t.Fatal(err)
			}
			got := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
			want := bigRef(op, pr[0], pr[1])
			if got != want {
				t.Errorf("%v(0x%08x, 0x%08x) = 0x%08x, big oracle says 0x%08x",
					op, pr[0], pr[1], got, want)
			}
		}
	}
}
