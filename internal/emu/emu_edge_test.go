package emu_test

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/timing"
	"repro/internal/vp"
)

func TestJALRClearsBitZero(t *testing.T) {
	// jalr must clear bit 0 of the computed target (the spec's &~1).
	p := runExpectEbreak(t, `
		la t0, target
		addi t0, t0, 1      # odd address
		jalr ra, 0(t0)
		ebreak              # skipped
target:
		li s0, 7
		ebreak
	`)
	if reg(p, isa.S0) != 7 {
		t.Error("jalr did not mask bit 0")
	}
}

func TestJumpToHalfwordAlignedIsLegal(t *testing.T) {
	// With the C extension implemented, 2-byte aligned targets are legal.
	p := runExpectEbreak(t, `
		la t0, target
		jr t0
		.align 2
		c.nop               # make 'target' 2-byte aligned
target:
		li s0, 3
		ebreak
	`)
	_ = p // reaching ebreak is the assertion
}

func TestFetchFromUnmappedTraps(t *testing.T) {
	_, stop := run(t, `
		li t0, 0x40000000
		jr t0
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcInstAccessFault {
		t.Errorf("stop = %v", stop)
	}
	if stop.Tval != 0x4000_0000 {
		t.Errorf("tval = 0x%x", stop.Tval)
	}
}

func TestCSRReadOnlyWriteTraps(t *testing.T) {
	// csrr (csrrs with rs1=x0) of a read-only counter is legal...
	p := runExpectEbreak(t, `
		csrr a0, cycle
		ebreak
	`)
	_ = p
	// ...but any write form to a read-only CSR is an illegal instruction.
	_, stop := run(t, `
		csrrs a0, cycle, a1
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("stop = %v", stop)
	}
	_, stop = run(t, `
		csrw mhartid, a0
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("mhartid write: %v", stop)
	}
}

func TestUnimplementedCSRTraps(t *testing.T) {
	_, stop := run(t, `
		csrr a0, 0x123
	`)
	if stop.Reason != emu.StopTrap || stop.Cause != isa.ExcIllegalInst {
		t.Errorf("stop = %v", stop)
	}
}

func TestVectoredInterruptDispatch(t *testing.T) {
	p := runExpectEbreak(t, `
		la t0, vtable
		ori t0, t0, 1       # vectored mode
		csrw mtvec, t0
		# arm the timer
		li t1, CLINT_MTIME
		lw t2, 0(t1)
		addi t2, t2, 50
		li t1, CLINT_MTIMECMP
		sw t2, 0(t1)
		sw zero, 4(t1)
		li t3, 128          # MTIE
		csrw mie, t3
		csrsi mstatus, 8
		li s0, 0
1:		beqz s0, 1b
		ebreak

		.align 4
vtable:
		j bad               # cause 0
		j bad               # 1
		j bad               # 2
		j bad               # 3 (software would land here +12)
		j bad               # 4
		j bad               # 5
		j bad               # 6
		j timer             # 7 = machine timer
bad:
		li s0, 99
		csrw mie, zero
		mret
timer:
		li s0, 1
		csrw mie, zero
		mret
	`)
	if reg(p, isa.S0) != 1 {
		t.Errorf("vectored dispatch landed wrong: s0=%d", reg(p, isa.S0))
	}
}

func TestTrapSavesAndRestoresMIE(t *testing.T) {
	p := runExpectEbreak(t, `
		la t0, handler
		csrw mtvec, t0
		csrsi mstatus, 8    # MIE on
		ecall
		# after mret MIE must be restored
		csrr s1, mstatus
		andi s1, s1, 8
		ebreak
handler:
		# inside the handler MIE must be off, MPIE on
		csrr s0, mstatus
		csrr t2, mepc
		addi t2, t2, 4
		csrw mepc, t2
		mret
	`)
	if reg(p, isa.S0)&8 != 0 {
		t.Error("MIE not cleared inside handler")
	}
	if reg(p, isa.S0)&0x80 == 0 {
		t.Error("MPIE not saved")
	}
	if reg(p, isa.S1) != 8 {
		t.Error("MIE not restored by mret")
	}
}

func TestLongStraightLineCrossesTBLimit(t *testing.T) {
	// 200 sequential addis exceed the 64-instruction TB limit; execution
	// must chain blocks transparently.
	var sb strings.Builder
	sb.WriteString("li a0, 0\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("addi a0, a0, 1\n")
	}
	sb.WriteString("ebreak\n")
	p := runExpectEbreak(t, sb.String())
	if reg(p, isa.A0) != 200 {
		t.Errorf("a0 = %d", reg(p, isa.A0))
	}
	if p.Machine.CachedBlocks() < 3 {
		t.Errorf("expected several chained TBs, got %d", p.Machine.CachedBlocks())
	}
}

func TestLoadUseStallCycles(t *testing.T) {
	prof := timing.EdgeSmall()
	cycles := func(src string) uint64 {
		p, err := vp.New(vp.Config{Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.LoadSource(vp.Prelude + src); err != nil {
			t.Fatal(err)
		}
		if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
			t.Fatalf("stop: %v", stop)
		}
		return p.Machine.Hart.Cycle
	}
	dependent := cycles(`
		la a0, buf
		lw a1, 0(a0)
		add a2, a1, a1      # load-use
		ebreak
buf:	.word 1
	`)
	independent := cycles(`
		la a0, buf
		lw a1, 0(a0)
		add a2, a3, a3      # no dependency
		ebreak
buf:	.word 1
	`)
	if dependent != independent+uint64(prof.LoadUseStall) {
		t.Errorf("dependent %d vs independent %d (stall %d)",
			dependent, independent, prof.LoadUseStall)
	}
}

func TestDisableTBCacheSameResults(t *testing.T) {
	src := vp.Prelude + `
		li a0, 50
		li a1, 0
1:		add a1, a1, a0
		addi a0, a0, -1
		bnez a0, 1b
		ebreak
	`
	runWith := func(disable bool) (uint32, uint64) {
		p, _ := vp.New(vp.Config{Profile: timing.EdgeSmall()})
		p.Machine.DisableTBCache = disable
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		if stop := p.Run(10000); stop.Reason != emu.StopEbreak {
			t.Fatalf("stop: %v", stop)
		}
		return p.Machine.Hart.Reg(isa.A1), p.Machine.Hart.Cycle
	}
	a1, c1 := runWith(false)
	a2, c2 := runWith(true)
	if a1 != a2 || c1 != c2 {
		t.Errorf("TB-cache ablation changed results: %d/%d vs %d/%d", a1, c1, a2, c2)
	}
}

func TestMIPSoftwareBitWithoutCLINT(t *testing.T) {
	// Without a CLINT the software-interrupt pending bit is directly
	// CSR-writable (useful for self-raised interrupts in tests).
	p := runExpectEbreak(t, `
		la t0, handler
		csrw mtvec, t0
		li t1, 8            # MSIE
		csrw mie, t1
		li s0, 0
		csrsi mip, 8        # raise MSIP by CSR write... requires no clint
		csrsi mstatus, 8
		nop
		ebreak
handler:
		li s0, 1
		csrci mip, 8
		mret
	`)
	// The platform wires a CLINT, which overrides mip.MSIP on every
	// poll; so here the interrupt must NOT fire and s0 stays 0.
	if reg(p, isa.S0) != 0 {
		t.Error("CLINT-present platform must derive MSIP from the CLINT, not the CSR")
	}
}

func TestEbreakTrapsWhenNotHalting(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.Machine.HaltOnEbreak = false
	if _, err := p.LoadSource(vp.Prelude + `
		la t0, handler
		csrw mtvec, t0
		li s0, 0
		ebreak
		j done
handler:
		li s0, 1
		csrr t1, mepc
		addi t1, t1, 4
		csrw mepc, t1
		mret
done:
		li a0, 0
		li t6, SYSCON_EXIT
		sw a0, 0(t6)
	`); err != nil {
		t.Fatal(err)
	}
	stop := p.Run(1000)
	if stop.Reason != emu.StopExit {
		t.Fatalf("stop = %v", stop)
	}
	if p.Machine.Hart.Reg(isa.S0) != 1 {
		t.Error("ebreak did not reach the breakpoint handler")
	}
	if p.Machine.Hart.Mcause != isa.ExcBreakpoint {
		t.Errorf("mcause = %d", p.Machine.Hart.Mcause)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p, _ := vp.New(vp.Config{})
	p.LoadSource("li a0, 5\nebreak\n")
	p.Run(100)
	p.Machine.Reset(vp.RAMBase)
	h := &p.Machine.Hart
	if h.Reg(isa.A0) != 0 || h.Cycle != 0 || h.Instret != 0 || h.PC != vp.RAMBase {
		t.Errorf("reset incomplete: %+v", h)
	}
	if p.Machine.Stopped() != nil {
		t.Error("stop not cleared by reset")
	}
}

func TestICacheLocality(t *testing.T) {
	// With the I-cache model, a loop's second iteration hits in cache:
	// total cycles must be far below the all-miss static assumption and
	// above the cache-less dynamic time.
	src := vp.Prelude + `
		li a0, 100
1:		addi a0, a0, -1
		bnez a0, 1b
		ebreak
	`
	cycles := func(prof *timing.Profile) uint64 {
		p, _ := vp.New(vp.Config{Profile: prof})
		if _, err := p.LoadSource(src); err != nil {
			t.Fatal(err)
		}
		if stop := p.Run(10000); stop.Reason != emu.StopEbreak {
			t.Fatalf("stop: %v", stop)
		}
		return p.Machine.Hart.Cycle
	}
	plain := cycles(timing.EdgeSmall())
	cached := cycles(timing.EdgeCache())
	if cached <= plain {
		t.Errorf("I-cache misses should add cycles: %d vs %d", cached, plain)
	}
	// 100 iterations over one line: roughly one miss total, so the
	// cached run must cost much less than one miss per iteration.
	missBound := plain + 100*uint64(timing.EdgeCache().ICacheMissPenalty)
	if cached >= missBound {
		t.Errorf("no locality: %d cycles >= all-miss bound %d", cached, missBound)
	}
}
