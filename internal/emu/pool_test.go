package emu_test

import (
	"sync"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

// poolProg is a small loop with several basic blocks, so a pool built
// from it holds more than one block.
const poolProg = `
	li a1, 50
	li a0, 0
loop:
	add a0, a0, a1
	addi a1, a1, -1
	bnez a1, loop
	ebreak
`

// poolPlatform builds a loaded platform without running it; the pool (if
// any) must be attached after the load, since Reset detaches it.
func poolPlatform(t *testing.T, src string) *vp.Platform {
	t.Helper()
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadSource(vp.Prelude + src); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildPool runs src on a donor platform and freezes its translations.
func buildPool(t *testing.T, src string) *emu.TBPool {
	t.Helper()
	donor := poolPlatform(t, src)
	if stop := donor.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("donor run: %v", stop)
	}
	pool := donor.Machine.BuildTBPool()
	if pool.Size() == 0 {
		t.Fatal("donor produced an empty pool")
	}
	return pool
}

// TestTBPoolAdoption: a machine attached to a pool covering its whole
// working set executes correctly without compiling a single block.
func TestTBPoolAdoption(t *testing.T) {
	pool := buildPool(t, poolProg)

	p := poolPlatform(t, poolProg)
	p.Machine.AttachTBPool(pool)
	if !p.Machine.TBPoolAttached() {
		t.Fatal("pool not attached")
	}
	if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("consumer run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 1275 {
		t.Errorf("a0 = %d, want 1275", got)
	}
	st := p.Machine.Stats()
	if st.TBsCompiled != 0 {
		t.Errorf("consumer compiled %d blocks, want 0 (all adopted)", st.TBsCompiled)
	}
	if st.PoolHits == 0 {
		t.Error("no pool hits recorded")
	}
	if st.PoolHits != uint64(p.Machine.CachedBlocks()) {
		t.Errorf("pool hits %d != cached blocks %d", st.PoolHits, p.Machine.CachedBlocks())
	}
}

// TestTBPoolOverlayOnMutatedCode: when a byte under a pooled block is
// changed (a code-mutating fault), the machine must not adopt the stale
// pooled block — it takes a private overlay compile of the current bytes
// and the mutated behaviour is observed.
func TestTBPoolOverlayOnMutatedCode(t *testing.T) {
	const src = `
	li a0, 5
	ebreak
`
	pool := buildPool(t, src)

	p := poolPlatform(t, src)
	p.Machine.AttachTBPool(pool)
	// Flip imm bit 0 of the first instruction: addi a0,x0,5 (0x00500513)
	// becomes addi a0,x0,4. The flip bypasses the store path, so fold it
	// into the watermark by hand, exactly as the fault injector does.
	ram := p.RAM.Bytes()
	ram[2] ^= 0x10
	p.Machine.NoteRAMWrite(vp.RAMBase+2, 1)

	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("mutated run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 4 {
		t.Errorf("a0 = %d, want 4 (mutated bytes must win over pooled block)", got)
	}
	st := p.Machine.Stats()
	if st.OverlayCompiles == 0 {
		t.Error("no overlay compile recorded for the mutated range")
	}
}

// TestTBPoolGenerationInvalidate: after Invalidate, attached machines
// stop adopting (generation mismatch) and fall back to private compiles,
// still producing the correct result.
func TestTBPoolGenerationInvalidate(t *testing.T) {
	pool := buildPool(t, poolProg)
	gen := pool.Generation()
	pool.Invalidate()
	if pool.Generation() == gen {
		t.Fatal("generation did not advance")
	}

	p := poolPlatform(t, poolProg)
	p.Machine.AttachTBPool(pool)
	if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 1275 {
		t.Errorf("a0 = %d, want 1275", got)
	}
	st := p.Machine.Stats()
	if st.PoolHits != 0 {
		t.Errorf("adopted %d blocks from an invalidated pool", st.PoolHits)
	}
	if st.TBsCompiled == 0 {
		t.Error("expected private compiles after pool invalidation")
	}
}

// TestTBPoolSwitchEngineAdoption: pooled blocks carry precompiled
// threaded ops but are adoptable by either engine — the decoded metadata
// drives the switch interpreter unchanged.
func TestTBPoolSwitchEngineAdoption(t *testing.T) {
	pool := buildPool(t, poolProg) // donor ran the default threaded engine

	p := poolPlatform(t, poolProg)
	p.Machine.Engine = emu.EngineSwitch
	p.Machine.AttachTBPool(pool)
	if stop := p.Run(1_000_000); stop.Reason != emu.StopEbreak {
		t.Fatalf("switch-engine run: %v", stop)
	}
	if got := p.Machine.Hart.Reg(isa.A0); got != 1275 {
		t.Errorf("a0 = %d, want 1275", got)
	}
	if st := p.Machine.Stats(); st.PoolHits == 0 {
		t.Error("switch engine did not adopt from the pool")
	}
}

// TestTBPoolConcurrentAdoption exercises the read-only sharing contract
// under the race detector: many machines adopt from one pool at once.
func TestTBPoolConcurrentAdoption(t *testing.T) {
	pool := buildPool(t, poolProg)

	const n = 8
	var wg sync.WaitGroup
	results := make([]uint32, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := vp.New(vp.Config{})
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := p.LoadSource(vp.Prelude + poolProg); err != nil {
				errs[i] = err
				return
			}
			p.Machine.AttachTBPool(pool)
			p.Run(1_000_000)
			results[i] = p.Machine.Hart.Reg(isa.A0)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != 1275 {
			t.Errorf("worker %d: a0 = %d, want 1275", i, results[i])
		}
	}
}

// TestBuildTBPoolSkipsDirtyBlocks: blocks translated from bytes the
// donor itself wrote (self-modifying code) must not be published — other
// machines boot the pristine image, which those blocks do not match.
func TestBuildTBPoolSkipsDirtyBlocks(t *testing.T) {
	const selfMod = `
	la t0, patch
	li t1, 0x00100073   # ebreak encoding
	sw t1, 0(t0)
	la t2, patch
	jr t2
patch:
	.word 0             # overwritten with ebreak at run time
`
	donor := poolPlatform(t, selfMod)
	if stop := donor.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("donor run: %v", stop)
	}
	pool := donor.Machine.BuildTBPool()
	if pool.Size() >= donor.Machine.CachedBlocks() {
		t.Errorf("pool published %d blocks, donor cached %d: the patched block must be skipped",
			pool.Size(), donor.Machine.CachedBlocks())
	}
}

// TestResetDetachesPool: Reset (a fresh program load) must drop the pool
// attachment — the new image has no relation to the pooled one.
func TestResetDetachesPool(t *testing.T) {
	pool := buildPool(t, poolProg)
	p := poolPlatform(t, poolProg)
	p.Machine.AttachTBPool(pool)
	if _, err := p.LoadSource(vp.Prelude + poolProg); err != nil { // LoadSource calls Reset
		t.Fatal(err)
	}
	if p.Machine.TBPoolAttached() {
		t.Error("pool still attached after Reset")
	}
}
