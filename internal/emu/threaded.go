package emu

import (
	"math/bits"

	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/timing"
)

// This file implements the threaded-code execution engine: each
// translated block is compiled (lazily, on first threaded execution)
// into a slice of specialized executor closures, one per instruction,
// with operands, sign-extended immediates, the next PC and the static
// cycle cost pre-bound at compile time. The hot loop is then an
// indirect-call chain instead of decode-field reloads through execOne's
// switch, and hot block-to-block transitions follow cached successor
// links (block chaining) or hit the direct-mapped jump cache instead of
// the block map.
//
// Equivalence contract: for every program, the threaded engine produces
// exactly the same architectural state trajectory as the switch engine —
// same registers, memory, Instret, Cycle, traps and stop info. Anything
// the compiler cannot specialize while keeping that guarantee (CSR ops,
// FP ops, system ops, operand-dependent early-out mul/div costs, and
// all instructions under an I-cache profile, whose fetch cost is
// inherently dynamic) falls back to execOne per instruction.

// opFn executes one compiled instruction. It returns true when control
// flow diverted from straight-line execution (branch taken, jump, trap,
// serialization, or a stop request), mirroring execOne's contract.
type opFn func(m *Machine) bool

// retire finishes a non-diverting instruction: counters, cycle charge,
// PC advance, and hazard-state clear (loads bypass this and set their
// own lastLoad).
func (m *Machine) retire(cost, next uint32) bool {
	m.lastLoad = 0
	h := &m.Hart
	h.Instret++
	h.Cycle += uint64(cost)
	h.PC = next
	return false
}

// retireTo finishes a diverting instruction (taken branch, jump).
func (m *Machine) retireTo(cost, target uint32) bool {
	m.lastLoad = 0
	h := &m.Hart
	h.Instret++
	h.Cycle += uint64(cost)
	h.PC = target
	return true
}

// runThreaded is the threaded-code engine loop.
func (m *Machine) runThreaded(budget uint64) StopInfo {
	h := &m.Hart
	m.ensureRAM()
	left := budget
	var cur, prev *tb
	for m.stop == nil {
		// Interrupts are polled once per block, exactly like the switch
		// engine; chaining must not skip this or a wfi-less wait loop
		// would never observe its timer interrupt.
		m.pollInterrupts()
		if m.stop != nil {
			break
		}
		pc := h.PC
		if cur == nil || cur.info.PC != pc {
			// No chain link, or an interrupt redirected the PC.
			cur = m.lookupTB(pc)
			if cur == nil {
				prev = nil
				continue // fetch fault became a trap or a stop
			}
			if prev != nil && !m.DisableTBCache {
				prev.succ[1], prev.succ[0] = prev.succ[0], cur
			}
		}
		if cur.ops == nil {
			cur.tbCode.compile()
		}
		if m.Hooks.HasBlockHooks() {
			m.Hooks.BlockExec(cur.info)
		}
		m.lastLoad = 0 // hazard state does not cross block boundaries
		m.curTB = cur
		if budget == 0 && !m.Hooks.HasInsnHooks() {
			// Fast path: no budget accounting, no per-insn hooks.
			// Executors return true on any stop, so this loop is safe.
			for _, fn := range cur.ops {
				if fn(m) {
					break
				}
			}
		} else {
			diverted := false
			for i, fn := range cur.ops {
				if budget != 0 && left == 0 {
					m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
					break
				}
				if m.Hooks.HasInsnHooks() {
					m.Hooks.InsnExec(cur.info.Addrs[i], cur.info.Insts[i])
				}
				diverted = fn(m)
				if budget != 0 {
					left--
				}
				if diverted || m.stop != nil {
					break
				}
			}
			if m.stop == nil && !diverted && budget != 0 && left == 0 {
				m.stop = &StopInfo{Reason: StopBudget, PC: h.PC}
			}
		}
		m.curTB = nil
		if m.stop != nil {
			break
		}
		prev = cur
		npc := h.PC
		switch {
		case m.chainOK(cur.succ[0], npc):
			cur = cur.succ[0]
			m.stats.ChainFollows++
		case m.chainOK(cur.succ[1], npc):
			cur = cur.succ[1]
			m.stats.ChainFollows++
		default:
			cur = nil
		}
	}
	s := *m.stop
	if s.Reason == StopBudget {
		// A budget stop is resumable: clear it so Run can be called again.
		m.stop = nil
	}
	return s
}

// chainOK validates a successor link before following it: the block must
// start at the new PC and match the machine's current specialization.
func (m *Machine) chainOK(t *tb, pc uint32) bool {
	return t != nil && t.info.PC == pc && t.prof == m.Profile &&
		t.ext == m.ISA && t.sub == m.subset
}

// compile builds the threaded-code form of a block: the per-instruction
// executor slice plus the precomputed static cycle plan. Compilation is
// deterministic in the block's bytes and specialization, and executors
// take the machine as an argument, so the result is machine-independent
// — the property the shared translation pool relies on. Only the owning
// machine may call this (lazily) on a private block; pooled blocks are
// compiled once, before publication.
func (c *tbCode) compile() {
	insts := c.info.Insts
	ops := make([]opFn, len(insts))
	var costs []uint32
	var dyn []bool
	icache := false
	if c.prof != nil {
		costs, dyn = c.prof.StaticPlan(insts)
		icache = c.prof.HasICache()
	}
	for i, in := range insts {
		if icache || (dyn != nil && dyn[i]) {
			// Operand-dependent (early-out mul/div) or fetch-dependent
			// (I-cache) cycle cost: keep the fully dynamic interpretation.
			ops[i] = fallbackOp(in)
			continue
		}
		cost := uint32(1)
		if costs != nil {
			cost = costs[i]
		}
		ops[i] = compileOp(in, c.info.Addrs[i], cost, c.prof, c.ext, c.sub)
	}
	c.ops = ops
}

// fallbackOp interprets one instruction through execOne, for everything
// the compiler does not specialize. The stop check keeps the engine's
// fast block loop (which only tests the return value) correct.
func fallbackOp(in decode.Inst) opFn {
	return func(m *Machine) bool {
		return m.execOne(in) || m.stop != nil
	}
}

// nopOp retires an instruction with no architectural effect (fence, wfi,
// and any specialized op whose destination is x0).
func nopOp(cost, next uint32) opFn {
	return func(m *Machine) bool { return m.retire(cost, next) }
}

func jumpPen(p *timing.Profile) uint32 {
	if p == nil {
		return 0
	}
	return p.JumpPenalty
}

func branchPen(p *timing.Profile) uint32 {
	if p == nil {
		return 0
	}
	return p.BranchTakenPenalty
}

// binOps is the long tail of register-register operations, executed via
// one generic executor shape. The hottest ops get dedicated closures in
// compileOp instead. Unary ops ignore their second operand.
var binOps = map[isa.Op]func(a, b uint32) uint32{
	isa.OpMULH: func(a, b uint32) uint32 {
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	},
	isa.OpMULHSU: func(a, b uint32) uint32 {
		return uint32(uint64(int64(int32(a))*int64(b)) >> 32)
	},
	isa.OpMULHU: func(a, b uint32) uint32 {
		return uint32(uint64(a) * uint64(b) >> 32)
	},
	isa.OpDIV: func(a, b uint32) uint32 {
		switch {
		case b == 0:
			return 0xffffffff
		case a == 0x80000000 && b == 0xffffffff:
			return 0x80000000 // overflow
		default:
			return uint32(int32(a) / int32(b))
		}
	},
	isa.OpDIVU: func(a, b uint32) uint32 {
		if b == 0 {
			return 0xffffffff
		}
		return a / b
	},
	isa.OpREM: func(a, b uint32) uint32 {
		switch {
		case b == 0:
			return a
		case a == 0x80000000 && b == 0xffffffff:
			return 0
		default:
			return uint32(int32(a) % int32(b))
		}
	},
	isa.OpREMU: func(a, b uint32) uint32 {
		if b == 0 {
			return a
		}
		return a % b
	},
	isa.OpANDN: func(a, b uint32) uint32 { return a &^ b },
	isa.OpORN:  func(a, b uint32) uint32 { return a | ^b },
	isa.OpXNOR: func(a, b uint32) uint32 { return ^(a ^ b) },
	isa.OpCLZ:  func(a, _ uint32) uint32 { return uint32(bits.LeadingZeros32(a)) },
	isa.OpCTZ:  func(a, _ uint32) uint32 { return uint32(bits.TrailingZeros32(a)) },
	isa.OpCPOP: func(a, _ uint32) uint32 { return uint32(bits.OnesCount32(a)) },
	isa.OpSEXTB: func(a, _ uint32) uint32 {
		return uint32(int32(a) << 24 >> 24)
	},
	isa.OpSEXTH: func(a, _ uint32) uint32 {
		return uint32(int32(a) << 16 >> 16)
	},
	isa.OpZEXTH: func(a, _ uint32) uint32 { return a & 0xffff },
	isa.OpMIN:   minS,
	isa.OpMAX:   maxS,
	isa.OpMINU:  func(a, b uint32) uint32 { return min(a, b) },
	isa.OpMAXU:  func(a, b uint32) uint32 { return max(a, b) },
	isa.OpROL: func(a, b uint32) uint32 {
		return bits.RotateLeft32(a, int(b&31))
	},
	isa.OpROR: func(a, b uint32) uint32 {
		return bits.RotateLeft32(a, -int(b&31))
	},
	isa.OpREV8: func(a, _ uint32) uint32 { return bits.ReverseBytes32(a) },
	isa.OpORCB: func(a, _ uint32) uint32 { return orcb(a) },
	isa.OpBSET: func(a, b uint32) uint32 { return a | 1<<(b&31) },
	isa.OpBCLR: func(a, b uint32) uint32 { return a &^ (1 << (b & 31)) },
	isa.OpBINV: func(a, b uint32) uint32 { return a ^ 1<<(b&31) },
	isa.OpBEXT: func(a, b uint32) uint32 { return a >> (b & 31) & 1 },
}

// compileOp builds the specialized executor for one instruction. cost is
// the precomputed static cycle cost (base + intra-block load-use stall);
// control-transfer penalties are folded in here. sub is the subset
// allowlist the block is specialized against: a disallowed op keeps the
// dynamic interpretation, which raises the illegal-instruction trap.
func compileOp(in decode.Inst, pc, cost uint32, prof *timing.Profile, ext isa.ExtSet, sub isa.OpSet) opFn {
	if !in.Valid() || !in.Op.In(ext) || !sub.Allows(in.Op) {
		return fallbackOp(in) // traps as illegal, exactly like execOne
	}
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	immU := uint32(in.Imm)
	next := pc + uint32(in.Size)

	switch in.Op {
	case isa.OpLUI, isa.OpCLUI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		v := immU
		return func(m *Machine) bool {
			m.Hart.X[rd] = v
			return m.retire(cost, next)
		}
	case isa.OpAUIPC:
		if rd == 0 {
			return nopOp(cost, next)
		}
		v := pc + immU
		return func(m *Machine) bool {
			m.Hart.X[rd] = v
			return m.retire(cost, next)
		}

	case isa.OpJAL, isa.OpCJAL, isa.OpCJ:
		target := pc + immU
		if target&1 != 0 {
			return fallbackOp(in) // misaligned target: trap via execOne
		}
		jcost := cost + jumpPen(prof)
		if rd == 0 {
			return func(m *Machine) bool {
				return m.retireTo(jcost, target)
			}
		}
		return func(m *Machine) bool {
			m.Hart.X[rd] = next
			return m.retireTo(jcost, target)
		}
	case isa.OpJALR, isa.OpCJR, isa.OpCJALR:
		jcost := cost + jumpPen(prof)
		if rd == 0 {
			return func(m *Machine) bool {
				target := (m.Hart.Reg(rs1) + immU) &^ 1
				return m.retireTo(jcost, target)
			}
		}
		return func(m *Machine) bool {
			h := &m.Hart
			// Read rs1 before the link write: rd may alias rs1.
			target := (h.Reg(rs1) + immU) &^ 1
			h.X[rd] = next
			return m.retireTo(jcost, target)
		}

	case isa.OpBEQ, isa.OpCBEQZ, isa.OpBNE, isa.OpCBNEZ,
		isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		target := pc + immU
		if target&1 != 0 {
			return fallbackOp(in) // misaligned taken-target: trap via execOne
		}
		tcost := cost + branchPen(prof)
		switch in.Op {
		case isa.OpBEQ, isa.OpCBEQZ:
			return func(m *Machine) bool {
				h := &m.Hart
				if h.Reg(rs1) == h.Reg(rs2) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		case isa.OpBNE, isa.OpCBNEZ:
			return func(m *Machine) bool {
				h := &m.Hart
				if h.Reg(rs1) != h.Reg(rs2) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		case isa.OpBLT:
			return func(m *Machine) bool {
				h := &m.Hart
				if int32(h.Reg(rs1)) < int32(h.Reg(rs2)) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		case isa.OpBGE:
			return func(m *Machine) bool {
				h := &m.Hart
				if int32(h.Reg(rs1)) >= int32(h.Reg(rs2)) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		case isa.OpBLTU:
			return func(m *Machine) bool {
				h := &m.Hart
				if h.Reg(rs1) < h.Reg(rs2) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		default: // OpBGEU
			return func(m *Machine) bool {
				h := &m.Hart
				if h.Reg(rs1) >= h.Reg(rs2) {
					return m.retireTo(tcost, target)
				}
				return m.retire(cost, next)
			}
		}

	case isa.OpLW, isa.OpCLW, isa.OpCLWSP:
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			off := uint64(addr - m.ramBase)
			var v uint32
			if addr&3 == 0 && off+4 <= uint64(len(m.ram)) && !m.Hooks.HasMemHooks() {
				r := m.ram[off : off+4 : off+4]
				v = uint32(r[0]) | uint32(r[1])<<8 | uint32(r[2])<<16 | uint32(r[3])<<24
			} else {
				var ok bool
				if v, ok = m.memLoad(pc, addr, 4); !ok {
					return true
				}
			}
			h.SetReg(rd, v)
			m.lastLoad = rd
			h.Instret++
			h.Cycle += uint64(cost)
			h.PC = next
			return false
		}
	case isa.OpLH, isa.OpLHU:
		signed := in.Op == isa.OpLH
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			off := uint64(addr - m.ramBase)
			var v uint32
			if addr&1 == 0 && off+2 <= uint64(len(m.ram)) && !m.Hooks.HasMemHooks() {
				v = uint32(m.ram[off]) | uint32(m.ram[off+1])<<8
			} else {
				var ok bool
				if v, ok = m.memLoad(pc, addr, 2); !ok {
					return true
				}
			}
			if signed {
				v = uint32(int32(v) << 16 >> 16)
			}
			h.SetReg(rd, v)
			m.lastLoad = rd
			h.Instret++
			h.Cycle += uint64(cost)
			h.PC = next
			return false
		}
	case isa.OpLB, isa.OpLBU:
		signed := in.Op == isa.OpLB
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			off := uint64(addr - m.ramBase)
			var v uint32
			if off < uint64(len(m.ram)) && !m.Hooks.HasMemHooks() {
				v = uint32(m.ram[off])
			} else {
				var ok bool
				if v, ok = m.memLoad(pc, addr, 1); !ok {
					return true
				}
			}
			if signed {
				v = uint32(int32(v) << 24 >> 24)
			}
			h.SetReg(rd, v)
			m.lastLoad = rd
			h.Instret++
			h.Cycle += uint64(cost)
			h.PC = next
			return false
		}

	case isa.OpSW, isa.OpCSW, isa.OpCSWSP:
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			v := h.Reg(rs2)
			off := uint64(addr - m.ramBase)
			if addr&3 == 0 && off+4 <= uint64(len(m.ram)) && !m.Hooks.HasMemHooks() &&
				!(addr < m.codeHi && addr+4 > m.codeLo) {
				r := m.ram[off : off+4 : off+4]
				r[0] = byte(v)
				r[1] = byte(v >> 8)
				r[2] = byte(v >> 16)
				r[3] = byte(v >> 24)
				m.noteRAMStore(addr, 4)
				return m.retire(cost, next)
			}
			ok, inval := m.memStore(pc, addr, 4, v)
			if !ok {
				return true
			}
			m.retire(cost, next)
			return inval || m.stop != nil
		}
	case isa.OpSH:
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			v := h.Reg(rs2)
			off := uint64(addr - m.ramBase)
			if addr&1 == 0 && off+2 <= uint64(len(m.ram)) && !m.Hooks.HasMemHooks() &&
				!(addr < m.codeHi && addr+2 > m.codeLo) {
				m.ram[off] = byte(v)
				m.ram[off+1] = byte(v >> 8)
				m.noteRAMStore(addr, 2)
				return m.retire(cost, next)
			}
			ok, inval := m.memStore(pc, addr, 2, v)
			if !ok {
				return true
			}
			m.retire(cost, next)
			return inval || m.stop != nil
		}
	case isa.OpSB:
		return func(m *Machine) bool {
			h := &m.Hart
			addr := h.Reg(rs1) + immU
			v := h.Reg(rs2)
			off := uint64(addr - m.ramBase)
			if off < uint64(len(m.ram)) && !m.Hooks.HasMemHooks() &&
				!(addr < m.codeHi && addr+1 > m.codeLo) {
				m.ram[off] = byte(v)
				m.noteRAMStore(addr, 1)
				return m.retire(cost, next)
			}
			ok, inval := m.memStore(pc, addr, 1, v)
			if !ok {
				return true
			}
			m.retire(cost, next)
			return inval || m.stop != nil
		}

	case isa.OpADDI, isa.OpCADDI, isa.OpCADDI16SP, isa.OpCADDI4SPN, isa.OpCLI, isa.OpCNOP:
		if rd == 0 {
			return nopOp(cost, next)
		}
		if rs1 == 0 { // li: constant materialization
			v := immU
			return func(m *Machine) bool {
				m.Hart.X[rd] = v
				return m.retire(cost, next)
			}
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) + immU
			return m.retire(cost, next)
		}
	case isa.OpSLTI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		imm := in.Imm
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = b2u(int32(h.Reg(rs1)) < imm)
			return m.retire(cost, next)
		}
	case isa.OpSLTIU:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = b2u(h.Reg(rs1) < immU)
			return m.retire(cost, next)
		}
	case isa.OpXORI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) ^ immU
			return m.retire(cost, next)
		}
	case isa.OpORI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) | immU
			return m.retire(cost, next)
		}
	case isa.OpANDI, isa.OpCANDI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) & immU
			return m.retire(cost, next)
		}
	case isa.OpSLLI, isa.OpCSLLI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) << immU
			return m.retire(cost, next)
		}
	case isa.OpSRLI, isa.OpCSRLI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) >> immU
			return m.retire(cost, next)
		}
	case isa.OpSRAI, isa.OpCSRAI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = uint32(int32(h.Reg(rs1)) >> immU)
			return m.retire(cost, next)
		}
	case isa.OpRORI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		sh := -int(in.Imm)
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = bits.RotateLeft32(h.Reg(rs1), sh)
			return m.retire(cost, next)
		}
	case isa.OpBSETI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		bit := uint32(1) << immU
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) | bit
			return m.retire(cost, next)
		}
	case isa.OpBCLRI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		mask := ^(uint32(1) << immU)
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) & mask
			return m.retire(cost, next)
		}
	case isa.OpBINVI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		bit := uint32(1) << immU
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) ^ bit
			return m.retire(cost, next)
		}
	case isa.OpBEXTI:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) >> immU & 1
			return m.retire(cost, next)
		}

	case isa.OpADD, isa.OpCADD:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) + h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpCMV:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpSUB, isa.OpCSUB:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) - h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpSLL:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) << (h.Reg(rs2) & 31)
			return m.retire(cost, next)
		}
	case isa.OpSRL:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) >> (h.Reg(rs2) & 31)
			return m.retire(cost, next)
		}
	case isa.OpSRA:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = uint32(int32(h.Reg(rs1)) >> (h.Reg(rs2) & 31))
			return m.retire(cost, next)
		}
	case isa.OpSLT:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = b2u(int32(h.Reg(rs1)) < int32(h.Reg(rs2)))
			return m.retire(cost, next)
		}
	case isa.OpSLTU:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = b2u(h.Reg(rs1) < h.Reg(rs2))
			return m.retire(cost, next)
		}
	case isa.OpXOR, isa.OpCXOR:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) ^ h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpOR, isa.OpCOR:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) | h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpAND, isa.OpCAND:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) & h.Reg(rs2)
			return m.retire(cost, next)
		}
	case isa.OpMUL:
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = h.Reg(rs1) * h.Reg(rs2)
			return m.retire(cost, next)
		}

	case isa.OpFENCE, isa.OpWFI:
		// Memory is sequentially consistent here; wfi is a legal no-op hint.
		return nopOp(cost, next)
	case isa.OpFENCEI:
		return func(m *Machine) bool {
			m.InvalidateTBs()
			return m.retireTo(cost, next)
		}
	}

	if fn := binOps[in.Op]; fn != nil {
		if rd == 0 {
			return nopOp(cost, next)
		}
		return func(m *Machine) bool {
			h := &m.Hart
			h.X[rd] = fn(h.Reg(rs1), h.Reg(rs2))
			return m.retire(cost, next)
		}
	}

	// CSR, FP, ecall/ebreak/mret and anything else: fully dynamic.
	return fallbackOp(in)
}
