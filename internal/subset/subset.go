// Package subset is the whole-binary interprocedural ISA-subset and
// resource-usage analyzer: the static half of the ecosystem's
// core-pruning flow. From one entry point it reconstructs the complete
// interprocedural CFG — iterating the interval value analysis until
// indirect jalr/jump-table targets built from lui/auipc+addi constant
// sequences are proven and the graph closes — and derives the exact
// opcode and extension set the binary can execute, its integer
// register-file footprint (RV32E feasibility), its CSR footprint, and a
// worst-case call-depth/stack-depth bound from per-function frame
// analysis over the call graph.
//
// The resulting opcode set is a contract: emu.Machine.SetSubset
// installs it as an allowlist and every engine traps any instruction
// outside it, so the subset soundness can be checked differentially
// against real executions (see soundness_test.go).
package subset

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/decode"
	"repro/internal/isa"
)

// maxResolveIters bounds the build/solve/rebuild fixpoint. Each
// productive iteration proves at least one new indirect target, and
// binaries have finitely many indirect sites, so this is a safety
// backstop rather than a precision knob.
const maxResolveIters = 16

// Resolve reconstructs the CFG for image at base starting from entry
// and iteratively closes indirect control flow: the interval analysis
// runs over every discovered function, each jalr/c.jr whose target
// register is proven constant contributes a new edge, and the graph is
// rebuilt until no further site resolves. It returns the closed graph
// and the proven indirect-target map (instruction address -> targets).
// Plain returns (jalr x0, 0(ra) / c.jr ra) are left as TermRet: their
// successors are the call sites the graph already models.
func Resolve(image []byte, base, entry uint32) (*cfg.Graph, map[uint32][]uint32, error) {
	indirect := map[uint32][]uint32{}
	for iter := 0; iter < maxResolveIters; iter++ {
		g, err := cfg.BuildResolved(image, base, entry, indirect)
		if err != nil {
			return nil, nil, err
		}
		changed := false
		for _, fn := range Functions(g) {
			res := dataflow.Solve(g, fn, dataflow.NewIntervalDomain(dataflow.UnknownEntry()))
			for _, bs := range g.FunctionBlocks(fn) {
				b := g.Blocks[bs]
				if len(b.Insts) == 0 {
					continue
				}
				last := b.Insts[len(b.Insts)-1]
				if !isIndirect(last.Op) || isReturn(last) {
					continue
				}
				addr := b.Addrs[len(b.Addrs)-1]
				if _, done := indirect[addr]; done {
					continue
				}
				in, ok := res.In[bs]
				if !ok {
					continue
				}
				s := in
				for i := 0; i < len(b.Insts)-1; i++ {
					dataflow.ApplyInst(&s, b.Addrs[i], b.Insts[i])
				}
				v, ok := s.Get(last.Rs1).Singleton()
				if !ok {
					continue
				}
				tgt := (v + uint32(last.Imm)) &^ 1
				if tgt < base || tgt >= base+uint32(len(image)) {
					continue
				}
				indirect[addr] = []uint32{tgt}
				changed = true
			}
		}
		if !changed {
			return g, indirect, nil
		}
	}
	g, err := cfg.BuildResolved(image, base, entry, indirect)
	return g, indirect, err
}

func isIndirect(op isa.Op) bool {
	return op == isa.OpJALR || op == isa.OpCJR || op == isa.OpCJALR
}

// isReturn matches the canonical return idiom: an indirect jump through
// ra with no link. Treating it as a return (rather than an unresolved
// jump) is sound because every call edge into the function is already
// in the graph, and each call block falls through to its return point.
func isReturn(in decode.Inst) bool {
	return isIndirect(in.Op) && in.Rd == isa.Zero && in.Rs1 == isa.RA && in.Imm == 0
}

// Functions lists the entry function and every statically known callee,
// transitively, in discovery order.
func Functions(g *cfg.Graph) []uint32 {
	funcs := []uint32{g.Entry}
	seen := map[uint32]bool{g.Entry: true}
	for i := 0; i < len(funcs); i++ {
		for _, c := range g.Callees(funcs[i]) {
			if !seen[c] {
				seen[c] = true
				funcs = append(funcs, c)
			}
		}
	}
	return funcs
}

// ResolvedJump is one indirect-control-flow site the analysis closed.
type ResolvedJump struct {
	PC      uint32   `json:"pc"`
	Targets []uint32 `json:"targets"`
}

// FuncReport is the per-function slice of the analysis.
type FuncReport struct {
	Entry   uint32   `json:"entry"`
	Name    string   `json:"name,omitempty"`
	Insts   int      `json:"insts"`
	Ops     []string `json:"ops"`
	Groups  []string `json:"groups"`
	Regs    []string `json:"regs"`
	CSRs    []string `json:"csrs,omitempty"`
	Callees []uint32 `json:"callees,omitempty"`
	// FrameBytes is the function's own worst-case stack frame (locally
	// pushed bytes); FrameKnown is false when sp moves by a non-constant
	// or inconsistent amount.
	FrameBytes uint32 `json:"frame_bytes"`
	FrameKnown bool   `json:"frame_known"`
	// StackBytes and CallDepth bound the whole subtree below this
	// function; meaningless when Recursive.
	StackBytes uint32 `json:"stack_bytes"`
	CallDepth  int    `json:"call_depth"`
	Recursive  bool   `json:"recursive,omitempty"`

	ops isa.OpSet
}

// GroupUsage lists the opcodes a binary uses from one extension group
// (I, M, Zicsr, Xbmi/Zbb, Xbmi/Zbs, ...).
type GroupUsage struct {
	Group string   `json:"group"`
	Ops   []string `json:"ops"`
}

// Report is the whole-binary analysis result.
type Report struct {
	Entry      uint32       `json:"entry"`
	Insts      int          `json:"insts"`
	Ops        []string     `json:"ops"`
	Groups     []GroupUsage `json:"groups"`
	Extensions string       `json:"extensions"`

	Regs     []string `json:"regs"`
	RegCount int      `json:"reg_count"`
	// RV32E reports whether the integer footprint fits the embedded
	// 16-register file; RV32EBlockers lists the x16..x31 registers that
	// prevent it.
	RV32E         bool     `json:"rv32e"`
	RV32EBlockers []string `json:"rv32e_blockers,omitempty"`
	UsesFP        bool     `json:"uses_fp"`

	CSRs []string `json:"csrs"`

	// CallDepth and StackBytes bound the deepest call chain from the
	// entry; StackKnown is false if any frame on some chain is
	// non-constant or the call graph is recursive.
	CallDepth  int    `json:"call_depth"`
	StackBytes uint32 `json:"stack_bytes"`
	StackKnown bool   `json:"stack_known"`
	Recursive  bool   `json:"recursive,omitempty"`

	// Resolved lists the indirect jumps the interval analysis closed;
	// Unresolved lists the ones it could not (excluding plain returns).
	// Sound is true when the static view is complete: no unresolved
	// indirect flow and no trap-vector installation (an mtvec write
	// admits handler code outside the CFG).
	Resolved   []ResolvedJump `json:"resolved,omitempty"`
	Unresolved []uint32       `json:"unresolved,omitempty"`
	MtvecWrite bool           `json:"mtvec_write,omitempty"`
	Sound      bool           `json:"sound"`

	Funcs []FuncReport `json:"functions"`

	set   isa.OpSet
	graph *cfg.Graph
}

// OpSet returns the exact opcode set as an emu-installable allowlist.
func (r *Report) OpSet() isa.OpSet { return r.set }

// Graph returns the closed interprocedural CFG the report was computed
// over.
func (r *Report) Graph() *cfg.Graph { return r.graph }

// Analyze runs the whole-binary analysis on a flat image loaded at base
// with the given entry point. symbols (address -> name) is optional and
// only used to label functions.
func Analyze(image []byte, base, entry uint32, symbols map[uint32]string) (*Report, error) {
	g, resolved, err := Resolve(image, base, entry)
	if err != nil {
		return nil, err
	}
	r := &Report{Entry: entry, graph: g, Sound: true}

	var allRegs [32]bool
	csrs := map[isa.CSR]bool{}
	funcs := Functions(g)
	frames := make(map[uint32]*FuncReport, len(funcs))

	for _, fn := range funcs {
		fr := &FuncReport{Entry: fn, Name: symbols[fn]}
		var regs [32]bool
		fcsrs := map[isa.CSR]bool{}
		var scratch [4]isa.Reg
		for _, bs := range g.FunctionBlocks(fn) {
			b := g.Blocks[bs]
			for _, in := range b.Insts {
				fr.Insts++
				fr.ops.Add(in.Op)
				r.set.Add(in.Op)
				if rd, ok := in.WritesReg(); ok {
					regs[rd] = true
				}
				for _, rg := range in.ReadsRegs(scratch[:0]) {
					regs[rg] = true
				}
				if frd, frs1, frs2 := isa.UsesFPRegs(in.Op); frd || frs1 || frs2 {
					r.UsesFP = true
				}
				if in.Op.Class() == isa.ClassCSR {
					fcsrs[in.CSR] = true
					csrs[in.CSR] = true
					if in.CSR == isa.CSRMtvec && csrWrites(in) {
						r.MtvecWrite = true
					}
				}
			}
			// Unresolved indirect flow breaks completeness.
			if len(b.Insts) > 0 {
				last := b.Insts[len(b.Insts)-1]
				addr := b.Addrs[len(b.Addrs)-1]
				if isIndirect(last.Op) && !isReturn(last) {
					if _, ok := resolved[addr]; !ok {
						r.Unresolved = append(r.Unresolved, addr)
					}
				}
			}
		}
		fr.Ops = opNames(fr.ops)
		fr.Groups = isa.ExtGroups(fr.ops.Extensions())
		fr.Regs = regNames(regs)
		fr.CSRs = csrNames(fcsrs)
		fr.Callees = g.Callees(fn)
		fr.FrameBytes, fr.FrameKnown = frameBound(g, fn)
		for i := range regs {
			if regs[i] {
				allRegs[i] = true
			}
		}
		frames[fn] = fr
	}

	// Call-depth and stack-depth bounds over the call graph.
	r.StackKnown = true
	state := map[uint32]int{} // 0 unvisited, 1 on stack, 2 done
	var walk func(fn uint32) (depth int, stack uint32)
	walk = func(fn uint32) (int, uint32) {
		fr := frames[fn]
		if fr == nil {
			return 0, 0
		}
		switch state[fn] {
		case 1:
			fr.Recursive = true
			r.Recursive = true
			r.StackKnown = false
			return 0, 0
		case 2:
			return fr.CallDepth, fr.StackBytes
		}
		state[fn] = 1
		depth, stack := 1, fr.FrameBytes
		if !fr.FrameKnown {
			r.StackKnown = false
		}
		for _, c := range fr.Callees {
			d, s := walk(c)
			if 1+d > depth {
				depth = 1 + d
			}
			if fr.FrameBytes+s > stack {
				stack = fr.FrameBytes + s
			}
		}
		state[fn] = 2
		fr.CallDepth, fr.StackBytes = depth, stack
		return depth, stack
	}
	r.CallDepth, r.StackBytes = walk(g.Entry)
	if r.Recursive {
		r.StackKnown = false
	}

	r.Ops = opNames(r.set)
	r.Insts = 0
	for _, fn := range funcs {
		r.Insts += frames[fn].Insts
		r.Funcs = append(r.Funcs, *frames[fn])
	}
	sort.Slice(r.Funcs, func(i, j int) bool { return r.Funcs[i].Entry < r.Funcs[j].Entry })
	r.Extensions = r.set.Extensions().String()
	r.Groups = groupUsage(r.set)
	r.Regs = regNames(allRegs)
	for i := range allRegs {
		if allRegs[i] {
			r.RegCount++
			if i >= 16 {
				r.RV32EBlockers = append(r.RV32EBlockers, isa.Reg(i).String())
			}
		}
	}
	r.RV32E = len(r.RV32EBlockers) == 0 && !r.UsesFP
	r.CSRs = csrNames(csrs)
	for pc, tgts := range resolved {
		r.Resolved = append(r.Resolved, ResolvedJump{PC: pc, Targets: tgts})
	}
	sort.Slice(r.Resolved, func(i, j int) bool { return r.Resolved[i].PC < r.Resolved[j].PC })
	sort.Slice(r.Unresolved, func(i, j int) bool { return r.Unresolved[i] < r.Unresolved[j] })
	if len(r.Unresolved) > 0 || r.MtvecWrite {
		r.Sound = false
	}
	return r, nil
}

// csrWrites reports whether a Zicsr instruction writes its CSR: the rw
// forms always do, the set/clear forms only with a non-zero source.
func csrWrites(in decode.Inst) bool {
	switch in.Op {
	case isa.OpCSRRW, isa.OpCSRRWI:
		return true
	case isa.OpCSRRS, isa.OpCSRRC:
		return in.Rs1 != isa.Zero
	case isa.OpCSRRSI, isa.OpCSRRCI:
		return in.Imm != 0
	}
	return false
}

// frameBound computes the function's worst-case local stack frame: the
// deepest proven sp decrement relative to function entry. It tracks a
// single constant sp offset per block; any non-constant adjustment or
// inconsistent merge makes the bound unknown (returned as the deepest
// constant offset seen, with known=false).
func frameBound(g *cfg.Graph, fn uint32) (bytes uint32, known bool) {
	const unknown = int64(1) << 62
	blocks := g.FunctionBlocks(fn)
	in := map[uint32]int64{fn: 0}
	inSet := map[uint32]bool{fn: true}
	work := []uint32{fn}
	member := map[uint32]bool{}
	for _, b := range blocks {
		member[b] = true
	}
	known = true
	deepest := int64(0)
	for len(work) > 0 {
		bs := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[bs]
		if b == nil {
			continue
		}
		off := in[bs]
		for _, inst := range b.Insts {
			if off != unknown && off < deepest {
				deepest = off
			}
			if rd, ok := inst.WritesReg(); ok && rd == isa.SP {
				switch inst.Op {
				case isa.OpADDI, isa.OpCADDI, isa.OpCADDI16SP:
					if inst.Rs1 == isa.SP && off != unknown {
						off += int64(inst.Imm)
					} else {
						off = unknown
						known = false
					}
				default:
					off = unknown
					known = false
				}
			}
		}
		if off != unknown && off < deepest {
			deepest = off
		}
		// Calls preserve sp by ABI; propagate to intraprocedural succs
		// only (a TermCall block's jump edge is its return point, which
		// is intraprocedural; the callee is reached via CallTarget).
		for _, sc := range b.Succs {
			if !member[sc.Addr] {
				continue
			}
			prev, seen := in[sc.Addr]
			if !inSet[sc.Addr] {
				in[sc.Addr] = off
				inSet[sc.Addr] = true
				work = append(work, sc.Addr)
			} else if seen && prev != off {
				if prev != unknown {
					in[sc.Addr] = unknown
					known = false
					work = append(work, sc.Addr)
				}
			}
		}
	}
	return uint32(-deepest), known
}

func opNames(s isa.OpSet) []string {
	ops := s.Ops()
	names := make([]string, len(ops))
	for i, o := range ops {
		names[i] = o.String()
	}
	return names
}

func groupUsage(s isa.OpSet) []GroupUsage {
	order := []string{}
	byGroup := map[string][]string{}
	for _, o := range s.Ops() {
		grp := o.ExtGroup()
		if _, ok := byGroup[grp]; !ok {
			order = append(order, grp)
		}
		byGroup[grp] = append(byGroup[grp], o.String())
	}
	gs := make([]GroupUsage, len(order))
	for i, grp := range order {
		gs[i] = GroupUsage{Group: grp, Ops: byGroup[grp]}
	}
	return gs
}

func regNames(regs [32]bool) []string {
	var names []string
	for i, used := range regs {
		if used {
			names = append(names, isa.Reg(i).String())
		}
	}
	return names
}

func csrNames(m map[isa.CSR]bool) []string {
	addrs := make([]isa.CSR, 0, len(m))
	for c := range m {
		addrs = append(addrs, c)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	names := make([]string, len(addrs))
	for i, c := range addrs {
		names[i] = c.String()
	}
	return names
}

// String renders the report in the tools' human-readable form.
func (r *Report) String() string {
	var b []byte
	p := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
	}
	p("entry       0x%08x\n", r.Entry)
	p("insts       %d static (in %d functions)\n", r.Insts, len(r.Funcs))
	p("extensions  %s\n", r.Extensions)
	for _, g := range r.Groups {
		p("  %-10s %d ops: %s\n", g.Group, len(g.Ops), joinMax(g.Ops, 12))
	}
	p("registers   %d used: %s\n", r.RegCount, joinMax(r.Regs, 32))
	if r.RV32E {
		p("rv32e       feasible\n")
	} else if r.UsesFP && len(r.RV32EBlockers) == 0 {
		p("rv32e       blocked by FP use\n")
	} else {
		p("rv32e       blocked by %s\n", joinMax(r.RV32EBlockers, 16))
	}
	if len(r.CSRs) > 0 {
		p("csrs        %s\n", joinMax(r.CSRs, 16))
	} else {
		p("csrs        none\n")
	}
	if r.StackKnown {
		p("call depth  %d\n", r.CallDepth)
		p("stack bound %d bytes\n", r.StackBytes)
	} else if r.Recursive {
		p("call depth  unbounded (recursive)\n")
	} else {
		p("call depth  %d (stack bound unknown: non-constant frame)\n", r.CallDepth)
	}
	for _, j := range r.Resolved {
		for _, t := range j.Targets {
			p("resolved    indirect jump at 0x%08x -> 0x%08x\n", j.PC, t)
		}
	}
	for _, pc := range r.Unresolved {
		p("unresolved  indirect jump at 0x%08x\n", pc)
	}
	if r.Sound {
		p("sound       yes: static opcode set covers all executions\n")
	} else {
		p("sound       no: unresolved indirect flow or trap handler installed\n")
	}
	return string(b)
}

func joinMax(names []string, max int) string {
	if len(names) == 0 {
		return "-"
	}
	s := ""
	for i, n := range names {
		if i == max {
			return s + fmt.Sprintf(" ... (+%d more)", len(names)-max)
		}
		if i > 0 {
			s += " "
		}
		s += n
	}
	return s
}
