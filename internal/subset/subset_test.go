package subset_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/subset"
	"repro/internal/vp"
)

func analyze(t *testing.T, src string) *subset.Report {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+src, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	symbols := map[uint32]string{}
	for name, addr := range prog.Symbols {
		symbols[addr] = name
	}
	rep, err := subset.Analyze(prog.Bytes, prog.Org, prog.Entry, symbols)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// A constant-target indirect jump (la+jr) must resolve: the graph
// closes, the report is sound, and code after the jump is analyzed.
func TestResolveIndirectJump(t *testing.T) {
	rep := analyze(t, `
	la   t0, fin
	jr   t0
	mul  a0, a0, a0
fin:	ebreak
`)
	if len(rep.Resolved) != 1 {
		t.Fatalf("resolved = %v, want exactly 1 site", rep.Resolved)
	}
	if !rep.Sound {
		t.Errorf("report not sound: unresolved=%v mtvec=%v", rep.Unresolved, rep.MtvecWrite)
	}
	// The mul sits after an unconditional jump: it must NOT be in the
	// opcode set (proving the graph closed rather than fell back to
	// scanning everything).
	if rep.OpSet().Has(isa.OpMUL) {
		t.Errorf("mul is unreachable but present in subset %v", rep.Ops)
	}
}

// An indirect call through a proven-constant register is an edge in the
// call graph: the callee's ops join the subset.
func TestResolveIndirectCall(t *testing.T) {
	rep := analyze(t, `
	la   t0, helper
	jalr ra, 0(t0)
	ebreak
helper:
	mul  a0, a0, a0
	ret
`)
	if !rep.Sound {
		t.Fatalf("report not sound: unresolved=%v", rep.Unresolved)
	}
	if !rep.OpSet().Has(isa.OpMUL) {
		t.Errorf("indirectly called helper's mul missing from subset %v", rep.Ops)
	}
	if rep.CallDepth != 2 {
		t.Errorf("call depth = %d, want 2", rep.CallDepth)
	}
}

// A jump through a statically unknown register leaves the report
// unsound.
func TestUnresolvedIndirectJumpUnsound(t *testing.T) {
	rep := analyze(t, `
	jr   a0
`)
	if rep.Sound {
		t.Error("report claims soundness despite unresolved indirect jump")
	}
	if len(rep.Unresolved) != 1 {
		t.Errorf("unresolved = %v, want exactly 1 site", rep.Unresolved)
	}
}

// Installing a trap vector admits handler code outside the CFG: the
// report must not claim soundness.
func TestMtvecWriteUnsound(t *testing.T) {
	rep := analyze(t, `
	la   t0, handler
	csrw mtvec, t0
	ebreak
handler:
	mret
`)
	if rep.Sound {
		t.Error("report claims soundness despite mtvec write")
	}
	if !rep.MtvecWrite {
		t.Error("mtvec write not detected")
	}
}

// A pure CSR read must not count as a trap-vector installation.
func TestMtvecReadStaysSound(t *testing.T) {
	rep := analyze(t, `
	csrr t0, mtvec
	ebreak
`)
	if rep.MtvecWrite {
		t.Error("csrr mtvec misclassified as a write")
	}
	if !rep.Sound {
		t.Errorf("report not sound: unresolved=%v", rep.Unresolved)
	}
}

// Stack analysis: nested calls with constant frames give an exact
// whole-program bound.
func TestStackBound(t *testing.T) {
	rep := analyze(t, `
	call outer
	ebreak
outer:
	addi sp, sp, -32
	sw   ra, 0(sp)
	call inner
	lw   ra, 0(sp)
	addi sp, sp, 32
	ret
inner:
	addi sp, sp, -16
	addi sp, sp, 16
	ret
`)
	if !rep.StackKnown {
		t.Fatal("stack bound unknown")
	}
	if rep.StackBytes != 48 {
		t.Errorf("stack bound = %d bytes, want 48", rep.StackBytes)
	}
	if rep.CallDepth != 3 {
		t.Errorf("call depth = %d, want 3", rep.CallDepth)
	}
}

// Recursion makes the stack bound unknowable; the report must say so
// rather than emit a number.
func TestRecursionUnbounded(t *testing.T) {
	rep := analyze(t, `
	call self
	ebreak
self:
	addi sp, sp, -16
	beqz a0, done
	addi a0, a0, -1
	call self
done:
	addi sp, sp, 16
	ret
`)
	if !rep.Recursive {
		t.Error("recursion not detected")
	}
	if rep.StackKnown {
		t.Error("stack bound claimed despite recursion")
	}
}

// Register footprint: a program confined to x0..x15 is RV32E-feasible,
// one touching a saved register above x15 is not.
func TestRV32EFeasibility(t *testing.T) {
	small := analyze(t, `
	li   a0, 1
	li   a5, 2
	add  a0, a0, a5
	ebreak
`)
	if !small.RV32E {
		t.Errorf("x0..x15 program not RV32E-feasible: blockers %v", small.RV32EBlockers)
	}
	big := analyze(t, `
	li   s2, 1
	ebreak
`)
	if big.RV32E {
		t.Error("s2 (x18) user claimed RV32E-feasible")
	}
	found := false
	for _, r := range big.RV32EBlockers {
		if r == "s2" {
			found = true
		}
	}
	if !found {
		t.Errorf("blockers = %v, want s2 listed", big.RV32EBlockers)
	}
}

// The extension grouping must split Xbmi into its Zbb-like and Zbs-like
// halves, sharing tables with isa.ExtGroup.
func TestExtensionGroups(t *testing.T) {
	rep := analyze(t, `
	andn a0, a0, a1
	bset a0, a0, a1
	mul  a0, a0, a1
	ebreak
`)
	got := map[string]bool{}
	for _, g := range rep.Groups {
		got[g.Group] = true
	}
	for _, want := range []string{"I", "M", "Xbmi/Zbb", "Xbmi/Zbs"} {
		if !got[want] {
			t.Errorf("group %s missing from %v", want, rep.Groups)
		}
	}
}

// CSR footprint is reported by name.
func TestCSRFootprint(t *testing.T) {
	rep := analyze(t, `
	csrr t0, mcycle
	csrw mscratch, t0
	ebreak
`)
	want := map[string]bool{"mcycle": false, "mscratch": false}
	for _, c := range rep.CSRs {
		if _, ok := want[c]; ok {
			want[c] = true
		}
	}
	for c, seen := range want {
		if !seen {
			t.Errorf("CSR %s missing from footprint %v", c, rep.CSRs)
		}
	}
}

// The report must round-trip through JSON (the serve payload and the
// -json CLI path).
func TestReportJSON(t *testing.T) {
	rep := analyze(t, "\tli a0, 1\n\tebreak\n")
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"rv32e"`, `"stack_bytes"`, `"sound"`, `"functions"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON report missing %s: %s", key, b)
		}
	}
}

// BuildResolved closes the graph only where targets are supplied, and
// records multi-target sites as jump-table edges.
func TestBuildResolvedEdges(t *testing.T) {
	prog, err := asm.AssembleAt(`
	jr   t0
a:	ebreak
b:	ebreak
`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	jrAddr := prog.Org
	aAddr, bAddr := prog.Symbols["a"], prog.Symbols["b"]
	g, err := cfg.BuildResolved(prog.Bytes, prog.Org, prog.Entry,
		map[uint32][]uint32{jrAddr: {aAddr, bAddr}})
	if err != nil {
		t.Fatal(err)
	}
	blk, ok := g.BlockAt(jrAddr)
	if !ok {
		t.Fatal("entry block missing")
	}
	if blk.Term != cfg.TermJump || len(blk.Succs) != 2 {
		t.Fatalf("jump-table block: term %v succs %v, want jump with 2 edges", blk.Term, blk.Succs)
	}
	if _, ok := g.BlockAt(aAddr); !ok {
		t.Error("target a not in graph")
	}
	if _, ok := g.BlockAt(bAddr); !ok {
		t.Error("target b not in graph")
	}
}
