package subset_test

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/asm"
	"repro/internal/cover"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/subset"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// This file proves the subset analyzer's central contract
// differentially, over every workload kernel and every assembly program
// embedded in the examples:
//
//  1. Soundness: when the report claims Sound, every opcode the program
//     dynamically executes is in the static opcode set.
//  2. Transparency: running with the subset installed as an enforcement
//     allowlist (emu.Machine.SetSubset) is bit-identical to an
//     unrestricted run — same stop, counters, register files, trap CSRs,
//     RAM and UART output — on the switch, threaded and superblock
//     engines and under Step().

type soundCase struct {
	name   string
	src    string
	budget uint64
	sensor []int16
}

func soundCases(t *testing.T) []soundCase {
	t.Helper()
	var cases []soundCase
	for _, w := range workloads.All() {
		cases = append(cases, soundCase{
			name:   "workload/" + w.Name,
			src:    w.Source,
			budget: w.Budget,
			sensor: w.Sensor,
		})
	}
	cases = append(cases, exampleCases(t)...)
	return cases
}

// exampleCases extracts the assembly programs embedded as backquoted
// literals in the examples (e.g. examples/quickstart) and keeps every
// literal that assembles under the platform prelude.
func exampleCases(t *testing.T) []soundCase {
	t.Helper()
	files, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	lit := regexp.MustCompile("(?s)`[^`]*`")
	var cases []soundCase
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range lit.FindAllString(string(src), -1) {
			body := m[1 : len(m)-1]
			if _, err := asm.AssembleAt(vp.Prelude+body, vp.RAMBase); err != nil {
				continue
			}
			cases = append(cases, soundCase{
				name:   "example/" + filepath.Base(filepath.Dir(f)) + litSuffix(i),
				src:    body,
				budget: 1_000_000,
			})
		}
	}
	if len(cases) == 0 {
		t.Fatal("no assembly literal found under examples/ — extraction broken?")
	}
	return cases
}

func litSuffix(i int) string {
	if i == 0 {
		return ""
	}
	return string(rune('a' + i))
}

// soundState is the observable machine state a subset-enforced run must
// reproduce exactly.
type soundState struct {
	stop    emu.StopInfo
	instret uint64
	cycle   uint64
	pc      uint32
	x       [32]uint32
	f       [32]uint32
	mepc    uint32
	mcause  uint32
	mtval   uint32
	ram     uint64
	out     string
}

func captureSound(p *vp.Platform, stop emu.StopInfo) soundState {
	h := &p.Machine.Hart
	st := soundState{
		stop:    stop,
		instret: h.Instret,
		cycle:   h.Cycle,
		pc:      h.PC,
		x:       h.X,
		f:       h.F,
		mepc:    h.Mepc,
		mcause:  h.Mcause,
		mtval:   h.Mtval,
		out:     p.Output(),
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	d := uint64(fnvOffset)
	for _, b := range p.RAM.Bytes() {
		d = (d ^ uint64(b)) * fnvPrime
	}
	st.ram = d
	return st
}

func soundPlatform(t *testing.T, c soundCase) *vp.Platform {
	t.Helper()
	p, err := vp.New(vp.Config{Profile: timing.Unit(), Sensor: c.sensor})
	if err != nil {
		t.Fatalf("vp.New: %v", err)
	}
	if _, err := p.LoadSource(vp.Prelude + c.src); err != nil {
		t.Fatalf("load %s: %v", c.name, err)
	}
	return p
}

func analyzeCase(t *testing.T, c soundCase) *subset.Report {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+c.src, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := subset.Analyze(prog.Bytes, prog.Org, prog.Entry, nil)
	if err != nil {
		t.Fatalf("analyze %s: %v", c.name, err)
	}
	return rep
}

// runEnforced runs a case on one engine (or stepped) with the given
// allowlist (empty = unrestricted) and an optional coverage collector.
func runEnforced(t *testing.T, c soundCase, engine emu.Engine, stepped bool,
	allow isa.OpSet, cov *cover.Coverage) soundState {
	t.Helper()
	p := soundPlatform(t, c)
	p.Machine.Engine = engine
	p.Machine.SetSubset(allow)
	if cov != nil {
		if err := p.Machine.Hooks.Register(cov); err != nil {
			t.Fatal(err)
		}
	}
	if !stepped {
		return captureSound(p, p.Run(c.budget))
	}
	var stop *emu.StopInfo
	for n := uint64(0); n < c.budget; n++ {
		if stop = p.Machine.Step(); stop != nil {
			break
		}
	}
	if stop == nil {
		stop = &emu.StopInfo{Reason: emu.StopBudget, PC: p.Machine.Hart.PC}
	}
	return captureSound(p, *stop)
}

// TestSubsetSoundnessAndTransparency is the differential proof over all
// programs, engines and the stepper.
func TestSubsetSoundnessAndTransparency(t *testing.T) {
	engines := []struct {
		name    string
		engine  emu.Engine
		stepped bool
	}{
		{"switch", emu.EngineSwitch, false},
		{"threaded", emu.EngineThreaded, false},
		{"superblock", emu.EngineSuperblock, false},
		{"step", emu.EngineThreaded, true},
	}
	for _, c := range soundCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rep := analyzeCase(t, c)

			// Reference run, collecting the dynamic opcode set.
			cov := cover.New(isa.RV32Full)
			ref := runEnforced(t, c, emu.EngineThreaded, false, isa.OpSet{}, cov)
			if ref.stop.Reason == emu.StopBudget {
				t.Fatalf("reference run did not terminate within %d insts", c.budget)
			}

			// Soundness: a Sound report's static set covers every
			// dynamically executed opcode.
			dynamic := isa.OpSet{}
			for op := range cov.Ops {
				dynamic.Add(op)
			}
			if rep.Sound {
				for _, op := range dynamic.Ops() {
					if !rep.OpSet().Has(op) {
						t.Errorf("executed op %v not in static subset %v", op, rep.Ops)
					}
				}
			} else {
				t.Logf("%s: report unsound (unresolved=%v mtvec=%v); subset widened with dynamic set",
					c.name, rep.Unresolved, rep.MtvecWrite)
			}

			// Transparency: enforcement with the (possibly widened)
			// allowlist must not perturb any engine.
			allow := rep.OpSet().Union(dynamic)
			for _, e := range engines {
				free := runEnforced(t, c, e.engine, e.stepped, isa.OpSet{}, nil)
				enf := runEnforced(t, c, e.engine, e.stepped, allow, nil)
				if free != enf {
					t.Errorf("%s: subset-enforced state differs from unrestricted\n free: %+v\n enf:  %+v",
						e.name, free, enf)
				}
			}
		})
	}
}

// TestSubsetSoundOnAllWorkloads pins down that the analyzer actually
// proves soundness (not just flags unsoundness) on the straight-line
// kernels: every workload that installs no trap vector must come back
// Sound.
func TestSubsetSoundOnAllWorkloads(t *testing.T) {
	sound := 0
	for _, w := range workloads.All() {
		rep := analyzeCase(t, soundCase{name: w.Name, src: w.Source, budget: w.Budget})
		if rep.Sound {
			sound++
		} else if len(rep.Unresolved) > 0 {
			t.Errorf("%s: unresolved indirect flow %v", w.Name, rep.Unresolved)
		}
	}
	if sound == 0 {
		t.Error("no workload analyzed as sound")
	}
}
