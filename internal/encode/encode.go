// Package encode produces RISC-V machine code from decoded instruction
// structures. It is the exact inverse of internal/decode over the shared
// pattern table in internal/isa, a property the test suite checks
// exhaustively; the assembler, torture generator and fault mutator all
// emit code through it.
package encode

import (
	"fmt"

	"repro/internal/decode"
	"repro/internal/isa"
)

// Encode encodes a 32-bit instruction. Compressed ops are rejected; use
// Encode16. The instruction's operand fields must be within architectural
// ranges (immediates representable, registers < 32).
func Encode(in decode.Inst) (uint32, error) {
	p, ok := isa.PatternFor(in.Op)
	if !ok {
		if in.Op.Extension() == isa.ExtC {
			return 0, fmt.Errorf("encode: %s is a compressed instruction; use Encode16", in.Op)
		}
		return 0, fmt.Errorf("encode: no encoding for %s", in.Op)
	}
	if !in.Rd.Valid() || !in.Rs1.Valid() || !in.Rs2.Valid() || !in.Rs3.Valid() {
		return 0, fmt.Errorf("encode: %s: register index out of range", in.Op)
	}
	w := p.Match
	rd := uint32(in.Rd) << 7
	rs1 := uint32(in.Rs1) << 15
	rs2 := uint32(in.Rs2) << 20
	switch p.Fmt {
	case isa.FmtNone:
		// fixed encoding
	case isa.FmtR:
		w |= rd | rs1 | rs2
	case isa.FmtR4:
		w |= rd | rs1 | rs2 | uint32(in.Rs3)<<27
	case isa.FmtI:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("encode: %s: immediate %d out of range [-2048,2047]", in.Op, in.Imm)
		}
		w |= rd | rs1 | uint32(in.Imm)&0xfff<<20
	case isa.FmtIShift:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("encode: %s: shift amount %d out of range [0,31]", in.Op, in.Imm)
		}
		w |= rd | rs1 | uint32(in.Imm)<<20
	case isa.FmtS:
		if in.Imm < -2048 || in.Imm > 2047 {
			return 0, fmt.Errorf("encode: %s: offset %d out of range [-2048,2047]", in.Op, in.Imm)
		}
		imm := uint32(in.Imm) & 0xfff
		w |= rs1 | rs2 | imm>>5<<25 | imm&31<<7
	case isa.FmtB:
		if in.Imm < -4096 || in.Imm > 4095 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("encode: %s: branch offset %d invalid", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		w |= rs1 | rs2
		w |= imm >> 12 & 1 << 31
		w |= imm >> 5 & 0x3f << 25
		w |= imm >> 1 & 0xf << 8
		w |= imm >> 11 & 1 << 7
	case isa.FmtU:
		if uint32(in.Imm)&0xfff != 0 {
			return 0, fmt.Errorf("encode: %s: immediate 0x%x has low bits set", in.Op, uint32(in.Imm))
		}
		w |= rd | uint32(in.Imm)
	case isa.FmtJ:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("encode: %s: jump offset %d invalid", in.Op, in.Imm)
		}
		imm := uint32(in.Imm)
		w |= rd
		w |= imm >> 20 & 1 << 31
		w |= imm >> 1 & 0x3ff << 21
		w |= imm >> 11 & 1 << 20
		w |= imm >> 12 & 0xff << 12
	case isa.FmtCSR:
		w |= rd | rs1 | uint32(in.CSR)<<20
	case isa.FmtCSRI:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("encode: %s: uimm %d out of range [0,31]", in.Op, in.Imm)
		}
		w |= rd | uint32(in.Imm)<<15 | uint32(in.CSR)<<20
	case isa.FmtRUnary:
		w |= rd | rs1
	default:
		return 0, fmt.Errorf("encode: %s: unhandled format %v", in.Op, p.Fmt)
	}
	return w, nil
}

// MustEncode is Encode for statically known-valid instructions; it panics
// on error. Intended for tables and tests.
func MustEncode(in decode.Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}

// Encode16 encodes a compressed (C extension) instruction. The operand
// fields must already be in their expanded form, exactly as Decode16
// produces them (full register indices, scaled immediates).
func Encode16(in decode.Inst) (uint16, error) {
	cr := func(r isa.Reg) (uint32, error) {
		if r < 8 || r > 15 {
			return 0, fmt.Errorf("encode: %s: register %s not in x8..x15", in.Op, r)
		}
		return uint32(r) - 8, nil
	}
	imm := uint32(in.Imm)
	switch in.Op {
	case isa.OpCNOP:
		return 0x0001, nil
	case isa.OpCEBREAK:
		return 0x9002, nil
	case isa.OpCADDI4SPN:
		rd, err := cr(in.Rd)
		if err != nil {
			return 0, err
		}
		if in.Imm <= 0 || in.Imm > 1020 || in.Imm&3 != 0 {
			return 0, fmt.Errorf("encode: c.addi4spn: immediate %d invalid", in.Imm)
		}
		w := uint32(0x0000) | rd<<2
		w |= imm >> 4 & 3 << 11
		w |= imm >> 6 & 15 << 7
		w |= imm >> 2 & 1 << 6
		w |= imm >> 3 & 1 << 5
		return uint16(w), nil
	case isa.OpCLW, isa.OpCSW:
		r1, err := cr(in.Rs1)
		if err != nil {
			return 0, err
		}
		var rx uint32
		if in.Op == isa.OpCLW {
			rx, err = cr(in.Rd)
		} else {
			rx, err = cr(in.Rs2)
		}
		if err != nil {
			return 0, err
		}
		if in.Imm < 0 || in.Imm > 124 || in.Imm&3 != 0 {
			return 0, fmt.Errorf("encode: %s: offset %d invalid", in.Op, in.Imm)
		}
		var w uint32
		if in.Op == isa.OpCLW {
			w = 0x4000
		} else {
			w = 0xc000
		}
		w |= r1<<7 | rx<<2
		w |= imm >> 3 & 7 << 10
		w |= imm >> 2 & 1 << 6
		w |= imm >> 6 & 1 << 5
		return uint16(w), nil
	case isa.OpCADDI, isa.OpCLI:
		if in.Imm < -32 || in.Imm > 31 {
			return 0, fmt.Errorf("encode: %s: immediate %d out of range [-32,31]", in.Op, in.Imm)
		}
		var w uint32
		if in.Op == isa.OpCADDI {
			w = 0x0001
		} else {
			w = 0x4001
		}
		w |= uint32(in.Rd) << 7
		w |= imm >> 5 & 1 << 12
		w |= imm & 31 << 2
		return uint16(w), nil
	case isa.OpCJAL, isa.OpCJ:
		if in.Imm < -2048 || in.Imm > 2047 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("encode: %s: offset %d invalid", in.Op, in.Imm)
		}
		var w uint32
		if in.Op == isa.OpCJAL {
			w = 0x2001
		} else {
			w = 0xa001
		}
		w |= imm >> 11 & 1 << 12
		w |= imm >> 4 & 1 << 11
		w |= imm >> 8 & 3 << 9
		w |= imm >> 10 & 1 << 8
		w |= imm >> 6 & 1 << 7
		w |= imm >> 7 & 1 << 6
		w |= imm >> 1 & 7 << 3
		w |= imm >> 5 & 1 << 2
		return uint16(w), nil
	case isa.OpCADDI16SP:
		if in.Imm < -512 || in.Imm > 511 || in.Imm&15 != 0 || in.Imm == 0 {
			return 0, fmt.Errorf("encode: c.addi16sp: immediate %d invalid", in.Imm)
		}
		w := uint32(0x6101)
		w |= imm >> 9 & 1 << 12
		w |= imm >> 4 & 1 << 6
		w |= imm >> 6 & 1 << 5
		w |= imm >> 7 & 3 << 3
		w |= imm >> 5 & 1 << 2
		return uint16(w), nil
	case isa.OpCLUI:
		if in.Rd == 0 || in.Rd == isa.SP {
			return 0, fmt.Errorf("encode: c.lui: rd must not be x0/x2")
		}
		hi := in.Imm >> 12
		if hi < -32 || hi > 31 || hi == 0 || in.Imm&0xfff != 0 {
			return 0, fmt.Errorf("encode: c.lui: immediate 0x%x invalid", uint32(in.Imm))
		}
		w := uint32(0x6001) | uint32(in.Rd)<<7
		w |= uint32(hi) >> 5 & 1 << 12
		w |= uint32(hi) & 31 << 2
		return uint16(w), nil
	case isa.OpCSRLI, isa.OpCSRAI, isa.OpCANDI:
		rd, err := cr(in.Rd)
		if err != nil {
			return 0, err
		}
		var w uint32
		switch in.Op {
		case isa.OpCSRLI:
			w = 0x8001
			if in.Imm < 0 || in.Imm > 31 {
				return 0, fmt.Errorf("encode: c.srli: shamt %d invalid", in.Imm)
			}
		case isa.OpCSRAI:
			w = 0x8401
			if in.Imm < 0 || in.Imm > 31 {
				return 0, fmt.Errorf("encode: c.srai: shamt %d invalid", in.Imm)
			}
		case isa.OpCANDI:
			w = 0x8801
			if in.Imm < -32 || in.Imm > 31 {
				return 0, fmt.Errorf("encode: c.andi: immediate %d invalid", in.Imm)
			}
			w |= imm >> 5 & 1 << 12
		}
		w |= rd<<7 | imm&31<<2
		return uint16(w), nil
	case isa.OpCSUB, isa.OpCXOR, isa.OpCOR, isa.OpCAND:
		rd, err := cr(in.Rd)
		if err != nil {
			return 0, err
		}
		r2, err := cr(in.Rs2)
		if err != nil {
			return 0, err
		}
		w := uint32(0x8c01) | rd<<7 | r2<<2
		switch in.Op {
		case isa.OpCXOR:
			w |= 1 << 5
		case isa.OpCOR:
			w |= 2 << 5
		case isa.OpCAND:
			w |= 3 << 5
		}
		return uint16(w), nil
	case isa.OpCBEQZ, isa.OpCBNEZ:
		r1, err := cr(in.Rs1)
		if err != nil {
			return 0, err
		}
		if in.Imm < -256 || in.Imm > 255 || in.Imm&1 != 0 {
			return 0, fmt.Errorf("encode: %s: offset %d invalid", in.Op, in.Imm)
		}
		var w uint32
		if in.Op == isa.OpCBEQZ {
			w = 0xc001
		} else {
			w = 0xe001
		}
		w |= r1 << 7
		w |= imm >> 8 & 1 << 12
		w |= imm >> 3 & 3 << 10
		w |= imm >> 6 & 3 << 5
		w |= imm >> 1 & 3 << 3
		w |= imm >> 5 & 1 << 2
		return uint16(w), nil
	case isa.OpCSLLI:
		if in.Rd == 0 || in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("encode: c.slli: invalid operands")
		}
		return uint16(0x0002 | uint32(in.Rd)<<7 | imm&31<<2), nil
	case isa.OpCLWSP:
		if in.Rd == 0 || in.Imm < 0 || in.Imm > 252 || in.Imm&3 != 0 {
			return 0, fmt.Errorf("encode: c.lwsp: invalid operands")
		}
		w := uint32(0x4002) | uint32(in.Rd)<<7
		w |= imm >> 5 & 1 << 12
		w |= imm >> 2 & 7 << 4
		w |= imm >> 6 & 3 << 2
		return uint16(w), nil
	case isa.OpCSWSP:
		if in.Imm < 0 || in.Imm > 252 || in.Imm&3 != 0 {
			return 0, fmt.Errorf("encode: c.swsp: offset %d invalid", in.Imm)
		}
		w := uint32(0xc002) | uint32(in.Rs2)<<2
		w |= imm >> 2 & 15 << 9
		w |= imm >> 6 & 3 << 7
		return uint16(w), nil
	case isa.OpCJR:
		if in.Rs1 == 0 {
			return 0, fmt.Errorf("encode: c.jr: rs1 must not be x0")
		}
		return uint16(0x8002 | uint32(in.Rs1)<<7), nil
	case isa.OpCJALR:
		if in.Rs1 == 0 {
			return 0, fmt.Errorf("encode: c.jalr: rs1 must not be x0")
		}
		return uint16(0x9002 | uint32(in.Rs1)<<7), nil
	case isa.OpCMV:
		if in.Rs2 == 0 {
			return 0, fmt.Errorf("encode: c.mv: rs2 must not be x0")
		}
		return uint16(0x8002 | uint32(in.Rd)<<7 | uint32(in.Rs2)<<2), nil
	case isa.OpCADD:
		if in.Rs2 == 0 {
			return 0, fmt.Errorf("encode: c.add: rs2 must not be x0")
		}
		return uint16(0x9002 | uint32(in.Rd)<<7 | uint32(in.Rs2)<<2), nil
	}
	return 0, fmt.Errorf("encode: %s is not a compressed instruction", in.Op)
}
