package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/decode"
	"repro/internal/isa"
)

// randInst builds a random architecturally valid instruction for op.
func randInst(rng *rand.Rand, op isa.Op) decode.Inst {
	p, ok := isa.PatternFor(op)
	if !ok {
		panic("randInst: no pattern for " + op.String())
	}
	in := decode.Inst{Op: op}
	reg := func() isa.Reg { return isa.Reg(rng.Intn(32)) }
	switch p.Fmt {
	case isa.FmtNone:
	case isa.FmtR:
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
	case isa.FmtR4:
		in.Rd, in.Rs1, in.Rs2, in.Rs3 = reg(), reg(), reg(), reg()
	case isa.FmtI:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int32(rng.Intn(4096) - 2048)
	case isa.FmtIShift:
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int32(rng.Intn(32))
	case isa.FmtS:
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(rng.Intn(4096) - 2048)
	case isa.FmtB:
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(rng.Intn(4096)-2048) * 2
	case isa.FmtU:
		in.Rd = reg()
		in.Imm = int32(rng.Uint32() & 0xfffff000)
	case isa.FmtJ:
		in.Rd = reg()
		in.Imm = int32(rng.Intn(1<<20)-1<<19) * 2
	case isa.FmtCSR:
		in.Rd, in.Rs1 = reg(), reg()
		in.CSR = isa.CSR(rng.Intn(1 << 12))
	case isa.FmtCSRI:
		in.Rd = reg()
		in.Imm = int32(rng.Intn(32))
		in.CSR = isa.CSR(rng.Intn(1 << 12))
	case isa.FmtRUnary:
		in.Rd, in.Rs1 = reg(), reg()
	}
	return in
}

// normalize clears fields that are not part of op's encoding so decoded
// instructions can be compared field-wise with their sources.
func normalize(in decode.Inst) decode.Inst {
	in.Raw = 0
	in.Size = 0
	return in
}

// The fundamental decoder/encoder contract: decode(encode(i)) == i for
// every op and every valid operand assignment.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, op := range isa.Ops() {
		if op.Extension() == isa.ExtC {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			want := randInst(rng, op)
			w, err := Encode(want)
			if err != nil {
				t.Fatalf("%v: encode %+v: %v", op, want, err)
			}
			got := decode.Decode32(w)
			if got.Op != op {
				t.Fatalf("%v: encoded 0x%08x decodes to %v (%+v)", op, w, got.Op, want)
			}
			if normalize(got) != normalize(want) {
				t.Fatalf("%v: round trip mismatch:\n  in:  %+v\n  out: %+v\n  word 0x%08x",
					op, want, got, w)
			}
		}
	}
}

// Compressed round trip over every compressed op.
func TestEncode16DecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	creg := func() isa.Reg { return isa.Reg(8 + rng.Intn(8)) }
	full := func() isa.Reg { return isa.Reg(1 + rng.Intn(31)) }
	gen := map[isa.Op]func() decode.Inst{
		isa.OpCNOP:    func() decode.Inst { return decode.Inst{Op: isa.OpCNOP} },
		isa.OpCEBREAK: func() decode.Inst { return decode.Inst{Op: isa.OpCEBREAK} },
		isa.OpCADDI4SPN: func() decode.Inst {
			return decode.Inst{Op: isa.OpCADDI4SPN, Rd: creg(), Rs1: isa.SP,
				Imm: int32(rng.Intn(255)+1) * 4}
		},
		isa.OpCLW: func() decode.Inst {
			return decode.Inst{Op: isa.OpCLW, Rd: creg(), Rs1: creg(),
				Imm: int32(rng.Intn(32)) * 4}
		},
		isa.OpCSW: func() decode.Inst {
			return decode.Inst{Op: isa.OpCSW, Rs2: creg(), Rs1: creg(),
				Imm: int32(rng.Intn(32)) * 4}
		},
		isa.OpCADDI: func() decode.Inst {
			r := full()
			imm := int32(rng.Intn(63) - 31)
			if r == 0 && imm == 0 {
				imm = 1
			}
			return decode.Inst{Op: isa.OpCADDI, Rd: r, Rs1: r, Imm: imm}
		},
		isa.OpCJAL: func() decode.Inst {
			return decode.Inst{Op: isa.OpCJAL, Rd: isa.RA,
				Imm: int32(rng.Intn(2048)-1024) * 2}
		},
		isa.OpCJ: func() decode.Inst {
			return decode.Inst{Op: isa.OpCJ, Rd: isa.Zero,
				Imm: int32(rng.Intn(2048)-1024) * 2}
		},
		isa.OpCLI: func() decode.Inst {
			return decode.Inst{Op: isa.OpCLI, Rd: full(),
				Imm: int32(rng.Intn(64) - 32)}
		},
		isa.OpCADDI16SP: func() decode.Inst {
			imm := int32(rng.Intn(63)-31) * 16
			if imm == 0 {
				imm = 16
			}
			return decode.Inst{Op: isa.OpCADDI16SP, Rd: isa.SP, Rs1: isa.SP, Imm: imm}
		},
		isa.OpCLUI: func() decode.Inst {
			r := full()
			for r == isa.SP {
				r = full()
			}
			hi := int32(rng.Intn(63) - 31)
			if hi == 0 {
				hi = 1
			}
			return decode.Inst{Op: isa.OpCLUI, Rd: r, Imm: hi << 12}
		},
		isa.OpCSRLI: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCSRLI, Rd: r, Rs1: r, Imm: int32(rng.Intn(32))}
		},
		isa.OpCSRAI: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCSRAI, Rd: r, Rs1: r, Imm: int32(rng.Intn(32))}
		},
		isa.OpCANDI: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCANDI, Rd: r, Rs1: r, Imm: int32(rng.Intn(64) - 32)}
		},
		isa.OpCSUB: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCSUB, Rd: r, Rs1: r, Rs2: creg()}
		},
		isa.OpCXOR: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCXOR, Rd: r, Rs1: r, Rs2: creg()}
		},
		isa.OpCOR: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCOR, Rd: r, Rs1: r, Rs2: creg()}
		},
		isa.OpCAND: func() decode.Inst {
			r := creg()
			return decode.Inst{Op: isa.OpCAND, Rd: r, Rs1: r, Rs2: creg()}
		},
		isa.OpCBEQZ: func() decode.Inst {
			return decode.Inst{Op: isa.OpCBEQZ, Rs1: creg(), Rs2: isa.Zero,
				Imm: int32(rng.Intn(256)-128) * 2}
		},
		isa.OpCBNEZ: func() decode.Inst {
			return decode.Inst{Op: isa.OpCBNEZ, Rs1: creg(), Rs2: isa.Zero,
				Imm: int32(rng.Intn(256)-128) * 2}
		},
		isa.OpCSLLI: func() decode.Inst {
			r := full()
			return decode.Inst{Op: isa.OpCSLLI, Rd: r, Rs1: r, Imm: int32(rng.Intn(32))}
		},
		isa.OpCLWSP: func() decode.Inst {
			return decode.Inst{Op: isa.OpCLWSP, Rd: full(), Rs1: isa.SP,
				Imm: int32(rng.Intn(64)) * 4}
		},
		isa.OpCSWSP: func() decode.Inst {
			return decode.Inst{Op: isa.OpCSWSP, Rs2: isa.Reg(rng.Intn(32)), Rs1: isa.SP,
				Imm: int32(rng.Intn(64)) * 4}
		},
		isa.OpCJR:   func() decode.Inst { return decode.Inst{Op: isa.OpCJR, Rs1: full()} },
		isa.OpCJALR: func() decode.Inst { return decode.Inst{Op: isa.OpCJALR, Rd: isa.RA, Rs1: full()} },
		isa.OpCMV: func() decode.Inst {
			return decode.Inst{Op: isa.OpCMV, Rd: full(), Rs2: full()}
		},
		isa.OpCADD: func() decode.Inst {
			r := full()
			return decode.Inst{Op: isa.OpCADD, Rd: r, Rs1: r, Rs2: full()}
		},
	}
	for _, op := range isa.Ops() {
		if op.Extension() != isa.ExtC {
			continue
		}
		g, ok := gen[op]
		if !ok {
			t.Fatalf("no generator for compressed op %v", op)
		}
		for trial := 0; trial < 200; trial++ {
			want := g()
			h, err := Encode16(want)
			if err != nil {
				t.Fatalf("%v: encode %+v: %v", op, want, err)
			}
			got := decode.Decode16(h)
			if got.Op != op {
				t.Fatalf("%v: encoded 0x%04x decodes to %v (%+v)", op, h, got.Op, want)
			}
			if normalize(got) != normalize(want) {
				t.Fatalf("%v: round trip mismatch:\n  in:  %+v\n  out: %+v\n  half 0x%04x",
					op, want, got, h)
			}
		}
	}
}

// Property: any valid compressed decode re-encodes to the identical bits
// (the compressed format has canonical encodings for everything we accept).
func TestDecode16EncodeFixedPoint(t *testing.T) {
	for w := 0; w < 1<<16; w++ {
		in := decode.Decode16(uint16(w))
		if !in.Valid() {
			continue
		}
		h, err := Encode16(in)
		if err != nil {
			t.Fatalf("0x%04x decoded to %v but re-encode failed: %v", w, in, err)
		}
		if h != uint16(w) {
			t.Fatalf("0x%04x -> %v -> 0x%04x (not a fixed point)", w, in, h)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []decode.Inst{
		{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 2048},
		{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: -2049},
		{Op: isa.OpSLLI, Rd: 1, Rs1: 1, Imm: 32},
		{Op: isa.OpSW, Rs1: 1, Rs2: 2, Imm: 4000},
		{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 3},    // odd
		{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 5000}, // too far
		{Op: isa.OpLUI, Rd: 1, Imm: 0x123},         // low bits set
		{Op: isa.OpJAL, Rd: 1, Imm: 1 << 20},       // too far
		{Op: isa.OpCSRRWI, Rd: 1, Imm: 32, CSR: 0x300},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%+v) should have failed", c)
		}
	}
}

func TestEncodeRejectsCompressedOps(t *testing.T) {
	if _, err := Encode(decode.Inst{Op: isa.OpCADDI, Rd: 1, Rs1: 1, Imm: 1}); err == nil {
		t.Error("Encode must reject compressed ops")
	}
	if _, err := Encode16(decode.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1}); err == nil {
		t.Error("Encode16 must reject 32-bit ops")
	}
}

// testing/quick property: any ADDI with in-range immediate round-trips.
func TestQuickADDIRoundTrip(t *testing.T) {
	f := func(rd, rs1 uint8, imm int16) bool {
		in := decode.Inst{
			Op:  isa.OpADDI,
			Rd:  isa.Reg(rd % 32),
			Rs1: isa.Reg(rs1 % 32),
			Imm: int32(imm % 2048),
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		out := decode.Decode32(w)
		return normalize(out) == normalize(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// testing/quick property: branch offsets round-trip over the full range.
func TestQuickBranchOffsets(t *testing.T) {
	f := func(rs1, rs2 uint8, off int16) bool {
		in := decode.Inst{
			Op:  isa.OpBNE,
			Rs1: isa.Reg(rs1 % 32),
			Rs2: isa.Reg(rs2 % 32),
			Imm: int32(off) * 2 / 2 * 2, // force even, stays in ±4094
		}
		if in.Imm < -4096 || in.Imm > 4095 {
			return true // out of encodable range, skip
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		return decode.Decode32(w).Imm == in.Imm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode should panic on invalid input")
		}
	}()
	MustEncode(decode.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 99999})
}
