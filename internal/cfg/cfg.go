// Package cfg reconstructs control-flow graphs from RV32 machine code.
// It is the structural substrate of the WCET flow: the static analyzer
// annotates its blocks and edges with worst-case cycle costs, and the QTA
// co-simulation tracks execution through them. Reconstruction follows
// reachable code from the entry point (so data in the image is never
// misdecoded), splits at branch targets, distinguishes calls from jumps,
// and recognizes the bare-metal "jump-to-self" idle idiom as a halt node.
package cfg

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/decode"
	"repro/internal/isa"
)

// TermKind classifies how a basic block ends.
type TermKind uint8

const (
	TermFall   TermKind = iota // falls into the next block (split at a leader)
	TermBranch                 // conditional branch: taken + fallthrough edges
	TermJump                   // unconditional direct jump
	TermCall                   // jal/jalr with a link register: callee + return-to-fallthrough
	TermRet                    // indirect jump (function return)
	TermHalt                   // ebreak / self-loop idle / trap-raising end
)

func (k TermKind) String() string {
	switch k {
	case TermFall:
		return "fall"
	case TermBranch:
		return "branch"
	case TermJump:
		return "jump"
	case TermCall:
		return "call"
	case TermRet:
		return "ret"
	case TermHalt:
		return "halt"
	}
	return "term?"
}

// EdgeKind classifies a CFG edge for cost assignment.
type EdgeKind uint8

const (
	EdgeFall  EdgeKind = iota // straight-line continuation
	EdgeTaken                 // taken conditional branch
	EdgeJump                  // unconditional jump
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeJump:
		return "jump"
	}
	return "edge?"
}

// Succ is one control-flow successor of a block.
type Succ struct {
	Addr uint32
	Kind EdgeKind
}

// Block is one basic block.
type Block struct {
	Start uint32
	Insts []decode.Inst
	Addrs []uint32
	Term  TermKind
	Succs []Succ

	// CallTarget is the callee entry for TermCall blocks. Indirect calls
	// carry 0 unless resolution (BuildResolved) pinned a single target.
	CallTarget uint32

	// CallTargets lists every statically resolved callee of an indirect
	// TermCall block (nil for direct calls and unresolved indirects).
	// len > 1 means a call through a table of known function pointers:
	// CallTarget stays 0, but the callees are all in the graph.
	CallTargets []uint32
}

// End returns the address one past the last instruction.
func (b *Block) End() uint32 {
	last := len(b.Insts) - 1
	return b.Addrs[last] + uint32(b.Insts[last].Size)
}

// Graph is a whole-program CFG.
type Graph struct {
	Entry  uint32
	Blocks map[uint32]*Block
	Order  []uint32 // block starts in ascending address order
}

// Build reconstructs the CFG of the code reachable from entry in image
// (loaded at base). Indirect jumps and calls terminate exploration: the
// graph is open at those points (TermRet / TermCall with CallTarget 0).
func Build(image []byte, base, entry uint32) (*Graph, error) {
	return BuildResolved(image, base, entry, nil)
}

// BuildResolved is Build with externally resolved indirect control flow:
// indirect maps the address of a jalr/c.jr/c.jalr instruction to the set
// of targets it can transfer to, as proven by a value analysis (see
// internal/subset). Resolved indirect jumps become TermJump blocks with
// one edge per target, closing the CFG; resolved indirect calls record
// their callees (CallTarget for a unique one, CallTargets always), so
// interprocedural walks follow them. Instructions absent from the map
// keep Build's open-graph behaviour.
func BuildResolved(image []byte, base, entry uint32, indirect map[uint32][]uint32) (*Graph, error) {
	fetch16 := func(addr uint32) (uint16, bool) {
		off := addr - base
		if addr < base || int(off)+2 > len(image) {
			return 0, false
		}
		return binary.LittleEndian.Uint16(image[off:]), true
	}
	decodeAt := func(addr uint32) (decode.Inst, bool) {
		lo, ok := fetch16(addr)
		if !ok {
			return decode.Inst{}, false
		}
		if decode.IsCompressed(lo) {
			return decode.Decode16(lo), true
		}
		hi, ok := fetch16(addr + 2)
		if !ok {
			return decode.Inst{}, false
		}
		return decode.Decode32(uint32(lo) | uint32(hi)<<16), true
	}

	insts := make(map[uint32]decode.Inst)
	leaders := map[uint32]bool{entry: true}
	work := []uint32{entry}
	seen := map[uint32]bool{}

	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		for addr != 0 && !seen[addr] {
			seen[addr] = true
			in, ok := decodeAt(addr)
			if !ok {
				return nil, fmt.Errorf("cfg: fetch out of image at 0x%08x", addr)
			}
			insts[addr] = in
			if !in.Valid() {
				break // decodes as illegal: terminates the path
			}
			next := addr + uint32(in.Size)
			switch {
			case in.Op.IsBranch():
				tgt, _ := in.Target(addr)
				leaders[tgt] = true
				leaders[next] = true
				work = append(work, tgt)
				addr = next
			case in.Op == isa.OpJAL || in.Op == isa.OpCJ || in.Op == isa.OpCJAL:
				tgt, _ := in.Target(addr)
				leaders[tgt] = true
				work = append(work, tgt)
				if in.Rd != isa.Zero { // call: execution resumes after it
					leaders[next] = true
					addr = next
				} else {
					addr = 0 // direct jump: the target is already queued
				}
			case in.Op == isa.OpJALR || in.Op == isa.OpCJR || in.Op == isa.OpCJALR:
				for _, tgt := range indirect[addr] {
					leaders[tgt] = true
					work = append(work, tgt)
				}
				if in.Rd != isa.Zero {
					// Indirect call (callees, if resolved, were queued
					// above): execution resumes after it.
					leaders[next] = true
					addr = next
				} else {
					addr = 0 // return / indirect jump terminates the path
				}
			case in.Op == isa.OpECALL, in.Op == isa.OpEBREAK, in.Op == isa.OpMRET,
				in.Op == isa.OpCEBREAK:
				addr = 0
			default:
				addr = next
			}
		}
	}

	// Split into blocks at leaders.
	addrs := make([]uint32, 0, len(insts))
	for a := range insts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	g := &Graph{Entry: entry, Blocks: make(map[uint32]*Block)}
	var cur *Block
	flush := func() {
		if cur != nil && len(cur.Insts) > 0 {
			g.Blocks[cur.Start] = cur
			g.Order = append(g.Order, cur.Start)
		}
		cur = nil
	}
	for i, a := range addrs {
		in := insts[a]
		// Start a new block at leaders and after gaps.
		if cur == nil || leaders[a] || a != cur.End() {
			flush()
			cur = &Block{Start: a}
		}
		cur.Insts = append(cur.Insts, in)
		cur.Addrs = append(cur.Addrs, a)
		terminated := classify(cur, in, a, indirect)
		contiguousNext := i+1 < len(addrs) && addrs[i+1] == a+uint32(in.Size)
		if terminated || !contiguousNext {
			flush()
		}
	}
	flush()

	// Add fallthrough edges for blocks split at leaders.
	for _, start := range g.Order {
		b := g.Blocks[start]
		if b.Term == TermFall {
			next := b.End()
			if _, ok := g.Blocks[next]; ok {
				b.Succs = []Succ{{next, EdgeFall}}
			} else {
				b.Term = TermHalt
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool { return g.Order[i] < g.Order[j] })
	if _, ok := g.Blocks[entry]; !ok {
		return nil, fmt.Errorf("cfg: entry 0x%08x produced no block", entry)
	}
	return g, nil
}

// classify fills the block's terminator info when in ends it; it reports
// whether in terminates the block. indirect carries resolved indirect
// targets keyed by instruction address (nil for the open graph).
func classify(b *Block, in decode.Inst, addr uint32, indirect map[uint32][]uint32) bool {
	if !in.Valid() {
		b.Term = TermHalt
		return true
	}
	next := addr + uint32(in.Size)
	switch {
	case in.Op.IsBranch():
		tgt, _ := in.Target(addr)
		b.Term = TermBranch
		b.Succs = []Succ{{tgt, EdgeTaken}, {next, EdgeFall}}
		return true
	case in.Op == isa.OpJAL, in.Op == isa.OpCJ, in.Op == isa.OpCJAL:
		tgt, _ := in.Target(addr)
		if in.Rd != isa.Zero {
			b.Term = TermCall
			b.CallTarget = tgt
			b.Succs = []Succ{{next, EdgeJump}}
			return true
		}
		if tgt == addr {
			// jump-to-self: the bare-metal idle/halt idiom.
			b.Term = TermHalt
			return true
		}
		b.Term = TermJump
		b.Succs = []Succ{{tgt, EdgeJump}}
		return true
	case in.Op == isa.OpJALR, in.Op == isa.OpCJR, in.Op == isa.OpCJALR:
		tgts := indirect[addr]
		if in.Rd != isa.Zero {
			// Indirect call: return-to-fallthrough; the callee set is
			// whatever resolution proved (possibly nothing).
			b.Term = TermCall
			b.CallTarget = 0
			b.CallTargets = tgts
			if len(tgts) == 1 {
				b.CallTarget = tgts[0]
			}
			b.Succs = []Succ{{next, EdgeJump}}
			return true
		}
		if len(tgts) > 0 {
			// Resolved computed goto (jump table): the graph closes with
			// one jump edge per proven target.
			b.Term = TermJump
			for _, t := range tgts {
				b.Succs = append(b.Succs, Succ{t, EdgeJump})
			}
			return true
		}
		b.Term = TermRet
		return true
	case in.Op == isa.OpECALL, in.Op == isa.OpEBREAK, in.Op == isa.OpMRET, in.Op == isa.OpCEBREAK:
		b.Term = TermHalt
		return true
	}
	return false
}

// BlockAt returns the block containing addr, if any.
func (g *Graph) BlockAt(addr uint32) (*Block, bool) {
	// Blocks are sorted; binary search on Order.
	i := sort.Search(len(g.Order), func(i int) bool { return g.Order[i] > addr })
	if i == 0 {
		return nil, false
	}
	b := g.Blocks[g.Order[i-1]]
	if addr >= b.Start && addr < b.End() {
		return b, true
	}
	return nil, false
}

// FunctionBlocks returns the starts of all blocks reachable from entry
// without following call edges (the intraprocedural region), sorted.
func (g *Graph) FunctionBlocks(entry uint32) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	var walk func(u uint32)
	walk = func(u uint32) {
		if seen[u] {
			return
		}
		b, ok := g.Blocks[u]
		if !ok {
			return
		}
		seen[u] = true
		out = append(out, u)
		for _, s := range b.Succs {
			walk(s.Addr)
		}
	}
	walk(entry)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Callees returns the statically known call targets in the function at
// entry.
func (g *Graph) Callees(entry uint32) []uint32 {
	set := map[uint32]bool{}
	for _, u := range g.FunctionBlocks(entry) {
		b := g.Blocks[u]
		if b.Term != TermCall {
			continue
		}
		if b.CallTarget != 0 {
			set[b.CallTarget] = true
		}
		for _, t := range b.CallTargets {
			set[t] = true
		}
	}
	out := make([]uint32, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DOT renders the graph in Graphviz format, with optional symbol names.
func (g *Graph) DOT(symbols map[uint32]string) string {
	return g.DOTAnnotated(symbols, nil)
}

// DOTAnnotated renders the graph in Graphviz format with extra
// annotation lines appended to each block's label (keyed by block start
// address): loop facts, inferred bounds, lint findings.
func (g *Graph) DOTAnnotated(symbols map[uint32]string, notes map[uint32][]string) string {
	var sb strings.Builder
	sb.WriteString("digraph cfg {\n  node [shape=box fontname=monospace];\n")
	for _, start := range g.Order {
		b := g.Blocks[start]
		var lines []string
		if name, ok := symbols[start]; ok {
			lines = append(lines, name+":")
		}
		for i, in := range b.Insts {
			lines = append(lines, fmt.Sprintf("%08x: %s", b.Addrs[i], in))
		}
		for _, n := range notes[start] {
			lines = append(lines, "# "+n)
		}
		fmt.Fprintf(&sb, "  b%x [label=\"%s\"];\n", start, strings.Join(lines, "\\l")+"\\l")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, "  b%x -> b%x [label=\"%s\"];\n", start, s.Addr, s.Kind)
		}
		if b.Term == TermCall && b.CallTarget != 0 {
			fmt.Fprintf(&sb, "  b%x -> b%x [style=dashed label=\"call\"];\n", start, b.CallTarget)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
