package cfg_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/torture"
)

// The CFG invariants must hold over arbitrary generated programs: every
// block is non-empty and internally contiguous, blocks never overlap,
// every edge targets a block start, and all loops are reducible with
// in-loop heads dominated by themselves.
func TestCFGInvariantsOnTorturePrograms(t *testing.T) {
	prelude := "\t.equ SYSCON_EXIT, 0x00100000\n"
	for seed := int64(100); seed < 130; seed++ {
		p := torture.Generate(torture.Config{Seed: seed, Insts: 300, ISA: isa.RV32Full})
		prog, err := asm.AssembleAt(prelude+p.Source, 0x8000_0000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var prevEnd uint32
		for i, start := range g.Order {
			b := g.Blocks[start]
			if len(b.Insts) == 0 {
				t.Fatalf("seed %d: empty block 0x%x", seed, start)
			}
			if i > 0 && b.Start < prevEnd {
				t.Fatalf("seed %d: overlapping blocks at 0x%x", seed, b.Start)
			}
			prevEnd = b.End()
			for j := 1; j < len(b.Addrs); j++ {
				if b.Addrs[j] != b.Addrs[j-1]+uint32(b.Insts[j-1].Size) {
					t.Fatalf("seed %d: gap inside block 0x%x", seed, start)
				}
			}
			for _, s := range b.Succs {
				if _, ok := g.Blocks[s.Addr]; !ok {
					t.Fatalf("seed %d: dangling edge 0x%x -> 0x%x", seed, start, s.Addr)
				}
			}
		}

		loops, err := g.NaturalLoops(g.Entry)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every generated loop label must be found as a loop head.
		heads := map[uint32]bool{}
		for _, l := range loops {
			heads[l.Head] = true
			if !l.Blocks[l.Head] {
				t.Fatalf("seed %d: loop head outside its own body", seed)
			}
			for _, back := range l.Back {
				if !l.Blocks[back] {
					t.Fatalf("seed %d: back-edge source outside loop", seed)
				}
			}
		}
		for label := range p.LoopBounds {
			addr, ok := prog.Symbols[label]
			if !ok {
				t.Fatalf("seed %d: loop label %s missing from symbols", seed, label)
			}
			if !heads[addr] {
				t.Errorf("seed %d: generated loop %s not detected as natural loop", seed, label)
			}
		}
	}
}
