package cfg_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
)

// build assembles source at 0 and reconstructs its CFG.
func build(t *testing.T, src string) (*asm.Program, *cfg.Graph) {
	t.Helper()
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func TestStraightLineSingleBlock(t *testing.T) {
	_, g := build(t, `
		addi a0, zero, 1
		addi a1, zero, 2
		add a2, a0, a1
		ebreak
	`)
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	b := g.Blocks[g.Entry]
	if len(b.Insts) != 4 || b.Term != cfg.TermHalt {
		t.Errorf("block: %d insts, term %v", len(b.Insts), b.Term)
	}
}

func TestBranchSplitsBlocks(t *testing.T) {
	prog, g := build(t, `
		addi a0, zero, 5
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (%v)", len(g.Blocks), g.Order)
	}
	loopAddr := prog.Symbols["loop"]
	lb, ok := g.Blocks[loopAddr]
	if !ok {
		t.Fatal("no block at loop label")
	}
	if lb.Term != cfg.TermBranch || len(lb.Succs) != 2 {
		t.Fatalf("loop block: term %v succs %v", lb.Term, lb.Succs)
	}
	var taken, fall *cfg.Succ
	for i := range lb.Succs {
		switch lb.Succs[i].Kind {
		case cfg.EdgeTaken:
			taken = &lb.Succs[i]
		case cfg.EdgeFall:
			fall = &lb.Succs[i]
		}
	}
	if taken == nil || taken.Addr != loopAddr {
		t.Errorf("taken edge: %+v", taken)
	}
	if fall == nil || fall.Addr != lb.End() {
		t.Errorf("fall edge: %+v", fall)
	}
}

func TestDataNotDecoded(t *testing.T) {
	prog, g := build(t, `
		la a0, data
		lw a1, 0(a0)
		ebreak
data:	.word 0xffffffff, 0x00000000
	`)
	dataAddr := prog.Symbols["data"]
	for _, start := range g.Order {
		b := g.Blocks[start]
		if b.End() > dataAddr {
			t.Errorf("block [0x%x,0x%x) overlaps data at 0x%x", b.Start, b.End(), dataAddr)
		}
	}
}

func TestCallAndReturn(t *testing.T) {
	prog, g := build(t, `
_start:
		jal ra, fn
		ebreak
fn:		addi a0, a0, 1
		ret
	`)
	entryBlock := g.Blocks[g.Entry]
	if entryBlock.Term != cfg.TermCall {
		t.Fatalf("entry term = %v", entryBlock.Term)
	}
	if entryBlock.CallTarget != prog.Symbols["fn"] {
		t.Errorf("call target 0x%x", entryBlock.CallTarget)
	}
	if len(entryBlock.Succs) != 1 || entryBlock.Succs[0].Addr != entryBlock.End() {
		t.Errorf("call fallthrough: %+v", entryBlock.Succs)
	}
	fn := g.Blocks[prog.Symbols["fn"]]
	if fn == nil || fn.Term != cfg.TermRet {
		t.Fatalf("fn block: %+v", fn)
	}
	callees := g.Callees(g.Entry)
	if len(callees) != 1 || callees[0] != prog.Symbols["fn"] {
		t.Errorf("callees: %v", callees)
	}
	// The function partition of _start must not include fn's body.
	for _, u := range g.FunctionBlocks(g.Entry) {
		if u == prog.Symbols["fn"] {
			t.Error("call edge leaked into FunctionBlocks")
		}
	}
}

func TestSelfJumpIsHalt(t *testing.T) {
	_, g := build(t, `
		addi a0, zero, 1
idle:	j idle
	`)
	var haltSeen bool
	for _, start := range g.Order {
		b := g.Blocks[start]
		if b.Term == cfg.TermHalt && len(b.Succs) == 0 {
			haltSeen = true
		}
	}
	if !haltSeen {
		t.Error("self-jump idle block not classified as halt")
	}
}

func TestBlockAt(t *testing.T) {
	_, g := build(t, `
		addi a0, zero, 1
		addi a1, zero, 2
		beqz a0, skip
		addi a2, zero, 3
skip:	ebreak
	`)
	b, ok := g.BlockAt(g.Entry + 4)
	if !ok || b.Start != g.Entry {
		t.Errorf("BlockAt mid-block failed: %+v %v", b, ok)
	}
	if _, ok := g.BlockAt(0xdead0000); ok {
		t.Error("BlockAt outside code should miss")
	}
}

func TestInstructionPartition(t *testing.T) {
	// Every decoded instruction must belong to exactly one block, blocks
	// must not overlap, and every edge must point at a block start.
	_, g := build(t, `
		li a0, 16
outer:	li a1, 8
inner:	addi a1, a1, -1
		bnez a1, inner
		addi a0, a0, -1
		bgtz a0, outer
		jal ra, helper
		ebreak
helper:	addi t0, t0, 1
		beqz t0, helper
		ret
	`)
	type span struct{ lo, hi uint32 }
	var spans []span
	for _, start := range g.Order {
		b := g.Blocks[start]
		if len(b.Insts) == 0 {
			t.Fatalf("empty block at 0x%x", start)
		}
		for i, a := range b.Addrs {
			if i > 0 && a != b.Addrs[i-1]+uint32(b.Insts[i-1].Size) {
				t.Errorf("gap inside block 0x%x", start)
			}
		}
		spans = append(spans, span{b.Start, b.End()})
		for _, s := range b.Succs {
			if _, ok := g.Blocks[s.Addr]; !ok {
				t.Errorf("edge 0x%x->0x%x targets no block", start, s.Addr)
			}
		}
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Errorf("blocks overlap: %+v %+v", spans[i-1], spans[i])
		}
	}
}

func TestDominatorsSimpleDiamond(t *testing.T) {
	prog, g := build(t, `
entry:	beqz a0, left
right:	addi a1, zero, 1
		j join
left:	addi a1, zero, 2
join:	ebreak
	`)
	idom := g.Dominators(g.Entry)
	join := prog.Symbols["join"]
	left := prog.Symbols["left"]
	right := prog.Symbols["right"]
	if idom[join] != g.Entry {
		t.Errorf("idom(join) = 0x%x, want entry 0x%x", idom[join], g.Entry)
	}
	if idom[left] != g.Entry || idom[right] != g.Entry {
		t.Errorf("idom(left/right) = 0x%x/0x%x", idom[left], idom[right])
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	prog, g := build(t, `
		li a0, 4
outer:	li a1, 3
inner:	addi a1, a1, -1
		bnez a1, inner
		addi a0, a0, -1
		bnez a0, outer
		ebreak
	`)
	loops, err := g.NaturalLoops(g.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	byHead := map[uint32]*cfg.Loop{}
	for _, l := range loops {
		byHead[l.Head] = l
	}
	outer := byHead[prog.Symbols["outer"]]
	inner := byHead[prog.Symbols["inner"]]
	if outer == nil || inner == nil {
		t.Fatalf("loop heads: %v", byHead)
	}
	if inner.Parent != outer {
		t.Error("inner loop not nested in outer")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths: outer %d inner %d", outer.Depth, inner.Depth)
	}
	if !outer.Blocks[inner.Head] {
		t.Error("outer loop must contain inner head")
	}
}

func TestLoopWithBreak(t *testing.T) {
	prog, g := build(t, `
		li a0, 10
loop:	addi a0, a0, -1
		beqz a0, out
		blt a0, zero, out
		j loop
out:	ebreak
	`)
	loops, err := g.NaturalLoops(g.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if loops[0].Head != prog.Symbols["loop"] {
		t.Errorf("head = 0x%x", loops[0].Head)
	}
	if loops[0].Blocks[prog.Symbols["out"]] {
		t.Error("exit block must not be in the loop")
	}
}

func TestCompressedMixedCFG(t *testing.T) {
	_, g := build(t, `
		c.li a0, 5
loop:	c.addi a0, -1
		c.bnez a0, loop
		c.ebreak
	`)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	loops, err := g.NaturalLoops(g.Entry)
	if err != nil || len(loops) != 1 {
		t.Fatalf("loops: %v, %v", loops, err)
	}
}

func TestDOTOutput(t *testing.T) {
	prog, g := build(t, `
main:	beqz a0, end
		addi a0, a0, -1
end:	ebreak
	`)
	symByAddr := map[uint32]string{}
	for name, addr := range prog.Symbols {
		symByAddr[addr] = name
	}
	dot := g.DOT(symByAddr)
	for _, frag := range []string{"digraph", "main:", "taken", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}
