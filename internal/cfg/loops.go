package cfg

import (
	"fmt"
	"sort"
)

// rpo computes a reverse postorder over the function at entry, along with
// predecessor lists (intraprocedural edges only).
func (g *Graph) rpo(entry uint32) (order []uint32, preds map[uint32][]uint32) {
	preds = make(map[uint32][]uint32)
	seen := map[uint32]bool{}
	var post []uint32
	var dfs func(u uint32)
	dfs = func(u uint32) {
		if seen[u] {
			return
		}
		seen[u] = true
		b, ok := g.Blocks[u]
		if !ok {
			return
		}
		for _, s := range b.Succs {
			if _, ok := g.Blocks[s.Addr]; ok {
				preds[s.Addr] = append(preds[s.Addr], u)
				dfs(s.Addr)
			}
		}
		post = append(post, u)
	}
	dfs(entry)
	order = make([]uint32, len(post))
	for i, u := range post {
		order[len(post)-1-i] = u
	}
	return order, preds
}

// Dominators computes the immediate dominator of every block in the
// function at entry (Cooper–Harvey–Kennedy iterative algorithm). The
// entry maps to itself.
func (g *Graph) Dominators(entry uint32) map[uint32]uint32 {
	order, preds := g.rpo(entry)
	rpoNum := make(map[uint32]int, len(order))
	for i, u := range order {
		rpoNum[u] = i
	}
	idom := map[uint32]uint32{entry: entry}
	intersect := func(a, b uint32) uint32 {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range order {
			if u == entry {
				continue
			}
			var newIdom uint32
			have := false
			for _, p := range preds[u] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if !have {
					newIdom = p
					have = true
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if have && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under the idom map
// returned by Dominators.
func Dominates(idom map[uint32]uint32, a, b uint32) bool {
	return dominates(idom, a, b)
}

// dominates reports whether a dominates b under idom.
func dominates(idom map[uint32]uint32, a, b uint32) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// Loop is one natural loop.
type Loop struct {
	Head   uint32
	Blocks map[uint32]bool
	Parent *Loop    // innermost enclosing loop, nil at top level
	Depth  int      // 1 = outermost
	Back   []uint32 // sources of the back edges
}

// NaturalLoops finds the natural loops of the function at entry, sorted
// by head address, with nesting computed. It returns an error for
// irreducible flow (a back edge whose target does not dominate its
// source), which the WCET analyzer refuses to bound.
func (g *Graph) NaturalLoops(entry uint32) ([]*Loop, error) {
	order, preds := g.rpo(entry)
	idom := g.Dominators(entry)
	inFunc := map[uint32]bool{}
	for _, u := range order {
		inFunc[u] = true
	}

	loops := map[uint32]*Loop{}
	for _, u := range order {
		for _, s := range g.Blocks[u].Succs {
			h := s.Addr
			if !inFunc[h] {
				continue
			}
			if !dominates(idom, h, u) {
				// Forward or cross edge unless it closes a cycle; detect
				// retreating edges that are not back edges (irreducible).
				if reaches(g, inFunc, h, u) && rpoIndex(order, h) <= rpoIndex(order, u) {
					return nil, fmt.Errorf("cfg: irreducible loop around 0x%08x -> 0x%08x", u, h)
				}
				continue
			}
			l := loops[h]
			if l == nil {
				l = &Loop{Head: h, Blocks: map[uint32]bool{h: true}}
				loops[h] = l
			}
			l.Back = append(l.Back, u)
			// Natural loop body: backwards walk from u to h.
			stack := []uint32{u}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[v] {
					continue
				}
				l.Blocks[v] = true
				for _, p := range preds[v] {
					stack = append(stack, p)
				}
			}
		}
	}

	out := make([]*Loop, 0, len(loops))
	for _, l := range loops {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Head < out[j].Head })

	// Nesting: the parent is the smallest strictly containing loop.
	for _, l := range out {
		var best *Loop
		for _, m := range out {
			if m == l || !m.Blocks[l.Head] || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			contains := true
			for b := range l.Blocks {
				if !m.Blocks[b] {
					contains = false
					break
				}
			}
			if contains && (best == nil || len(m.Blocks) < len(best.Blocks)) {
				best = m
			}
		}
		l.Parent = best
	}
	for _, l := range out {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	return out, nil
}

func rpoIndex(order []uint32, u uint32) int {
	for i, v := range order {
		if v == u {
			return i
		}
	}
	return -1
}

// reaches reports whether dst is reachable from src within the function.
func reaches(g *Graph, inFunc map[uint32]bool, src, dst uint32) bool {
	seen := map[uint32]bool{}
	stack := []uint32{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == dst {
			return true
		}
		if seen[u] || !inFunc[u] {
			continue
		}
		seen[u] = true
		for _, s := range g.Blocks[u].Succs {
			stack = append(stack, s.Addr)
		}
	}
	return false
}
