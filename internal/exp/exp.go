// Package exp regenerates every table and figure of the evaluation: one
// function per experiment (E1..E9 in EXPERIMENTS.md), each returning
// structured rows plus the formatted table the tooling prints. The
// cmd/s4e-experiments binary and the repository benchmarks are thin
// wrappers over this package.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/cover"
	"repro/internal/emu"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/plugin"
	"repro/internal/qta"
	"repro/internal/suites"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// E1Inventory reports the ecosystem component table (the DATE'22 paper's
// overview content): every subsystem and its implementation status.
func E1Inventory() string {
	rows := [][2]string{
		{"instruction-set emulator (QEMU role)", "internal/emu: RV32IMFC+Zicsr+Zifencei+Xbmi, TB cache, interrupts"},
		{"plugin API (TCG plugin role)", "internal/plugin: translate/block/insn/mem/trap hooks, in-process"},
		{"virtual platform", "internal/vp: RAM, UART, CLINT, syscon, sensor at fixed memory map"},
		{"assembler / toolchain", "internal/asm: two-pass, pseudo-instructions, numeric labels"},
		{"object format", "internal/elf: ELF32 RISC-V writer/reader with symbols"},
		{"CFG reconstruction", "internal/cfg: leaders, calls, dominators, natural loops, DOT"},
		{"timing models", "internal/timing: edge-small / edge-fast / edge-cache / unit profiles"},
		{"static WCET analysis (aiT role)", "internal/wcet: block costs, flow facts + inferred bounds, longest path"},
		{"QTA co-simulation (core contribution)", "internal/qta: WCET-annotated execution, per-block profile"},
		{"coverage qualification", "internal/cover: instruction-type + GPR/FPR/CSR metric"},
		{"test suites", "internal/suites: architectural / unit / torture / compliance families"},
		{"random test generation (Torture role)", "internal/torture: seeded, terminating, WCET-boundable"},
		{"fault effect analysis", "internal/fault: 4 bit-flip models, coverage-guided plans, parallel campaigns"},
		{"memory/IO access analysis", "internal/watch: non-invasive access-policy monitor (lock-control scenario)"},
		{"demonstrator workloads", "internal/workloads: crypto, DSP/vision, control, sorting, BMI pairs"},
	}
	var sb strings.Builder
	sb.WriteString("E1: Scale4Edge ecosystem component inventory\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-40s %s\n", r[0], r[1])
	}
	return sb.String()
}

// E2QTA runs the QTA three-way comparison (static WCET / QTA / dynamic)
// for every workload on the given profile.
func E2QTA(prof *timing.Profile) ([]qta.Result, string, error) {
	var rows []qta.Result
	var sb strings.Builder
	fmt.Fprintf(&sb, "E2: WCET-annotated co-simulation (profile %s)\n", prof.Name())
	fmt.Fprintf(&sb, "  %-14s %10s %10s %10s %11s %9s  %s\n",
		"program", "static", "qta", "dynamic", "static/dyn", "qta/dyn", "sound")
	for _, w := range workloads.All() {
		r, err := flow.RunQTA(w, prof)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "  %-14s %10d %10d %10d %11.2f %9.2f  %v\n",
			r.Program, r.StaticWCET, r.QTATime, r.Dynamic,
			float64(r.StaticWCET)/float64(r.Dynamic),
			float64(r.QTATime)/float64(r.Dynamic), r.Sound())
	}
	return rows, sb.String(), nil
}

// OverheadRow is one instrumentation-overhead measurement.
type OverheadRow struct {
	Program string
	PlainNS int64 // wall time, plain emulation
	CountNS int64 // with the counting plugin
	QTANS   int64 // with the QTA analyzer
	Insts   uint64
}

// E3Overhead measures the slowdown of plugin instrumentation and the
// full QTA co-simulation relative to plain emulation.
func E3Overhead(prof *timing.Profile) ([]OverheadRow, string, error) {
	var rows []OverheadRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "E3: instrumentation overhead (profile %s)\n", prof.Name())
	fmt.Fprintf(&sb, "  %-14s %12s %12s %12s %8s %8s\n",
		"program", "plain", "count-plugin", "qta", "xcount", "xqta")
	for _, w := range workloads.All() {
		plain, insts, err := timeRun(w, prof, nil)
		if err != nil {
			return nil, "", err
		}
		count, _, err := timeRun(w, prof, func() plugin.Plugin { return &plugin.Count{} })
		if err != nil {
			return nil, "", err
		}
		qtaNS, _, err := timeQTA(w, prof)
		if err != nil {
			return nil, "", err
		}
		r := OverheadRow{Program: w.Name, PlainNS: plain, CountNS: count, QTANS: qtaNS, Insts: insts}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "  %-14s %10dus %10dus %10dus %8.2f %8.2f\n",
			r.Program, r.PlainNS/1000, r.CountNS/1000, r.QTANS/1000,
			float64(r.CountNS)/float64(r.PlainNS), float64(r.QTANS)/float64(r.PlainNS))
	}
	return rows, sb.String(), nil
}

func timeRun(w workloads.Workload, prof *timing.Profile, mk func() plugin.Plugin) (int64, uint64, error) {
	const reps = 5
	var best int64 = 1 << 62
	var insts uint64
	for i := 0; i < reps; i++ {
		var plugins []plugin.Plugin
		if mk != nil {
			plugins = append(plugins, mk())
		}
		start := time.Now()
		p, stop, err := flow.RunWith(w, prof, plugins...)
		d := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, 0, err
		}
		if stop.Reason != emu.StopExit {
			return 0, 0, fmt.Errorf("exp: %s stopped with %v", w.Name, stop)
		}
		insts = p.Machine.Hart.Instret
		if d < best {
			best = d
		}
	}
	return best, insts, nil
}

func timeQTA(w workloads.Workload, prof *timing.Profile) (int64, uint64, error) {
	a, err := flow.Analyze(w.Source, prof, w.LoopBounds)
	if err != nil {
		return 0, 0, err
	}
	const reps = 5
	var best int64 = 1 << 62
	var insts uint64
	for i := 0; i < reps; i++ {
		q := qta.New(a.Annotated)
		start := time.Now()
		p, stop, err := flow.RunWith(w, prof, q)
		d := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, 0, err
		}
		if stop.Reason != emu.StopExit {
			return 0, 0, fmt.Errorf("exp: %s stopped with %v", w.Name, stop)
		}
		insts = p.Machine.Hart.Instret
		if d < best {
			best = d
		}
	}
	return best, insts, nil
}

// CoverageRow is one suite's coverage report.
type CoverageRow struct {
	Suite  string
	Report cover.Report
}

// E4Coverage reproduces the three-suite coverage study and its union.
func E4Coverage(set isa.ExtSet) ([]CoverageRow, string, error) {
	fams := []struct {
		name  string
		suite suites.Suite
	}{
		{"architectural", suites.Architectural(set)},
		{"unit", suites.Unit(set)},
		{"torture", suites.Torture(set, 8, 1000)},
	}
	union := cover.New(set)
	var rows []CoverageRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "E4: suite coverage on %s\n", set)
	fmt.Fprintf(&sb, "  %-14s %12s %9s %9s %7s\n", "suite", "insn types", "GPR", "FPR", "CSR")
	emit := func(name string, c *cover.Coverage) {
		r := c.Report()
		rows = append(rows, CoverageRow{Suite: name, Report: r})
		fpr := "-"
		if r.FPRTotal > 0 {
			fpr = fmt.Sprintf("%.1f%%", cover.Pct(r.FPRCovered, r.FPRTotal))
		}
		fmt.Fprintf(&sb, "  %-14s %11.1f%% %8.1f%% %9s %3d/%2d\n",
			name, cover.Pct(r.OpsCovered, r.OpsTotal), cover.Pct(r.GPRCovered, 32),
			fpr, r.CSRCovered, r.CSRTotal)
	}
	for _, f := range fams {
		c, err := suites.Run(f.suite, set)
		if err != nil {
			return nil, "", err
		}
		if err := union.Merge(c); err != nil {
			return nil, "", err
		}
		emit(f.name, c)
	}
	emit("union", union)
	return rows, sb.String(), nil
}

// E5Faults runs the fault classification campaign per fault model.
func E5Faults(workload string, n int) (*fault.Results, string, error) {
	w, ok := workloads.ByName(workload)
	if !ok {
		return nil, "", fmt.Errorf("exp: unknown workload %q", workload)
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return nil, "", err
	}
	tg := &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor}
	g, err := fault.RunGolden(tg)
	if err != nil {
		return nil, "", err
	}
	// Code faults target the text (up to the first data symbol); memory
	// faults target pre-initialized data that the program actually
	// consumes (key material, coefficients), so a stuck cell can matter.
	imageEnd := vp.RAMBase + uint32(len(prog.Bytes))
	codeEnd := imageEnd
	dataStart := imageEnd
	for _, sym := range []string{"key", "coef", "buf", "data"} {
		if addr, ok := prog.Symbol(sym); ok && addr < codeEnd {
			codeEnd = addr
		}
		if addr, ok := prog.Symbol(sym); ok && addr < dataStart {
			dataStart = addr
		}
	}
	plan := fault.NewPlan(fault.PlanConfig{
		Seed:         99,
		GPRTransient: n,
		MemPermanent: n / 2,
		CodeBitflip:  n / 2,
		GoldenInsts:  g.Insts,
		CodeStart:    vp.RAMBase,
		CodeEnd:      codeEnd,
		DataStart:    dataStart,
		DataEnd:      imageEnd,
	})
	res, err := fault.Campaign(tg, plan, runtime.NumCPU())
	if err != nil {
		return nil, "", err
	}
	return res, fmt.Sprintf("E5: fault classification, workload %s, %d mutants\n%s",
		workload, res.Total, res.String()), nil
}

// ThroughputRow is one campaign-scaling measurement.
type ThroughputRow struct {
	Workers    int
	MutantsSec float64
}

// E6Throughput measures mutant simulations per second against worker
// count (the fault paper's platform-scaling claim).
func E6Throughput(workload string, mutants int, workerSteps []int) ([]ThroughputRow, string, error) {
	w, ok := workloads.ByName(workload)
	if !ok {
		return nil, "", fmt.Errorf("exp: unknown workload %q", workload)
	}
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return nil, "", err
	}
	tg := &fault.Target{Program: prog, Budget: w.Budget, Sensor: w.Sensor}
	g, err := fault.RunGolden(tg)
	if err != nil {
		return nil, "", err
	}
	plan := fault.NewPlan(fault.PlanConfig{Seed: 5, GPRTransient: mutants, GoldenInsts: g.Insts})
	var rows []ThroughputRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "E6: campaign throughput, workload %s, %d mutants\n", workload, mutants)
	fmt.Fprintf(&sb, "  %8s %14s\n", "workers", "mutants/sec")
	for _, wk := range workerSteps {
		start := time.Now()
		if _, err := fault.Campaign(tg, plan, wk); err != nil {
			return nil, "", err
		}
		d := time.Since(start).Seconds()
		r := ThroughputRow{Workers: wk, MutantsSec: float64(mutants) / d}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "  %8d %14.0f\n", r.Workers, r.MutantsSec)
	}
	return rows, sb.String(), nil
}

// SpeedupRow is one base-vs-BMI kernel comparison.
type SpeedupRow struct {
	Kernel     string
	BaseCycles uint64
	BMICycles  uint64
	Speedup    float64
}

// E7BMI reproduces the bit-manipulation speedup table on the edge-small
// profile.
func E7BMI(prof *timing.Profile) ([]SpeedupRow, string, error) {
	var rows []SpeedupRow
	var sb strings.Builder
	fmt.Fprintf(&sb, "E7: Xbmi speedup (profile %s)\n", prof.Name())
	fmt.Fprintf(&sb, "  %-16s %12s %12s %9s\n", "kernel", "base cycles", "bmi cycles", "speedup")
	for _, pair := range workloads.Pairs() {
		base, bmi := pair[0], pair[1]
		cb, err := cyclesOf(base, prof)
		if err != nil {
			return nil, "", err
		}
		cx, err := cyclesOf(bmi, prof)
		if err != nil {
			return nil, "", err
		}
		name := strings.TrimSuffix(base.Name, "_base")
		r := SpeedupRow{Kernel: name, BaseCycles: cb, BMICycles: cx,
			Speedup: float64(cb) / float64(cx)}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "  %-16s %12d %12d %8.2fx\n", r.Kernel, r.BaseCycles, r.BMICycles, r.Speedup)
	}
	return rows, sb.String(), nil
}

func cyclesOf(w workloads.Workload, prof *timing.Profile) (uint64, error) {
	p, stop, err := flow.RunWith(w, prof)
	if err != nil {
		return 0, err
	}
	if stop.Reason != emu.StopExit {
		return 0, fmt.Errorf("exp: %s stopped with %v", w.Name, stop)
	}
	return p.Machine.Hart.Cycle, nil
}

// MIPSRow is one emulation-speed measurement across the engine axis.
type MIPSRow struct {
	Program      string
	MIPSThreaded float64
	MIPSSwitch   float64
	MIPSNoTB     float64
}

// E8MIPS measures emulator speed (million instructions per host second)
// per workload under the threaded-code engine, the switch engine, and
// the switch engine with the translation-block cache disabled.
func E8MIPS() ([]MIPSRow, string, error) {
	var rows []MIPSRow
	var sb strings.Builder
	sb.WriteString("E8: emulation speed (host MIPS)\n")
	fmt.Fprintf(&sb, "  %-14s %10s %10s %12s %8s\n", "program", "threaded", "switch", "no-tb-cache", "thr/sw")
	for _, w := range workloads.All() {
		mt, err := mips(w, emu.EngineThreaded, false)
		if err != nil {
			return nil, "", err
		}
		ms, err := mips(w, emu.EngineSwitch, false)
		if err != nil {
			return nil, "", err
		}
		mn, err := mips(w, emu.EngineSwitch, true)
		if err != nil {
			return nil, "", err
		}
		r := MIPSRow{Program: w.Name, MIPSThreaded: mt, MIPSSwitch: ms, MIPSNoTB: mn}
		rows = append(rows, r)
		fmt.Fprintf(&sb, "  %-14s %10.1f %10.1f %12.1f %8.2fx\n",
			r.Program, r.MIPSThreaded, r.MIPSSwitch, r.MIPSNoTB, r.MIPSThreaded/r.MIPSSwitch)
	}
	return rows, sb.String(), nil
}

// mips times steady-state runs (one platform, rewound between reps) and
// returns the best observed MIPS.
func mips(w workloads.Workload, engine emu.Engine, disableTB bool) (float64, error) {
	const reps = 3
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		return 0, err
	}
	p, err := vp.New(vp.Config{Sensor: w.Sensor})
	if err != nil {
		return 0, err
	}
	p.Machine.Engine = engine
	p.Machine.DisableTBCache = disableTB
	if err := p.LoadProgram(prog); err != nil {
		return 0, err
	}
	base := p.Snapshot()
	best := 0.0
	for i := 0; i < reps; i++ {
		p.RestoreReuse(base, prog)
		start := time.Now()
		stop := p.Run(w.Budget)
		d := time.Since(start).Seconds()
		if stop.Reason != emu.StopExit {
			return 0, fmt.Errorf("exp: %s stopped with %v", w.Name, stop)
		}
		if m := float64(p.Machine.Hart.Instret) / d / 1e6; m > best {
			best = m
		}
	}
	return best, nil
}

// DensityRow is one code-density measurement.
type DensityRow struct {
	Program   string
	PlainText int
	RVCText   int
	Reduction float64 // percent
}

// E9Density measures the text-size reduction of RVC relaxation per
// workload (the C-extension code-density argument for edge devices),
// verifying each compressed build still produces the reference checksum.
func E9Density() ([]DensityRow, string, error) {
	var rows []DensityRow
	var sb strings.Builder
	sb.WriteString("E9: RVC code density (text bytes)\n")
	fmt.Fprintf(&sb, "  %-14s %10s %10s %10s\n", "program", "plain", "rvc", "saved")
	var tp, tc int
	for _, w := range workloads.All() {
		plain, err := asm.AssembleAtOpt(vp.Prelude+w.Source, vp.RAMBase, asm.Options{})
		if err != nil {
			return nil, "", err
		}
		comp, err := asm.AssembleAtOpt(vp.Prelude+w.Source, vp.RAMBase, asm.Options{Compress: true})
		if err != nil {
			return nil, "", err
		}
		// The compressed build must still compute the reference result.
		p, err := vp.New(vp.Config{Sensor: w.Sensor})
		if err != nil {
			return nil, "", err
		}
		if err := p.LoadProgram(comp); err != nil {
			return nil, "", err
		}
		if stop := p.Run(w.Budget); stop.Reason != emu.StopExit || stop.Code != w.Expect {
			return nil, "", fmt.Errorf("exp: %s compressed build broke: %v", w.Name, stop)
		}
		r := DensityRow{
			Program:   w.Name,
			PlainText: plain.TextBytes,
			RVCText:   comp.TextBytes,
			Reduction: 100 * (1 - float64(comp.TextBytes)/float64(plain.TextBytes)),
		}
		rows = append(rows, r)
		tp += r.PlainText
		tc += r.RVCText
		fmt.Fprintf(&sb, "  %-14s %10d %10d %9.1f%%\n", r.Program, r.PlainText, r.RVCText, r.Reduction)
	}
	fmt.Fprintf(&sb, "  %-14s %10d %10d %9.1f%%\n", "total", tp, tc,
		100*(1-float64(tc)/float64(tp)))
	return rows, sb.String(), nil
}

// All runs every experiment and concatenates the tables; the experiment
// ids may be restricted.
func All(ids []string) (string, error) {
	want := map[string]bool{}
	for _, id := range ids {
		want[strings.ToLower(id)] = true
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }
	var sb strings.Builder
	add := func(s string) {
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	if sel("e1") {
		add(E1Inventory())
	}
	if sel("e2") {
		for _, prof := range []*timing.Profile{timing.EdgeSmall(), timing.EdgeFast(), timing.EdgeCache()} {
			_, s, err := E2QTA(prof)
			if err != nil {
				return "", err
			}
			add(s)
		}
	}
	if sel("e3") {
		_, s, err := E3Overhead(timing.EdgeSmall())
		if err != nil {
			return "", err
		}
		add(s)
	}
	if sel("e4") {
		for _, set := range []isa.ExtSet{isa.RV32IMF, isa.RV32IM} {
			_, s, err := E4Coverage(set)
			if err != nil {
				return "", err
			}
			add(s)
		}
	}
	if sel("e5") {
		_, s, err := E5Faults("xtea", 400)
		if err != nil {
			return "", err
		}
		add(s)
	}
	if sel("e6") {
		steps := []int{1, 2, 4, runtime.NumCPU()}
		steps = dedupInts(steps)
		_, s, err := E6Throughput("pid", 600, steps)
		if err != nil {
			return "", err
		}
		add(s)
	}
	if sel("e7") {
		_, s, err := E7BMI(timing.EdgeSmall())
		if err != nil {
			return "", err
		}
		add(s)
	}
	if sel("e8") {
		_, s, err := E8MIPS()
		if err != nil {
			return "", err
		}
		add(s)
	}
	if sel("e9") {
		_, s, err := E9Density()
		if err != nil {
			return "", err
		}
		add(s)
	}
	return sb.String(), nil
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}
