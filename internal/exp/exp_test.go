package exp_test

import (
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/timing"
)

func TestE1ListsEveryComponent(t *testing.T) {
	out := exp.E1Inventory()
	for _, frag := range []string{"internal/emu", "internal/qta", "internal/wcet",
		"internal/fault", "internal/cover", "internal/torture"} {
		if !strings.Contains(out, frag) {
			t.Errorf("inventory missing %s", frag)
		}
	}
}

func TestE2AllSound(t *testing.T) {
	rows, table, err := exp.E2QTA(timing.EdgeSmall())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 12 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Sound() {
			t.Errorf("%s unsound: %+v", r.Program, r)
		}
	}
	if !strings.Contains(table, "static/dyn") {
		t.Error("table header missing")
	}
}

func TestE4ShapesHold(t *testing.T) {
	rows, _, err := exp.E4Coverage(isa.RV32IM)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]exp.CoverageRow{}
	for _, r := range rows {
		byName[r.Suite] = r
	}
	arch, tor, union := byName["architectural"], byName["torture"], byName["union"]
	if arch.Report.GPRCovered >= tor.Report.GPRCovered {
		t.Error("architectural should touch fewer GPRs than torture")
	}
	if tor.Report.OpsCovered >= arch.Report.OpsCovered {
		t.Error("torture should cover fewer op types than architectural")
	}
	if union.Report.GPRCovered != 32 {
		t.Errorf("union GPR = %d", union.Report.GPRCovered)
	}
}

func TestE5KeyFaultsAreNeverMasked(t *testing.T) {
	res, table, err := exp.E5Faults("xtea", 60)
	if err != nil {
		t.Fatal(err)
	}
	mem := res.ByModel[fault.MemPermanent]
	if mem[fault.Masked] != 0 {
		t.Errorf("stuck bits in the XTEA key were masked: %v", mem)
	}
	if !strings.Contains(table, "mutants") {
		t.Error("table header missing")
	}
}

func TestE7PopcountWinsBig(t *testing.T) {
	rows, _, err := exp.E7BMI(timing.EdgeSmall())
	if err != nil {
		t.Fatal(err)
	}
	var pop *exp.SpeedupRow
	for i, r := range rows {
		if r.Kernel == "popcount" {
			pop = &rows[i]
		}
		if r.Speedup <= 1 {
			t.Errorf("%s: BMI not faster (%.2f)", r.Kernel, r.Speedup)
		}
	}
	if pop == nil || pop.Speedup < 3 {
		t.Errorf("popcount speedup should be the headline (>3x): %+v", pop)
	}
}

func TestAllSelectsExperiments(t *testing.T) {
	out, err := exp.All([]string{"e1", "e7"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E1:") || !strings.Contains(out, "E7:") {
		t.Error("selected experiments missing")
	}
	if strings.Contains(out, "E5:") {
		t.Error("unselected experiment ran")
	}
}
