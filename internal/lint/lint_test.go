package lint_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/flow"
	"repro/internal/lint"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// lintSrc assembles an assembly body under the platform prelude and runs
// the linter with the platform configuration — exactly what s4e-lint
// does.
func lintSrc(t *testing.T, src string, bounds map[string]int) []lint.Finding {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+src, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.LintProgram(prog, bounds)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// want asserts at least one finding with the given check and severity
// whose message contains frag, and returns it.
func want(t *testing.T, fs []lint.Finding, check string, sev lint.Severity, frag string) lint.Finding {
	t.Helper()
	for _, f := range fs {
		if f.Check == check && f.Severity == sev && strings.Contains(f.Msg, frag) {
			return f
		}
	}
	t.Fatalf("no %s/%s finding containing %q in:\n%s", check, sev, frag, dump(fs))
	return lint.Finding{}
}

func wantNone(t *testing.T, fs []lint.Finding, check string) {
	t.Helper()
	for _, f := range fs {
		if f.Check == check {
			t.Errorf("unexpected %s finding: %s", check, f)
		}
	}
}

func dump(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (no findings)\n"
	}
	return b.String()
}

func TestUninitReadDefinite(t *testing.T) {
	fs := lintSrc(t, `
	add  a0, a1, a2
	ebreak
`, nil)
	want(t, fs, "uninit-read", lint.Definite, "a1")
	want(t, fs, "uninit-read", lint.Definite, "a2")
}

// A register written on only one branch of a join is a possible, not a
// definite, uninitialized read.
func TestUninitReadPossibleAtJoin(t *testing.T) {
	fs := lintSrc(t, `
	lw   t0, -4(sp)
	beqz t0, skip
	li   a1, 5
skip:	addi a0, a1, 0
	ebreak
`, nil)
	want(t, fs, "uninit-read", lint.Possible, "a1")
	// The read must not be promoted to definite: one path defines a1.
	for _, f := range fs {
		if f.Check == "uninit-read" && f.Severity == lint.Definite {
			t.Errorf("join read misclassified as definite: %s", f)
		}
	}
}

// sp is defined by the loader contract, so stack accesses are clean.
func TestLoaderContractSP(t *testing.T) {
	fs := lintSrc(t, `
	addi sp, sp, -16
	sw   zero, 0(sp)
	lw   a0, 0(sp)
	ebreak
`, nil)
	wantNone(t, fs, "uninit-read")
	wantNone(t, fs, "oob-access")
	wantNone(t, fs, "misaligned")
}

func TestUnreachableDefinite(t *testing.T) {
	fs := lintSrc(t, `
	li   a0, 1
	ebreak
	li   a1, 2
	li   a2, 3
`, nil)
	want(t, fs, "unreachable", lint.Definite, "not reachable")
}

// An indirect jump whose target the interval analysis proves constant
// (la+jr) closes the CFG: unreachable findings stay Definite instead of
// being blanket-demoted.
func TestUnreachableDefiniteWithResolvedIndirectJump(t *testing.T) {
	fs := lintSrc(t, `
	la   t0, fin
	jr   t0
	li   a1, 2
fin:	ebreak
`, nil)
	want(t, fs, "unreachable", lint.Definite, "not reachable")
}

// An indirect jump through a statically unknown register means the CFG
// may be incomplete: unreachable findings must be demoted to possible.
func TestUnreachableDemotedByIndirectJump(t *testing.T) {
	fs := lintSrc(t, `
	jr   a0
	li   a1, 2
fin:	ebreak
`, nil)
	for _, f := range fs {
		if f.Check == "unreachable" && f.Severity == lint.Definite {
			t.Errorf("unresolved indirect flow must demote unreachable: %s", f)
		}
	}
}

func TestDeadStore(t *testing.T) {
	fs := lintSrc(t, `
	li   a0, 5
	li   a0, 6
	sw   a0, -8(sp)
	ebreak
`, nil)
	f := want(t, fs, "dead-store", lint.Info, "a0")
	// Only the first write is dead; the second flows into a1.
	if got := len(findAll(fs, "dead-store")); got != 1 {
		t.Errorf("dead-store count = %d, want 1:\n%s", got, dump(fs))
	}
	_ = f
}

func TestX0Write(t *testing.T) {
	fs := lintSrc(t, `
	add  zero, sp, sp
	ebreak
`, nil)
	want(t, fs, "x0-write", lint.Info, "discards")
}

// The canonical nop must not be flagged as an x0 write.
func TestNopNotFlagged(t *testing.T) {
	fs := lintSrc(t, `
	nop
	ebreak
`, nil)
	wantNone(t, fs, "x0-write")
}

func TestOutOfMapAccessDefinite(t *testing.T) {
	fs := lintSrc(t, `
	li   t0, 0x40000000
	lw   t1, 0(t0)
	ebreak
`, nil)
	want(t, fs, "oob-access", lint.Definite, "outside every mapped region")
}

// sp points one past the end of RAM, so a store at 0(sp) lands fully
// outside the map — the off-by-one the loader contract makes easy.
func TestOutOfMapAccessPastRAMEnd(t *testing.T) {
	fs := lintSrc(t, `
	sw   zero, 0(sp)
	ebreak
`, nil)
	want(t, fs, "oob-access", lint.Definite, "outside")
}

func TestMisalignedDefinite(t *testing.T) {
	fs := lintSrc(t, `
	li   t0, 0x80000002
	lw   t1, 0(t0)
	ebreak
`, nil)
	want(t, fs, "misaligned", lint.Definite, "not 4-byte aligned")
}

// Byte accesses have no alignment requirement.
func TestByteAccessNeverMisaligned(t *testing.T) {
	fs := lintSrc(t, `
	li   t0, 0x80000003
	lb   t1, 0(t0)
	ebreak
`, nil)
	wantNone(t, fs, "misaligned")
}

func TestSelfModStoreWithoutFence(t *testing.T) {
	fs := lintSrc(t, `
	la   t0, patch
	li   t1, 0x13
	sw   t1, 0(t0)
	ebreak
patch:	nop
	ebreak
`, nil)
	want(t, fs, "selfmod-store", lint.Possible, "code image")
}

func TestSelfModStoreWithFenceClean(t *testing.T) {
	fs := lintSrc(t, `
	la   t0, patch
	li   t1, 0x13
	sw   t1, 0(t0)
	fence.i
	ebreak
patch:	nop
	ebreak
`, nil)
	wantNone(t, fs, "selfmod-store")
}

func TestUnboundedLoopFlagged(t *testing.T) {
	src := `
	li   a0, 0
	lw   a1, -4(sp)
loop:	addi a0, a0, 1
	blt  a0, a1, loop
	ebreak
`
	fs := lintSrc(t, src, nil)
	want(t, fs, "unbounded-loop", lint.Possible, "no user-supplied bound")

	// A user-supplied bound silences the finding.
	fs = lintSrc(t, src, map[string]int{"loop": 8})
	wantNone(t, fs, "unbounded-loop")
}

// A canonical counted loop is bounded by inference, so no finding.
func TestInferredBoundSilencesLoopFinding(t *testing.T) {
	fs := lintSrc(t, `
	li   a0, 0
loop:	addi a0, a0, 1
	slti t0, a0, 8
	bnez t0, loop
	ebreak
`, nil)
	wantNone(t, fs, "unbounded-loop")
}

func findAll(fs []lint.Finding, check string) []lint.Finding {
	var out []lint.Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

// Acceptance criterion: the linter reports zero definite findings on
// every shipped workload — a definite finding on working code is a
// soundness bug.
func TestWorkloadsHaveNoDefiniteFindings(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			fs := lintSrc(t, w.Source, w.LoopBounds)
			for _, f := range fs {
				if f.Severity == lint.Definite {
					t.Errorf("definite finding on shipped workload: %s", f)
				}
			}
		})
	}
}
