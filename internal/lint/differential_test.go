package lint_test

import (
	"fmt"
	"testing"

	"repro/internal/decode"
	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/lint"
	"repro/internal/torture"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// This file is the soundness net for the linter, in the spirit of the
// threaded engine's differential test: every workload and a batch of
// seeded torture programs execute under the threaded engine with a
// recording plugin attached, and no executed path may contradict a
// definite finding. Concretely: an address with a definite unreachable
// finding must never execute, and a definite uninit-read at an executed
// instruction must be corroborated by the dynamic trace (some source
// register really was never written before that point).

// execRecorder observes execution: which addresses ran, and at which of
// them a source register was read before any write to it.
type execRecorder struct {
	executed    map[uint32]bool
	uninitRead  map[uint32]bool
	written     uint32 // bitmask of integer registers written so far
	readScratch []isa.Reg
}

func newExecRecorder() *execRecorder {
	return &execRecorder{
		executed:   map[uint32]bool{},
		uninitRead: map[uint32]bool{},
		// The loader defines sp; x0 is always defined.
		written: 1<<uint(isa.Zero) | 1<<uint(isa.SP),
	}
}

func (r *execRecorder) Name() string { return "lint-differential" }

func (r *execRecorder) OnInsnExec(pc uint32, in decode.Inst) {
	r.executed[pc] = true
	r.readScratch = in.ReadsRegs(r.readScratch[:0])
	for _, reg := range r.readScratch {
		if r.written&(1<<uint(reg)) == 0 {
			r.uninitRead[pc] = true
		}
	}
	if rd, ok := in.WritesReg(); ok {
		r.written |= 1 << uint(rd)
	}
}

type soundnessCase struct {
	name   string
	src    string
	bounds map[string]int
	budget uint64
	sensor []int16
}

func soundnessCases() []soundnessCase {
	var cases []soundnessCase
	for _, w := range workloads.All() {
		cases = append(cases, soundnessCase{
			name:   "workload/" + w.Name,
			src:    w.Source,
			bounds: w.LoopBounds,
			budget: w.Budget,
			sensor: w.Sensor,
		})
	}
	for seed := int64(1); seed <= 8; seed++ {
		prog := torture.Generate(torture.Config{Seed: seed, Insts: 160})
		cases = append(cases, soundnessCase{
			name:   fmt.Sprintf("torture/seed%d", seed),
			src:    prog.Source,
			budget: prog.Budget,
		})
	}
	return cases
}

// TestLintDifferentialSoundness proves that definite findings hold on
// the paths the machine actually takes.
func TestLintDifferentialSoundness(t *testing.T) {
	for _, c := range soundnessCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p, err := vp.New(vp.Config{Sensor: c.sensor})
			if err != nil {
				t.Fatal(err)
			}
			rec := newExecRecorder()
			if err := p.Machine.Hooks.Register(rec); err != nil {
				t.Fatal(err)
			}
			prog, err := p.LoadSource(vp.Prelude + c.src)
			if err != nil {
				t.Fatal(err)
			}
			p.Machine.Engine = emu.EngineThreaded
			p.Run(c.budget)

			findings, err := flow.LintProgram(prog, c.bounds)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				if f.Severity != lint.Definite {
					continue
				}
				switch f.Check {
				case "unreachable":
					if rec.executed[f.Addr] {
						t.Errorf("definite-unreachable instruction executed: %s", f)
					}
				case "uninit-read":
					if rec.executed[f.Addr] && !rec.uninitRead[f.Addr] {
						t.Errorf("definite uninit-read not seen dynamically: %s", f)
					}
				}
			}
		})
	}
}
