package lint

import (
	"repro/internal/cfg"
	"repro/internal/isa"
)

// checkDeadStores flags register writes whose value is provably never
// read: overwritten or dropped on every path. The backward liveness is
// deliberately conservative about interprocedural flow — at calls and
// returns every register is live (the callee or caller may read it), and
// only pure computation classes are flagged, so a finding really is a
// useless instruction.
func (l *linter) checkDeadStores(entry uint32) {
	blocks := l.g.FunctionBlocks(entry)
	inFunc := map[uint32]bool{}
	for _, u := range blocks {
		inFunc[u] = true
	}

	const allLive = ^uint32(0)

	// liveIn[u]: registers live on entry to block u.
	liveIn := map[uint32]uint32{}
	transfer := func(u uint32, out uint32) uint32 {
		b := l.g.Blocks[u]
		live := out
		for i := len(b.Insts) - 1; i >= 0; i-- {
			in := b.Insts[i]
			if rd, ok := in.WritesReg(); ok {
				live &^= 1 << uint(rd)
			}
			for _, r := range in.ReadsRegs(nil) {
				live |= 1 << uint(r)
			}
		}
		return live
	}
	liveOut := func(u uint32) uint32 {
		b := l.g.Blocks[u]
		switch b.Term {
		case cfg.TermCall, cfg.TermRet:
			// The callee/caller may read anything.
			return allLive
		case cfg.TermHalt:
			return 0
		}
		var out uint32
		for _, s := range b.Succs {
			if inFunc[s.Addr] {
				out |= liveIn[s.Addr]
			}
		}
		return out
	}

	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			u := blocks[i]
			ni := transfer(u, liveOut(u))
			if ni != liveIn[u] {
				liveIn[u] = ni
				changed = true
			}
		}
	}

	for _, u := range blocks {
		b := l.g.Blocks[u]
		live := liveOut(u)
		// Walk backwards recording per-instruction liveness.
		type slot struct {
			idx  int
			live uint32
		}
		slots := make([]slot, 0, len(b.Insts))
		for i := len(b.Insts) - 1; i >= 0; i-- {
			slots = append(slots, slot{i, live})
			in := b.Insts[i]
			if rd, ok := in.WritesReg(); ok {
				live &^= 1 << uint(rd)
			}
			for _, r := range in.ReadsRegs(nil) {
				live |= 1 << uint(r)
			}
		}
		for _, s := range slots {
			in := b.Insts[s.idx]
			rd, ok := in.WritesReg()
			if !ok || rd == isa.Zero || s.live&(1<<uint(rd)) != 0 {
				continue // x0 writes are the x0-write check's business
			}
			switch in.Op.Class() {
			case isa.ClassALU, isa.ClassShift, isa.ClassMul, isa.ClassDiv, isa.ClassBMI:
			default:
				continue // loads, CSR reads, jumps have effects beyond rd
			}
			l.add("dead-store", Info, b.Addrs[s.idx],
				"value written to %s by %s is never read", rd, in.Op)
		}
	}
}
