// Package lint is the guest-binary linter of the ecosystem: a set of
// static checks over the reconstructed CFG, powered by the dataflow
// layer's interval and initialized-register analyses. It flags the bug
// classes a bare-metal RISC-V programmer actually hits on this platform:
// reads of never-written registers, unreachable code, dead register
// writes, accesses outside the memory map or misaligned, stores into the
// code image without a fence.i, and loops the WCET analysis will refuse.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/decode"
	"repro/internal/isa"
)

// Severity grades how certain a finding is.
type Severity uint8

const (
	// Info marks style-grade findings (dead stores, writes to x0).
	Info Severity = iota
	// Possible marks findings that hold on some abstraction of the
	// program but may not occur on any real path.
	Possible
	// Definite marks findings proven on every concretization: a definite
	// finding on an executed path is a soundness bug in the linter.
	Definite
)

func (s Severity) String() string {
	switch s {
	case Definite:
		return "definite"
	case Possible:
		return "possible"
	}
	return "info"
}

// Finding is one diagnostic.
type Finding struct {
	Check    string // stable check identifier, e.g. "uninit-read"
	Severity Severity
	Addr     uint32 // instruction address (block start for block-level checks)
	Line     int    // 1-based source line, 0 if unknown
	Msg      string
}

func (f Finding) String() string {
	loc := fmt.Sprintf("0x%08x", f.Addr)
	if f.Line > 0 {
		loc += fmt.Sprintf(" (line %d)", f.Line)
	}
	return fmt.Sprintf("%s: %s: %s: %s", loc, f.Severity, f.Check, f.Msg)
}

// Region is one valid data-access range of the platform.
type Region struct {
	Base, Size uint32
	Name       string
}

// Config parametrizes a lint run.
type Config struct {
	// Regions lists the valid data-access ranges; empty disables the
	// out-of-map and misalignment checks' region reasoning.
	Regions []Region
	// CodeStart/CodeEnd delimit the loaded image for the self-modifying
	// store check (end exclusive; equal values disable the check).
	CodeStart, CodeEnd uint32
	// Bounds and Symbols resolve user-supplied loop bounds, as in
	// wcet.Config.
	Bounds  map[string]int
	Symbols map[string]uint32
	// EntryRegs gives registers with known values at program entry (the
	// loader points sp at the top of RAM); EntryInit the registers that
	// are defined at entry. x0 is always defined.
	EntryRegs map[isa.Reg]dataflow.Interval
	EntryInit []isa.Reg
}

// Program lints an assembled program: build its CFG and run every check.
func Program(prog *asm.Program, conf Config) ([]Finding, error) {
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		return nil, err
	}
	return Graph(g, prog.Lines, conf), nil
}

// Graph lints a reconstructed CFG. lines maps instruction addresses to
// source lines (may be nil).
func Graph(g *cfg.Graph, lines map[uint32]int, conf Config) []Finding {
	l := &linter{g: g, lines: lines, conf: conf}
	l.run()
	sort.SliceStable(l.findings, func(i, j int) bool {
		if l.findings[i].Addr != l.findings[j].Addr {
			return l.findings[i].Addr < l.findings[j].Addr
		}
		return l.findings[i].Check < l.findings[j].Check
	})
	return l.findings
}

type linter struct {
	g        *cfg.Graph
	lines    map[uint32]int
	conf     Config
	findings []Finding
}

func (l *linter) add(check string, sev Severity, addr uint32, format string, args ...any) {
	l.findings = append(l.findings, Finding{
		Check:    check,
		Severity: sev,
		Addr:     addr,
		Line:     l.lines[addr],
		Msg:      fmt.Sprintf(format, args...),
	})
}

func (l *linter) run() {
	funcs := l.functions()
	for i, entry := range funcs {
		l.checkFunction(entry, i == 0)
	}
	l.checkUnreachable()
	l.checkSelfModifyingStores()
}

// functions returns the entry function followed by all statically known
// callees, transitively.
func (l *linter) functions() []uint32 {
	out := []uint32{l.g.Entry}
	seen := map[uint32]bool{l.g.Entry: true}
	for i := 0; i < len(out); i++ {
		for _, c := range l.g.Callees(out[i]) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// checkFunction runs the per-function dataflow-backed checks. isEntry
// selects the program-entry register assumptions; callees are analyzed
// with everything defined and unknown (their callers own the contract).
func (l *linter) checkFunction(entry uint32, isEntry bool) {
	ivEntry := dataflow.UnknownEntry()
	initEntry := dataflow.AllInit()
	if isEntry {
		for r, iv := range l.conf.EntryRegs {
			ivEntry[r] = iv
		}
		initEntry = dataflow.InitState{}
		for _, r := range l.conf.EntryInit {
			initEntry.May |= 1 << uint(r)
			initEntry.Must |= 1 << uint(r)
		}
	}
	ivs := dataflow.Solve(l.g, entry, dataflow.NewIntervalDomain(ivEntry))
	inits := dataflow.Solve(l.g, entry, dataflow.NewInitDomain(initEntry))

	var regs []isa.Reg
	for _, u := range ivs.Order {
		b := l.g.Blocks[u]
		ivState, okIv := ivs.In[u]
		initState, okInit := inits.In[u]
		for i, in := range b.Insts {
			pc := b.Addrs[i]
			if okInit {
				regs = in.ReadsRegs(regs[:0])
				for _, r := range regs {
					if !initState.MayInit(r) {
						l.add("uninit-read", Definite, pc,
							"%s reads %s, which is never written on any path from entry", in.Op, r)
					} else if !initState.MustInit(r) {
						l.add("uninit-read", Possible, pc,
							"%s reads %s, which is not written on some path from entry", in.Op, r)
					}
				}
				if rd, ok := in.WritesReg(); ok {
					initState.May |= 1 << uint(rd)
					initState.Must |= 1 << uint(rd)
				}
			}
			if okIv {
				l.checkAccess(pc, in, ivState)
				dataflow.ApplyInst(&ivState, pc, in)
			}
			l.checkX0Write(pc, in)
		}
	}

	l.checkDeadStores(entry)
	l.checkLoopBounds(entry)
}

// accessWidth returns the access size in bytes of a load/store and
// whether in is one.
func accessWidth(in decode.Inst) (uint32, bool) {
	switch in.Op {
	case isa.OpLW, isa.OpSW, isa.OpFLW, isa.OpFSW,
		isa.OpCLW, isa.OpCSW, isa.OpCLWSP, isa.OpCSWSP:
		return 4, true
	case isa.OpLH, isa.OpLHU, isa.OpSH:
		return 2, true
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1, true
	}
	return 0, false
}

// checkAccess flags statically out-of-map and misaligned accesses.
func (l *linter) checkAccess(pc uint32, in decode.Inst, s dataflow.IntervalState) {
	width, ok := accessWidth(in)
	if !ok {
		return
	}
	addrIv := s.Get(in.Rs1).AddConst(int64(in.Imm))
	if a, ok := addrIv.Singleton(); ok && width > 1 && a%width != 0 {
		l.add("misaligned", Definite, pc,
			"%s accesses 0x%08x, not %d-byte aligned", in.Op, a, width)
	}
	if len(l.conf.Regions) == 0 {
		return
	}
	ranges, ok := addrIv.U32Ranges()
	if !ok {
		return // unbounded address: nothing provable
	}
	anyInside := false
	allInside := true
	for _, r := range ranges {
		// The access covers [lo, hi+width-1].
		in1, all1 := rangeVsRegions(r[0], uint64(r[1])+uint64(width)-1, l.conf.Regions)
		anyInside = anyInside || in1
		allInside = allInside && all1
	}
	if !anyInside {
		l.add("oob-access", Definite, pc,
			"%s address %s is outside every mapped region", in.Op, addrIv)
	} else if !allInside {
		l.add("oob-access", Possible, pc,
			"%s address %s may fall outside the mapped regions", in.Op, addrIv)
	}
}

// rangeVsRegions reports whether [lo, last] intersects any region, and
// whether it is fully contained in a single region.
func rangeVsRegions(lo uint32, last uint64, regions []Region) (intersects, contained bool) {
	for _, reg := range regions {
		rLast := uint64(reg.Base) + uint64(reg.Size) - 1
		if last >= uint64(reg.Base) && uint64(lo) <= rLast {
			intersects = true
			if uint64(lo) >= uint64(reg.Base) && last <= rLast {
				contained = true
			}
		}
	}
	return intersects, contained
}

// checkX0Write flags computations whose result is discarded into x0.
func (l *linter) checkX0Write(pc uint32, in decode.Inst) {
	if !in.Valid() || in.Rd != isa.Zero {
		return
	}
	switch in.Op.Class() {
	case isa.ClassALU, isa.ClassShift, isa.ClassMul, isa.ClassDiv,
		isa.ClassBMI, isa.ClassLoad:
	default:
		return
	}
	fd, _, _ := isa.UsesFPRegs(in.Op)
	if fd {
		return
	}
	// The canonical nop encoding (addi x0, x0, 0) and compressed hints
	// are deliberate.
	if (in.Op == isa.OpADDI && in.Rs1 == isa.Zero && in.Imm == 0) ||
		in.Op == isa.OpCNOP {
		return
	}
	// Stores and branches reuse the field differently; their formats have
	// no rd. Formats were filtered by class above.
	l.add("x0-write", Info, pc, "%s discards its result into x0", in.Op)
}

// checkLoopBounds flags loops with neither a user-supplied bound nor an
// inferable one.
func (l *linter) checkLoopBounds(entry uint32) {
	loops, err := l.g.NaturalLoops(entry)
	if err != nil {
		l.add("unbounded-loop", Possible, entry, "irreducible control flow: %v", err)
		return
	}
	if len(loops) == 0 {
		return
	}
	inferred := dataflow.InferLoopBounds(l.g, entry, loops)
	bounded := map[uint32]bool{}
	for label, b := range l.conf.Bounds {
		if addr, ok := l.conf.Symbols[label]; ok && b >= 1 {
			bounded[addr] = true
		}
	}
	for _, lp := range loops {
		if bounded[lp.Head] {
			continue
		}
		if _, ok := inferred[lp.Head]; ok {
			continue
		}
		l.add("unbounded-loop", Possible, lp.Head,
			"loop has no user-supplied bound and none could be inferred")
	}
}

// checkUnreachable flags assembled instructions that no reachable block
// covers. When the program contains indirect jumps or calls with
// statically unknown targets, or installs a trap vector, the finding is
// demoted to possible (the CFG may simply not see the path).
func (l *linter) checkUnreachable() {
	if len(l.lines) == 0 {
		return
	}
	sev := Definite
	for _, u := range l.g.Order {
		b := l.g.Blocks[u]
		last := b.Insts[len(b.Insts)-1]
		switch {
		case b.Term == cfg.TermRet && last.Rs1 != isa.RA:
			sev = Possible // computed goto, not a return
		case b.Term == cfg.TermCall && b.CallTarget == 0 && len(b.CallTargets) == 0:
			sev = Possible // indirect call with no proven targets
		}
		for _, in := range b.Insts {
			if in.CSR == isa.CSRMtvec && in.Op.Class() == isa.ClassCSR {
				sev = Possible // a trap handler is reachable via traps
			}
		}
	}
	addrs := make([]uint32, 0, len(l.lines))
	for a := range l.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if _, ok := l.g.BlockAt(a); !ok {
			l.add("unreachable", sev, a, "instruction is not reachable from the entry point")
		}
	}
}

// checkSelfModifyingStores flags stores whose address range overlaps the
// code image with no fence.i on any forward path: PR 1's TB invalidation
// handles this dynamically, but on real silicon the stale-icache hazard
// is a bug unless followed by fence.i.
func (l *linter) checkSelfModifyingStores() {
	if l.conf.CodeEnd <= l.conf.CodeStart {
		return
	}
	// Blocks from which a fence.i is reachable (following fallthrough,
	// branch, jump, and call edges).
	fence := map[uint32]bool{}
	for _, u := range l.g.Order {
		for _, in := range l.g.Blocks[u].Insts {
			if in.Op == isa.OpFENCEI {
				fence[u] = true
			}
		}
	}
	canReachFence := func(from uint32) bool {
		seen := map[uint32]bool{}
		stack := []uint32{from}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fence[u] {
				return true
			}
			if seen[u] {
				continue
			}
			seen[u] = true
			b := l.g.Blocks[u]
			if b == nil {
				continue
			}
			for _, s := range b.Succs {
				stack = append(stack, s.Addr)
			}
			if b.Term == cfg.TermCall {
				if b.CallTarget != 0 {
					stack = append(stack, b.CallTarget)
				}
				stack = append(stack, b.CallTargets...)
			}
		}
		return false
	}

	for i, entry := range l.functions() {
		ivEntry := dataflow.UnknownEntry()
		if i == 0 {
			for r, iv := range l.conf.EntryRegs {
				ivEntry[r] = iv
			}
		}
		ivs := dataflow.Solve(l.g, entry, dataflow.NewIntervalDomain(ivEntry))
		for _, u := range ivs.Order {
			b := l.g.Blocks[u]
			s, ok := ivs.In[u]
			if !ok {
				continue
			}
			for j, in := range b.Insts {
				pc := b.Addrs[j]
				cls := in.Op.Class()
				if width, isAcc := accessWidth(in); isAcc &&
					(cls == isa.ClassStore || cls == isa.ClassFPStore) {
					addrIv := s.Get(in.Rs1).AddConst(int64(in.Imm))
					if ranges, bounded := addrIv.U32Ranges(); bounded {
						for _, r := range ranges {
							if uint64(r[1])+uint64(width) > uint64(l.conf.CodeStart) &&
								r[0] < l.conf.CodeEnd && !canReachFence(u) {
								l.add("selfmod-store", Possible, pc,
									"%s may write the code image (%s) with no fence.i on any following path", in.Op, addrIv)
								break
							}
						}
					}
				}
				dataflow.ApplyInst(&s, pc, in)
			}
		}
	}
}
