// Package torture generates random but guaranteed-terminating RISC-V
// test programs, the ecosystem's stand-in for the RISC-V Torture test
// generator. Programs initialize the full register state from the seed,
// execute a randomized instruction mix (ALU, memory, forward branches,
// bounded loops, CSR probes, FP arithmetic), fold every register into a
// checksum, and report it through the syscon device. Termination is
// structural: branches only jump forward and loops count down a reserved
// register, so every generated program halts and can even be bounded by
// the WCET analyzer via the returned loop bounds.
package torture

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Config parametrizes generation.
type Config struct {
	Seed  int64
	Insts int        // number of body instructions (default 200)
	ISA   isa.ExtSet // default RV32IM
}

// Program is one generated test.
type Program struct {
	Seed       int64
	Source     string
	LoopBounds map[string]int // loop-head label -> iterations, for WCET
	Budget     uint64         // instruction budget that safely covers execution
}

// Reserved registers: x0 (zero), x3 (gp = data base), x4 (tp = loop
// counter), x31 (t6 = exit scratch).
func targetRegs() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(1); r < 32; r++ {
		switch r {
		case isa.GP, isa.TP, isa.T6:
			continue
		}
		out = append(out, r)
	}
	return out
}

// safe CSRs for random probing: reads of counters/ids, read-write only on
// mscratch.
var csrReads = []isa.CSR{isa.CSRCycle, isa.CSRInstret, isa.CSRMhartid, isa.CSRMarchid, isa.CSRMscratch}

type gen struct {
	cfg    Config
	rng    *rand.Rand
	sb     strings.Builder
	regs   []isa.Reg
	labels int
	// pending forward-branch labels: distance (in emitted body
	// instructions) until the label must be placed.
	pending  map[int][]string
	emitted  int
	inLoop   bool
	loopLeft int
	curLoop  string
	bounds   map[string]int
}

// Generate produces one random program.
func Generate(cfg Config) Program {
	if cfg.Insts == 0 {
		cfg.Insts = 200
	}
	if cfg.ISA == 0 {
		cfg.ISA = isa.RV32IM
	}
	g := &gen{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		regs:    targetRegs(),
		pending: make(map[int][]string),
		bounds:  make(map[string]int),
	}
	g.prologue()
	for g.emitted < cfg.Insts {
		g.step()
	}
	g.closeLoop()
	g.flushAllLabels()
	g.epilogue()

	// Budget: prologue+epilogue (~120) plus body with loop replication;
	// generously padded.
	budget := uint64(cfg.Insts)*16 + 4096
	return Program{Seed: cfg.Seed, Source: g.sb.String(), LoopBounds: g.bounds, Budget: budget}
}

func (g *gen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *gen) reg() isa.Reg { return g.regs[g.rng.Intn(len(g.regs))] }

func (g *gen) prologue() {
	g.emitf("_start:")
	g.emitf("\tla gp, data")
	g.emitf("\tli tp, 1") // loop counter register: defined even if a
	// forward branch ever skips a loop prologue
	for _, r := range g.regs {
		g.emitf("\tli %s, %d", r, int32(g.rng.Uint32()))
	}
	if g.cfg.ISA.Has(isa.ExtF) {
		for i := 0; i < 32; i++ {
			g.emitf("\tfcvt.s.w %s, %s", isa.FReg(i), g.reg())
		}
	}
}

// step emits one random body instruction (or control structure).
func (g *gen) step() {
	// Place any labels scheduled for this position.
	g.flushLabels()
	if g.inLoop {
		g.loopLeft--
		if g.loopLeft <= 0 {
			g.closeLoop()
			return
		}
	}
	switch k := g.rng.Intn(100); {
	case k < 30:
		g.aluR()
	case k < 50:
		g.aluI()
	case k < 58:
		g.load()
	case k < 66:
		g.store()
	case k < 74:
		g.forwardBranch()
	case k < 79:
		// Only open a loop when no forward-branch label is pending:
		// a branch jumping over the loop's counter initialization
		// would make the trip count unbounded.
		if !g.inLoop && len(g.pending) == 0 {
			g.openLoop()
		} else {
			g.aluR()
		}
	case k < 84:
		g.upper()
	case k < 90:
		if g.cfg.ISA.Has(isa.ExtF) {
			g.fp()
		} else {
			g.aluR()
		}
	case k < 95:
		if g.cfg.ISA.Has(isa.ExtXbmi) {
			g.bmi()
		} else {
			g.aluI()
		}
	case k < 98:
		if g.cfg.ISA.Has(isa.ExtC) {
			g.compressed()
		} else {
			g.aluR()
		}
	default:
		g.csr()
	}
}

// creg picks a register addressable by the compressed prime forms
// (x8..x15; none of the reserved registers live in that range).
func (g *gen) creg() isa.Reg { return isa.Reg(8 + g.rng.Intn(8)) }

// compressed emits one 16-bit instruction.
func (g *gen) compressed() {
	switch g.rng.Intn(8) {
	case 0:
		imm := g.rng.Intn(63) - 31
		if imm == 0 {
			imm = 1
		}
		g.body("c.addi %s, %d", g.creg(), imm)
	case 1:
		g.body("c.li %s, %d", g.creg(), g.rng.Intn(64)-32)
	case 2:
		g.body("c.mv %s, %s", g.creg(), g.reg())
	case 3:
		g.body("c.add %s, %s", g.creg(), g.reg())
	case 4:
		ops := []string{"c.sub", "c.xor", "c.or", "c.and"}
		g.body("%s %s, %s", ops[g.rng.Intn(4)], g.creg(), g.creg())
	case 5:
		ops := []string{"c.slli", "c.srli", "c.srai"}
		g.body("%s %s, %d", ops[g.rng.Intn(3)], g.creg(), g.rng.Intn(31)+1)
	case 6:
		// c.lw/c.sw need the base in x8..x15: copy gp first.
		base := g.creg()
		g.body("c.mv %s, gp", base)
		g.body("c.lw %s, %d(%s)", g.creg(), g.rng.Intn(32)*4, base)
	default:
		base := g.creg()
		g.body("c.mv %s, gp", base)
		g.body("c.sw %s, %d(%s)", g.creg(), g.rng.Intn(32)*4, base)
	}
}

func (g *gen) body(line string, args ...any) {
	g.emitf("\t"+line, args...)
	g.emitted++
}

var aluROps = []string{"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"}
var mulOps = []string{"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"}
var aluIOps = []string{"addi", "slti", "sltiu", "xori", "ori", "andi"}
var shiftIOps = []string{"slli", "srli", "srai"}
var bmiROps = []string{"andn", "orn", "xnor", "min", "max", "minu", "maxu", "rol", "ror",
	"bset", "bclr", "binv", "bext"}
var bmiUnary = []string{"clz", "ctz", "cpop", "sext.b", "sext.h", "rev8", "orc.b", "zext.h"}
var fpROps = []string{"fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s", "fsgnj.s", "fsgnjn.s", "fsgnjx.s"}

func (g *gen) aluR() {
	ops := aluROps
	if g.cfg.ISA.Has(isa.ExtM) && g.rng.Intn(3) == 0 {
		ops = mulOps
	}
	g.body("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.reg(), g.reg(), g.reg())
}

func (g *gen) aluI() {
	if g.rng.Intn(4) == 0 {
		g.body("%s %s, %s, %d", shiftIOps[g.rng.Intn(3)], g.reg(), g.reg(), g.rng.Intn(32))
		return
	}
	g.body("%s %s, %s, %d", aluIOps[g.rng.Intn(len(aluIOps))], g.reg(), g.reg(),
		g.rng.Intn(4096)-2048)
}

func (g *gen) upper() {
	if g.rng.Intn(2) == 0 {
		g.body("lui %s, 0x%x", g.reg(), g.rng.Intn(1<<20))
	} else {
		g.body("auipc %s, 0x%x", g.reg(), g.rng.Intn(1<<20))
	}
}

func (g *gen) load() {
	type lf struct {
		op    string
		align int
	}
	forms := []lf{{"lw", 4}, {"lh", 2}, {"lhu", 2}, {"lb", 1}, {"lbu", 1}}
	f := forms[g.rng.Intn(len(forms))]
	off := g.rng.Intn(256/f.align) * f.align
	g.body("%s %s, %d(gp)", f.op, g.reg(), off)
}

func (g *gen) store() {
	type sf struct {
		op    string
		align int
	}
	forms := []sf{{"sw", 4}, {"sh", 2}, {"sb", 1}}
	f := forms[g.rng.Intn(len(forms))]
	off := g.rng.Intn(256/f.align) * f.align
	g.body("%s %s, %d(gp)", f.op, g.reg(), off)
}

var branchOps = []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}

func (g *gen) forwardBranch() {
	dist := 1 + g.rng.Intn(5)
	g.labels++
	label := fmt.Sprintf("fwd%d", g.labels)
	g.body("%s %s, %s, %s", branchOps[g.rng.Intn(len(branchOps))], g.reg(), g.reg(), label)
	g.pending[g.emitted+dist] = append(g.pending[g.emitted+dist], label)
}

func (g *gen) flushLabels() {
	g.flushUpTo(g.emitted)
}

// flushAllLabels places every still-pending forward label; called once
// generation ends so no branch target is left dangling.
func (g *gen) flushAllLabels() {
	g.flushUpTo(1 << 30)
}

// flushUpTo emits pending labels scheduled at or before position limit,
// in deterministic position order (map iteration order must not leak
// into generated programs).
func (g *gen) flushUpTo(limit int) {
	var due []int
	for at := range g.pending {
		if at <= limit {
			due = append(due, at)
		}
	}
	sort.Ints(due)
	for _, at := range due {
		for _, l := range g.pending[at] {
			g.emitf("%s:", l)
		}
		delete(g.pending, at)
	}
}

func (g *gen) openLoop() {
	iters := 2 + g.rng.Intn(7)
	g.labels++
	label := fmt.Sprintf("loop%d", g.labels)
	g.body("li tp, %d", iters)
	g.emitf("%s:", label)
	g.bounds[label] = iters
	g.inLoop = true
	g.loopLeft = 2 + g.rng.Intn(6)
	g.curLoop = label
}

func (g *gen) closeLoop() {
	if !g.inLoop {
		return
	}
	g.body("addi tp, tp, -1")
	g.body("bnez tp, %s", g.curLoop)
	g.inLoop = false
}

func (g *gen) bmi() {
	if g.rng.Intn(3) == 0 {
		g.body("%s %s, %s", bmiUnary[g.rng.Intn(len(bmiUnary))], g.reg(), g.reg())
		return
	}
	g.body("%s %s, %s, %s", bmiROps[g.rng.Intn(len(bmiROps))], g.reg(), g.reg(), g.reg())
}

func (g *gen) fp() {
	switch g.rng.Intn(5) {
	case 0:
		g.body("flw %s, %d(gp)", isa.FReg(g.rng.Intn(32)), g.rng.Intn(64)*4)
	case 1:
		g.body("fsw %s, %d(gp)", isa.FReg(g.rng.Intn(32)), g.rng.Intn(64)*4)
	case 2:
		g.body("fcvt.w.s %s, %s", g.reg(), isa.FReg(g.rng.Intn(32)))
	case 3:
		g.body("feq.s %s, %s, %s", g.reg(), isa.FReg(g.rng.Intn(32)), isa.FReg(g.rng.Intn(32)))
	default:
		g.body("%s %s, %s, %s", fpROps[g.rng.Intn(len(fpROps))],
			isa.FReg(g.rng.Intn(32)), isa.FReg(g.rng.Intn(32)), isa.FReg(g.rng.Intn(32)))
	}
}

func (g *gen) csr() {
	if g.rng.Intn(2) == 0 {
		g.body("csrr %s, %s", g.reg(), csrReads[g.rng.Intn(len(csrReads))])
	} else {
		g.body("csrw mscratch, %s", g.reg())
	}
}

func (g *gen) epilogue() {
	// Fold every general register into a0; fold a sample of FP regs.
	for _, r := range g.regs {
		if r == isa.A0 {
			continue
		}
		g.emitf("\txor a0, a0, %s", r)
	}
	g.emitf("\txor a0, a0, gp")
	g.emitf("\txor a0, a0, tp")
	if g.cfg.ISA.Has(isa.ExtF) {
		for i := 0; i < 32; i += 4 {
			g.emitf("\tfmv.x.w t6, %s", isa.FReg(i))
			g.emitf("\txor a0, a0, t6")
		}
	}
	g.emitf("\tli t6, SYSCON_EXIT")
	g.emitf("\tsw a0, 0(t6)")
	g.emitf("halt:\tj halt")
	g.emitf("\t.align 4")
	g.emitf("data:\t.space 256")
}
