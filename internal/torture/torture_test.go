package torture_test

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/timing"
	"repro/internal/torture"
	"repro/internal/vp"
	"repro/internal/workloads"
)

// runProgram assembles and executes a generated program, returning the
// stop info and the exit checksum.
func runProgram(t *testing.T, p torture.Program, set isa.ExtSet) (emu.StopInfo, *vp.Platform) {
	t.Helper()
	pl, err := vp.New(vp.Config{ISA: set})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.LoadSource(vp.Prelude + p.Source); err != nil {
		t.Fatalf("seed %d: assemble: %v", p.Seed, err)
	}
	return pl.Run(p.Budget), pl
}

// Every generated program must assemble and terminate via the syscon
// exit within its budget, across many seeds and ISA configurations.
func TestGeneratedProgramsTerminate(t *testing.T) {
	configs := []isa.ExtSet{isa.RV32I, isa.RV32IM, isa.RV32IMF, isa.RV32IMB, isa.RV32Full}
	for _, set := range configs {
		for seed := int64(0); seed < 30; seed++ {
			p := torture.Generate(torture.Config{Seed: seed, Insts: 250, ISA: set})
			stop, _ := runProgram(t, p, set)
			if stop.Reason != emu.StopExit {
				t.Fatalf("set %v seed %d: stopped with %v", set, seed, stop)
			}
		}
	}
}

// Same seed, same program, same checksum: generation and execution are
// fully deterministic.
func TestDeterministicGeneration(t *testing.T) {
	a := torture.Generate(torture.Config{Seed: 42, Insts: 300, ISA: isa.RV32IMF})
	b := torture.Generate(torture.Config{Seed: 42, Insts: 300, ISA: isa.RV32IMF})
	if a.Source != b.Source {
		t.Fatal("same seed produced different programs")
	}
	s1, _ := runProgram(t, a, isa.RV32IMF)
	s2, _ := runProgram(t, b, isa.RV32IMF)
	if s1.Code != s2.Code {
		t.Errorf("checksums differ: 0x%x 0x%x", s1.Code, s2.Code)
	}
	c := torture.Generate(torture.Config{Seed: 43, Insts: 300, ISA: isa.RV32IMF})
	if c.Source == a.Source {
		t.Error("different seeds produced identical programs")
	}
}

// Generated programs restrict themselves to the configured ISA: an
// RV32I-only program must run on an RV32I-only machine.
func TestISASubsetting(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := torture.Generate(torture.Config{Seed: seed, Insts: 200, ISA: isa.RV32I})
		stop, _ := runProgram(t, p, isa.RV32I)
		if stop.Reason != emu.StopExit {
			t.Fatalf("seed %d on RV32I machine: %v", seed, stop)
		}
	}
}

// The generator's loop bounds must make every generated program
// analyzable: the full static WCET flow runs and its bound covers the
// observed dynamic time (torture as WCET stress test).
func TestWCETBoundsGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := torture.Generate(torture.Config{Seed: seed, Insts: 150, ISA: isa.RV32IM})
		w := workloads.Workload{
			Name:       "torture",
			Source:     p.Source,
			Budget:     p.Budget,
			LoopBounds: p.LoopBounds,
		}
		a, err := flow.Analyze(w.Source, timing.EdgeSmall(), w.LoopBounds)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		pl, err := vp.New(vp.Config{Profile: timing.EdgeSmall()})
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.LoadProgram(a.Program); err != nil {
			t.Fatal(err)
		}
		stop := pl.Run(w.Budget)
		if stop.Reason != emu.StopExit {
			t.Fatalf("seed %d: %v", seed, stop)
		}
		if a.Annotated.WCET < pl.Machine.Hart.Cycle {
			t.Errorf("seed %d: WCET %d < dynamic %d", seed, a.Annotated.WCET, pl.Machine.Hart.Cycle)
		}
	}
}

func TestDefaults(t *testing.T) {
	p := torture.Generate(torture.Config{Seed: 1})
	if p.Budget == 0 || p.Source == "" {
		t.Error("defaults not applied")
	}
	stop, _ := runProgram(t, p, isa.RV32IM)
	if stop.Reason != emu.StopExit {
		t.Errorf("default config: %v", stop)
	}
}
