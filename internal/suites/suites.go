// Package suites provides the three test-suite families of the coverage
// experiment — the architectural suite (one directed instance of every
// instruction, generated from the ISA tables), the unit suite
// (hand-written module tests), and the torture suite (random programs)
// — together with the runner that executes a suite under the coverage
// collector. Their characteristic, complementary coverage gaps are the
// point: none is complete alone, their union approaches full register
// coverage, reproducing the shape of the ecosystem's coverage study.
package suites

import (
	"fmt"
	"strings"

	"repro/internal/cover"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/torture"
	"repro/internal/vp"
)

// Program is one test in a suite.
type Program struct {
	Name   string
	Source string
	Budget uint64

	// MustExitZero marks self-checking programs: they report the index
	// of the first failing check through the syscon exit register, and
	// the runner treats any non-zero exit as a failure.
	MustExitZero bool
}

// Suite is a named family of programs.
type Suite struct {
	Name     string
	Programs []Program
}

// Run executes every program in the suite on a fresh platform with the
// coverage collector attached and returns the merged coverage.
func Run(s Suite, set isa.ExtSet) (*cover.Coverage, error) {
	total := cover.New(set)
	for _, prog := range s.Programs {
		c := cover.New(set)
		p, err := vp.New(vp.Config{ISA: set})
		if err != nil {
			return nil, err
		}
		if err := p.Machine.Hooks.Register(c); err != nil {
			return nil, err
		}
		if _, err := p.LoadSource(vp.Prelude + prog.Source); err != nil {
			return nil, fmt.Errorf("suites: %s/%s: %w", s.Name, prog.Name, err)
		}
		stop := p.Run(prog.Budget)
		switch stop.Reason {
		case emu.StopExit, emu.StopEbreak:
		default:
			return nil, fmt.Errorf("suites: %s/%s ended with %v", s.Name, prog.Name, stop)
		}
		if prog.MustExitZero && (stop.Reason != emu.StopExit || stop.Code != 0) {
			return nil, fmt.Errorf("suites: %s/%s failed self-check %d", s.Name, prog.Name, stop.Code)
		}
		if err := total.Merge(c); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// Architectural generates the directed per-instruction suite for the
// ISA configuration: every instruction appears in one canonical form
// over a deliberately small register set (the real architectural tests'
// well-known register-coverage gap).
func Architectural(set isa.ExtSet) Suite {
	var b strings.Builder
	b.WriteString(`
_start:
	la   t0, trap
	csrw mtvec, t0
	la   a1, buf
	li   a0, 42
	li   a2, 7
	j    main
trap:
	csrr t1, mepc
	addi t1, t1, 4
	csrw mepc, t1
	mret
main:
`)
	if set.Has(isa.ExtF) {
		b.WriteString("\tfcvt.s.w fa1, a0\n\tfcvt.s.w fa2, a2\n\tfcvt.s.w fa3, a2\n")
	}
	for _, op := range isa.OpsIn(set) {
		emitDirected(&b, op, set)
	}
	b.WriteString("\tebreak\n\t.align 4\nbuf:\t.space 64\n")
	return Suite{
		Name: "architectural",
		Programs: []Program{{
			Name:   "arch-" + set.String(),
			Source: b.String(),
			Budget: 10_000,
		}},
	}
}

// emitDirected writes one canonical instance of op.
func emitDirected(b *strings.Builder, op isa.Op, set isa.ExtSet) {
	w := func(format string, args ...any) { fmt.Fprintf(b, "\t"+format+"\n", args...) }
	switch op {
	// Ops needing special sequencing.
	case isa.OpEBREAK, isa.OpCEBREAK:
		return // the terminating ebreak covers it
	case isa.OpMRET:
		return // executed by the trap shim (via ecall)
	case isa.OpECALL:
		w("ecall")
		return
	case isa.OpJAL:
		w("jal ra, 1f")
		fmt.Fprintf(b, "1:\n")
		return
	case isa.OpJALR:
		w("la a2, 1f")
		w("jalr ra, 0(a2)")
		fmt.Fprintf(b, "1:\n")
		w("li a2, 7")
		return
	case isa.OpCJ:
		w("c.j 1f")
		fmt.Fprintf(b, "1:\n")
		return
	case isa.OpCJAL:
		w("c.jal 1f")
		fmt.Fprintf(b, "1:\n")
		return
	case isa.OpCJR:
		w("la a2, 1f")
		w("c.jr a2")
		fmt.Fprintf(b, "1:\n")
		w("li a2, 7")
		return
	case isa.OpCJALR:
		w("la a2, 1f")
		w("c.jalr a2")
		fmt.Fprintf(b, "1:\n")
		w("li a2, 7")
		return
	case isa.OpWFI:
		w("wfi")
		return
	case isa.OpFENCE:
		w("fence")
		return
	case isa.OpFENCEI:
		w("fence.i")
		return
	case isa.OpLUI:
		w("lui a0, 0x12")
		return
	case isa.OpAUIPC:
		w("auipc a0, 0")
		return
	case isa.OpCLUI:
		w("c.lui a0, 0x12")
		return
	case isa.OpCNOP:
		w("c.nop")
		return
	case isa.OpCADDI16SP:
		w("c.addi16sp 16")
		w("c.addi16sp -16")
		return
	case isa.OpCADDI4SPN:
		w("c.addi4spn a0, 8")
		w("li a0, 42")
		return
	case isa.OpCLWSP:
		w("c.addi16sp -16")
		w("c.swsp a0, 0(sp)")
		w("c.lwsp a0, 0(sp)")
		w("c.addi16sp 16")
		return
	case isa.OpCSWSP:
		return // covered by the c.lwsp sequence
	case isa.OpCLW:
		w("c.lw a0, 0(a1)")
		w("li a0, 42")
		return
	case isa.OpCSW:
		w("c.sw a0, 0(a1)")
		return
	case isa.OpCBEQZ:
		w("c.beqz a0, 1f")
		fmt.Fprintf(b, "1:\n")
		return
	case isa.OpCBNEZ:
		w("c.bnez a0, 1f")
		fmt.Fprintf(b, "1:\n")
		return
	}

	name := op.String()
	p, ok := isa.PatternFor(op)
	if !ok {
		// Remaining compressed forms: canonical two-operand shapes.
		switch op {
		case isa.OpCADDI, isa.OpCLI, isa.OpCANDI:
			w("%s a0, 1", name)
		case isa.OpCSLLI, isa.OpCSRLI, isa.OpCSRAI:
			w("%s a0, 1", name)
		case isa.OpCMV, isa.OpCADD, isa.OpCSUB, isa.OpCXOR, isa.OpCOR, isa.OpCAND:
			w("%s a0, a2", name)
		}
		return
	}
	fd, f1, f2 := isa.UsesFPRegs(op)
	rd, rs1, rs2 := "a0", "a0", "a2"
	if fd {
		rd = "fa0"
	}
	if f1 {
		rs1 = "fa1"
	}
	if f2 {
		rs2 = "fa2"
	}
	switch p.Fmt {
	case isa.FmtR:
		w("%s %s, %s, %s", name, rd, rs1, rs2)
	case isa.FmtR4:
		w("%s fa0, fa1, fa2, fa3", name)
	case isa.FmtI:
		switch op.Class() {
		case isa.ClassLoad, isa.ClassFPLoad:
			w("la a1, buf")
			w("%s %s, 0(a1)", name, rd)
		default:
			w("%s %s, %s, 1", name, rd, rs1)
		}
	case isa.FmtIShift:
		w("%s %s, %s, 1", name, rd, rs1)
	case isa.FmtS:
		w("la a1, buf")
		w("%s %s, 0(a1)", name, rs2)
	case isa.FmtB:
		w("%s a0, a2, 1f", name)
		fmt.Fprintf(b, "1:\n")
	case isa.FmtCSR:
		w("%s a0, mscratch, a2", name)
	case isa.FmtCSRI:
		w("%s a0, mscratch, 3", name)
	case isa.FmtRUnary:
		w("%s %s, %s", name, rd, rs1)
	}
}

// Unit returns the hand-written module tests. They use a wider register
// variety than the architectural suite but deliberately miss the exotic
// corners (fence.i, the immediate CSR forms, several FP and BMI ops) —
// the realistic profile of a hand-maintained unit suite.
func Unit(set isa.ExtSet) Suite {
	progs := []Program{
		{Name: "arith", Budget: 10_000, Source: `
_start:
	li s0, 100
	li s1, -3
	add s2, s0, s1
	sub s3, s0, s1
	xor s4, s0, s1
	or  s5, s0, s1
	and s6, s0, s1
	sll s7, s0, s1
	srl s8, s0, s1
	sra s9, s0, s1
	slt s10, s0, s1
	sltu s11, s0, s1
	addi t3, s0, 11
	andi t4, s0, 12
	ori  t5, s0, 13
	ebreak
`},
		{Name: "branch", Budget: 10_000, Source: `
_start:
	li t0, 1
	li t1, 2
	beq t0, t0, 1f
	li t2, 99
1:	bne t0, t1, 2f
	li t2, 98
2:	blt t0, t1, 3f
	li t2, 97
3:	bge t1, t0, 4f
	li t2, 96
4:	jal ra, 5f
5:	ebreak
`},
		{Name: "mem", Budget: 10_000, Source: `
_start:
	la s0, buf
	li s1, 0x12345678
	sw s1, 0(s0)
	sh s1, 4(s0)
	sb s1, 6(s0)
	lw a3, 0(s0)
	lh a4, 4(s0)
	lhu a5, 4(s0)
	lb a6, 6(s0)
	lbu a7, 6(s0)
	ebreak
	.align 4
buf:	.space 16
`},
		{Name: "csr", Budget: 10_000, Source: `
_start:
	li t0, 0x55
	csrw mscratch, t0
	csrr t1, mscratch
	csrs mscratch, t0
	csrc mscratch, t0
	rdcycle s2
	rdinstret s3
	ebreak
`},
	}
	if set.Has(isa.ExtM) {
		progs = append(progs, Program{Name: "muldiv", Budget: 10_000, Source: `
_start:
	li a2, 7
	li a3, -3
	mul a4, a2, a3
	mulh a5, a2, a3
	div a6, a2, a3
	rem a7, a2, a3
	divu s4, a2, a3
	remu s5, a2, a3
	ebreak
`})
	}
	if set.Has(isa.ExtF) {
		progs = append(progs, Program{Name: "fp", Budget: 10_000, Source: `
_start:
	li t0, 3
	li t1, 4
	fcvt.s.w ft0, t0
	fcvt.s.w ft1, t1
	fadd.s ft2, ft0, ft1
	fsub.s ft3, ft0, ft1
	fmul.s ft4, ft0, ft1
	fdiv.s ft5, ft0, ft1
	flt.s s6, ft0, ft1
	fle.s s7, ft0, ft1
	fcvt.w.s s8, ft2
	ebreak
`})
	}
	return Suite{Name: "unit", Programs: progs}
}

// Torture generates a random suite of n programs for the ISA
// configuration, seeded deterministically.
func Torture(set isa.ExtSet, n int, seed int64) Suite {
	s := Suite{Name: "torture"}
	for i := 0; i < n; i++ {
		p := torture.Generate(torture.Config{Seed: seed + int64(i), Insts: 300, ISA: set})
		s.Programs = append(s.Programs, Program{
			Name:   fmt.Sprintf("torture-%d", i),
			Source: p.Source,
			Budget: p.Budget,
		})
	}
	return s
}
