package suites_test

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/isa"
	"repro/internal/suites"
)

// TestCoverageStudyShape reproduces the shape of the coverage experiment
// (E4): no single suite is complete; the architectural suite has high
// instruction coverage but poor register coverage; torture has the
// opposite profile; the union reaches 100% GPR coverage and nearly full
// instruction coverage.
func TestCoverageStudyShape(t *testing.T) {
	set := isa.RV32IMF

	arch, err := suites.Run(suites.Architectural(set), set)
	if err != nil {
		t.Fatalf("architectural: %v", err)
	}
	unit, err := suites.Run(suites.Unit(set), set)
	if err != nil {
		t.Fatalf("unit: %v", err)
	}
	tor, err := suites.Run(suites.Torture(set, 8, 1000), set)
	if err != nil {
		t.Fatalf("torture: %v", err)
	}

	ra, ru, rt := arch.Report(), unit.Report(), tor.Report()
	t.Logf("arch:    %s", ra)
	t.Logf("unit:    %s", ru)
	t.Logf("torture: %s", rt)

	// Architectural: near-complete instruction coverage.
	if cover.Pct(ra.OpsCovered, ra.OpsTotal) < 95 {
		t.Errorf("architectural op coverage too low: %s", ra)
	}
	// ...but a weak register profile (the well-known gap).
	if ra.GPRCovered > 16 {
		t.Errorf("architectural suite touches too many GPRs (%d) to show the gap", ra.GPRCovered)
	}
	// Torture: wide register coverage...
	if rt.GPRCovered < 28 {
		t.Errorf("torture GPR coverage too low: %d", rt.GPRCovered)
	}
	// ...but incomplete op coverage (no system/priv instructions).
	if rt.OpsCovered >= rt.OpsTotal {
		t.Error("torture should not reach full op coverage")
	}
	// Unit: incomplete on both axes.
	if ru.OpsCovered >= ru.OpsTotal {
		t.Error("unit suite should not reach full op coverage")
	}

	// Union.
	union := cover.New(set)
	for _, c := range []*cover.Coverage{arch, unit, tor} {
		if err := union.Merge(c); err != nil {
			t.Fatal(err)
		}
	}
	r := union.Report()
	t.Logf("union:   %s", r)
	if r.GPRCovered != 32 {
		t.Errorf("union GPR coverage %d/32, want full", r.GPRCovered)
	}
	if set.Has(isa.ExtF) && r.FPRCovered != 32 {
		t.Errorf("union FPR coverage %d/32, want full", r.FPRCovered)
	}
	if pct := cover.Pct(r.OpsCovered, r.OpsTotal); pct < 97 {
		t.Errorf("union instruction coverage %.1f%%, want >= 97%%", pct)
	}
}

// The architectural generator must produce a valid program for every ISA
// configuration, including the full one with compressed instructions.
func TestArchitecturalAcrossConfigs(t *testing.T) {
	for _, set := range []isa.ExtSet{isa.RV32I, isa.RV32IM, isa.RV32IMF, isa.RV32IMB, isa.RV32Full} {
		c, err := suites.Run(suites.Architectural(set), set)
		if err != nil {
			t.Fatalf("%v: %v", set, err)
		}
		r := c.Report()
		if pct := cover.Pct(r.OpsCovered, r.OpsTotal); pct < 90 {
			t.Errorf("%v: op coverage %.1f%% too low (missing %v)", set, pct, r.MissingOps)
		}
	}
}

func TestUnitSuiteRuns(t *testing.T) {
	for _, set := range []isa.ExtSet{isa.RV32I, isa.RV32IMF} {
		if _, err := suites.Run(suites.Unit(set), set); err != nil {
			t.Errorf("%v: %v", set, err)
		}
	}
}

func TestTortureSuiteSeeded(t *testing.T) {
	a := suites.Torture(isa.RV32IM, 3, 7)
	b := suites.Torture(isa.RV32IM, 3, 7)
	if len(a.Programs) != 3 {
		t.Fatalf("programs = %d", len(a.Programs))
	}
	for i := range a.Programs {
		if a.Programs[i].Source != b.Programs[i].Source {
			t.Error("torture suite not deterministic")
		}
	}
}

// TestComplianceSuitePasses runs the self-checking compliance programs —
// expected values hand-derived from the ISA spec, so this is the
// emulator's independent oracle.
func TestComplianceSuitePasses(t *testing.T) {
	for _, set := range []isa.ExtSet{isa.RV32IM, isa.RV32IMF, isa.RV32IMB, isa.RV32Full} {
		if _, err := suites.Run(suites.Compliance(set), set); err != nil {
			t.Errorf("%v: %v", set, err)
		}
	}
}

// A deliberately broken expectation must be caught by the self-check
// machinery (guards against the suite silently passing everything).
func TestComplianceDetectsFailure(t *testing.T) {
	bad := suites.Suite{Name: "bad", Programs: []suites.Program{{
		Name: "wrong", Budget: 1000, MustExitZero: true,
		Source: `
_start:
	li s11, 1
	li a1, 2
	li a2, 2
	add a3, a1, a2
	li a4, 5                 # wrong on purpose
	bne a3, a4, fail
	li a0, 0
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
fail:
	mv a0, s11
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`,
	}}}
	if _, err := suites.Run(bad, isa.RV32IM); err == nil {
		t.Error("broken expectation not detected")
	}
}
