package suites

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// The compliance suite: self-checking directed tests whose expected
// values are hand-derived from the ISA specification — an oracle
// independent of both the emulator implementation and the workloads' Go
// reference models. Each program compares results in-target and reports
// the 1-based index of the first failing check through the syscon exit
// register (0 = all passed).

// rrCase is one register-register check: op rd, A, B must equal Want.
type rrCase struct {
	op   string
	a, b uint32
	want uint32
}

// Hand-computed against the RISC-V unprivileged spec. Do not generate
// these mechanically — their value is exactly that they were not.
var rrCases = []rrCase{
	{"add", 5, 7, 12},
	{"add", 0xffffffff, 1, 0}, // wraparound
	{"sub", 0, 1, 0xffffffff},
	{"sub", 5, 7, 0xfffffffe},
	{"sll", 1, 31, 0x80000000},
	{"sll", 0xff, 4, 0xff0},
	{"srl", 0x80000000, 31, 1},
	{"sra", 0x80000000, 31, 0xffffffff}, // arithmetic fill
	{"sra", 0x7fffffff, 31, 0},
	{"slt", 0xffffffff, 0, 1}, // -1 < 0 signed
	{"slt", 0, 0xffffffff, 0},
	{"sltu", 0xffffffff, 0, 0}, // max unsigned not < 0
	{"sltu", 0, 1, 1},
	{"xor", 0xff00, 0x0ff0, 0xf0f0},
	{"or", 0xff00, 0x0ff0, 0xfff0},
	{"and", 0xff00, 0x0ff0, 0x0f00},

	// M extension.
	{"mul", 7, 6, 42},
	{"mul", 0x10000, 0x10000, 0},          // low word of 2^32
	{"mulh", 0x80000000, 2, 0xffffffff},   // (-2^31)*2 >> 32
	{"mulhu", 0x80000000, 2, 1},           // (2^31)*2 >> 32
	{"mulhsu", 0x80000000, 2, 0xffffffff}, // signed x unsigned
	{"mulhsu", 2, 0x80000000, 1},
	{"div", 7, 2, 3},
	{"div", 0xfffffff9, 2, 0xfffffffd},          // -7/2 = -3 (truncating)
	{"div", 0x80000000, 0xffffffff, 0x80000000}, // overflow
	{"div", 7, 0, 0xffffffff},                   // /0 = -1
	{"divu", 0xffffffff, 2, 0x7fffffff},
	{"divu", 7, 0, 0xffffffff},
	{"rem", 0xfffffff9, 2, 0xffffffff}, // -7%2 = -1
	{"rem", 0x80000000, 0xffffffff, 0}, // overflow remainder
	{"rem", 7, 0, 7},                   // %0 = dividend
	{"remu", 7, 0, 7},
	{"remu", 0xffffffff, 16, 15},
}

var bmiRRCases = []rrCase{
	{"andn", 0xf0f0, 0xff00, 0x00f0},
	{"orn", 0x000f, 0xfffffff0, 0x0000000f | ^uint32(0xfffffff0)},
	{"xnor", 0xff00, 0x0ff0, ^uint32(0xf0f0)},
	{"min", 0xffffffff, 1, 0xffffffff}, // -1 < 1 signed
	{"max", 0xffffffff, 1, 1},
	{"minu", 0xffffffff, 1, 1},
	{"maxu", 0xffffffff, 1, 0xffffffff},
	{"rol", 0x80000001, 1, 0x00000003},
	{"ror", 1, 1, 0x80000000},
	{"bset", 0, 31, 0x80000000},
	{"bclr", 0xffffffff, 0, 0xfffffffe},
	{"binv", 0, 5, 32},
	{"bext", 0x100, 8, 1},
	{"bext", 0x100, 9, 0},
}

// unaryCase is one rd, rs1 check.
type unaryCase struct {
	op   string
	a    uint32
	want uint32
}

var bmiUnaryCases = []unaryCase{
	{"clz", 1, 31},
	{"clz", 0, 32},
	{"clz", 0x80000000, 0},
	{"ctz", 0, 32},
	{"ctz", 8, 3},
	{"cpop", 0xffffffff, 32},
	{"cpop", 0, 0},
	{"cpop", 0x10010001, 3},
	{"rev8", 0x12345678, 0x78563412},
	{"orc.b", 0x00120000, 0x00ff0000},
	{"sext.b", 0x80, 0xffffff80},
	{"sext.b", 0x7f, 0x7f},
	{"sext.h", 0x8000, 0xffff8000},
	{"zext.h", 0x12345678, 0x5678},
}

// fpCase is one single-precision check on raw bit patterns.
type fpCase struct {
	op         string
	a, b, want uint32
}

var fpCases = []fpCase{
	{"fadd.s", 0x3fc00000, 0x40200000, 0x40800000}, // 1.5+2.5 = 4.0
	{"fsub.s", 0x40800000, 0x3fc00000, 0x40200000}, // 4.0-1.5 = 2.5
	{"fmul.s", 0x40400000, 0x3f000000, 0x3fc00000}, // 3.0*0.5 = 1.5
	{"fdiv.s", 0x40a00000, 0x40000000, 0x40200000}, // 5.0/2.0 = 2.5
	{"fmin.s", 0x80000000, 0x00000000, 0x80000000}, // min(-0,+0) = -0
	{"fmax.s", 0xbf800000, 0x3f800000, 0x3f800000}, // max(-1,1) = 1
	{"fsgnj.s", 0x3f800000, 0x80000000, 0xbf800000},
	{"fsgnjn.s", 0x3f800000, 0x80000000, 0x3f800000},
	{"fsgnjx.s", 0xbf800000, 0x80000000, 0x3f800000},
}

// Compliance builds the self-checking suite for the ISA configuration.
func Compliance(set isa.ExtSet) Suite {
	s := Suite{Name: "compliance"}
	s.Programs = append(s.Programs, Program{
		Name: "rr-i", Budget: 100_000, MustExitZero: true,
		Source: rrProgram(filterRR(rrCases, set)),
	})
	if set.Has(isa.ExtXbmi) {
		s.Programs = append(s.Programs,
			Program{Name: "rr-bmi", Budget: 100_000, MustExitZero: true,
				Source: rrProgram(bmiRRCases)},
			Program{Name: "unary-bmi", Budget: 100_000, MustExitZero: true,
				Source: unaryProgram(bmiUnaryCases)},
		)
	}
	if set.Has(isa.ExtF) {
		s.Programs = append(s.Programs, Program{
			Name: "fp", Budget: 100_000, MustExitZero: true,
			Source: fpProgram(fpCases),
		})
	}
	s.Programs = append(s.Programs,
		Program{Name: "mem", Budget: 100_000, MustExitZero: true, Source: memProgram},
		Program{Name: "branch", Budget: 100_000, MustExitZero: true, Source: branchProgram},
	)
	if set.Has(isa.ExtC) {
		s.Programs = append(s.Programs, Program{
			Name: "compressed", Budget: 100_000, MustExitZero: true,
			Source: compressedProgram,
		})
	}
	return s
}

// compressedProgram checks that the 16-bit encodings compute the same
// results as their 32-bit expansions would.
const compressedProgram = `
_start:
	li s11, 1
	c.li a0, 21
	c.addi a0, 10             # 31
	li a4, 31
	bne a0, a4, fail
	li s11, 2
	c.mv a1, a0
	c.add a1, a0              # 62
	li a4, 62
	bne a1, a4, fail
	li s11, 3
	c.sub a1, a0              # 31
	li a4, 31
	bne a1, a4, fail
	li s11, 4
	li a0, 0xf0f0
	li a1, 0x0ff0
	c.and a0, a1              # 0x00f0
	li a4, 0x00f0
	bne a0, a4, fail
	li s11, 5
	li a0, 0xf0f0
	c.or a0, a1
	li a4, 0xfff0
	bne a0, a4, fail
	li s11, 6
	li a0, 0xf0f0
	c.xor a0, a1
	li a4, 0xff00
	bne a0, a4, fail
	li s11, 7
	li a0, 1
	c.slli a0, 31
	li a4, 0x80000000
	bne a0, a4, fail
	li s11, 8
	c.srli a0, 31
	li a4, 1
	bne a0, a4, fail
	li s11, 9
	li a0, 0x80000000
	c.srai a0, 4
	li a4, 0xF8000000
	bne a0, a4, fail
	li s11, 10
	li a0, 0x7c
	c.andi a0, -4
	li a4, 0x7c
	bne a0, a4, fail
	li s11, 11
	la a0, cbuf
	li a1, 0x13572468
	c.sw a1, 4(a0)
	c.lw a2, 4(a0)
	bne a2, a1, fail
	li s11, 12
	c.li a2, 0
	c.beqz a2, 1f
	j fail
1:	li a0, 1
	c.bnez a0, 1f
	j fail
1:
` + checkEpilogue + `
	.align 4
cbuf:	.space 16
`

func filterRR(cases []rrCase, set isa.ExtSet) []rrCase {
	var out []rrCase
	for _, c := range cases {
		if !set.Has(isa.ExtM) {
			switch c.op {
			case "mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu":
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

const checkEpilogue = `
	li a0, 0
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
fail:
	mv a0, s11
	li t6, SYSCON_EXIT
	sw a0, 0(t6)
1:	j 1b
`

func rrProgram(cases []rrCase) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	for i, c := range cases {
		fmt.Fprintf(&b, "\tli s11, %d\n", i+1)
		fmt.Fprintf(&b, "\tli a1, %d\n", int32(c.a))
		fmt.Fprintf(&b, "\tli a2, %d\n", int32(c.b))
		fmt.Fprintf(&b, "\t%s a3, a1, a2\n", c.op)
		fmt.Fprintf(&b, "\tli a4, %d\n", int32(c.want))
		fmt.Fprintf(&b, "\tbne a3, a4, fail\n")
	}
	b.WriteString(checkEpilogue)
	return b.String()
}

func unaryProgram(cases []unaryCase) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	for i, c := range cases {
		fmt.Fprintf(&b, "\tli s11, %d\n", i+1)
		fmt.Fprintf(&b, "\tli a1, %d\n", int32(c.a))
		fmt.Fprintf(&b, "\t%s a3, a1\n", c.op)
		fmt.Fprintf(&b, "\tli a4, %d\n", int32(c.want))
		fmt.Fprintf(&b, "\tbne a3, a4, fail\n")
	}
	b.WriteString(checkEpilogue)
	return b.String()
}

func fpProgram(cases []fpCase) string {
	var b strings.Builder
	b.WriteString("_start:\n")
	for i, c := range cases {
		fmt.Fprintf(&b, "\tli s11, %d\n", i+1)
		fmt.Fprintf(&b, "\tli a1, %d\n", int32(c.a))
		fmt.Fprintf(&b, "\tli a2, %d\n", int32(c.b))
		b.WriteString("\tfmv.w.x fa1, a1\n\tfmv.w.x fa2, a2\n")
		fmt.Fprintf(&b, "\t%s fa3, fa1, fa2\n", c.op)
		b.WriteString("\tfmv.x.w a3, fa3\n")
		fmt.Fprintf(&b, "\tli a4, %d\n", int32(c.want))
		fmt.Fprintf(&b, "\tbne a3, a4, fail\n")
	}
	// Conversions and compares, hand-checked.
	extra := `
	li s11, 100
	li a1, -1
	fcvt.s.w fa1, a1          # -1.0 = 0xBF800000
	fmv.x.w a3, fa1
	li a4, 0xBF800000
	bne a3, a4, fail
	li s11, 101
	li a1, 0xBFC00000         # -1.5
	fmv.w.x fa1, a1
	fcvt.w.s a3, fa1          # truncates toward zero: -1
	li a4, -1
	bne a3, a4, fail
	li s11, 102
	li a1, 0x40800000         # 4.0
	fmv.w.x fa1, a1
	fsqrt.s fa2, fa1          # 2.0 = 0x40000000
	fmv.x.w a3, fa2
	li a4, 0x40000000
	bne a3, a4, fail
	li s11, 103
	fmv.w.x fa1, zero         # +0.0
	fclass.s a3, fa1
	li a4, 16                 # 1<<4
	bne a3, a4, fail
	li s11, 104
	li a1, 0x3F800000         # 1.0
	li a2, 0x40000000         # 2.0
	fmv.w.x fa1, a1
	fmv.w.x fa2, a2
	flt.s a3, fa1, fa2
	li a4, 1
	bne a3, a4, fail
	feq.s a3, fa1, fa2
	bnez a3, fail
`
	b.WriteString(extra)
	b.WriteString(checkEpilogue)
	return b.String()
}

// memProgram checks load/store widths, sign extension and byte merging,
// all hand-derived.
const memProgram = `
_start:
	la s0, buf
	li s11, 1
	li a1, 0x81828384
	sw a1, 0(s0)
	lb a3, 0(s0)              # 0x84 sign-extends
	li a4, 0xFFFFFF84
	bne a3, a4, fail
	li s11, 2
	lbu a3, 0(s0)
	li a4, 0x84
	bne a3, a4, fail
	li s11, 3
	lh a3, 0(s0)              # 0x8384 sign-extends
	li a4, 0xFFFF8384
	bne a3, a4, fail
	li s11, 4
	lhu a3, 2(s0)
	li a4, 0x8182
	bne a3, a4, fail
	li s11, 5
	li a1, 0x55
	sb a1, 1(s0)              # merge one byte
	lw a3, 0(s0)
	li a4, 0x81825584
	bne a3, a4, fail
	li s11, 6
	li a1, 0x6677
	sh a1, 2(s0)
	lw a3, 0(s0)
	li a4, 0x66775584
	bne a3, a4, fail
` + checkEpilogue + `
	.align 4
buf:	.space 16
`

// branchProgram checks taken/not-taken behaviour of every branch.
const branchProgram = `
_start:
	li a1, 5
	li a2, -5
	li s11, 1
	beq a1, a1, 1f            # must take
	j fail
1:	li s11, 2
	bne a1, a2, 1f
	j fail
1:	li s11, 3
	blt a2, a1, 1f            # -5 < 5 signed
	j fail
1:	li s11, 4
	bltu a1, a2, 1f           # 5 < 0xFFFFFFFB unsigned
	j fail
1:	li s11, 5
	bge a1, a2, 1f
	j fail
1:	li s11, 6
	bgeu a2, a1, 1f           # 0xFFFFFFFB >= 5 unsigned
	j fail
1:	li s11, 7
	beq a1, a2, fail          # must not take
	bne a1, a1, fail
	blt a1, a2, fail
	bge a2, a1, fail
	bltu a2, a1, fail
	bgeu a1, a2, fail
` + checkEpilogue
