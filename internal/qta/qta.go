// Package qta reproduces the QEMU Timing Analyzer: the co-simulation of
// a binary with its WCET-annotated control-flow graph. The analyzer runs
// as an emulator plugin (the role the original played as a TCG plugin
// shared object): it watches instruction execution, recognizes entries
// into annotated blocks, and accumulates the worst-case cycle cost of
// every block-to-block transition from the annotation. The result is a
// worst-case time for the *observed* execution path — by construction at
// least the dynamic cycle count, and at most the static WCET bound.
package qta

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/decode"
	"repro/internal/plugin"
	"repro/internal/wcet"
)

// Analyzer is the QTA plugin. Register it on a machine's hook registry,
// run the program, then call Finish.
type Analyzer struct {
	an *wcet.Annotated

	blockAt map[uint32]int    // block start -> index
	edges   map[uint64]uint64 // (from<<32|to) -> cost
	maxPen  uint64            // worst transfer penalty, for unannotated transitions

	cur         int // index of the block being executed, -1 before the first
	finished    bool
	accumulated uint64

	// Visits counts executions per block start.
	Visits map[uint32]uint64
	// Missing counts transitions that had no annotated edge (trap
	// entries, returns, indirect jumps): they are charged block cost
	// plus the worst transfer penalty.
	Missing uint64
	// Traps counts trap events observed during the run.
	Traps uint64
}

// New builds an analyzer over an annotated CFG.
func New(an *wcet.Annotated) *Analyzer {
	q := &Analyzer{
		an:      an,
		blockAt: make(map[uint32]int, len(an.Blocks)),
		edges:   make(map[uint64]uint64, len(an.Edges)),
		cur:     -1,
		Visits:  make(map[uint32]uint64),
	}
	for i, b := range an.Blocks {
		q.blockAt[b.Start] = i
	}
	for _, e := range an.Edges {
		q.edges[uint64(e.From)<<32|uint64(e.To)] = e.Cost
		if i, ok := q.blockAt[e.From]; ok {
			if pen := e.Cost - an.Blocks[i].Cost; pen > q.maxPen {
				q.maxPen = pen
			}
		}
	}
	return q
}

// Name implements plugin.Plugin.
func (q *Analyzer) Name() string { return "qta" }

// OnInsnExec implements plugin.InsnExecer: block entries drive the
// accumulation.
func (q *Analyzer) OnInsnExec(pc uint32, in decode.Inst) {
	idx, ok := q.blockAt[pc]
	if !ok {
		return // mid-block instruction, or code outside the annotation
	}
	q.Visits[pc]++
	if q.cur >= 0 {
		from := q.an.Blocks[q.cur].Start
		if cost, ok := q.edges[uint64(from)<<32|uint64(pc)]; ok {
			q.accumulated += cost
		} else {
			q.accumulated += q.an.Blocks[q.cur].Cost + q.maxPen
			q.Missing++
		}
	}
	q.cur = idx
}

// OnTrap implements plugin.TrapWatcher.
func (q *Analyzer) OnTrap(cause, tval, pc uint32) { q.Traps++ }

// Finish closes the run by charging the final block and returns the
// accumulated worst-case time. Further events are ignored.
func (q *Analyzer) Finish() uint64 {
	if !q.finished && q.cur >= 0 {
		q.accumulated += q.an.Blocks[q.cur].Cost
		q.finished = true
	}
	return q.accumulated
}

// Accumulated returns the worst-case time accumulated so far (without
// the final block; call Finish at end of run).
func (q *Analyzer) Accumulated() uint64 { return q.accumulated }

// Result summarizes one QTA run against its static bound and the
// dynamic (pipeline-model) cycle count of the same execution.
type Result struct {
	Program     string
	Profile     string
	StaticWCET  uint64 // bound from the annotated CFG
	QTATime     uint64 // accumulated worst-case time of the observed path
	Dynamic     uint64 // emulator cycle count
	Insts       uint64 // retired instructions
	BlocksSeen  int
	BlocksTotal int
	Missing     uint64
	Traps       uint64 // traps observed; non-zero invalidates the QTA bound
}

// NewResult assembles a Result from a finished analyzer.
func (q *Analyzer) NewResult(program string, dynamic, insts uint64) Result {
	return Result{
		Program:     program,
		Profile:     q.an.Profile,
		StaticWCET:  q.an.WCET,
		QTATime:     q.Finish(),
		Dynamic:     dynamic,
		Insts:       insts,
		BlocksSeen:  len(q.Visits),
		BlocksTotal: len(q.an.Blocks),
		Missing:     q.Missing,
		Traps:       q.Traps,
	}
}

// Sound reports whether the fundamental QTA ordering holds for this run:
// static WCET >= QTA accumulated time >= dynamic cycles. A run that took
// traps executed code outside the annotated CFG (handlers are not
// reachable by static CFG discovery), so its bound cannot be trusted and
// Sound reports false regardless of the numbers — the analyzer flags the
// situation instead of silently under-reporting.
func (r Result) Sound() bool {
	if r.Traps > 0 {
		return false
	}
	return r.StaticWCET >= r.QTATime && r.QTATime >= r.Dynamic
}

// String renders the one-line summary the tool prints per program.
func (r Result) String() string {
	ratio := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return fmt.Sprintf("%-14s %-10s static=%-9d qta=%-9d dyn=%-9d static/dyn=%.2f qta/dyn=%.2f",
		r.Program, r.Profile, r.StaticWCET, r.QTATime, r.Dynamic,
		ratio(r.StaticWCET, r.Dynamic), ratio(r.QTATime, r.Dynamic))
}

// Profile renders the per-block visit profile, hottest first.
func (q *Analyzer) Profile() string {
	type row struct {
		start uint32
		count uint64
		cost  uint64
	}
	rows := make([]row, 0, len(q.Visits))
	for start, count := range q.Visits {
		var cost uint64
		if i, ok := q.blockAt[start]; ok {
			cost = q.an.Blocks[i].Cost
		}
		rows = append(rows, row{start, count, cost})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count*rows[i].cost != rows[j].count*rows[j].cost {
			return rows[i].count*rows[i].cost > rows[j].count*rows[j].cost
		}
		return rows[i].start < rows[j].start
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %-8s %s\n", "block", "visits", "cost", "total")
	for _, r := range rows {
		fmt.Fprintf(&sb, "0x%08x   %-10d %-8d %d\n", r.start, r.count, r.cost, r.count*r.cost)
	}
	return sb.String()
}

// interface conformance checks
var (
	_ plugin.InsnExecer  = (*Analyzer)(nil)
	_ plugin.TrapWatcher = (*Analyzer)(nil)
)
