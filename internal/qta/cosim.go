package qta

import (
	"context"

	"repro/internal/emu"
	"repro/internal/vp"
	"repro/internal/wcet"
)

// CoSim is the cancellable QTA co-simulation entry point: it attaches a
// fresh analyzer over the annotated CFG to the platform's hook registry,
// executes the already-loaded guest under the context (vp.RunContext
// chunking, so cancellation and deadlines land promptly), and returns
// the analyzer for Finish/NewResult plus the stop condition. The
// long-running analysis service drives every QTA job through this; the
// one-shot CLI path (flow.RunQTA) remains the uncancellable equivalent.
func CoSim(ctx context.Context, an *wcet.Annotated, p *vp.Platform, budget uint64) (*Analyzer, emu.StopInfo, error) {
	q := New(an)
	if err := p.Machine.Hooks.Register(q); err != nil {
		return nil, emu.StopInfo{}, err
	}
	stop, err := p.RunContext(ctx, budget)
	return q, stop, err
}
