package qta

// Interrupt-response-time co-simulation: the measurement side of the
// IRT qualification flow. The static side (wcet.AnalyzeIRT) derives a
// bound from the program alone; this side attacks the same program with
// interrupts asserted at adversarially chosen cycles — via the PLIC's
// host-armed test-trigger line — and measures each response from assert
// to handler completion. A sound bound dominates every measurement; the
// ratio between them is the pessimism the E13 experiment tabulates.

import (
	"context"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/decode"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/vp"
)

// IRTMeter is the latency-measurement plugin: it watches for the first
// external-interrupt trap taken at or after the trigger's assert cycle
// — that invocation's claim drain is the one that services the trigger,
// even when a different line caused the entry — and timestamps the
// first instruction after the handler's mret, when every cycle of the
// response has been paid. A trigger claimed opportunistically by an
// invocation already in flight when it asserted leaves no trap to arm
// on; such samples report undelivered and are skipped, never
// mis-measured.
type IRTMeter struct {
	hart    *cpu.Hart
	trigger uint64

	inHandler bool
	sawMret   bool

	// Delivered reports whether a full assert-to-completion response
	// was observed; Done is the cycle the handler completed at.
	Delivered bool
	Done      uint64
	// Entry is the cycle the trap was taken at (pre-entry-penalty).
	Entry uint64
}

// NewIRTMeter builds a meter reading time from the given hart, for an
// interrupt asserted at the trigger cycle.
func NewIRTMeter(h *cpu.Hart, trigger uint64) *IRTMeter {
	return &IRTMeter{hart: h, trigger: trigger}
}

// Name implements plugin.Plugin.
func (m *IRTMeter) Name() string { return "irt-meter" }

// OnTrap implements plugin.TrapWatcher.
func (m *IRTMeter) OnTrap(cause, tval, pc uint32) {
	if m.Delivered || m.inHandler || m.hart.Cycle < m.trigger {
		return
	}
	if cause == 1<<31|isa.IntMachineExternal {
		m.inHandler = true
		m.Entry = m.hart.Cycle
	}
}

// OnInsnExec implements plugin.InsnExecer. The hook runs before each
// instruction executes, so the instruction after mret sees the cycle
// counter with the whole handler (and the mret transfer) charged.
func (m *IRTMeter) OnInsnExec(pc uint32, in decode.Inst) {
	if m.sawMret {
		m.sawMret = false
		m.inHandler = false
		m.Delivered = true
		m.Done = m.hart.Cycle
		return
	}
	if m.inHandler && in.Op == isa.OpMRET {
		// MIE is hardware-cleared in the handler, so the first mret
		// after entry is the handler's own return.
		m.sawMret = true
	}
}

// IRTObservation is one adversarial sample.
type IRTObservation struct {
	Trigger uint64 `json:"trigger"` // cycle the IRQ was asserted at
	Latency uint64 `json:"latency"` // assert to handler completion
}

// IRTMeasurement aggregates an adversarial campaign.
type IRTMeasurement struct {
	GoldenCycles uint64           `json:"golden_cycles"` // undisturbed run length
	Samples      int              `json:"samples"`       // trigger points attempted
	Delivered    int              `json:"delivered"`     // full responses observed
	Skipped      int              `json:"skipped"`       // trigger never completed (program exited first)
	Mismatches   int              `json:"mismatches"`    // perturbed runs with a wrong checksum
	MaxLatency   uint64           `json:"max_latency"`
	MaxTrigger   uint64           `json:"max_trigger"` // the point achieving MaxLatency
	Observations []IRTObservation `json:"observations"`
}

// MeasureIRT runs the adversarial campaign: a golden run fixes the
// program's cycle span and checksum, then `samples` deterministic
// trigger points — stratified over the span, jittered by an LCG on
// seed — each get a fresh platform with the test line armed at that
// exact cycle. build must return a freshly loaded platform; expect is
// the checksum the program must still produce under perturbation.
func MeasureIRT(ctx context.Context, build func() (*vp.Platform, error),
	budget uint64, expect uint32, samples int, seed uint64) (*IRTMeasurement, error) {

	golden, err := build()
	if err != nil {
		return nil, err
	}
	stop, err := golden.RunContext(ctx, budget)
	if err != nil {
		return nil, err
	}
	if stop.Reason != emu.StopExit {
		return nil, fmt.Errorf("qta: irt golden run stopped with %v", stop)
	}
	if stop.Code != expect {
		return nil, fmt.Errorf("qta: irt golden run produced 0x%08x, want 0x%08x",
			stop.Code, expect)
	}
	res := &IRTMeasurement{
		GoldenCycles: golden.Machine.Hart.Cycle,
		Samples:      samples,
	}
	if samples <= 0 {
		return res, nil
	}

	span := res.GoldenCycles
	stratum := span / uint64(samples)
	if stratum == 0 {
		stratum = 1
	}
	x := seed*6364136223846793005 + 1442695040888963407
	for i := 0; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		x = x*6364136223846793005 + 1442695040888963407
		at := uint64(i) * stratum
		if at >= span {
			at = span - 1
		}
		at += (x >> 33) % stratum

		p, err := build()
		if err != nil {
			return nil, err
		}
		meter := NewIRTMeter(&p.Machine.Hart, at)
		if err := p.Machine.Hooks.Register(meter); err != nil {
			return nil, err
		}
		p.Plic.TriggerAt(at)
		pstop, err := p.RunContext(ctx, budget)
		if err != nil {
			return res, err
		}
		if pstop.Reason == emu.StopExit && pstop.Code != expect {
			res.Mismatches++
		}
		if !meter.Delivered {
			// The program retired (or ran out of budget) before the
			// trigger's response completed: no latency to qualify.
			res.Skipped++
			continue
		}
		res.Delivered++
		lat := meter.Done - at
		res.Observations = append(res.Observations, IRTObservation{Trigger: at, Latency: lat})
		if lat > res.MaxLatency {
			res.MaxLatency, res.MaxTrigger = lat, at
		}
	}
	return res, nil
}
