package qta_test

import (
	"strings"
	"testing"

	"repro/internal/decode"
	"repro/internal/emu"
	"repro/internal/flow"
	"repro/internal/isa"
	"repro/internal/qta"
	"repro/internal/timing"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// TestSoundnessAcrossAllWorkloads is the headline property of the whole
// flow (experiment E2's invariant): for every workload and every timing
// profile, static WCET >= QTA accumulated worst case >= dynamic cycles.
func TestSoundnessAcrossAllWorkloads(t *testing.T) {
	profiles := []*timing.Profile{timing.Unit(), timing.EdgeSmall(), timing.EdgeFast(), timing.EdgeCache()}
	for _, prof := range profiles {
		for _, w := range workloads.All() {
			t.Run(prof.Name()+"/"+w.Name, func(t *testing.T) {
				res, err := flow.RunQTA(w, prof)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Sound() {
					t.Errorf("soundness violated: static=%d qta=%d dyn=%d",
						res.StaticWCET, res.QTATime, res.Dynamic)
				}
				if res.Dynamic == 0 || res.Insts == 0 {
					t.Error("empty run")
				}
			})
		}
	}
}

// QTA must observe the loop-head blocks exactly as often as the loop
// bounds say for the fixed-trip-count kernels.
func TestVisitCountsMatchLoopBounds(t *testing.T) {
	w, ok := workloads.ByName("xtea")
	if !ok {
		t.Fatal("xtea missing")
	}
	a, err := flow.Analyze(w.Source, timing.EdgeSmall(), w.LoopBounds)
	if err != nil {
		t.Fatal(err)
	}
	q := qta.New(a.Annotated)
	if _, stop, err := flow.RunWith(w, timing.EdgeSmall(), q); err != nil || stop.Reason != emu.StopExit {
		t.Fatalf("run: %v %v", stop, err)
	}
	round := a.Program.Symbols["round"]
	if q.Visits[round] != 32 {
		t.Errorf("round block visited %d times, want 32", q.Visits[round])
	}
}

// Every deterministic run must observe a subset of the annotated blocks
// and very few unannotated transitions.
func TestCoverageAndMissingTransitions(t *testing.T) {
	for _, w := range workloads.All() {
		res, err := flow.RunQTA(w, timing.EdgeSmall())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.BlocksSeen == 0 || res.BlocksSeen > res.BlocksTotal {
			t.Errorf("%s: blocks seen %d / %d", w.Name, res.BlocksSeen, res.BlocksTotal)
		}
		if res.Missing != 0 {
			t.Errorf("%s: %d unannotated transitions (trap-free run should have none)",
				w.Name, res.Missing)
		}
	}
}

func TestResultString(t *testing.T) {
	r := qta.Result{Program: "x", Profile: "unit", StaticWCET: 100, QTATime: 80, Dynamic: 60}
	s := r.String()
	for _, frag := range []string{"x", "static=100", "qta=80", "dyn=60"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
	if !r.Sound() {
		t.Error("100>=80>=60 should be sound")
	}
	bad := qta.Result{StaticWCET: 10, QTATime: 20, Dynamic: 5}
	if bad.Sound() {
		t.Error("10>=20 should not be sound")
	}
}

func TestAnalyzerProfileOutput(t *testing.T) {
	w, _ := workloads.ByName("sort")
	a, err := flow.Analyze(w.Source, timing.Unit(), w.LoopBounds)
	if err != nil {
		t.Fatal(err)
	}
	q := qta.New(a.Annotated)
	if _, _, err := flow.RunWith(w, timing.Unit(), q); err != nil {
		t.Fatal(err)
	}
	q.Finish()
	prof := q.Profile()
	if !strings.Contains(prof, "visits") || len(strings.Split(prof, "\n")) < 3 {
		t.Errorf("profile output too thin:\n%s", prof)
	}
}

func TestFinishIdempotent(t *testing.T) {
	an := &wcet.Annotated{
		Entry:  0x100,
		Blocks: []wcet.BlockCost{{Start: 0x100, End: 0x108, Cost: 5}},
	}
	q := qta.New(an)
	q.OnInsnExec(0x100, decode.Inst{Op: isa.OpADDI, Size: 4})
	first := q.Finish()
	if first != 5 {
		t.Errorf("Finish = %d, want 5", first)
	}
	if q.Finish() != first {
		t.Error("Finish must be idempotent")
	}
}

func TestUnannotatedTransitionFallback(t *testing.T) {
	// Two blocks with no edge between them: the fallback must charge the
	// source block cost plus the worst penalty in the annotation.
	an := &wcet.Annotated{
		Entry: 0x100,
		Blocks: []wcet.BlockCost{
			{Start: 0x100, End: 0x104, Cost: 3},
			{Start: 0x200, End: 0x204, Cost: 7},
		},
		Edges: []wcet.EdgeCost{
			{From: 0x100, To: 0x100, Cost: 5, Kind: "taken"}, // penalty 2
		},
	}
	q := qta.New(an)
	nop := decode.Inst{Op: isa.OpADDI, Size: 4}
	q.OnInsnExec(0x100, nop)
	q.OnInsnExec(0x200, nop) // no edge 0x100->0x200
	if q.Missing != 1 {
		t.Errorf("missing = %d", q.Missing)
	}
	got := q.Finish()
	// 0x100 cost 3 + max penalty 2, then final block 7 = 12.
	if got != 12 {
		t.Errorf("accumulated = %d, want 12", got)
	}
}

// The QTA/dynamic gap must come from real pessimism sources: on the
// edge-small profile with its early-out multiplier, mul-heavy kernels
// should show QTA strictly above dynamic.
func TestPessimismGapOnEarlyOutCores(t *testing.T) {
	w, _ := workloads.ByName("matmul")
	res, err := flow.RunQTA(w, timing.EdgeSmall())
	if err != nil {
		t.Fatal(err)
	}
	if res.QTATime <= res.Dynamic {
		t.Errorf("expected worst-case gap: qta=%d dynamic=%d", res.QTATime, res.Dynamic)
	}
}

// Trap handlers are invisible to static CFG discovery (reached via
// mtvec, not control flow), so a run that traps must be flagged: the
// analyzer counts the traps and Sound refuses to bless the bound.
func TestTrapsInvalidateTheBound(t *testing.T) {
	src := `
_start:
	la   t0, handler
	csrw mtvec, t0
	li   s0, 0
	ecall                     # detour through unannotated code
	li   t6, SYSCON_EXIT
	sw   s0, 0(t6)
1:	j 1b
handler:
	li   s0, 1
	csrr t1, mepc
	addi t1, t1, 4
	csrw mepc, t1
	mret
`
	a, err := flow.Analyze(src, timing.EdgeSmall(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := qta.New(a.Annotated)
	w := workloads.Workload{Name: "trapdemo", Source: src, Budget: 1000, Expect: 1}
	if _, stop, err := flow.RunWith(w, timing.EdgeSmall(), q); err != nil || stop.Reason != emu.StopExit {
		t.Fatalf("%v %v", stop, err)
	}
	res := q.NewResult("trapdemo", 0, 0)
	if res.Traps == 0 {
		t.Fatal("trap not observed")
	}
	if res.Sound() {
		t.Error("a trapping run must not be declared sound")
	}
}

// Sanity check of the checker itself: an under-declared loop bound must
// surface as an unsound result (static below dynamic), proving the
// soundness test can actually fail.
func TestUnderDeclaredBoundIsDetected(t *testing.T) {
	w, _ := workloads.ByName("xtea")
	lied := make(map[string]int, len(w.LoopBounds))
	for k, v := range w.LoopBounds {
		lied[k] = v
	}
	lied["round"] = 4 // the real trip count is 32
	a, err := flow.Analyze(w.Source, timing.EdgeSmall(), lied)
	if err != nil {
		t.Fatal(err)
	}
	q := qta.New(a.Annotated)
	if _, stop, err := flow.RunWith(w, timing.EdgeSmall(), q); err != nil || stop.Reason != emu.StopExit {
		t.Fatalf("%v %v", stop, err)
	}
	p, _, err := flow.Run(w, timing.EdgeSmall())
	if err != nil {
		t.Fatal(err)
	}
	res := q.NewResult(w.Name, p.Machine.Hart.Cycle, p.Machine.Hart.Instret)
	if res.Sound() {
		t.Errorf("lying flow facts went undetected: static=%d qta=%d dyn=%d",
			res.StaticWCET, res.QTATime, res.Dynamic)
	}
	if res.StaticWCET >= res.QTATime {
		t.Errorf("static bound %d should fall below the observed worst case %d",
			res.StaticWCET, res.QTATime)
	}
}

// The full timing flow must stay sound over RVC-compressed binaries:
// mixed 16/32-bit code through CFG reconstruction, static analysis and
// co-simulation.
func TestSoundnessOnCompressedBuilds(t *testing.T) {
	for _, name := range []string{"xtea", "sort", "pid", "conv3x3", "histogram"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		for _, prof := range []*timing.Profile{timing.EdgeSmall(), timing.EdgeCache()} {
			res, err := flow.RunQTACompressed(w, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, prof.Name(), err)
			}
			if !res.Sound() {
				t.Errorf("%s/%s unsound: static=%d qta=%d dyn=%d",
					name, prof.Name(), res.StaticWCET, res.QTATime, res.Dynamic)
			}
			if res.Missing != 0 {
				t.Errorf("%s/%s: %d unannotated transitions", name, prof.Name(), res.Missing)
			}
		}
	}
}
