package wcet_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/timing"
	"repro/internal/wcet"
)

// analyze assembles src and runs the WCET analysis with the unit profile
// unless another is given.
func analyze(t *testing.T, src string, bounds map[string]int, prof *timing.Profile) *wcet.Annotated {
	t.Helper()
	an, err := tryAnalyze(src, bounds, prof)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func tryAnalyze(src string, bounds map[string]int, prof *timing.Profile) (*wcet.Annotated, error) {
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		return nil, err
	}
	if prof == nil {
		prof = timing.Unit()
	}
	return wcet.Analyze(g, wcet.Config{Profile: prof, Bounds: bounds, Symbols: prog.Symbols})
}

func TestStraightLineUnitCost(t *testing.T) {
	an := analyze(t, `
		addi a0, zero, 1
		addi a1, zero, 2
		add a2, a0, a1
		ebreak
	`, nil, nil)
	// Unit profile: 4 instructions, 1 cycle each, no stalls/penalties.
	if an.WCET != 4 {
		t.Errorf("WCET = %d, want 4", an.WCET)
	}
	if len(an.Blocks) != 1 || an.Blocks[0].Cost != 4 {
		t.Errorf("blocks: %+v", an.Blocks)
	}
}

func TestBranchTakesWorstPath(t *testing.T) {
	// then-branch: 1 inst; else: 3 insts. WCET must take the longer one.
	an := analyze(t, `
		beqz a0, short      # 1
		addi a1, zero, 1    # long path: 3 insts
		addi a2, zero, 2
		addi a3, zero, 3
short:	ebreak
	`, nil, nil)
	// Worst path: beqz(1) + 3 + ebreak(1) = 5.
	if an.WCET != 5 {
		t.Errorf("WCET = %d, want 5", an.WCET)
	}
}

func TestSimpleLoopBound(t *testing.T) {
	an := analyze(t, `
		li a0, 10           # 1 inst
loop:	addi a0, a0, -1     # 2 insts per iteration
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 10}, nil)
	// Unit: li(1) + 10*(addi+bnez) + ebreak(1) = 22, exactly.
	if an.WCET != 22 {
		t.Errorf("WCET = %d, want 22", an.WCET)
	}
	if len(an.Bounds) != 1 {
		t.Errorf("bounds recorded: %v", an.Bounds)
	}
}

func TestNestedLoopMultiplies(t *testing.T) {
	an := analyze(t, `
		li a0, 4
outer:	li a1, 8
inner:	addi a1, a1, -1
		bnez a1, inner
		addi a0, a0, -1
		bnez a0, outer
		ebreak
	`, map[string]int{"outer": 4, "inner": 8}, nil)
	// Inner body 2 insts * 8 = 16 per outer iteration; outer adds 3
	// (li + addi + bnez) -> 4*(16+3) = 76 + li(1) + ebreak(1) = 78.
	if an.WCET != 78 {
		t.Errorf("WCET = %d, want 78", an.WCET)
	}
}

func TestMissingBoundFails(t *testing.T) {
	_, err := tryAnalyze(`
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "no iteration bound") {
		t.Errorf("err = %v", err)
	}
	// The diagnostic should name the nearest label.
	if !strings.Contains(err.Error(), "loop") {
		t.Errorf("diagnostic without label: %v", err)
	}
}

func TestCallCostIncluded(t *testing.T) {
	an := analyze(t, `
_start:
		jal ra, fn          # call
		ebreak
fn:		addi a0, a0, 1
		addi a0, a0, 2
		ret
	`, nil, nil)
	// jal(1) + callee(3) + ebreak(1) + return transfer >= 5.
	if an.WCET < 5 {
		t.Errorf("WCET = %d, want >= 5 (callee not included?)", an.WCET)
	}
}

func TestRecursionRejected(t *testing.T) {
	_, err := tryAnalyze(`
fn:		jal ra, fn
		ret
	`, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("err = %v", err)
	}
}

func TestIndirectCallRejected(t *testing.T) {
	_, err := tryAnalyze(`
		la t0, x
		jalr ra, 0(t0)
x:		ebreak
	`, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "indirect") {
		t.Errorf("err = %v", err)
	}
}

func TestEdgeCostsCoverBlockCosts(t *testing.T) {
	an := analyze(t, `
		li a0, 3
loop:	addi a0, a0, -1
		lw a1, 0(sp)
		add a2, a1, a1      # load-use hazard
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 3}, timing.EdgeSmall())
	byStart := map[uint32]wcet.BlockCost{}
	for _, b := range an.Blocks {
		byStart[b.Start] = b
	}
	for _, e := range an.Edges {
		if e.Cost < byStart[e.From].Cost {
			t.Errorf("edge %+v cheaper than its source block %+v", e, byStart[e.From])
		}
	}
	// Taken edges must be at least penalty more expensive than fall
	// edges from the same branch block.
	var taken, fall *wcet.EdgeCost
	for i, e := range an.Edges {
		if e.Kind == "taken" {
			taken = &an.Edges[i]
		}
		if e.Kind == "fall" && taken != nil && e.From == taken.From {
			fall = &an.Edges[i]
		}
	}
	if taken != nil && fall != nil && taken.Cost <= fall.Cost {
		t.Errorf("taken edge %d not more expensive than fall %d", taken.Cost, fall.Cost)
	}
}

func TestLoadUseStallCharged(t *testing.T) {
	prof := timing.EdgeSmall()
	withHazard := analyze(t, `
		lw a1, 0(sp)
		add a2, a1, a1
		ebreak
	`, nil, prof)
	without := analyze(t, `
		lw a1, 0(sp)
		add a2, a3, a3
		ebreak
	`, nil, prof)
	if withHazard.WCET != without.WCET+uint64(prof.LoadUseStall) {
		t.Errorf("hazard %d vs clean %d (stall %d)",
			withHazard.WCET, without.WCET, prof.LoadUseStall)
	}
}

func TestProfileScalesWCET(t *testing.T) {
	src := `
		li a0, 5
loop:	mul a1, a0, a0
		div a2, a1, a0
		addi a0, a0, -1
		bnez a0, loop
		ebreak
	`
	bounds := map[string]int{"loop": 5}
	small := analyze(t, src, bounds, timing.EdgeSmall())
	unit := analyze(t, src, bounds, timing.Unit())
	if small.WCET <= unit.WCET {
		t.Errorf("edge-small %d should exceed unit %d", small.WCET, unit.WCET)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	an := analyze(t, `
		li a0, 2
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 2}, timing.EdgeSmall())
	data, err := an.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := wcet.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WCET != an.WCET || got.Entry != an.Entry || len(got.Blocks) != len(an.Blocks) ||
		len(got.Edges) != len(an.Edges) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, an)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	an := analyze(t, "nop\nebreak\n", nil, nil)
	good, _ := an.Encode()
	cases := []string{
		"not json",
		`{"entry": 99, "blocks": []}`,
		strings.Replace(string(good), `"cost"`, `"cost_x"`, 1), // cost dropped -> edge below block cost? may pass; keep structural cases
		`{"entry": 0, "blocks": [{"start":0,"end":0,"cost":1}]}`,
	}
	for i, c := range cases {
		if i == 2 {
			continue // structurally tolerant case; covered elsewhere
		}
		if _, err := wcet.Decode([]byte(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBoundTooSmallRejected(t *testing.T) {
	_, err := tryAnalyze(`
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 0}, nil)
	if err == nil {
		t.Error("zero bound should be rejected")
	}
}
