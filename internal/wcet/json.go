package wcet

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON output is produced via the exported fields; these helpers
// wrap the encoding with validation so the artifact can serve as the
// tool-chain intermediate format (the ait2qta output analog).

// Encode serializes the annotated CFG.
func (a *Annotated) Encode() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// Decode parses an annotated CFG and validates its internal consistency:
// edges must reference annotated blocks and costs must cover the source
// block cost.
func Decode(data []byte) (*Annotated, error) {
	var a Annotated
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("wcet: bad annotated CFG: %w", err)
	}
	byStart := make(map[uint32]int, len(a.Blocks))
	for i, b := range a.Blocks {
		if b.End <= b.Start {
			return nil, fmt.Errorf("wcet: block 0x%08x has non-positive extent", b.Start)
		}
		if _, dup := byStart[b.Start]; dup {
			return nil, fmt.Errorf("wcet: duplicate block 0x%08x", b.Start)
		}
		byStart[b.Start] = i
	}
	if _, ok := byStart[a.Entry]; !ok {
		return nil, fmt.Errorf("wcet: entry 0x%08x not among blocks", a.Entry)
	}
	for _, e := range a.Edges {
		i, ok := byStart[e.From]
		if !ok {
			return nil, fmt.Errorf("wcet: edge from unknown block 0x%08x", e.From)
		}
		if _, ok := byStart[e.To]; !ok {
			return nil, fmt.Errorf("wcet: edge to unknown block 0x%08x", e.To)
		}
		if e.Cost < a.Blocks[i].Cost {
			return nil, fmt.Errorf("wcet: edge 0x%08x->0x%08x cost %d below source block cost %d",
				e.From, e.To, e.Cost, a.Blocks[i].Cost)
		}
	}
	return &a, nil
}
