// Package wcet implements the static worst-case execution time analysis
// of the ecosystem — the from-scratch stand-in for the proprietary aiT
// analyzer whose reports the original QTA tool consumed. It reconstructs
// the control-flow graph of a binary, assigns every block and edge a
// worst-case cycle cost from a core timing profile, bounds loops with
// user-supplied flow facts (iteration bounds keyed by loop-head label),
// and computes the program WCET by structural longest-path evaluation
// over the loop-nest tree. Its output artifact, the WCET-annotated CFG,
// is exactly what the QTA co-simulation loads alongside the binary.
package wcet

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/timing"
)

// Config parametrizes an analysis.
type Config struct {
	// Profile is the core timing model (required).
	Profile *timing.Profile

	// Bounds gives the maximum iteration count per loop, keyed by the
	// label of the loop-head block. Every loop not covered by automatic
	// inference must appear here.
	Bounds map[string]int

	// InferBounds enables automatic bound derivation: first the
	// canonical down-counting matcher (see inferBound), then the
	// interval-analysis trip counts (dataflow.InferLoopBounds) for
	// up-counting, strided, and compare-terminated loops. Explicit
	// Bounds entries always win.
	InferBounds bool

	// Symbols maps labels to addresses, used to resolve Bounds (and to
	// name blocks in reports).
	Symbols map[string]uint32
}

// BlockCost is one annotated basic block: [Start, End) and its local
// worst-case cost in cycles, excluding transfer penalties.
type BlockCost struct {
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
	Cost  uint64 `json:"cost"`
}

// EdgeCost is one annotated CFG edge: the worst-case cycle cost of
// running the source block and transferring control to the target block,
// matching the edge semantics of the QTA intermediate format.
type EdgeCost struct {
	From uint32 `json:"from"`
	To   uint32 `json:"to"`
	Cost uint64 `json:"cost"`
	Kind string `json:"kind"`
}

// Annotated is the WCET-annotated CFG: the artifact handed to QTA.
type Annotated struct {
	Entry   uint32         `json:"entry"`
	Profile string         `json:"profile"`
	WCET    uint64         `json:"wcet"`
	Blocks  []BlockCost    `json:"blocks"`
	Edges   []EdgeCost     `json:"edges"`
	Bounds  map[uint32]int `json:"bounds"` // loop head address -> iteration bound

	blockAt map[uint32]int // start -> index, built lazily
	edgeAt  map[uint64]int
}

// Analyze runs the full static analysis over the graph.
func Analyze(g *cfg.Graph, conf Config) (*Annotated, error) {
	return AnalyzeContext(context.Background(), g, conf)
}

// AnalyzeContext is Analyze under a context: cancellation (or a
// deadline) is checked at every function and loop-contraction boundary,
// so a job service can abandon an analysis of a pathological graph
// without waiting it out.
func AnalyzeContext(ctx context.Context, g *cfg.Graph, conf Config) (*Annotated, error) {
	if conf.Profile == nil {
		return nil, fmt.Errorf("wcet: timing profile required")
	}
	an := &Annotated{
		Entry:   g.Entry,
		Profile: conf.Profile.Name(),
		Bounds:  make(map[uint32]int),
	}

	// Local block and edge costs for every block in the program.
	for _, start := range g.Order {
		b := g.Blocks[start]
		cost := conf.Profile.BlockCost(b.Insts)
		an.Blocks = append(an.Blocks, BlockCost{Start: b.Start, End: b.End(), Cost: cost})
		for _, s := range b.Succs {
			pen := transferPenalty(conf.Profile, b, s.Kind)
			an.Edges = append(an.Edges, EdgeCost{
				From: b.Start, To: s.Addr,
				Cost: cost + uint64(pen),
				Kind: s.Kind.String(),
			})
		}
	}

	a := &analysis{ctx: ctx, g: g, conf: conf, an: an, funcMemo: map[uint32]uint64{}, inProgress: map[uint32]bool{}}
	total, err := a.functionWCET(g.Entry)
	if err != nil {
		return nil, err
	}
	an.WCET = total
	return an, nil
}

func transferPenalty(p *timing.Profile, b *cfg.Block, kind cfg.EdgeKind) uint32 {
	switch kind {
	case cfg.EdgeTaken:
		return p.BranchTakenPenalty
	case cfg.EdgeJump:
		return p.JumpPenalty
	}
	return 0
}

// analysis carries the per-run state of the structural WCET computation.
type analysis struct {
	ctx        context.Context
	g          *cfg.Graph
	conf       Config
	an         *Annotated
	funcMemo   map[uint32]uint64
	inProgress map[uint32]bool
}

// node is a block (or contracted loop) in the working graph.
type node struct {
	cost  uint64
	succs map[uint32]uint64 // target -> edge cost
	halt  bool              // terminates the function (halt or ret)
}

// functionWCET computes the WCET of the function at entry, including all
// callees.
func (a *analysis) functionWCET(entry uint32) (uint64, error) {
	if err := a.ctx.Err(); err != nil {
		return 0, err
	}
	if v, ok := a.funcMemo[entry]; ok {
		return v, nil
	}
	if a.inProgress[entry] {
		return 0, fmt.Errorf("wcet: recursive call cycle through 0x%08x is unbounded", entry)
	}
	a.inProgress[entry] = true
	defer delete(a.inProgress, entry)

	blocks := a.g.FunctionBlocks(entry)
	inFunc := map[uint32]bool{}
	for _, u := range blocks {
		inFunc[u] = true
	}

	// Working graph: local cost (+ callee WCET for call blocks) and edge
	// costs with transfer penalties.
	work := make(map[uint32]*node, len(blocks))
	for _, u := range blocks {
		b := a.g.Blocks[u]
		n := &node{
			cost:  a.conf.Profile.BlockCost(b.Insts),
			succs: map[uint32]uint64{},
			halt:  b.Term == cfg.TermHalt || b.Term == cfg.TermRet,
		}
		if b.Term == cfg.TermCall {
			if b.CallTarget == 0 {
				return 0, fmt.Errorf("wcet: indirect call at 0x%08x cannot be bounded", b.End())
			}
			callee, err := a.functionWCET(b.CallTarget)
			if err != nil {
				return 0, err
			}
			n.cost += callee + uint64(a.conf.Profile.JumpPenalty) // callee + return transfer
		}
		for _, s := range b.Succs {
			if !inFunc[s.Addr] {
				continue
			}
			c := n.cost + uint64(transferPenalty(a.conf.Profile, b, s.Kind))
			if old, ok := n.succs[s.Addr]; !ok || c > old {
				n.succs[s.Addr] = c
			}
		}
		work[u] = n
	}

	loops, err := a.g.NaturalLoops(entry)
	if err != nil {
		return 0, err
	}
	// Automatic bounds from the interval analysis (counted loops the
	// legacy down-count matcher cannot see: up-counters, non-unit
	// strides, blt/bge/bltu/bgeu exits).
	var auto map[uint32]int
	if a.conf.InferBounds && len(loops) > 0 {
		auto = dataflow.InferLoopBounds(a.g, entry, loops)
	}
	// Innermost first.
	sort.Slice(loops, func(i, j int) bool { return loops[i].Depth > loops[j].Depth })

	for _, l := range loops {
		if err := a.ctx.Err(); err != nil {
			return 0, err
		}
		bound, err := a.boundFor(l, auto)
		if err != nil {
			return 0, err
		}
		a.an.Bounds[l.Head] = bound
		if err := contractLoop(work, l, bound); err != nil {
			return 0, err
		}
	}

	// The contracted graph is a DAG; longest path from entry to any halt.
	memo := map[uint32]uint64{}
	onPath := map[uint32]bool{}
	var longest func(u uint32) (uint64, error)
	longest = func(u uint32) (uint64, error) {
		if v, ok := memo[u]; ok {
			return v, nil
		}
		if onPath[u] {
			return 0, fmt.Errorf("wcet: residual cycle at 0x%08x (missing loop bound?)", u)
		}
		onPath[u] = true
		defer delete(onPath, u)
		n := work[u]
		if n == nil {
			return 0, fmt.Errorf("wcet: dangling edge to 0x%08x", u)
		}
		best := n.cost // path ends here (halt/ret or no successors)
		for to, ec := range n.succs {
			sub, err := longest(to)
			if err != nil {
				return 0, err
			}
			// Edge cost already includes the source block cost.
			if ec+sub > best {
				best = ec + sub
			}
		}
		memo[u] = best
		return best, nil
	}
	total, err := longest(entry)
	if err != nil {
		return 0, err
	}
	a.funcMemo[entry] = total
	return total, nil
}

// boundFor resolves the iteration bound of a loop: explicit flow facts
// first, then (if enabled) automatic inference — the legacy down-count
// matcher before the interval-based bounds in auto, so its results can
// never loosen.
func (a *analysis) boundFor(l *cfg.Loop, auto map[uint32]int) (int, error) {
	head := l.Head
	for label, bound := range a.conf.Bounds {
		if addr, ok := a.conf.Symbols[label]; ok && addr == head {
			if bound < 1 {
				return 0, fmt.Errorf("wcet: bound for %q must be >= 1", label)
			}
			return bound, nil
		}
	}
	if a.conf.InferBounds {
		if bound, ok := a.inferBound(l); ok {
			return bound, nil
		}
		if bound, ok := auto[head]; ok {
			return bound, nil
		}
	}
	name := "?"
	var bestAddr uint32
	for label, addr := range a.conf.Symbols {
		if addr <= head && addr >= bestAddr {
			bestAddr, name = addr, label
		}
	}
	return 0, fmt.Errorf("wcet: no iteration bound for loop head 0x%08x (near label %q)", head, name)
}

// contractLoop replaces the loop with a single node at its head whose
// cost covers bound iterations plus the worst exit path. Inner loops
// were already contracted, so the members present in work form a DAG
// once edges to the head are ignored.
func contractLoop(work map[uint32]*node, l *cfg.Loop, bound int) error {
	members := map[uint32]bool{}
	for b := range l.Blocks {
		if _, ok := work[b]; ok {
			members[b] = true
		}
	}
	head := l.Head
	if !members[head] {
		return fmt.Errorf("wcet: loop head 0x%08x already contracted", head)
	}

	// Longest path inside the loop from head, treating edges to head as
	// closing an iteration.
	type best struct {
		iter    uint64            // max path cost ending with a back edge to head
		exit    map[uint32]uint64 // max path cost per outside target
		halt    uint64            // max path cost ending at a halting member
		hasHalt bool
		hasIter bool
	}
	memo := map[uint32]*best{}
	onPath := map[uint32]bool{}
	var walk func(u uint32) (*best, error)
	walk = func(u uint32) (*best, error) {
		if b, ok := memo[u]; ok {
			return b, nil
		}
		if onPath[u] {
			return nil, fmt.Errorf("wcet: irreducible cycle inside loop 0x%08x at 0x%08x", head, u)
		}
		onPath[u] = true
		defer delete(onPath, u)
		n := work[u]
		b := &best{exit: map[uint32]uint64{}}
		if n.halt || len(n.succs) == 0 {
			b.halt, b.hasHalt = n.cost, true
		}
		for to, ec := range n.succs {
			switch {
			case to == head:
				if ec > b.iter {
					b.iter = ec
				}
				b.hasIter = true
			case members[to]:
				sub, err := walk(to)
				if err != nil {
					return nil, err
				}
				if sub.hasIter && ec+sub.iter > b.iter {
					b.iter = ec + sub.iter
					b.hasIter = true
				}
				for t, c := range sub.exit {
					if ec+c > b.exit[t] {
						b.exit[t] = ec + c
					}
				}
				if sub.hasHalt && ec+sub.halt > b.halt {
					b.halt = ec + sub.halt
					b.hasHalt = true
				}
			default:
				// Exit edge: cost of the path ends with this edge; the
				// target's own cost is added by the outer longest-path.
				if ec > b.exit[to] {
					b.exit[to] = ec
				}
			}
		}
		memo[u] = b
		return b, nil
	}
	hb, err := walk(head)
	if err != nil {
		return err
	}

	// Total loop cost: the head executes at most `bound` times, so the
	// back edge is taken at most bound-1 times; the final head execution
	// leaves via the worst exit path (which includes the head cost).
	var iterCost uint64
	if hb.hasIter {
		iterCost = hb.iter
	}
	total := uint64(bound-1) * iterCost

	n := &node{cost: total, succs: map[uint32]uint64{}}
	for t, c := range hb.exit {
		n.succs[t] = total + c
	}
	if hb.hasHalt {
		n.halt = true
		n.cost = total + hb.halt
	}
	work[head] = n
	for m := range members {
		if m != head {
			delete(work, m)
		}
	}
	// Redirect: reducible loops are entered only through the head, so no
	// other incoming edges need rewriting; edges into the head keep their
	// cost (they carry the predecessor's cost).
	return nil
}
