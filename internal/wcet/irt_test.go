package wcet_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/timing"
	"repro/internal/wcet"
)

func analyzeIRT(t *testing.T, src string, bounds map[string]int) (*wcet.IRTReport, error) {
	t.Helper()
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := prog.Symbols["handler"]
	if !ok {
		t.Fatal("no handler symbol")
	}
	return wcet.AnalyzeIRT(prog.Bytes, prog.Org, wcet.IRTConfig{
		Profile:      timing.Unit(),
		HandlerEntry: h,
		Entry:        prog.Entry,
		Bounds:       bounds,
		Symbols:      prog.Symbols,
	})
}

// TestIRTComponents pins the decomposition on a minimal program under
// the unit profile (1 cycle/inst, no penalties): a 4-instruction
// critical section, a 3-instruction handler.
func TestIRTComponents(t *testing.T) {
	rep, err := analyzeIRT(t, `
_start:
	li t0, 5
	csrci mstatus, 8
	addi t0, t0, 1
	addi t0, t0, 2
	csrsi mstatus, 8
loop:
	j loop
handler:
	addi t1, t1, 1
	addi t1, t1, 1
	mret
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalSites != 1 {
		t.Errorf("CriticalSites = %d, want 1", rep.CriticalSites)
	}
	if rep.CriticalMax != 4 { // csrci + addi + addi + csrsi
		t.Errorf("CriticalMax = %d, want 4", rep.CriticalMax)
	}
	if rep.HandlerWCET != 3 { // addi + addi + mret
		t.Errorf("HandlerWCET = %d, want 3", rep.HandlerWCET)
	}
	handlerCost := rep.TrapCost + rep.HandlerWCET + rep.MretPenalty
	if rep.Blocking != rep.CriticalMax { // 4 > handlerCost 3
		t.Errorf("Blocking = %d, want CriticalMax %d", rep.Blocking, rep.CriticalMax)
	}
	if rep.Chain == 0 {
		t.Error("Chain = 0: poll granularity unaccounted")
	}
	if want := rep.Blocking + rep.Chain + handlerCost; rep.Bound != want {
		t.Errorf("Bound = %d, want %d", rep.Bound, want)
	}
}

// TestIRTHandlerDominatesBlocking checks the in-flight-handler case:
// with no software critical section, Blocking is the full handler cost.
func TestIRTHandlerDominatesBlocking(t *testing.T) {
	rep, err := analyzeIRT(t, `
_start:
loop:
	j loop
handler:
	addi t1, t1, 1
	addi t1, t1, 2
	addi t1, t1, 3
	mret
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalSites != 0 || rep.CriticalMax != 0 {
		t.Errorf("critical sections = %d/%d, want none", rep.CriticalSites, rep.CriticalMax)
	}
	if want := rep.TrapCost + rep.HandlerWCET + rep.MretPenalty; rep.Blocking != want {
		t.Errorf("Blocking = %d, want handler cost %d", rep.Blocking, want)
	}
}

// TestIRTUnboundedCritical rejects a critical section that can loop
// without re-enabling interrupts.
func TestIRTUnboundedCritical(t *testing.T) {
	_, err := analyzeIRT(t, `
_start:
	csrci mstatus, 8
spin:
	addi t0, t0, 1
	j spin
handler:
	mret
`, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want unbounded-blocking cycle error", err)
	}
}

// TestIRTChainCap checks the straight-line chain term saturates at the
// emulator's translation-block cap instead of growing with program size.
func TestIRTChainCap(t *testing.T) {
	rep, err := analyzeIRT(t, `
_start:
`+strings.Repeat("\taddi t0, t0, 1\n", 100)+`
loop:
	j loop
handler:
	mret
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unit profile: 64 capped instructions, zero transfer penalty.
	if rep.Chain != 64 {
		t.Errorf("Chain = %d, want 64 (translation cap)", rep.Chain)
	}
}
