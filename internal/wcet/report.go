package wcet

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders the human-readable analysis report: the WCET bound, the
// bounded loops, and the per-block cost table — the textual counterpart
// of the annotated-CFG artifact, analogous to an aiT report summary.
// symbols (address -> label) is optional.
func (a *Annotated) Report(symbols map[uint32]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "WCET analysis (profile %s)\n", a.Profile)
	fmt.Fprintf(&sb, "entry:  0x%08x\n", a.Entry)
	fmt.Fprintf(&sb, "bound:  %d cycles\n", a.WCET)

	if len(a.Bounds) > 0 {
		fmt.Fprintf(&sb, "loops:\n")
		heads := make([]uint32, 0, len(a.Bounds))
		for h := range a.Bounds {
			heads = append(heads, h)
		}
		sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
		for _, h := range heads {
			fmt.Fprintf(&sb, "  0x%08x%s: <= %d iterations\n", h, label(symbols, h), a.Bounds[h])
		}
	}

	fmt.Fprintf(&sb, "blocks:\n")
	fmt.Fprintf(&sb, "  %-24s %8s %6s\n", "range", "cost", "edges")
	edgesFrom := map[uint32]int{}
	for _, e := range a.Edges {
		edgesFrom[e.From]++
	}
	for _, b := range a.Blocks {
		fmt.Fprintf(&sb, "  0x%08x-0x%08x%s %6d %6d\n",
			b.Start, b.End, label(symbols, b.Start), b.Cost, edgesFrom[b.Start])
	}
	return sb.String()
}

func label(symbols map[uint32]string, addr uint32) string {
	if name, ok := symbols[addr]; ok {
		return " <" + name + ">"
	}
	return ""
}
