package wcet_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/timing"
	"repro/internal/vp"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// inferAnalyze runs the analysis with inference on and no explicit
// bounds except the given ones.
func inferAnalyze(t *testing.T, src string, explicit map[string]int) (*wcet.Annotated, error) {
	t.Helper()
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return wcet.Analyze(g, wcet.Config{
		Profile:     timing.Unit(),
		Bounds:      explicit,
		Symbols:     prog.Symbols,
		InferBounds: true,
	})
}

func TestInferSimpleDownCount(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same as the explicit-bound case: li(1) + 10*2 + ebreak(1) = 22.
	if an.WCET != 22 {
		t.Errorf("WCET = %d, want 22", an.WCET)
	}
	if len(an.Bounds) != 1 {
		t.Fatalf("bounds: %v", an.Bounds)
	}
	for _, b := range an.Bounds {
		if b != 10 {
			t.Errorf("inferred bound %d, want 10", b)
		}
	}
}

func TestInferStride(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 12
loop:	addi a0, a0, -3
		bnez a0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 4 {
			t.Errorf("inferred bound %d, want 4 (12/3)", b)
		}
	}
}

func TestInferRejectsNonDividingStride(t *testing.T) {
	// 10 steps of -3 never hits zero exactly: the loop would wrap, so
	// inference must refuse and demand an annotation.
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -3
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("non-dividing stride must not be inferred")
	}
}

func TestInferRejectsCounterClobber(t *testing.T) {
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		add a0, a0, a1      # second write to the counter
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("clobbered counter must not be inferred")
	}
}

func TestInferRejectsConditionalDecrement(t *testing.T) {
	// The decrement is inside a conditionally executed block, so an
	// iteration may skip it: unbounded under this idiom.
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	beqz a1, skip
		addi a0, a0, -1
skip:	add a2, a2, a1
		beq a2, a2, back    # unconditional-ish filler
back:	bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("conditional decrement must not be inferred")
	}
}

func TestInferRejectsDynamicInit(t *testing.T) {
	_, err := inferAnalyze(t, `
		add a0, a1, a2      # data-dependent trip count
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("dynamic init must not be inferred")
	}
}

func TestExplicitBoundWinsOverInference(t *testing.T) {
	// The user says 20; inference would say 10; explicit wins (it may
	// encode knowledge about a re-entered loop).
	an, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 20 {
			t.Errorf("bound %d, want explicit 20", b)
		}
	}
}

func TestInferUpCountSltiLatch(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 0
loop:	addi a0, a0, 1
		slti t0, a0, 8
		bnez t0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 8 {
			t.Errorf("inferred bound %d, want 8", b)
		}
	}
	if len(an.Bounds) != 1 {
		t.Fatalf("bounds: %v", an.Bounds)
	}
}

func TestInferUpCountStride(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 0
loop:	addi a0, a0, 3
		slti t0, a0, 10
		bnez t0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Counter values at the test: 3, 6, 9, 12 — four head executions.
	for _, b := range an.Bounds {
		if b != 4 {
			t.Errorf("inferred bound %d, want 4", b)
		}
	}
}

func TestInferBltLatch(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 5
		li a1, 20
loop:	addi a0, a0, 1
		blt a0, a1, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 15 {
			t.Errorf("inferred bound %d, want 15", b)
		}
	}
}

// The flagship use: most workload loops follow the idiom, so inference
// alone must bound them with exactly the same result as the hand-written
// flow facts wherever both apply.
func TestInferenceMatchesAnnotationsOnWorkloads(t *testing.T) {
	prelude := "\t.equ SYSCON_EXIT, 0x00100000\n\t.equ SENSOR_SAMPLE, 0x10010000\n\t.equ SENSOR_COUNT, 0x10010004\n\t.equ UART_TX, 0x10000000\n"
	for _, name := range []string{"xtea", "popcount_bmi", "parity_base", "byteswap_base", "clamp_base"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		prog, err := asm.AssembleAt(prelude+w.Source, 0x8000_0000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		withAnnots, err := wcet.Analyze(g, wcet.Config{
			Profile: timing.EdgeSmall(), Bounds: w.LoopBounds, Symbols: prog.Symbols,
		})
		if err != nil {
			t.Fatalf("%s annotated: %v", name, err)
		}
		inferred, err := wcet.Analyze(g, wcet.Config{
			Profile: timing.EdgeSmall(), Symbols: prog.Symbols, InferBounds: true,
		})
		if err != nil {
			t.Fatalf("%s inferred: %v", name, err)
		}
		if withAnnots.WCET != inferred.WCET {
			t.Errorf("%s: annotated WCET %d != inferred %d", name, withAnnots.WCET, inferred.WCET)
		}
	}
}

// analyzeWorkload assembles a workload under the platform prelude and
// runs the analysis with the given bounds.
func analyzeWorkload(t *testing.T, w workloads.Workload, bounds map[string]int, infer bool) (*wcet.Annotated, error) {
	t.Helper()
	prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return wcet.Analyze(g, wcet.Config{
		Profile:     timing.EdgeSmall(),
		Bounds:      bounds,
		Symbols:     prog.Symbols,
		InferBounds: infer,
	})
}

// Inference must never loosen a bound: for every workload where the
// inference-only analysis succeeds at all, each inferred loop bound must
// not exceed the hand-written annotation, and neither may the WCET.
func TestInferenceNeverLoosensWorkloadBounds(t *testing.T) {
	succeeded := 0
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ann, err := analyzeWorkload(t, w, w.LoopBounds, false)
			if err != nil {
				t.Fatalf("annotated analysis failed: %v", err)
			}
			inf, err := analyzeWorkload(t, w, nil, true)
			if err != nil {
				// Data-dependent loops (sort, pid, ...) legitimately
				// defeat inference; the never-loosen claim is about the
				// ones it does bound.
				t.Skipf("inference-only: %v", err)
			}
			succeeded++
			if inf.WCET > ann.WCET {
				t.Errorf("inferred WCET %d looser than annotated %d", inf.WCET, ann.WCET)
			}
			prog, err := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
			if err != nil {
				t.Fatal(err)
			}
			for label, annB := range w.LoopBounds {
				if b, ok := inf.Bounds[prog.Symbols[label]]; ok && b > annB {
					t.Errorf("loop %s: inferred bound %d > annotation %d", label, b, annB)
				}
			}
		})
	}
	if succeeded < 10 {
		t.Errorf("inference-only analysis succeeded on %d workloads, want >= 10", succeeded)
	}
}

// Acceptance check for the interval inferencer: loops that previously
// required explicit Bounds entries (up-counting or blt-terminated, which
// the legacy down-count matcher cannot handle) are now bounded
// automatically, with the program WCET unchanged.
func TestIntervalInferenceReplacesAnnotations(t *testing.T) {
	cases := []struct {
		workload string
		dropped  []string // annotations removed and expected to be re-derived
	}{
		{"fir", []string{"oloop"}},             // blt-latch up-count, bound 57
		{"matmul", []string{"iloop", "jloop"}}, // slti-latch up-counts, bound 8
	}
	for _, c := range cases {
		t.Run(c.workload, func(t *testing.T) {
			w, ok := workloads.ByName(c.workload)
			if !ok {
				t.Fatalf("%s missing", c.workload)
			}
			ann, err := analyzeWorkload(t, w, w.LoopBounds, false)
			if err != nil {
				t.Fatal(err)
			}
			partial := map[string]int{}
			for label, b := range w.LoopBounds {
				partial[label] = b
			}
			for _, label := range c.dropped {
				if _, ok := partial[label]; !ok {
					t.Fatalf("workload has no %q annotation to drop", label)
				}
				delete(partial, label)
			}
			// Without inference the stripped analysis must fail...
			if _, err := analyzeWorkload(t, w, partial, false); err == nil {
				t.Fatalf("analysis without %v should require the annotations", c.dropped)
			}
			// ...and with the interval inferencer it must reproduce the
			// annotated result exactly.
			inf, err := analyzeWorkload(t, w, partial, true)
			if err != nil {
				t.Fatalf("inference did not recover %v: %v", c.dropped, err)
			}
			if inf.WCET != ann.WCET {
				t.Errorf("WCET with inferred bounds %d, want annotated %d", inf.WCET, ann.WCET)
			}
			prog, _ := asm.AssembleAt(vp.Prelude+w.Source, vp.RAMBase)
			for _, label := range c.dropped {
				head := prog.Symbols[label]
				if got := inf.Bounds[head]; got != w.LoopBounds[label] {
					t.Errorf("loop %s: inferred bound %d, want %d", label, got, w.LoopBounds[label])
				}
			}
		})
	}
}
