package wcet_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/timing"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

// inferAnalyze runs the analysis with inference on and no explicit
// bounds except the given ones.
func inferAnalyze(t *testing.T, src string, explicit map[string]int) (*wcet.Annotated, error) {
	t.Helper()
	prog, err := asm.AssembleAt(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return wcet.Analyze(g, wcet.Config{
		Profile:     timing.Unit(),
		Bounds:      explicit,
		Symbols:     prog.Symbols,
		InferBounds: true,
	})
}

func TestInferSimpleDownCount(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same as the explicit-bound case: li(1) + 10*2 + ebreak(1) = 22.
	if an.WCET != 22 {
		t.Errorf("WCET = %d, want 22", an.WCET)
	}
	if len(an.Bounds) != 1 {
		t.Fatalf("bounds: %v", an.Bounds)
	}
	for _, b := range an.Bounds {
		if b != 10 {
			t.Errorf("inferred bound %d, want 10", b)
		}
	}
}

func TestInferStride(t *testing.T) {
	an, err := inferAnalyze(t, `
		li a0, 12
loop:	addi a0, a0, -3
		bnez a0, loop
		ebreak
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 4 {
			t.Errorf("inferred bound %d, want 4 (12/3)", b)
		}
	}
}

func TestInferRejectsNonDividingStride(t *testing.T) {
	// 10 steps of -3 never hits zero exactly: the loop would wrap, so
	// inference must refuse and demand an annotation.
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -3
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("non-dividing stride must not be inferred")
	}
}

func TestInferRejectsCounterClobber(t *testing.T) {
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		add a0, a0, a1      # second write to the counter
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("clobbered counter must not be inferred")
	}
}

func TestInferRejectsConditionalDecrement(t *testing.T) {
	// The decrement is inside a conditionally executed block, so an
	// iteration may skip it: unbounded under this idiom.
	_, err := inferAnalyze(t, `
		li a0, 10
loop:	beqz a1, skip
		addi a0, a0, -1
skip:	add a2, a2, a1
		beq a2, a2, back    # unconditional-ish filler
back:	bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("conditional decrement must not be inferred")
	}
}

func TestInferRejectsDynamicInit(t *testing.T) {
	_, err := inferAnalyze(t, `
		add a0, a1, a2      # data-dependent trip count
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, nil)
	if err == nil {
		t.Error("dynamic init must not be inferred")
	}
}

func TestExplicitBoundWinsOverInference(t *testing.T) {
	// The user says 20; inference would say 10; explicit wins (it may
	// encode knowledge about a re-entered loop).
	an, err := inferAnalyze(t, `
		li a0, 10
loop:	addi a0, a0, -1
		bnez a0, loop
		ebreak
	`, map[string]int{"loop": 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Bounds {
		if b != 20 {
			t.Errorf("bound %d, want explicit 20", b)
		}
	}
}

// The flagship use: most workload loops follow the idiom, so inference
// alone must bound them with exactly the same result as the hand-written
// flow facts wherever both apply.
func TestInferenceMatchesAnnotationsOnWorkloads(t *testing.T) {
	prelude := "\t.equ SYSCON_EXIT, 0x00100000\n\t.equ SENSOR_SAMPLE, 0x10010000\n\t.equ SENSOR_COUNT, 0x10010004\n\t.equ UART_TX, 0x10000000\n"
	for _, name := range []string{"xtea", "popcount_bmi", "parity_base", "byteswap_base", "clamp_base"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		prog, err := asm.AssembleAt(prelude+w.Source, 0x8000_0000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		withAnnots, err := wcet.Analyze(g, wcet.Config{
			Profile: timing.EdgeSmall(), Bounds: w.LoopBounds, Symbols: prog.Symbols,
		})
		if err != nil {
			t.Fatalf("%s annotated: %v", name, err)
		}
		inferred, err := wcet.Analyze(g, wcet.Config{
			Profile: timing.EdgeSmall(), Symbols: prog.Symbols, InferBounds: true,
		})
		if err != nil {
			t.Fatalf("%s inferred: %v", name, err)
		}
		if withAnnots.WCET != inferred.WCET {
			t.Errorf("%s: annotated WCET %d != inferred %d", name, withAnnots.WCET, inferred.WCET)
		}
	}
}
