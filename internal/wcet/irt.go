package wcet

// Interrupt-response-time (IRT) analysis: the static bound on the
// latency from an interrupt-request assert to the completion of its
// service routine, the qualification quantity of the reactive edge
// demonstrators. The bound decomposes as
//
//	IRT = Blocking + Chain + TrapPenalty + HandlerWCET + MretPenalty
//
// where Blocking covers the worst case of the request arriving while
// interrupts are disabled (the longest mstatus.MIE-off region: either a
// software critical section or an in-flight handler), Chain covers the
// emulator's delivery granularity (interrupts are polled at translated-
// block boundaries, so up to one maximal straight-line block chain may
// retire between assert and poll — superblock traces preserve these
// poll points at former block boundaries), and the remaining terms are
// the trap entry cost, the longest path through the handler itself, and
// the return transfer. Each term is a worst case of an independent
// mechanism, so their sum dominates every interleaving; the qta IRT
// co-sim cross-checks the bound against measured latencies from
// adversarially timed interrupts.

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/decode"
	"repro/internal/isa"
	"repro/internal/timing"
)

// IRTConfig parametrizes an interrupt-response-time analysis.
type IRTConfig struct {
	// Profile is the core timing model (required).
	Profile *timing.Profile

	// HandlerEntry is the address of the interrupt service routine (the
	// mtvec target). The handler must reach mret on every path.
	HandlerEntry uint32

	// Entry is the program entry; the main-flow CFG rooted here is
	// scanned for critical sections and block chains.
	Entry uint32

	// Bounds, InferBounds and Symbols parametrize the handler WCET
	// computation exactly as in Config.
	Bounds      map[string]int
	InferBounds bool
	Symbols     map[string]uint32
}

// IRTReport is the result of an IRT analysis: the bound and its terms.
type IRTReport struct {
	Bound       uint64 `json:"bound"`        // the static IRT bound
	Blocking    uint64 `json:"blocking"`     // worst interrupts-disabled wait
	CriticalMax uint64 `json:"critical_max"` // longest software critical section
	Chain       uint64 `json:"chain"`        // worst poll-granularity delay
	TrapCost    uint64 `json:"trap_cost"`    // trap entry penalty
	HandlerWCET uint64 `json:"handler_wcet"` // longest handler path (incl. mret)
	MretPenalty uint64 `json:"mret_penalty"` // return transfer cost

	Handler       *Annotated `json:"handler"`        // annotated handler CFG
	CriticalSites int        `json:"critical_sites"` // MIE-clearing sites found
}

// tbChainCap mirrors the emulator's translation-block instruction cap:
// a straight-line run between interrupt polls never exceeds it.
const tbChainCap = 64

// AnalyzeIRT computes the static interrupt-response-time bound for the
// program in image (loaded at base) with the given handler.
func AnalyzeIRT(image []byte, base uint32, conf IRTConfig) (*IRTReport, error) {
	if conf.Profile == nil {
		return nil, fmt.Errorf("wcet: timing profile required")
	}
	if conf.HandlerEntry == 0 {
		return nil, fmt.Errorf("wcet: handler entry required")
	}

	// Handler WCET: the handler is a function whose CFG closes at mret
	// (TermHalt), so the standard structural analysis bounds it.
	hg, err := cfg.Build(image, base, conf.HandlerEntry)
	if err != nil {
		return nil, fmt.Errorf("wcet: handler cfg: %w", err)
	}
	han, err := Analyze(hg, Config{
		Profile:     conf.Profile,
		Bounds:      conf.Bounds,
		InferBounds: conf.InferBounds,
		Symbols:     conf.Symbols,
	})
	if err != nil {
		return nil, fmt.Errorf("wcet: handler: %w", err)
	}

	// Main-flow CFG for the chain and blocking terms. The handler is
	// reachable only through mtvec, so scan both graphs.
	mg, err := cfg.Build(image, base, conf.Entry)
	if err != nil {
		return nil, fmt.Errorf("wcet: main cfg: %w", err)
	}
	graphs := []*cfg.Graph{mg, hg}

	var chain uint64
	for _, g := range graphs {
		if c := maxBlockChain(g, conf.Profile); c > chain {
			chain = c
		}
	}

	var critMax uint64
	var sites int
	for _, g := range graphs {
		c, n, err := maxCriticalSection(g, conf.Profile)
		if err != nil {
			return nil, err
		}
		sites += n
		if c > critMax {
			critMax = c
		}
	}

	r := &IRTReport{
		CriticalMax:   critMax,
		Chain:         chain,
		TrapCost:      uint64(conf.Profile.TrapPenalty),
		HandlerWCET:   han.WCET,
		MretPenalty:   uint64(conf.Profile.JumpPenalty),
		Handler:       han,
		CriticalSites: sites,
	}
	// A request arriving mid-handler waits for the rest of that
	// invocation (at most the full handler cost); one arriving inside a
	// critical section waits for the enable. The two regions cannot
	// nest — the handler runs with MIE hardware-cleared.
	handlerCost := r.TrapCost + r.HandlerWCET + r.MretPenalty
	r.Blocking = critMax
	if handlerCost > r.Blocking {
		r.Blocking = handlerCost
	}
	r.Bound = r.Blocking + r.Chain + handlerCost
	return r, nil
}

// maxBlockChain bounds the cycles the emulator can retire between two
// interrupt polls: polls happen when a translated block ends (control
// flow, serializing instruction, or the instruction cap), so the worst
// case is the costliest maximal fallthrough chain of CFG blocks, capped
// at the translation limit, plus the final transfer penalty.
func maxBlockChain(g *cfg.Graph, prof *timing.Profile) uint64 {
	maxPen := prof.BranchTakenPenalty
	if prof.JumpPenalty > maxPen {
		maxPen = prof.JumpPenalty
	}
	var best uint64
	for _, start := range g.Order {
		insts := 0
		var cost uint64
		for b := g.Blocks[start]; b != nil; {
			take := len(b.Insts)
			if insts+take > tbChainCap {
				take = tbChainCap - insts
			}
			cost += prof.BlockCost(b.Insts[:take])
			insts += take
			if insts >= tbChainCap || b.Term != cfg.TermFall || len(b.Succs) == 0 {
				break
			}
			b = g.Blocks[b.Succs[0].Addr]
		}
		cost += uint64(maxPen)
		if cost > best {
			best = cost
		}
	}
	return best
}

// mstatus CSR-write classification for the blocking analysis.
func disablesMIE(in decode.Inst) bool {
	if in.CSR != isa.CSRMstatus {
		return false
	}
	switch in.Op {
	case isa.OpCSRRCI:
		return in.Imm&isa.MstatusMIE != 0
	case isa.OpCSRRC, isa.OpCSRRW, isa.OpCSRRWI:
		// Register-operand clears and whole-register writes may drop
		// MIE; treat them as openings conservatively (csrrwi with the
		// MIE bit set is an enable, handled first by enablesMIE).
		return !enablesMIE(in)
	}
	return false
}

func enablesMIE(in decode.Inst) bool {
	if in.Op == isa.OpMRET {
		// mret restores MIE from MPIE: the end of any handler-side
		// disabled region.
		return true
	}
	if in.CSR != isa.CSRMstatus {
		return false
	}
	switch in.Op {
	case isa.OpCSRRSI:
		return in.Imm&isa.MstatusMIE != 0
	case isa.OpCSRRWI:
		return in.Imm&isa.MstatusMIE != 0
	case isa.OpCSRRS:
		// Register-operand set: the demonstrator idiom is csrsi, but a
		// csrs from a register is still a plausible enable; treating it
		// as one is safe because the walk continues from *every*
		// disable site — an enable that doesn't actually set MIE just
		// means the real region extends to the next one, which is
		// covered by the later disable site's own walk only if MIE was
		// cleared again. To stay sound we do NOT treat csrrs as an
		// enable.
		return false
	}
	return false
}

// maxCriticalSection bounds the longest interrupts-disabled software
// region: from every MIE-clearing instruction, the costliest path to an
// MIE-setting instruction (or a halting block — after which no delivery
// is observable anyway). A cycle reachable while disabled makes the
// region unbounded and is an error.
func maxCriticalSection(g *cfg.Graph, prof *timing.Profile) (uint64, int, error) {
	type pos struct {
		block uint32
		idx   int
	}
	memo := map[pos]uint64{}
	onPath := map[pos]bool{}

	var walk func(p pos) (uint64, error)
	walk = func(p pos) (uint64, error) {
		if v, ok := memo[p]; ok {
			return v, nil
		}
		if onPath[p] {
			return 0, fmt.Errorf("wcet: interrupts-disabled region at 0x%08x contains a cycle (unbounded blocking)", p.block)
		}
		onPath[p] = true
		defer delete(onPath, p)

		b := g.Blocks[p.block]
		if b == nil || p.idx >= len(b.Insts) {
			return 0, nil
		}
		in := b.Insts[p.idx]
		cost := uint64(prof.StaticCost(in))
		if enablesMIE(in) {
			memo[p] = cost
			return cost, nil
		}
		var worst uint64
		if p.idx+1 < len(b.Insts) {
			w, err := walk(pos{p.block, p.idx + 1})
			if err != nil {
				return 0, err
			}
			worst = w
		} else if b.Term == cfg.TermHalt || b.Term == cfg.TermRet {
			// The region runs off the end of the program (or escapes
			// through an indirect jump): nothing left to delay.
			worst = 0
		} else {
			for _, s := range b.Succs {
				if g.Blocks[s.Addr] == nil {
					continue
				}
				w, err := walk(pos{s.Addr, 0})
				if err != nil {
					return 0, err
				}
				w += uint64(transferPenalty(prof, b, s.Kind))
				if w > worst {
					worst = w
				}
			}
		}
		total := cost + worst
		memo[p] = total
		return total, nil
	}

	var best uint64
	sites := 0
	for _, start := range g.Order {
		b := g.Blocks[start]
		for i, in := range b.Insts {
			if !disablesMIE(in) {
				continue
			}
			sites++
			w, err := walk(pos{start, i})
			if err != nil {
				return 0, sites, err
			}
			if w > best {
				best = w
			}
		}
	}
	return best, sites, nil
}
