package wcet_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/timing"
	"repro/internal/wcet"
	"repro/internal/workloads"
)

func BenchmarkAnalyzeMatmul(b *testing.B) {
	w, ok := workloads.ByName("matmul")
	if !ok {
		b.Fatal("matmul missing")
	}
	prelude := "\t.equ SYSCON_EXIT, 0x00100000\n"
	prog, err := asm.AssembleAt(prelude+w.Source, 0x8000_0000)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	conf := wcet.Config{Profile: timing.EdgeSmall(), Bounds: w.LoopBounds, Symbols: prog.Symbols}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcet.Analyze(g, conf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFGBuild(b *testing.B) {
	w, _ := workloads.ByName("conv3x3")
	prelude := "\t.equ SYSCON_EXIT, 0x00100000\n"
	prog, err := asm.AssembleAt(prelude+w.Source, 0x8000_0000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Build(prog.Bytes, prog.Org, prog.Entry); err != nil {
			b.Fatal(err)
		}
	}
}
