package wcet

import (
	"repro/internal/cfg"
	"repro/internal/decode"
	"repro/internal/isa"
)

// inferBound attempts to derive the iteration bound of a loop
// automatically for the canonical down-counting idiom
//
//	li   ctr, K          # in the preheader (short li form)
//	head: ...
//	      addi ctr, ctr, -d   # in the head or the back-edge block
//	      bnez ctr, head
//
// The inference is deliberately conservative: it requires a single back
// edge ending in bnez, exactly one in-loop write to the counter (the
// decrement, on every completed iteration's path), an initialization
// that reaches the head from every preheader, and K divisible by d
// (otherwise the loop would wrap instead of terminating). Anything else
// falls back to user-supplied flow facts, the same division of labour
// aiT has between its value analysis and manual annotations.
func (a *analysis) inferBound(l *cfg.Loop) (int, bool) {
	if len(l.Back) != 1 {
		return 0, false
	}
	backBlock := a.g.Blocks[l.Back[0]]
	if backBlock == nil || len(backBlock.Insts) == 0 {
		return 0, false
	}
	term := backBlock.Insts[len(backBlock.Insts)-1]
	// bnez ctr, head
	if term.Op != isa.OpBNE && term.Op != isa.OpCBNEZ {
		return 0, false
	}
	if term.Rs2 != isa.Zero {
		return 0, false
	}
	ctr := term.Rs1
	if ctr == isa.Zero {
		return 0, false
	}

	// Exactly one in-loop write to ctr: an addi ctr, ctr, -d located in
	// the head or the back-edge block (both on every completed
	// iteration's path).
	var dec *decode.Inst
	for blockStart := range l.Blocks {
		b := a.g.Blocks[blockStart]
		if b == nil {
			return 0, false
		}
		for i := range b.Insts {
			in := b.Insts[i]
			rd, writes := in.WritesReg()
			if !writes || rd != ctr {
				continue
			}
			isDec := (in.Op == isa.OpADDI || in.Op == isa.OpCADDI) &&
				in.Rs1 == ctr && in.Imm < 0
			onEveryPath := blockStart == l.Head || blockStart == backBlock.Start
			if !isDec || !onEveryPath || dec != nil {
				return 0, false
			}
			cp := in
			dec = &cp
		}
	}
	if dec == nil {
		return 0, false
	}
	step := int(-dec.Imm)

	// Every preheader (predecessor of the head outside the loop) must
	// end up initializing ctr with the same positive constant via the
	// short li form (addi ctr, zero, K) or c.li.
	init := -1
	prehCount := 0
	for _, start := range a.g.Order {
		b := a.g.Blocks[start]
		if l.Blocks[start] {
			continue
		}
		isPred := false
		for _, s := range b.Succs {
			if s.Addr == l.Head {
				isPred = true
			}
		}
		if !isPred {
			continue
		}
		prehCount++
		k, ok := lastConstWrite(b, ctr)
		if !ok {
			return 0, false
		}
		if init >= 0 && k != init {
			return 0, false
		}
		init = k
	}
	if prehCount == 0 || init <= 0 || init%step != 0 {
		return 0, false
	}
	return init / step, true
}

// lastConstWrite scans a block backwards for the final write to reg and
// reports its value if it is a load-immediate of a non-negative constant.
func lastConstWrite(b *cfg.Block, reg isa.Reg) (int, bool) {
	for i := len(b.Insts) - 1; i >= 0; i-- {
		in := b.Insts[i]
		rd, writes := in.WritesReg()
		if !writes || rd != reg {
			continue
		}
		switch in.Op {
		case isa.OpADDI, isa.OpCADDI, isa.OpCLI:
			if in.Rs1 == isa.Zero && in.Imm >= 0 {
				return int(in.Imm), true
			}
		}
		return 0, false
	}
	return 0, false
}
