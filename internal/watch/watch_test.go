package watch_test

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/plugin"
	"repro/internal/vp"
	"repro/internal/watch"
)

// lockControl is the access-control scenario from the ecosystem's
// security component: only the driver routine `unlock_door` may write
// the UART that actuates the lock. The main program calls the driver
// once (authorized) and, when a0 is poisoned, also writes the UART
// directly from main (the attack path).
const lockControl = `
_start:
	li   s0, 0              # attack flag, patched by the test
	call unlock_door        # the authorized path
	beqz s0, done
	# unauthorized path: main writes the actuator directly
	li   t0, UART_TX
	li   t1, 'X'
	sw   t1, 0(t0)
done:
	li   t6, SYSCON_EXIT
	sw   zero, 0(t6)
1:	j 1b

unlock_door:
	li   t0, UART_TX
	li   t1, 'U'
	sw   t1, 0(t0)
	ret
`

// buildLock assembles the scenario with the attack flag forced on or off
// and returns the platform, monitor and driver bounds.
func buildLock(t *testing.T, attack bool) (*vp.Platform, *watch.Monitor) {
	t.Helper()
	src := lockControl
	if attack {
		src = strings.Replace(src, "li   s0, 0", "li   s0, 1", 1)
	}
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + src)
	if err != nil {
		t.Fatal(err)
	}
	driver, ok := prog.Symbols["unlock_door"]
	if !ok {
		t.Fatal("driver symbol missing")
	}
	driverEnd := prog.Org + uint32(len(prog.Bytes))
	m := watch.New(watch.Rule{
		Target:   watch.Region{Name: "lock-uart", Lo: vp.UARTBase, Hi: vp.UARTBase + 4},
		Restrict: watch.Stores,
		AllowedCode: []watch.Region{
			{Name: "driver", Lo: driver, Hi: driverEnd},
		},
	})
	if err := p.Machine.Hooks.Register(m); err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestAuthorizedAccessIsClean(t *testing.T) {
	p, m := buildLock(t, false)
	if stop := p.Run(10_000); stop.Reason != emu.StopExit {
		t.Fatalf("stop: %v", stop)
	}
	if !m.Clean() {
		t.Errorf("authorized run flagged:\n%s", m.Report())
	}
	if m.Checked == 0 {
		t.Error("monitor observed no accesses")
	}
	if !strings.Contains(m.Report(), "clean") {
		t.Errorf("report: %q", m.Report())
	}
}

func TestUnauthorizedAccessDetected(t *testing.T) {
	p, m := buildLock(t, true)
	if stop := p.Run(10_000); stop.Reason != emu.StopExit {
		t.Fatalf("stop: %v", stop)
	}
	if m.Clean() {
		t.Fatal("attack path not detected")
	}
	v := m.Violations[0]
	if !v.Store || v.Rule != "lock-uart" || v.Addr != vp.UARTBase {
		t.Errorf("violation: %+v", v)
	}
	if !strings.Contains(m.Report(), "unauthorized store") {
		t.Errorf("report: %q", m.Report())
	}
}

func TestOnViolationCallbackCanHalt(t *testing.T) {
	p, m := buildLock(t, true)
	m.OnViolation = func(v watch.Violation) {
		p.Machine.RequestStop(0xdead)
	}
	stop := p.Run(10_000)
	if stop.Reason != emu.StopExit || stop.Code != 0xdead {
		t.Errorf("detection did not halt the machine: %v", stop)
	}
}

func TestLoadRestriction(t *testing.T) {
	p, err := vp.New(vp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.LoadSource(vp.Prelude + `
_start:
	la   a0, secret
	lw   a1, 0(a0)          # unauthorized read of key material
	ebreak
secret:	.word 0x12345678
`)
	if err != nil {
		t.Fatal(err)
	}
	sec := prog.Symbols["secret"]
	m := watch.New(watch.Rule{
		Target:   watch.Region{Name: "key-store", Lo: sec, Hi: sec + 4},
		Restrict: watch.Loads,
		// nobody is allowed
	})
	if err := p.Machine.Hooks.Register(m); err != nil {
		t.Fatal(err)
	}
	if stop := p.Run(1000); stop.Reason != emu.StopEbreak {
		t.Fatalf("stop: %v", stop)
	}
	if m.Clean() || m.Violations[0].Store {
		t.Errorf("load restriction: %+v", m.Violations)
	}
}

// The monitor must compose with fault injection: a code bit flip that
// redirects a store into the protected region is caught even though the
// original program is policy-clean.
func TestMonitorIsNonInvasive(t *testing.T) {
	// Two identical runs, one with the monitor attached: architectural
	// results must match exactly (the "non-invasive" property).
	run := func(withMonitor bool) (uint32, uint64) {
		p, err := vp.New(vp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if withMonitor {
			m := watch.New(watch.Rule{
				Target:   watch.Region{Name: "uart", Lo: vp.UARTBase, Hi: vp.UARTBase + 16},
				Restrict: watch.All,
			})
			if err := p.Machine.Hooks.Register(m); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.LoadSource(vp.Prelude + `
_start:
	li a0, 1000
	li a1, 0
1:	add a1, a1, a0
	addi a0, a0, -1
	bnez a0, 1b
	li t6, SYSCON_EXIT
	sw a1, 0(t6)
2:	j 2b
`); err != nil {
			t.Fatal(err)
		}
		stop := p.Run(100_000)
		if stop.Reason != emu.StopExit {
			t.Fatalf("stop: %v", stop)
		}
		return stop.Code, p.Machine.Hart.Cycle
	}
	c1, cy1 := run(false)
	c2, cy2 := run(true)
	if c1 != c2 || cy1 != cy2 {
		t.Errorf("monitor perturbed execution: %d/%d vs %d/%d", c1, cy1, c2, cy2)
	}
}

var _ plugin.MemWatcher = (*watch.Monitor)(nil)
