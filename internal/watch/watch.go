// Package watch implements non-invasive dynamic memory and IO access
// analysis: a plugin that checks every data access against a declarative
// policy of who (which code regions) may touch what (which memory or
// device regions). It reproduces the ecosystem's security component —
// detecting, e.g., unauthorized writes to a UART-attached lock actuator
// from anywhere outside the authorized driver routine — without
// modifying the program under observation.
package watch

import (
	"fmt"
	"strings"

	"repro/internal/plugin"
)

// Region is a half-open address range [Lo, Hi).
type Region struct {
	Name string
	Lo   uint32
	Hi   uint32
}

// Contains reports whether addr is inside the region.
func (r Region) Contains(addr uint32) bool { return addr >= r.Lo && addr < r.Hi }

func (r Region) String() string {
	return fmt.Sprintf("%s [0x%08x,0x%08x)", r.Name, r.Lo, r.Hi)
}

// Access flags select which access kinds a rule restricts.
type Access uint8

const (
	Loads Access = 1 << iota
	Stores
	// All restricts both loads and stores.
	All = Loads | Stores
)

// Rule protects one target region: only code executing inside one of the
// AllowedCode regions may perform the restricted access kinds on it.
// An empty AllowedCode list means nobody may access the target.
type Rule struct {
	Target      Region
	Restrict    Access
	AllowedCode []Region
}

// Violation records one policy breach.
type Violation struct {
	PC    uint32 // the accessing instruction
	Addr  uint32 // the touched address
	Store bool
	Rule  string // name of the violated target region
}

func (v Violation) String() string {
	kind := "load"
	if v.Store {
		kind = "store"
	}
	return fmt.Sprintf("unauthorized %s of %s at 0x%08x from pc=0x%08x",
		kind, v.Rule, v.Addr, v.PC)
}

// Monitor is the policy-checking plugin. Attach it to a machine's hook
// registry; violations accumulate (and optionally invoke a callback, e.g.
// to stop the simulation).
type Monitor struct {
	rules []Rule

	// OnViolation, when set, is invoked synchronously for each breach.
	OnViolation func(Violation)

	// Violations holds every breach in observation order.
	Violations []Violation

	// Checked counts the accesses evaluated against the policy.
	Checked uint64
}

// New creates a monitor with the given policy.
func New(rules ...Rule) *Monitor { return &Monitor{rules: rules} }

// Name implements plugin.Plugin.
func (m *Monitor) Name() string { return "access-watch" }

// OnMemAccess implements plugin.MemWatcher.
func (m *Monitor) OnMemAccess(ev plugin.MemEvent) {
	m.Checked++
	for _, rule := range m.rules {
		if !rule.Target.Contains(ev.Addr) {
			continue
		}
		if ev.Store && rule.Restrict&Stores == 0 {
			continue
		}
		if !ev.Store && rule.Restrict&Loads == 0 {
			continue
		}
		allowed := false
		for _, code := range rule.AllowedCode {
			if code.Contains(ev.PC) {
				allowed = true
				break
			}
		}
		if !allowed {
			v := Violation{PC: ev.PC, Addr: ev.Addr, Store: ev.Store, Rule: rule.Target.Name}
			m.Violations = append(m.Violations, v)
			if m.OnViolation != nil {
				m.OnViolation(v)
			}
		}
	}
}

// Clean reports whether no violations were observed.
func (m *Monitor) Clean() bool { return len(m.Violations) == 0 }

// Report renders the violation list.
func (m *Monitor) Report() string {
	if m.Clean() {
		return fmt.Sprintf("access policy: clean (%d accesses checked)\n", m.Checked)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "access policy: %d violations (%d accesses checked)\n",
		len(m.Violations), m.Checked)
	for _, v := range m.Violations {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	return sb.String()
}

var _ plugin.MemWatcher = (*Monitor)(nil)
