// Package elf reads and writes 32-bit little-endian RISC-V ELF
// executables: enough of the format for the ecosystem's binaries to round
// trip through the standard tooling shape (program headers for loadable
// segments, a symbol table for the analyzers) without any external
// toolchain.
package elf

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// EM_RISCV is the ELF machine number assigned to RISC-V.
const machineRISCV = 243

// header field offsets/values for ELFCLASS32, little endian.
const (
	ehSize = 52
	phSize = 32
	shSize = 40
)

// Segment is one loadable chunk of the image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Image is the loader's view of an executable.
type Image struct {
	Entry    uint32
	Segments []Segment
	Symbols  map[string]uint32
}

// Write serializes an image into an ELF32 executable with one PT_LOAD
// segment per Segment and a full symbol table.
func Write(img *Image) []byte {
	le := binary.LittleEndian

	// String and symbol tables.
	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)

	strtab := []byte{0}
	nameOff := make(map[string]uint32, len(names))
	for _, n := range names {
		nameOff[n] = uint32(len(strtab))
		strtab = append(strtab, n...)
		strtab = append(strtab, 0)
	}
	symtab := make([]byte, 16) // null symbol
	for _, n := range names {
		sym := make([]byte, 16)
		le.PutUint32(sym[0:], nameOff[n])     // st_name
		le.PutUint32(sym[4:], img.Symbols[n]) // st_value
		le.PutUint32(sym[8:], 0)              // st_size
		sym[12] = 0x10                        // GLOBAL, NOTYPE
		le.PutUint16(sym[14:], 1)             // st_shndx: .text
		symtab = append(symtab, sym...)
	}

	shstrtab := []byte("\x00.text\x00.symtab\x00.strtab\x00.shstrtab\x00")
	shName := map[string]uint32{".text": 1, ".symtab": 7, ".strtab": 15, ".shstrtab": 23}

	phnum := len(img.Segments)
	phoff := uint32(ehSize)
	dataOff := phoff + uint32(phnum)*phSize

	var body []byte
	segOff := make([]uint32, phnum)
	for i, s := range img.Segments {
		segOff[i] = dataOff + uint32(len(body))
		body = append(body, s.Data...)
	}
	symOff := dataOff + uint32(len(body))
	strOff := symOff + uint32(len(symtab))
	shstrOff := strOff + uint32(len(strtab))
	shoff := shstrOff + uint32(len(shstrtab))

	// Section headers: null, .text (covers segment 0), .symtab, .strtab,
	// .shstrtab.
	shnum := 5
	out := make([]byte, 0, int(shoff)+shnum*shSize)

	// ELF header.
	eh := make([]byte, ehSize)
	copy(eh, "\x7fELF")
	eh[4] = 1                // ELFCLASS32
	eh[5] = 1                // ELFDATA2LSB
	eh[6] = 1                // EV_CURRENT
	le.PutUint16(eh[16:], 2) // ET_EXEC
	le.PutUint16(eh[18:], machineRISCV)
	le.PutUint32(eh[20:], 1) // version
	le.PutUint32(eh[24:], img.Entry)
	le.PutUint32(eh[28:], phoff)
	le.PutUint32(eh[32:], shoff)
	le.PutUint32(eh[36:], 1) // e_flags: RVC
	le.PutUint16(eh[40:], ehSize)
	le.PutUint16(eh[42:], phSize)
	le.PutUint16(eh[44:], uint16(phnum))
	le.PutUint16(eh[46:], shSize)
	le.PutUint16(eh[48:], uint16(shnum))
	le.PutUint16(eh[50:], 4) // shstrndx
	out = append(out, eh...)

	// Program headers.
	for i, s := range img.Segments {
		ph := make([]byte, phSize)
		le.PutUint32(ph[0:], 1) // PT_LOAD
		le.PutUint32(ph[4:], segOff[i])
		le.PutUint32(ph[8:], s.Addr)  // vaddr
		le.PutUint32(ph[12:], s.Addr) // paddr
		le.PutUint32(ph[16:], uint32(len(s.Data)))
		le.PutUint32(ph[20:], uint32(len(s.Data)))
		le.PutUint32(ph[24:], 7) // RWX
		le.PutUint32(ph[28:], 4) // align
		out = append(out, ph...)
	}
	out = append(out, body...)
	out = append(out, symtab...)
	out = append(out, strtab...)
	out = append(out, shstrtab...)

	sh := func(name string, typ, flags, addr, off, size, link, entsize uint32) []byte {
		b := make([]byte, shSize)
		le.PutUint32(b[0:], shName[name])
		le.PutUint32(b[4:], typ)
		le.PutUint32(b[8:], flags)
		le.PutUint32(b[12:], addr)
		le.PutUint32(b[16:], off)
		le.PutUint32(b[20:], size)
		le.PutUint32(b[24:], link)
		le.PutUint32(b[32:], 4) // addralign
		le.PutUint32(b[36:], entsize)
		return b
	}
	out = append(out, make([]byte, shSize)...) // null section
	var textAddr, textOff, textSize uint32
	if phnum > 0 {
		textAddr = img.Segments[0].Addr
		textOff = segOff[0]
		textSize = uint32(len(img.Segments[0].Data))
	}
	out = append(out, sh(".text", 1 /*PROGBITS*/, 7 /*WAX*/, textAddr, textOff, textSize, 0, 0)...)
	out = append(out, sh(".symtab", 2 /*SYMTAB*/, 0, 0, symOff, uint32(len(symtab)), 3 /*strtab idx*/, 16)...)
	out = append(out, sh(".strtab", 3 /*STRTAB*/, 0, 0, strOff, uint32(len(strtab)), 0, 0)...)
	out = append(out, sh(".shstrtab", 3, 0, 0, shstrOff, uint32(len(shstrtab)), 0, 0)...)
	return out
}

// Read parses an ELF32 RISC-V executable.
func Read(data []byte) (*Image, error) {
	le := binary.LittleEndian
	if len(data) < ehSize || string(data[:4]) != "\x7fELF" {
		return nil, fmt.Errorf("elf: bad magic")
	}
	if data[4] != 1 || data[5] != 1 {
		return nil, fmt.Errorf("elf: not ELFCLASS32 little-endian")
	}
	if m := le.Uint16(data[18:]); m != machineRISCV {
		return nil, fmt.Errorf("elf: machine %d is not RISC-V", m)
	}
	img := &Image{
		Entry:   le.Uint32(data[24:]),
		Symbols: make(map[string]uint32),
	}
	phoff := le.Uint32(data[28:])
	phnum := int(le.Uint16(data[44:]))
	phentsize := int(le.Uint16(data[42:]))
	for i := 0; i < phnum; i++ {
		off := int(phoff) + i*phentsize
		if off+phSize > len(data) {
			return nil, fmt.Errorf("elf: program header %d out of bounds", i)
		}
		ph := data[off:]
		if le.Uint32(ph[0:]) != 1 { // PT_LOAD
			continue
		}
		fileOff := le.Uint32(ph[4:])
		vaddr := le.Uint32(ph[8:])
		filesz := le.Uint32(ph[16:])
		memsz := le.Uint32(ph[20:])
		if int(fileOff)+int(filesz) > len(data) {
			return nil, fmt.Errorf("elf: segment %d data out of bounds", i)
		}
		seg := make([]byte, memsz)
		copy(seg, data[fileOff:fileOff+filesz])
		img.Segments = append(img.Segments, Segment{Addr: vaddr, Data: seg})
	}

	// Symbols (optional).
	shoff := le.Uint32(data[32:])
	shnum := int(le.Uint16(data[48:]))
	shentsize := int(le.Uint16(data[46:]))
	var symOff, symSize, strOff, strSize uint32
	for i := 0; i < shnum; i++ {
		off := int(shoff) + i*shentsize
		if off+shSize > len(data) {
			return nil, fmt.Errorf("elf: section header %d out of bounds", i)
		}
		sh := data[off:]
		if le.Uint32(sh[4:]) == 2 { // SHT_SYMTAB
			symOff = le.Uint32(sh[16:])
			symSize = le.Uint32(sh[20:])
			link := int(le.Uint32(sh[24:]))
			loff := int(shoff) + link*shentsize
			if link < shnum && loff+shSize <= len(data) {
				lsh := data[loff:]
				strOff = le.Uint32(lsh[16:])
				strSize = le.Uint32(lsh[20:])
			}
		}
	}
	if symOff != 0 && int(symOff)+int(symSize) <= len(data) {
		strs := []byte{}
		if int(strOff)+int(strSize) <= len(data) {
			strs = data[strOff : strOff+strSize]
		}
		for off := uint32(16); off+16 <= symSize; off += 16 {
			sym := data[symOff+off:]
			nameIdx := le.Uint32(sym[0:])
			val := le.Uint32(sym[4:])
			name := cstr(strs, nameIdx)
			if name != "" {
				img.Symbols[name] = val
			}
		}
	}
	return img, nil
}

func cstr(b []byte, off uint32) string {
	if int(off) >= len(b) {
		return ""
	}
	end := off
	for int(end) < len(b) && b[end] != 0 {
		end++
	}
	return string(b[off:end])
}
