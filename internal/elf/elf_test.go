package elf

import (
	"testing"

	"repro/internal/asm"
)

func sampleImage() *Image {
	return &Image{
		Entry: 0x8000_0000,
		Segments: []Segment{
			{Addr: 0x8000_0000, Data: []byte{0x13, 0, 0, 0, 0x73, 0, 0x10, 0}},
		},
		Symbols: map[string]uint32{
			"_start": 0x8000_0000,
			"done":   0x8000_0004,
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	img := sampleImage()
	data := Write(img)
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != img.Entry {
		t.Errorf("entry 0x%x, want 0x%x", got.Entry, img.Entry)
	}
	if len(got.Segments) != 1 {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	if got.Segments[0].Addr != img.Segments[0].Addr {
		t.Errorf("segment addr 0x%x", got.Segments[0].Addr)
	}
	if string(got.Segments[0].Data) != string(img.Segments[0].Data) {
		t.Errorf("segment data % x", got.Segments[0].Data)
	}
	for name, addr := range img.Symbols {
		if got.Symbols[name] != addr {
			t.Errorf("symbol %s = 0x%x, want 0x%x", name, got.Symbols[name], addr)
		}
	}
}

func TestMultipleSegments(t *testing.T) {
	img := &Image{
		Entry: 0x100,
		Segments: []Segment{
			{Addr: 0x100, Data: []byte{1, 2, 3, 4}},
			{Addr: 0x2000, Data: []byte{5, 6}},
		},
		Symbols: map[string]uint32{},
	}
	got, err := Read(Write(img))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != 2 {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	if got.Segments[1].Addr != 0x2000 || string(got.Segments[1].Data) != "\x05\x06" {
		t.Errorf("segment 1: %+v", got.Segments[1])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not an elf"),
		[]byte("\x7fELF\x02\x01\x01"), // 64-bit
		func() []byte { // wrong machine
			d := Write(sampleImage())
			d[18] = 0x3e // EM_X86_64
			return d
		}(),
	}
	for i, c := range cases {
		if _, err := Read(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	data := Write(sampleImage())
	for _, n := range []int{20, 60, len(data) / 2} {
		if n >= len(data) {
			continue
		}
		if _, err := Read(data[:n]); err == nil {
			// Truncation that removes section headers but keeps program
			// headers may legitimately parse; only header/segment
			// truncation must fail. Accept either but never panic.
			_ = err
		}
	}
}

func TestAssembledProgramRoundTrip(t *testing.T) {
	prog, err := asm.Assemble(`
_start:
		li a0, 1
		li a1, 2
		add a2, a0, a1
loop:	j loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	img := &Image{
		Entry:    prog.Entry,
		Segments: []Segment{{Addr: prog.Org, Data: prog.Bytes}},
		Symbols:  prog.Symbols,
	}
	got, err := Read(Write(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != prog.Entry {
		t.Errorf("entry mismatch")
	}
	if got.Symbols["loop"] != prog.Symbols["loop"] {
		t.Errorf("loop symbol: 0x%x vs 0x%x", got.Symbols["loop"], prog.Symbols["loop"])
	}
	if len(got.Segments[0].Data) != len(prog.Bytes) {
		t.Errorf("image size mismatch")
	}
}

func TestBSSStyleSegment(t *testing.T) {
	// memsz > filesz: the tail must be zero-filled. Construct by hand.
	img := &Image{Entry: 0, Segments: []Segment{{Addr: 0, Data: []byte{1, 2}}}, Symbols: map[string]uint32{}}
	data := Write(img)
	// Patch p_memsz (offset 52+20) to 8.
	data[52+20] = 8
	got, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments[0].Data) != 8 {
		t.Fatalf("memsz expansion: %d", len(got.Segments[0].Data))
	}
	if got.Segments[0].Data[0] != 1 || got.Segments[0].Data[7] != 0 {
		t.Error("bss tail not zero-filled")
	}
}
