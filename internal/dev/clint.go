package dev

import "fmt"

// CLINT register offsets (single-hart subset of the SiFive CLINT layout).
const (
	CLINTMsip      uint32 = 0x0000 // software interrupt pending (bit 0)
	CLINTMtimecmp  uint32 = 0x4000 // timer compare, low word
	CLINTMtimecmpH uint32 = 0x4004
	CLINTMtime     uint32 = 0xbff8 // free-running timer, low word
	CLINTMtimeH    uint32 = 0xbffc

	// CLINTSize is the mapped window size.
	CLINTSize uint32 = 0xc000
)

// CLINT is a core-local interruptor: a 64-bit mtime counter advanced by
// the emulator's cycle count, an mtimecmp compare register, and an msip
// software-interrupt bit.
type CLINT struct {
	mtime    uint64
	mtimecmp uint64
	msip     bool
}

// NewCLINT creates a CLINT with mtimecmp at its reset value (all ones, so
// no timer interrupt fires until software programs it).
func NewCLINT() *CLINT { return &CLINT{mtimecmp: ^uint64(0)} }

// CLINTState is a snapshot of the CLINT's registers.
type CLINTState struct {
	Mtime, Mtimecmp uint64
	Msip            bool
}

// Snapshot captures the CLINT state.
func (c *CLINT) Snapshot() CLINTState {
	return CLINTState{Mtime: c.mtime, Mtimecmp: c.mtimecmp, Msip: c.msip}
}

// Restore replaces the CLINT state with a snapshot.
func (c *CLINT) Restore(s CLINTState) {
	c.mtime, c.mtimecmp, c.msip = s.Mtime, s.Mtimecmp, s.Msip
}

// Advance moves mtime forward by the given number of ticks.
func (c *CLINT) Advance(ticks uint64) { c.mtime += ticks }

// SetTime sets mtime directly (the emulator syncs it to mcycle).
func (c *CLINT) SetTime(t uint64) { c.mtime = t }

// Time returns the current mtime.
func (c *CLINT) Time() uint64 { return c.mtime }

// TimerPending reports whether the machine timer interrupt is asserted.
func (c *CLINT) TimerPending() bool { return c.mtime >= c.mtimecmp }

// SoftwarePending reports whether the machine software interrupt is
// asserted.
func (c *CLINT) SoftwarePending() bool { return c.msip }

// NextTimerEvent returns the mtime value at which the timer interrupt
// will assert, and ok=false if it is already pending or unprogrammed.
func (c *CLINT) NextTimerEvent() (uint64, bool) {
	if c.TimerPending() || c.mtimecmp == ^uint64(0) {
		return 0, false
	}
	return c.mtimecmp, true
}

// Load implements mem.Device.
func (c *CLINT) Load(off uint32, size uint8) (uint32, error) {
	switch off {
	case CLINTMsip:
		if c.msip {
			return 1, nil
		}
		return 0, nil
	case CLINTMtimecmp:
		return uint32(c.mtimecmp), nil
	case CLINTMtimecmpH:
		return uint32(c.mtimecmp >> 32), nil
	case CLINTMtime:
		return uint32(c.mtime), nil
	case CLINTMtimeH:
		return uint32(c.mtime >> 32), nil
	}
	return 0, fmt.Errorf("clint: bad offset 0x%x", off)
}

// Store implements mem.Device.
func (c *CLINT) Store(off uint32, size uint8, val uint32) error {
	switch off {
	case CLINTMsip:
		c.msip = val&1 != 0
		return nil
	case CLINTMtimecmp:
		c.mtimecmp = c.mtimecmp&^uint64(0xffffffff) | uint64(val)
		return nil
	case CLINTMtimecmpH:
		c.mtimecmp = c.mtimecmp&0xffffffff | uint64(val)<<32
		return nil
	case CLINTMtime:
		c.mtime = c.mtime&^uint64(0xffffffff) | uint64(val)
		return nil
	case CLINTMtimeH:
		c.mtime = c.mtime&0xffffffff | uint64(val)<<32
		return nil
	}
	return fmt.Errorf("clint: bad offset 0x%x", off)
}
